// Askey-scheme generality — the paper's §4 point that the method is not
// tied to Gaussian variations: "for different probability distributions
// of the random variables, different orthonormal basis sets need to be
// identified". This example analyzes the same grid under (a) Gaussian
// variations with a Hermite basis and (b) uniformly-distributed
// variations with a Legendre basis, and verifies the Legendre run
// against a uniform-sampling Monte Carlo.
//
//	go run ./examples/askey
package main

import (
	"fmt"
	"log"
	"math"

	"opera/internal/core"
	"opera/internal/factor"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/order"
	"opera/internal/poly"
	"opera/internal/randvar"
	"opera/internal/sparse"
	"opera/internal/transient"
)

func main() {
	nl, err := grid.Build(grid.DefaultSpec(1500, 11))
	if err != nil {
		log.Fatal(err)
	}
	// For a fair distribution comparison both models share the same
	// parameter *variance*: a uniform variable on [-√3, √3] has unit
	// variance like the standard Gaussian, so the same sensitivities
	// apply to ξ scaled by √3 for Legendre (defined on [-1, 1]).
	spec := mna.DefaultSpec()
	gaussSys, err := mna.Build(nl, spec)
	if err != nil {
		log.Fatal(err)
	}
	uniSpec := spec
	uniSpec.KG *= math.Sqrt(3)
	uniSpec.KCL *= math.Sqrt(3)
	uniSpec.KIL *= math.Sqrt(3)
	uniSys, err := mna.Build(nl, uniSpec)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.Options{Order: 2, Step: 1e-10, Steps: 20}
	gauss, err := core.Analyze(gaussSys, opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Families = []poly.Family{poly.Legendre{}, poly.Legendre{}}
	uni, err := core.Analyze(uniSys, opts)
	if err != nil {
		log.Fatal(err)
	}
	node, step := gauss.MaxMeanDropNode()
	fmt.Printf("grid: %s — worst node %d at step %d\n", nl.Stats(), node, step)
	fmt.Printf("Gaussian + Hermite:  mean %.6f V, sigma %.4g V\n",
		gauss.Mean[step][node], math.Sqrt(gauss.Variance[step][node]))
	fmt.Printf("Uniform  + Legendre: mean %.6f V, sigma %.4g V\n",
		uni.Mean[step][node], math.Sqrt(uni.Variance[step][node]))

	// Monte Carlo with uniform draws validates the Legendre expansion.
	const samples = 400
	rng := randvar.NewStream(5, 0)
	var acc randvar.Running
	pattern := uniSys.UnionPattern()
	comp := sparse.Add(1, pattern, 1/opts.Step, pattern)
	perm := order.NestedDissection(order.NewGraph(comp), 0)
	sym := factor.CholAnalyze(comp, perm)
	var reuse factor.ScalarFactor
	for k := 0; k < samples; k++ {
		xiG := 2*rng.Float64() - 1
		xiL := 2*rng.Float64() - 1
		g, c, rhs := uniSys.Realize(xiG, xiL)
		st, err := transient.NewStepper(g, c, transient.Options{
			Step: opts.Step, Steps: opts.Steps, Symbolic: sym, ReuseFactor: reuse,
		})
		if err != nil {
			log.Fatal(err)
		}
		reuse = st.Factor()
		u := make([]float64, uniSys.N)
		rhs(0, u)
		if err := st.InitDC(u); err != nil {
			log.Fatal(err)
		}
		for s := 1; s <= opts.Steps; s++ {
			rhs(float64(s)*opts.Step, u)
			if err := st.Advance(u); err != nil {
				log.Fatal(err)
			}
			if s == step {
				acc.Push(st.State()[node])
			}
		}
	}
	fmt.Printf("Uniform Monte Carlo (%d samples): mean %.6f V, sigma %.4g V\n",
		samples, acc.Mean(), acc.Std())
	fmt.Printf("Legendre-OPERA sigma error vs MC: %.2f%%\n",
		100*math.Abs(math.Sqrt(uni.Variance[step][node])-acc.Std())/acc.Std())
}
