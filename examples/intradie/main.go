// Intra-die (within-die) spatial variation — the extension the paper's
// §3 explicitly defers ("We consider only the inter-die variations in
// this work"; intra-die parameters "vary randomly and spatially across
// a die"). The die is partitioned into regions, each carrying its own
// geometry/Leff variables correlated by an exponential spatial kernel;
// PCA (the discrete Karhunen–Loève expansion) turns the field into a
// handful of independent chaos dimensions, and the same stochastic
// Galerkin machinery runs unchanged.
//
// The physics on display: short correlation lengths let independent
// regional fluctuations average out across the grid, so the worst-node
// σ shrinks relative to the fully correlated (inter-die) assumption —
// designing against inter-die numbers is pessimistic for intra-die
// mechanisms.
//
//	go run ./examples/intradie
package main

import (
	"fmt"
	"log"
	"math"

	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/pce"
)

func main() {
	spec := grid.DefaultSpec(1200, 7)
	spec.Regions = 3 // 3×3 = 9 intra-die regions
	nl, err := grid.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %s, %d regions\n\n", nl.Stats(), spec.NumRegions())
	fmt.Println("corr length (regions)   PCA dims   worst-node sigma (V)")
	for _, corr := range []float64{0.2, 0.5, 1, 2, 1000} {
		sspec := mna.SpatialSpec{
			RegionsPerAxis: spec.Regions,
			KG:             0.25 / 3,
			KCL:            0.20 / 3,
			KIL:            0.20 / 3,
			CorrLength:     corr,
			EnergyCutoff:   0.97,
			MaxDims:        5,
		}
		sys, err := mna.BuildSpatial(nl, sspec)
		if err != nil {
			log.Fatal(err)
		}
		basis := pce.NewHermiteBasis(sys.Dims, 2)
		gsys, err := galerkin.FromSpatial(sys, basis)
		if err != nil {
			log.Fatal(err)
		}
		// With up to 10 chaos dimensions the basis reaches 66 functions;
		// the §5.2 iterative path (one scalar factorization, a few CG
		// iterations per step) is the right solver at that block size.
		worst := 0.0
		_, err = galerkin.Solve(gsys, galerkin.Options{Step: 1e-10, Steps: 20, Iterative: true},
			func(step int, _ float64, coeffs [][]float64) {
				for i := 0; i < sys.N; i++ {
					v := 0.0
					for m := 1; m < basis.Size(); m++ {
						v += coeffs[m][i] * coeffs[m][i]
					}
					if v > worst {
						worst = v
					}
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%g", corr)
		if corr >= 1000 {
			label = "inf (inter-die)"
		}
		fmt.Printf("%-22s  %d+%d        %.5g\n", label, sys.DimsG, sys.DimsL, math.Sqrt(worst))
	}
	fmt.Println("\nShorter correlation lengths average out regional fluctuations;")
	fmt.Println("the fully correlated limit reproduces the paper's inter-die numbers.")
}
