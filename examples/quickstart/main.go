// Quickstart: analyze a small synthetic power grid with OPERA and
// verify its mean/σ against a quick Monte Carlo run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"opera/internal/core"
	"opera/internal/grid"
	"opera/internal/mna"
)

func main() {
	// 1. Synthesize a power grid: ~2000 nodes, two metal layers, pads,
	//    load caps and clock-synchronized block currents calibrated to
	//    an 8% peak nominal IR drop.
	nl, err := grid.Build(grid.DefaultSpec(2000, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("grid:", nl.Stats())

	// 2. Stamp the MNA matrices with the paper's variation model:
	//    3σ = 25% on the combined W/T geometry variable ξG, 20% on Leff
	//    (40% of the capacitance tracks it), linear current sensitivity.
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Run OPERA: order-2 Hermite chaos, 20 backward-Euler steps of
	//    100 ps (two clock periods).
	opts := core.Options{Order: 2, Step: 1e-10, Steps: 20}
	res, err := core.Analyze(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	node, step := res.MaxMeanDropNode()
	mean := res.Mean[step][node]
	sd := math.Sqrt(res.Variance[step][node])
	fmt.Printf("OPERA (%.3fs, %s): worst node %d at t=%.1fps\n",
		res.Elapsed.Seconds(), res.Galerkin.Factorer, node, 1e12*float64(step)*opts.Step)
	fmt.Printf("  mean drop %.2f%% of VDD, sigma %.4g V, +/-3sigma = +/-%.0f%% of the drop\n",
		res.DropPercent(mean), sd, 300*sd/(res.VDD-mean))

	// 4. Cross-check against 300 Monte Carlo samples.
	mc, mcTime, err := core.RunMC(sys, opts, 300, 7, nil)
	if err != nil {
		log.Fatal(err)
	}
	nominal, err := core.NominalRun(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := core.CompareWithMC(res, mc, nominal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo (300 samples, %.3fs):\n", mcTime.Seconds())
	fmt.Printf("  mean error avg %.4f%% / max %.4f%%, sigma error avg %.2f%% / max %.2f%%\n",
		acc.AvgErrMeanPct, acc.MaxErrMeanPct, acc.AvgErrStdPct, acc.MaxErrStdPct)
	fmt.Printf("  speedup %.0fx\n", mcTime.Seconds()/res.Elapsed.Seconds())
}
