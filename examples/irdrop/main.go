// IR-drop distribution analysis — the paper's §5 illustration end to
// end: a mid-size grid under W/T/Leff variation, the full chaos
// expansion at the worst node, its probability density by Gram–Charlier
// series and by sampling the explicit expansion, rendered as an ASCII
// histogram (the shape of the paper's Figures 1–2).
//
//	go run ./examples/irdrop
package main

import (
	"fmt"
	"log"
	"os"

	"opera/internal/core"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/randvar"
	"opera/internal/report"
)

func main() {
	nl, err := grid.Build(grid.DefaultSpec(5000, 2025))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		log.Fatal(err)
	}
	opts := core.Options{Order: 3, Step: 1e-10, Steps: 20}

	// Pass 1 finds the worst node; pass 2 tracks its full expansion.
	scout, err := core.Analyze(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	node, step := scout.MaxMeanDropNode()
	opts.TrackNodes = []int{node}
	res, err := core.Analyze(sys, opts)
	if err != nil {
		log.Fatal(err)
	}
	e := res.Tracked[node][step]
	fmt.Printf("grid: %s\n", nl.Stats())
	fmt.Printf("worst node %d at t = %.0f ps (order-3 expansion, %d coefficients)\n",
		node, 1e12*float64(step)*opts.Step, res.Basis.Size())
	fmt.Printf("voltage: mean %.4f V, sigma %.4g V, skewness %.3f, excess kurtosis %.3f\n",
		e.Mean(), e.Std(), e.Skewness(), e.ExcessKurtosis())
	fmt.Printf("variance attribution (Sobol): geometry xiG %.1f%%, channel xiL %.1f%%, interactions %.1f%%\n",
		100*e.SobolTotal(0), 100*e.SobolTotal(1), 100*e.SobolInteraction())

	// Density two ways: Gram–Charlier from the chaos moments, and a
	// histogram of 50k samples of the explicit polynomial (microseconds
	// per sample — no circuit solves).
	rng := randvar.NewStream(99, 0)
	samples := e.Sample(rng, 50000)
	drops := make([]float64, len(samples))
	for i, v := range samples {
		drops[i] = res.DropPercent(v)
	}
	lo := randvar.Quantile(drops, 0.001)
	hi := randvar.Quantile(drops, 0.999)
	hist := randvar.NewHistogram(lo, hi, 20)
	hist.PushAll(drops)

	pdf := e.PDF() // Gram–Charlier density of the voltage
	centers := hist.BinCenters()
	gc := make([]float64, len(centers))
	binW := (hi - lo) / 20
	for i, c := range centers {
		// Convert drop% bin center back to volts and scale the density
		// into % of occurrences per bin.
		v := res.VDD * (1 - c/100)
		gc[i] = pdf(v) * (binW / 100 * res.VDD) * 100
	}
	err = report.AsciiChart(os.Stdout, "voltage drop as % VDD", "% of occurrences", 32,
		report.Series{Name: "sampled expansion", X: centers, Y: hist.Percent()},
		report.Series{Name: "Gram-Charlier", X: centers, Y: gc},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n+/-3sigma spread = +/-%.0f%% of the nominal drop — the variation-aware\n"+
		"margin the paper argues must be designed for.\n",
		300*e.Std()/(res.VDD-e.Mean()))
}
