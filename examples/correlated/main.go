// Correlated process variations — the paper's §5 remark made concrete:
// "if they were not [uncorrelated], given their covariance matrix, they
// can always be transformed into a set of uncorrelated random variables
// by an orthogonal transformation technique like principal component
// analysis". Interconnect width and thickness track each other in real
// processes (both follow the metal CMP/etch conditions); this example
// analyzes a grid under W/T correlation ρ and shows how the correlation
// inflates the voltage spread relative to the independent assumption.
//
//	go run ./examples/correlated
package main

import (
	"fmt"
	"log"
	"math"

	"opera/internal/core"
	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/pce"
)

func main() {
	nl, err := grid.Build(grid.DefaultSpec(2000, 31))
	if err != nil {
		log.Fatal(err)
	}
	sW, sT, sL := 0.20/3, 0.15/3, 0.20/3
	opts := galerkin.Options{Step: 1e-10, Steps: 20}

	fmt.Printf("grid: %s\n", nl.Stats())
	fmt.Println("worst-node σ under W/T correlation (order-2 expansion):")
	fmt.Println("rho     sigma (V)   vs independent")
	var sigma0 float64
	for _, rho := range []float64{0, 0.3, 0.6, 0.9} {
		cov := [][]float64{
			{sW * sW, rho * sW * sT, 0},
			{rho * sW * sT, sT * sT, 0},
			{0, 0, sL * sL},
		}
		sys, err := mna.BuildCorrelated(nl, cov)
		if err != nil {
			log.Fatal(err)
		}
		basis := pce.NewHermiteBasis(3, 2)
		gsys, err := galerkin.FromCorrelated(sys, basis)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		if _, err := galerkin.Solve(gsys, opts, func(step int, _ float64, coeffs [][]float64) {
			for i := 0; i < sys.N; i++ {
				v := 0.0
				for m := 1; m < basis.Size(); m++ {
					v += coeffs[m][i] * coeffs[m][i]
				}
				if v > worst {
					worst = v
				}
			}
		}); err != nil {
			log.Fatal(err)
		}
		sd := math.Sqrt(worst)
		if rho == 0 {
			sigma0 = sd
		}
		fmt.Printf("%.1f   %.5g     %+.1f%%\n", rho, sd, 100*(sd/sigma0-1))
	}

	// Cross-check ρ=0.6 against the analytically equivalent combined
	// model KG_eff = √(σW² + σT² + 2ρσWσT).
	rho := 0.6
	kgEff := math.Sqrt(sW*sW + sT*sT + 2*rho*sW*sT)
	comb, err := mna.Build(nl, mna.VariationSpec{KG: kgEff, KCL: sL, KIL: sL})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Analyze(comb, core.Options{Order: 2, Step: 1e-10, Steps: 20})
	if err != nil {
		log.Fatal(err)
	}
	node, step := res.MaxMeanDropNode()
	fmt.Printf("\nanalytic check at rho=0.6: equivalent combined-model sigma at worst node = %.5g V\n",
		math.Sqrt(res.Variance[step][node]))
	fmt.Println("(matches the PCA run — see TestCorrelatedMatchesEquivalentCombined)")
}
