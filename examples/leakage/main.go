// Leakage special case — the paper's §5.1: only the drain/leakage
// currents are stochastic (lognormal per intra-die region under
// threshold-voltage variation), so the Galerkin system decouples into
// N+1 independent solves sharing a single factorization (Eq. 27).
// Unlike the Ferzli–Najm bound-based approach §5.1 contrasts with,
// OPERA computes the mean, the variance and higher moments exactly
// from the expansion.
//
//	go run ./examples/leakage
package main

import (
	"fmt"
	"log"
	"math"

	"opera/internal/core"
	"opera/internal/grid"
)

func main() {
	spec := grid.DefaultSpec(4000, 77)
	spec.Regions = 2 // 2×2 = 4 intra-die regions
	nl, err := grid.Build(spec)
	if err != nil {
		log.Fatal(err)
	}
	opts := core.LeakageOptions{
		Regions:   spec.NumRegions(),
		SigmaLogI: 0.7, // sigma of ln(I_leak): leakage swings ~2x per sigma
		Order:     3,
		Step:      1e-10,
		Steps:     20,
	}
	res, err := core.AnalyzeLeakage(nl, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %s, %d regions\n", nl.Stats(), opts.Regions)
	fmt.Printf("OPERA took the decoupled path: %v (factored a %d-unknown system once,\n"+
		"then ran %d independent recursions — Eq. 27)\n",
		res.Galerkin.Decoupled, res.Galerkin.AugmentedN, res.Basis.Size())
	fmt.Printf("analysis time: %.3fs\n\n", res.Elapsed.Seconds())

	node, step := res.MaxMeanDropNode()
	sd := math.Sqrt(res.Variance[step][node])
	fmt.Printf("worst node %d: mean drop %.3f%% VDD, sigma %.4g V\n",
		node, res.DropPercent(res.Mean[step][node]), sd)

	// Monte Carlo cross-check: lognormal leakage draws, fixed operator,
	// one shared factorization (the strongest baseline).
	mc, err := core.RunLeakageMC(nl, opts, 2000, 3)
	if err != nil {
		log.Fatal(err)
	}
	mcSD := math.Sqrt(mc.Variance[step][node])
	fmt.Printf("Monte Carlo (%d samples, %.3fs): sigma %.4g V (OPERA error %.2f%%)\n",
		mc.Samples, mc.Elapsed.Seconds(), mcSD, 100*math.Abs(sd-mcSD)/mcSD)
	fmt.Printf("speedup %.0fx\n", mc.Elapsed.Seconds()/res.Elapsed.Seconds())
}
