// Package bench regenerates every table and figure of the paper's
// evaluation (§6) as Go benchmarks:
//
//	BenchmarkTable1           — Table 1 (OPERA vs 1000-sample Monte Carlo)
//	BenchmarkFigure1          — Figure 1 (drop distribution, worst node)
//	BenchmarkFigure2          — Figure 2 (drop distribution, second node)
//	BenchmarkSpecialCase      — §5.1 decoupled analysis vs coupled vs MC
//	BenchmarkOrderSweep       — expansion order p = 1..3 accuracy/cost
//	BenchmarkSolverAblation   — §5.2 direct vs mean-preconditioned CG
//	BenchmarkMORAblation      — §5.2 MOR-reduced vs full stochastic solve
//	BenchmarkOrderingAblation — ND vs RCM vs MD vs natural fill/time
//	BenchmarkOperaOnly        — OPERA analysis cost scaling across sizes
//	BenchmarkMCPerSample      — Monte Carlo per-sample cost across sizes
//
// Each benchmark prints the regenerated rows/series once (so the run's
// output contains the paper-shaped artifact) and reports the headline
// quantity as a custom metric. Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"opera/internal/core"
	"opera/internal/experiments"
	"opera/internal/factor"
	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/montecarlo"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/sparse"
)

// printOnce keys output by benchmark name so repeated b.N iterations
// do not repeat the artifact.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func BenchmarkTable1(b *testing.B) {
	cfg := experiments.DefaultTable1()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		once("table1", func() {
			fmt.Println("\nTable 1 (reproduced; order-2 expansion, 1000-sample MC):")
			if err := experiments.FormatTable1(rows).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
		var worstSpeedup, sumSpeedup, sumSigErr float64
		worstSpeedup = rows[0].Speedup
		for _, r := range rows {
			if r.Speedup < worstSpeedup {
				worstSpeedup = r.Speedup
			}
			sumSpeedup += r.Speedup
			sumSigErr += r.AvgErrStdPct
		}
		b.ReportMetric(sumSpeedup/float64(len(rows)), "avg-speedup-x")
		b.ReportMetric(worstSpeedup, "min-speedup-x")
		b.ReportMetric(sumSigErr/float64(len(rows)), "avg-sigma-err-%")
	}
}

func benchmarkFigure(b *testing.B, rank int, title string) {
	cfg := experiments.DefaultFigure(rank)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure(cfg)
		if err != nil {
			b.Fatal(err)
		}
		once(title, func() {
			fmt.Printf("\n%s (reproduced): voltage-drop distribution, node %d, step %d\n",
				title, res.Node, res.Step)
			fmt.Println("drop pct VDD | MC pct occ | OPERA pct occ")
			for k := range res.MC.X {
				fmt.Printf("%8.3f  %8.2f  %10.2f\n", res.MC.X[k], res.MC.Y[k], res.Opera.Y[k])
			}
		})
		b.ReportMetric(res.KS, "ks-distance")
	}
}

func BenchmarkFigure1(b *testing.B) { benchmarkFigure(b, 0, "Figure 1") }

func BenchmarkFigure2(b *testing.B) { benchmarkFigure(b, 1, "Figure 2") }

func BenchmarkSpecialCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSpecialCase(2600, 2, 3, 1000, 0.6, 2005)
		if err != nil {
			b.Fatal(err)
		}
		once("special", func() {
			fmt.Printf("\n§5.1 special case (reproduced): %d nodes, %d regions\n", res.Nodes, res.Regions)
			fmt.Printf("  decoupled %.3fs | coupled %.3fs | MC(%d) %.3fs | σ err vs MC %.2f%%\n",
				res.DecoupledTime.Seconds(), res.CoupledTime.Seconds(),
				res.MCSamples, res.MCTime.Seconds(), res.AvgErrStdPctMC)
		})
		b.ReportMetric(float64(res.MCTime)/float64(res.DecoupledTime), "speedup-vs-mc-x")
		b.ReportMetric(float64(res.CoupledTime)/float64(res.DecoupledTime), "speedup-vs-coupled-x")
	}
}

func BenchmarkOrderSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunOrderSweep(1600, 3, 1000, 2005)
		if err != nil {
			b.Fatal(err)
		}
		once("ordersweep", func() {
			fmt.Println("\nExpansion-order sweep (reproduced):")
			if err := experiments.FormatOrderSweep(rows).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(rows[len(rows)-1].AvgErrStdPct, "order3-sigma-err-%")
	}
}

func BenchmarkSolverAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSolverAblation(1600, 2005)
		if err != nil {
			b.Fatal(err)
		}
		once("solver", func() {
			fmt.Println("\nSolver-path ablation (§5.2, reproduced):")
			if err := experiments.FormatSolverAblation(rows).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(rows[0].OperaTime.Seconds(), "direct-s")
		b.ReportMetric(rows[1].OperaTime.Seconds(), "iterative-s")
	}
}

func BenchmarkOrderingAblation(b *testing.B) {
	ords := []galerkin.Ordering{
		galerkin.OrderND, galerkin.OrderRCM, galerkin.OrderMD, galerkin.OrderNatural,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunOrderingAblation(1600, 2005, ords)
		if err != nil {
			b.Fatal(err)
		}
		once("ordering", func() {
			fmt.Println("\nOrdering ablation (reproduced):")
			if err := experiments.FormatOrderingAblation(rows).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(float64(rows[0].FactorNNZ), "nd-factor-nnz")
	}
}

// BenchmarkOperaOnly isolates the OPERA analysis cost per grid size —
// the "CPU time OPERA" column in pure form.
func BenchmarkOperaOnly(b *testing.B) {
	for _, nodes := range []int{1000, 2600, 6800} {
		nl, err := grid.Build(grid.DefaultSpec(nodes, 2005))
		if err != nil {
			b.Fatal(err)
		}
		sys, err := mna.Build(nl, mna.DefaultSpec())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes=%d", sys.N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(sys, core.Options{Order: 2, Step: 1e-10, Steps: 20}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the cost of the observability layer on
// the same analysis as BenchmarkOperaOnly (nodes=1000): "disabled"
// leaves Options.Obs nil (the production default — every obs call must
// hit the nil fast path), "enabled" attaches a live tracer with the
// solver metrics installed. Compare disabled against
// BenchmarkOperaOnly/nodes=1000: they must agree within noise (≤1%).
func BenchmarkObsOverhead(b *testing.B) {
	nl, err := grid.Build(grid.DefaultSpec(1000, 2005))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Order: 2, Step: 1e-10, Steps: 20}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Analyze(sys, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := obs.New("bench")
			reg := tr.Registry()
			sparse.SetMetrics(reg)
			order.SetMetrics(reg)
			factor.SetMetrics(reg)
			o := opts
			o.Obs = tr
			if _, err := core.Analyze(sys, o); err != nil {
				b.Fatal(err)
			}
			tr.Finish()
		}
		sparse.SetMetrics(nil)
		order.SetMetrics(nil)
		factor.SetMetrics(nil)
	})
}

// BenchmarkMCPerSample isolates the Monte Carlo per-sample cost — the
// quantity whose multiplication by the sample count produces the "CPU
// time Monte" column.
func BenchmarkMCPerSample(b *testing.B) {
	for _, nodes := range []int{1000, 2600, 6800} {
		nl, err := grid.Build(grid.DefaultSpec(nodes, 2005))
		if err != nil {
			b.Fatal(err)
		}
		sys, err := mna.Build(nl, mna.DefaultSpec())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes=%d", sys.N), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.RunMC(sys, core.Options{Order: 2, Step: 1e-10, Steps: 20}, 1, int64(i), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCParallel measures the worker-pool scaling of the Monte
// Carlo hot loop on a §6-scale grid. Results are bit-identical across
// the sub-benchmarks (see montecarlo's determinism contract); only the
// wall clock changes.
func BenchmarkMCParallel(b *testing.B) {
	nl, err := grid.Build(grid.DefaultSpec(2600, 2005))
	if err != nil {
		b.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := montecarlo.Run(sys, montecarlo.Options{
					Samples: 32, Step: 1e-10, Steps: 10, Seed: 2005, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.SamplesRun != 32 {
					b.Fatalf("ran %d samples", res.SamplesRun)
				}
			}
		})
	}
}

// BenchmarkDecoupledParallel measures the per-basis fan-out of the
// §5.1 decoupled Galerkin path (the leakage special case: 4 regions at
// order 3 give a 35-function basis, i.e. 35 independent recursions per
// step).
func BenchmarkDecoupledParallel(b *testing.B) {
	spec := grid.DefaultSpec(2600, 2005)
	spec.Regions = 2
	nl, err := grid.Build(spec)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.AnalyzeLeakage(nl, core.LeakageOptions{
					Regions: spec.NumRegions(), SigmaLogI: 0.6, Order: 3,
					Step: 1e-10, Steps: 15, Workers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Galerkin.Decoupled {
					b.Fatal("decoupled path not taken")
				}
			}
		})
	}
}

// BenchmarkMORAblation quantifies the §5.2 MOR suggestion: stochastic
// Galerkin on a PRIMA-reduced model vs the full grid, at the worst-drop
// port.
func BenchmarkMORAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := experiments.RunMORAblation(2600, 12, 2005)
		if err != nil {
			b.Fatal(err)
		}
		once("mor", func() {
			fmt.Println("\nMOR ablation (§5.2, reproduced):")
			if err := experiments.FormatMORAblation(row).Write(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(float64(row.FullTime)/float64(row.ReduceTime+row.SolveTime), "speedup-x")
		b.ReportMetric(row.MaxSigmaErrPct, "port-sigma-err-%")
	}
}
