package quad_test

import (
	"fmt"
	"math"

	"opera/internal/quad"
)

// ExampleGaussHermite prints the classical 3-point rule for the
// standard Gaussian: nodes ±√3 and 0 with weights 1/6, 2/3, 1/6.
func ExampleGaussHermite() {
	r, err := quad.GaussHermite(3)
	if err != nil {
		panic(err)
	}
	for i := range r.Nodes {
		x := r.Nodes[i]
		if math.Abs(x) < 1e-12 {
			x = 0 // normalize the middle node's sign for display
		}
		fmt.Printf("x = %+.4f  w = %.4f\n", x, r.Weights[i])
	}
	// Exactness: E[ξ⁴] = 3 for a standard Gaussian.
	m4 := r.Integrate(func(x float64) float64 { return x * x * x * x })
	fmt.Printf("E[x^4] = %.1f\n", m4)
	// Output:
	// x = -1.7321  w = 0.1667
	// x = +0.0000  w = 0.6667
	// x = +1.7321  w = 0.1667
	// E[x^4] = 3.0
}
