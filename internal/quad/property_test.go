package quad

import (
	"math"
	"testing"
	"testing/quick"
)

// TestGaussExactnessProperty: for every family and random rule size n,
// the n-point rule integrates random polynomials of degree ≤ 2n−1
// exactly, compared against a much larger reference rule.
func TestGaussExactnessProperty(t *testing.T) {
	type ruleGen struct {
		name string
		gen  func(n int) (Rule, error)
	}
	gens := []ruleGen{
		{"hermite", GaussHermite},
		{"legendre", GaussLegendre},
		{"laguerre", func(n int) (Rule, error) { return GaussLaguerre(n, 0.7) }},
		{"jacobi", func(n int) (Rule, error) { return GaussJacobi(n, 0.3, 1.2) }},
	}
	for _, g := range gens {
		g := g
		f := func(seedRaw int64) bool {
			seed := seedRaw
			if seed < 0 {
				seed = -seed
			}
			n := 1 + int(seed%9)
			deg := 2*n - 1
			rule, err := g.gen(n)
			if err != nil {
				return false
			}
			ref, err := g.gen(n + 8)
			if err != nil {
				return false
			}
			// Random-ish polynomial of degree deg from the seed.
			coef := make([]float64, deg+1)
			s := uint64(seed) + 12345
			for i := range coef {
				s = s*6364136223846793005 + 1442695040888963407
				coef[i] = float64(int64(s>>33))/float64(1<<30) - 1
			}
			p := func(x float64) float64 {
				v := 0.0
				for i := deg; i >= 0; i-- {
					v = v*x + coef[i]
				}
				return v
			}
			got := rule.Integrate(p)
			want := ref.Integrate(p)
			scale := math.Abs(want) + 1
			return math.Abs(got-want) < 1e-8*scale
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", g.name, err)
		}
	}
}

// TestWeightPositivityProperty: Gauss weights are strictly positive for
// every family and size — a defining property of Gaussian quadrature
// that the Golub–Welsch construction must preserve.
func TestWeightPositivityProperty(t *testing.T) {
	for n := 1; n <= 25; n++ {
		for name, gen := range map[string]func() (Rule, error){
			"hermite":  func() (Rule, error) { return GaussHermite(n) },
			"legendre": func() (Rule, error) { return GaussLegendre(n) },
			"laguerre": func() (Rule, error) { return GaussLaguerre(n, 2.5) },
			"jacobi":   func() (Rule, error) { return GaussJacobi(n, 1.5, 0.2) },
		} {
			r, err := gen()
			if err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
			for i, w := range r.Weights {
				if w <= 0 {
					t.Errorf("%s(%d): weight %d = %g", name, n, i, w)
				}
			}
		}
	}
}

// TestSymmetricFamiliesHaveSymmetricNodes: Hermite and Legendre nodes
// come in ± pairs with equal weights.
func TestSymmetricFamiliesHaveSymmetricNodes(t *testing.T) {
	for _, gen := range []func(int) (Rule, error){GaussHermite, GaussLegendre} {
		for _, n := range []int{2, 5, 10, 17} {
			r, err := gen(n)
			if err != nil {
				t.Fatal(err)
			}
			for i := range r.Nodes {
				j := len(r.Nodes) - 1 - i
				if math.Abs(r.Nodes[i]+r.Nodes[j]) > 1e-10 {
					t.Errorf("n=%d: nodes %d/%d not symmetric: %g vs %g", n, i, j, r.Nodes[i], r.Nodes[j])
				}
				if math.Abs(r.Weights[i]-r.Weights[j]) > 1e-10 {
					t.Errorf("n=%d: weights %d/%d differ", n, i, j)
				}
			}
		}
	}
}
