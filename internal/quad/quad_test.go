package quad

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.15g, want %.15g (tol %g)", name, got, want, tol)
	}
}

func checkProbability(t *testing.T, r Rule) {
	t.Helper()
	s := 0.0
	for _, w := range r.Weights {
		if w < 0 {
			t.Errorf("negative weight %g", w)
		}
		s += w
	}
	approx(t, "weight sum", s, 1, 1e-12)
}

func TestGaussHermiteMoments(t *testing.T) {
	// n-point Gauss-Hermite integrates polynomials up to degree 2n-1
	// exactly; standard normal moments: E[x^k] = (k-1)!! for even k.
	r, err := GaussHermite(8)
	if err != nil {
		t.Fatal(err)
	}
	checkProbability(t, r)
	moments := map[int]float64{0: 1, 1: 0, 2: 1, 3: 0, 4: 3, 5: 0, 6: 15, 8: 105, 10: 945, 12: 10395, 14: 135135}
	for k, want := range moments {
		got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(k)) })
		approx(t, "E[x^k]", got, want, 1e-8*math.Max(1, want))
	}
}

func TestGaussHermiteSmallRules(t *testing.T) {
	// The 2-point rule is x = ±1 with weights 1/2.
	r, err := GaussHermite(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "node 0", r.Nodes[0], -1, 1e-12)
	approx(t, "node 1", r.Nodes[1], 1, 1e-12)
	approx(t, "weight 0", r.Weights[0], 0.5, 1e-12)
	// The 3-point rule is x = -√3, 0, √3 with weights 1/6, 2/3, 1/6.
	r3, err := GaussHermite(3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "3pt node", r3.Nodes[0], -math.Sqrt(3), 1e-12)
	approx(t, "3pt mid", r3.Nodes[1], 0, 1e-12)
	approx(t, "3pt w mid", r3.Weights[1], 2.0/3, 1e-12)
}

func TestGaussLegendreMoments(t *testing.T) {
	r, err := GaussLegendre(6)
	if err != nil {
		t.Fatal(err)
	}
	checkProbability(t, r)
	// Uniform on [-1,1]: E[x^k] = 1/(k+1) for even k, 0 for odd.
	for k := 0; k <= 11; k++ {
		want := 0.0
		if k%2 == 0 {
			want = 1 / float64(k+1)
		}
		got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(k)) })
		approx(t, "uniform moment", got, want, 1e-12)
	}
}

func TestGaussLegendreClassicNodes(t *testing.T) {
	// 2-point Gauss-Legendre: ±1/√3.
	r, err := GaussLegendre(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "node", r.Nodes[1], 1/math.Sqrt(3), 1e-13)
}

func TestGaussLaguerreMoments(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 2} {
		r, err := GaussLaguerre(7, alpha)
		if err != nil {
			t.Fatal(err)
		}
		checkProbability(t, r)
		// Gamma(α+1,1) moments: E[x^k] = Γ(α+1+k)/Γ(α+1).
		want := 1.0
		for k := 1; k <= 5; k++ {
			want *= alpha + float64(k)
			got := r.Integrate(func(x float64) float64 { return math.Pow(x, float64(k)) })
			approx(t, "gamma moment", got, want, 1e-9*want)
		}
	}
}

func TestGaussJacobiMoments(t *testing.T) {
	// Jacobi(α=1, β=2): density ∝ (1-x)(1+x)². Mean of the Beta-type
	// distribution on [-1,1]: with a=β+1=3, b=α+1=2 on [0,1] scale,
	// E[u] = a/(a+b) = 3/5, so E[x] = 2·(3/5) − 1 = 1/5.
	r, err := GaussJacobi(6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkProbability(t, r)
	mean := r.Integrate(func(x float64) float64 { return x })
	approx(t, "jacobi mean", mean, 0.2, 1e-12)
	// Var(u) = ab/((a+b)²(a+b+1)) = 6/(25·6) = 1/25; Var(x) = 4·Var(u).
	ex2 := r.Integrate(func(x float64) float64 { return x * x })
	approx(t, "jacobi var", ex2-mean*mean, 4.0/25, 1e-12)
}

func TestGaussJacobiSymmetricIsLegendreLike(t *testing.T) {
	// Jacobi(0,0) equals Legendre.
	rj, err := GaussJacobi(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := GaussLegendre(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rj.Nodes {
		approx(t, "node", rj.Nodes[i], rl.Nodes[i], 1e-12)
		approx(t, "weight", rj.Weights[i], rl.Weights[i], 1e-12)
	}
}

func TestRuleExactnessDegree(t *testing.T) {
	// n-point Gauss rule integrates degree 2n-1 exactly but not 2n:
	// check Hermite with the 2n-th moment.
	n := 4
	r, err := GaussHermite(n)
	if err != nil {
		t.Fatal(err)
	}
	// Degree 2n-1 = 7 exact: E[x^7] = 0 by symmetry — use x^6 (deg 6): 15.
	approx(t, "deg 6", r.Integrate(func(x float64) float64 { return math.Pow(x, 6) }), 15, 1e-9)
	// Degree 8 must be wrong for n=4: E[x^8] = 105.
	got := r.Integrate(func(x float64) float64 { return math.Pow(x, 8) })
	if math.Abs(got-105) < 1e-6 {
		t.Errorf("4-point rule unexpectedly exact at degree 8 (got %g)", got)
	}
}

func TestInvalidArguments(t *testing.T) {
	if _, err := GaussHermite(0); err == nil {
		t.Error("GaussHermite(0) should fail")
	}
	if _, err := GaussLaguerre(3, -1.5); err == nil {
		t.Error("GaussLaguerre with alpha <= -1 should fail")
	}
	if _, err := GaussJacobi(3, -2, 0); err == nil {
		t.Error("GaussJacobi with alpha <= -1 should fail")
	}
}

func TestSinglePointRules(t *testing.T) {
	r, err := GaussHermite(1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "1pt node", r.Nodes[0], 0, 1e-15)
	approx(t, "1pt weight", r.Weights[0], 1, 1e-15)
}

func TestNodesAscending(t *testing.T) {
	for _, n := range []int{2, 5, 11, 20, 40} {
		r, err := GaussHermite(n)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			if r.Nodes[i] <= r.Nodes[i-1] {
				t.Fatalf("n=%d: nodes not ascending at %d", n, i)
			}
		}
	}
}
