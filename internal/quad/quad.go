// Package quad computes Gaussian quadrature rules for the probability
// measures of the Askey scheme — Gauss–Hermite (Gaussian), Gauss–Legendre
// (uniform), Gauss–Laguerre (Gamma) and Gauss–Jacobi (Beta) — via the
// Golub–Welsch algorithm: the nodes are the eigenvalues of the symmetric
// tridiagonal Jacobi matrix of the monic three-term recurrence and the
// weights follow from the first components of its eigenvectors. All
// rules are normalized so that the weights sum to one, i.e. they
// integrate against a probability density. These rules provide the inner
// products that orthogonalize the polynomial chaos bases.
package quad

import (
	"fmt"
	"math"
)

// Rule is an n-point quadrature rule for a probability measure:
// ∫ f dP ≈ Σ Weights[i]·f(Nodes[i]).
type Rule struct {
	Nodes   []float64
	Weights []float64
}

// Integrate applies the rule to f.
func (r Rule) Integrate(f func(float64) float64) float64 {
	s := 0.0
	for i, x := range r.Nodes {
		s += r.Weights[i] * f(x)
	}
	return s
}

// golubWelsch computes the n-point rule from monic recurrence
// coefficients: p_{k+1}(x) = (x − a[k])·p_k(x) − b[k]·p_{k−1}(x), where
// b[0] = µ0 is the total mass of the measure.
func golubWelsch(a, b []float64) (Rule, error) {
	n := len(a)
	d := append([]float64(nil), a...)
	e := make([]float64, n)
	for k := 1; k < n; k++ {
		if b[k] < 0 {
			return Rule{}, fmt.Errorf("quad: negative recurrence coefficient b[%d] = %g", k, b[k])
		}
		e[k-1] = math.Sqrt(b[k])
	}
	z := make([]float64, n)
	z[0] = 1
	if err := imtqlx(d, e, z); err != nil {
		return Rule{}, err
	}
	w := make([]float64, n)
	mu0 := b[0]
	for i := range w {
		w[i] = mu0 * z[i] * z[i]
	}
	return Rule{Nodes: d, Weights: w}, nil
}

// imtqlx diagonalizes a symmetric tridiagonal matrix by the implicit QL
// method, simultaneously transforming the vector z (initialized to e₁)
// so that on return z holds the first components of the normalized
// eigenvectors. d is the diagonal (overwritten with eigenvalues in
// ascending order), e the subdiagonal (e[n-1] unused, destroyed). This
// is the classical IMTQLX routine used by Gaussian quadrature codes.
func imtqlx(d, e, z []float64) error {
	n := len(d)
	if n == 1 {
		return nil
	}
	const maxIter = 60
	prec := machineEps()
	e[n-1] = 0
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > maxIter {
				return fmt.Errorf("quad: tridiagonal eigen iteration failed to converge at row %d", l)
			}
			// Find a small subdiagonal element.
			m := l
			for ; m < n-1; m++ {
				if math.Abs(e[m]) <= prec*(math.Abs(d[m])+math.Abs(d[m+1])) {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				bb := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*bb
				p = s * r
				d[i+1] = g + p
				g = c*r - bb
				// Transform the z vector.
				f = z[i+1]
				z[i+1] = s*z[i] + c*f
				z[i] = c*z[i] - s*f
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	// Sort eigenvalues (and z) ascending by insertion sort.
	for i := 1; i < n; i++ {
		dv, zv := d[i], z[i]
		j := i - 1
		for j >= 0 && d[j] > dv {
			d[j+1] = d[j]
			z[j+1] = z[j]
			j--
		}
		d[j+1] = dv
		z[j+1] = zv
	}
	return nil
}

func machineEps() float64 {
	return math.Nextafter(1, 2) - 1
}

// GaussHermite returns the n-point rule for the standard Gaussian
// density (probabilists' convention: weight e^{−x²/2}/√(2π)).
func GaussHermite(n int) (Rule, error) {
	if n < 1 {
		return Rule{}, fmt.Errorf("quad: GaussHermite needs n >= 1, got %d", n)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	b[0] = 1 // total mass of a probability density
	for k := 1; k < n; k++ {
		b[k] = float64(k)
	}
	return golubWelsch(a, b)
}

// GaussLegendre returns the n-point rule for the uniform density on
// [−1, 1].
func GaussLegendre(n int) (Rule, error) {
	if n < 1 {
		return Rule{}, fmt.Errorf("quad: GaussLegendre needs n >= 1, got %d", n)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	b[0] = 1
	for k := 1; k < n; k++ {
		fk := float64(k)
		b[k] = fk * fk / (4*fk*fk - 1)
	}
	return golubWelsch(a, b)
}

// GaussLaguerre returns the n-point rule for the Gamma(α+1, 1)
// probability density x^α e^{−x}/Γ(α+1) on [0, ∞). α > −1.
func GaussLaguerre(n int, alpha float64) (Rule, error) {
	if n < 1 {
		return Rule{}, fmt.Errorf("quad: GaussLaguerre needs n >= 1, got %d", n)
	}
	if alpha <= -1 {
		return Rule{}, fmt.Errorf("quad: GaussLaguerre needs alpha > -1, got %g", alpha)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	b[0] = 1
	for k := 0; k < n; k++ {
		a[k] = 2*float64(k) + alpha + 1
		if k > 0 {
			b[k] = float64(k) * (float64(k) + alpha)
		}
	}
	return golubWelsch(a, b)
}

// GaussJacobi returns the n-point rule for the Beta-type probability
// density ∝ (1−x)^α (1+x)^β on [−1, 1]. α, β > −1.
func GaussJacobi(n int, alpha, beta float64) (Rule, error) {
	if n < 1 {
		return Rule{}, fmt.Errorf("quad: GaussJacobi needs n >= 1, got %d", n)
	}
	if alpha <= -1 || beta <= -1 {
		return Rule{}, fmt.Errorf("quad: GaussJacobi needs alpha, beta > -1, got %g, %g", alpha, beta)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	ab := alpha + beta
	a[0] = (beta - alpha) / (ab + 2)
	b[0] = 1 // normalized to probability mass
	for k := 1; k < n; k++ {
		fk := float64(k)
		den := 2*fk + ab
		a[k] = (beta*beta - alpha*alpha) / (den * (den + 2))
		if k == 1 {
			b[1] = 4 * (alpha + 1) * (beta + 1) / ((ab + 2) * (ab + 2) * (ab + 3))
		} else {
			b[k] = 4 * fk * (fk + alpha) * (fk + beta) * (fk + ab) /
				(den * den * (den + 1) * (den - 1))
		}
	}
	return golubWelsch(a, b)
}
