package experiments

import (
	"fmt"
	"io"

	"opera/internal/core"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/randvar"
	"opera/internal/report"
)

// FigureConfig parameterizes the Figures 1–2 reproduction: the
// voltage-drop distribution (% of occurrences vs drop as % of VDD) at a
// selected node, from Monte Carlo traces and from sampling OPERA's
// explicit expansion. The paper uses the 19,181-node grid; the default
// scales down.
type FigureConfig struct {
	Nodes        int
	MCSamples    int
	OperaSamples int
	Bins         int
	Order        int
	Step         float64
	Steps        int
	Seed         int64
	// NodeRank selects which node to plot: 0 = the maximum-drop node
	// (Figure 1), 1 = a second, mid-spread node (Figure 2).
	NodeRank int
}

// DefaultFigure returns the fast configuration for the given node rank.
func DefaultFigure(rank int) FigureConfig {
	return FigureConfig{
		Nodes:        2600,
		MCSamples:    1000,
		OperaSamples: 20000,
		Bins:         24,
		Order:        2,
		Step:         1e-10,
		Steps:        20,
		Seed:         1905,
		NodeRank:     rank,
	}
}

// FullFigure returns the paper-faithful size (19,181 nodes).
func FullFigure(rank int) FigureConfig {
	c := DefaultFigure(rank)
	c.Nodes = 19181
	return c
}

// FigureResult carries the two distribution series and metadata.
type FigureResult struct {
	Node, Step int
	MC, Opera  report.Series
	KS         float64 // two-sample Kolmogorov–Smirnov distance
}

// RunFigure executes the distribution experiment.
func RunFigure(cfg FigureConfig) (*FigureResult, error) {
	nl, err := grid.Build(grid.DefaultSpec(cfg.Nodes, cfg.Seed))
	if err != nil {
		return nil, err
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		return nil, err
	}
	opts := core.Options{Order: cfg.Order, Step: cfg.Step, Steps: cfg.Steps}
	// Pass 1: locate the interesting node.
	scout, err := core.Analyze(sys, opts)
	if err != nil {
		return nil, err
	}
	node, step := scout.MaxMeanDropNode()
	if cfg.NodeRank > 0 {
		node = pickMidSpreadNode(scout, step, cfg.NodeRank)
	}
	// Pass 2: track the selected node's full expansion.
	opts.TrackNodes = []int{node}
	op, err := core.Analyze(sys, opts)
	if err != nil {
		return nil, err
	}
	mc, _, err := core.RunMC(sys, opts, cfg.MCSamples, cfg.Seed+7, []int{node})
	if err != nil {
		return nil, err
	}
	// Voltage drops in % of VDD.
	mcDrops := make([]float64, len(mc.Traces))
	for k := range mc.Traces {
		mcDrops[k] = op.DropPercent(mc.Traces[k][step][0])
	}
	rng := randvar.NewStream(cfg.Seed+13, 1)
	opSamples := op.Tracked[node][step].Sample(rng, cfg.OperaSamples)
	opDrops := make([]float64, len(opSamples))
	for i, v := range opSamples {
		opDrops[i] = op.DropPercent(v)
	}
	lo, hi := rangeOf(append(append([]float64(nil), mcDrops...), opDrops...))
	pad := 0.05 * (hi - lo)
	hMC := randvar.NewHistogram(lo-pad, hi+pad, cfg.Bins)
	hOp := randvar.NewHistogram(lo-pad, hi+pad, cfg.Bins)
	hMC.PushAll(mcDrops)
	hOp.PushAll(opDrops)
	res := &FigureResult{
		Node: node,
		Step: step,
		MC:   report.Series{Name: "MC", X: hMC.BinCenters(), Y: hMC.Percent()},
		Opera: report.Series{
			Name: "OPERA", X: hOp.BinCenters(), Y: hOp.Percent(),
		},
		KS: randvar.KolmogorovSmirnov(mcDrops, opDrops),
	}
	return res, nil
}

// pickMidSpreadNode returns a node whose mean drop sits in the middle
// of the grid's drop range at the given step — the paper's "arbitrarily
// selected" second node, chosen deterministically.
func pickMidSpreadNode(op *core.Result, step, rank int) int {
	maxDrop := 0.0
	for _, v := range op.Mean[step] {
		if d := op.VDD - v; d > maxDrop {
			maxDrop = d
		}
	}
	target := maxDrop * (1 - 0.25*float64(rank))
	best, bestDist := 0, maxDrop
	for i, v := range op.Mean[step] {
		d := op.VDD - v
		dist := abs(d - target)
		if dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}

func rangeOf(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// WriteFigure runs the experiment and renders the chart plus CSV.
func WriteFigure(w io.Writer, cfg FigureConfig, title string) (*FigureResult, error) {
	res, err := RunFigure(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "%s — voltage distribution at node %d (time step %d), KS = %.4f\n\n",
		title, res.Node, res.Step, res.KS)
	if err := report.AsciiChart(w, "voltage drop as % VDD", "% of occurrences", 30, res.MC, res.Opera); err != nil {
		return nil, err
	}
	fmt.Fprintln(w)
	if err := report.WriteSeriesCSV(w, "drop_pct_vdd", res.MC, res.Opera); err != nil {
		return nil, err
	}
	return res, nil
}
