package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"opera/internal/core"
	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/obs"
	"opera/internal/report"
)

// OrderSweepRow records accuracy and cost at one expansion order — the
// paper's §5.2 claim that "an order 2/order 3 expansion [is]
// sufficiently accurate" made quantitative.
type OrderSweepRow struct {
	Order        int
	BasisSize    int
	AugmentedN   int
	AvgErrStdPct float64
	OperaTime    time.Duration
}

// RunOrderSweep compares expansion orders 1..maxOrder against a
// high-sample Monte Carlo reference on one grid.
func RunOrderSweep(nodes, maxOrder, mcSamples int, seed int64) ([]OrderSweepRow, error) {
	nl, err := grid.Build(grid.DefaultSpec(nodes, seed))
	if err != nil {
		return nil, err
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		return nil, err
	}
	base := core.Options{Step: 1e-10, Steps: 20}
	mc, _, err := core.RunMC(sys, base, mcSamples, seed+1, nil)
	if err != nil {
		return nil, err
	}
	nominal, err := core.NominalRun(sys, base)
	if err != nil {
		return nil, err
	}
	rows := make([]OrderSweepRow, 0, maxOrder)
	for p := 1; p <= maxOrder; p++ {
		opts := base
		opts.Order = p
		op, err := core.Analyze(sys, opts)
		if err != nil {
			return nil, err
		}
		acc, err := core.CompareWithMC(op, mc, nominal)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OrderSweepRow{
			Order:        p,
			BasisSize:    op.Basis.Size(),
			AugmentedN:   op.Galerkin.AugmentedN,
			AvgErrStdPct: acc.AvgErrStdPct,
			OperaTime:    op.Elapsed,
		})
	}
	return rows, nil
}

// FormatOrderSweep renders the sweep.
func FormatOrderSweep(rows []OrderSweepRow) *report.Table {
	t := report.NewTable("Order p", "Basis N+1", "Augmented n(N+1)", "Ave %Err σ", "CPU (s)")
	for _, r := range rows {
		t.AddRow(r.Order, r.BasisSize, r.AugmentedN,
			fmt.Sprintf("%.2f", r.AvgErrStdPct), fmt.Sprintf("%.3f", r.OperaTime.Seconds()))
	}
	return t
}

// OrderingRow records the augmented-factorization cost under one
// fill-reducing ordering.
type OrderingRow struct {
	Ordering  galerkin.Ordering
	FactorNNZ int
	OperaTime time.Duration
}

// RunOrderingAblation compares ND, RCM, MD and natural orderings on the
// augmented system of one grid.
func RunOrderingAblation(nodes int, seed int64, orderings []galerkin.Ordering) ([]OrderingRow, error) {
	nl, err := grid.Build(grid.DefaultSpec(nodes, seed))
	if err != nil {
		return nil, err
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		return nil, err
	}
	rows := make([]OrderingRow, 0, len(orderings))
	for _, ord := range orderings {
		opts := core.Options{Order: 2, Step: 1e-10, Steps: 20, Ordering: ord}
		op, err := core.Analyze(sys, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OrderingRow{
			Ordering:  ord,
			FactorNNZ: op.Galerkin.FactorNNZ,
			OperaTime: op.Elapsed,
		})
	}
	return rows, nil
}

// FormatOrderingAblation renders the ordering comparison.
func FormatOrderingAblation(rows []OrderingRow) *report.Table {
	t := report.NewTable("Ordering", "nnz(L) augmented", "CPU (s)")
	for _, r := range rows {
		t.AddRow(r.Ordering.String(), r.FactorNNZ, fmt.Sprintf("%.3f", r.OperaTime.Seconds()))
	}
	return t
}

// SpecialCaseResult compares the §5.1 decoupled path against the forced
// coupled solve and the lognormal Monte Carlo baseline.
type SpecialCaseResult struct {
	Nodes          int
	Regions        int
	DecoupledTime  time.Duration
	CoupledTime    time.Duration
	MCTime         time.Duration
	MCSamples      int
	MaxMeanDiff    float64 // decoupled vs coupled (must be ~0)
	AvgErrStdPctMC float64 // OPERA vs MC
}

// RunSpecialCase executes the §5.1 experiment on a generated grid.
func RunSpecialCase(nodes, regions, order, mcSamples int, sigma float64, seed int64) (*SpecialCaseResult, error) {
	spec := grid.DefaultSpec(nodes, seed)
	// Make regions², the grid generator partitions a side into
	// `Regions` stripes per axis.
	spec.Regions = regions
	nl, err := grid.Build(spec)
	if err != nil {
		return nil, err
	}
	lopts := core.LeakageOptions{
		Regions:   spec.NumRegions(),
		SigmaLogI: sigma,
		Order:     order,
		Step:      1e-10,
		Steps:     15,
	}
	dec, err := core.AnalyzeLeakage(nl, lopts)
	if err != nil {
		return nil, err
	}
	if !dec.Galerkin.Decoupled {
		return nil, fmt.Errorf("experiments: decoupled path not taken")
	}
	coup, err := analyzeLeakageCoupled(nl, lopts)
	if err != nil {
		return nil, err
	}
	mc, err := core.RunLeakageMC(nl, lopts, mcSamples, seed+3)
	if err != nil {
		return nil, err
	}
	res := &SpecialCaseResult{
		Nodes:         dec.N,
		Regions:       lopts.Regions,
		DecoupledTime: dec.Elapsed,
		CoupledTime:   coup.Elapsed,
		MCTime:        mc.Elapsed,
		MCSamples:     mcSamples,
	}
	for s := range dec.Mean {
		for i := range dec.Mean[s] {
			if d := abs(dec.Mean[s][i] - coup.Mean[s][i]); d > res.MaxMeanDiff {
				res.MaxMeanDiff = d
			}
		}
	}
	// σ error vs MC at the final step over loaded nodes.
	sLast := lopts.Steps
	maxStd := 0.0
	for i := range mc.Variance[sLast] {
		if sd := sqrt(mc.Variance[sLast][i]); sd > maxStd {
			maxStd = sd
		}
	}
	var sum float64
	var cnt int
	for i := range mc.Variance[sLast] {
		sdMC := sqrt(mc.Variance[sLast][i])
		if sdMC > 0.01*maxStd {
			sum += 100 * abs(sqrt(dec.Variance[sLast][i])-sdMC) / sdMC
			cnt++
		}
	}
	if cnt > 0 {
		res.AvgErrStdPctMC = sum / float64(cnt)
	}
	return res, nil
}

// analyzeLeakageCoupled forces the full augmented solve for the same
// system (ablation reference).
func analyzeLeakageCoupled(nl *netlist.Netlist, lopts core.LeakageOptions) (*core.Result, error) {
	return core.AnalyzeLeakageForceCoupled(nl, lopts)
}

// WriteSpecialCase runs and prints the §5.1 experiment.
func WriteSpecialCase(w io.Writer, nodes, regions, order, mcSamples int, sigma float64, seed int64) (*SpecialCaseResult, error) {
	res, err := RunSpecialCase(nodes, regions, order, mcSamples, sigma, seed)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Special case (§5.1): %d nodes, %d regions, lognormal leakage σ=%.2g\n",
		res.Nodes, res.Regions, sigma)
	t := report.NewTable("Path", "CPU (s)", "Notes")
	t.AddRow("OPERA decoupled (Eq. 27)", fmt.Sprintf("%.3f", res.DecoupledTime.Seconds()),
		"one n-size factorization, N+1 recursions")
	t.AddRow("OPERA coupled", fmt.Sprintf("%.3f", res.CoupledTime.Seconds()),
		fmt.Sprintf("max mean diff vs decoupled %.2g", res.MaxMeanDiff))
	t.AddRow(fmt.Sprintf("Monte Carlo (%d)", res.MCSamples), fmt.Sprintf("%.3f", res.MCTime.Seconds()),
		fmt.Sprintf("OPERA σ err %.2f%%", res.AvgErrStdPctMC))
	if err := t.Write(w); err != nil {
		return nil, err
	}
	return res, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// SolverRow records one solver path's cost on the same grid — the §5.2
// study: direct block factorization of the augmented system versus the
// mean-preconditioned iterative block solver.
type SolverRow struct {
	Path         string
	OperaTime    time.Duration
	FactorNNZ    int
	CGIterations int
	MaxMeanDiff  float64 // vs the direct path
}

// RunSolverAblation compares the direct and iterative coupled solvers.
func RunSolverAblation(nodes int, seed int64) ([]SolverRow, error) {
	nl, err := grid.Build(grid.DefaultSpec(nodes, seed))
	if err != nil {
		return nil, err
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		return nil, err
	}
	base := core.Options{Order: 2, Step: 1e-10, Steps: 20}
	direct, err := core.Analyze(sys, base)
	if err != nil {
		return nil, err
	}
	iterOpts := base
	iterOpts.Iterative = true
	// A private tracer supplies the CG-iteration count: the counter
	// replaced the old galerkin.Result.CGIterations field.
	iterObs := obs.New("solver-ablation")
	iterOpts.Obs = iterObs
	iter, err := core.Analyze(sys, iterOpts)
	if err != nil {
		return nil, err
	}
	cgIters := int(iterObs.Registry().Counter("galerkin.cg_iterations_total").Value())
	maxDiff := 0.0
	for s := range direct.Mean {
		for i := range direct.Mean[s] {
			if d := abs(direct.Mean[s][i] - iter.Mean[s][i]); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return []SolverRow{
		{Path: "direct block Cholesky", OperaTime: direct.Elapsed,
			FactorNNZ: direct.Galerkin.FactorNNZ},
		{Path: "CG + mean preconditioner (§5.2)", OperaTime: iter.Elapsed,
			FactorNNZ: iter.Galerkin.FactorNNZ, CGIterations: cgIters,
			MaxMeanDiff: maxDiff},
	}, nil
}

// FormatSolverAblation renders the solver comparison.
func FormatSolverAblation(rows []SolverRow) *report.Table {
	t := report.NewTable("Solver path", "CPU (s)", "Factor nnz", "CG iters", "Max µ diff")
	for _, r := range rows {
		t.AddRow(r.Path, fmt.Sprintf("%.3f", r.OperaTime.Seconds()),
			r.FactorNNZ, r.CGIterations, fmt.Sprintf("%.2g", r.MaxMeanDiff))
	}
	return t
}

// MORRow compares full-grid OPERA against MOR-accelerated OPERA at the
// observation ports (§5.2's complexity-reduction suggestion).
type MORRow struct {
	Nodes      int
	ReducedK   int
	FullTime   time.Duration
	ReduceTime time.Duration
	SolveTime  time.Duration
	// MaxSigmaErrPct is the worst relative σ deviation at the ports.
	MaxSigmaErrPct float64
}

// RunMORAblation reduces a grid to its worst-drop port neighborhood and
// compares cost and port accuracy against the full stochastic solve.
func RunMORAblation(nodes, moments int, seed int64) (*MORRow, error) {
	nl, err := grid.Build(grid.DefaultSpec(nodes, seed))
	if err != nil {
		return nil, err
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		return nil, err
	}
	opts := core.Options{Order: 2, Step: 1e-10, Steps: 20}
	full, err := core.Analyze(sys, opts)
	if err != nil {
		return nil, err
	}
	node, _ := full.MaxMeanDropNode()
	ports := []int{node}
	red, err := core.AnalyzeReduced(sys, ports, moments, opts)
	if err != nil {
		return nil, err
	}
	row := &MORRow{
		Nodes: sys.N, ReducedK: red.K,
		FullTime: full.Elapsed, ReduceTime: red.ReduceTime, SolveTime: red.SolveTime,
	}
	for s := 0; s <= opts.Steps; s++ {
		sdF := sqrt(full.Variance[s][node])
		sdR := sqrt(red.Variance[s][0])
		if sdF > 1e-5 {
			if e := 100 * abs(sdR-sdF) / sdF; e > row.MaxSigmaErrPct {
				row.MaxSigmaErrPct = e
			}
		}
	}
	return row, nil
}

// FormatMORAblation renders the comparison.
func FormatMORAblation(r *MORRow) *report.Table {
	t := report.NewTable("Model", "States", "CPU (s)", "Max σ err at port")
	t.AddRow("full stochastic Galerkin", r.Nodes, fmt.Sprintf("%.3f", r.FullTime.Seconds()), "—")
	t.AddRow("MOR + stochastic Galerkin", r.ReducedK,
		fmt.Sprintf("%.3f (reduce %.3f + solve %.3f)",
			(r.ReduceTime+r.SolveTime).Seconds(), r.ReduceTime.Seconds(), r.SolveTime.Seconds()),
		fmt.Sprintf("%.2f%%", r.MaxSigmaErrPct))
	return t
}
