package experiments

import (
	"bytes"
	"strings"
	"testing"

	"opera/internal/galerkin"
)

// Small, fast configurations keep these integration tests in seconds;
// the full experiment scales are exercised by the benchmarks.

func TestRunTable1Small(t *testing.T) {
	cfg := Table1Config{
		Sizes:     []int{150, 300},
		MCSamples: 120,
		Order:     2,
		Step:      1e-10,
		Steps:     10,
		Seed:      1,
	}
	rows, err := RunTable1(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgErrMeanPct > 1 {
			t.Errorf("grid %d: mean error %g%%", r.Nodes, r.AvgErrMeanPct)
		}
		if r.AvgErrStdPct > 15 {
			t.Errorf("grid %d: std error %g%%", r.Nodes, r.AvgErrStdPct)
		}
		if r.Speedup <= 1 {
			t.Errorf("grid %d: speedup %g — OPERA should beat 120-sample MC", r.Nodes, r.Speedup)
		}
		if r.ThreeSigmaPct < 5 || r.ThreeSigmaPct > 80 {
			t.Errorf("grid %d: ±3σ %g%% of µ0 implausible", r.Nodes, r.ThreeSigmaPct)
		}
	}
	var buf bytes.Buffer
	if err := FormatTable1(rows).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Error("formatted table missing header")
	}
}

func TestRunFigureSmall(t *testing.T) {
	cfg := FigureConfig{
		Nodes: 300, MCSamples: 400, OperaSamples: 4000, Bins: 16,
		Order: 2, Step: 1e-10, Steps: 10, Seed: 3, NodeRank: 0,
	}
	res, err := RunFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KS > 0.12 {
		t.Errorf("KS distance %g: OPERA and MC distributions disagree", res.KS)
	}
	sumMC, sumOp := 0.0, 0.0
	for i := range res.MC.Y {
		sumMC += res.MC.Y[i]
		sumOp += res.Opera.Y[i]
	}
	if sumMC < 99.9 || sumOp < 99.9 {
		t.Errorf("percent series don't total 100: %g %g", sumMC, sumOp)
	}
	// Figure 2 variant picks a different node.
	cfg.NodeRank = 1
	res2, err := RunFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Node == res.Node {
		t.Error("figure 2 node should differ from figure 1 node")
	}
}

func TestWriteFigureOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := FigureConfig{
		Nodes: 200, MCSamples: 200, OperaSamples: 2000, Bins: 12,
		Order: 2, Step: 1e-10, Steps: 8, Seed: 5, NodeRank: 0,
	}
	if _, err := WriteFigure(&buf, cfg, "Figure 1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1", "% of occurrences", "drop_pct_vdd", "MC", "OPERA"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestOrderSweep(t *testing.T) {
	rows, err := RunOrderSweep(250, 3, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Basis sizes: C(2+p, p) = 3, 6, 10.
	for i, want := range []int{3, 6, 10} {
		if rows[i].BasisSize != want {
			t.Errorf("order %d basis %d, want %d", i+1, rows[i].BasisSize, want)
		}
	}
	// At this grid's variation level every order's truncation error is
	// below the 400-sample MC reference's own σ noise (~3-4% relative),
	// so a strict order-2 < order-1 ranking is a coin flip on the draw
	// sequence — the noise-free convergence assertion lives in
	// galerkin's quadrature-referenced TestOrder3ImprovesOnOrder2.
	// Here assert that every order lands inside the noise envelope and
	// that escalating the order never degrades the error beyond it.
	for _, r := range rows {
		if r.AvgErrStdPct > 5 {
			t.Errorf("order %d σ error %g%% outside the MC noise envelope", r.Order, r.AvgErrStdPct)
		}
	}
	if rows[1].AvgErrStdPct > rows[0].AvgErrStdPct+2.5 {
		t.Errorf("order 2 σ error %g%% degrades order 1's %g%% beyond MC noise",
			rows[1].AvgErrStdPct, rows[0].AvgErrStdPct)
	}
}

func TestOrderingAblation(t *testing.T) {
	rows, err := RunOrderingAblation(250, 9,
		[]galerkin.Ordering{galerkin.OrderND, galerkin.OrderRCM, galerkin.OrderNatural})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// ND must beat natural ordering on factor fill.
	var nd, natural int
	for _, r := range rows {
		switch r.Ordering {
		case galerkin.OrderND:
			nd = r.FactorNNZ
		case galerkin.OrderNatural:
			natural = r.FactorNNZ
		}
	}
	if nd == 0 || natural == 0 {
		t.Fatal("missing fill data")
	}
	if nd >= natural {
		t.Errorf("ND fill %d should beat natural %d", nd, natural)
	}
}

func TestSpecialCaseExperiment(t *testing.T) {
	var buf bytes.Buffer
	res, err := WriteSpecialCase(&buf, 250, 2, 3, 400, 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMeanDiff > 1e-9 {
		t.Errorf("decoupled and coupled paths disagree by %g", res.MaxMeanDiff)
	}
	if res.AvgErrStdPctMC > 15 {
		t.Errorf("σ error vs MC %g%%", res.AvgErrStdPctMC)
	}
	if res.DecoupledTime > res.CoupledTime {
		t.Logf("note: decoupled %.3fs vs coupled %.3fs (expected faster at scale)",
			res.DecoupledTime.Seconds(), res.CoupledTime.Seconds())
	}
	if !strings.Contains(buf.String(), "Eq. 27") {
		t.Error("report missing the decoupled path row")
	}
}

func TestSolverAblation(t *testing.T) {
	rows, err := RunSolverAblation(250, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[1].MaxMeanDiff > 1e-8 {
		t.Errorf("solver paths disagree by %g", rows[1].MaxMeanDiff)
	}
	if rows[1].CGIterations == 0 {
		t.Error("iterative path reported zero iterations")
	}
	// The iterative path factors only the scalar mean system.
	if rows[1].FactorNNZ >= rows[0].FactorNNZ {
		t.Errorf("iterative factor nnz %d should be far below direct %d",
			rows[1].FactorNNZ, rows[0].FactorNNZ)
	}
}

func TestMORAblation(t *testing.T) {
	row, err := RunMORAblation(300, 10, 21)
	if err != nil {
		t.Fatal(err)
	}
	if row.ReducedK >= row.Nodes/2 {
		t.Errorf("reduction ineffective: K=%d of %d", row.ReducedK, row.Nodes)
	}
	if row.MaxSigmaErrPct > 5 {
		t.Errorf("port σ error %g%% too large", row.MaxSigmaErrPct)
	}
	var buf bytes.Buffer
	if err := FormatMORAblation(row).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MOR") {
		t.Error("missing MOR row")
	}
}

func TestFullConfigsShape(t *testing.T) {
	full := FullTable1()
	if len(full.Sizes) != 7 || full.Sizes[0] != 19181 || full.Sizes[6] != 351838 {
		t.Errorf("FullTable1 sizes %v must match the paper's grids", full.Sizes)
	}
	if full.MCSamples != 1000 {
		t.Errorf("FullTable1 samples %d, want the paper's 1000", full.MCSamples)
	}
	fig := FullFigure(0)
	if fig.Nodes != 19181 {
		t.Errorf("FullFigure nodes %d, want 19181", fig.Nodes)
	}
	def := DefaultTable1()
	if def.MCSamples != 1000 {
		t.Errorf("default table must keep the paper's 1000 samples, got %d", def.MCSamples)
	}
}

func TestWriteTable1(t *testing.T) {
	var buf bytes.Buffer
	cfg := Table1Config{Sizes: []int{120}, MCSamples: 40, Order: 1, Step: 1e-10, Steps: 5, Seed: 3}
	rows, err := WriteTable1(&buf, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("missing title")
	}
}
