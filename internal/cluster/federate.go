package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"opera/internal/obs"
)

// Metrics federation: GET /metrics/cluster scrapes every shard's
// /metrics JSON snapshot under a bounded per-shard timeout and
// re-exposes the union in the text exposition format with a
// {shard="s<i>"} label on every sample, plus {shard="cluster"}
// aggregate rows — counters summed, fixed-bucket histograms merged
// bucket-wise (exact, see obs.WriteFederatedProm). The router's own
// registry rides along as {shard="router"}. An unreachable shard is
// counted in cluster.scrape_errors_total and noted in a comment line,
// never a hard failure: a half-scraped cluster view beats no view
// during exactly the incidents that make operators look.

// scrapeMetrics fetches one shard's /metrics JSON snapshot.
func (r *Router) scrapeMetrics(ctx context.Context, shardURL string) (obs.MetricsSnapshot, error) {
	var snap obs.MetricsSnapshot
	ctx, cancel := context.WithTimeout(ctx, r.scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shardURL+"/metrics", nil)
	if err != nil {
		return snap, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("cluster: metrics scrape of %s: %s", shardURL, resp.Status)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&snap); err != nil {
		return snap, err
	}
	return snap, nil
}

// handleClusterMetrics serves GET /metrics/cluster.
func (r *Router) handleClusterMetrics(w http.ResponseWriter, req *http.Request) {
	type scraped struct {
		name string
		snap obs.MetricsSnapshot
		err  error
	}
	rows := make([]scraped, len(r.shards))
	done := make(chan int, len(r.shards))
	for i, shardURL := range r.shards {
		go func(i int, u string) {
			snap, err := r.scrapeMetrics(req.Context(), u)
			rows[i] = scraped{name: r.names[u], snap: snap, err: err}
			done <- i
		}(i, shardURL)
	}
	for range r.shards {
		<-done
	}
	var errLines []string
	shards := map[string]obs.MetricsSnapshot{}
	for _, row := range rows {
		if row.err != nil {
			r.mScrapeErrs.Inc()
			errLines = append(errLines, fmt.Sprintf("# scrape error: %s %v\n", row.name, row.err))
			continue
		}
		shards[row.name] = row.snap
	}
	// The router's own registry joins after the scrape-error counter has
	// been bumped, so the exposition below reflects this very request's
	// failures too.
	shards[routerShard] = r.reg.Snapshot()
	sort.Strings(errLines)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, l := range errLines {
		io.WriteString(w, l)
	}
	if err := obs.WriteFederatedProm(w, shards); err != nil && r.log != nil {
		r.log.Warn("cluster.metrics_write", "err", err.Error())
	}
}
