package cluster

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// Live sweep timeline. The router already knows every cell of a sweep
// deterministically (the expanded matrix and each cell's content key),
// so a progress view costs only a small in-memory table: per cell, the
// predicted ring owner at expansion time, then the actual shard and
// wall time as the cell runs and lands. GET /v1/sweep/{id}/progress
// serves the aggregate — done/running/queued per shard plus an ETA
// from the running mean cell time — while the NDJSON stream is still
// flowing, and for a while after (bounded retention, FIFO eviction).

// maxTrackedSweeps bounds the progress table; the oldest sweep is
// evicted when a new one starts past the cap.
const maxTrackedSweeps = 16

// Cell states in the progress view.
const (
	cellQueued  = "queued"
	cellRunning = "running"
	cellDone    = "done"
	cellFailed  = "failed"
)

// cellState is one matrix cell's place in the timeline.
type cellState struct {
	state     string
	shard     string // predicted owner while queued/running; actual shard once finished
	elapsedMS float64
}

// sweepState is one sweep's live table.
type sweepState struct {
	id       string
	total    int
	skipped  int
	workers  int
	started  time.Time
	cells    map[int]*cellState
	done     int
	failed   int
	sumMS    float64 // wall time of finished cells, for the running mean
	complete bool
}

// sweepProgress tracks recent sweeps' timelines.
type sweepProgress struct {
	mu     sync.Mutex
	sweeps map[string]*sweepState
	order  []string // insertion order, for FIFO eviction
}

func newSweepProgress() *sweepProgress {
	return &sweepProgress{sweeps: map[string]*sweepState{}}
}

// start registers a sweep's full cell table. cells maps index to the
// predicted owner shard name; skipped cells (resume) are not listed.
func (p *sweepProgress) start(id string, total, skipped, workers int, cells map[int]string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.sweeps[id]; !exists {
		p.order = append(p.order, id)
		for len(p.order) > maxTrackedSweeps {
			delete(p.sweeps, p.order[0])
			p.order = p.order[1:]
		}
	}
	st := &sweepState{
		id:      id,
		total:   total,
		skipped: skipped,
		workers: workers,
		started: time.Now(),
		cells:   make(map[int]*cellState, len(cells)),
	}
	for idx, shard := range cells {
		st.cells[idx] = &cellState{state: cellQueued, shard: shard}
	}
	p.sweeps[id] = st
}

// running marks a cell dispatched to a worker.
func (p *sweepProgress) running(id string, index int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.sweeps[id]
	if st == nil {
		return
	}
	if c := st.cells[index]; c != nil {
		c.state = cellRunning
	}
}

// finish records a cell's landing: the shard that actually ran it
// (which may differ from the prediction after a failover) and its wall
// time.
func (p *sweepProgress) finish(id string, index int, shard string, elapsedMS float64, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.sweeps[id]
	if st == nil {
		return
	}
	c := st.cells[index]
	if c == nil {
		c = &cellState{}
		st.cells[index] = c
	}
	if shard != "" {
		c.shard = shard
	}
	c.elapsedMS = elapsedMS
	if failed {
		c.state = cellFailed
		st.failed++
	} else {
		c.state = cellDone
		st.done++
	}
	st.sumMS += elapsedMS
}

// complete marks the sweep's stream finished.
func (p *sweepProgress) complete(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.sweeps[id]; st != nil {
		st.complete = true
	}
}

// shardProgress is one shard's row in the progress reply.
type shardProgress struct {
	Shard      string  `json:"shard"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	Running    int     `json:"running"`
	Queued     int     `json:"queued"`
	MeanCellMS float64 `json:"mean_cell_ms,omitempty"`
	sumMS      float64
}

// progressReply is the GET /v1/sweep/{id}/progress body.
type progressReply struct {
	SweepID    string  `json:"sweep_id"`
	Total      int     `json:"total"`
	Skipped    int     `json:"skipped,omitempty"`
	Done       int     `json:"done"`
	Failed     int     `json:"failed"`
	Running    int     `json:"running"`
	Queued     int     `json:"queued"`
	Complete   bool    `json:"complete"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	MeanCellMS float64 `json:"mean_cell_ms,omitempty"`
	// ETAMS extrapolates the remaining cells from the running mean cell
	// time across the worker pool; 0 until the first cell lands.
	ETAMS  float64         `json:"eta_ms,omitempty"`
	Shards []shardProgress `json:"shards"`
}

// snapshot assembles the progress reply for one sweep.
func (p *sweepProgress) snapshot(id string) (progressReply, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.sweeps[id]
	if st == nil {
		return progressReply{}, false
	}
	rep := progressReply{
		SweepID:   st.id,
		Total:     st.total,
		Skipped:   st.skipped,
		Done:      st.done,
		Failed:    st.failed,
		Complete:  st.complete,
		ElapsedMS: float64(time.Since(st.started)) / float64(time.Millisecond),
	}
	byShard := map[string]*shardProgress{}
	row := func(shard string) *shardProgress {
		sp := byShard[shard]
		if sp == nil {
			sp = &shardProgress{Shard: shard}
			byShard[shard] = sp
		}
		return sp
	}
	for _, c := range st.cells {
		sp := row(c.shard)
		switch c.state {
		case cellDone:
			sp.Done++
			sp.sumMS += c.elapsedMS
		case cellFailed:
			sp.Failed++
			sp.sumMS += c.elapsedMS
		case cellRunning:
			sp.Running++
			rep.Running++
		default:
			sp.Queued++
			rep.Queued++
		}
	}
	finished := st.done + st.failed
	if finished > 0 {
		rep.MeanCellMS = st.sumMS / float64(finished)
		workers := st.workers
		if workers < 1 {
			workers = 1
		}
		remaining := float64(rep.Running + rep.Queued)
		rep.ETAMS = remaining * rep.MeanCellMS / float64(workers)
	}
	for _, sp := range byShard {
		if n := sp.Done + sp.Failed; n > 0 {
			sp.MeanCellMS = sp.sumMS / float64(n)
		}
		rep.Shards = append(rep.Shards, *sp)
	}
	sort.Slice(rep.Shards, func(i, j int) bool { return rep.Shards[i].Shard < rep.Shards[j].Shard })
	return rep, true
}

// handleSweepProgress serves GET /v1/sweep/{id}/progress.
func (r *Router) handleSweepProgress(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	rep, ok := r.progress.snapshot(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "unknown sweep " + id, Kind: "unknown_sweep"})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
