// Package cluster is the stateless operad cluster router: it
// consistent-hashes each request's canonical content key (the sha256
// the result cache and the shards' peer ring use) onto a ring of operad
// shards, so identical requests land on the same shard cluster-wide —
// cache hits and in-flight coalescing work across every entry point.
//
// The router holds no job state of its own. Job identity crosses the
// hop as "<shard>~<local id>" (e.g. "s0~job-000042"), so status, result
// and cancel route back to the owning shard without a lookup table, and
// result bytes are forwarded verbatim — the byte-identity guarantee of
// the content-addressed cache survives the extra hop, as does the
// X-Opera-Trace-Id header in both directions.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"opera/internal/cluster/ring"
	"opera/internal/obs"
	"opera/internal/obs/logx"
	"opera/internal/service"
)

// idSep joins the shard name and the shard-local job ID in routed job
// IDs. Local IDs ("job-000042") never contain it.
const idSep = "~"

// maxSweepBody bounds POST /v1/sweep request bodies.
const maxSweepBody = 16 << 20

// Options configures a Router.
type Options struct {
	// Shards lists the operad base URLs ("host:port" or full URL) the
	// router fans out to. Required, order-insensitive: ring placement
	// depends only on the set, and shard names (s0, s1, ...) follow the
	// normalized sort order so every router instance agrees.
	Shards []string
	// Replicas is the virtual-node count per shard on the hash ring
	// (0 = ring.DefaultReplicas). Every router and shard in a cluster
	// must agree on this for ownership to agree.
	Replicas int
	// SweepWorkers bounds how many sweep cells run concurrently per
	// stream (0 = 4 per shard).
	SweepWorkers int
	// Registry receives the router's metrics (nil = private registry):
	// per-shard route counters, forward-latency histograms, failover
	// and sweep counters.
	Registry *obs.Registry
	// Logger, when non-nil, records routing decisions and failovers.
	Logger *slog.Logger
	// HTTPClient overrides the transport used to reach shards (tests).
	HTTPClient *http.Client
	// SpanRingBytes bounds the router's forward-span retention for
	// /debug/trace stitching (0 = 4 MiB default; negative disables).
	SpanRingBytes int64
	// ScrapeTimeout bounds each per-shard scrape during /metrics/cluster
	// federation and /debug/trace span collection (0 = 2s).
	ScrapeTimeout time.Duration
}

// defaultSpanRingBytes is the router's forward-span retention budget
// when Options.SpanRingBytes is zero.
const defaultSpanRingBytes = 4 << 20

// defaultScrapeTimeout bounds per-shard scrapes when
// Options.ScrapeTimeout is zero.
const defaultScrapeTimeout = 2 * time.Second

// Router is the cluster front door. Construct with New, serve with
// Handler.
type Router struct {
	shards []string          // normalized, sorted — index is the shard name
	names  map[string]string // base URL -> "s<i>"
	urls   map[string]string // "s<i>" -> base URL
	ring   *ring.Ring
	hc     *http.Client
	reg    *obs.Registry
	log    *slog.Logger

	sweepWorkers  int
	scrapeTimeout time.Duration
	spans         *obs.SpanRing  // router forward spans, for trace stitching
	progress      *sweepProgress // live per-sweep cell timelines

	mRoute      map[string]*obs.Counter // per-shard cluster.route_total.s<i>
	hForward    *obs.Histogram          // cluster.forward_ms
	mFailover   *obs.Counter            // cluster.failover_total
	mSweeps     *obs.Counter            // cluster.sweeps_total
	mCells      *obs.Counter            // cluster.sweep_cells_total
	mCellErrs   *obs.Counter            // cluster.sweep_cell_failures_total
	mResub      *obs.Counter            // cluster.sweep_resubmits_total
	mScrapeErrs *obs.Counter            // cluster.scrape_errors_total
}

// New builds a router over the given shard set.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	seen := map[string]bool{}
	var shards []string
	for _, s := range opts.Shards {
		u := normalizeURL(s)
		if !seen[u] {
			seen[u] = true
			shards = append(shards, u)
		}
	}
	rg := ring.New(shards, opts.Replicas)
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	workers := opts.SweepWorkers
	if workers <= 0 {
		workers = 4 * len(shards)
	}
	ringBytes := opts.SpanRingBytes
	if ringBytes == 0 {
		ringBytes = defaultSpanRingBytes
	}
	scrapeTO := opts.ScrapeTimeout
	if scrapeTO <= 0 {
		scrapeTO = defaultScrapeTimeout
	}
	r := &Router{
		shards:        rg.Members(), // normalized sort order fixes the names
		names:         map[string]string{},
		urls:          map[string]string{},
		ring:          rg,
		hc:            hc,
		reg:           reg,
		log:           opts.Logger,
		sweepWorkers:  workers,
		scrapeTimeout: scrapeTO,
		spans:         obs.NewSpanRing(ringBytes),
		progress:      newSweepProgress(),
		mRoute:        map[string]*obs.Counter{},
		hForward:      reg.Histogram("cluster.forward_ms", obs.MSBuckets),
		mFailover:     reg.Counter("cluster.failover_total"),
		mSweeps:       reg.Counter("cluster.sweeps_total"),
		mCells:        reg.Counter("cluster.sweep_cells_total"),
		mCellErrs:     reg.Counter("cluster.sweep_cell_failures_total"),
		mResub:        reg.Counter("cluster.sweep_resubmits_total"),
		mScrapeErrs:   reg.Counter("cluster.scrape_errors_total"),
	}
	for i, u := range r.shards {
		name := fmt.Sprintf("s%d", i)
		r.names[u] = name
		r.urls[name] = u
		r.mRoute[u] = reg.Counter("cluster.route_total." + name)
	}
	return r, nil
}

func normalizeURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// Shards returns the normalized shard URLs in name order (s0, s1, ...).
func (r *Router) Shards() []string {
	return append([]string(nil), r.shards...)
}

// Handler returns the router's HTTP API — the same surface a single
// operad serves, plus the bulk sweep endpoint:
//
//	POST   /v1/jobs             route by content key to the owning shard
//	GET    /v1/jobs             fan-out job listing (IDs shard-prefixed)
//	GET    /v1/jobs/{id}        status from the owning shard
//	GET    /v1/jobs/{id}/result stored result bytes, verbatim
//	DELETE /v1/jobs/{id}        cancel on the owning shard
//	POST   /v1/sweep            corner × load × seed matrix, NDJSON stream
//	GET    /v1/sweep/{id}/progress  live per-shard sweep timeline
//	GET    /healthz             router liveness
//	GET    /readyz              aggregated shard readiness
//	GET    /metrics             router metrics snapshot
//	GET    /metrics/cluster     federated exposition across every shard
//	GET    /debug/trace/{id}    stitched cross-shard trace (?format=text for a waterfall)
//	GET    /debug/spans/{trace} the router's own span fragment
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", r.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", r.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", r.handleJob(""))
	mux.HandleFunc("GET /v1/jobs/{id}/result", r.handleJob("/result"))
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.handleJob(""))
	mux.HandleFunc("POST /v1/sweep", r.handleSweep)
	mux.HandleFunc("GET /v1/sweep/{id}/progress", r.handleSweepProgress)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", r.handleReady)
	mux.Handle("GET /metrics", obs.MetricsHandler(r.reg))
	mux.HandleFunc("GET /metrics/cluster", r.handleClusterMetrics)
	mux.Handle("GET /debug/build", obs.BuildHandler())
	mux.HandleFunc("GET /debug/trace/{id}", r.handleTrace)
	if r.spans != nil {
		mux.HandleFunc("GET /debug/spans/{trace}", func(w http.ResponseWriter, req *http.Request) {
			r.spans.ServeTrace(w, routerShard, req.PathValue("trace"))
		})
	}
	return mux
}

// joinID and splitID map between cluster job IDs and (shard, local ID).
func (r *Router) joinID(shardURL, local string) string {
	return r.names[shardURL] + idSep + local
}

func (r *Router) splitID(id string) (shardURL, local string, ok bool) {
	name, local, found := strings.Cut(id, idSep)
	if !found {
		return "", "", false
	}
	u, ok := r.urls[name]
	return u, local, ok
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type httpError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
	Trace string `json:"trace_id,omitempty"`
}

// forward proxies one request to a shard, echoing the trace and cache
// key headers and recording the per-shard route counter plus the
// forward-latency histogram. rewrite, when non-nil, transforms the
// response body (job-ID prefixing) on 2xx responses.
func (r *Router) forward(w http.ResponseWriter, req *http.Request, shardURL, path string, body []byte, rewrite func([]byte) ([]byte, error)) {
	resp, data, err := r.roundTrip(req, shardURL, path, body)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, httpError{Error: err.Error(), Kind: "shard_unreachable"})
		return
	}
	if rewrite != nil && resp.StatusCode < 300 {
		if data, err = rewrite(data); err != nil {
			writeJSON(w, http.StatusBadGateway, httpError{Error: err.Error(), Kind: "bad_shard_reply"})
			return
		}
	}
	copyHeaders(w, resp)
	w.WriteHeader(resp.StatusCode)
	w.Write(data)
}

// roundTrip sends one request to a shard and reads the full reply.
func (r *Router) roundTrip(req *http.Request, shardURL, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, shardURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		out.Header.Set("Content-Type", "application/json")
	}
	if tid := req.Header.Get(service.TraceIDHeader); tid != "" {
		out.Header.Set(service.TraceIDHeader, tid)
	}
	start := time.Now()
	resp, err := r.hc.Do(out)
	r.hForward.ObserveSince(start)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if c := r.mRoute[shardURL]; c != nil {
		c.Inc()
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func copyHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{service.TraceIDHeader, service.CacheKeyHeader, "Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// handleSubmit routes a submission to its content key's owner shard,
// failing over along the ring when the owner is draining or
// unreachable. The response's job ID comes back shard-prefixed.
func (r *Router) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxSweepBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, httpError{Error: err.Error(), Kind: "limit"})
		return
	}
	var sreq service.Request
	if err := json.Unmarshal(body, &sreq); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	sreq.Normalize()
	key := sreq.Key()
	seq := r.ring.Sequence(key)
	var lastErr error
	for i, shardURL := range seq {
		start := time.Now()
		resp, data, err := r.roundTrip(req, shardURL, "/v1/jobs", body)
		if err == nil && !isDraining(resp, data) {
			if i > 0 {
				r.mFailover.Add(int64(i))
			}
			// The shard echoes the effective trace ID even on submissions
			// that supplied none, so the forward span always joins the
			// right trace.
			r.recordForwardSpan(resp.Header.Get(service.TraceIDHeader), shardURL, start, i, resp.StatusCode)
			if r.log != nil {
				r.log.LogAttrs(req.Context(), slog.LevelDebug, "cluster.route",
					slog.String(logx.KeyKey, key),
					slog.String(logx.KeyPeer, shardURL),
					slog.Int(logx.KeyAttempt, i))
			}
			rewritten := data
			var sub service.SubmitResponse
			if resp.StatusCode < 300 && json.Unmarshal(data, &sub) == nil {
				sub.ID = r.joinID(shardURL, sub.ID)
				if b, err := json.Marshal(sub); err == nil {
					rewritten = append(b, '\n')
				}
			}
			copyHeaders(w, resp)
			w.WriteHeader(resp.StatusCode)
			w.Write(rewritten)
			return
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("shard %s draining", r.names[shardURL])
		}
		if r.log != nil {
			r.log.LogAttrs(req.Context(), slog.LevelWarn, "cluster.failover",
				slog.String(logx.KeyKey, key),
				slog.String(logx.KeyPeer, shardURL),
				slog.String(logx.KeyError, lastErr.Error()))
		}
	}
	writeJSON(w, http.StatusServiceUnavailable,
		httpError{Error: "no shard accepted the job: " + lastErr.Error(), Kind: "draining"})
}

// isDraining reports whether a shard reply is a 503 drain rejection
// (the one submit outcome the router retries on the next ring member;
// 429 queue-full passes through — backoff is the client's call).
func isDraining(resp *http.Response, data []byte) bool {
	if resp.StatusCode != http.StatusServiceUnavailable {
		return false
	}
	var he httpError
	return json.Unmarshal(data, &he) == nil && he.Kind == "draining"
}

// handleJob serves status (""), result ("/result") and cancel by
// routing on the ID's shard prefix.
func (r *Router) handleJob(suffix string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		shardURL, local, ok := r.splitID(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, httpError{Error: "unknown job " + id, Kind: "unknown_job"})
			return
		}
		var rewrite func([]byte) ([]byte, error)
		if suffix == "" {
			// Status and cancel replies carry the shard-local ID;
			// re-prefix it. Result bytes pass through verbatim.
			rewrite = func(data []byte) ([]byte, error) {
				var st service.JobStatus
				if err := json.Unmarshal(data, &st); err != nil {
					return nil, err
				}
				st.ID = r.joinID(shardURL, st.ID)
				b, err := json.Marshal(st)
				return append(b, '\n'), err
			}
		}
		r.forward(w, req, shardURL, "/v1/jobs/"+local+suffix, nil, rewrite)
	}
}

// handleList fans the listing out to every shard and merges, with
// shard-prefixed IDs. An unreachable shard contributes nothing (the
// aggregate readiness endpoint is where its absence shows up).
func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	var (
		mu  sync.Mutex
		all = []service.JobStatus{}
		wg  sync.WaitGroup
	)
	for _, shardURL := range r.shards {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			resp, data, err := r.roundTrip(req, u, "/v1/jobs", nil)
			if err != nil || resp.StatusCode != http.StatusOK {
				return
			}
			var jobs []service.JobStatus
			if json.Unmarshal(data, &jobs) != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for i := range jobs {
				jobs[i].ID = r.joinID(u, jobs[i].ID)
				all = append(all, jobs[i])
			}
		}(shardURL)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, all)
}

// shardReady is one shard's row in the aggregated readiness reply.
type shardReady struct {
	Shard      string `json:"shard"`
	URL        string `json:"url"`
	Ready      bool   `json:"ready"`
	Reason     string `json:"reason,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Error      string `json:"error,omitempty"`
}

// handleReady aggregates every shard's /readyz. The cluster is ready
// when at least one shard can accept work — a draining shard during a
// rolling restart must not take the whole front door down.
func (r *Router) handleReady(w http.ResponseWriter, req *http.Request) {
	rows := make([]shardReady, len(r.shards))
	var wg sync.WaitGroup
	for i, shardURL := range r.shards {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			row := shardReady{Shard: r.names[u], URL: u}
			resp, data, err := r.roundTrip(req, u, "/readyz", nil)
			if err != nil {
				row.Error = err.Error()
			} else {
				var body struct {
					Ready      bool   `json:"ready"`
					Reason     string `json:"reason"`
					QueueDepth int    `json:"queue_depth"`
				}
				if json.Unmarshal(data, &body) == nil {
					row.Ready, row.Reason, row.QueueDepth = body.Ready, body.Reason, body.QueueDepth
				} else {
					row.Error = fmt.Sprintf("bad readyz reply (HTTP %d)", resp.StatusCode)
				}
			}
			rows[i] = row
		}(i, shardURL)
	}
	wg.Wait()
	ready := false
	for _, row := range rows {
		if row.Ready {
			ready = true
			break
		}
	}
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Ready  bool         `json:"ready"`
		Shards []shardReady `json:"shards"`
	}{Ready: ready, Shards: rows})
}

// transportErr reports whether err is a network-level failure (as
// opposed to a structured API rejection).
func transportErr(err error) bool {
	var ue *url.Error
	return errors.As(err, &ue)
}
