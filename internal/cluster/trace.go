package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"opera/internal/obs"
)

// Cross-shard trace stitching. Each shard retains its jobs' span
// fragments in an obs.SpanRing served at /debug/spans/{trace}; the
// router retains its own forward spans the same way. GET
// /debug/trace/{id} fans out to every ring member, merges the
// fragments, and reassembles one tree — router forward span at the
// root, each shard's job container beneath it, the solver's six phase
// spans beneath that — rendered as JSON or, with ?format=text, as an
// ASCII waterfall.

// routerShard is the router's self-name in span exports, distinct from
// every "s<i>" shard name.
const routerShard = "router"

// spanPathForward is the router's forward-span path; its deterministic
// ID is what shard job-root spans are re-parented under when stitching.
const spanPathForward = "forward"

// recordForwardSpan retains the router's view of one routed submission:
// target shard, attempt count (failovers), status. Called after the
// round trip, because the trace ID of an ID-less submission is only
// known from the shard's reply.
func (r *Router) recordForwardSpan(traceID, shardURL string, start time.Time, attempt, status int) {
	if r.spans == nil || traceID == "" {
		return
	}
	r.spans.Add(obs.SyntheticSpan(
		traceID, routerShard, spanPathForward, "", "router.forward",
		start, time.Since(start),
		obs.String("shard", r.names[shardURL]),
		obs.Int("attempt", attempt),
		obs.Int("status", status),
	))
}

// StitchNode is one span in a stitched trace tree.
type StitchNode struct {
	obs.ExportSpan
	Spans []*StitchNode `json:"spans,omitempty"`
}

// StitchedTrace is the /debug/trace/{id} reply: one tree assembled from
// every process's fragment, plus which shards contributed.
type StitchedTrace struct {
	TraceID   string      `json:"trace_id"`
	Shards    []string    `json:"shards"`
	SpanCount int         `json:"span_count"`
	Root      *StitchNode `json:"root"`
}

// Stitch reassembles one tree from span fragments. Spans are deduped by
// span ID (fragments may overlap after resubmissions); children attach
// to their ParentID when that span is present, and any remaining roots
// hang under the router's forward span — or, when no router span is
// present (e.g. a trace submitted directly to a shard), under a
// synthesized container — ordered by start time.
func Stitch(traceID string, spans []obs.ExportSpan) *StitchedTrace {
	byID := map[string]*StitchNode{}
	var order []string
	shards := map[string]bool{}
	for _, es := range spans {
		if es.SpanID == "" {
			continue
		}
		if _, dup := byID[es.SpanID]; !dup {
			order = append(order, es.SpanID)
		}
		byID[es.SpanID] = &StitchNode{ExportSpan: es}
		if es.Shard != "" {
			shards[es.Shard] = true
		}
	}
	var roots []*StitchNode
	for _, id := range order {
		n := byID[id]
		if p := byID[n.ParentID]; p != nil && n.ParentID != n.SpanID {
			p.Spans = append(p.Spans, n)
		} else {
			roots = append(roots, n)
		}
	}
	st := &StitchedTrace{TraceID: traceID, SpanCount: len(order)}
	for s := range shards {
		st.Shards = append(st.Shards, s)
	}
	sort.Strings(st.Shards)
	if len(roots) == 0 {
		return st
	}
	// Root selection: the earliest router span wins (the cluster entry
	// point); otherwise synthesize a container so the reply is always
	// one tree.
	var root *StitchNode
	for _, n := range roots {
		if n.Shard == routerShard && (root == nil || n.StartUS < root.StartUS) {
			root = n
		}
	}
	if root == nil {
		if len(roots) == 1 {
			root = roots[0]
		} else {
			root = &StitchNode{ExportSpan: obs.ExportSpan{
				SpanID:  obs.SpanID(traceID, "", "stitch"),
				TraceID: traceID,
				Name:    "trace",
			}}
		}
	}
	minUS, maxUS := int64(0), int64(0)
	for i, n := range roots {
		if i == 0 || n.StartUS < minUS {
			minUS = n.StartUS
		}
		if end := n.StartUS + int64(n.DurMS*1000); i == 0 || end > maxUS {
			maxUS = end
		}
		if n != root {
			root.Spans = append(root.Spans, n)
		}
	}
	if root.DurMS == 0 && maxUS > minUS {
		// A synthesized (or zero-duration) root stretches to cover its
		// children so the waterfall has a denominator.
		root.StartUS = minUS
		root.DurMS = float64(maxUS-minUS) / 1000
	}
	sortTree(root)
	st.Root = root
	return st
}

func sortTree(n *StitchNode) {
	sort.SliceStable(n.Spans, func(i, j int) bool { return n.Spans[i].StartUS < n.Spans[j].StartUS })
	for _, c := range n.Spans {
		sortTree(c)
	}
}

// collectTrace gathers a trace's span fragments from the router's own
// ring and every shard's /debug/spans endpoint, each scrape bounded by
// the router's scrape timeout. Unreachable shards and 404s contribute
// nothing — stitching is best-effort over whatever survives.
func (r *Router) collectTrace(ctx context.Context, traceID string) []obs.ExportSpan {
	var (
		mu  sync.Mutex
		all []obs.ExportSpan
	)
	all = append(all, r.spans.Get(traceID)...)
	var wg sync.WaitGroup
	for _, shardURL := range r.shards {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			frag, err := r.scrapeSpans(ctx, u, traceID)
			if err != nil {
				return
			}
			mu.Lock()
			all = append(all, frag...)
			mu.Unlock()
		}(shardURL)
	}
	wg.Wait()
	return all
}

// scrapeSpans fetches one shard's fragment for a trace. A 404 (shard
// retains nothing for this trace) is an empty fragment, not an error.
func (r *Router) scrapeSpans(ctx context.Context, shardURL, traceID string) ([]obs.ExportSpan, error) {
	ctx, cancel := context.WithTimeout(ctx, r.scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shardURL+"/debug/spans/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: span scrape of %s: %s", shardURL, resp.Status)
	}
	var frag obs.TraceFragment
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&frag); err != nil {
		return nil, err
	}
	return frag.Spans, nil
}

// handleTrace serves GET /debug/trace/{id}: the stitched cross-shard
// trace as JSON, or an ASCII waterfall with ?format=text. 404 when no
// process retains anything for the ID.
func (r *Router) handleTrace(w http.ResponseWriter, req *http.Request) {
	traceID := req.PathValue("id")
	spans := r.collectTrace(req.Context(), traceID)
	if len(spans) == 0 {
		writeJSON(w, http.StatusNotFound, httpError{Error: "no spans retained for trace " + traceID, Kind: "unknown_trace", Trace: traceID})
		return
	}
	st := Stitch(traceID, spans)
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteWaterfall(w, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// waterfallCols is the bar area width of the ASCII waterfall.
const waterfallCols = 48

// WriteWaterfall renders a stitched trace as an indented ASCII
// waterfall: one line per span (name, shard, start offset, duration)
// with a proportional bar aligned to the trace's earliest start. Spans
// from different processes share the absolute-time axis, so clock skew
// between machines shows up as bars that lead their parent — visible,
// not hidden.
func WriteWaterfall(w io.Writer, st *StitchedTrace) {
	if st.Root == nil {
		fmt.Fprintf(w, "trace %s: no spans\n", st.TraceID)
		return
	}
	minUS, maxEndUS := st.Root.StartUS, st.Root.StartUS
	var walk func(n *StitchNode)
	walk = func(n *StitchNode) {
		if n.StartUS < minUS {
			minUS = n.StartUS
		}
		if end := n.StartUS + int64(n.DurMS*1000); end > maxEndUS {
			maxEndUS = end
		}
		for _, c := range n.Spans {
			walk(c)
		}
	}
	walk(st.Root)
	totalMS := float64(maxEndUS-minUS) / 1000
	fmt.Fprintf(w, "trace %s — shards [%s], %d spans, %s total\n",
		st.TraceID, strings.Join(st.Shards, " "), st.SpanCount, fmtDurMS(totalMS))
	writeWaterfallNode(w, st.Root, 0, minUS, totalMS)
}

func writeWaterfallNode(w io.Writer, n *StitchNode, depth int, minUS int64, totalMS float64) {
	label := strings.Repeat("  ", depth) + n.Name
	if n.Shard != "" {
		label += " [" + n.Shard + "]"
	}
	startMS := float64(n.StartUS-minUS) / 1000
	bar := waterfallBar(startMS, n.DurMS, totalMS)
	fmt.Fprintf(w, "  %-44s %10s %10s  |%s|\n", clip(label, 44), fmtDurMS(startMS), fmtDurMS(n.DurMS), bar)
	for _, c := range n.Spans {
		writeWaterfallNode(w, c, depth+1, minUS, totalMS)
	}
}

// waterfallBar positions a span proportionally on the shared time axis.
func waterfallBar(startMS, durMS, totalMS float64) string {
	if totalMS <= 0 {
		return strings.Repeat(" ", waterfallCols)
	}
	lead := int(startMS / totalMS * waterfallCols)
	width := int(durMS / totalMS * waterfallCols)
	if lead < 0 {
		lead = 0
	}
	if lead >= waterfallCols {
		lead = waterfallCols - 1
	}
	if width < 1 {
		width = 1
	}
	if lead+width > waterfallCols {
		width = waterfallCols - lead
	}
	return strings.Repeat(" ", lead) + strings.Repeat("=", width) + strings.Repeat(" ", waterfallCols-lead-width)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func fmtDurMS(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.2fs", v/1000)
	case v >= 1:
		return fmt.Sprintf("%.1fms", v)
	default:
		return fmt.Sprintf("%.3fms", v)
	}
}
