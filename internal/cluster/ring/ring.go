// Package ring is the cluster's consistent-hash ring: a deterministic
// map from content keys (the sha256 cache keys computed in
// internal/service) to shard members. Both the stateless router and
// the peer-aware shards hash with the same ring, so a request's owner
// is agreed on by every process that holds the same member list — no
// coordination, no state.
//
// Each member is projected onto the ring at Replicas pseudo-random
// points (FNV-64a of "member#i"), which smooths the key distribution
// and keeps reassignment local when a member joins or leaves: only the
// keys in the departed member's arcs move, everything else stays put.
// The package is dependency-free so both internal/service (peer peek,
// drain handoff) and internal/cluster (the router) can import it.
package ring

import (
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per member. 64 points per
// member keeps the worst/best member load ratio under ~1.3 for small
// clusters, which is plenty for a cache-affinity ring (a mild
// imbalance costs a few extra peer peeks, not correctness).
const DefaultReplicas = 64

type point struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring. Build with New; lookups
// are safe for concurrent use.
type Ring struct {
	members  []string
	replicas int
	points   []point
}

// New builds a ring over members with the given virtual-node count
// (replicas <= 0 uses DefaultReplicas). Duplicate and empty members
// are dropped; order of the input does not affect key placement (only
// the member strings do).
func New(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	// Sort members so the member→index mapping (and therefore tie
	// breaking) is independent of input order.
	sort.Strings(uniq)
	r := &Ring{members: uniq, replicas: replicas}
	r.points = make([]point, 0, len(uniq)*replicas)
	for mi, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{
				hash:   fnv64a(m + "#" + strconv.Itoa(i)),
				member: mi,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Len returns the number of distinct members.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the distinct members in sorted order. The returned
// slice is shared — callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Owner returns the member that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.search(key)].member]
}

// Sequence returns every member in preference order for key: the owner
// first, then each distinct successor walking clockwise. This is the
// failover order — a caller that cannot reach members[0] should try
// members[1], and a key's entry lands on the same shard no matter
// which member the walk started from.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make(map[int]bool, len(r.members))
	for i, n := r.search(key), len(r.points); len(out) < len(r.members); i++ {
		p := r.points[i%n]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Without returns a new ring with member removed (a no-op copy when
// member is absent). Keys owned by the survivors keep their owners —
// only the removed member's keys are reassigned.
func (r *Ring) Without(member string) *Ring {
	rest := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	return New(rest, r.replicas)
}

// search returns the index of the first point with hash >= hash(key),
// wrapping to 0 past the end.
func (r *Ring) search(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	if i == len(r.points) {
		i = 0
	}
	return i
}

// fnv64a is the 64-bit FNV-1a hash run through a splitmix64
// finalizer. Raw FNV clusters badly on short strings that differ only
// in a suffix (exactly what "member#i" vnode labels are); the
// finalizer's avalanche spreads those points over the whole ring.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
