package ring

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// keys returns n distinct sha256-hex keys — the same shape the service
// layer hashes onto the ring.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestOwnerDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"s0", "s1", "s2"}, 64)
	b := New([]string{"s2", "s0", "s1"}, 64)
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner depends on member input order for %s", k)
		}
		if a.Owner(k) != a.Owner(k) {
			t.Fatalf("owner not deterministic for %s", k)
		}
	}
}

func TestDistributionRoughlyBalanced(t *testing.T) {
	r := New([]string{"s0", "s1", "s2", "s3"}, 0) // default replicas
	counts := map[string]int{}
	ks := keys(4000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	for m, c := range counts {
		frac := float64(c) / float64(len(ks))
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys — ring badly unbalanced", m, 100*frac)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d of 4 members own keys", len(counts))
	}
}

func TestSequenceOwnerFirstAllDistinct(t *testing.T) {
	r := New([]string{"s0", "s1", "s2"}, 32)
	for _, k := range keys(100) {
		seq := r.Sequence(k)
		if len(seq) != 3 {
			t.Fatalf("sequence length %d, want 3", len(seq))
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("sequence does not start with the owner")
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("duplicate member %s in sequence", m)
			}
			seen[m] = true
		}
	}
}

// TestWithoutMovesOnlyDepartedKeys pins the consistency property the
// drain handoff relies on: removing one member reassigns only the keys
// it owned; every other key keeps its owner, so surviving shards keep
// their cache affinity.
func TestWithoutMovesOnlyDepartedKeys(t *testing.T) {
	full := New([]string{"s0", "s1", "s2", "s3"}, 64)
	reduced := full.Without("s2")
	if reduced.Len() != 3 {
		t.Fatalf("reduced ring has %d members, want 3", reduced.Len())
	}
	moved, kept := 0, 0
	for _, k := range keys(2000) {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before == "s2" {
			if after == "s2" {
				t.Fatalf("key %s still owned by removed member", k)
			}
			moved++
			continue
		}
		if before != after {
			t.Errorf("key %s moved %s→%s though its owner survived", k, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestEmptyAndSingleRings(t *testing.T) {
	empty := New(nil, 8)
	if empty.Owner("k") != "" || empty.Sequence("k") != nil {
		t.Error("empty ring must return zero values")
	}
	one := New([]string{"only", "only", ""}, 8)
	if one.Len() != 1 || one.Owner("k") != "only" {
		t.Error("duplicates and empties must collapse to one member")
	}
	if got := one.Sequence("k"); len(got) != 1 || got[0] != "only" {
		t.Errorf("single-member sequence = %v", got)
	}
}
