package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"opera/internal/obs"
	"opera/internal/obs/logx"
	"opera/internal/service"
)

// SweepIDHeader carries the sweep's deterministic ID on the stream
// response, so a client that supplied no sweep_id learns the handle it
// can resume with before the first line arrives.
const SweepIDHeader = "X-Opera-Sweep-Id"

// handleSweep expands a corner × load × seed matrix and streams one
// JSON line per cell as results land, in completion order, ending with
// an EOF summary line. Each cell routes by its own content key, so the
// matrix fans out across the whole ring; a shard draining mid-sweep
// just causes those cells to be resubmitted along the ring (counted in
// cluster.sweep_resubmits_total), and a resumed sweep (same matrix,
// Done listing the cells already held) costs only the missing cells.
func (r *Router) handleSweep(w http.ResponseWriter, req *http.Request) {
	var sw service.SweepRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxSweepBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, httpError{Error: err.Error(), Kind: "limit"})
		return
	}
	if err := json.Unmarshal(body, &sw); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	if sw.Base.TraceID == "" {
		sw.Base.TraceID = req.Header.Get(service.TraceIDHeader)
	}
	if sw.Base.TraceID == "" {
		// A base ID guarantees every cell a distinct, derived trace ID —
		// the property that makes a sweep joinable in shard telemetry.
		sw.Base.TraceID = string(obs.NewTraceID())
	}
	jobs, err := sw.Expand()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error(), Trace: sw.Base.TraceID})
		return
	}
	sweepID := sw.ID(jobs)
	skip := make(map[int]bool, len(sw.Done))
	for _, i := range sw.Done {
		skip[i] = true
	}
	r.mSweeps.Inc()
	workers := r.sweepWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// Seed the progress table with every pending cell's predicted ring
	// owner; runCell overwrites with the actual shard as cells land.
	pending := map[int]string{}
	for _, job := range jobs {
		if !skip[job.Index] {
			pending[job.Index] = r.names[r.ring.Owner(job.Req.Key())]
		}
	}
	r.progress.start(sweepID, len(jobs), len(sw.Done), workers, pending)
	if r.log != nil {
		r.log.LogAttrs(req.Context(), slog.LevelInfo, "cluster.sweep",
			slog.String("sweep", sweepID),
			slog.String(logx.KeyTrace, sw.Base.TraceID),
			slog.Int("cells", len(jobs)),
			slog.Int("skipped", len(sw.Done)))
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(service.TraceIDHeader, sw.Base.TraceID)
	w.Header().Set(SweepIDHeader, sweepID)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx := req.Context()
	work := make(chan service.SweepJob)
	lines := make(chan service.SweepLine)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				line := r.runCell(ctx, sweepID, len(jobs), job)
				select {
				case lines <- line:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for _, job := range jobs {
			if skip[job.Index] {
				continue
			}
			select {
			case work <- job:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(lines)
	}()

	enc := json.NewEncoder(w)
	done, failed := 0, 0
	for line := range lines {
		if line.Error == "" {
			done++
		} else {
			failed++
		}
		if enc.Encode(line) != nil {
			// Client went away; the context cancel tears the workers
			// down — drain so the writer goroutines don't block.
			go func() {
				for range lines {
				}
			}()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	r.progress.complete(sweepID)
	enc.Encode(service.SweepLine{
		SweepID: sweepID, Total: len(jobs), EOF: true,
		DoneCells: done, Failed: failed,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// runCell runs one matrix cell to completion through the ring: submit
// to the cell's key owner, fail over along the ring while shards drain
// or die, and return the cell's stream line (result bytes verbatim on
// success).
func (r *Router) runCell(ctx context.Context, sweepID string, total int, job service.SweepJob) service.SweepLine {
	line := service.SweepLine{
		SweepID: sweepID,
		Index:   job.Index,
		Total:   total,
		Corner:  job.Corner,
		Load:    job.Load,
		Seed:    job.Seed,
		TraceID: job.Req.TraceID,
		Key:     job.Req.Key(),
	}
	r.progress.running(sweepID, job.Index)
	c := service.NewRingClient(r.ring.Sequence(line.Key))
	c.HTTPClient = r.hc
	c.Logger = r.log
	start := time.Now()
	data, info, err := c.RunBytes(ctx, job.Req)
	line.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	line.Shard = r.names[info.Member]
	defer func() { r.progress.finish(sweepID, job.Index, line.Shard, line.ElapsedMS, line.Error != "") }()
	if info.JobID != "" {
		line.JobID = r.names[info.Member] + idSep + info.JobID
	}
	line.State = info.Status.State
	line.Cached = info.Cached
	line.Degraded = info.Status.Degraded
	line.HandedOff = info.HandedOff
	line.Resubmits = info.Resubmits
	r.mCells.Inc()
	r.mResub.Add(int64(info.Resubmits))
	if err != nil {
		line.Error = err.Error()
		if line.State == "" {
			line.State = service.StateFailed
		}
		r.mCellErrs.Inc()
		if r.log != nil && !transportErr(err) {
			r.log.LogAttrs(ctx, slog.LevelWarn, "cluster.sweep_cell_failed",
				slog.String("sweep", sweepID),
				slog.Int("index", job.Index),
				slog.String(logx.KeyTrace, line.TraceID),
				slog.String(logx.KeyError, err.Error()))
		}
		return line
	}
	line.Result = json.RawMessage(data)
	return line
}
