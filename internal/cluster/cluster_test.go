package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/obs"
	"opera/internal/service"
)

// testShard is one in-process operad shard behind an httptest listener.
type testShard struct {
	srv *service.Server
	hs  *httptest.Server
	reg *obs.Registry
}

func (s *testShard) counter(name string) int64 {
	return s.reg.Counter(name).Value()
}

// newCluster starts n peer-linked shards and a router in front of
// them, all in-process.
func newCluster(t *testing.T, n int, opts service.Options) (*Router, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := range shards {
		reg := obs.NewRegistry()
		o := opts
		o.Registry = reg
		srv, err := service.New(o)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		shards[i] = &testShard{srv: srv, hs: hs, reg: reg}
		urls[i] = hs.URL
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			hs.Close()
		})
	}
	for i, s := range shards {
		s.srv.SetPeers(urls[i], urls)
	}
	router, err := New(Options{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	return router, shards
}

func quickRequest(seed int64) service.Request {
	spec := grid.DefaultSpec(64, seed)
	return service.Request{Grid: &spec, Steps: 3, Step: 1e-10}
}

// totalSolves sums the executed-job counters across shards — the
// "exactly one solve" assertion of the cluster cache contract (cache
// hits and coalesced submissions never start a job, so completed jobs
// count solves).
func totalSolves(shards []*testShard) int64 {
	var n int64
	for _, s := range shards {
		n += s.counter("service.jobs_completed_total")
	}
	return n
}

// runThrough submits req through the handler and returns the final
// result bytes.
func runThrough(t *testing.T, h http.Handler, req service.Request) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	sub := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, sub)
	if rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var sr service.SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatalf("submit reply: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := httptest.NewRecorder()
		h.ServeHTTP(st, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+sr.ID, nil))
		if st.Code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %s", sr.ID, st.Code, st.Body.String())
		}
		var js service.JobStatus
		if err := json.Unmarshal(st.Body.Bytes(), &js); err != nil {
			t.Fatal(err)
		}
		switch js.State {
		case service.StateDone:
			res := httptest.NewRecorder()
			h.ServeHTTP(res, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+sr.ID+"/result", nil))
			if res.Code != http.StatusOK {
				t.Fatalf("result: HTTP %d: %s", res.Code, res.Body.String())
			}
			return res.Body.Bytes()
		case service.StateFailed, service.StateCanceled:
			t.Fatalf("job %s ended %s: %s", sr.ID, js.State, js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", sr.ID)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterSingleSolve is the tentpole e2e: the same request enters
// the cluster through the router and then directly through each shard;
// every answer is byte-identical and the cluster solves exactly once.
func TestClusterSingleSolve(t *testing.T) {
	router, shards := newCluster(t, 2, service.Options{
		QueueDepth: 8, ConcurrentJobs: 1, CacheBytes: 16 << 20,
	})
	h := router.Handler()
	req := quickRequest(42)

	first := runThrough(t, h, req)
	if len(first) == 0 {
		t.Fatal("empty result")
	}
	// Through the router again: a cluster-wide cache hit.
	second := runThrough(t, h, req)
	if !bytes.Equal(first, second) {
		t.Error("router replay is not byte-identical")
	}
	// Directly via each shard: the non-owner peeks the owner's cache
	// and serves the same bytes without solving.
	for i, s := range shards {
		direct := runThrough(t, s.srv.Handler(), req)
		if !bytes.Equal(first, direct) {
			t.Errorf("shard %d direct replay is not byte-identical", i)
		}
	}
	if n := totalSolves(shards); n != 1 {
		t.Errorf("cluster solved %d times, want exactly 1", n)
	}
	var peeks int64
	for _, s := range shards {
		peeks += s.counter("service.peer_peek_hits_total")
	}
	if peeks == 0 {
		t.Error("no peer peek hits recorded — direct submissions did not use the peek protocol")
	}
}

// TestClusterRoutesByKey: submissions route deterministically by
// content key, and job routes (status/result/cancel) follow the shard
// prefix.
func TestClusterRoutesByKey(t *testing.T) {
	router, _ := newCluster(t, 3, service.Options{
		QueueDepth: 8, ConcurrentJobs: 1, CacheBytes: 16 << 20,
	})
	h := router.Handler()
	req := quickRequest(7)
	req.Normalize()
	wantOwner := router.names[router.ring.Owner(req.Key())]

	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", rec.Code)
	}
	var sr service.SubmitResponse
	json.Unmarshal(rec.Body.Bytes(), &sr)
	if !strings.HasPrefix(sr.ID, wantOwner+idSep) {
		t.Errorf("job %s not routed to owner %s", sr.ID, wantOwner)
	}
	if rec.Header().Get(service.CacheKeyHeader) != req.Key() {
		t.Errorf("cache key header %q, want %q", rec.Header().Get(service.CacheKeyHeader), req.Key())
	}

	// Unknown prefixes 404 cleanly.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/zz~job-000001", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown shard prefix: HTTP %d, want 404", rec.Code)
	}
}

// TestClusterTracePropagation: a caller-supplied trace ID survives the
// router hop into the shard's telemetry and comes back on every
// response.
func TestClusterTracePropagation(t *testing.T) {
	router, _ := newCluster(t, 2, service.Options{
		QueueDepth: 8, ConcurrentJobs: 1, CacheBytes: 16 << 20,
	})
	h := router.Handler()
	tid := strings.Repeat("ab", 16)
	body, _ := json.Marshal(quickRequest(9))
	sub := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	sub.Header.Set(service.TraceIDHeader, tid)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, sub)
	if got := rec.Header().Get(service.TraceIDHeader); got != tid {
		t.Errorf("submit trace header = %q, want %q", got, tid)
	}
	var sr service.SubmitResponse
	json.Unmarshal(rec.Body.Bytes(), &sr)
	if sr.TraceID != tid {
		t.Errorf("submit trace id = %q, want %q", sr.TraceID, tid)
	}
	st := httptest.NewRecorder()
	h.ServeHTTP(st, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+sr.ID, nil))
	if got := st.Header().Get(service.TraceIDHeader); got != tid {
		t.Errorf("status trace header = %q, want %q", got, tid)
	}
}

// TestClusterReadyAggregation: /readyz reflects every shard and stays
// ready while at least one shard accepts work.
func TestClusterReadyAggregation(t *testing.T) {
	router, shards := newCluster(t, 2, service.Options{
		QueueDepth: 8, ConcurrentJobs: 1, CacheBytes: 16 << 20,
	})
	h := router.Handler()
	readyz := func() (int, []shardReady) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var body struct {
			Ready  bool         `json:"ready"`
			Shards []shardReady `json:"shards"`
		}
		json.Unmarshal(rec.Body.Bytes(), &body)
		return rec.Code, body.Shards
	}
	code, rows := readyz()
	if code != http.StatusOK || len(rows) != 2 {
		t.Fatalf("readyz: HTTP %d, %d rows", code, len(rows))
	}
	// Drain one shard: the cluster stays ready, the row flips.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shards[0].srv.Shutdown(ctx)
	code, rows = readyz()
	if code != http.StatusOK {
		t.Errorf("readyz after one drain: HTTP %d, want 200", code)
	}
	notReady := 0
	for _, row := range rows {
		if !row.Ready {
			notReady++
		}
	}
	if notReady != 1 {
		t.Errorf("%d shards not ready, want 1", notReady)
	}
}

// collectSweep posts a sweep against a live router server and returns
// the streamed lines.
func collectSweep(t *testing.T, url string, sw service.SweepRequest) []service.SweepLine {
	t.Helper()
	body, _ := json.Marshal(sw)
	resp, err := http.Post(url+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("sweep: HTTP %d: %s", resp.StatusCode, data)
	}
	var lines []service.SweepLine
	dec := json.NewDecoder(resp.Body)
	for {
		var line service.SweepLine
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatal(err)
		}
		lines = append(lines, line)
		if line.EOF {
			break
		}
	}
	return lines
}

// TestClusterSweepDrainMidFlight is the acceptance sweep: a 3×2×4
// matrix streams all 24 results with distinct per-cell trace IDs even
// when one shard is drained mid-sweep.
func TestClusterSweepDrainMidFlight(t *testing.T) {
	router, shards := newCluster(t, 2, service.Options{
		QueueDepth: 64, ConcurrentJobs: 2, CacheBytes: 64 << 20,
	})
	hs := httptest.NewServer(router.Handler())
	defer hs.Close()

	sw := service.SweepRequest{
		Base: quickRequest(3),
		// Distinct variation models make every corner a distinct solve.
		Corners: []service.SweepCorner{
			{Name: "c0"},
			{Name: "c1", Variation: &mna.VariationSpec{KG: 0.10, KCL: 0.05, KIL: 0.05}},
			{Name: "c2", Variation: &mna.VariationSpec{KG: 0.15, KCL: 0.08, KIL: 0.08}},
		},
		Loads: []service.SweepLoad{{Name: "nom"}, {Name: "hot", PeakDropFrac: 0.15}},
		Seeds: []int64{11, 12, 13, 14},
	}

	// Drain one shard shortly after the sweep starts.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		time.Sleep(30 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shards[0].srv.Shutdown(ctx)
	}()

	lines := collectSweep(t, hs.URL, sw)
	<-drained

	var cells []service.SweepLine
	var eof *service.SweepLine
	for i := range lines {
		if lines[i].EOF {
			eof = &lines[i]
		} else {
			cells = append(cells, lines[i])
		}
	}
	if eof == nil {
		t.Fatal("stream ended without an EOF summary line")
	}
	if len(cells) != 24 {
		t.Fatalf("streamed %d cells, want 24", len(cells))
	}
	if eof.DoneCells != 24 || eof.Failed != 0 {
		t.Errorf("EOF summary done=%d failed=%d, want 24/0", eof.DoneCells, eof.Failed)
	}
	traces := map[string]bool{}
	indices := map[int]bool{}
	for _, c := range cells {
		if c.Error != "" {
			t.Errorf("cell %d failed: %s", c.Index, c.Error)
		}
		if len(c.TraceID) != 32 {
			t.Errorf("cell %d trace ID %q not 32 hex", c.Index, c.TraceID)
		}
		traces[c.TraceID] = true
		indices[c.Index] = true
		if len(c.Result) == 0 {
			t.Errorf("cell %d has no result bytes", c.Index)
		}
	}
	if len(traces) != 24 {
		t.Errorf("%d distinct trace IDs, want 24", len(traces))
	}
	if len(indices) != 24 {
		t.Errorf("%d distinct indices, want 24", len(indices))
	}
}

// TestClusterSweepResume: re-posting the same matrix with Done listing
// already-held cells streams only the missing ones, under the same
// sweep ID.
func TestClusterSweepResume(t *testing.T) {
	router, _ := newCluster(t, 2, service.Options{
		QueueDepth: 32, ConcurrentJobs: 2, CacheBytes: 64 << 20,
	})
	hs := httptest.NewServer(router.Handler())
	defer hs.Close()

	sw := service.SweepRequest{Base: quickRequest(5), Seeds: []int64{1, 2, 3, 4}}
	full := collectSweep(t, hs.URL, sw)
	var fullID string
	done := []int{}
	for _, l := range full {
		if !l.EOF {
			fullID = l.SweepID
			if l.Index != 3 {
				done = append(done, l.Index)
			}
		}
	}
	sw.Done = done
	resumed := collectSweep(t, hs.URL, sw)
	var cells []service.SweepLine
	for _, l := range resumed {
		if !l.EOF {
			cells = append(cells, l)
		}
	}
	if len(cells) != 1 || cells[0].Index != 3 {
		t.Fatalf("resume streamed %d cells (want 1: index 3): %+v", len(cells), cells)
	}
	if cells[0].SweepID != fullID {
		t.Errorf("resumed sweep ID %s != original %s", cells[0].SweepID, fullID)
	}
	if !cells[0].Cached {
		t.Errorf("resumed cell not served from cache")
	}
}
