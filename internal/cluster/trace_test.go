package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opera/internal/obs"
	"opera/internal/service"
)

func TestStitchRouterRoot(t *testing.T) {
	trace := "aaaa"
	fwd := obs.SyntheticSpan(trace, routerShard, spanPathForward, "", "router.forward",
		time.Unix(100, 0), 50*time.Millisecond)
	jobRoot := obs.SyntheticSpan(trace, "s0", "root", "", "shard.job",
		time.Unix(100, 0), 40*time.Millisecond)
	phase := obs.SyntheticSpan(trace, "s0", "job", jobRoot.SpanID, "factor",
		time.Unix(100, 0), 10*time.Millisecond)
	// Shard fragments arrive in arbitrary order; stitching must not care.
	st := Stitch(trace, []obs.ExportSpan{phase, jobRoot, fwd})
	if st.SpanCount != 3 {
		t.Fatalf("span count = %d, want 3", st.SpanCount)
	}
	if got := strings.Join(st.Shards, ","); got != "router,s0" {
		t.Fatalf("shards = %s", got)
	}
	if st.Root == nil || st.Root.Name != "router.forward" {
		t.Fatalf("root = %+v, want the router forward span", st.Root)
	}
	if len(st.Root.Spans) != 1 || st.Root.Spans[0].Name != "shard.job" {
		t.Fatalf("job root not parented under the forward span: %+v", st.Root.Spans)
	}
	if kids := st.Root.Spans[0].Spans; len(kids) != 1 || kids[0].Name != "factor" {
		t.Fatalf("phase span not under the job root: %+v", kids)
	}
}

func TestStitchDedupAndOrphans(t *testing.T) {
	trace := "bbbb"
	a := obs.SyntheticSpan(trace, "s0", "root", "", "shard.job",
		time.Unix(100, 0), 10*time.Millisecond)
	// A duplicate of the same span (overlapping fragments after a
	// resubmit) must collapse to one node.
	dup := a
	orphan := obs.SyntheticSpan(trace, "s1", "peek", "no-such-parent", "peer.peek",
		time.Unix(100, 1e6), 2*time.Millisecond)
	st := Stitch(trace, []obs.ExportSpan{a, dup, orphan})
	if st.SpanCount != 2 {
		t.Fatalf("span count = %d, want 2 after dedup", st.SpanCount)
	}
	// No router span and two roots: a synthesized container holds both,
	// stretched to cover them.
	if st.Root == nil || st.Root.Name == "" {
		t.Fatal("no root synthesized")
	}
	names := map[string]bool{}
	for _, c := range st.Root.Spans {
		names[c.Name] = true
	}
	if st.Root.Name != "trace" || !names["shard.job"] || !names["peer.peek"] {
		t.Fatalf("root %q children %v", st.Root.Name, names)
	}
	if st.Root.DurMS <= 0 {
		t.Fatalf("synthesized root not stretched: dur=%g", st.Root.DurMS)
	}
}

func TestStitchEmpty(t *testing.T) {
	if st := Stitch("x", nil); st.Root != nil || st.SpanCount != 0 {
		t.Fatalf("empty stitch = %+v", st)
	}
}

func TestWriteWaterfallRendering(t *testing.T) {
	trace := "cccc"
	st := Stitch(trace, []obs.ExportSpan{
		obs.SyntheticSpan(trace, routerShard, spanPathForward, "", "router.forward",
			time.Unix(100, 0), 100*time.Millisecond),
		obs.SyntheticSpan(trace, "s0", "root",
			obs.SpanID(trace, routerShard, spanPathForward), "shard.job",
			time.Unix(100, 20e6), 60*time.Millisecond),
	})
	var sb strings.Builder
	WriteWaterfall(&sb, st)
	out := sb.String()
	if !strings.Contains(out, "trace cccc") || !strings.Contains(out, "2 spans") {
		t.Fatalf("waterfall header wrong:\n%s", out)
	}
	if !strings.Contains(out, "router.forward [router]") || !strings.Contains(out, "shard.job [s0]") {
		t.Fatalf("waterfall rows missing:\n%s", out)
	}
	if !strings.Contains(out, "=") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
}

// submitThrough posts a request through the router handler and returns
// the submit response plus the echoed trace ID.
func submitThrough(t *testing.T, h http.Handler, req service.Request) (service.SubmitResponse, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body)))
	if rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var sr service.SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatalf("submit reply: %v", err)
	}
	return sr, rec.Header().Get(service.TraceIDHeader)
}

// waitDone polls a cluster job ID through the router until terminal.
func waitDone(t *testing.T, h http.Handler, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %s", id, rec.Code, rec.Body.String())
		}
		var js service.JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
			t.Fatal(err)
		}
		switch js.State {
		case service.StateDone:
			return
		case service.StateFailed, service.StateCanceled:
			t.Fatalf("job %s ended %s: %s", id, js.State, js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterStitchedTrace is the tentpole acceptance test: a job
// submitted through the router leaves span fragments in two processes
// (router forward span, owner shard's job tree), and /debug/trace/{id}
// returns them stitched into a single tree under one trace ID.
func TestClusterStitchedTrace(t *testing.T) {
	router, _ := newCluster(t, 2, service.Options{SpanRingBytes: 1 << 20})
	h := router.Handler()
	sr, traceID := submitThrough(t, h, quickRequest(1))
	if traceID == "" {
		t.Fatal("no trace ID echoed on submit")
	}
	waitDone(t, h, sr.ID)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/"+traceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	var st StitchedTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("trace reply: %v", err)
	}
	if st.TraceID != traceID {
		t.Fatalf("trace ID = %s, want %s", st.TraceID, traceID)
	}
	if len(st.Shards) < 2 {
		t.Fatalf("shards = %v, want spans from the router and at least one shard", st.Shards)
	}
	hasRouter := false
	for _, s := range st.Shards {
		if s == routerShard {
			hasRouter = true
		}
	}
	if !hasRouter {
		t.Fatalf("router fragment missing: shards = %v", st.Shards)
	}
	if st.Root == nil || st.Root.Name != "router.forward" {
		t.Fatalf("root = %+v, want router.forward", st.Root)
	}
	// The owner shard's solve phases must appear in the stitched tree —
	// the whole point of cross-process stitching.
	var names []string
	var walk func(n *StitchNode)
	walk = func(n *StitchNode) {
		names = append(names, n.Name)
		for _, c := range n.Spans {
			walk(c)
		}
	}
	walk(st.Root)
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["shard.job"] || !found["factor"] {
		t.Fatalf("stitched tree misses shard phases: %v", names)
	}
	if !found["peer.peek"] {
		t.Fatalf("stitched tree misses the owner shard's peer-peek probe: %v", names)
	}
	if st.SpanCount != len(names) {
		t.Fatalf("span count %d != tree size %d", st.SpanCount, len(names))
	}

	// The waterfall renders the same tree as text.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/"+traceID+"?format=text", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "router.forward [router]") {
		t.Fatalf("waterfall: HTTP %d:\n%s", rec.Code, rec.Body.String())
	}

	// Unknown traces 404.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace/ffffffffffffffffffffffffffffffff", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: HTTP %d", rec.Code)
	}
}

// TestClusterMetricsFederation: after a duplicate submit (second serve
// is a cache hit), the federated exposition sums service.solves_total
// to exactly 1 across the cluster, labels per-shard samples, and
// merges histograms.
func TestClusterMetricsFederation(t *testing.T) {
	router, shards := newCluster(t, 2, service.Options{SpanRingBytes: 1 << 20})
	h := router.Handler()
	sr, _ := submitThrough(t, h, quickRequest(2))
	waitDone(t, h, sr.ID)
	sr2, _ := submitThrough(t, h, quickRequest(2))
	waitDone(t, h, sr2.ID)

	var solves int64
	for _, s := range shards {
		solves += s.counter("service.solves_total")
	}
	if solves != 1 {
		t.Fatalf("shards ran %d solves, want 1 (duplicate must be served from cache)", solves)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics/cluster: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	out := rec.Body.String()
	for _, want := range []string{
		`service_solves_total{shard="cluster"} 1`,
		`shard="s0"`,
		`shard="s1"`,
		`shard="router"`,
		`# TYPE cluster_scrape_errors_total counter`,
		`service_job_ms_bucket{shard="cluster"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("federated exposition missing %q", want)
		}
	}
	if strings.Contains(out, "# scrape error") {
		t.Errorf("unexpected scrape errors against live shards:\n%s", out)
	}
}

// TestClusterMetricsFederationUnreachableShard: a dead shard is a
// counted, commented scrape error — never a hard failure.
func TestClusterMetricsFederationUnreachableShard(t *testing.T) {
	_, shards := newCluster(t, 1, service.Options{})
	router, err := New(Options{
		Shards:        []string{shards[0].hs.URL, "127.0.0.1:1"},
		ScrapeTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	router.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/cluster", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics/cluster with dead shard: HTTP %d", rec.Code)
	}
	out := rec.Body.String()
	if !strings.Contains(out, "# scrape error") {
		t.Fatalf("dead shard not noted:\n%s", out)
	}
	if !strings.Contains(out, `cluster_scrape_errors_total{shard="router"} 1`) {
		t.Fatalf("scrape error not counted:\n%s", out)
	}
	if !strings.Contains(out, `service_solves_total{shard="s0"}`) && !strings.Contains(out, `service_solves_total{shard="s1"}`) {
		t.Fatalf("live shard missing from partial exposition:\n%s", out)
	}
}

// TestSweepProgress: the progress endpoint tracks a sweep to
// completion — total, per-shard done counts, and the complete flag.
func TestSweepProgress(t *testing.T) {
	router, _ := newCluster(t, 2, service.Options{})
	hs := httptest.NewServer(router.Handler())
	defer hs.Close()

	sw := service.SweepRequest{
		Base:  quickRequest(3),
		Seeds: []int64{1, 2, 3, 4},
	}
	lines := collectSweep(t, hs.URL, sw)
	var sweepID string
	for _, l := range lines {
		if l.SweepID != "" {
			sweepID = l.SweepID
			break
		}
	}
	if sweepID == "" {
		t.Fatal("no sweep ID in the stream")
	}

	resp, err := http.Get(hs.URL + "/v1/sweep/" + sweepID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("progress: HTTP %d: %s", resp.StatusCode, data)
	}
	var rep progressReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.SweepID != sweepID || rep.Total != 4 {
		t.Fatalf("progress = %+v", rep)
	}
	if !rep.Complete || rep.Done != 4 || rep.Failed != 0 || rep.Running != 0 || rep.Queued != 0 {
		t.Fatalf("completed sweep progress = %+v", rep)
	}
	var shardDone int
	for _, sp := range rep.Shards {
		shardDone += sp.Done
		if sp.Shard == "" {
			t.Fatalf("unnamed shard row: %+v", rep.Shards)
		}
	}
	if shardDone != 4 {
		t.Fatalf("per-shard done sums to %d, want 4: %+v", shardDone, rep.Shards)
	}
	if rep.MeanCellMS <= 0 {
		t.Fatalf("mean cell time not computed: %+v", rep)
	}

	resp2, err := http.Get(hs.URL + "/v1/sweep/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: HTTP %d", resp2.StatusCode)
	}
}
