package sparse

import "fmt"

// InversePerm returns the inverse of permutation p: q[p[i]] = i.
func InversePerm(p []int) []int {
	q := make([]int, len(p))
	for i, pi := range p {
		q[pi] = i
	}
	return q
}

// IsPerm reports whether p is a permutation of 0..len(p)-1.
func IsPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// PermVec gathers x into y according to y[k] = x[p[k]]. The returned
// slice is newly allocated.
func PermVec(p []int, x []float64) []float64 {
	y := make([]float64, len(x))
	for k, pk := range p {
		y[k] = x[pk]
	}
	return y
}

// InvPermVec scatters x according to y[p[k]] = x[k].
func InvPermVec(p []int, x []float64) []float64 {
	y := make([]float64, len(x))
	for k, pk := range p {
		y[pk] = x[k]
	}
	return y
}

// PermVecTo gathers x into y according to y[k] = x[p[k]] without
// allocating. y must have length len(p) and must not alias x.
func PermVecTo(y []float64, p []int, x []float64) {
	if len(y) != len(p) {
		panic(fmt.Sprintf("sparse: PermVecTo length mismatch: y %d, p %d", len(y), len(p)))
	}
	for k, pk := range p {
		y[k] = x[pk]
	}
}

// InvPermVecTo scatters x into y according to y[p[k]] = x[k] without
// allocating. y must have length len(p) and must not alias x.
func InvPermVecTo(y []float64, p []int, x []float64) {
	if len(y) != len(p) {
		panic(fmt.Sprintf("sparse: InvPermVecTo length mismatch: y %d, p %d", len(y), len(p)))
	}
	for k, pk := range p {
		y[pk] = x[k]
	}
}

// Permute returns P·A·Qᵀ where P and Q are the permutations given by
// prow and pcol in "new = old[p[new]]" convention: result(i,j) =
// A(prow[i], pcol[j]). Pass nil for an identity permutation.
func (m *Matrix) Permute(prow, pcol []int) *Matrix {
	if prow != nil && len(prow) != m.Rows {
		panic(fmt.Sprintf("sparse: Permute row permutation length %d != %d", len(prow), m.Rows))
	}
	if pcol != nil && len(pcol) != m.Cols {
		panic(fmt.Sprintf("sparse: Permute column permutation length %d != %d", len(pcol), m.Cols))
	}
	// invRow maps old row -> new row.
	var invRow []int
	if prow != nil {
		invRow = InversePerm(prow)
	}
	nz := m.NNZ()
	colp := make([]int, m.Cols+1)
	rowi := make([]int, nz)
	val := make([]float64, nz)
	p := 0
	for jnew := 0; jnew < m.Cols; jnew++ {
		jold := jnew
		if pcol != nil {
			jold = pcol[jnew]
		}
		colp[jnew] = p
		for q := m.Colp[jold]; q < m.Colp[jold+1]; q++ {
			i := m.Rowi[q]
			if invRow != nil {
				i = invRow[i]
			}
			rowi[p] = i
			val[p] = m.Val[q]
			p++
		}
	}
	colp[m.Cols] = p
	r := &Matrix{Rows: m.Rows, Cols: m.Cols, Colp: colp, Rowi: rowi, Val: val}
	r.sortColumns()
	return r
}

// SymPerm returns P·A·Pᵀ for a symmetric matrix A of which the full
// pattern is stored; it is a convenience over Permute(p, p).
func (m *Matrix) SymPerm(p []int) *Matrix {
	if m.Rows != m.Cols {
		panic("sparse: SymPerm requires a square matrix")
	}
	return m.Permute(p, p)
}

// UpperTriangle returns the upper-triangular part of A (including the
// diagonal) as a new matrix. Direct symmetric factorizations consume
// this half-storage form.
func (m *Matrix) UpperTriangle() *Matrix {
	colp := make([]int, m.Cols+1)
	rowi := make([]int, 0, (m.NNZ()+m.Cols)/2+m.Cols)
	val := make([]float64, 0, cap(rowi))
	for j := 0; j < m.Cols; j++ {
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			if m.Rowi[p] <= j {
				rowi = append(rowi, m.Rowi[p])
				val = append(val, m.Val[p])
			}
		}
		colp[j+1] = len(rowi)
	}
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Colp: colp, Rowi: rowi, Val: val}
}

// LowerTriangle returns the lower-triangular part of A (including the
// diagonal) as a new matrix.
func (m *Matrix) LowerTriangle() *Matrix {
	colp := make([]int, m.Cols+1)
	rowi := make([]int, 0, (m.NNZ()+m.Cols)/2+m.Cols)
	val := make([]float64, 0, cap(rowi))
	for j := 0; j < m.Cols; j++ {
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			if m.Rowi[p] >= j {
				rowi = append(rowi, m.Rowi[p])
				val = append(val, m.Val[p])
			}
		}
		colp[j+1] = len(rowi)
	}
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Colp: colp, Rowi: rowi, Val: val}
}
