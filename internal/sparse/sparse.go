// Package sparse provides the sparse linear-algebra kernel used by every
// other subsystem in OPERA: a triplet (COO) builder, a compressed
// sparse-column (CSC) matrix type, and the structural and arithmetic
// operations (SpMV, add, scale, transpose, permutation, block assembly)
// needed by the MNA stamper, the stochastic Galerkin assembler, and the
// direct and iterative solvers.
//
// The design follows the conventions of compressed-column sparse codes:
// a matrix is stored as column pointers Colp (length Cols+1), row
// indices Rowi and values Val (length NNZ). Row indices within a column
// are kept sorted unless a routine documents otherwise. All matrices are
// real and use zero-based indexing.
package sparse

import (
	"fmt"
	"sort"
)

// Triplet accumulates matrix entries in coordinate (COO) form. Duplicate
// entries are allowed and are summed when the triplet is compiled into a
// Matrix; this is exactly the semantics needed by MNA "stamping".
type Triplet struct {
	Rows, Cols int
	rowi       []int
	coli       []int
	val        []float64
}

// NewTriplet returns an empty triplet accumulator for an r-by-c matrix.
// The capacity hint nz pre-allocates storage and may be zero.
func NewTriplet(r, c, nz int) *Triplet {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative triplet dimensions %dx%d", r, c))
	}
	return &Triplet{
		Rows: r,
		Cols: c,
		rowi: make([]int, 0, nz),
		coli: make([]int, 0, nz),
		val:  make([]float64, 0, nz),
	}
}

// Add accumulates v into entry (i, j). Adding zero is permitted and
// recorded (it preserves structural symmetry of stamped systems).
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("sparse: triplet index (%d,%d) out of range %dx%d", i, j, t.Rows, t.Cols))
	}
	t.rowi = append(t.rowi, i)
	t.coli = append(t.coli, j)
	t.val = append(t.val, v)
}

// NNZ reports the number of accumulated entries (before duplicate
// summation).
func (t *Triplet) NNZ() int { return len(t.val) }

// Compile converts the triplet to compressed sparse-column form, summing
// duplicate entries. Exact zeros arising from cancellation are NOT
// dropped: structural zeros are retained so that repeated stamps with
// different values share one symbolic pattern.
func (t *Triplet) Compile() *Matrix {
	n := t.Cols
	nz := len(t.val)
	// Count entries per column.
	count := make([]int, n+1)
	for _, j := range t.coli {
		count[j+1]++
	}
	for j := 0; j < n; j++ {
		count[j+1] += count[j]
	}
	colp := count // count is now the column pointer array
	rowi := make([]int, nz)
	val := make([]float64, nz)
	next := make([]int, n)
	for j := 0; j < n; j++ {
		next[j] = colp[j]
	}
	for k := 0; k < nz; k++ {
		j := t.coli[k]
		p := next[j]
		next[j]++
		rowi[p] = t.rowi[k]
		val[p] = t.val[k]
	}
	m := &Matrix{Rows: t.Rows, Cols: t.Cols, Colp: colp, Rowi: rowi, Val: val}
	m.sortColumns()
	m.sumDuplicates()
	return m
}

// Matrix is a sparse matrix in compressed sparse-column (CSC) form.
type Matrix struct {
	Rows, Cols int
	Colp       []int // column pointers, length Cols+1
	Rowi       []int // row indices, length NNZ
	Val        []float64
}

// NewMatrix returns an all-zero CSC matrix of the given shape (no
// structural entries).
func NewMatrix(r, c int) *Matrix {
	return &Matrix{Rows: r, Cols: c, Colp: make([]int, c+1)}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := &Matrix{Rows: n, Cols: n, Colp: make([]int, n+1), Rowi: make([]int, n), Val: make([]float64, n)}
	for j := 0; j < n; j++ {
		m.Colp[j] = j
		m.Rowi[j] = j
		m.Val[j] = 1
	}
	m.Colp[n] = n
	return m
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d []float64) *Matrix {
	n := len(d)
	m := &Matrix{Rows: n, Cols: n, Colp: make([]int, n+1), Rowi: make([]int, n), Val: make([]float64, n)}
	for j := 0; j < n; j++ {
		m.Colp[j] = j
		m.Rowi[j] = j
		m.Val[j] = d[j]
	}
	m.Colp[n] = n
	return m
}

// NNZ reports the number of stored entries.
func (m *Matrix) NNZ() int { return m.Colp[m.Cols] }

// At returns element (i, j). It is O(log nnz(column j)) and intended for
// tests and small matrices, not inner loops.
func (m *Matrix) At(i, j int) float64 {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
	lo, hi := m.Colp[j], m.Colp[j+1]
	k := lo + sort.SearchInts(m.Rowi[lo:hi], i)
	if k < hi && m.Rowi[k] == i {
		return m.Val[k]
	}
	return 0
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		Rows: m.Rows, Cols: m.Cols,
		Colp: append([]int(nil), m.Colp...),
		Rowi: append([]int(nil), m.Rowi...),
		Val:  append([]float64(nil), m.Val...),
	}
	return c
}

// CloneStructure returns a copy sharing no storage with m whose values
// are all zero but whose sparsity pattern matches m exactly.
func (m *Matrix) CloneStructure() *Matrix {
	return &Matrix{
		Rows: m.Rows, Cols: m.Cols,
		Colp: append([]int(nil), m.Colp...),
		Rowi: append([]int(nil), m.Rowi...),
		Val:  make([]float64, m.NNZ()),
	}
}

// sortColumns sorts row indices (and values) within each column.
func (m *Matrix) sortColumns() {
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.Colp[j], m.Colp[j+1]
		col := columnSorter{rowi: m.Rowi[lo:hi], val: m.Val[lo:hi]}
		sort.Sort(col)
	}
}

type columnSorter struct {
	rowi []int
	val  []float64
}

// Len implements sort.Interface.
func (c columnSorter) Len() int { return len(c.rowi) }

// Less implements sort.Interface.
func (c columnSorter) Less(i, j int) bool { return c.rowi[i] < c.rowi[j] }

// Swap implements sort.Interface.
func (c columnSorter) Swap(i, j int) {
	c.rowi[i], c.rowi[j] = c.rowi[j], c.rowi[i]
	c.val[i], c.val[j] = c.val[j], c.val[i]
}

// sumDuplicates merges consecutive equal row indices within each sorted
// column, compacting storage in place.
func (m *Matrix) sumDuplicates() {
	nz := 0
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.Colp[j], m.Colp[j+1]
		m.Colp[j] = nz
		for p := lo; p < hi; {
			r := m.Rowi[p]
			v := m.Val[p]
			p++
			for p < hi && m.Rowi[p] == r {
				v += m.Val[p]
				p++
			}
			m.Rowi[nz] = r
			m.Val[nz] = v
			nz++
		}
	}
	m.Colp[m.Cols] = nz
	m.Rowi = m.Rowi[:nz]
	m.Val = m.Val[:nz]
}

// Transpose returns Aᵀ as a new matrix (row indices sorted).
func (m *Matrix) Transpose() *Matrix {
	r, c := m.Cols, m.Rows
	nz := m.NNZ()
	colp := make([]int, c+1)
	for _, i := range m.Rowi {
		colp[i+1]++
	}
	for j := 0; j < c; j++ {
		colp[j+1] += colp[j]
	}
	rowi := make([]int, nz)
	val := make([]float64, nz)
	next := make([]int, c)
	copy(next, colp[:c])
	for j := 0; j < m.Cols; j++ {
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			i := m.Rowi[p]
			q := next[i]
			next[i]++
			rowi[q] = j
			val[q] = m.Val[p]
		}
	}
	return &Matrix{Rows: r, Cols: c, Colp: colp, Rowi: rowi, Val: val}
}

// ToDense expands the matrix into a dense row-major slice of slices.
// For tests and tiny systems only.
func (m *Matrix) ToDense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for j := 0; j < m.Cols; j++ {
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			d[m.Rowi[p]][j] += m.Val[p]
		}
	}
	return d
}

// FromDense compiles a dense row-major matrix into CSC form, dropping
// exact zeros.
func FromDense(d [][]float64) *Matrix {
	r := len(d)
	c := 0
	if r > 0 {
		c = len(d[0])
	}
	t := NewTriplet(r, c, 0)
	for i := 0; i < r; i++ {
		if len(d[i]) != c {
			panic("sparse: ragged dense matrix")
		}
		for j := 0; j < c; j++ {
			if d[i][j] != 0 {
				t.Add(i, j, d[i][j])
			}
		}
	}
	return t.Compile()
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	if m.Rows > 16 || m.Cols > 16 {
		return fmt.Sprintf("sparse.Matrix{%dx%d, nnz=%d}", m.Rows, m.Cols, m.NNZ())
	}
	s := ""
	d := m.ToDense()
	for _, row := range d {
		for _, v := range row {
			s += fmt.Sprintf("%10.4g ", v)
		}
		s += "\n"
	}
	return s
}
