package sparse

import (
	"sync/atomic"

	"opera/internal/obs"
)

// opCounters is the resolved instrument set for the matvec hot path.
// It is installed atomically so an analysis goroutine and a debug
// server never race on it; when absent (the default, and always in
// benchmarks of the disabled path) the cost is one atomic pointer load
// and a nil check per matvec — noise next to the nnz-proportional work
// each matvec performs.
type opCounters struct {
	matvecs *obs.Counter
	flops   *obs.Counter
}

var counters atomic.Pointer[opCounters]

// SetMetrics installs matvec counters (sparse.matvec_total,
// sparse.matvec_flops_total) on the registry. Passing a nil registry
// uninstalls them.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		counters.Store(nil)
		return
	}
	counters.Store(&opCounters{
		matvecs: reg.Counter("sparse.matvec_total"),
		flops:   reg.Counter("sparse.matvec_flops_total"),
	})
}

// countMatvec records one matrix-vector product over nnz stored
// entries (2 flops each: multiply + add).
func countMatvec(nnz int) {
	if c := counters.Load(); c != nil {
		c.matvecs.Inc()
		c.flops.Add(2 * int64(nnz))
	}
}
