package sparse_test

import (
	"fmt"

	"opera/internal/sparse"
)

// ExampleTriplet shows MNA-style stamping: duplicate entries sum.
func ExampleTriplet() {
	t := sparse.NewTriplet(2, 2, 8)
	// Stamp a 2-ohm resistor between nodes 0 and 1 (conductance 0.5).
	g := 0.5
	t.Add(0, 0, g)
	t.Add(1, 1, g)
	t.Add(0, 1, -g)
	t.Add(1, 0, -g)
	// Stamp a pad conductance of 10 at node 0 — accumulates on (0,0).
	t.Add(0, 0, 10)
	m := t.Compile()
	fmt.Printf("G[0][0] = %.1f\n", m.At(0, 0))
	fmt.Printf("G[0][1] = %.1f\n", m.At(0, 1))
	fmt.Printf("nnz = %d\n", m.NNZ())
	// Output:
	// G[0][0] = 10.5
	// G[0][1] = -0.5
	// nnz = 4
}

// ExampleAssembleBlocks builds a small stochastic Galerkin matrix
// G̃ = I⊗Ga + T⊗Gg (the structure of the paper's Eq. 19).
func ExampleAssembleBlocks() {
	ga := sparse.FromDense([][]float64{{4, -1}, {-1, 4}})
	gg := sparse.FromDense([][]float64{{0.4, -0.1}, {-0.1, 0.4}})
	ident := sparse.Identity(2)
	coupling := sparse.FromDense([][]float64{{0, 1}, {1, 0}}) // E[ξψiψj]
	gh := sparse.AssembleBlocks(2, 2, []sparse.BlockTerm{
		{T: ident, A: ga},
		{T: coupling, A: gg},
	})
	fmt.Printf("%dx%d, symmetric: %v\n", gh.Rows, gh.Cols, gh.IsSymmetric(0))
	fmt.Printf("block(0,1) entry = %.1f\n", gh.At(0, 2))
	// Output:
	// 4x4, symmetric: true
	// block(0,1) entry = 0.4
}
