package sparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomSymmetric builds a random n×n symmetric matrix (full pattern
// stored) with a strictly positive diagonal.
func randomSymmetric(rng *rand.Rand, n int, density float64) *Matrix {
	tr := NewTriplet(n, n, n*4)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1+rng.Float64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				tr.Add(i, j, v)
				tr.Add(j, i, v)
			}
		}
	}
	return tr.Compile()
}

// TestMulVecSymMatchesMulVec checks the parallel symmetric apply
// against the serial scatter reference, and — the determinism contract
// — that every worker count yields bit-identical output.
func TestMulVecSymMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 17, 300, 1000} {
		a := randomSymmetric(rng, n, 8.0/float64(n+1))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, n)
		a.MulVec(ref, x)

		serial := make([]float64, n)
		a.MulVecSym(serial, x, 1)
		for i := range ref {
			if d := abs(serial[i] - ref[i]); d > 1e-12 {
				t.Fatalf("n=%d: serial gather differs from MulVec at %d by %g", n, i, d)
			}
		}
		for _, w := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(t *testing.T) {
				y := make([]float64, n)
				a.MulVecSym(y, x, w)
				for i := range y {
					if y[i] != serial[i] {
						t.Fatalf("workers=%d: y[%d] = %.17g != serial %.17g", w, i, y[i], serial[i])
					}
				}
			})
		}
	}
}

func TestPermVecToMatchesPermVec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 64
	p := rng.Perm(n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := PermVec(p, x)
	got := make([]float64, n)
	PermVecTo(got, p, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PermVecTo[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	wantInv := InvPermVec(p, x)
	gotInv := make([]float64, n)
	InvPermVecTo(gotInv, p, x)
	for i := range wantInv {
		if gotInv[i] != wantInv[i] {
			t.Fatalf("InvPermVecTo[%d] = %g, want %g", i, gotInv[i], wantInv[i])
		}
	}
}

func BenchmarkMulVecSym(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	a := randomSymmetric(rng, n, 6.0/float64(n))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulVecSym(y, x, w)
			}
		})
	}
}
