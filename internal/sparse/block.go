package sparse

import "fmt"

// BlockTerm describes one term of a block-structured (Kronecker-like)
// assembly: the scalar coupling matrix T (size B×B, B = number of
// blocks) multiplied blockwise with the node matrix A (size n×n). The
// assembled contribution to block (I, J) of the result is T[I][J]·A.
//
// This is exactly the structure of the stochastic Galerkin matrix
// (Eq. 19–21 of the paper): G̃ = Σ_k  T_k ⊗ A_k  with
// T_k[i][j] = E[ξ_k ψ_i ψ_j] (and T_0 = I for the mean matrix).
type BlockTerm struct {
	T *Matrix // B×B coupling among expansion coefficients
	A *Matrix // n×n node-level matrix
}

// AssembleBlocks builds Σ_terms T_k ⊗ A_k as a single (B·n)×(B·n) CSC
// matrix. Every T must be B×B and every A must be n×n with identical n.
// The block layout is coefficient-major: global index = I·n + i for
// block I and node i.
func AssembleBlocks(b, n int, terms []BlockTerm) *Matrix {
	if b <= 0 || n <= 0 {
		panic(fmt.Sprintf("sparse: AssembleBlocks invalid sizes b=%d n=%d", b, n))
	}
	for _, t := range terms {
		if t.T.Rows != b || t.T.Cols != b {
			panic(fmt.Sprintf("sparse: coupling matrix is %dx%d, want %dx%d", t.T.Rows, t.T.Cols, b, b))
		}
		if t.A.Rows != n || t.A.Cols != n {
			panic(fmt.Sprintf("sparse: node matrix is %dx%d, want %dx%d", t.A.Rows, t.A.Cols, n, n))
		}
	}
	// First pass: count nnz per global column so storage is exact.
	N := b * n
	colp := make([]int, N+1)
	for _, term := range terms {
		for J := 0; J < b; J++ {
			nblk := term.T.Colp[J+1] - term.T.Colp[J] // blocks in block-column J
			if nblk == 0 {
				continue
			}
			base := J * n
			for j := 0; j < n; j++ {
				colp[base+j+1] += nblk * (term.A.Colp[j+1] - term.A.Colp[j])
			}
		}
	}
	for k := 0; k < N; k++ {
		colp[k+1] += colp[k]
	}
	nz := colp[N]
	rowi := make([]int, nz)
	val := make([]float64, nz)
	next := make([]int, N)
	copy(next, colp[:N])
	for _, term := range terms {
		for J := 0; J < b; J++ {
			base := J * n
			for q := term.T.Colp[J]; q < term.T.Colp[J+1]; q++ {
				I := term.T.Rowi[q]
				tij := term.T.Val[q]
				rbase := I * n
				for j := 0; j < n; j++ {
					gj := base + j
					for p := term.A.Colp[j]; p < term.A.Colp[j+1]; p++ {
						k := next[gj]
						next[gj]++
						rowi[k] = rbase + term.A.Rowi[p]
						val[k] = tij * term.A.Val[p]
					}
				}
			}
		}
	}
	m := &Matrix{Rows: N, Cols: N, Colp: colp, Rowi: rowi, Val: val}
	m.sortColumns()
	m.sumDuplicates()
	return m
}

// Kron returns the Kronecker product T ⊗ A; a convenience wrapper over
// AssembleBlocks for a single term (used by tests).
func Kron(t, a *Matrix) *Matrix {
	if t.Rows != t.Cols || a.Rows != a.Cols {
		panic("sparse: Kron requires square factors")
	}
	return AssembleBlocks(t.Rows, a.Rows, []BlockTerm{{T: t, A: a}})
}
