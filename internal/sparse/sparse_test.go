package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTriplet builds a random r×c matrix with approximately density d,
// returning both the triplet-compiled sparse matrix and a dense
// reference.
func randomDense(rng *rand.Rand, r, c int, density float64) [][]float64 {
	d := make([][]float64, r)
	for i := range d {
		d[i] = make([]float64, c)
		for j := range d[i] {
			if rng.Float64() < density {
				d[i][j] = rng.NormFloat64()
			}
		}
	}
	return d
}

func denseEqual(t *testing.T, got, want [][]float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d != %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("col count row %d: %d != %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if math.Abs(got[i][j]-want[i][j]) > tol {
				t.Fatalf("entry (%d,%d): got %g want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestTripletCompileSumsDuplicates(t *testing.T) {
	tr := NewTriplet(3, 3, 4)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(2, 1, -1)
	tr.Add(2, 1, 1.5)
	tr.Add(1, 2, 4)
	m := tr.Compile()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(2, 1); got != 0.5 {
		t.Errorf("At(2,1) = %g, want 0.5", got)
	}
	if got := m.At(1, 2); got != 4 {
		t.Errorf("At(1,2) = %g, want 4", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0", got)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
}

func TestCompileRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r := 1 + rng.Intn(12)
		c := 1 + rng.Intn(12)
		d := randomDense(rng, r, c, 0.4)
		m := FromDense(d)
		denseEqual(t, m.ToDense(), d, 0)
	}
}

func TestColumnsSortedAfterCompile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewTriplet(20, 20, 100)
	for k := 0; k < 100; k++ {
		tr.Add(rng.Intn(20), rng.Intn(20), rng.NormFloat64())
	}
	m := tr.Compile()
	for j := 0; j < m.Cols; j++ {
		for p := m.Colp[j] + 1; p < m.Colp[j+1]; p++ {
			if m.Rowi[p-1] >= m.Rowi[p] {
				t.Fatalf("column %d not strictly sorted at %d", j, p)
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		r := 1 + rng.Intn(15)
		c := 1 + rng.Intn(15)
		d := randomDense(rng, r, c, 0.3)
		m := FromDense(d)
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, r)
		m.MulVec(y, x)
		for i := 0; i < r; i++ {
			want := 0.0
			for j := 0; j < c; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12 {
				t.Fatalf("MulVec row %d: got %g want %g", i, y[i], want)
			}
		}
		// Transposed product.
		yt := make([]float64, c)
		xr := make([]float64, r)
		for i := range xr {
			xr[i] = rng.NormFloat64()
		}
		m.MulVecT(yt, xr)
		for j := 0; j < c; j++ {
			want := 0.0
			for i := 0; i < r; i++ {
				want += d[i][j] * xr[i]
			}
			if math.Abs(yt[j]-want) > 1e-12 {
				t.Fatalf("MulVecT col %d: got %g want %g", j, yt[j], want)
			}
		}
	}
}

func TestMulVecAddAccumulates(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	y := []float64{10, 20}
	m.MulVecAdd(y, 2, []float64{1, 1})
	if y[0] != 10+2*3 || y[1] != 20+2*7 {
		t.Errorf("MulVecAdd got %v", y)
	}
}

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		da := randomDense(rng, r, c, 0.3)
		db := randomDense(rng, r, c, 0.3)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		got := Add(alpha, FromDense(da), beta, FromDense(db)).ToDense()
		want := make([][]float64, r)
		for i := range want {
			want[i] = make([]float64, c)
			for j := range want[i] {
				want[i][j] = alpha*da[i][j] + beta*db[i][j]
			}
		}
		denseEqual(t, got, want, 1e-12)
	}
}

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		r := 1 + rng.Intn(8)
		k := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		da := randomDense(rng, r, k, 0.4)
		db := randomDense(rng, k, c, 0.4)
		got := Mul(FromDense(da), FromDense(db)).ToDense()
		want := make([][]float64, r)
		for i := range want {
			want[i] = make([]float64, c)
			for j := range want[i] {
				for l := 0; l < k; l++ {
					want[i][j] += da[i][l] * db[l][j]
				}
			}
		}
		denseEqual(t, got, want, 1e-10)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randomDense(rng, 9, 13, 0.3)
	m := FromDense(d)
	tt := m.Transpose().Transpose()
	denseEqual(t, tt.ToDense(), d, 0)
	// Check Aᵀ entries explicitly.
	at := m.Transpose()
	for i := 0; i < 9; i++ {
		for j := 0; j < 13; j++ {
			if at.At(j, i) != d[i][j] {
				t.Fatalf("transpose entry (%d,%d) mismatch", j, i)
			}
		}
	}
}

func TestIdentityAndDiagonal(t *testing.T) {
	id := Identity(4)
	x := []float64{1, -2, 3, -4}
	y := make([]float64, 4)
	id.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec mismatch at %d", i)
		}
	}
	dg := Diagonal([]float64{2, 3})
	if dg.At(0, 0) != 2 || dg.At(1, 1) != 3 || dg.At(0, 1) != 0 {
		t.Error("Diagonal entries wrong")
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDense(rng, 6, 6, 0.5)
	m := FromDense(d)
	p := []int{3, 1, 5, 0, 2, 4}
	q := []int{2, 0, 1, 5, 4, 3}
	pm := m.Permute(p, q)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if pm.At(i, j) != d[p[i]][q[j]] {
				t.Fatalf("Permute entry (%d,%d) = %g want %g", i, j, pm.At(i, j), d[p[i]][q[j]])
			}
		}
	}
	// Symmetric permutation of a symmetric matrix stays symmetric.
	s := Add(0.5, m, 0.5, m.Transpose())
	sp := s.SymPerm(p)
	if !sp.IsSymmetric(1e-14) {
		t.Error("SymPerm broke symmetry")
	}
}

func TestInversePermProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		p := rng.Perm(n)
		q := InversePerm(p)
		if !IsPerm(q) {
			return false
		}
		for i := 0; i < n; i++ {
			if q[p[i]] != i || p[q[i]] != i {
				return false
			}
		}
		// PermVec then InvPermVec round-trips.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := InvPermVec(p, PermVec(p, x))
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randomDense(rng, 7, 7, 0.6)
	m := FromDense(d)
	u := m.UpperTriangle()
	l := m.LowerTriangle()
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			wantU, wantL := 0.0, 0.0
			if i <= j {
				wantU = d[i][j]
			}
			if i >= j {
				wantL = d[i][j]
			}
			if u.At(i, j) != wantU {
				t.Fatalf("upper (%d,%d)", i, j)
			}
			if l.At(i, j) != wantL {
				t.Fatalf("lower (%d,%d)", i, j)
			}
		}
	}
	// upper + lower - diag == original
	sum := Add(1, u, 1, l)
	diag := Diagonal(m.Diag())
	recon := Add(1, sum, -1, diag)
	denseEqual(t, recon.ToDense(), d, 1e-14)
}

func TestDropTol(t *testing.T) {
	m := FromDense([][]float64{{1e-12, 2}, {0.5, 1e-9}})
	m.DropTol(1e-8)
	if m.NNZ() != 2 {
		t.Fatalf("NNZ after drop = %d, want 2", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 0.5 {
		t.Error("DropTol removed wrong entries")
	}
}

func TestNorm1(t *testing.T) {
	m := FromDense([][]float64{{1, -4}, {-2, 1}})
	if got := m.Norm1(); got != 5 {
		t.Errorf("Norm1 = %g, want 5", got)
	}
}

func TestKronAgainstDense(t *testing.T) {
	a := FromDense([][]float64{{1, 2}, {0, 3}})
	b := FromDense([][]float64{{0, 1}, {2, 0}})
	k := Kron(a, b)
	want := [][]float64{
		{0, 1, 0, 2},
		{2, 0, 4, 0},
		{0, 0, 0, 3},
		{0, 0, 6, 0},
	}
	denseEqual(t, k.ToDense(), want, 0)
}

func TestAssembleBlocksMultiTerm(t *testing.T) {
	// Two terms: I ⊗ A + T ⊗ B must equal the dense sum.
	a := FromDense([][]float64{{4, 1}, {1, 4}})
	b := FromDense([][]float64{{0, 1}, {1, 0}})
	ti := Identity(3)
	tc := FromDense([][]float64{{0, 1, 0}, {1, 0, 2}, {0, 2, 0}})
	g := AssembleBlocks(3, 2, []BlockTerm{{T: ti, A: a}, {T: tc, A: b}})
	want := Add(1, Kron(ti, a), 1, Kron(tc, b))
	denseEqual(t, g.ToDense(), want.ToDense(), 1e-14)
	if !g.IsSymmetric(1e-14) {
		t.Error("assembled Galerkin-style matrix should be symmetric")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Error("Clone shares value storage")
	}
	s := m.CloneStructure()
	if s.NNZ() != m.NNZ() {
		t.Error("CloneStructure NNZ mismatch")
	}
	for _, v := range s.Val {
		if v != 0 {
			t.Error("CloneStructure values not zeroed")
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := FromDense([][]float64{{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}})
	if !sym.IsSymmetric(0) {
		t.Error("tridiagonal Laplacian should be symmetric")
	}
	asym := FromDense([][]float64{{1, 2}, {3, 4}})
	if asym.IsSymmetric(1e-14) {
		t.Error("asymmetric matrix reported symmetric")
	}
}
