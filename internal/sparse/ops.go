package sparse

import (
	"fmt"

	"opera/internal/parallel"
)

// MulVec computes y = A·x. y must have length A.Rows and is overwritten.
func (m *Matrix) MulVec(y, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: A is %dx%d, x %d, y %d", m.Rows, m.Cols, len(x), len(y)))
	}
	countMatvec(m.NNZ())
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			y[m.Rowi[p]] += m.Val[p] * xj
		}
	}
}

// MulVecAdd computes y += alpha·A·x without zeroing y first.
func (m *Matrix) MulVecAdd(y []float64, alpha float64, x []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecAdd dimension mismatch: A is %dx%d, x %d, y %d", m.Rows, m.Cols, len(x), len(y)))
	}
	countMatvec(m.NNZ())
	for j := 0; j < m.Cols; j++ {
		xj := alpha * x[j]
		if xj == 0 {
			continue
		}
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			y[m.Rowi[p]] += m.Val[p] * xj
		}
	}
}

// mulVecSymChunk is the row granularity of MulVecSym: small enough to
// load-balance grids whose column lengths vary, large enough that the
// pool overhead stays negligible against the dot products.
const mulVecSymChunk = 256

// MulVecSym computes y = A·x for a *symmetric* A (full pattern stored),
// row-partitioned across up to `workers` goroutines. By symmetry row i
// of A equals column i, so each output element is one column gather:
//
//	y[i] = Σ_p Val[p]·x[Rowi[p]]  over column i
//
// Every y[i] is produced whole by exactly one worker from the same
// inputs in the same order, so the result is bit-identical to the
// serial gather for any worker count — this is the deterministic
// parallel apply used by the coupled Galerkin stepping loop. With
// workers <= 1 it degrades to a plain serial gather.
func (m *Matrix) MulVecSym(y, x []float64, workers int) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("sparse: MulVecSym requires a square (symmetric) matrix, got %dx%d", m.Rows, m.Cols))
	}
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecSym dimension mismatch: A is %dx%d, x %d, y %d", m.Rows, m.Cols, len(x), len(y)))
	}
	countMatvec(m.NNZ())
	n := m.Rows
	gather := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			s := 0.0
			for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
				s += m.Val[p] * x[m.Rowi[p]]
			}
			y[j] = s
		}
	}
	if workers <= 1 || n <= mulVecSymChunk {
		gather(0, n)
		return
	}
	chunks := (n + mulVecSymChunk - 1) / mulVecSymChunk
	// Chunks write disjoint y ranges; errors are impossible here.
	_ = parallel.ForEach(workers, chunks, func(_, c int) error {
		lo := c * mulVecSymChunk
		hi := lo + mulVecSymChunk
		if hi > n {
			hi = n
		}
		gather(lo, hi)
		return nil
	})
}

// MulVecT computes y = Aᵀ·x. y must have length A.Cols.
func (m *Matrix) MulVecT(y, x []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVecT dimension mismatch: A is %dx%d, x %d, y %d", m.Rows, m.Cols, len(x), len(y)))
	}
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			s += m.Val[p] * x[m.Rowi[p]]
		}
		y[j] = s
	}
}

// Scale multiplies every stored value by alpha, in place, and returns m.
func (m *Matrix) Scale(alpha float64) *Matrix {
	for i := range m.Val {
		m.Val[i] *= alpha
	}
	return m
}

// Add returns alpha·A + beta·B as a new matrix. A and B must have equal
// shape. The result has sorted columns with duplicates merged.
func Add(alpha float64, a *Matrix, beta float64, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("sparse: Add shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n := a.Cols
	colp := make([]int, n+1)
	rowi := make([]int, 0, a.NNZ()+b.NNZ())
	val := make([]float64, 0, a.NNZ()+b.NNZ())
	for j := 0; j < n; j++ {
		pa, ea := a.Colp[j], a.Colp[j+1]
		pb, eb := b.Colp[j], b.Colp[j+1]
		for pa < ea || pb < eb {
			switch {
			case pb >= eb || (pa < ea && a.Rowi[pa] < b.Rowi[pb]):
				rowi = append(rowi, a.Rowi[pa])
				val = append(val, alpha*a.Val[pa])
				pa++
			case pa >= ea || b.Rowi[pb] < a.Rowi[pa]:
				rowi = append(rowi, b.Rowi[pb])
				val = append(val, beta*b.Val[pb])
				pb++
			default: // equal row index
				rowi = append(rowi, a.Rowi[pa])
				val = append(val, alpha*a.Val[pa]+beta*b.Val[pb])
				pa++
				pb++
			}
		}
		colp[j+1] = len(rowi)
	}
	return &Matrix{Rows: a.Rows, Cols: n, Colp: colp, Rowi: rowi, Val: val}
}

// Mul returns the product A·B as a new matrix (classic Gustavson
// column-by-column SpGEMM). Intended for moderate sizes (Galerkin
// coupling tensors, tests), not huge products.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("sparse: Mul dimension mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	t := NewTriplet(a.Rows, b.Cols, a.NNZ()+b.NNZ())
	work := make([]float64, a.Rows)
	mark := make([]int, a.Rows)
	for i := range mark {
		mark[i] = -1
	}
	pattern := make([]int, 0, a.Rows)
	for j := 0; j < b.Cols; j++ {
		pattern = pattern[:0]
		for p := b.Colp[j]; p < b.Colp[j+1]; p++ {
			k := b.Rowi[p]
			bkj := b.Val[p]
			for q := a.Colp[k]; q < a.Colp[k+1]; q++ {
				i := a.Rowi[q]
				if mark[i] != j {
					mark[i] = j
					work[i] = 0
					pattern = append(pattern, i)
				}
				work[i] += a.Val[q] * bkj
			}
		}
		for _, i := range pattern {
			t.Add(i, j, work[i])
		}
	}
	return t.Compile()
}

// Norm1 returns the 1-norm (maximum absolute column sum).
func (m *Matrix) Norm1() float64 {
	max := 0.0
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			s += abs(m.Val[p])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the ∞-norm (maximum absolute row sum). For the
// symmetric matrices of this codebase it coincides with Norm1.
func (m *Matrix) NormInf() float64 {
	rowSum := make([]float64, m.Rows)
	for p, i := range m.Rowi {
		rowSum[i] += abs(m.Val[p])
	}
	max := 0.0
	for _, s := range rowSum {
		if s > max {
			max = s
		}
	}
	return max
}

// DropTol removes stored entries with |value| <= tol, compacting in
// place, and returns m. DropTol(0) removes exact structural zeros.
func (m *Matrix) DropTol(tol float64) *Matrix {
	nz := 0
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.Colp[j], m.Colp[j+1]
		m.Colp[j] = nz
		for p := lo; p < hi; p++ {
			if abs(m.Val[p]) > tol {
				m.Rowi[nz] = m.Rowi[p]
				m.Val[nz] = m.Val[p]
				nz++
			}
		}
	}
	m.Colp[m.Cols] = nz
	m.Rowi = m.Rowi[:nz]
	m.Val = m.Val[:nz]
	return m
}

// Diag extracts the diagonal into a new slice of length min(Rows, Cols).
func (m *Matrix) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
			if m.Rowi[p] == j {
				d[j] += m.Val[p]
			}
		}
	}
	return d
}

// IsSymmetric reports whether the matrix is numerically symmetric to
// within tol on every entry. O(nnz log nnz); for tests and validation.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	at := m.Transpose()
	d := Add(1, m, -1, at)
	for _, v := range d.Val {
		if abs(v) > tol {
			return false
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
