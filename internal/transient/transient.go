// Package transient implements fixed-step transient analysis of the
// deterministic RC systems C·dx/dt + G·x = u(t), with backward Euler or
// trapezoidal integration. It is the inner engine of both the Monte
// Carlo baseline (one run per parameter sample) and — applied to the
// block-augmented Galerkin system — of OPERA itself. The companion
// matrix G + C/h is factored once per run (the paper uses a fixed time
// step), and a symbolic Cholesky analysis can be shared across runs
// that differ only in matrix values, which is what makes per-sample
// Monte Carlo refactorization affordable.
package transient

import (
	"context"
	"errors"
	"fmt"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/iterative"
	"opera/internal/numguard"
	"opera/internal/obs"
	"opera/internal/sparse"
)

// Method selects the integration rule.
type Method int

// Integration methods.
const (
	BackwardEuler Method = iota
	Trapezoidal
)

// String names the method.
func (m Method) String() string {
	switch m {
	case BackwardEuler:
		return "backward-euler"
	case Trapezoidal:
		return "trapezoidal"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options configures a transient run.
type Options struct {
	Step   float64 // fixed time step h > 0
	Steps  int     // number of steps (the run covers [0, Steps·h])
	Method Method
	// Perm is an optional fill-reducing permutation for the companion
	// matrix factorization.
	Perm []int
	// Kernel selects the Cholesky kernel (supernodal by default; the
	// scalar up-looking kernel as the reference/ablation choice). Only
	// consulted when Symbolic is nil — a supplied analysis carries its
	// own kernel.
	Kernel factor.Kernel
	// Symbolic optionally supplies a pre-computed Cholesky analysis
	// whose pattern covers G + scale·C; it overrides Perm and Kernel.
	Symbolic factor.Analysis
	// ReuseFactor optionally recycles a previous numeric factor's
	// storage (must come from the same Symbolic).
	ReuseFactor factor.ScalarFactor
	// Obs, when non-nil, feeds transient.step_ms /
	// transient.steps_total on the tracer's registry. Nil disables the
	// per-step timing entirely (no time.Now in Advance).
	Obs *obs.Tracer
	// Ctx, when non-nil, is polled once per time step by Run; a
	// canceled or expired context stops the transient at the next step
	// boundary with a structured error wrapping cancel.ErrCanceled.
	// Nil disables the check.
	Ctx context.Context
	// Progress, when non-nil, is advanced once per completed time step
	// — the liveness signal a stall watchdog monitors. Nil disables it.
	Progress *obs.Progress
	// Resume, when non-nil, makes Run continue a previous transient
	// from the snapshot instead of computing the DC point: stepping
	// starts at Resume.Step+1 and visit is invoked only for the
	// remaining steps. The trajectory is bit-identical to the
	// uninterrupted run because each step depends only on the previous
	// state and the excitation, both captured exactly.
	Resume *Snapshot
}

// Snapshot is a resumable capture of a Stepper mid-run: the step index
// and state vector (plus the trapezoidal excitation history). Taken by
// Stepper.Snapshot, applied by Stepper.Restore or Options.Resume.
// float64 values survive JSON bit-exactly, so a snapshot persisted via
// internal/checkpoint resumes with no numerical drift.
type Snapshot struct {
	Step     int       `json:"step"`
	Time     float64   `json:"time"`
	X        []float64 `json:"x"`
	UPrev    []float64 `json:"u_prev,omitempty"`
	HavePrev bool      `json:"have_prev"`
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Step <= 0 {
		return fmt.Errorf("transient: step must be positive, got %g", o.Step)
	}
	if o.Steps < 1 {
		return fmt.Errorf("transient: need at least one step, got %d", o.Steps)
	}
	return nil
}

// ErrSize reports mismatched dimensions.
var ErrSize = errors.New("transient: dimension mismatch")

// Stepper advances one RC system through time.
type Stepper struct {
	N      int
	opts   Options
	g, c   *sparse.Matrix
	a      *sparse.Matrix      // companion G + scale·C (kept for escalation)
	sym    factor.Analysis     // the symbolic analysis behind fac
	fac    factor.ScalarFactor // nil when the LU rung is in use
	lu     *factor.LUFactor
	x      []float64 // current state
	t      float64
	stepNo int
	// Workspaces. y is the factor-solve scratch, so a stepper in a
	// steady loop performs zero per-solve allocations.
	b, cx, gx, uPrev, y []float64
	havePrev            bool

	// Instruments (nil when Options.Obs is nil; Advance checks stepMS
	// so the disabled path never reads the clock).
	stepMS     *obs.Histogram
	stepMSMax  *obs.Gauge
	stepsTotal *obs.Counter
}

// NewStepper factors the companion matrix of (g, c) under opts. The
// factorization is SPD-Cholesky; power grid MNA systems with
// Norton-transformed pads always qualify.
func NewStepper(g, c *sparse.Matrix, opts Options) (*Stepper, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	n := g.Rows
	if g.Cols != n || c.Rows != n || c.Cols != n {
		return nil, fmt.Errorf("%w: G is %dx%d, C is %dx%d", ErrSize, g.Rows, g.Cols, c.Rows, c.Cols)
	}
	scale := 1 / opts.Step
	if opts.Method == Trapezoidal {
		scale = 2 / opts.Step
	}
	a := sparse.Add(1, g, scale, c)
	sym := opts.Symbolic
	if sym == nil {
		sym = factor.Analyze(a, opts.Perm, opts.Kernel)
	}
	st := &Stepper{
		N:    n,
		opts: opts,
		g:    g,
		c:    c,
		a:    a,
		sym:  sym,
		x:    make([]float64, n),
		b:    make([]float64, n),
		cx:   make([]float64, n),
		y:    make([]float64, n),
	}
	if reg := opts.Obs.Registry(); reg != nil {
		st.stepMS = reg.Histogram("transient.step_ms", obs.MSBuckets)
		// Worst single step of the run: a slow-job flight entry shows at
		// a glance whether one pathological step (ladder escalation, GC
		// pause) or uniform slowness dominated the transient.
		st.stepMSMax = reg.Gauge("transient.step_ms_max")
		st.stepsTotal = reg.Counter("transient.steps_total")
	}
	fac, err := sym.Refactorize(a, opts.ReuseFactor)
	if err != nil {
		// A companion matrix that defeats Cholesky (borderline
		// indefinite under extreme parameter samples) escalates to
		// partial-pivoting LU rather than aborting the run.
		if !errors.Is(err, factor.ErrNotPositiveDefinite) {
			return nil, fmt.Errorf("transient: companion factorization: %w", err)
		}
		lu, luErr := factor.LU(a, sym.Permutation())
		if luErr != nil {
			return nil, fmt.Errorf("transient: companion factorization: %v; LU escalation: %w", err, luErr)
		}
		st.lu = lu
		return st, nil
	}
	st.fac = fac
	return st, nil
}

// Factorer names the factorization rung in use ("supernodal",
// "cholesky" or "lu").
func (s *Stepper) Factorer() string {
	if s.lu != nil {
		return "lu"
	}
	return s.sym.KernelName()
}

// solveTo dispatches to the active factorization rung, reusing the
// stepper-owned scratch vector.
func (s *Stepper) solveTo(x, b []float64) {
	if s.lu != nil {
		s.lu.SolveToWithScratch(x, b, s.y)
		return
	}
	s.fac.SolveToWithScratch(x, b, s.y)
}

// guardState checks the freshly computed state for NaN/Inf; on
// poisoning it retries the solve once on the LU rung and, failing that,
// returns a structured numguard.Diagnosis instead of letting garbage
// propagate through the recursion.
func (s *Stepper) guardState(stage string, step int, b []float64) error {
	if numguard.Finite(s.x) {
		return nil
	}
	if s.lu == nil {
		lu, err := factor.LU(s.a, s.sym.Permutation())
		if err == nil {
			s.lu = lu
			s.lu.SolveTo(s.x, b)
			if numguard.Finite(s.x) {
				return nil
			}
		}
	}
	return &numguard.Diagnosis{
		Stage: stage, Step: step, Rung: s.Factorer(),
		Reason: "non-finite transient state",
	}
}

// Factor exposes the companion factor so callers can recycle its
// storage across Monte Carlo samples (nil when the LU rung is in use).
func (s *Stepper) Factor() factor.ScalarFactor { return s.fac }

// Symbolic exposes the companion's symbolic analysis so callers can
// share one etree/supernode computation across steppers whose
// matrices have identical patterns (see Options.Symbolic).
func (s *Stepper) Symbolic() factor.Analysis { return s.sym }

// Snapshot captures the stepper's resumable state (deep copy).
func (s *Stepper) Snapshot() *Snapshot {
	sn := &Snapshot{
		Step:     s.stepNo,
		Time:     s.t,
		X:        append([]float64(nil), s.x...),
		HavePrev: s.havePrev,
	}
	if s.havePrev {
		sn.UPrev = append([]float64(nil), s.uPrev...)
	}
	return sn
}

// Restore rewinds (or fast-forwards) the stepper to a snapshot taken
// from an identically configured run. Subsequent Advance calls produce
// the exact states the original run would have: a step depends only on
// the restored state, the excitation and the factorization, all of
// which are reproduced bit-for-bit.
func (s *Stepper) Restore(sn *Snapshot) error {
	if len(sn.X) != s.N {
		return fmt.Errorf("%w: snapshot state length %d != %d", ErrSize, len(sn.X), s.N)
	}
	if sn.HavePrev && len(sn.UPrev) != s.N {
		return fmt.Errorf("%w: snapshot excitation length %d != %d", ErrSize, len(sn.UPrev), s.N)
	}
	if sn.Step < 0 {
		return fmt.Errorf("transient: negative snapshot step %d", sn.Step)
	}
	copy(s.x, sn.X)
	s.t = sn.Time
	s.stepNo = sn.Step
	s.havePrev = sn.HavePrev
	if sn.HavePrev {
		copy(s.ensurePrev(), sn.UPrev)
	}
	return nil
}

// Init sets the initial state x(0) explicitly.
func (s *Stepper) Init(x0 []float64) error {
	if len(x0) != s.N {
		return fmt.Errorf("%w: x0 length %d != %d", ErrSize, len(x0), s.N)
	}
	copy(s.x, x0)
	s.t = 0
	s.stepNo = 0
	s.havePrev = false
	return nil
}

// InitDC sets x(0) to the DC operating point G·x = u(0). The solve uses
// conjugate gradients preconditioned with the already-available
// companion factor (G + scale·C), which differs from G only by the
// capacitive term and therefore converges in a handful of iterations at
// power-grid time constants; if CG stalls (extremely stiff steps), a
// dedicated factorization of G is performed instead.
func (s *Stepper) InitDC(u0 []float64) error {
	if len(u0) != s.N {
		return fmt.Errorf("%w: u0 length %d != %d", ErrSize, len(u0), s.N)
	}
	pre := iterative.PrecondFunc(func(z, r []float64) { s.solveTo(z, r) })
	for i := range s.x {
		s.x[i] = 0
	}
	if _, err := iterative.CG(s.g, s.x, u0, iterative.CGOptions{
		Tol: 1e-12, MaxIter: 200, M: pre,
	}); err != nil {
		kern := factor.KernelSupernodal
		if s.sym.KernelName() == "cholesky" {
			kern = factor.KernelScalar
		}
		fg, ferr := factor.CholeskyKernel(s.g, s.sym.Permutation(), kern)
		if ferr != nil {
			return fmt.Errorf("transient: DC solve: CG failed (%v) and factorization failed: %w", err, ferr)
		}
		fg.SolveTo(s.x, u0)
	}
	if !numguard.Finite(s.x) {
		return &numguard.Diagnosis{Stage: "transient-dc", Rung: s.Factorer(), Reason: "non-finite DC state"}
	}
	s.t = 0
	s.stepNo = 0
	s.havePrev = false
	if s.opts.Method == Trapezoidal {
		copy(s.ensurePrev(), u0)
		s.havePrev = true
	}
	return nil
}

func (s *Stepper) ensurePrev() []float64 {
	if s.uPrev == nil {
		s.uPrev = make([]float64, s.N)
	}
	return s.uPrev
}

// State returns the current solution vector (live storage; copy before
// mutating).
func (s *Stepper) State() []float64 { return s.x }

// Time returns the current simulation time.
func (s *Stepper) Time() float64 { return s.t }

// StepCount returns the number of completed steps.
func (s *Stepper) StepCount() int { return s.stepNo }

// Advance performs one time step using the excitation u evaluated at
// the *new* time t+h (backward Euler) or at both endpoints
// (trapezoidal; the previous endpoint's u is retained internally).
func (s *Stepper) Advance(uNew []float64) error {
	if len(uNew) != s.N {
		return fmt.Errorf("%w: u length %d != %d", ErrSize, len(uNew), s.N)
	}
	var stepStart time.Time
	if s.stepMS != nil {
		stepStart = time.Now()
	}
	h := s.opts.Step
	switch s.opts.Method {
	case BackwardEuler:
		// (G + C/h)·x⁺ = C/h·x + u(t+h)
		s.c.MulVec(s.cx, s.x)
		for i := range s.b {
			s.b[i] = s.cx[i]/h + uNew[i]
		}
	case Trapezoidal:
		// (G + 2C/h)·x⁺ = (2C/h − G)·x + u(t) + u(t+h)
		if !s.havePrev {
			return fmt.Errorf("transient: trapezoidal stepping requires InitDC or a prior Advance with the initial excitation; call SetPrevExcitation")
		}
		if s.gx == nil {
			s.gx = make([]float64, s.N)
		}
		s.c.MulVec(s.cx, s.x)
		s.g.MulVec(s.gx, s.x)
		for i := range s.b {
			s.b[i] = 2*s.cx[i]/h - s.gx[i] + s.uPrev[i] + uNew[i]
		}
	default:
		return fmt.Errorf("transient: unknown method %v", s.opts.Method)
	}
	s.solveTo(s.x, s.b)
	if err := s.guardState("transient", s.stepNo+1, s.b); err != nil {
		return err
	}
	if s.opts.Method == Trapezoidal {
		copy(s.ensurePrev(), uNew)
		s.havePrev = true
	}
	s.t += h
	s.stepNo++
	s.opts.Progress.Mark()
	if s.stepMS != nil {
		ms := float64(time.Since(stepStart)) / float64(time.Millisecond)
		s.stepMS.Observe(ms)
		s.stepMSMax.SetMax(ms)
		s.stepsTotal.Inc()
	}
	return nil
}

// SetPrevExcitation primes the trapezoidal history with u(t₀) when the
// initial state comes from Init rather than InitDC.
func (s *Stepper) SetPrevExcitation(u0 []float64) error {
	if len(u0) != s.N {
		return fmt.Errorf("%w: u0 length %d != %d", ErrSize, len(u0), s.N)
	}
	copy(s.ensurePrev(), u0)
	s.havePrev = true
	return nil
}

// Run executes a full transient: initial DC at t=0 from rhs(0), then
// opts.Steps steps, invoking visit after the initial condition and
// after every step with (step index, time, state). visit must not
// retain the state slice.
func Run(g, c *sparse.Matrix, rhs func(t float64, u []float64), opts Options, visit func(step int, t float64, x []float64)) error {
	st, err := NewStepper(g, c, opts)
	if err != nil {
		return err
	}
	if err := cancel.Poll(opts.Ctx, "transient", 0); err != nil {
		return err
	}
	u := make([]float64, st.N)
	start := 1
	if opts.Resume != nil {
		if err := st.Restore(opts.Resume); err != nil {
			return err
		}
		start = opts.Resume.Step + 1
	} else {
		rhs(0, u)
		if err := st.InitDC(u); err != nil {
			return err
		}
		if visit != nil {
			visit(0, 0, st.State())
		}
	}
	for k := start; k <= opts.Steps; k++ {
		if err := cancel.Poll(opts.Ctx, "transient", k); err != nil {
			return err
		}
		t := float64(k) * opts.Step
		rhs(t, u)
		if err := st.Advance(u); err != nil {
			return err
		}
		if visit != nil {
			visit(k, t, st.State())
		}
	}
	return nil
}
