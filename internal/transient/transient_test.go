package transient

import (
	"math"
	"testing"

	"opera/internal/sparse"
)

// singleRC builds the 1-node circuit: conductance g to ground, cap c to
// ground, so C·dv/dt + G·v = u(t).
func singleRC(g, c float64) (*sparse.Matrix, *sparse.Matrix) {
	return sparse.FromDense([][]float64{{g}}), sparse.FromDense([][]float64{{c}})
}

func TestBackwardEulerStepDecay(t *testing.T) {
	// v' = -v/(RC), v(0) = 1 (forced by DC with u(0) = g·1), u = 0
	// afterwards. Exact: v(t) = e^{-t/RC}. BE converges first order.
	gm, cm := singleRC(1, 1) // RC = 1
	prevErr := math.Inf(1)
	for _, h := range []float64{0.1, 0.05, 0.025} {
		steps := int(1/h + 0.5)
		var vEnd float64
		err := Run(gm, cm, func(tt float64, u []float64) {
			if tt == 0 {
				u[0] = 1 // DC init at v = 1
			} else {
				u[0] = 0
			}
		}, Options{Step: h, Steps: steps, Method: BackwardEuler}, func(step int, tt float64, x []float64) {
			vEnd = x[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		want := math.Exp(-1)
		e := math.Abs(vEnd - want)
		if e >= prevErr {
			t.Errorf("h=%g: error %g did not decrease (prev %g)", h, e, prevErr)
		}
		if e > 2*h { // first-order accuracy bound (C ≈ e^{-1}/2)
			t.Errorf("h=%g: error %g too large", h, e)
		}
		prevErr = e
	}
}

func TestTrapezoidalSecondOrder(t *testing.T) {
	// Free decay from v(0) = 1 with u ≡ 0 (set via Init +
	// SetPrevExcitation so the input has no jump the method could
	// mis-handle); exact v(1) = e⁻¹.
	gm, cm := singleRC(1, 1)
	errs := make([]float64, 0, 3)
	for _, h := range []float64{0.1, 0.05, 0.025} {
		steps := int(1/h + 0.5)
		s, err := NewStepper(gm, cm, Options{Step: h, Steps: steps, Method: Trapezoidal})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Init([]float64{1}); err != nil {
			t.Fatal(err)
		}
		zero := []float64{0}
		if err := s.SetPrevExcitation(zero); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < steps; k++ {
			if err := s.Advance(zero); err != nil {
				t.Fatal(err)
			}
		}
		errs = append(errs, math.Abs(s.State()[0]-math.Exp(-1)))
	}
	// Halving h should reduce error by ~4x for a second-order method.
	for i := 1; i < len(errs); i++ {
		ratio := errs[i-1] / errs[i]
		if ratio < 3 {
			t.Errorf("trapezoidal convergence ratio %g, want ≳ 4 (errors %v)", ratio, errs)
		}
	}
}

func TestStepResponseSteadyState(t *testing.T) {
	// Constant u: v must converge to u/g regardless of method.
	gm, cm := singleRC(2, 3)
	for _, m := range []Method{BackwardEuler, Trapezoidal} {
		var vEnd float64
		err := Run(gm, cm, func(tt float64, u []float64) { u[0] = 4 },
			Options{Step: 0.1, Steps: 400, Method: m},
			func(step int, tt float64, x []float64) { vEnd = x[0] })
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(vEnd-2) > 1e-9 {
			t.Errorf("%v: steady state %g, want 2", m, vEnd)
		}
	}
}

// ladder builds an n-node RC ladder driven at node 0 through a pad
// conductance.
func ladder(n int) (*sparse.Matrix, *sparse.Matrix) {
	g := sparse.NewTriplet(n, n, 4*n)
	c := sparse.NewTriplet(n, n, n)
	g.Add(0, 0, 10) // pad
	for i := 0; i < n-1; i++ {
		g.Add(i, i, 1)
		g.Add(i+1, i+1, 1)
		g.Add(i, i+1, -1)
		g.Add(i+1, i, -1)
	}
	for i := 0; i < n; i++ {
		c.Add(i, i, 0.1)
	}
	return g.Compile(), c.Compile()
}

func TestConservationAtDC(t *testing.T) {
	// With constant excitation the DC init is already the fixed point:
	// every step must stay there exactly (up to roundoff).
	g, c := ladder(20)
	u0 := make([]float64, 20)
	u0[0] = 10 * 1.2 // pad Norton injection
	var first, last []float64
	err := Run(g, c, func(tt float64, u []float64) { copy(u, u0) },
		Options{Step: 1e-2, Steps: 50, Method: BackwardEuler},
		func(step int, tt float64, x []float64) {
			if step == 0 {
				first = append([]float64(nil), x...)
			}
			last = append(last[:0], x...)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if math.Abs(first[i]-last[i]) > 1e-9 {
			t.Fatalf("node %d drifted from %g to %g under constant input", i, first[i], last[i])
		}
	}
}

func TestMethodsAgreeOnSmoothInput(t *testing.T) {
	g, c := ladder(10)
	run := func(m Method, h float64, steps int) []float64 {
		var out []float64
		err := Run(g, c, func(tt float64, u []float64) {
			u[0] = 12 * (1 + 0.5*math.Sin(2*math.Pi*tt))
		}, Options{Step: h, Steps: steps, Method: m},
			func(step int, tt float64, x []float64) { out = append(out[:0], x...) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	be := run(BackwardEuler, 1e-3, 1000)
	tr := run(Trapezoidal, 1e-3, 1000)
	for i := range be {
		if math.Abs(be[i]-tr[i]) > 1e-2*(1+math.Abs(tr[i])) {
			t.Errorf("node %d: BE %g vs TR %g", i, be[i], tr[i])
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if err := (Options{Step: 0, Steps: 1}).Validate(); err == nil {
		t.Error("zero step accepted")
	}
	if err := (Options{Step: 1, Steps: 0}).Validate(); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestStepperSymbolicReuse(t *testing.T) {
	g, c := ladder(30)
	opts := Options{Step: 1e-2, Steps: 5, Method: BackwardEuler}
	// First stepper computes its own symbolic; reuse it (and the factor
	// storage) for a second system with perturbed values.
	s1, err := NewStepper(g, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone().Scale(1.1)
	opts2 := opts
	opts2.Symbolic = s1.Symbolic()
	opts2.ReuseFactor = s1.Factor()
	s2, err := NewStepper(g2, c, opts2)
	if err != nil {
		t.Fatal(err)
	}
	// Verify: one BE step from the same start must satisfy the
	// perturbed companion equation.
	x0 := make([]float64, 30)
	for i := range x0 {
		x0[i] = 1
	}
	if err := s2.Init(x0); err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 30)
	u[0] = 12
	if err := s2.Advance(u); err != nil {
		t.Fatal(err)
	}
	// Residual of (G2 + C/h)x⁺ = C/h·x0 + u.
	a := sparse.Add(1, g2, 1/opts.Step, c)
	lhs := make([]float64, 30)
	a.MulVec(lhs, s2.State())
	cx := make([]float64, 30)
	c.MulVec(cx, x0)
	for i := range lhs {
		want := cx[i]/opts.Step + u[i]
		if math.Abs(lhs[i]-want) > 1e-9 {
			t.Fatalf("residual at %d: %g vs %g", i, lhs[i], want)
		}
	}
}

func TestTrapezoidalRequiresHistory(t *testing.T) {
	g, c := ladder(5)
	s, err := NewStepper(g, c, Options{Step: 1e-2, Steps: 2, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Init(make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 5)
	if err := s.Advance(u); err == nil {
		t.Error("trapezoidal Advance without history should fail")
	}
	if err := s.SetPrevExcitation(u); err != nil {
		t.Fatal(err)
	}
	if err := s.Advance(u); err != nil {
		t.Errorf("Advance after SetPrevExcitation failed: %v", err)
	}
}

func TestStepperAccessorsAndStrings(t *testing.T) {
	if BackwardEuler.String() != "backward-euler" || Trapezoidal.String() != "trapezoidal" {
		t.Error("method names wrong")
	}
	if s := Method(99).String(); s == "" {
		t.Error("unknown method should still stringify")
	}
	g, c := singleRC(1, 1)
	st, err := NewStepper(g, c, Options{Step: 0.5, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init([]float64{2}); err != nil {
		t.Fatal(err)
	}
	if st.Time() != 0 || st.StepCount() != 0 {
		t.Error("fresh stepper state wrong")
	}
	if err := st.Advance([]float64{0}); err != nil {
		t.Fatal(err)
	}
	if st.Time() != 0.5 || st.StepCount() != 1 {
		t.Errorf("time %g steps %d", st.Time(), st.StepCount())
	}
}

func TestStepperDimensionErrors(t *testing.T) {
	g, c := singleRC(1, 1)
	if _, err := NewStepper(g, sparse.FromDense([][]float64{{1, 0}, {0, 1}}),
		Options{Step: 1, Steps: 1}); err == nil {
		t.Error("mismatched C accepted")
	}
	st, err := NewStepper(g, c, Options{Step: 1, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init([]float64{1, 2}); err == nil {
		t.Error("wrong x0 length accepted")
	}
	if err := st.InitDC([]float64{1, 2}); err == nil {
		t.Error("wrong u0 length accepted")
	}
	if err := st.Advance([]float64{1, 2}); err == nil {
		t.Error("wrong u length accepted")
	}
	if err := st.SetPrevExcitation([]float64{1, 2}); err == nil {
		t.Error("wrong prev length accepted")
	}
}

func TestRunPropagatesBadOptions(t *testing.T) {
	g, c := singleRC(1, 1)
	if err := Run(g, c, func(float64, []float64) {}, Options{Step: 0, Steps: 3}, nil); err == nil {
		t.Error("bad options accepted")
	}
}

func TestRunNilVisit(t *testing.T) {
	g, c := singleRC(1, 1)
	if err := Run(g, c, func(tt float64, u []float64) { u[0] = 1 },
		Options{Step: 0.1, Steps: 3}, nil); err != nil {
		t.Fatal(err)
	}
}
