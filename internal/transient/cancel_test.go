package transient

import (
	"context"
	"errors"
	"testing"

	"opera/internal/cancel"
)

// TestRunCancelMidway cancels from inside the visit callback and
// checks the run stops at the very next step boundary with the
// structured error.
func TestRunCancelMidway(t *testing.T) {
	gm, cm := singleRC(1, 1)
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	last := -1
	err := Run(gm, cm, func(tt float64, u []float64) { u[0] = 1 },
		Options{Step: 0.01, Steps: 1000, Ctx: ctx},
		func(step int, tt float64, x []float64) {
			last = step
			if step == 3 {
				stop()
			}
		})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Errorf("error does not wrap cancel.ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap the context cause: %v", err)
	}
	var ce *cancel.Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *cancel.Error: %v", err)
	}
	if ce.Stage != "transient" {
		t.Errorf("stage = %q, want transient", ce.Stage)
	}
	// Cancellation must bite within one step of the cancel point.
	if last > 4 {
		t.Errorf("run continued to step %d after cancel at step 3", last)
	}
}

// TestRunCancelBeforeStart returns before any step when the context is
// already dead, and a fresh run on the same matrices still works.
func TestRunCancelBeforeStart(t *testing.T) {
	gm, cm := singleRC(1, 1)
	ctx, stop := context.WithCancel(context.Background())
	stop()
	visited := 0
	err := Run(gm, cm, func(tt float64, u []float64) { u[0] = 1 },
		Options{Step: 0.01, Steps: 10, Ctx: ctx},
		func(int, float64, []float64) { visited++ })
	if !errors.Is(err, cancel.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if visited != 0 {
		t.Errorf("visited %d steps under a dead context", visited)
	}
	// Same inputs, live context: unaffected by the aborted run.
	if err := Run(gm, cm, func(tt float64, u []float64) { u[0] = 1 },
		Options{Step: 0.01, Steps: 10, Ctx: context.Background()},
		nil); err != nil {
		t.Fatalf("rerun after canceled run: %v", err)
	}
}
