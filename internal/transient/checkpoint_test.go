package transient

import (
	"encoding/json"
	"math"
	"testing"

	"opera/internal/obs"
	"opera/internal/sparse"
)

// snapshotSystem builds a small RC chain for resume tests.
func snapshotSystem(n int) (*sparse.Matrix, *sparse.Matrix, func(t float64, u []float64)) {
	gd := make([][]float64, n)
	cd := make([][]float64, n)
	for i := 0; i < n; i++ {
		gd[i] = make([]float64, n)
		cd[i] = make([]float64, n)
		gd[i][i] = 2.0
		if i+1 < n {
			gd[i][i+1] = -1.0
		}
		if i > 0 {
			gd[i][i-1] = -1.0
		}
		cd[i][i] = 1e-12
	}
	rhs := func(t float64, u []float64) {
		for i := range u {
			u[i] = 0
		}
		u[0] = 1.0 + 0.1*math.Sin(2e9*t)
	}
	return sparse.FromDense(gd), sparse.FromDense(cd), rhs
}

// A run restored from a mid-flight snapshot must land on the exact
// states of the uninterrupted run, for both integration methods, and
// the snapshot must survive a JSON round trip (the on-disk path).
func TestSnapshotResumeBitIdentical(t *testing.T) {
	for _, method := range []Method{BackwardEuler, Trapezoidal} {
		t.Run(method.String(), func(t *testing.T) {
			g, c, rhs := snapshotSystem(12)
			const steps, cut = 20, 9
			opts := Options{Step: 2e-11, Steps: steps, Method: method}

			var fullStates [][]float64
			if err := Run(g, c, rhs, opts, func(k int, _ float64, x []float64) {
				fullStates = append(fullStates, append([]float64(nil), x...))
			}); err != nil {
				t.Fatal(err)
			}

			// Re-run to the cut, snapshot, round-trip through JSON.
			var snap *Snapshot
			if err := Run(g, c, rhs, opts, func(k int, _ float64, x []float64) {}); err != nil {
				t.Fatal(err)
			}
			st, err := NewStepper(g, c, opts)
			if err != nil {
				t.Fatal(err)
			}
			u := make([]float64, st.N)
			rhs(0, u)
			if err := st.InitDC(u); err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= cut; k++ {
				rhs(float64(k)*opts.Step, u)
				if err := st.Advance(u); err != nil {
					t.Fatal(err)
				}
			}
			b, err := json.Marshal(st.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(b, &snap); err != nil {
				t.Fatal(err)
			}
			if snap.Step != cut {
				t.Fatalf("snapshot at step %d, want %d", snap.Step, cut)
			}

			// Resume through Run on a fresh stepper.
			var resumed [][]float64
			ropts := opts
			ropts.Resume = snap
			if err := Run(g, c, rhs, ropts, func(k int, _ float64, x []float64) {
				if k <= cut {
					t.Fatalf("visit for already-completed step %d", k)
				}
				resumed = append(resumed, append([]float64(nil), x...))
			}); err != nil {
				t.Fatal(err)
			}
			if len(resumed) != steps-cut {
				t.Fatalf("resumed %d steps, want %d", len(resumed), steps-cut)
			}
			for i, x := range resumed {
				want := fullStates[cut+1+i]
				for j := range x {
					if math.Float64bits(x[j]) != math.Float64bits(want[j]) {
						t.Fatalf("step %d node %d: resumed %g != full %g", cut+1+i, j, x[j], want[j])
					}
				}
			}
		})
	}
}

func TestRestoreDimensionErrors(t *testing.T) {
	g, c, _ := snapshotSystem(6)
	st, err := NewStepper(g, c, Options{Step: 1e-11, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Restore(&Snapshot{Step: 1, X: make([]float64, 5)}); err == nil {
		t.Error("short state accepted")
	}
	if err := st.Restore(&Snapshot{Step: 1, X: make([]float64, 6), HavePrev: true, UPrev: make([]float64, 2)}); err == nil {
		t.Error("short excitation history accepted")
	}
	if err := st.Restore(&Snapshot{Step: -2, X: make([]float64, 6)}); err == nil {
		t.Error("negative step accepted")
	}
}

func TestStepperProgress(t *testing.T) {
	g, c, rhs := snapshotSystem(6)
	var p obs.Progress
	if err := Run(g, c, rhs, Options{Step: 1e-11, Steps: 7, Progress: &p}, nil); err != nil {
		t.Fatal(err)
	}
	if p.Value() != 7 {
		t.Fatalf("progress %d, want 7", p.Value())
	}
}
