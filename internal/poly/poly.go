// Package poly implements the univariate orthogonal polynomial families
// of the Askey scheme used as polynomial chaos bases (paper §4): the
// probabilists' Hermite polynomials (Gaussian measure), Legendre
// (uniform), generalized Laguerre (Gamma) and Jacobi (Beta). Each family
// knows its three-term recurrence, its squared norms under the
// associated probability measure, a matching Gaussian quadrature rule,
// and how to sample its measure — everything the multivariate chaos
// machinery in package pce needs.
package poly

import (
	"math"
	"math/rand"

	"opera/internal/quad"
)

// Family is one univariate orthogonal polynomial family together with
// its orthogonality (probability) measure.
type Family interface {
	// Name identifies the family (e.g. "hermite").
	Name() string
	// Eval evaluates the degree-k polynomial in its conventional
	// normalization at x.
	Eval(k int, x float64) float64
	// EvalAll fills out[0..len(out)-1] with degrees 0..len(out)-1 at x,
	// sharing the recurrence work, and returns out.
	EvalAll(x float64, out []float64) []float64
	// NormSq returns E[p_k²] under the family's probability measure.
	NormSq(k int) float64
	// Quadrature returns an n-point Gauss rule for the measure.
	Quadrature(n int) (quad.Rule, error)
	// Sample draws one variate from the measure.
	Sample(rng *rand.Rand) float64
}

// Hermite is the probabilists' Hermite family He_k, orthogonal under the
// standard Gaussian: He₀=1, He₁=x, He_{k+1} = x·He_k − k·He_{k−1},
// E[He_k²] = k!.
type Hermite struct{}

// Name implements Family.
func (Hermite) Name() string { return "hermite" }

// Eval implements Family.
func (h Hermite) Eval(k int, x float64) float64 {
	return evalByRecurrence(h, k, x)
}

// EvalAll implements Family.
func (Hermite) EvalAll(x float64, out []float64) []float64 {
	if len(out) == 0 {
		return out
	}
	out[0] = 1
	if len(out) > 1 {
		out[1] = x
	}
	for k := 1; k < len(out)-1; k++ {
		out[k+1] = x*out[k] - float64(k)*out[k-1]
	}
	return out
}

// NormSq implements Family: E[He_k²] = k!.
func (Hermite) NormSq(k int) float64 {
	return factorial(k)
}

// Quadrature implements Family.
func (Hermite) Quadrature(n int) (quad.Rule, error) { return quad.GaussHermite(n) }

// Sample implements Family.
func (Hermite) Sample(rng *rand.Rand) float64 { return rng.NormFloat64() }

// Legendre is the Legendre family P_k, orthogonal under the uniform
// density on [−1, 1]; E[P_k²] = 1/(2k+1).
type Legendre struct{}

// Name implements Family.
func (Legendre) Name() string { return "legendre" }

// Eval implements Family.
func (l Legendre) Eval(k int, x float64) float64 {
	return evalByRecurrence(l, k, x)
}

// EvalAll implements Family.
func (Legendre) EvalAll(x float64, out []float64) []float64 {
	if len(out) == 0 {
		return out
	}
	out[0] = 1
	if len(out) > 1 {
		out[1] = x
	}
	for k := 1; k < len(out)-1; k++ {
		fk := float64(k)
		out[k+1] = ((2*fk+1)*x*out[k] - fk*out[k-1]) / (fk + 1)
	}
	return out
}

// NormSq implements Family: E[P_k²] = 1/(2k+1) under the uniform density.
func (Legendre) NormSq(k int) float64 { return 1 / float64(2*k+1) }

// Quadrature implements Family.
func (Legendre) Quadrature(n int) (quad.Rule, error) { return quad.GaussLegendre(n) }

// Sample implements Family.
func (Legendre) Sample(rng *rand.Rand) float64 { return 2*rng.Float64() - 1 }

// Laguerre is the generalized Laguerre family L_k^{(α)}, orthogonal
// under the Gamma(α+1, 1) density x^α e^{−x}/Γ(α+1) on [0, ∞);
// E[(L_k^{(α)})²] = Γ(k+α+1)/(k!·Γ(α+1)) = C(k+α, k).
type Laguerre struct {
	Alpha float64 // Alpha > −1; 0 gives the standard Laguerre family
}

// Name implements Family.
func (Laguerre) Name() string { return "laguerre" }

// Eval implements Family.
func (l Laguerre) Eval(k int, x float64) float64 {
	return evalByRecurrence(l, k, x)
}

// EvalAll implements Family.
func (l Laguerre) EvalAll(x float64, out []float64) []float64 {
	if len(out) == 0 {
		return out
	}
	out[0] = 1
	if len(out) > 1 {
		out[1] = 1 + l.Alpha - x
	}
	for k := 1; k < len(out)-1; k++ {
		fk := float64(k)
		out[k+1] = ((2*fk+1+l.Alpha-x)*out[k] - (fk+l.Alpha)*out[k-1]) / (fk + 1)
	}
	return out
}

// NormSq implements Family.
func (l Laguerre) NormSq(k int) float64 {
	// Γ(k+α+1)/(k!·Γ(α+1)) computed stably as Π_{j=1..k} (α+j)/j.
	v := 1.0
	for j := 1; j <= k; j++ {
		v *= (l.Alpha + float64(j)) / float64(j)
	}
	return v
}

// Quadrature implements Family.
func (l Laguerre) Quadrature(n int) (quad.Rule, error) { return quad.GaussLaguerre(n, l.Alpha) }

// Sample implements Family: draws from Gamma(α+1, 1).
func (l Laguerre) Sample(rng *rand.Rand) float64 { return sampleGamma(rng, l.Alpha+1) }

// Jacobi is the Jacobi family P_k^{(α,β)}, orthogonal under the
// Beta-type density ∝ (1−x)^α (1+x)^β on [−1, 1].
type Jacobi struct {
	Alpha, Beta float64 // both > −1
}

// Name implements Family.
func (Jacobi) Name() string { return "jacobi" }

// Eval implements Family.
func (j Jacobi) Eval(k int, x float64) float64 {
	return evalByRecurrence(j, k, x)
}

// EvalAll implements Family.
func (j Jacobi) EvalAll(x float64, out []float64) []float64 {
	if len(out) == 0 {
		return out
	}
	a, b := j.Alpha, j.Beta
	out[0] = 1
	if len(out) > 1 {
		out[1] = (a+b+2)/2*x + (a-b)/2
	}
	for k := 1; k < len(out)-1; k++ {
		fk := float64(k)
		c1 := 2 * (fk + 1) * (fk + a + b + 1) * (2*fk + a + b)
		c2 := (2*fk + a + b + 1) * (a*a - b*b)
		c3 := (2*fk + a + b) * (2*fk + a + b + 1) * (2*fk + a + b + 2)
		c4 := 2 * (fk + a) * (fk + b) * (2*fk + a + b + 2)
		out[k+1] = ((c2+c3*x)*out[k] - c4*out[k-1]) / c1
	}
	return out
}

// NormSq implements Family: the squared norm of P_k^{(α,β)} under the
// *normalized* Beta density.
func (j Jacobi) NormSq(k int) float64 {
	a, b := j.Alpha, j.Beta
	// hk = ∫ (P_k)² w dx with w = (1−x)^α(1+x)^β equals
	// 2^{a+b+1}/(2k+a+b+1) · Γ(k+a+1)Γ(k+b+1)/(Γ(k+a+b+1)·k!).
	// Dividing by µ0 = 2^{a+b+1}·B(a+1,b+1) normalizes the measure.
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	fk := float64(k)
	logHk := lg(fk+a+1) + lg(fk+b+1) - lg(fk+a+b+1) - lg(fk+1) - math.Log(2*fk+a+b+1)
	logB := lg(a+1) + lg(b+1) - lg(a+b+2)
	return math.Exp(logHk - logB)
}

// Quadrature implements Family.
func (j Jacobi) Quadrature(n int) (quad.Rule, error) { return quad.GaussJacobi(n, j.Alpha, j.Beta) }

// Sample implements Family: draws x = 2u − 1 with u ~ Beta(β+1, α+1)
// (the +1 exponents swap because (1−x) pairs with α and (1+x) with β).
func (j Jacobi) Sample(rng *rand.Rand) float64 {
	g1 := sampleGamma(rng, j.Beta+1)
	g2 := sampleGamma(rng, j.Alpha+1)
	return 2*g1/(g1+g2) - 1
}

// evalByRecurrence evaluates a single degree via EvalAll, allocating a
// small scratch; fine for non-inner-loop use.
func evalByRecurrence(f Family, k int, x float64) float64 {
	out := make([]float64, k+1)
	f.EvalAll(x, out)
	return out[k]
}

func factorial(k int) float64 {
	v := 1.0
	for i := 2; i <= k; i++ {
		v *= float64(i)
	}
	return v
}

// sampleGamma draws from Gamma(shape, 1) using the Marsaglia–Tsang
// method (with the boost for shape < 1).
func sampleGamma(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return sampleGamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
