package poly

import (
	"math"
	"math/rand"
	"testing"
)

func families() []Family {
	return []Family{
		Hermite{},
		Legendre{},
		Laguerre{Alpha: 0},
		Laguerre{Alpha: 1.5},
		Jacobi{Alpha: 0.5, Beta: 2},
		Jacobi{Alpha: 0, Beta: 0},
	}
}

// TestOrthogonality verifies <p_i, p_j> = δij·NormSq(i) under each
// family's own quadrature of sufficient degree.
func TestOrthogonality(t *testing.T) {
	const maxDeg = 6
	for _, f := range families() {
		rule, err := f.Quadrature(maxDeg + 2) // integrates degree 2(maxDeg+2)-1 ≥ 2maxDeg
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		vals := make([]float64, maxDeg+1)
		gram := make([][]float64, maxDeg+1)
		for i := range gram {
			gram[i] = make([]float64, maxDeg+1)
		}
		for q, x := range rule.Nodes {
			f.EvalAll(x, vals)
			w := rule.Weights[q]
			for i := 0; i <= maxDeg; i++ {
				for j := 0; j <= maxDeg; j++ {
					gram[i][j] += w * vals[i] * vals[j]
				}
			}
		}
		for i := 0; i <= maxDeg; i++ {
			for j := 0; j <= maxDeg; j++ {
				want := 0.0
				if i == j {
					want = f.NormSq(i)
				}
				if math.Abs(gram[i][j]-want) > 1e-8*(1+math.Abs(want)) {
					t.Errorf("%s: <p%d,p%d> = %g, want %g", f.Name(), i, j, gram[i][j], want)
				}
			}
		}
	}
}

func TestHermiteExplicit(t *testing.T) {
	// He_2 = x²−1, He_3 = x³−3x, He_4 = x⁴−6x²+3.
	h := Hermite{}
	for _, x := range []float64{-2, -0.5, 0, 1, 3.7} {
		if got, want := h.Eval(2, x), x*x-1; math.Abs(got-want) > 1e-12 {
			t.Errorf("He2(%g) = %g, want %g", x, got, want)
		}
		if got, want := h.Eval(3, x), x*x*x-3*x; math.Abs(got-want) > 1e-12 {
			t.Errorf("He3(%g) = %g, want %g", x, got, want)
		}
		if got, want := h.Eval(4, x), x*x*x*x-6*x*x+3; math.Abs(got-want) > 1e-11 {
			t.Errorf("He4(%g) = %g, want %g", x, got, want)
		}
	}
	if h.NormSq(4) != 24 {
		t.Errorf("NormSq(4) = %g, want 4! = 24", h.NormSq(4))
	}
}

func TestLegendreExplicit(t *testing.T) {
	// P_2 = (3x²−1)/2, P_3 = (5x³−3x)/2; P_k(1) = 1.
	l := Legendre{}
	for _, x := range []float64{-1, -0.3, 0, 0.8, 1} {
		if got, want := l.Eval(2, x), (3*x*x-1)/2; math.Abs(got-want) > 1e-12 {
			t.Errorf("P2(%g) = %g, want %g", x, got, want)
		}
		if got, want := l.Eval(3, x), (5*x*x*x-3*x)/2; math.Abs(got-want) > 1e-12 {
			t.Errorf("P3(%g) = %g, want %g", x, got, want)
		}
	}
	for k := 0; k <= 8; k++ {
		if got := l.Eval(k, 1); math.Abs(got-1) > 1e-12 {
			t.Errorf("P%d(1) = %g, want 1", k, got)
		}
	}
}

func TestLaguerreExplicit(t *testing.T) {
	// L_1 = 1−x, L_2 = (x²−4x+2)/2 for α=0; L_k(0) = C(k+α, k).
	l := Laguerre{}
	for _, x := range []float64{0, 0.5, 2, 5} {
		if got, want := l.Eval(1, x), 1-x; math.Abs(got-want) > 1e-12 {
			t.Errorf("L1(%g) = %g, want %g", x, got, want)
		}
		if got, want := l.Eval(2, x), (x*x-4*x+2)/2; math.Abs(got-want) > 1e-12 {
			t.Errorf("L2(%g) = %g, want %g", x, got, want)
		}
	}
	la := Laguerre{Alpha: 2}
	// L_k^{(α)}(0) = C(k+α, k): k=3, α=2 → C(5,3) = 10.
	if got := la.Eval(3, 0); math.Abs(got-10) > 1e-12 {
		t.Errorf("L3^(2)(0) = %g, want 10", got)
	}
}

func TestJacobiExplicit(t *testing.T) {
	// P_1^{(α,β)}(x) = (α+β+2)x/2 + (α−β)/2.
	j := Jacobi{Alpha: 1, Beta: 2}
	for _, x := range []float64{-1, 0, 0.5, 1} {
		want := (1.0+2+2)/2*x + (1.0-2)/2
		if got := j.Eval(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P1(%g) = %g, want %g", x, got, want)
		}
	}
	// P_k^{(α,β)}(1) = C(k+α, k).
	j2 := Jacobi{Alpha: 2, Beta: 0.5}
	if got, want := j2.Eval(2, 1.0), 6.0; math.Abs(got-want) > 1e-12 { // C(4,2)
		t.Errorf("P2(1) = %g, want %g", got, want)
	}
}

func TestEvalAllMatchesEval(t *testing.T) {
	for _, f := range families() {
		out := make([]float64, 7)
		for _, x := range []float64{-1.3, 0.2, 2.5} {
			f.EvalAll(x, out)
			for k := range out {
				if got := f.Eval(k, x); math.Abs(got-out[k]) > 1e-12*(1+math.Abs(got)) {
					t.Errorf("%s: EvalAll[%d](%g) = %g, Eval = %g", f.Name(), k, x, out[k], got)
				}
			}
		}
	}
}

// TestSampleMomentsMatchQuadrature cross-checks each family's sampler
// against its quadrature: first two moments must agree.
func TestSampleMomentsMatchQuadrature(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nSamples = 200000
	for _, f := range families() {
		rule, err := f.Quadrature(12)
		if err != nil {
			t.Fatal(err)
		}
		wantMean := rule.Integrate(func(x float64) float64 { return x })
		wantM2 := rule.Integrate(func(x float64) float64 { return x * x })
		var s, s2 float64
		for i := 0; i < nSamples; i++ {
			x := f.Sample(rng)
			s += x
			s2 += x * x
		}
		mean := s / nSamples
		m2 := s2 / nSamples
		sd := math.Sqrt(wantM2 - wantMean*wantMean)
		if math.Abs(mean-wantMean) > 5*sd/math.Sqrt(nSamples)+1e-3 {
			t.Errorf("%s: sample mean %g, quadrature %g", f.Name(), mean, wantMean)
		}
		if math.Abs(m2-wantM2) > 0.05*(1+wantM2) {
			t.Errorf("%s: sample E[x²] %g, quadrature %g", f.Name(), m2, wantM2)
		}
	}
}

func TestNormSqPositive(t *testing.T) {
	for _, f := range families() {
		for k := 0; k <= 10; k++ {
			if v := f.NormSq(k); v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: NormSq(%d) = %g", f.Name(), k, v)
			}
		}
	}
}

func TestHermiteNormSqIsFactorial(t *testing.T) {
	h := Hermite{}
	want := 1.0
	for k := 0; k <= 12; k++ {
		if k > 0 {
			want *= float64(k)
		}
		if got := h.NormSq(k); got != want {
			t.Errorf("NormSq(%d) = %g, want %g", k, got, want)
		}
	}
}
