// Package parallel is the repo's stdlib-only worker-pool layer. It
// exists to make the embarrassingly-parallel hot loops (Monte Carlo
// sampling, the §5.1 decoupled per-basis solves, the coupled block
// apply) run on every core while keeping results bit-identical to the
// serial path:
//
//   - Work is partitioned by *index*, never by worker: chunk and shard
//     boundaries depend only on the problem size, so the same item is
//     always computed from the same inputs regardless of worker count.
//   - OrderedChunks merges chunk results in ascending chunk order, so
//     floating-point reductions associate identically for 1 and N
//     workers.
//   - Panics inside workers are captured and returned as *PanicError
//     instead of crashing the process from an anonymous goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count option: n itself when positive,
// otherwise GOMAXPROCS. Every Options.Workers field in the repo funnels
// through this so "0 means all cores" is defined in exactly one place.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered inside a worker so callers see an
// ordinary error with the original stack attached.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panicked: %v\n%s", e.Value, e.Stack)
}

// call runs fn, converting a panic into a *PanicError.
func call(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// ForEach runs fn(worker, i) for every i in [0, n), spread across up to
// `workers` goroutines. Indices are handed out dynamically (atomic
// counter), so it load-balances uneven work; the worker id is stable
// within a goroutine and always < Workers(workers), so callers may
// index per-worker scratch by it. The first error (or panic) stops the
// pool early and is returned. With one worker (or n <= 1) everything
// runs on the calling goroutine with worker id 0.
//
// ForEach gives no ordering guarantee between items: use it only when
// items write to disjoint outputs.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := call(func() error { return fn(0, i) }); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(worker int) {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := call(func() error { return fn(worker, i) }); err != nil {
					fail(err)
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	return firstErr
}

// OrderedChunks runs `run(worker, chunk)` for every chunk in
// [0, numChunks) across up to `workers` goroutines and feeds the
// results to `merge(chunk, value)` in strictly ascending chunk order on
// a single goroutine. This is the deterministic-reduction primitive:
// as long as chunk boundaries are a function of the problem size only,
// the merged result is bit-identical for any worker count.
//
// `window` bounds how many chunks may be in flight or parked awaiting
// their turn at the merger (back-pressure so a slow early chunk cannot
// pile up unbounded results); it is clamped to at least workers+1.
// The first error from run or merge (panics included) cancels the pool
// and is returned.
func OrderedChunks[T any](workers, numChunks, window int, run func(worker, chunk int) (T, error), merge func(chunk int, v T) error) error {
	if numChunks <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > numChunks {
		w = numChunks
	}
	if w <= 1 {
		// Serial fast path: same run→merge sequence the parallel path
		// produces, without goroutines.
		for c := 0; c < numChunks; c++ {
			v, err := runChunk(run, 0, c)
			if err != nil {
				return err
			}
			if err := call(func() error { return merge(c, v) }); err != nil {
				return err
			}
		}
		return nil
	}
	if window < w+1 {
		window = w + 1
	}
	if window > numChunks {
		window = numChunks
	}

	type result struct {
		chunk int
		v     T
	}
	var (
		tickets  = make(chan struct{}, window)
		results  = make(chan result, window)
		quit     = make(chan struct{})
		quitOnce sync.Once
		firstErr error
		errOnce  sync.Once
		next     atomic.Int64
		wg       sync.WaitGroup
		mergerWG sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		quitOnce.Do(func() { close(quit) })
	}
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}

	// Merger: holds early-arriving chunks in `pending` and applies them
	// in ascending order, releasing one ticket per merged chunk.
	mergerWG.Add(1)
	go func() {
		defer mergerWG.Done()
		pending := make(map[int]T, window)
		want, done := 0, 0
		for done < numChunks {
			select {
			case r := <-results:
				pending[r.chunk] = r.v
			case <-quit:
				return
			}
			for {
				v, ok := pending[want]
				if !ok {
					break
				}
				delete(pending, want)
				if err := call(func() error { return merge(want, v) }); err != nil {
					fail(err)
					return
				}
				want++
				done++
				select {
				case tickets <- struct{}{}:
				default:
				}
			}
		}
	}()

	wg.Add(w)
	for wk := 0; wk < w; wk++ {
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-tickets:
				case <-quit:
					return
				}
				c := int(next.Add(1)) - 1
				if c >= numChunks {
					return
				}
				v, err := runChunk(run, worker, c)
				if err != nil {
					fail(err)
					return
				}
				select {
				case results <- result{chunk: c, v: v}:
				case <-quit:
					return
				}
			}
		}(wk)
	}
	wg.Wait()
	// If a worker failed it already closed quit, so the merger cannot
	// block; otherwise every result has been queued and the merger
	// drains to completion. Either way this wait terminates.
	mergerWG.Wait()
	quitOnce.Do(func() { close(quit) })
	return firstErr
}

func runChunk[T any](run func(worker, chunk int) (T, error), worker, chunk int) (v T, err error) {
	err = call(func() error {
		var e error
		v, e = run(worker, chunk)
		return e
	})
	return v, err
}
