package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-7); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-7) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 4, 13} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			const n = 997
			var hits [n]atomic.Int32
			err := ForEach(w, n, func(worker, i int) error {
				if worker < 0 || worker >= w {
					return fmt.Errorf("worker id %d out of range [0,%d)", worker, w)
				}
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("index %d visited %d times", i, c)
				}
			}
		})
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(_, _ int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -3, func(_, _ int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n <= 0")
	}
}

func TestForEachFirstErrorStops(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := ForEach(4, 10_000, func(_, i int) error {
		calls.Add(1)
		if i == 57 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c := calls.Load(); c >= 10_000 {
		t.Errorf("pool did not stop early: %d calls", c)
	}
}

func TestForEachPanicBecomesError(t *testing.T) {
	err := ForEach(4, 100, func(_, i int) error {
		if i == 31 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError{Value: %v, stack %d bytes}", pe.Value, len(pe.Stack))
	}
}

func TestOrderedChunksMergesInOrder(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			const chunks = 203
			var got []int
			err := OrderedChunks(w, chunks, 4, func(_, c int) (int, error) {
				return c * c, nil
			}, func(c, v int) error {
				if v != c*c {
					return fmt.Errorf("chunk %d carried value %d", c, v)
				}
				got = append(got, c)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != chunks {
				t.Fatalf("merged %d chunks, want %d", len(got), chunks)
			}
			for i, c := range got {
				if c != i {
					t.Fatalf("merge order broken at position %d: chunk %d", i, c)
				}
			}
		})
	}
}

func TestOrderedChunksRunError(t *testing.T) {
	boom := errors.New("run failed")
	var merged atomic.Int64
	err := OrderedChunks(4, 500, 4, func(_, c int) (int, error) {
		if c == 123 {
			return 0, boom
		}
		return c, nil
	}, func(_, _ int) error {
		merged.Add(1)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want run error", err)
	}
	if merged.Load() > 123 {
		t.Errorf("merged %d chunks past the failure point", merged.Load())
	}
}

func TestOrderedChunksMergeError(t *testing.T) {
	boom := errors.New("merge failed")
	err := OrderedChunks(4, 500, 4, func(_, c int) (int, error) {
		return c, nil
	}, func(c, _ int) error {
		if c == 200 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want merge error", err)
	}
}

func TestOrderedChunksPanicInRun(t *testing.T) {
	err := OrderedChunks(4, 100, 4, func(_, c int) (int, error) {
		if c == 42 {
			panic("chunk panic")
		}
		return c, nil
	}, func(_, _ int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
}

// TestOrderedChunksDeterministicSum is the primitive's contract in
// miniature: a floating-point reduction merged in chunk order must be
// bit-identical for every worker count.
func TestOrderedChunksDeterministicSum(t *testing.T) {
	const chunks = 64
	sumFor := func(workers int) float64 {
		total := 0.0
		err := OrderedChunks(workers, chunks, 4, func(_, c int) (float64, error) {
			s := 0.0
			for i := 0; i < 1000; i++ {
				s += 1.0 / float64(c*1000+i+1)
			}
			return s, nil
		}, func(_ int, v float64) error {
			total += v
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	ref := sumFor(1)
	for _, w := range []int{2, 4, 8} {
		if got := sumFor(w); got != ref {
			t.Errorf("workers=%d sum %.17g != serial %.17g", w, got, ref)
		}
	}
}
