package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opera/internal/sparse"
)

// grid2D builds the pattern of a 2D 5-point Laplacian on an rows×cols
// mesh — the canonical power-grid-like test graph.
func grid2D(rows, cols int) *sparse.Matrix {
	n := rows * cols
	t := sparse.NewTriplet(n, n, 5*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			t.Add(v, v, 4)
			if r+1 < rows {
				t.Add(v, id(r+1, c), -1)
				t.Add(id(r+1, c), v, -1)
			}
			if c+1 < cols {
				t.Add(v, id(r, c+1), -1)
				t.Add(id(r, c+1), v, -1)
			}
		}
	}
	return t.Compile()
}

func randomSymmetric(rng *rand.Rand, n int, density float64) *sparse.Matrix {
	t := sparse.NewTriplet(n, n, n*4)
	for i := 0; i < n; i++ {
		t.Add(i, i, float64(n))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				t.Add(i, j, -1)
				t.Add(j, i, -1)
			}
		}
	}
	return t.Compile()
}

func TestGraphFromMatrix(t *testing.T) {
	// Path graph 0-1-2 with self loops dropped.
	a := sparse.FromDense([][]float64{
		{2, -1, 0},
		{-1, 2, -1},
		{0, -1, 2},
	})
	g := NewGraph(a)
	if g.N != 3 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(2) != 1 {
		t.Errorf("degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestGraphDeduplicatesAsymmetric(t *testing.T) {
	// A has (0,1) only; graph of A+Aᵀ must have edge both ways, once.
	a := sparse.FromDense([][]float64{{0, 1}, {0, 0}})
	g := NewGraph(a)
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
}

func checkPerm(t *testing.T, name string, p []int, n int) {
	t.Helper()
	if len(p) != n {
		t.Fatalf("%s: permutation length %d != %d", name, len(p), n)
	}
	if !sparse.IsPerm(p) {
		t.Fatalf("%s: not a permutation: %v", name, p)
	}
}

func TestOrderingsAreValidPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []*sparse.Matrix{
		grid2D(7, 9),
		grid2D(1, 1),
		grid2D(1, 20),
		randomSymmetric(rng, 40, 0.1),
		sparse.Identity(5), // fully disconnected graph
	}
	for i, a := range cases {
		g := NewGraph(a)
		checkPerm(t, "RCM", RCM(g), a.Rows)
		checkPerm(t, "ND", NestedDissection(g, 4), a.Rows)
		checkPerm(t, "MD", MinimumDegree(g), a.Rows)
		checkPerm(t, "AMD", AMD(g), a.Rows)
		_ = i
	}
}

func bandwidth(a *sparse.Matrix) int {
	bw := 0
	for j := 0; j < a.Cols; j++ {
		for p := a.Colp[j]; p < a.Colp[j+1]; p++ {
			d := a.Rowi[p] - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

func TestRCMReducesBandwidth(t *testing.T) {
	a := grid2D(10, 30) // natural order bandwidth 30
	g := NewGraph(a)
	p := RCM(g)
	pa := a.SymPerm(p)
	if bw := bandwidth(pa); bw > 15 {
		t.Errorf("RCM bandwidth %d, want <= 15 (natural %d)", bw, bandwidth(a))
	}
}

// fillIn counts the fill (nnz of the Cholesky factor) of a symmetric
// positive definite pattern via a simple symbolic elimination.
func fillIn(a *sparse.Matrix) int {
	n := a.Rows
	adj := make([]map[int]bool, n)
	for v := range adj {
		adj[v] = map[int]bool{}
	}
	for j := 0; j < n; j++ {
		for p := a.Colp[j]; p < a.Colp[j+1]; p++ {
			i := a.Rowi[p]
			if i != j {
				adj[i][j] = true
				adj[j][i] = true
			}
		}
	}
	total := n
	for v := 0; v < n; v++ {
		// Neighbors with higher number form a clique.
		var higher []int
		for w := range adj[v] {
			if w > v {
				higher = append(higher, w)
			}
		}
		total += len(higher)
		for i := 0; i < len(higher); i++ {
			for j := i + 1; j < len(higher); j++ {
				adj[higher[i]][higher[j]] = true
				adj[higher[j]][higher[i]] = true
			}
		}
	}
	return total
}

func TestOrderingsReduceFill(t *testing.T) {
	a := grid2D(14, 14)
	g := NewGraph(a)
	natural := fillIn(a)
	for _, tc := range []struct {
		name string
		p    []int
	}{
		{"RCM", RCM(g)},
		{"ND", NestedDissection(g, 8)},
		{"MD", MinimumDegree(g)},
		{"AMD", AMD(g)},
	} {
		f := fillIn(a.SymPerm(tc.p))
		t.Logf("%s fill %d vs natural %d", tc.name, f, natural)
		if f >= natural {
			t.Errorf("%s did not reduce fill: %d >= %d", tc.name, f, natural)
		}
	}
}

func TestNDSeparatorQuality(t *testing.T) {
	// On a k×k grid, ND fill should beat RCM fill for large enough k.
	a := grid2D(24, 24)
	g := NewGraph(a)
	nd := fillIn(a.SymPerm(NestedDissection(g, 16)))
	rcm := fillIn(a.SymPerm(RCM(g)))
	t.Logf("ND fill %d, RCM fill %d", nd, rcm)
	if nd >= rcm {
		t.Errorf("nested dissection fill %d should beat RCM %d on a mesh", nd, rcm)
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	// On a path graph, pseudo-peripheral from any start must be an end.
	n := 17
	tr := sparse.NewTriplet(n, n, 2*n)
	for i := 0; i < n-1; i++ {
		tr.Add(i, i+1, 1)
		tr.Add(i+1, i, 1)
	}
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	g := NewGraph(tr.Compile())
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	root, h := g.PseudoPeripheral(8, mask, level, nil)
	if root != 0 && root != n-1 {
		t.Errorf("pseudo-peripheral of a path = %d, want an endpoint", root)
	}
	if h != n {
		t.Errorf("height %d, want %d", h, n)
	}
	for i := range level {
		if level[i] != -1 {
			t.Errorf("level[%d] not reset", i)
		}
	}
}

func TestOrderingsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := randomSymmetric(rng, n, 0.15)
		g := NewGraph(a)
		return sparse.IsPerm(RCM(g)) &&
			sparse.IsPerm(NestedDissection(g, 1+rng.Intn(8))) &&
			sparse.IsPerm(MinimumDegree(g)) &&
			sparse.IsPerm(AMD(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAMDFillNearExactMinimumDegree(t *testing.T) {
	// AMD's approximate external degrees must not cost much fill over
	// exact minimum degree, and must clearly beat RCM on a mesh.
	a := grid2D(20, 20)
	g := NewGraph(a)
	amd := fillIn(a.SymPerm(AMD(g)))
	md := fillIn(a.SymPerm(MinimumDegree(g)))
	rcm := fillIn(a.SymPerm(RCM(g)))
	t.Logf("AMD fill %d, MD %d, RCM %d", amd, md, rcm)
	if float64(amd) > 1.15*float64(md) {
		t.Errorf("AMD fill %d more than 15%% above exact MD %d", amd, md)
	}
	if amd >= rcm {
		t.Errorf("AMD fill %d should beat RCM %d on a mesh", amd, rcm)
	}
}

func TestAMDEliminatesLeavesFirst(t *testing.T) {
	// Star graph: AMD, like MD, must keep the hub until the end.
	n := 9
	tr := sparse.NewTriplet(n, n, 2*n)
	for i := 1; i < n; i++ {
		tr.Add(0, i, 1)
		tr.Add(i, 0, 1)
	}
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	p := AMD(NewGraph(tr.Compile()))
	for k := 0; k < n-2; k++ {
		if p[k] == 0 {
			t.Errorf("AMD on a star eliminated hub at position %d, perm %v", k, p)
		}
	}
}

func TestMinimumDegreeEliminatesLeavesFirst(t *testing.T) {
	// Star graph: center has degree n-1, leaves degree 1. MD must place
	// the center last.
	n := 9
	tr := sparse.NewTriplet(n, n, 2*n)
	for i := 1; i < n; i++ {
		tr.Add(0, i, 1)
		tr.Add(i, 0, 1)
	}
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
	}
	g := NewGraph(tr.Compile())
	p := MinimumDegree(g)
	// The hub has degree n-1 while any leaf has degree 1, so the hub
	// cannot be eliminated until at most one leaf remains (after which
	// hub and leaf tie at degree 1).
	for k := 0; k < n-2; k++ {
		if p[k] == 0 {
			t.Errorf("MD on a star eliminated hub at position %d, perm %v", k, p)
		}
	}
}
