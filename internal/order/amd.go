package order

import "opera/internal/obs"

// AMD computes an approximate-minimum-degree ordering in the
// Amestoy–Davis–Duff style: the quotient-graph element model of
// MinimumDegree, but instead of recomputing exact degrees after each
// elimination it maintains the external-degree upper bound
//
//	d̄(v) = min(n−k, d̄(v)+|Lp|−1, |Av|+|Lp\{v}|+Σ_e |Le\Lp|)
//
// where Lp is the pivot's boundary, Av the remaining direct neighbors
// of v and the sum runs over v's other adjacent elements. The |Le\Lp|
// terms for every element touching Lp are computed in one sweep over
// Lp (the w-array trick), so each elimination costs O(|Lp| + Σ|Ev|)
// instead of a reach() per affected vertex. Elements with Le ⊆ Lp are
// absorbed aggressively. Ties break to the lowest vertex index — the
// same deterministic rule as MinimumDegree.
func AMD(g *Graph) []int {
	defer observe(func(m *orderMetrics) *obs.Histogram { return m.amd })()
	n := g.N
	varAdj := make([][]int, n)  // remaining direct variable neighbors
	elemAdj := make([][]int, n) // adjacent element ids
	for v := 0; v < n; v++ {
		varAdj[v] = append([]int(nil), g.Neighbors(v)...)
	}
	elems := make([][]int, 0, n) // element id -> boundary (live subset lazily compacted)
	elemAlive := make([]bool, 0, n)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}

	deg := make([]int, n) // current degree bound d̄(v)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	buckets := newDegBuckets(deg, n)

	mark := make([]int, n) // Lp membership stamp
	for i := range mark {
		mark[i] = -1
	}
	stamp := 0
	wStamp := make([]int, 0, n) // per-element w-array stamp
	wVal := make([]int, 0, n)   // per-element |Le \ Lp| accumulator

	// compactElem drops dead vertices from an element boundary and
	// returns its live size.
	compactElem := func(e int) int {
		bnd := elems[e][:0]
		for _, v := range elems[e] {
			if alive[v] {
				bnd = append(bnd, v)
			}
		}
		elems[e] = bnd
		return len(bnd)
	}

	lp := make([]int, 0, n)
	perm := make([]int, 0, n)
	for k := 0; k < n; k++ {
		p := buckets.PopMin()
		// Build Lp = (Av ∪ ⋃ Le) \ {p}: the boundary of the new element.
		stamp++
		mark[p] = stamp
		lp = lp[:0]
		liveV := varAdj[p][:0]
		for _, v := range varAdj[p] {
			if alive[v] {
				liveV = append(liveV, v)
				if mark[v] != stamp {
					mark[v] = stamp
					lp = append(lp, v)
				}
			}
		}
		varAdj[p] = liveV
		liveE := elemAdj[p][:0]
		for _, e := range elemAdj[p] {
			if !elemAlive[e] {
				continue
			}
			liveE = append(liveE, e)
			for _, v := range elems[e] {
				if alive[v] && mark[v] != stamp {
					mark[v] = stamp
					lp = append(lp, v)
				}
			}
		}
		elemAdj[p] = liveE
		perm = append(perm, p)
		alive[p] = false
		// The pivot's elements are absorbed into the new one.
		for _, e := range elemAdj[p] {
			elemAlive[e] = false
		}
		ep := len(elems)
		elems = append(elems, append([]int(nil), lp...))
		elemAlive = append(elemAlive, true)
		wStamp = append(wStamp, 0)
		wVal = append(wVal, 0)

		// w-array sweep: for every live element e adjacent to some
		// v ∈ Lp, w[e] ends as |Le \ Lp| (first touch seeds the live
		// size, each Lp member found in Le subtracts one).
		for _, v := range lp {
			for _, e := range elemAdj[v] {
				if !elemAlive[e] {
					continue
				}
				if wStamp[e] != stamp {
					wStamp[e] = stamp
					wVal[e] = compactElem(e)
				}
				wVal[e]--
			}
		}

		// Degree update for every boundary vertex.
		for _, v := range lp {
			// Av loses dead vertices and Lp members (those adjacencies are
			// now represented by the new element).
			liveV := varAdj[v][:0]
			for _, u := range varAdj[v] {
				if alive[u] && mark[u] != stamp {
					liveV = append(liveV, u)
				}
			}
			varAdj[v] = liveV
			// Ev keeps live elements; |Le\Lp| == 0 means Le ⊆ Lp — the
			// element is indistinguishable from the new one, so absorb it
			// (aggressive absorption).
			liveE := elemAdj[v][:0]
			elemSum := 0
			for _, e := range elemAdj[v] {
				if !elemAlive[e] {
					continue
				}
				if wStamp[e] == stamp && wVal[e] == 0 {
					elemAlive[e] = false
					continue
				}
				liveE = append(liveE, e)
				if wStamp[e] == stamp {
					elemSum += wVal[e]
				} else {
					elemSum += compactElem(e)
				}
			}
			liveE = append(liveE, ep)
			elemAdj[v] = liveE
			d := len(varAdj[v]) + (len(lp) - 1) + elemSum
			if b := deg[v] + len(lp) - 1; b < d {
				d = b
			}
			if b := n - k - 1; b < d {
				d = b
			}
			if d < 0 {
				d = 0
			}
			deg[v] = d
			buckets.Update(v, d)
		}
	}
	return perm
}
