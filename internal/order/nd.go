package order

import "opera/internal/obs"

// NestedDissection computes a George–Liu style automatic nested
// dissection ordering. Each recursion finds a small vertex separator
// from the middle level of a level structure rooted at a
// pseudo-peripheral vertex, numbers the separator last, and recurses on
// the remaining pieces. Components at or below leafSize vertices are
// numbered with (non-reversed) Cuthill–McKee, which is a good local
// order for elimination. The default leaf size is used when leafSize
// <= 0.
func NestedDissection(g *Graph, leafSize int) []int {
	defer observe(func(m *orderMetrics) *obs.Histogram { return m.nd })()
	if leafSize <= 0 {
		leafSize = 32
	}
	n := g.N
	perm := make([]int, n)
	next := n // positions are assigned from the back
	inSet := make([]bool, n)
	for i := range inSet {
		inSet[i] = true
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	scratch := make([]int, 0, n)

	assign := func(v int) {
		next--
		perm[next] = v
		inSet[v] = false
	}

	// Iterative work stack of component representatives. A component is
	// identified lazily: any vertex still in inSet seeds a BFS bounded
	// to inSet.
	var stack []int
	for v := 0; v < n; v++ {
		stack = append(stack, v)
	}
	// Process in LIFO order; skip vertices already numbered.
	for len(stack) > 0 {
		seed := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !inSet[seed] {
			continue
		}
		root, _ := g.PseudoPeripheral(seed, inSet, level, scratch)
		order, lp := g.levelStructure(root, inSet, level, scratch)
		nlev := len(lp) - 1
		if len(order) <= leafSize || nlev < 3 {
			// Number the whole component in reverse BFS order (local
			// Cuthill–McKee effect since positions fill backwards).
			for _, v := range order {
				level[v] = -1
			}
			for _, v := range order {
				assign(v)
			}
			continue
		}
		// Middle level; refine to vertices adjacent to the next level.
		mid := nlev / 2
		sep := make([]int, 0, lp[mid+1]-lp[mid])
		for _, v := range order[lp[mid]:lp[mid+1]] {
			adjNext := false
			for _, w := range g.Neighbors(v) {
				if inSet[w] && level[w] == mid+1 {
					adjNext = true
					break
				}
			}
			if adjNext {
				sep = append(sep, v)
			}
		}
		if len(sep) == 0 {
			// Degenerate (disconnected middle); fall back to full level.
			sep = append(sep, order[lp[mid]:lp[mid+1]]...)
		}
		for _, v := range order {
			level[v] = -1
		}
		for _, v := range sep {
			assign(v)
		}
		// Re-seed remaining vertices of this component.
		for _, v := range order {
			if inSet[v] {
				stack = append(stack, v)
			}
		}
	}
	return perm
}
