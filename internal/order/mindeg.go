package order

import "opera/internal/obs"

// MinimumDegree computes a minimum-degree ordering using the quotient
// graph (element) model: eliminating a vertex creates an element whose
// boundary is the union of the vertex's remaining neighbors and the
// boundaries of its adjacent elements; adjacent elements are absorbed.
// Degrees are recomputed exactly for the affected vertices. This is the
// classical (non-approximate) algorithm — O(n·k) per elimination where k
// is the clique size — adequate for the moderate systems where a
// minimum-degree order is preferable to nested dissection.
func MinimumDegree(g *Graph) []int {
	defer observe(func(m *orderMetrics) *obs.Histogram { return m.md })()
	n := g.N
	// Variable adjacency as mutable sets (slices, lazily cleaned).
	varAdj := make([][]int, n)  // adjacent *variables* (uneliminated)
	elemAdj := make([][]int, n) // adjacent element ids
	for v := 0; v < n; v++ {
		varAdj[v] = append([]int(nil), g.Neighbors(v)...)
	}
	elems := make([][]int, 0, n) // element id -> boundary variables
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	elemAlive := make([]bool, 0, n)

	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	stamp := 0

	// reach computes the current adjacency set (variables reachable
	// through direct edges or shared elements) of v into out.
	reach := func(v int, out []int) []int {
		stamp++
		mark[v] = stamp
		out = out[:0]
		live := varAdj[v][:0]
		for _, w := range varAdj[v] {
			if alive[w] {
				live = append(live, w)
				if mark[w] != stamp {
					mark[w] = stamp
					out = append(out, w)
				}
			}
		}
		varAdj[v] = live
		liveE := elemAdj[v][:0]
		for _, e := range elemAdj[v] {
			if !elemAlive[e] {
				continue
			}
			liveE = append(liveE, e)
			for _, w := range elems[e] {
				if alive[w] && mark[w] != stamp {
					mark[w] = stamp
					out = append(out, w)
				}
			}
		}
		elemAdj[v] = liveE
		return out
	}

	deg := make([]int, n)
	scratch := make([]int, 0, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	// Candidate structure with the deterministic tie-break: among the
	// minimum-degree vertices, the lowest index is eliminated first.
	// (The previous LIFO bucket pop was deterministic but tied to
	// insertion history, which is much harder to reason about — and to
	// keep aligned with AMD, which promises the same rule.)
	buckets := newDegBuckets(deg, n)

	perm := make([]int, 0, n)
	for len(perm) < n {
		v := buckets.PopMin()
		// Eliminate v.
		bnd := reach(v, scratch)
		scratch = bnd
		perm = append(perm, v)
		alive[v] = false
		// Absorb v's elements into a new element.
		for _, e := range elemAdj[v] {
			elemAlive[e] = false
		}
		eid := len(elems)
		elems = append(elems, append([]int(nil), bnd...))
		elemAlive = append(elemAlive, true)
		// Iterate over the stable element copy: reach() below
		// reuses scratch, which bnd aliases.
		for _, w := range elems[eid] {
			elemAdj[w] = append(elemAdj[w], eid)
			nd := len(reach(w, scratch[:0]))
			deg[w] = nd
			buckets.Update(w, nd)
		}
	}
	return perm
}
