package order

// degBuckets is the degree-indexed candidate structure shared by the
// minimum-degree orderings. Entries are lazily invalidated (a vertex
// whose recorded degree no longer matches is skipped at pop time), and
// PopMin always returns the lowest-index vertex among the minimum
// current degree — the deterministic tie-break rule both MinimumDegree
// and AMD promise.
type degBuckets struct {
	b   [][]int
	cur []int // recorded degree per vertex; -1 once popped
	min int
}

func newDegBuckets(deg []int, maxDeg int) *degBuckets {
	d := &degBuckets{
		b:   make([][]int, maxDeg+1),
		cur: make([]int, len(deg)),
	}
	for v, dv := range deg {
		d.cur[v] = dv
		d.b[dv] = append(d.b[dv], v)
	}
	return d
}

// Update moves v to degree nd (stale entries are dropped lazily).
func (d *degBuckets) Update(v, nd int) {
	d.cur[v] = nd
	d.b[nd] = append(d.b[nd], v)
	if nd < d.min {
		d.min = nd
	}
}

// Remove withdraws v from consideration (its entries go stale).
func (d *degBuckets) Remove(v int) { d.cur[v] = -1 }

// PopMin extracts the lowest-index vertex of minimum degree, or -1
// when no live vertex remains. Each call compacts the bucket it scans,
// so stale entries are visited at most once per degree value.
func (d *degBuckets) PopMin() int {
	for d.min < len(d.b) {
		bucket := d.b[d.min]
		live := bucket[:0]
		best := -1
		for _, v := range bucket {
			if d.cur[v] != d.min {
				continue // stale
			}
			live = append(live, v)
			if best < 0 || v < best {
				best = v
			}
		}
		if best < 0 {
			d.b[d.min] = live
			d.min++
			continue
		}
		// Drop the winner from the compacted bucket.
		for i, v := range live {
			if v == best {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				break
			}
		}
		d.b[d.min] = live
		d.cur[best] = -1
		return best
	}
	return -1
}
