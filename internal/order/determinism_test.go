package order

import (
	"math/rand"
	"testing"

	"opera/internal/sparse"
)

// TestRCMGoldenPermutation pins the exact RCM output on a fixed mesh.
// RCM's neighbor visit order used an unstable sort keyed on degree
// alone, so equal-degree neighbors could land in either order
// depending on sort.Slice internals; the comparator now breaks degree
// ties by vertex index, and this golden test keeps it that way.
func TestRCMGoldenPermutation(t *testing.T) {
	golden := map[string][]int{
		"5x4": {19, 18, 15, 17, 14, 11, 16, 13, 10, 7, 12, 9, 6, 3, 8, 5, 2, 4, 1, 0},
		"4x4": {15, 14, 11, 13, 10, 7, 12, 9, 6, 3, 8, 5, 2, 4, 1, 0},
	}
	for name, want := range golden {
		var a *sparse.Matrix
		switch name {
		case "5x4":
			a = grid2D(5, 4)
		case "4x4":
			a = grid2D(4, 4)
		}
		got := RCM(NewGraph(a))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("RCM(%s) drifted from the golden permutation at %d:\n got  %v\n want %v",
					name, i, got, want)
			}
		}
	}
}

// TestOrderingDeterminismAcrossRuns hammers every ordering repeatedly
// on meshes and random graphs and requires byte-identical output each
// time. The CI determinism matrix runs this under GOMAXPROCS 1 and 4:
// the orderings are sequential algorithms, so any divergence would
// expose hidden map iteration or unstable sorting, not parallelism.
func TestOrderingDeterminismAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mats := []*sparse.Matrix{
		grid2D(9, 13),
		grid2D(1, 25),
		randomSymmetric(rng, 70, 0.07),
		randomSymmetric(rng, 45, 0.3),
		sparse.Identity(8),
	}
	algs := []struct {
		name string
		run  func(*Graph) []int
	}{
		{"RCM", RCM},
		{"MD", MinimumDegree},
		{"AMD", AMD},
		{"ND", func(g *Graph) []int { return NestedDissection(g, 6) }},
	}
	for mi, a := range mats {
		for _, alg := range algs {
			ref := alg.run(NewGraph(a))
			checkPerm(t, alg.name, ref, a.Rows)
			for rep := 0; rep < 5; rep++ {
				got := alg.run(NewGraph(a))
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s on mat %d: run %d diverged at %d:\n got  %v\n want %v",
							alg.name, mi, rep, i, got, ref)
					}
				}
			}
		}
	}
}

// TestMinimumDegreeLowestIndexTieBreak: on a fully symmetric graph
// (cycle: every vertex degree 2) the first eliminated vertex must be
// the lowest-indexed one — the documented deterministic tie-break.
func TestMinimumDegreeLowestIndexTieBreak(t *testing.T) {
	n := 12
	tr := sparse.NewTriplet(n, n, 3*n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		tr.Add(i, j, 1)
		tr.Add(j, i, 1)
		tr.Add(i, i, 1)
	}
	a := tr.Compile()
	for _, alg := range []struct {
		name string
		run  func(*Graph) []int
	}{
		{"MD", MinimumDegree},
		{"AMD", AMD},
	} {
		p := alg.run(NewGraph(a))
		if p[0] != 0 {
			t.Errorf("%s on a cycle eliminated %d first, want vertex 0 (lowest index wins ties)", alg.name, p[0])
		}
	}
}
