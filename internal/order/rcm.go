package order

import (
	"sort"

	"opera/internal/obs"
)

// Natural returns the identity permutation of length n.
func Natural(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// RCM computes the reverse Cuthill–McKee ordering of the graph of a
// square matrix. It processes every connected component, rooting each at
// a pseudo-peripheral vertex, and returns the permutation p such that
// row/column p[k] of the original matrix becomes row/column k of the
// permuted matrix.
func RCM(g *Graph) []int {
	defer observe(func(m *orderMetrics) *obs.Histogram { return m.rcm })()
	n := g.N
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	scratch := make([]int, 0, n)
	// Neighbor scratch reused across vertices; sorted by degree.
	var nbrs []int
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		root, _ := g.PseudoPeripheral(s, mask, level, scratch)
		// Cuthill–McKee BFS from root, neighbors in increasing degree.
		start := len(perm)
		perm = append(perm, root)
		visited[root] = true
		for head := start; head < len(perm); head++ {
			v := perm[head]
			nbrs = nbrs[:0]
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			// Ties broken by vertex index: sort.Slice is unstable, so
			// keying on degree alone would let equal-degree neighbors land
			// in an order that depends on the sort internals (and thus the
			// Go release), not on the graph.
			sort.Slice(nbrs, func(a, b int) bool {
				da, db := g.Degree(nbrs[a]), g.Degree(nbrs[b])
				if da != db {
					return da < db
				}
				return nbrs[a] < nbrs[b]
			})
			perm = append(perm, nbrs...)
		}
		// Reverse this component's segment.
		for i, j := start, len(perm)-1; i < j; i, j = i+1, j-1 {
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}
