// Package order provides fill-reducing orderings for sparse symmetric
// factorization: reverse Cuthill–McKee (bandwidth reduction), George–Liu
// automatic nested dissection (the workhorse for mesh-structured power
// grids), and a minimum-degree ordering. All orderings operate on the
// undirected adjacency graph of A + Aᵀ with the diagonal removed and
// return a permutation p in "new = old[p[new]]" convention, suitable for
// sparse.Matrix.SymPerm.
package order

import "opera/internal/sparse"

// Graph is a compact undirected adjacency structure.
type Graph struct {
	N   int
	Ptr []int // length N+1
	Adj []int // concatenated neighbor lists, no self loops
}

// NewGraph builds the adjacency graph of A + Aᵀ (pattern only, diagonal
// dropped). A need not be symmetric.
func NewGraph(a *sparse.Matrix) *Graph {
	if a.Rows != a.Cols {
		panic("order: NewGraph requires a square matrix")
	}
	n := a.Rows
	// Count degree contributions from both A and Aᵀ; duplicates are
	// removed with a marker pass.
	deg := make([]int, n)
	for j := 0; j < n; j++ {
		for p := a.Colp[j]; p < a.Colp[j+1]; p++ {
			i := a.Rowi[p]
			if i == j {
				continue
			}
			deg[i]++
			deg[j]++
		}
	}
	ptr := make([]int, n+1)
	for v := 0; v < n; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int, ptr[n])
	next := make([]int, n)
	copy(next, ptr[:n])
	for j := 0; j < n; j++ {
		for p := a.Colp[j]; p < a.Colp[j+1]; p++ {
			i := a.Rowi[p]
			if i == j {
				continue
			}
			adj[next[i]] = j
			next[i]++
			adj[next[j]] = i
			next[j]++
		}
	}
	// Deduplicate neighbor lists with a marker array.
	mark := make([]int, n)
	for v := range mark {
		mark[v] = -1
	}
	nz := 0
	newPtr := make([]int, n+1)
	for v := 0; v < n; v++ {
		newPtr[v] = nz
		for p := ptr[v]; p < ptr[v+1]; p++ {
			w := adj[p]
			if mark[w] != v {
				mark[w] = v
				adj[nz] = w
				nz++
			}
		}
	}
	newPtr[n] = nz
	return &Graph{N: n, Ptr: newPtr, Adj: adj[:nz]}
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the neighbor list of v (shared storage; do not
// modify).
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// levelStructure performs a BFS from root restricted to vertices where
// mask[v] holds, filling level numbers into level (which must be
// preset to -1 for vertices in the component) and appending the visit
// order to out. It returns the visited vertices grouped contiguously in
// out along with the index where each level begins.
func (g *Graph) levelStructure(root int, mask []bool, level []int, queue []int) (order []int, levelPtr []int) {
	queue = queue[:0]
	queue = append(queue, root)
	level[root] = 0
	levelPtr = append(levelPtr, 0)
	head := 0
	cur := 0
	for head < len(queue) {
		v := queue[head]
		if level[v] > cur {
			levelPtr = append(levelPtr, head)
			cur = level[v]
		}
		head++
		for _, w := range g.Neighbors(v) {
			if mask[w] && level[w] < 0 {
				level[w] = level[v] + 1
				queue = append(queue, w)
			}
		}
	}
	levelPtr = append(levelPtr, len(queue))
	return queue, levelPtr
}

// PseudoPeripheral finds a pseudo-peripheral vertex of the component of
// start (restricted to mask) using the George–Liu iteration: repeatedly
// root a level structure and move to a minimum-degree vertex in the last
// level until the eccentricity stops growing. It returns the vertex and
// the number of levels of its rooted level structure.
func (g *Graph) PseudoPeripheral(start int, mask []bool, level []int, scratch []int) (root, height int) {
	root = start
	resetLevels := func(order []int) {
		for _, v := range order {
			level[v] = -1
		}
	}
	order, lp := g.levelStructure(root, mask, level, scratch)
	height = len(lp) - 1
	for {
		// Minimum-degree vertex in the deepest level.
		last := order[lp[len(lp)-2]:lp[len(lp)-1]]
		best := last[0]
		for _, v := range last[1:] {
			if g.Degree(v) < g.Degree(best) {
				best = v
			}
		}
		resetLevels(order)
		order2, lp2 := g.levelStructure(best, mask, level, scratch)
		h2 := len(lp2) - 1
		if h2 <= height {
			resetLevels(order2)
			// Re-establish levels for the chosen root so callers can
			// reuse them if desired; we leave them cleared for safety.
			return root, height
		}
		root, height = best, h2
		order, lp = order2, lp2
	}
}
