package order

import (
	"sync/atomic"
	"time"

	"opera/internal/obs"
)

// orderMetrics times the fill-reducing ordering algorithms. Installed
// atomically; absent by default, so uninstrumented runs pay one
// pointer load per ordering call (orderings run once per analysis, not
// per step).
type orderMetrics struct {
	nd, rcm, md, amd *obs.Histogram
}

var metrics atomic.Pointer[orderMetrics]

// SetMetrics installs ordering-duration histograms (order.nd_ms,
// order.rcm_ms, order.md_ms, order.amd_ms) on the registry; nil
// uninstalls.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&orderMetrics{
		nd:  reg.Histogram("order.nd_ms", obs.MSBuckets),
		rcm: reg.Histogram("order.rcm_ms", obs.MSBuckets),
		md:  reg.Histogram("order.md_ms", obs.MSBuckets),
		amd: reg.Histogram("order.amd_ms", obs.MSBuckets),
	})
}

// observe times one ordering via the selector (nil-safe end to end).
func observe(pick func(*orderMetrics) *obs.Histogram) func() {
	m := metrics.Load()
	if m == nil {
		return func() {}
	}
	h := pick(m)
	start := time.Now()
	return func() { h.ObserveSince(start) }
}
