package mna

import (
	"fmt"
	"math"

	"opera/internal/netlist"
	"opera/internal/randvar"
	"opera/internal/sparse"
)

// SpatialSpec describes *intra-die* (within-die) process variation — the
// case the paper's §3 defers: "We consider only the inter-die variations
// in this work… [intra-die parameters] vary randomly and spatially
// across a die". The die is partitioned into regions (the netlist's
// element Region tags); each region carries its own geometry and Leff
// variables, correlated across regions by an exponential spatial kernel
// exp(−d/CorrLength). Principal component analysis turns the correlated
// region field into a small number of independent chaos dimensions —
// precisely the discretized Karhunen–Loève construction the
// stochastic-finite-element literature the paper builds on uses for
// spatial processes.
type SpatialSpec struct {
	// RegionsPerAxis partitions the die into R×R regions; element
	// Region tags must lie in [0, R²).
	RegionsPerAxis int
	// KG is the per-region relative conductance standard deviation
	// (the ξG magnitude of a single region).
	KG float64
	// KCL and KIL are the per-region Leff sensitivities for gate
	// capacitance and drain currents.
	KCL, KIL float64
	// CorrLength is the spatial correlation length in units of region
	// pitch; 0 means independent regions, large values approach the
	// paper's fully correlated inter-die case.
	CorrLength float64
	// EnergyCutoff truncates the principal components once their
	// cumulative eigenvalue share reaches this fraction (default 0.99);
	// MaxDims caps the count outright (0 = no cap).
	EnergyCutoff float64
	MaxDims      int
}

// Validate checks the spec.
func (s SpatialSpec) Validate() error {
	if s.RegionsPerAxis < 1 {
		return fmt.Errorf("mna: spatial spec needs >= 1 region per axis, got %d", s.RegionsPerAxis)
	}
	if s.KG < 0 || s.KCL < 0 || s.KIL < 0 {
		return fmt.Errorf("mna: negative spatial sensitivities")
	}
	if s.CorrLength < 0 {
		return fmt.Errorf("mna: negative correlation length %g", s.CorrLength)
	}
	if s.EnergyCutoff < 0 || s.EnergyCutoff > 1 {
		return fmt.Errorf("mna: energy cutoff %g outside [0,1]", s.EnergyCutoff)
	}
	return nil
}

// SpatialSystem is the stamped intra-die system: independent principal
// dimensions zG (geometry field) followed by zL (Leff field).
type SpatialSystem struct {
	N   int
	Ga  *sparse.Matrix
	Ca  *sparse.Matrix
	VDD float64

	// DimsG + DimsL = Dims independent chaos dimensions.
	Dims, DimsG, DimsL int

	// GSens[k] = ∂G/∂z_k (nil where zero); CSens likewise for C. The
	// geometry dims occupy k < DimsG, the Leff dims k >= DimsG.
	GSens []*sparse.Matrix
	CSens []*sparse.Matrix

	// iSens[k][region] scales each source's current sensitivity.
	iSens [][]float64

	netlist *netlist.Netlist
	padBase []float64
	// padSens[k] = ∂(pad injection)/∂z_k (geometry dims only).
	padSens [][]float64
	regions int
}

// BuildSpatial stamps the netlist under the intra-die spatial model.
// Every on-die resistor and gate capacitor must carry a Region tag in
// range (the generator's grids do); pads attach to the region of their
// node via the resistive stamps and are treated as region-free (package
// metal), except that their on-die effective conductance follows the
// mean field, i.e. remains deterministic here for simplicity.
func BuildSpatial(nl *netlist.Netlist, spec SpatialSpec) (*SpatialSystem, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	nreg := spec.RegionsPerAxis * spec.RegionsPerAxis
	n := nl.NumNodes
	// Nominal matrices and per-region sensitivity stamps.
	ga := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	ca := sparse.NewTriplet(n, n, 4*len(nl.Caps))
	gReg := make([]*sparse.Triplet, nreg)
	cReg := make([]*sparse.Triplet, nreg)
	for r := 0; r < nreg; r++ {
		gReg[r] = sparse.NewTriplet(n, n, 16)
		cReg[r] = sparse.NewTriplet(n, n, 16)
	}
	stamp := func(t *sparse.Triplet, a, b int, v float64) {
		if a != netlist.Ground {
			t.Add(a, a, v)
		}
		if b != netlist.Ground {
			t.Add(b, b, v)
		}
		if a != netlist.Ground && b != netlist.Ground {
			t.Add(a, b, -v)
			t.Add(b, a, -v)
		}
	}
	for _, r := range nl.Resistors {
		g := 1 / r.Ohms
		stamp(ga, r.A, r.B, g)
		if r.OnDie {
			if r.Region < 0 || r.Region >= nreg {
				return nil, fmt.Errorf("mna: resistor %q region %d outside [0,%d)", r.Name, r.Region, nreg)
			}
			stamp(gReg[r.Region], r.A, r.B, g)
		}
	}
	for _, c := range nl.Caps {
		stamp(ca, c.A, c.B, c.Farads)
		if c.GateFrac > 0 {
			if c.Region < 0 || c.Region >= nreg {
				return nil, fmt.Errorf("mna: capacitor %q region %d outside [0,%d)", c.Name, c.Region, nreg)
			}
			stamp(cReg[c.Region], c.A, c.B, c.Farads*c.GateFrac)
		}
	}
	padBase := make([]float64, n)
	vdd := 0.0
	for _, p := range nl.Pads {
		g := 1 / p.Rpin
		ga.Add(p.Node, p.Node, g)
		padBase[p.Node] += g * p.VDD
		if p.VDD > vdd {
			vdd = p.VDD
		}
	}
	// Spatial covariance over the region grid and its PCA.
	cov := spatialCovariance(spec.RegionsPerAxis, spec.CorrLength)
	pca, err := randvar.NewPCA(make([]float64, nreg), cov)
	if err != nil {
		return nil, fmt.Errorf("mna: spatial covariance: %w", err)
	}
	cut := spec.EnergyCutoff
	if cut == 0 {
		cut = 0.99
	}
	dims := truncateDims(pca.Lambda, cut, spec.MaxDims)
	// Per-principal-dimension weights w_k[r] = √λ_k·V[k][r].
	weight := func(k, r int) float64 {
		return math.Sqrt(pca.Lambda[k]) * pca.Vecs[k][r]
	}
	gRegM := make([]*sparse.Matrix, nreg)
	cRegM := make([]*sparse.Matrix, nreg)
	for r := 0; r < nreg; r++ {
		gRegM[r] = gReg[r].Compile()
		cRegM[r] = cReg[r].Compile()
	}
	sys := &SpatialSystem{
		N: n, Ga: ga.Compile(), Ca: ca.Compile(), VDD: vdd,
		DimsG: dims, DimsL: dims, Dims: 2 * dims,
		netlist: nl, padBase: padBase, regions: nreg,
	}
	sys.GSens = make([]*sparse.Matrix, sys.Dims)
	sys.CSens = make([]*sparse.Matrix, sys.Dims)
	sys.iSens = make([][]float64, sys.Dims)
	sys.padSens = make([][]float64, sys.Dims)
	for k := 0; k < dims; k++ {
		// Geometry dim k: conductance field.
		acc := sparse.NewMatrix(n, n)
		for r := 0; r < nreg; r++ {
			w := spec.KG * weight(k, r)
			if w != 0 && gRegM[r].NNZ() > 0 {
				acc = sparse.Add(1, acc, w, gRegM[r])
			}
		}
		sys.GSens[k] = acc
		// Leff dim (offset by DimsG): gate capacitance + currents.
		accC := sparse.NewMatrix(n, n)
		for r := 0; r < nreg; r++ {
			w := spec.KCL * weight(k, r)
			if w != 0 && cRegM[r].NNZ() > 0 {
				accC = sparse.Add(1, accC, w, cRegM[r])
			}
		}
		sys.CSens[dims+k] = accC
		is := make([]float64, nreg)
		for r := 0; r < nreg; r++ {
			is[r] = spec.KIL * weight(k, r)
		}
		sys.iSens[dims+k] = is
	}
	return sys, nil
}

// spatialCovariance builds the unit-variance exponential kernel over an
// R×R region grid: Cov[r][s] = exp(−dist(r,s)/L); L = 0 is the identity.
func spatialCovariance(rPerAxis int, corrLength float64) [][]float64 {
	nreg := rPerAxis * rPerAxis
	cov := make([][]float64, nreg)
	for i := range cov {
		cov[i] = make([]float64, nreg)
	}
	for a := 0; a < nreg; a++ {
		ax, ay := a%rPerAxis, a/rPerAxis
		for b := 0; b < nreg; b++ {
			bx, by := b%rPerAxis, b/rPerAxis
			d := math.Hypot(float64(ax-bx), float64(ay-by))
			switch {
			case a == b:
				cov[a][b] = 1
			case corrLength <= 0:
				cov[a][b] = 0
			default:
				cov[a][b] = math.Exp(-d / corrLength)
			}
		}
	}
	return cov
}

// truncateDims returns the number of leading eigenvalues reaching the
// energy cutoff, subject to the cap.
func truncateDims(lambda []float64, cutoff float64, maxDims int) int {
	total := 0.0
	for _, l := range lambda {
		if l > 0 {
			total += l
		}
	}
	if total == 0 {
		return 1
	}
	acc := 0.0
	dims := 0
	for _, l := range lambda {
		if l <= 0 {
			break
		}
		acc += l
		dims++
		if acc/total >= cutoff {
			break
		}
	}
	if maxDims > 0 && dims > maxDims {
		dims = maxDims
	}
	if dims == 0 {
		dims = 1
	}
	return dims
}

// RHS fills ua and the per-dimension excitation sensitivities (length
// Dims; entries may be nil to skip).
func (s *SpatialSystem) RHS(t float64, ua []float64, sens [][]float64) {
	if ua != nil {
		copy(ua, s.padBase)
	}
	for k := range sens {
		if sens[k] != nil {
			for i := range sens[k] {
				sens[k][i] = 0
			}
		}
	}
	for _, src := range s.netlist.Sources {
		iv := src.Wave.At(t)
		if ua != nil {
			ua[src.A] -= iv
		}
		if src.LeffSens == 0 || src.Region < 0 {
			continue
		}
		for k := range sens {
			if sens[k] == nil || s.iSens[k] == nil {
				continue
			}
			sens[k][src.A] -= iv * src.LeffSens * s.iSens[k][src.Region]
		}
	}
}

// Realize returns deterministic matrices and RHS for one draw of the
// principal variables z (length Dims).
func (s *SpatialSystem) Realize(z []float64) (g, c *sparse.Matrix, rhs func(t float64, u []float64)) {
	if len(z) != s.Dims {
		panic(fmt.Sprintf("mna: Realize needs %d variables, got %d", s.Dims, len(z)))
	}
	g = s.Ga
	for k, zk := range z {
		if s.GSens[k] != nil && s.GSens[k].NNZ() > 0 && zk != 0 {
			g = sparse.Add(1, g, zk, s.GSens[k])
		}
	}
	c = s.Ca
	for k, zk := range z {
		if s.CSens[k] != nil && s.CSens[k].NNZ() > 0 && zk != 0 {
			c = sparse.Add(1, c, zk, s.CSens[k])
		}
	}
	if g == s.Ga {
		g = s.Ga.Clone()
	}
	if c == s.Ca {
		c = s.Ca.Clone()
	}
	ua := make([]float64, s.N)
	sens := make([][]float64, s.Dims)
	for k := range sens {
		sens[k] = make([]float64, s.N)
	}
	rhs = func(t float64, u []float64) {
		s.RHS(t, ua, sens)
		for i := range u {
			u[i] = ua[i]
			for k, zk := range z {
				u[i] += zk * sens[k][i]
			}
		}
	}
	return g, c, rhs
}
