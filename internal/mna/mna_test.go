package mna

import (
	"math"
	"testing"

	"opera/internal/factor"
	"opera/internal/netlist"
)

// twoNodeGrid: pad -> node0 -- R=1 -- node1, cap at node1, drain at
// node1.
func twoNodeGrid() *netlist.Netlist {
	return &netlist.Netlist{
		NumNodes: 2,
		Resistors: []netlist.Resistor{
			{Name: "m", A: 0, B: 1, Ohms: 1, OnDie: true},
		},
		Caps: []netlist.Capacitor{
			{Name: "l", A: 1, B: netlist.Ground, Farads: 1e-12, GateFrac: 0.4},
		},
		Sources: []netlist.CurrentSource{
			{Name: "b", A: 1, Wave: netlist.DC(0.01), LeffSens: 1, Region: -1},
		},
		Pads: []netlist.Pad{
			{Name: "p", Node: 0, VDD: 1.2, Rpin: 0.5, OnDie: true},
		},
	}
}

func TestBuildStamps(t *testing.T) {
	spec := VariationSpec{KG: 0.1, KCL: 0.05, KIL: 0.08}
	sys, err := Build(twoNodeGrid(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Ga: node0: 1/R + 1/Rpin = 1 + 2 = 3; node1: 1; off-diagonal -1.
	if got := sys.Ga.At(0, 0); math.Abs(got-3) > 1e-12 {
		t.Errorf("Ga[0][0] = %g, want 3", got)
	}
	if got := sys.Ga.At(1, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("Ga[1][1] = %g, want 1", got)
	}
	if got := sys.Ga.At(0, 1); math.Abs(got+1) > 1e-12 {
		t.Errorf("Ga[0][1] = %g, want -1", got)
	}
	// Gg = KG·(on-die conductance stamps) = 0.1·Ga here (all on-die).
	if got := sys.Gg.At(0, 0); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Gg[0][0] = %g, want 0.3", got)
	}
	// Ca: 1e-12 at node1; Cc = 0.4·0.05·1e-12.
	if got := sys.Ca.At(1, 1); math.Abs(got-1e-12) > 1e-24 {
		t.Errorf("Ca[1][1] = %g", got)
	}
	if got := sys.Cc.At(1, 1); math.Abs(got-0.4*0.05*1e-12) > 1e-26 {
		t.Errorf("Cc[1][1] = %g", got)
	}
	if sys.VDD != 1.2 {
		t.Errorf("VDD = %g", sys.VDD)
	}
}

func TestRHSDecomposition(t *testing.T) {
	spec := VariationSpec{KG: 0.1, KCL: 0.05, KIL: 0.08}
	sys, err := Build(twoNodeGrid(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ua := make([]float64, 2)
	ug := make([]float64, 2)
	uc := make([]float64, 2)
	sys.RHS(0, ua, ug, uc)
	// ua: pad injection 2·1.2 = 2.4 at node0; drain −0.01 at node1.
	if math.Abs(ua[0]-2.4) > 1e-12 || math.Abs(ua[1]+0.01) > 1e-12 {
		t.Errorf("ua = %v", ua)
	}
	// ug: pad sens = 2·1.2·0.1 at node0.
	if math.Abs(ug[0]-0.24) > 1e-12 || ug[1] != 0 {
		t.Errorf("ug = %v", ug)
	}
	// uc: −0.01·1·0.08 at node1.
	if uc[0] != 0 || math.Abs(uc[1]+0.0008) > 1e-15 {
		t.Errorf("uc = %v", uc)
	}
}

func TestRealizeConsistency(t *testing.T) {
	sys, err := Build(twoNodeGrid(), DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	xiG, xiL := 1.5, -0.7
	g, c, rhs := sys.Realize(xiG, xiL)
	// g = Ga + xiG·Gg entrywise.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := sys.Ga.At(i, j) + xiG*sys.Gg.At(i, j)
			if got := g.At(i, j); math.Abs(got-want) > 1e-12 {
				t.Errorf("g[%d][%d] = %g, want %g", i, j, got, want)
			}
			wantC := sys.Ca.At(i, j) + xiL*sys.Cc.At(i, j)
			if got := c.At(i, j); math.Abs(got-wantC) > 1e-24 {
				t.Errorf("c[%d][%d] = %g, want %g", i, j, got, wantC)
			}
		}
	}
	u := make([]float64, 2)
	rhs(0, u)
	ua := make([]float64, 2)
	ug := make([]float64, 2)
	uc := make([]float64, 2)
	sys.RHS(0, ua, ug, uc)
	for i := range u {
		want := ua[i] + xiG*ug[i] + xiL*uc[i]
		if math.Abs(u[i]-want) > 1e-12 {
			t.Errorf("u[%d] = %g, want %g", i, u[i], want)
		}
	}
}

func TestNominalDCVoltages(t *testing.T) {
	// DC solve of the 2-node grid: node voltages must drop from pad to
	// load and stay below VDD.
	sys, err := Build(twoNodeGrid(), DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, 2)
	sys.RHS(0, u, nil, nil)
	f, err := factor.Cholesky(sys.Ga, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := f.Solve(u)
	// Analytic: v0 = VDD − Rpin·I = 1.2 − 0.5·0.01 = 1.195,
	// v1 = v0 − R·I = 1.185.
	if math.Abs(v[0]-1.195) > 1e-12 {
		t.Errorf("v0 = %g, want 1.195", v[0])
	}
	if math.Abs(v[1]-1.185) > 1e-12 {
		t.Errorf("v1 = %g, want 1.185", v[1])
	}
}

func TestOffDieElementsDoNotVary(t *testing.T) {
	nl := twoNodeGrid()
	nl.Resistors[0].OnDie = false
	nl.Pads[0].OnDie = false
	sys, err := Build(nl, DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Gg.NNZ() != 0 {
		t.Errorf("Gg should be empty for all-off-die metal, nnz = %d", sys.Gg.NNZ())
	}
	ug := make([]float64, 2)
	sys.RHS(0, nil, ug, nil)
	if ug[0] != 0 || ug[1] != 0 {
		t.Errorf("ug = %v, want zeros", ug)
	}
}

func TestUnionPatternCoversAll(t *testing.T) {
	sys, err := Build(twoNodeGrid(), DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	u := sys.UnionPattern()
	for _, m := range []struct {
		name string
		mat  interface{ At(int, int) float64 }
	}{
		{"Ga", sys.Ga}, {"Gg", sys.Gg}, {"Ca", sys.Ca}, {"Cc", sys.Cc},
	} {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if m.mat.At(i, j) != 0 && u.At(i, j) == 0 {
					t.Errorf("union pattern misses %s[%d][%d]", m.name, i, j)
				}
			}
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	nl := twoNodeGrid()
	nl.Pads = nil
	if _, err := Build(nl, DefaultSpec()); err == nil {
		t.Error("padless netlist accepted")
	}
}

func TestDefaultSpecMatchesPaperTable1Setup(t *testing.T) {
	s := DefaultSpec()
	// 3σ of 25% on ξG, 20% on Leff.
	if math.Abs(3*s.KG-0.25) > 1e-12 {
		t.Errorf("3σ geometry variation = %g, want 0.25", 3*s.KG)
	}
	if math.Abs(3*s.KIL-0.20) > 1e-12 {
		t.Errorf("3σ current variation = %g, want 0.20", 3*s.KIL)
	}
}

func TestThreeVarStampMatchesCombined(t *testing.T) {
	nl := twoNodeGrid()
	spec3 := DefaultThreeVarSpec()
	sys3, err := BuildThreeVar(nl, spec3)
	if err != nil {
		t.Fatal(err)
	}
	// Gw = KW·(on-die stamps); for the all-on-die grid Gw = KW/KG·Gg of
	// the combined system.
	sys2, err := Build(nl, spec3.Combine())
	if err != nil {
		t.Fatal(err)
	}
	kg := spec3.Combine().KG
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := sys2.Gg.At(i, j) * spec3.KW / kg
			if got := sys3.Gw.At(i, j); math.Abs(got-want) > 1e-14 {
				t.Errorf("Gw[%d][%d] = %g, want %g", i, j, got, want)
			}
			wantT := sys2.Gg.At(i, j) * spec3.KT / kg
			if got := sys3.Gt.At(i, j); math.Abs(got-wantT) > 1e-14 {
				t.Errorf("Gt[%d][%d] = %g, want %g", i, j, got, wantT)
			}
		}
	}
}

func TestThreeVarCombineRootSumSquare(t *testing.T) {
	s := ThreeVarSpec{KW: 0.3, KT: 0.4, KCL: 0.1, KIL: 0.2}
	c := s.Combine()
	if math.Abs(c.KG-0.5) > 1e-15 {
		t.Errorf("KG = %g, want 0.5", c.KG)
	}
	if c.KCL != 0.1 || c.KIL != 0.2 {
		t.Error("KCL/KIL must pass through unchanged")
	}
}

func TestThreeVarRHS(t *testing.T) {
	nl := twoNodeGrid()
	spec3 := DefaultThreeVarSpec()
	sys3, err := BuildThreeVar(nl, spec3)
	if err != nil {
		t.Fatal(err)
	}
	ua := make([]float64, 2)
	uw := make([]float64, 2)
	ut := make([]float64, 2)
	uc := make([]float64, 2)
	sys3.RHS(0, ua, uw, ut, uc)
	// Pad injection 2·1.2 at node 0 with W/T sensitivities.
	if math.Abs(ua[0]-2.4) > 1e-12 {
		t.Errorf("ua[0] = %g", ua[0])
	}
	if math.Abs(uw[0]-2.4*spec3.KW) > 1e-12 {
		t.Errorf("uw[0] = %g", uw[0])
	}
	if math.Abs(ut[0]-2.4*spec3.KT) > 1e-12 {
		t.Errorf("ut[0] = %g", ut[0])
	}
	if math.Abs(uc[1]+0.01*spec3.KIL) > 1e-15 {
		t.Errorf("uc[1] = %g", uc[1])
	}
}

func TestAccessors(t *testing.T) {
	nl := twoNodeGrid()
	spec := DefaultSpec()
	sys, err := Build(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Spec() != spec {
		t.Error("Spec accessor mismatch")
	}
	if sys.Netlist() != nl {
		t.Error("Netlist accessor mismatch")
	}
}

func TestCorrelatedBuildAndRealize(t *testing.T) {
	nl := twoNodeGrid()
	sW, sT, sL := 0.06, 0.05, 0.07
	rho := 0.5
	cov := [][]float64{
		{sW * sW, rho * sW * sT, 0},
		{rho * sW * sT, sT * sT, 0},
		{0, 0, sL * sL},
	}
	sys, err := BuildCorrelated(nl, cov)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dims != 3 {
		t.Fatalf("dims %d", sys.Dims)
	}
	// Total conductance sensitivity variance: Σ_k GSens_k² must equal
	// Var(δW + δT) = σW² + σT² + 2ρσWσT.
	tot := 0.0
	for k := 0; k < 3; k++ {
		tot += sys.GSens[k] * sys.GSens[k]
	}
	want := sW*sW + sT*sT + 2*rho*sW*sT
	if math.Abs(tot-want) > 1e-12 {
		t.Errorf("Σ GSens² = %g, want %g", tot, want)
	}
	// Σ CSens² = σL².
	totC := 0.0
	for k := 0; k < 3; k++ {
		totC += sys.CSens[k] * sys.CSens[k]
	}
	if math.Abs(totC-sL*sL) > 1e-12 {
		t.Errorf("Σ CSens² = %g, want %g", totC, sL*sL)
	}
	// Realize at z=0 reproduces nominal matrices and RHS.
	g, c, rhs := sys.Realize([]float64{0, 0, 0})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(g.At(i, j)-sys.Ga.At(i, j)) > 1e-14 {
				t.Fatal("zero realization G differs")
			}
			if math.Abs(c.At(i, j)-sys.Ca.At(i, j)) > 1e-26 {
				t.Fatal("zero realization C differs")
			}
		}
	}
	u := make([]float64, 2)
	rhs(0, u)
	ua := make([]float64, 2)
	sys.RHS(0, ua, make([][]float64, 3))
	for i := range u {
		if math.Abs(u[i]-ua[i]) > 1e-15 {
			t.Fatal("zero realization RHS differs")
		}
	}
	// Nonzero z shifts G along GOnDie.
	g1, _, _ := sys.Realize([]float64{1, 0, 0})
	diff := g1.At(0, 0) - sys.Ga.At(0, 0)
	if math.Abs(diff-sys.GSens[0]*sys.GOnDie.At(0, 0)) > 1e-14 {
		t.Errorf("realized shift %g", diff)
	}
}

func TestCorrelatedRejectsBadCovariance(t *testing.T) {
	nl := twoNodeGrid()
	if _, err := BuildCorrelated(nl, [][]float64{{1}}); err == nil {
		t.Error("wrong-size covariance accepted")
	}
	bad := [][]float64{{1, 2, 0}, {2, 1, 0}, {0, 0, 1}} // indefinite
	if _, err := BuildCorrelated(nl, bad); err == nil {
		t.Error("indefinite covariance accepted")
	}
}

func TestThreeVarRealize(t *testing.T) {
	nl := twoNodeGrid()
	spec := DefaultThreeVarSpec()
	sys, err := BuildThreeVar(nl, spec)
	if err != nil {
		t.Fatal(err)
	}
	xiW, xiT, xiL := 0.5, -0.25, 1.5
	g, c, rhs := sys.Realize(xiW, xiT, xiL)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			wantG := sys.Ga.At(i, j) + xiW*sys.Gw.At(i, j) + xiT*sys.Gt.At(i, j)
			if math.Abs(g.At(i, j)-wantG) > 1e-13 {
				t.Errorf("G(%d,%d) = %g, want %g", i, j, g.At(i, j), wantG)
			}
			wantC := sys.Ca.At(i, j) + xiL*sys.Cc.At(i, j)
			if math.Abs(c.At(i, j)-wantC) > 1e-25 {
				t.Errorf("C(%d,%d) mismatch", i, j)
			}
		}
	}
	u := make([]float64, 2)
	rhs(0, u)
	ua := make([]float64, 2)
	uw := make([]float64, 2)
	ut := make([]float64, 2)
	uc := make([]float64, 2)
	sys.RHS(0, ua, uw, ut, uc)
	for i := range u {
		want := ua[i] + xiW*uw[i] + xiT*ut[i] + xiL*uc[i]
		if math.Abs(u[i]-want) > 1e-14 {
			t.Errorf("u[%d] = %g, want %g", i, u[i], want)
		}
	}
}

func TestSpatialSpecValidate(t *testing.T) {
	cases := []SpatialSpec{
		{RegionsPerAxis: 0, KG: 0.1},
		{RegionsPerAxis: 2, KG: -0.1},
		{RegionsPerAxis: 2, KG: 0.1, CorrLength: -1},
		{RegionsPerAxis: 2, KG: 0.1, EnergyCutoff: 1.5},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := SpatialSpec{RegionsPerAxis: 2, KG: 0.1, KCL: 0.1, KIL: 0.1, CorrLength: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
