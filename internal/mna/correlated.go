package mna

import (
	"fmt"
	"math"

	"opera/internal/netlist"
	"opera/internal/randvar"
	"opera/internal/sparse"
)

// CorrelatedSystem is the stamped system for *correlated* physical
// variations. The paper's §5 assumes ξW, ξT, ξL uncorrelated "without
// loss of generality — given their covariance matrix, they can always
// be transformed into a set of uncorrelated random variables by an
// orthogonal transformation technique like principal component
// analysis". This type performs that transformation: the relative
// variations δ = (δW, δT, δL) with covariance Cov map to independent
// standard Gaussians z through δ = V·√Λ·z, and the per-dimension
// operator sensitivities follow from the chain rule on the linear model
// G = Ga + (δW + δT)·G_ondie, C = Ca + δL·C_gate,
// i = i_a·(1 + LeffSens·δL).
type CorrelatedSystem struct {
	N   int
	Ga  *sparse.Matrix
	Ca  *sparse.Matrix
	VDD float64

	// GOnDie and CGate are the unscaled sensitivity stamps.
	GOnDie, CGate *sparse.Matrix

	// Per-z-dimension combined sensitivities (length Dims):
	// ∂G/∂z_k = GSens[k]·GOnDie, ∂C/∂z_k = CSens[k]·CGate,
	// drain currents scale by (1 + ISens[k]·z_k) summed over k.
	Dims  int
	GSens []float64
	CSens []float64
	ISens []float64

	netlist *netlist.Netlist
	padBase []float64
	padRel  []float64 // ∂(pad injection)/∂(relative conductance)
}

// BuildCorrelated stamps the netlist under a full 3×3 covariance of the
// relative variations (order: W, T, Leff). A diagonal covariance
// diag(kW², kT², kL²) reproduces the independent three-variable model.
func BuildCorrelated(nl *netlist.Netlist, cov [][]float64) (*CorrelatedSystem, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if len(cov) != 3 {
		return nil, fmt.Errorf("mna: covariance must be 3x3 (W, T, Leff), got %d rows", len(cov))
	}
	pca, err := randvar.NewPCA(make([]float64, 3), cov)
	if err != nil {
		return nil, fmt.Errorf("mna: covariance decomposition: %w", err)
	}
	n := nl.NumNodes
	ga := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	gd := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	ca := sparse.NewTriplet(n, n, 4*len(nl.Caps))
	cg := sparse.NewTriplet(n, n, 4*len(nl.Caps))
	stamp := func(t *sparse.Triplet, a, b int, v float64) {
		if a != netlist.Ground {
			t.Add(a, a, v)
		}
		if b != netlist.Ground {
			t.Add(b, b, v)
		}
		if a != netlist.Ground && b != netlist.Ground {
			t.Add(a, b, -v)
			t.Add(b, a, -v)
		}
	}
	for _, r := range nl.Resistors {
		g := 1 / r.Ohms
		stamp(ga, r.A, r.B, g)
		if r.OnDie {
			stamp(gd, r.A, r.B, g)
		}
	}
	for _, c := range nl.Caps {
		stamp(ca, c.A, c.B, c.Farads)
		if c.GateFrac > 0 {
			stamp(cg, c.A, c.B, c.Farads*c.GateFrac)
		}
	}
	padBase := make([]float64, n)
	padRel := make([]float64, n)
	vdd := 0.0
	for _, p := range nl.Pads {
		g := 1 / p.Rpin
		ga.Add(p.Node, p.Node, g)
		padBase[p.Node] += g * p.VDD
		if p.OnDie {
			gd.Add(p.Node, p.Node, g)
			padRel[p.Node] += g * p.VDD
		}
		if p.VDD > vdd {
			vdd = p.VDD
		}
	}
	// Chain rule through δ = V·√Λ·z: the k-th principal direction
	// carries sensitivity √λ_k·(V_Wk + V_Tk) to on-die conductance and
	// √λ_k·V_Lk to gate capacitance and drain currents.
	sys := &CorrelatedSystem{
		N: n, Ga: ga.Compile(), Ca: ca.Compile(), VDD: vdd,
		GOnDie: gd.Compile(), CGate: cg.Compile(),
		Dims:    3,
		GSens:   make([]float64, 3),
		CSens:   make([]float64, 3),
		ISens:   make([]float64, 3),
		netlist: nl, padBase: padBase, padRel: padRel,
	}
	for k := 0; k < 3; k++ {
		sl := sqrtNonneg(pca.Lambda[k])
		sys.GSens[k] = sl * (pca.Vecs[k][0] + pca.Vecs[k][1])
		sys.CSens[k] = sl * pca.Vecs[k][2]
		sys.ISens[k] = sl * pca.Vecs[k][2]
	}
	return sys, nil
}

func sqrtNonneg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// RHS fills the excitation decomposition: ua plus the coefficient of
// each z dimension (out must have Dims slices, any may be nil).
func (s *CorrelatedSystem) RHS(t float64, ua []float64, sens [][]float64) {
	if ua != nil {
		copy(ua, s.padBase)
	}
	for k := range sens {
		if sens[k] == nil {
			continue
		}
		for i := range sens[k] {
			sens[k][i] = s.padRel[i] * s.GSens[k]
		}
	}
	for _, src := range s.netlist.Sources {
		iv := src.Wave.At(t)
		if ua != nil {
			ua[src.A] -= iv
		}
		if src.LeffSens != 0 {
			for k := range sens {
				if sens[k] != nil {
					sens[k][src.A] -= iv * src.LeffSens * s.ISens[k]
				}
			}
		}
	}
}

// Realize returns the deterministic matrices and RHS for one draw of
// the independent principal variables z (length Dims).
func (s *CorrelatedSystem) Realize(z []float64) (g, c *sparse.Matrix, rhs func(t float64, u []float64)) {
	if len(z) != s.Dims {
		panic(fmt.Sprintf("mna: Realize needs %d variables, got %d", s.Dims, len(z)))
	}
	gScale, cScale := 0.0, 0.0
	for k, zk := range z {
		gScale += s.GSens[k] * zk
		cScale += s.CSens[k] * zk
	}
	g = sparse.Add(1, s.Ga, gScale, s.GOnDie)
	c = sparse.Add(1, s.Ca, cScale, s.CGate)
	ua := make([]float64, s.N)
	sens := make([][]float64, s.Dims)
	for k := range sens {
		sens[k] = make([]float64, s.N)
	}
	rhs = func(t float64, u []float64) {
		s.RHS(t, ua, sens)
		for i := range u {
			u[i] = ua[i]
			for k, zk := range z {
				u[i] += zk * sens[k][i]
			}
		}
	}
	return g, c, rhs
}
