// Package mna stamps a power grid netlist into the modified nodal
// analysis matrices of the paper's Eq. 12–14: the nominal conductance
// and capacitance matrices Ga, Ca, their first-order perturbation
// matrices Gg (w.r.t. the combined geometry variable ξG of Eq. 14) and
// Cc (w.r.t. ξL), and the time-varying excitation
// u(t,ξ) = ua(t) + ug(t)·ξG + uc(t)·ξL. Supply pads are
// Norton-transformed (conductance stamp plus an equivalent current
// injection), which keeps the system matrix symmetric positive definite
// and produces the Ug·ξG term naturally from on-die pad conductance.
package mna

import (
	"fmt"

	"opera/internal/netlist"
	"opera/internal/sparse"
)

// VariationSpec holds the first-order sensitivities of the linear
// variation model. The ξ variables are normalized to unit variance, so
// a sensitivity is the relative change per standard deviation of the
// underlying parameter.
//
// The paper's experimental setup (Table 1) uses maximum 3σ variations
// of 20% in W and 15% in T, combining to 25% in the single geometry
// variable ξG (Eq. 14), and 20% in Leff, with 40% of the grid
// capacitance tracking Leff. Those settings correspond to
// KG = 0.25/3, KCL = KIL = 0.20/3, with each capacitor's GateFrac
// (0.4 grid-wide in the paper) applied at stamping — see DefaultSpec.
type VariationSpec struct {
	// KG is the relative conductance change of on-die metal per unit
	// of ξG: G = Ga·(1 + KG·ξG).
	KG float64
	// KCL is the relative change of the gate-capacitance portion per
	// unit of ξL, already including the gate fraction when applied to a
	// capacitor with GateFrac = 1. Stamping multiplies by each
	// capacitor's GateFrac: C = Ca·(1 + GateFrac·KCL·ξL).
	KCL float64
	// KIL is the relative drain-current change per unit of ξL,
	// multiplied by each source's LeffSens: i = ia·(1 + LeffSens·KIL·ξL).
	KIL float64
}

// DefaultSpec reproduces the paper's Table 1 setup: 3σ bounds of 25% on
// ξG (from 20% W and 15% T), 20% on Leff with 40% of C affected, and a
// linear drain-current dependence on Leff.
func DefaultSpec() VariationSpec {
	return VariationSpec{
		KG:  0.25 / 3,
		KCL: 0.20 / 3,
		KIL: 0.20 / 3,
	}
}

// System is the stamped stochastic MNA description with two random
// dimensions: dimension 0 is ξG (geometry: W, T combined), dimension 1
// is ξL (Leff).
type System struct {
	N  int
	Ga *sparse.Matrix // nominal conductance (pads Norton-stamped)
	Gg *sparse.Matrix // ∂G/∂ξG
	Ca *sparse.Matrix // nominal capacitance
	Cc *sparse.Matrix // ∂C/∂ξL

	VDD float64 // supply voltage (max over pads; for drop reporting)

	netlist *netlist.Netlist
	spec    VariationSpec
	// Static (time-independent) parts of the RHS: pad injections.
	padBase []float64 // Σ gpin·VDD per node
	padSens []float64 // ∂(pad injection)/∂ξG per node
}

// DimG and DimL are the random-dimension indices of the stamped system.
const (
	DimG = 0
	DimL = 1
	Dims = 2
)

// Build stamps the netlist under the given variation spec.
func Build(nl *netlist.Netlist, spec VariationSpec) (*System, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	n := nl.NumNodes
	ga := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	gg := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	ca := sparse.NewTriplet(n, n, 4*len(nl.Caps))
	cc := sparse.NewTriplet(n, n, 4*len(nl.Caps))

	stamp := func(t *sparse.Triplet, a, b int, v float64) {
		if a != netlist.Ground {
			t.Add(a, a, v)
		}
		if b != netlist.Ground {
			t.Add(b, b, v)
		}
		if a != netlist.Ground && b != netlist.Ground {
			t.Add(a, b, -v)
			t.Add(b, a, -v)
		}
	}

	for _, r := range nl.Resistors {
		g := 1 / r.Ohms
		stamp(ga, r.A, r.B, g)
		if r.OnDie {
			stamp(gg, r.A, r.B, g*spec.KG)
		}
	}
	for _, c := range nl.Caps {
		stamp(ca, c.A, c.B, c.Farads)
		if c.GateFrac > 0 {
			stamp(cc, c.A, c.B, c.Farads*c.GateFrac*spec.KCL)
		}
	}
	padBase := make([]float64, n)
	padSens := make([]float64, n)
	vdd := 0.0
	for _, p := range nl.Pads {
		g := 1 / p.Rpin
		ga.Add(p.Node, p.Node, g)
		padBase[p.Node] += g * p.VDD
		if p.OnDie {
			gg.Add(p.Node, p.Node, g*spec.KG)
			padSens[p.Node] += g * p.VDD * spec.KG
		}
		if p.VDD > vdd {
			vdd = p.VDD
		}
	}
	sys := &System{
		N:       n,
		Ga:      ga.Compile(),
		Gg:      gg.Compile(),
		Ca:      ca.Compile(),
		Cc:      cc.Compile(),
		VDD:     vdd,
		netlist: nl,
		spec:    spec,
		padBase: padBase,
		padSens: padSens,
	}
	return sys, nil
}

// Spec returns the variation spec the system was stamped with.
func (s *System) Spec() VariationSpec { return s.spec }

// Netlist returns the underlying netlist.
func (s *System) Netlist() *netlist.Netlist { return s.netlist }

// RHS fills the excitation decomposition at time t:
// ua — nominal, ug — coefficient of ξG, uc — coefficient of ξL.
// Any output slice may be nil to skip that component. Current sources
// draw current (negative injection); pads inject.
func (s *System) RHS(t float64, ua, ug, uc []float64) {
	if ua != nil {
		if len(ua) != s.N {
			panic(fmt.Sprintf("mna: RHS ua length %d != %d", len(ua), s.N))
		}
		copy(ua, s.padBase)
	}
	if ug != nil {
		if len(ug) != s.N {
			panic(fmt.Sprintf("mna: RHS ug length %d != %d", len(ug), s.N))
		}
		copy(ug, s.padSens)
	}
	if uc != nil {
		if len(uc) != s.N {
			panic(fmt.Sprintf("mna: RHS uc length %d != %d", len(uc), s.N))
		}
		for i := range uc {
			uc[i] = 0
		}
	}
	for _, src := range s.netlist.Sources {
		i := src.Wave.At(t)
		if ua != nil {
			ua[src.A] -= i
		}
		if uc != nil && src.LeffSens != 0 {
			uc[src.A] -= i * src.LeffSens * s.spec.KIL
		}
	}
}

// Realize returns the deterministic matrices and RHS closure for one
// realization (ξG, ξL) of the variation variables — the Monte Carlo
// sample path. The returned matrices share no storage with the nominal
// ones.
func (s *System) Realize(xiG, xiL float64) (g, c *sparse.Matrix, rhs func(t float64, u []float64)) {
	g = sparse.Add(1, s.Ga, xiG, s.Gg)
	c = sparse.Add(1, s.Ca, xiL, s.Cc)
	ua := make([]float64, s.N)
	ug := make([]float64, s.N)
	uc := make([]float64, s.N)
	rhs = func(t float64, u []float64) {
		s.RHS(t, ua, ug, uc)
		for i := range u {
			u[i] = ua[i] + xiG*ug[i] + xiL*uc[i]
		}
	}
	return g, c, rhs
}

// UnionPattern returns a matrix holding the union sparsity pattern of
// Ga, Gg, Ca, Cc (values are the nominal G + C sums; only the pattern
// matters). A Cholesky symbolic analysis on this pattern serves every
// Monte Carlo realization and every time-step matrix G + C/h.
func (s *System) UnionPattern() *sparse.Matrix {
	u := sparse.Add(1, s.Ga, 1, s.Gg)
	u = sparse.Add(1, u, 1, s.Ca)
	return sparse.Add(1, u, 1, s.Cc)
}
