package mna

import (
	"math"
	"testing"

	"opera/internal/netlist"
)

// regionGrid tags the two-node grid into 2 regions... too small for
// spatial; build a 4-node path with 4 regions instead.
func spatialTestGrid() *netlist.Netlist {
	nl := &netlist.Netlist{NumNodes: 4}
	for i := 0; i < 3; i++ {
		nl.Resistors = append(nl.Resistors, netlist.Resistor{
			Name: string(rune('a' + i)), A: i, B: i + 1, Ohms: 1, OnDie: true, Region: i % 4,
		})
	}
	for i := 0; i < 4; i++ {
		nl.Caps = append(nl.Caps, netlist.Capacitor{
			Name: string(rune('a' + i)), A: i, B: netlist.Ground,
			Farads: 1e-12, GateFrac: 0.4, Region: i,
		})
		nl.Sources = append(nl.Sources, netlist.CurrentSource{
			Name: string(rune('w' + i%3)), A: i, Wave: netlist.DC(1e-3),
			LeffSens: 1, Region: i,
		})
	}
	nl.Pads = []netlist.Pad{{Name: "p", Node: 0, VDD: 1.2, Rpin: 0.1}}
	return nl
}

func TestSpatialCovarianceKernel(t *testing.T) {
	cov := spatialCovariance(2, 1.0)
	if len(cov) != 4 {
		t.Fatalf("size %d", len(cov))
	}
	for i := range cov {
		if cov[i][i] != 1 {
			t.Errorf("diagonal %g", cov[i][i])
		}
	}
	// Regions 0 (0,0) and 1 (1,0): distance 1 → e^{-1}.
	if math.Abs(cov[0][1]-math.Exp(-1)) > 1e-12 {
		t.Errorf("adjacent covariance %g", cov[0][1])
	}
	// Regions 0 and 3: distance √2 → e^{-√2}.
	if math.Abs(cov[0][3]-math.Exp(-math.Sqrt2)) > 1e-12 {
		t.Errorf("diagonal-neighbor covariance %g", cov[0][3])
	}
	// Zero correlation length: identity.
	id := spatialCovariance(2, 0)
	for i := range id {
		for j := range id[i] {
			want := 0.0
			if i == j {
				want = 1
			}
			if id[i][j] != want {
				t.Errorf("L=0 cov[%d][%d] = %g", i, j, id[i][j])
			}
		}
	}
}

func TestTruncateDims(t *testing.T) {
	lambda := []float64{4, 2, 1, 0.5}
	// cutoff 0.5: first eigenvalue covers 4/7.5 = 0.53 → 1 dim.
	if d := truncateDims(lambda, 0.5, 0); d != 1 {
		t.Errorf("dims %d, want 1", d)
	}
	// cutoff 0.95: 4+2+1 = 7/7.5 = 0.933, need the fourth → 4 dims.
	if d := truncateDims(lambda, 0.95, 0); d != 4 {
		t.Errorf("dims %d, want 4", d)
	}
	// cap wins
	if d := truncateDims(lambda, 0.99, 2); d != 2 {
		t.Errorf("capped dims %d, want 2", d)
	}
	// zero eigenvalues: at least one dim
	if d := truncateDims([]float64{0, 0}, 0.9, 0); d != 1 {
		t.Errorf("degenerate dims %d, want 1", d)
	}
}

func TestBuildSpatialDimsAndSensitivities(t *testing.T) {
	nl := spatialTestGrid()
	sys, err := BuildSpatial(nl, SpatialSpec{
		RegionsPerAxis: 2, KG: 0.1, KCL: 0.05, KIL: 0.07,
		CorrLength: 0, EnergyCutoff: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Independent 4 regions → 4 dims per field.
	if sys.DimsG != 4 || sys.DimsL != 4 || sys.Dims != 8 {
		t.Fatalf("dims %d/%d/%d", sys.DimsG, sys.DimsL, sys.Dims)
	}
	// Geometry dims carry G sensitivity (except the principal direction
	// of region 3, which holds no resistors in this grid) and never C
	// sensitivity; Leff dims the reverse.
	withG := 0
	for k := 0; k < sys.DimsG; k++ {
		if sys.GSens[k] != nil && sys.GSens[k].NNZ() > 0 {
			withG++
		}
		if sys.CSens[k] != nil && sys.CSens[k].NNZ() > 0 {
			t.Errorf("geometry dim %d has C sensitivity", k)
		}
	}
	if withG != 3 { // resistors tagged into regions 0, 1, 2 only
		t.Errorf("%d geometry dims carry G sensitivity, want 3", withG)
	}
	for k := sys.DimsG; k < sys.Dims; k++ {
		if sys.CSens[k] == nil || sys.CSens[k].NNZ() == 0 {
			t.Errorf("Leff dim %d has no C sensitivity", k)
		}
		if sys.GSens[k] != nil && sys.GSens[k].NNZ() > 0 {
			t.Errorf("Leff dim %d has G sensitivity", k)
		}
	}
	// Total G variance equals Σ_k GSens_k² entrywise summed = KG²·(per
	// region stamps)² — check one entry: resistor a spans nodes 0-1 in
	// region 0: Var(∂g00) = Σ_k (KG·w_k[0])² = KG²·Cov[0][0] = KG².
	tot := 0.0
	for k := 0; k < sys.DimsG; k++ {
		v := sys.GSens[k].At(0, 0)
		tot += v * v
	}
	want := 0.1 * 0.1 * 1.0 // KG² × unit regional variance × (g=1)²
	if math.Abs(tot-want) > 1e-12 {
		t.Errorf("total G sensitivity variance %g, want %g", tot, want)
	}
}

func TestBuildSpatialRejectsUntaggedElements(t *testing.T) {
	nl := spatialTestGrid()
	nl.Resistors[0].Region = -1
	if _, err := BuildSpatial(nl, SpatialSpec{
		RegionsPerAxis: 2, KG: 0.1, CorrLength: 1,
	}); err == nil {
		t.Error("untagged on-die resistor accepted")
	}
}

func TestSpatialRealizeZeroIsNominal(t *testing.T) {
	nl := spatialTestGrid()
	sys, err := BuildSpatial(nl, SpatialSpec{
		RegionsPerAxis: 2, KG: 0.1, KCL: 0.05, KIL: 0.07, CorrLength: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, sys.Dims)
	g, c, rhs := sys.Realize(z)
	for i := 0; i < sys.N; i++ {
		for j := 0; j < sys.N; j++ {
			if math.Abs(g.At(i, j)-sys.Ga.At(i, j)) > 1e-14 {
				t.Fatalf("zero realization G differs at (%d,%d)", i, j)
			}
			if math.Abs(c.At(i, j)-sys.Ca.At(i, j)) > 1e-26 {
				t.Fatalf("zero realization C differs at (%d,%d)", i, j)
			}
		}
	}
	u := make([]float64, sys.N)
	rhs(0, u)
	ua := make([]float64, sys.N)
	sys.RHS(0, ua, nil)
	for i := range u {
		if math.Abs(u[i]-ua[i]) > 1e-15 {
			t.Fatalf("zero realization RHS differs at %d", i)
		}
	}
}
