package mna

import (
	"math"

	"opera/internal/netlist"
	"opera/internal/sparse"
)

// ThreeVarSpec holds separate first-order sensitivities for the width
// and thickness variables — the paper's Eq. 13 form *before* the Eq. 14
// reduction that combines them into the single geometry variable ξG.
// Keeping W and T separate costs a larger chaos basis (three dimensions
// instead of two); the paper's observation is that for a linear model
// with G ∝ W·T/ρ the perturbation matrices satisfy Gb = d·Ga and
// Gc = e·Ga, so d·ξW + e·ξT collapses into √(d²+e²)·ξG exactly.
type ThreeVarSpec struct {
	// KW and KT are the relative conductance changes of on-die metal
	// per unit of ξW and ξT.
	KW, KT float64
	// KCL and KIL are as in VariationSpec.
	KCL, KIL float64
}

// DefaultThreeVarSpec reproduces the paper's Table 1 setup in separated
// form: 3σ of 20% in W and 15% in T (which combine to 25% in ξG), 20%
// in Leff.
func DefaultThreeVarSpec() ThreeVarSpec {
	return ThreeVarSpec{
		KW:  0.20 / 3,
		KT:  0.15 / 3,
		KCL: 0.20 / 3,
		KIL: 0.20 / 3,
	}
}

// Combine returns the equivalent two-variable spec of Eq. 14:
// KG = √(KW² + KT²) (the scaled sum of independent unit-variance
// Gaussians is Gaussian with the root-sum-square sensitivity).
func (s ThreeVarSpec) Combine() VariationSpec {
	return VariationSpec{
		KG:  math.Sqrt(s.KW*s.KW + s.KT*s.KT),
		KCL: s.KCL,
		KIL: s.KIL,
	}
}

// ThreeVarSystem is the stamped Eq. 13 system with random dimensions
// (ξW, ξT, ξL).
type ThreeVarSystem struct {
	N          int
	Ga, Gw, Gt *sparse.Matrix
	Ca, Cc     *sparse.Matrix
	VDD        float64

	netlist *netlist.Netlist
	spec    ThreeVarSpec
	padBase []float64
	padW    []float64
	padT    []float64
}

// Dimension indices of the three-variable model.
const (
	Dim3W = 0
	Dim3T = 1
	Dim3L = 2
	Dims3 = 3
)

// BuildThreeVar stamps the netlist in the separated Eq. 13 form.
func BuildThreeVar(nl *netlist.Netlist, spec ThreeVarSpec) (*ThreeVarSystem, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	n := nl.NumNodes
	ga := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	gw := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	gt := sparse.NewTriplet(n, n, 4*len(nl.Resistors)+len(nl.Pads))
	ca := sparse.NewTriplet(n, n, 4*len(nl.Caps))
	cc := sparse.NewTriplet(n, n, 4*len(nl.Caps))
	stamp := func(t *sparse.Triplet, a, b int, v float64) {
		if a != netlist.Ground {
			t.Add(a, a, v)
		}
		if b != netlist.Ground {
			t.Add(b, b, v)
		}
		if a != netlist.Ground && b != netlist.Ground {
			t.Add(a, b, -v)
			t.Add(b, a, -v)
		}
	}
	for _, r := range nl.Resistors {
		g := 1 / r.Ohms
		stamp(ga, r.A, r.B, g)
		if r.OnDie {
			stamp(gw, r.A, r.B, g*spec.KW)
			stamp(gt, r.A, r.B, g*spec.KT)
		}
	}
	for _, c := range nl.Caps {
		stamp(ca, c.A, c.B, c.Farads)
		if c.GateFrac > 0 {
			stamp(cc, c.A, c.B, c.Farads*c.GateFrac*spec.KCL)
		}
	}
	padBase := make([]float64, n)
	padW := make([]float64, n)
	padT := make([]float64, n)
	vdd := 0.0
	for _, p := range nl.Pads {
		g := 1 / p.Rpin
		ga.Add(p.Node, p.Node, g)
		padBase[p.Node] += g * p.VDD
		if p.OnDie {
			gw.Add(p.Node, p.Node, g*spec.KW)
			gt.Add(p.Node, p.Node, g*spec.KT)
			padW[p.Node] += g * p.VDD * spec.KW
			padT[p.Node] += g * p.VDD * spec.KT
		}
		if p.VDD > vdd {
			vdd = p.VDD
		}
	}
	return &ThreeVarSystem{
		N: n, Ga: ga.Compile(), Gw: gw.Compile(), Gt: gt.Compile(),
		Ca: ca.Compile(), Cc: cc.Compile(), VDD: vdd,
		netlist: nl, spec: spec, padBase: padBase, padW: padW, padT: padT,
	}, nil
}

// RHS fills the excitation decomposition u(t,ξ) = ua + uw·ξW + ut·ξT +
// uc·ξL. Any output may be nil.
func (s *ThreeVarSystem) RHS(t float64, ua, uw, ut, uc []float64) {
	if ua != nil {
		copy(ua, s.padBase)
	}
	if uw != nil {
		copy(uw, s.padW)
	}
	if ut != nil {
		copy(ut, s.padT)
	}
	if uc != nil {
		for i := range uc {
			uc[i] = 0
		}
	}
	for _, src := range s.netlist.Sources {
		i := src.Wave.At(t)
		if ua != nil {
			ua[src.A] -= i
		}
		if uc != nil && src.LeffSens != 0 {
			uc[src.A] -= i * src.LeffSens * s.spec.KIL
		}
	}
}

// Realize returns the deterministic matrices and RHS for one
// realization (ξW, ξT, ξL).
func (s *ThreeVarSystem) Realize(xiW, xiT, xiL float64) (g, c *sparse.Matrix, rhs func(t float64, u []float64)) {
	g = sparse.Add(1, s.Ga, xiW, s.Gw)
	g = sparse.Add(1, g, xiT, s.Gt)
	c = sparse.Add(1, s.Ca, xiL, s.Cc)
	ua := make([]float64, s.N)
	uw := make([]float64, s.N)
	ut := make([]float64, s.N)
	uc := make([]float64, s.N)
	rhs = func(t float64, u []float64) {
		s.RHS(t, ua, uw, ut, uc)
		for i := range u {
			u[i] = ua[i] + xiW*uw[i] + xiT*ut[i] + xiL*uc[i]
		}
	}
	return g, c, rhs
}
