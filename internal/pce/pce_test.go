package pce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opera/internal/poly"
)

func TestTotalDegreeIndicesPaperOrder(t *testing.T) {
	// For two variables at order 2 the paper's Eq. 15 expansion order is
	// 1, ξG, ξL, ξG²−1, ξGξL, ξL²−1 — multi-indices:
	want := [][]int{{0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}, {0, 2}}
	got := TotalDegreeIndices(2, 2)
	if len(got) != len(want) {
		t.Fatalf("got %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		for d := range want[i] {
			if got[i][d] != want[i][d] {
				t.Fatalf("index %d: got %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestBasisSizeFormula(t *testing.T) {
	for dim := 1; dim <= 5; dim++ {
		for order := 0; order <= 4; order++ {
			n := len(TotalDegreeIndices(dim, order))
			if f := BasisSize(dim, order); f != n {
				t.Errorf("BasisSize(%d,%d) = %d, enumeration gives %d", dim, order, f, n)
			}
		}
	}
	// Paper: n=2, p=2 → N+1 = 6.
	if BasisSize(2, 2) != 6 {
		t.Errorf("BasisSize(2,2) = %d, want 6", BasisSize(2, 2))
	}
	// Paper: n=2, p=3 → 10.
	if BasisSize(2, 3) != 10 {
		t.Errorf("BasisSize(2,3) = %d, want 10", BasisSize(2, 3))
	}
}

// TestBasisOrthonormality integrates ψ_i ψ_j over a tensor Gauss grid.
func TestBasisOrthonormality(t *testing.T) {
	bases := []*Basis{
		NewHermiteBasis(2, 3),
		NewBasis([]poly.Family{poly.Legendre{}, poly.Hermite{}}, 2),
		NewBasis([]poly.Family{poly.Laguerre{Alpha: 1}, poly.Jacobi{Alpha: 0.5, Beta: 1}}, 2),
	}
	for _, b := range bases {
		B := b.Size()
		gram := make([][]float64, B)
		for i := range gram {
			gram[i] = make([]float64, B)
		}
		npts := b.Order + 2
		nodes := make([][]float64, b.Dim())
		weights := make([][]float64, b.Dim())
		for d := 0; d < b.Dim(); d++ {
			r, err := b.Families[d].Quadrature(npts)
			if err != nil {
				t.Fatal(err)
			}
			nodes[d], weights[d] = r.Nodes, r.Weights
		}
		psi := make([]float64, B)
		ev := NewEvaluator(b)
		var rec func(d int, w float64, xi []float64)
		xi := make([]float64, b.Dim())
		rec = func(d int, w float64, xi []float64) {
			if d == b.Dim() {
				ev.EvalAll(xi, psi)
				for i := 0; i < B; i++ {
					for j := 0; j < B; j++ {
						gram[i][j] += w * psi[i] * psi[j]
					}
				}
				return
			}
			for q := range nodes[d] {
				xi[d] = nodes[d][q]
				rec(d+1, w*weights[d][q], xi)
			}
		}
		rec(0, 1, xi)
		for i := 0; i < B; i++ {
			for j := 0; j < B; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(gram[i][j]-want) > 1e-9 {
					t.Errorf("basis dim=%d: <ψ%d,ψ%d> = %g, want %g", b.Dim(), i, j, gram[i][j], want)
				}
			}
		}
	}
}

func TestFirstOrderIndex(t *testing.T) {
	b := NewHermiteBasis(3, 2)
	for d := 0; d < 3; d++ {
		i := b.FirstOrderIndex(d)
		alpha := b.Indices[i]
		if indexDegree(alpha) != 1 || alpha[d] != 1 {
			t.Errorf("FirstOrderIndex(%d) = %d with index %v", d, i, alpha)
		}
	}
}

// hermiteTripleClosed is the classical closed form E[He_a He_b He_c].
func hermiteTripleClosed(a, b, c int) float64 {
	s := a + b + c
	if s%2 != 0 {
		return 0
	}
	s /= 2
	if s < a || s < b || s < c {
		return 0
	}
	fact := func(k int) float64 {
		v := 1.0
		for i := 2; i <= k; i++ {
			v *= float64(i)
		}
		return v
	}
	return fact(a) * fact(b) * fact(c) / (fact(s-a) * fact(s-b) * fact(s-c))
}

func TestUniTripleMatchesHermiteClosedForm(t *testing.T) {
	b := NewHermiteBasis(1, 5)
	for a := 0; a <= 5; a++ {
		for bb := 0; bb <= 5; bb++ {
			for c := 0; c <= 5; c++ {
				got := b.uniTriple(0, a, bb, c)
				want := hermiteTripleClosed(a, bb, c)
				if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
					t.Errorf("E[He%d He%d He%d] = %g, want %g", a, bb, c, got, want)
				}
			}
		}
	}
}

func TestCouplingLinearMatchesPaperEq20(t *testing.T) {
	// Paper Eq. 20 for (ξG, ξL), p = 2 uses the unnormalized basis; the
	// orthonormal coupling is D^{-1/2}·E[ξG γi γj]·D^{-1/2} with
	// D = diag(1,1,1,2,1,2). Expected nonzeros:
	// (0,1) = 1, (1,3) = 2/√2 = √2, (2,4) = 1 (and symmetric).
	b := NewHermiteBasis(2, 2)
	tg := b.CouplingLinear(0)
	want := map[[2]int]float64{
		{0, 1}: 1, {1, 0}: 1,
		{1, 3}: math.Sqrt2, {3, 1}: math.Sqrt2,
		{2, 4}: 1, {4, 2}: 1,
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			w := want[[2]int{i, j}]
			if got := tg.At(i, j); math.Abs(got-w) > 1e-9 {
				t.Errorf("T_G[%d][%d] = %g, want %g", i, j, got, w)
			}
		}
	}
	// Coupling for ξL mirrors with dimensions swapped:
	tl := b.CouplingLinear(1)
	wantL := map[[2]int]float64{
		{0, 2}: 1, {2, 0}: 1,
		{2, 5}: math.Sqrt2, {5, 2}: math.Sqrt2,
		{1, 4}: 1, {4, 1}: 1,
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			w := wantL[[2]int{i, j}]
			if got := tl.At(i, j); math.Abs(got-w) > 1e-9 {
				t.Errorf("T_L[%d][%d] = %g, want %g", i, j, got, w)
			}
		}
	}
}

func TestCouplingLinearSymmetricAllFamilies(t *testing.T) {
	b := NewBasis([]poly.Family{poly.Legendre{}, poly.Laguerre{Alpha: 0.5}}, 3)
	for d := 0; d < 2; d++ {
		c := b.CouplingLinear(d)
		if !c.IsSymmetric(1e-10) {
			t.Errorf("CouplingLinear(%d) not symmetric", d)
		}
	}
}

func TestTripleTensorIdentitySlice(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	tt := b.TripleTensor()
	// C_0 = E[ψ0 ψi ψj] = δij.
	for i := 0; i < b.Size(); i++ {
		for j := 0; j < b.Size(); j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := tt[0].At(i, j); math.Abs(got-want) > 1e-10 {
				t.Errorf("C_0[%d][%d] = %g", i, j, got)
			}
		}
	}
	// Full symmetry in (m,i,j): C_m[i][j] = C_i[m][j].
	for m := 0; m < b.Size(); m++ {
		for i := 0; i < b.Size(); i++ {
			for j := 0; j < b.Size(); j++ {
				if d := tt[m].At(i, j) - tt[i].At(m, j); math.Abs(d) > 1e-9 {
					t.Errorf("triple tensor not symmetric: (%d,%d,%d) differs by %g", m, i, j, d)
				}
			}
		}
	}
}

func TestTripleTensorMatchesCouplingLinearForHermite(t *testing.T) {
	// For Hermite dimensions ξ_d = ψ_{e_d}, so CouplingLinear(d) must
	// equal the TripleTensor slice at the first-order index.
	b := NewHermiteBasis(2, 2)
	tt := b.TripleTensor()
	for d := 0; d < 2; d++ {
		cl := b.CouplingLinear(d)
		m := tt[b.FirstOrderIndex(d)]
		for i := 0; i < b.Size(); i++ {
			for j := 0; j < b.Size(); j++ {
				if diff := cl.At(i, j) - m.At(i, j); math.Abs(diff) > 1e-9 {
					t.Errorf("dim %d: (%d,%d) differs by %g", d, i, j, diff)
				}
			}
		}
	}
}

func TestProjectVariableHermite(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	c := b.ProjectVariable(1)
	for i := range c {
		want := 0.0
		if i == b.FirstOrderIndex(1) {
			want = 1
		}
		if math.Abs(c[i]-want) > 1e-10 {
			t.Errorf("coeff %d = %g, want %g", i, c[i], want)
		}
	}
}

func TestProjectVariableLaguerreMean(t *testing.T) {
	// Gamma(α+1) has mean α+1, so ξ projected on ψ0 gives the mean.
	alpha := 1.5
	b := NewBasis([]poly.Family{poly.Laguerre{Alpha: alpha}}, 2)
	c := b.ProjectVariable(0)
	if math.Abs(c[0]-(alpha+1)) > 1e-9 {
		t.Errorf("mean coefficient %g, want %g", c[0], alpha+1)
	}
	// Reconstruct: expansion evaluates to x at quadrature nodes.
	e := FromCoeffs(b, c)
	rule, _ := b.Families[0].Quadrature(4)
	for _, x := range rule.Nodes {
		if got := e.Eval([]float64{x}); math.Abs(got-x) > 1e-8*(1+math.Abs(x)) {
			t.Errorf("reconstructed variable at %g = %g", x, got)
		}
	}
}

func TestProjectFuncExactPolynomial(t *testing.T) {
	// f = 2 + 3ξ0 + ξ0ξ1 − ξ1² lies in the order-2 basis; projection
	// then evaluation must reproduce f exactly.
	b := NewHermiteBasis(2, 2)
	f := func(xi []float64) float64 { return 2 + 3*xi[0] + xi[0]*xi[1] - xi[1]*xi[1] }
	c, err := b.ProjectFunc(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := FromCoeffs(b, c)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		xi := []float64{rng.NormFloat64(), rng.NormFloat64()}
		if got, want := e.Eval(xi), f(xi); math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("projection not exact: f(%v) = %g, expansion %g", xi, want, got)
		}
	}
}

func TestLognormalCoefficientsClosedForm(t *testing.T) {
	mu, sigma := -1.0, 0.4
	b := NewHermiteBasis(2, 3)
	closed := b.LognormalCoefficients(0, mu, sigma)
	numeric, err := b.ProjectFunc(func(xi []float64) float64 {
		return math.Exp(mu + sigma*xi[0])
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range closed {
		if math.Abs(closed[i]-numeric[i]) > 1e-8 {
			t.Errorf("coeff %d: closed %g vs numeric %g", i, closed[i], numeric[i])
		}
	}
	// Mean and variance of the truncated expansion approach the exact
	// lognormal values.
	e := FromCoeffs(b, closed)
	exactMean := math.Exp(mu + sigma*sigma/2)
	if math.Abs(e.Mean()-exactMean) > 1e-12 {
		t.Errorf("mean %g, want %g", e.Mean(), exactMean)
	}
	exactVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	if rel := math.Abs(e.Variance()-exactVar) / exactVar; rel > 0.01 {
		t.Errorf("variance %g vs exact %g (rel err %g)", e.Variance(), exactVar, rel)
	}
}

func TestExpansionMomentsLinearGaussian(t *testing.T) {
	// X = 3 + 2ξ: mean 3, var 4, skew 0, excess kurtosis 0.
	b := NewHermiteBasis(1, 3)
	e := NewExpansion(b)
	e.Coeffs[0] = 3
	e.Coeffs[b.FirstOrderIndex(0)] = 2
	if e.Mean() != 3 {
		t.Errorf("mean %g", e.Mean())
	}
	if math.Abs(e.Variance()-4) > 1e-12 {
		t.Errorf("var %g", e.Variance())
	}
	if math.Abs(e.Skewness()) > 1e-9 {
		t.Errorf("skew %g", e.Skewness())
	}
	if math.Abs(e.ExcessKurtosis()) > 1e-8 {
		t.Errorf("kurt %g", e.ExcessKurtosis())
	}
}

func TestExpansionMomentsChiSquare(t *testing.T) {
	// X = ξ² = ψ0 + √2·ψ2 (orthonormal) ~ χ²₁: mean 1, var 2,
	// skew = √8 = 2.828…, excess kurtosis = 12.
	b := NewHermiteBasis(1, 2)
	e := NewExpansion(b)
	e.Coeffs[0] = 1
	e.Coeffs[2] = math.Sqrt2
	if math.Abs(e.Mean()-1) > 1e-12 {
		t.Errorf("mean %g", e.Mean())
	}
	if math.Abs(e.Variance()-2) > 1e-12 {
		t.Errorf("var %g", e.Variance())
	}
	if math.Abs(e.Skewness()-2*math.Sqrt2) > 1e-8 {
		t.Errorf("skew %g, want %g", e.Skewness(), 2*math.Sqrt2)
	}
	if math.Abs(e.ExcessKurtosis()-12) > 1e-7 {
		t.Errorf("excess kurtosis %g, want 12", e.ExcessKurtosis())
	}
}

func TestExpansionMulExactForLowDegree(t *testing.T) {
	// Products of two degree-1 expansions fit in an order-2 basis, so
	// the Galerkin product must be exact pointwise.
	b := NewHermiteBasis(2, 2)
	triples := TripleEntries(b)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		x := NewExpansion(b)
		y := NewExpansion(b)
		x.Coeffs[0] = rng.NormFloat64()
		y.Coeffs[0] = rng.NormFloat64()
		for d := 0; d < 2; d++ {
			x.Coeffs[b.FirstOrderIndex(d)] = rng.NormFloat64()
			y.Coeffs[b.FirstOrderIndex(d)] = rng.NormFloat64()
		}
		z := x.Mul(y, triples)
		xi := []float64{rng.NormFloat64(), rng.NormFloat64()}
		want := x.Eval(xi) * y.Eval(xi)
		if got := z.Eval(xi); math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("product mismatch: %g vs %g", got, want)
		}
	}
}

func TestExpansionArithmetic(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	x := Constant(b, 2)
	y := NewExpansion(b)
	y.Coeffs[1] = 3
	s := x.Add(y)
	if s.Mean() != 2 || math.Abs(s.Variance()-9) > 1e-12 {
		t.Errorf("add: mean %g var %g", s.Mean(), s.Variance())
	}
	d := s.Sub(y)
	if d.Mean() != 2 || d.Variance() != 0 {
		t.Errorf("sub: mean %g var %g", d.Mean(), d.Variance())
	}
	sc := y.Scale(-2)
	if math.Abs(sc.Variance()-36) > 1e-12 {
		t.Errorf("scale: var %g", sc.Variance())
	}
}

func TestExpansionSampleMatchesMoments(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	e := NewExpansion(b)
	e.Coeffs[0] = 1
	e.Coeffs[1] = 0.5
	e.Coeffs[3] = 0.25
	rng := rand.New(rand.NewSource(11))
	xs := e.Sample(rng, 100000)
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	n := float64(len(xs))
	mean := s / n
	variance := s2/n - mean*mean
	if math.Abs(mean-e.Mean()) > 0.01 {
		t.Errorf("sample mean %g, expansion %g", mean, e.Mean())
	}
	if math.Abs(variance-e.Variance()) > 0.02 {
		t.Errorf("sample var %g, expansion %g", variance, e.Variance())
	}
}

func TestGramCharlierGaussianCase(t *testing.T) {
	// With zero skew and kurtosis the series is the exact normal pdf.
	pdf := GramCharlierPDF(1, 2, 0, 0)
	for _, x := range []float64{-3, 0, 1, 4} {
		z := (x - 1.0) / 2
		want := math.Exp(-z*z/2) / (2 * math.Sqrt(2*math.Pi))
		if got := pdf(x); math.Abs(got-want) > 1e-14 {
			t.Errorf("pdf(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	e := NewExpansion(b)
	e.Coeffs[0] = 5
	e.Coeffs[1] = 1
	e.Coeffs[2] = 0.3
	e.Coeffs[3] = 0.2
	pdf := e.PDF()
	// Trapezoid over ±8σ.
	mu, sd := e.Mean(), e.Std()
	lo, hi := mu-8*sd, mu+8*sd
	n := 4000
	h := (hi - lo) / float64(n)
	sum := 0.0
	for i := 0; i <= n; i++ {
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * pdf(lo+float64(i)*h)
	}
	sum *= h
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("Gram-Charlier pdf integrates to %g", sum)
	}
}

func TestEdgeworthReducesToGramCharlierForZeroSkew(t *testing.T) {
	g := GramCharlierPDF(0, 1, 0, 0.5)
	e := EdgeworthPDF(0, 1, 0, 0.5)
	for _, x := range []float64{-2, 0, 1.3} {
		if math.Abs(g(x)-e(x)) > 1e-14 {
			t.Errorf("at %g: GC %g vs Edgeworth %g", x, g(x), e(x))
		}
	}
}

func TestEvaluatorMatchesEvalAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(3)
		order := 1 + rng.Intn(3)
		b := NewHermiteBasis(dim, order)
		xi := make([]float64, dim)
		for d := range xi {
			xi[d] = rng.NormFloat64()
		}
		a := make([]float64, b.Size())
		c := make([]float64, b.Size())
		b.EvalAll(xi, a)
		NewEvaluator(b).EvalAll(xi, c)
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestVarianceMatchesPaperEq23(t *testing.T) {
	// Paper Eq. 23 (corrected form): for the unnormalized coefficients
	// a_i of Eq. 15, Var = a1² + a2² + 2·a3² + a4² + 2·a5².
	// Our orthonormal coefficients c_i relate by c_i = a_i·‖Ψ_i‖, so
	// Var = Σ c_i² must equal the paper's weighted sum.
	b := NewHermiteBasis(2, 2)
	a := []float64{7, 0.1, -0.2, 0.05, 0.03, -0.04} // unnormalized coeffs
	e := NewExpansion(b)
	for i := range a {
		e.Coeffs[i] = a[i] * b.Norm(i)
	}
	wantVar := a[1]*a[1] + a[2]*a[2] + 2*a[3]*a[3] + a[4]*a[4] + 2*a[5]*a[5]
	if math.Abs(e.Variance()-wantVar) > 1e-12 {
		t.Errorf("variance %g, paper formula %g", e.Variance(), wantVar)
	}
	if e.Mean() != 7 {
		t.Errorf("mean %g, want a0 = 7", e.Mean())
	}
}

func TestCouplingExpansionMatchesLinear(t *testing.T) {
	// The expansion-based coupling of g(ξ) = ξ_d must equal
	// CouplingLinear(d).
	b := NewHermiteBasis(2, 2)
	for d := 0; d < 2; d++ {
		coeffs := b.ProjectVariable(d)
		ce := b.CouplingExpansion(coeffs)
		cl := b.CouplingLinear(d)
		for i := 0; i < b.Size(); i++ {
			for j := 0; j < b.Size(); j++ {
				if diff := ce.At(i, j) - cl.At(i, j); math.Abs(diff) > 1e-9 {
					t.Fatalf("dim %d (%d,%d): differ by %g", d, i, j, diff)
				}
			}
		}
	}
}

func TestCouplingExpansionQuadratic(t *testing.T) {
	// g(ξ) = ξ0² − 1 = √2·ψ_{(2,0)}: the coupling must equal √2 times
	// the triple-tensor slice at that index, and reproduce the exact
	// E[(ξ²−1)ψiψj] integrals by quadrature.
	b := NewHermiteBasis(1, 3)
	coeffs, err := b.ProjectFunc(func(xi []float64) float64 { return xi[0]*xi[0] - 1 }, 6)
	if err != nil {
		t.Fatal(err)
	}
	tc := b.CouplingExpansion(coeffs)
	if !tc.IsSymmetric(1e-10) {
		t.Error("quadratic coupling not symmetric")
	}
	// Reference by direct quadrature: E[(x²−1)ψi(x)ψj(x)].
	rule, err := b.Families[0].Quadrature(8)
	if err != nil {
		t.Fatal(err)
	}
	psi := make([]float64, b.Size())
	ref := make([][]float64, b.Size())
	for i := range ref {
		ref[i] = make([]float64, b.Size())
	}
	ev := NewEvaluator(b)
	for q, x := range rule.Nodes {
		ev.EvalAll([]float64{x}, psi)
		w := rule.Weights[q] * (x*x - 1)
		for i := range psi {
			for j := range psi {
				ref[i][j] += w * psi[i] * psi[j]
			}
		}
	}
	for i := 0; i < b.Size(); i++ {
		for j := 0; j < b.Size(); j++ {
			if d := math.Abs(tc.At(i, j) - ref[i][j]); d > 1e-8 {
				t.Fatalf("(%d,%d): coupling %g vs quadrature %g", i, j, tc.At(i, j), ref[i][j])
			}
		}
	}
}
