package pce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPolynomial builds a random multivariate polynomial of total
// degree ≤ p as an explicit coefficient map over monomials.
type monomial struct {
	powers []int
	coeff  float64
}

func randomPolynomial(rng *rand.Rand, dim, p int) []monomial {
	idx := TotalDegreeIndices(dim, p)
	out := make([]monomial, 0, len(idx))
	for _, alpha := range idx {
		if rng.Float64() < 0.7 {
			out = append(out, monomial{
				powers: append([]int(nil), alpha...),
				coeff:  rng.NormFloat64(),
			})
		}
	}
	if len(out) == 0 {
		out = append(out, monomial{powers: make([]int, dim), coeff: 1})
	}
	return out
}

func evalPoly(m []monomial, xi []float64) float64 {
	s := 0.0
	for _, t := range m {
		v := t.coeff
		for d, pw := range t.powers {
			for k := 0; k < pw; k++ {
				v *= xi[d]
			}
		}
		s += v
	}
	return s
}

// TestBasisCompleteness: any polynomial of total degree ≤ p projects
// onto the order-p basis *exactly* — projection followed by evaluation
// reproduces the polynomial pointwise. This is the completeness half of
// the Cameron–Martin property the paper's expansion rests on, checked
// for Hermite bases with random polynomials.
func TestBasisCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(3)
		p := 1 + rng.Intn(3)
		b := NewHermiteBasis(dim, p)
		poly := randomPolynomial(rng, dim, p)
		coeffs, err := b.ProjectFunc(func(xi []float64) float64 {
			return evalPoly(poly, xi)
		}, p+2)
		if err != nil {
			return false
		}
		e := FromCoeffs(b, coeffs)
		for trial := 0; trial < 20; trial++ {
			xi := make([]float64, dim)
			for d := range xi {
				xi[d] = rng.NormFloat64()
			}
			want := evalPoly(poly, xi)
			got := e.Eval(xi)
			if math.Abs(got-want) > 1e-7*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestParsevalIdentity: for a polynomial inside the basis, the second
// moment computed from coefficients (Parseval) equals the quadrature
// second moment.
func TestParsevalIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(2)
		p := 1 + rng.Intn(3)
		b := NewHermiteBasis(dim, p)
		e := NewExpansion(b)
		for i := range e.Coeffs {
			e.Coeffs[i] = rng.NormFloat64()
		}
		// Parseval: E[X²] = Σ c_i².
		sum := 0.0
		for _, c := range e.Coeffs {
			sum += c * c
		}
		m2 := e.Moment(2)
		return math.Abs(m2-sum) < 1e-7*(1+sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestEvalRawMatchesNormalized verifies the two evaluator outputs agree
// up to the norm scaling.
func TestEvalRawMatchesNormalized(t *testing.T) {
	b := NewHermiteBasis(2, 3)
	ev := NewEvaluator(b)
	ortho := make([]float64, b.Size())
	raw := make([]float64, b.Size())
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		xi := []float64{rng.NormFloat64(), rng.NormFloat64()}
		ev.EvalAll(xi, ortho)
		ev.EvalRaw(xi, raw)
		for i := range raw {
			want := ortho[i] * b.Norm(i)
			if math.Abs(raw[i]-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("raw[%d] = %g, want %g", i, raw[i], want)
			}
		}
	}
}

// TestMomentHighDimSamplingFallback: the sampled-integration fallback
// for high-dimensional bases stays within Monte Carlo tolerance of the
// closed-form variance.
func TestMomentHighDimSamplingFallback(t *testing.T) {
	b := NewHermiteBasis(12, 2) // 12 dims: tensor quadrature impossible
	e := NewExpansion(b)
	rng := rand.New(rand.NewSource(11))
	for d := 0; d < 12; d++ {
		e.Coeffs[b.FirstOrderIndex(d)] = rng.NormFloat64()
	}
	e.Coeffs[0] = 2
	exact := e.Variance() + e.Mean()*e.Mean()
	m2 := e.Moment(2) // falls back to sampling internally
	if rel := math.Abs(m2-exact) / exact; rel > 0.02 {
		t.Errorf("sampled E[X²] %g vs exact %g (rel %g)", m2, exact, rel)
	}
}
