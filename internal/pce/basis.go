package pce

import (
	"fmt"
	"math"

	"opera/internal/poly"
)

// Basis is a truncated multivariate polynomial chaos basis: the products
// Ψ_α(ξ) = Π_d p_{α_d}(ξ_d) over all total-degree multi-indices |α| ≤ p,
// with one (possibly different) univariate family per independent
// dimension. Internally the orthonormalized functions ψ_α = Ψ_α/‖Ψ_α‖
// are used everywhere: coefficients stored against this basis give the
// variance as a plain sum of squares and make the Galerkin matrix
// symmetric.
type Basis struct {
	Families []poly.Family
	Order    int
	Indices  [][]int
	normSq   []float64 // ‖Ψ_α‖² per index
	maxDeg   int
}

// NewBasis constructs the total-degree basis of the given order.
func NewBasis(families []poly.Family, order int) *Basis {
	if len(families) == 0 {
		panic("pce: NewBasis requires at least one family")
	}
	idx := TotalDegreeIndices(len(families), order)
	b := &Basis{Families: families, Order: order, Indices: idx, maxDeg: order}
	b.normSq = make([]float64, len(idx))
	for i, alpha := range idx {
		v := 1.0
		for d, a := range alpha {
			v *= families[d].NormSq(a)
		}
		b.normSq[i] = v
	}
	return b
}

// NewHermiteBasis is the common case: dim i.i.d. standard Gaussian
// dimensions with probabilists' Hermite polynomials.
func NewHermiteBasis(dim, order int) *Basis {
	fams := make([]poly.Family, dim)
	for i := range fams {
		fams[i] = poly.Hermite{}
	}
	return NewBasis(fams, order)
}

// Dim returns the number of random dimensions.
func (b *Basis) Dim() int { return len(b.Families) }

// Size returns the number of basis functions, the paper's N+1.
func (b *Basis) Size() int { return len(b.Indices) }

// NormSq returns ‖Ψ_α‖² for basis index i (conventional, unnormalized
// polynomials).
func (b *Basis) NormSq(i int) float64 { return b.normSq[i] }

// Norm returns ‖Ψ_α‖.
func (b *Basis) Norm(i int) float64 { return math.Sqrt(b.normSq[i]) }

// FirstOrderIndex returns the basis position of the multi-index e_d
// (degree one in dimension d). Requires Order >= 1.
func (b *Basis) FirstOrderIndex(d int) int {
	if d < 0 || d >= b.Dim() {
		panic(fmt.Sprintf("pce: dimension %d out of range %d", d, b.Dim()))
	}
	for i, alpha := range b.Indices {
		if indexDegree(alpha) == 1 && alpha[d] == 1 {
			return i
		}
	}
	panic("pce: basis has no first-order terms (order 0?)")
}

// EvalAll evaluates every *orthonormal* basis function at the point ξ,
// filling out (length Size()). Scratch buffers are allocated per call;
// use an Evaluator for hot loops.
func (b *Basis) EvalAll(xi []float64, out []float64) {
	ev := NewEvaluator(b)
	ev.EvalAll(xi, out)
}

// Evaluator amortizes the per-dimension univariate recurrence buffers
// for repeated basis evaluation (e.g. sampling an expansion many times).
type Evaluator struct {
	b    *Basis
	uni  [][]float64 // uni[d][k] = p_k(ξ_d)
	dims int
}

// NewEvaluator creates an evaluator for b.
func NewEvaluator(b *Basis) *Evaluator {
	uni := make([][]float64, b.Dim())
	for d := range uni {
		uni[d] = make([]float64, b.maxDeg+1)
	}
	return &Evaluator{b: b, uni: uni, dims: b.Dim()}
}

// EvalAll fills out[i] = ψ_i(ξ) for every orthonormal basis function.
func (e *Evaluator) EvalAll(xi []float64, out []float64) {
	b := e.b
	if len(xi) != e.dims {
		panic(fmt.Sprintf("pce: point dimension %d != basis dimension %d", len(xi), e.dims))
	}
	if len(out) != b.Size() {
		panic(fmt.Sprintf("pce: output length %d != basis size %d", len(out), b.Size()))
	}
	for d := 0; d < e.dims; d++ {
		b.Families[d].EvalAll(xi[d], e.uni[d])
	}
	for i, alpha := range b.Indices {
		v := 1.0
		for d, a := range alpha {
			v *= e.uni[d][a]
		}
		out[i] = v / math.Sqrt(b.normSq[i])
	}
}

// EvalRaw fills out[i] = Ψ_i(ξ) (conventional, unnormalized).
func (e *Evaluator) EvalRaw(xi []float64, out []float64) {
	e.EvalAll(xi, out)
	for i := range out {
		out[i] *= math.Sqrt(e.b.normSq[i])
	}
}
