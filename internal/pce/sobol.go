package pce

import "fmt"

// Variance-based sensitivity (Sobol') decomposition. A chaos expansion
// makes global sensitivity analysis free: the variance splits exactly
// over the multi-index support, so the share attributable to one
// variable — alone or in interaction — is a sum of squared coefficients.
// For a power grid this answers the design question behind the paper's
// ±35% observation: *which* variation source (geometry ξG, channel
// length ξL, a particular intra-die region…) drives the spread at a
// given node.

// SobolFirstOrder returns S_d = Var_d/Var: the variance share carried by
// basis functions involving *only* dimension d (no interactions).
func (e *Expansion) SobolFirstOrder(d int) float64 {
	b := e.Basis
	if d < 0 || d >= b.Dim() {
		panic(fmt.Sprintf("pce: Sobol dimension %d out of range %d", d, b.Dim()))
	}
	total := e.Variance()
	if total == 0 {
		return 0
	}
	part := 0.0
	for i, alpha := range b.Indices {
		if i == 0 {
			continue
		}
		if alpha[d] > 0 && degreeExcept(alpha, d) == 0 {
			part += e.Coeffs[i] * e.Coeffs[i]
		}
	}
	return part / total
}

// SobolTotal returns S_T,d = (variance of every term involving d,
// including interactions) / Var. Totals over all dimensions sum to ≥ 1,
// with equality iff there are no interaction terms.
func (e *Expansion) SobolTotal(d int) float64 {
	b := e.Basis
	if d < 0 || d >= b.Dim() {
		panic(fmt.Sprintf("pce: Sobol dimension %d out of range %d", d, b.Dim()))
	}
	total := e.Variance()
	if total == 0 {
		return 0
	}
	part := 0.0
	for i, alpha := range b.Indices {
		if i == 0 {
			continue
		}
		if alpha[d] > 0 {
			part += e.Coeffs[i] * e.Coeffs[i]
		}
	}
	return part / total
}

// SobolInteraction returns the variance share of terms that couple two
// or more dimensions — the non-additive part of the response.
func (e *Expansion) SobolInteraction() float64 {
	b := e.Basis
	total := e.Variance()
	if total == 0 {
		return 0
	}
	part := 0.0
	for i, alpha := range b.Indices {
		if i == 0 {
			continue
		}
		if activeDims(alpha) >= 2 {
			part += e.Coeffs[i] * e.Coeffs[i]
		}
	}
	return part / total
}

// Covariance returns Cov(X, Y) for two expansions on the same basis:
// Σ_{i≥1} x_i·y_i by orthonormality. For node voltages this measures how
// strongly two grid locations fluctuate together under the shared
// process variations.
func Covariance(x, y *Expansion) float64 {
	x.checkSameBasis(y)
	s := 0.0
	for i := 1; i < len(x.Coeffs); i++ {
		s += x.Coeffs[i] * y.Coeffs[i]
	}
	return s
}

// Correlation returns the Pearson correlation of two expansions (0 when
// either is deterministic).
func Correlation(x, y *Expansion) float64 {
	sx, sy := x.Std(), y.Std()
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(x, y) / (sx * sy)
}

func degreeExcept(alpha []int, d int) int {
	s := 0
	for k, a := range alpha {
		if k != d {
			s += a
		}
	}
	return s
}

func activeDims(alpha []int) int {
	n := 0
	for _, a := range alpha {
		if a > 0 {
			n++
		}
	}
	return n
}
