package pce_test

import (
	"fmt"
	"math"
	"strings"

	"opera/internal/pce"
	"opera/internal/poly"
)

// ExampleExpansion shows the closed-form moments of a chaos expansion:
// X = 3 + 2ξ₁ + √2·(ξ₀²−1)/√2 … here simply assembled coefficient by
// coefficient against the orthonormal Hermite basis.
func ExampleExpansion() {
	basis := pce.NewHermiteBasis(2, 2)
	x := pce.NewExpansion(basis)
	x.Coeffs[0] = 3                          // mean
	x.Coeffs[basis.FirstOrderIndex(0)] = 2   // 2·ξ₀
	x.Coeffs[basis.FirstOrderIndex(1)] = 0.5 // 0.5·ξ₁
	fmt.Printf("mean = %.1f\n", x.Mean())
	fmt.Printf("variance = %.2f\n", x.Variance())
	fmt.Printf("std = %.4f\n", x.Std())
	// Output:
	// mean = 3.0
	// variance = 4.25
	// std = 2.0616
}

// ExampleBasis_CouplingLinear prints the paper's Eq. 20 coupling
// structure (orthonormal form) for two Gaussian variables at order 2.
func ExampleBasis_CouplingLinear() {
	basis := pce.NewHermiteBasis(2, 2)
	t := basis.CouplingLinear(0) // coupling of a term linear in ξG
	for i := 0; i < basis.Size(); i++ {
		row := make([]string, basis.Size())
		for j := 0; j < basis.Size(); j++ {
			v := t.At(i, j)
			if math.Abs(v) < 1e-12 {
				row[j] = "."
			} else {
				row[j] = fmt.Sprintf("%.3f", v)
			}
		}
		fmt.Println(strings.Join(row, " "))
	}
	// Output:
	// . 1.000 . . . .
	// 1.000 . . 1.414 . .
	// . . . . 1.000 .
	// . 1.414 . . . .
	// . . 1.000 . . .
	// . . . . . .
}

// ExampleBasis_LognormalCoefficients reproduces the classical Hermite
// expansion of a lognormal random variable (the §5.1 leakage model).
func ExampleBasis_LognormalCoefficients() {
	basis := pce.NewBasis([]poly.Family{poly.Hermite{}}, 3)
	// exp(µ + σξ) with unit mean: µ = −σ²/2.
	sigma := 0.5
	c := basis.LognormalCoefficients(0, -sigma*sigma/2, sigma)
	for k, v := range c {
		fmt.Printf("c%d = %.4f\n", k, v)
	}
	// Output:
	// c0 = 1.0000
	// c1 = 0.5000
	// c2 = 0.1768
	// c3 = 0.0510
}

// ExampleExpansion_SobolTotal attributes variance to its sources.
func ExampleExpansion_SobolTotal() {
	basis := pce.NewHermiteBasis(2, 2)
	x := pce.NewExpansion(basis)
	x.Coeffs[basis.FirstOrderIndex(0)] = 3 // geometry dominates
	x.Coeffs[basis.FirstOrderIndex(1)] = 1
	fmt.Printf("geometry share: %.0f%%\n", 100*x.SobolTotal(0))
	fmt.Printf("channel share:  %.0f%%\n", 100*x.SobolTotal(1))
	// Output:
	// geometry share: 90%
	// channel share:  10%
}
