package pce

import (
	"math"
	"math/rand"
	"testing"
)

func TestSobolIndicesAnalytic(t *testing.T) {
	// X = 2ξ0 + 1ξ1 + 0.5·ξ0ξ1 (orthonormal Hermite coefficients):
	// Var = 4 + 1 + 0.25 = 5.25.
	b := NewHermiteBasis(2, 2)
	e := NewExpansion(b)
	e.Coeffs[b.FirstOrderIndex(0)] = 2
	e.Coeffs[b.FirstOrderIndex(1)] = 1
	// the (1,1) mixed index:
	for i, alpha := range b.Indices {
		if alpha[0] == 1 && alpha[1] == 1 {
			e.Coeffs[i] = 0.5
		}
	}
	if math.Abs(e.Variance()-5.25) > 1e-12 {
		t.Fatalf("variance %g", e.Variance())
	}
	if s := e.SobolFirstOrder(0); math.Abs(s-4/5.25) > 1e-12 {
		t.Errorf("S_0 = %g, want %g", s, 4/5.25)
	}
	if s := e.SobolFirstOrder(1); math.Abs(s-1/5.25) > 1e-12 {
		t.Errorf("S_1 = %g, want %g", s, 1/5.25)
	}
	if s := e.SobolTotal(0); math.Abs(s-4.25/5.25) > 1e-12 {
		t.Errorf("S_T0 = %g, want %g", s, 4.25/5.25)
	}
	if s := e.SobolInteraction(); math.Abs(s-0.25/5.25) > 1e-12 {
		t.Errorf("interaction share %g, want %g", s, 0.25/5.25)
	}
	// First-order + interaction partitions the variance exactly here.
	sum := e.SobolFirstOrder(0) + e.SobolFirstOrder(1) + e.SobolInteraction()
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %g", sum)
	}
}

func TestSobolZeroVariance(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	e := Constant(b, 3)
	if e.SobolFirstOrder(0) != 0 || e.SobolTotal(1) != 0 || e.SobolInteraction() != 0 {
		t.Error("deterministic expansion should have zero indices")
	}
}

func TestSobolMatchesSampledVarianceDecomposition(t *testing.T) {
	// Cross-check S_T,0 against the sampling definition:
	// S_T,0 = E[Var(X|ξ1)]/Var(X) — estimated by conditioning on ξ1.
	b := NewHermiteBasis(2, 2)
	e := NewExpansion(b)
	rng := rand.New(rand.NewSource(5))
	for i := 1; i < b.Size(); i++ {
		e.Coeffs[i] = rng.NormFloat64()
	}
	want := e.SobolTotal(0)
	// Numerical: fix ξ1, variance over ξ0, average over ξ1.
	const outer, inner = 400, 400
	sumVar := 0.0
	xi := make([]float64, 2)
	for o := 0; o < outer; o++ {
		xi[1] = rng.NormFloat64()
		var s1, s2 float64
		for i := 0; i < inner; i++ {
			xi[0] = rng.NormFloat64()
			v := e.Eval(xi)
			s1 += v
			s2 += v * v
		}
		m := s1 / inner
		sumVar += s2/inner - m*m
	}
	got := sumVar / outer / e.Variance()
	if math.Abs(got-want) > 0.08 {
		t.Errorf("sampled S_T0 %g vs analytic %g", got, want)
	}
}

func TestCovarianceAndCorrelation(t *testing.T) {
	b := NewHermiteBasis(2, 2)
	x := NewExpansion(b)
	y := NewExpansion(b)
	x.Coeffs[1] = 3
	y.Coeffs[1] = 2
	y.Coeffs[2] = 2
	// Cov = 3·2 = 6; σx = 3, σy = √8.
	if c := Covariance(x, y); math.Abs(c-6) > 1e-12 {
		t.Errorf("cov %g", c)
	}
	wantCorr := 6 / (3 * math.Sqrt(8))
	if c := Correlation(x, y); math.Abs(c-wantCorr) > 1e-12 {
		t.Errorf("corr %g, want %g", c, wantCorr)
	}
	// Self-correlation is 1; correlation with a constant is 0.
	if c := Correlation(x, x); math.Abs(c-1) > 1e-12 {
		t.Errorf("self-corr %g", c)
	}
	if c := Correlation(x, Constant(b, 5)); c != 0 {
		t.Errorf("corr with constant %g", c)
	}
	// Sampling cross-check.
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	var sx, sy, sxy float64
	xi := make([]float64, 2)
	for i := 0; i < n; i++ {
		xi[0], xi[1] = rng.NormFloat64(), rng.NormFloat64()
		a, bv := x.Eval(xi), y.Eval(xi)
		sx += a
		sy += bv
		sxy += a * bv
	}
	cov := sxy/n - (sx/n)*(sy/n)
	if math.Abs(cov-6) > 0.15 {
		t.Errorf("sampled cov %g", cov)
	}
}
