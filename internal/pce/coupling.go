package pce

import (
	"fmt"
	"math"

	"opera/internal/sparse"
)

// uniTriple returns the univariate integral E[p_a(x)·p_b(x)·p_c(x)]
// under dimension d's measure, computed with a Gauss rule of exactly
// sufficient degree (hence exact up to roundoff).
func (b *Basis) uniTriple(d, a, bb, c int) float64 {
	n := (a+bb+c)/2 + 1
	rule, err := b.Families[d].Quadrature(n)
	if err != nil {
		panic(fmt.Sprintf("pce: quadrature failed: %v", err))
	}
	maxDeg := a
	if bb > maxDeg {
		maxDeg = bb
	}
	if c > maxDeg {
		maxDeg = c
	}
	vals := make([]float64, maxDeg+1)
	s := 0.0
	for q, x := range rule.Nodes {
		b.Families[d].EvalAll(x, vals)
		s += rule.Weights[q] * vals[a] * vals[bb] * vals[c]
	}
	return s
}

// uniTripleTable precomputes E[p_a p_b p_c] for all a,b,c ≤ deg in
// dimension d.
func (b *Basis) uniTripleTable(d, deg int) [][][]float64 {
	n := (3*deg)/2 + 1
	rule, err := b.Families[d].Quadrature(n)
	if err != nil {
		panic(fmt.Sprintf("pce: quadrature failed: %v", err))
	}
	vals := make([][]float64, len(rule.Nodes))
	for q, x := range rule.Nodes {
		vals[q] = b.Families[d].EvalAll(x, make([]float64, deg+1))
	}
	tbl := make([][][]float64, deg+1)
	for i := 0; i <= deg; i++ {
		tbl[i] = make([][]float64, deg+1)
		for j := 0; j <= deg; j++ {
			tbl[i][j] = make([]float64, deg+1)
			for k := 0; k <= deg; k++ {
				s := 0.0
				for q := range rule.Nodes {
					s += rule.Weights[q] * vals[q][i] * vals[q][j] * vals[q][k]
				}
				tbl[i][j][k] = s
			}
		}
	}
	return tbl
}

// uniLinearTable precomputes E[x·p_a p_b] for a,b ≤ deg in dimension d
// (the raw coordinate, not the degree-1 polynomial, so it is valid for
// families whose p₁ is not x itself).
func (b *Basis) uniLinearTable(d, deg int) [][]float64 {
	n := (2*deg+1)/2 + 1
	rule, err := b.Families[d].Quadrature(n)
	if err != nil {
		panic(fmt.Sprintf("pce: quadrature failed: %v", err))
	}
	vals := make([][]float64, len(rule.Nodes))
	for q, x := range rule.Nodes {
		vals[q] = b.Families[d].EvalAll(x, make([]float64, deg+1))
	}
	tbl := make([][]float64, deg+1)
	for i := 0; i <= deg; i++ {
		tbl[i] = make([]float64, deg+1)
		for j := 0; j <= deg; j++ {
			s := 0.0
			for q, x := range rule.Nodes {
				s += rule.Weights[q] * x * vals[q][i] * vals[q][j]
			}
			tbl[i][j] = s
		}
	}
	return tbl
}

// CouplingIdentity returns the B×B identity: E[ψ_i ψ_j] = δ_ij for the
// orthonormal basis. It is the coupling matrix of the mean (ξ-free)
// part of a stochastic operator.
func (b *Basis) CouplingIdentity() *sparse.Matrix {
	return sparse.Identity(b.Size())
}

// CouplingLinear returns T_d with T_d[i][j] = E[ξ_d·ψ_i·ψ_j] for the
// orthonormal basis — the Galerkin coupling of an operator term that is
// linear in the raw random coordinate ξ_d (the paper's Gg, Cc blocks in
// Eq. 20–21, up to the orthonormal scaling). The result is symmetric
// and very sparse: entries require the multi-indices to agree in every
// other dimension and differ by at most 1 in dimension d.
func (b *Basis) CouplingLinear(d int) *sparse.Matrix {
	if d < 0 || d >= b.Dim() {
		panic(fmt.Sprintf("pce: CouplingLinear dimension %d out of range %d", d, b.Dim()))
	}
	B := b.Size()
	lin := b.uniLinearTable(d, b.maxDeg)
	t := sparse.NewTriplet(B, B, 4*B)
	for i, ai := range b.Indices {
		for j, aj := range b.Indices {
			if !matchExcept(ai, aj, d) {
				continue
			}
			v := lin[ai[d]][aj[d]]
			if v == 0 {
				continue
			}
			// Other dimensions contribute Π E[p²] = Π NormSq.
			for dd, a := range ai {
				if dd != d {
					v *= b.Families[dd].NormSq(a)
				}
			}
			v /= math.Sqrt(b.normSq[i] * b.normSq[j])
			if math.Abs(v) > 1e-14 {
				t.Add(i, j, v)
			}
		}
	}
	return t.Compile()
}

// TripleTensor returns the full set of coupling matrices C_m with
// C_m[i][j] = E[ψ_m·ψ_i·ψ_j] (all orthonormal). C_0 is the identity.
// These drive the Galerkin projection for operators with a general
// (non-linear-in-ξ) chaos expansion and the in-basis product of two
// expansions.
func (b *Basis) TripleTensor() []*sparse.Matrix {
	B := b.Size()
	dim := b.Dim()
	tables := make([][][][]float64, dim)
	for d := 0; d < dim; d++ {
		tables[d] = b.uniTripleTable(d, b.maxDeg)
	}
	out := make([]*sparse.Matrix, B)
	for m, am := range b.Indices {
		t := sparse.NewTriplet(B, B, 4*B)
		for i, ai := range b.Indices {
			for j, aj := range b.Indices {
				v := 1.0
				for d := 0; d < dim; d++ {
					v *= tables[d][am[d]][ai[d]][aj[d]]
					if v == 0 {
						break
					}
				}
				if v == 0 {
					continue
				}
				v /= math.Sqrt(b.normSq[m] * b.normSq[i] * b.normSq[j])
				if math.Abs(v) > 1e-12 {
					t.Add(i, j, v)
				}
			}
		}
		out[m] = t.Compile()
	}
	return out
}

// matchExcept reports whether multi-indices a and b agree in every
// dimension except possibly d.
func matchExcept(a, b []int, d int) bool {
	for k := range a {
		if k != d && a[k] != b[k] {
			return false
		}
	}
	return true
}

// CouplingExpansion returns the Galerkin coupling matrix of a random
// coefficient given by its own orthonormal chaos expansion
// g(ξ) = Σ_m coeffs[m]·ψ_m:  T[i][j] = E[g·ψ_i·ψ_j] = Σ_m coeffs[m]·C_m.
// This is how operators with *nonlinear* parameter dependence enter the
// Galerkin system (the paper's §5 notes "there are no limitations on
// the specific model to be chosen"): expand the coefficient with
// ProjectFunc or a closed form, then couple it here. Linear models can
// use the cheaper CouplingLinear.
func (b *Basis) CouplingExpansion(coeffs []float64) *sparse.Matrix {
	if len(coeffs) != b.Size() {
		panic(fmt.Sprintf("pce: coefficient length %d != basis size %d", len(coeffs), b.Size()))
	}
	tensor := b.TripleTensor()
	acc := sparse.NewMatrix(b.Size(), b.Size())
	for m, c := range coeffs {
		if c == 0 {
			continue
		}
		acc = sparse.Add(1, acc, c, tensor[m])
	}
	return acc
}
