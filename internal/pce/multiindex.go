// Package pce implements multivariate polynomial chaos expansions (the
// paper's §4): total-degree truncated bases of products of univariate
// orthogonal polynomials over independent random dimensions, the
// triple-product (Galerkin coupling) tensors E[ψ_m ψ_i ψ_j], projection
// of known random quantities onto the basis, expansion arithmetic,
// moment extraction (Eq. 23) and probability density recovery via
// Gram–Charlier/Edgeworth series or direct sampling of the explicit
// polynomial representation.
package pce

import "fmt"

// TotalDegreeIndices enumerates all multi-indices α ∈ ℕ^dim with
// |α| ≤ order, graded by total degree; within one degree the first
// dimension's exponent descends first, matching the paper's order for
// two variables: (0,0), (1,0), (0,1), (2,0), (1,1), (0,2), …
// The count is C(dim+order, order).
func TotalDegreeIndices(dim, order int) [][]int {
	if dim <= 0 {
		panic(fmt.Sprintf("pce: dimension must be positive, got %d", dim))
	}
	if order < 0 {
		panic(fmt.Sprintf("pce: order must be nonnegative, got %d", order))
	}
	var out [][]int
	idx := make([]int, dim)
	var gen func(pos, remaining int)
	gen = func(pos, remaining int) {
		if pos == dim-1 {
			idx[pos] = remaining
			out = append(out, append([]int(nil), idx...))
			return
		}
		for v := remaining; v >= 0; v-- {
			idx[pos] = v
			gen(pos+1, remaining-v)
		}
	}
	for g := 0; g <= order; g++ {
		gen(0, g)
	}
	return out
}

// BasisSize returns C(dim+order, order), the number of total-degree
// multi-indices (the paper's N+1).
func BasisSize(dim, order int) int {
	// Compute the binomial coefficient without overflow for practical
	// sizes.
	n := 1
	for k := 1; k <= order; k++ {
		n = n * (dim + k) / k
	}
	return n
}

// indexDegree returns |α|.
func indexDegree(alpha []int) int {
	d := 0
	for _, a := range alpha {
		d += a
	}
	return d
}
