package pce

import (
	"fmt"
	"math"
	"math/rand"
)

// Expansion is a scalar random quantity represented by its coefficients
// against the *orthonormal* basis: X(ξ) = Σ_i Coeffs[i]·ψ_i(ξ). Node
// voltages at a fixed time point are Expansions; the stochastic Galerkin
// solver produces one coefficient vector per node per time step.
type Expansion struct {
	Basis  *Basis
	Coeffs []float64
}

// NewExpansion returns the zero expansion on b.
func NewExpansion(b *Basis) *Expansion {
	return &Expansion{Basis: b, Coeffs: make([]float64, b.Size())}
}

// Constant returns the deterministic expansion with value v.
func Constant(b *Basis, v float64) *Expansion {
	e := NewExpansion(b)
	e.Coeffs[0] = v
	return e
}

// FromCoeffs wraps a coefficient slice (not copied).
func FromCoeffs(b *Basis, c []float64) *Expansion {
	if len(c) != b.Size() {
		panic(fmt.Sprintf("pce: coefficient length %d != basis size %d", len(c), b.Size()))
	}
	return &Expansion{Basis: b, Coeffs: c}
}

// Mean returns E[X] = c₀ (ψ₀ ≡ 1 for every Askey family measure).
func (e *Expansion) Mean() float64 { return e.Coeffs[0] }

// Variance returns Var(X) = Σ_{i≥1} c_i² — the orthonormal form of the
// paper's Eq. 23.
func (e *Expansion) Variance() float64 {
	v := 0.0
	for _, c := range e.Coeffs[1:] {
		v += c * c
	}
	return v
}

// Std returns the standard deviation.
func (e *Expansion) Std() float64 { return math.Sqrt(e.Variance()) }

// Eval evaluates the expansion at a realization ξ.
func (e *Expansion) Eval(xi []float64) float64 {
	psi := make([]float64, e.Basis.Size())
	e.Basis.EvalAll(xi, psi)
	s := 0.0
	for i, c := range e.Coeffs {
		s += c * psi[i]
	}
	return s
}

// Add returns X + Y (same basis required).
func (e *Expansion) Add(o *Expansion) *Expansion {
	e.checkSameBasis(o)
	r := NewExpansion(e.Basis)
	for i := range r.Coeffs {
		r.Coeffs[i] = e.Coeffs[i] + o.Coeffs[i]
	}
	return r
}

// Sub returns X − Y.
func (e *Expansion) Sub(o *Expansion) *Expansion {
	e.checkSameBasis(o)
	r := NewExpansion(e.Basis)
	for i := range r.Coeffs {
		r.Coeffs[i] = e.Coeffs[i] - o.Coeffs[i]
	}
	return r
}

// Scale returns a·X.
func (e *Expansion) Scale(a float64) *Expansion {
	r := NewExpansion(e.Basis)
	for i := range r.Coeffs {
		r.Coeffs[i] = a * e.Coeffs[i]
	}
	return r
}

// Mul returns the Galerkin product of X and Y projected back onto the
// basis: (XY)_k = Σ_ij x_i y_j E[ψ_i ψ_j ψ_k]. triples must come from
// Basis.TripleTensor (it is accepted as an argument so callers amortize
// the tensor across many products).
func (e *Expansion) Mul(o *Expansion, triples []*Matrix3) *Expansion {
	e.checkSameBasis(o)
	r := NewExpansion(e.Basis)
	for k, t := range triples {
		s := 0.0
		for _, ent := range t.Entries {
			s += e.Coeffs[ent.I] * o.Coeffs[ent.J] * ent.V
		}
		r.Coeffs[k] = s
	}
	return r
}

// Matrix3 is a compact COO view of one slice of the triple tensor,
// produced by TripleEntries.
type Matrix3 struct {
	Entries []TripleEntry
}

// TripleEntry is one nonzero E[ψ_I ψ_J ψ_k] of a tensor slice.
type TripleEntry struct {
	I, J int
	V    float64
}

// TripleEntries converts the sparse coupling matrices from TripleTensor
// into flat entry lists for fast expansion products.
func TripleEntries(b *Basis) []*Matrix3 {
	mats := b.TripleTensor()
	out := make([]*Matrix3, len(mats))
	for k, m := range mats {
		var ents []TripleEntry
		for j := 0; j < m.Cols; j++ {
			for p := m.Colp[j]; p < m.Colp[j+1]; p++ {
				ents = append(ents, TripleEntry{I: m.Rowi[p], J: j, V: m.Val[p]})
			}
		}
		out[k] = &Matrix3{Entries: ents}
	}
	return out
}

// Moment returns the raw moment E[Xᵏ], computed by full tensor Gauss
// quadrature of adequate degree (exact for the polynomial X up to
// roundoff).
func (e *Expansion) Moment(k int) float64 {
	if k < 0 {
		panic("pce: negative moment order")
	}
	if k == 0 {
		return 1
	}
	npts := (k*e.Basis.Order)/2 + 1
	if npts < 2 {
		npts = 2
	}
	return e.integrate(func(x float64) float64 { return math.Pow(x, float64(k)) }, npts)
}

// CentralMoment returns E[(X−µ)ᵏ].
func (e *Expansion) CentralMoment(k int) float64 {
	mu := e.Mean()
	npts := (k*e.Basis.Order)/2 + 1
	if npts < 2 {
		npts = 2
	}
	return e.integrate(func(x float64) float64 { return math.Pow(x-mu, float64(k)) }, npts)
}

// Skewness returns the standardized third central moment.
func (e *Expansion) Skewness() float64 {
	s := e.Std()
	if s == 0 {
		return 0
	}
	return e.CentralMoment(3) / (s * s * s)
}

// ExcessKurtosis returns E[(X−µ)⁴]/σ⁴ − 3.
func (e *Expansion) ExcessKurtosis() float64 {
	v := e.Variance()
	if v == 0 {
		return 0
	}
	return e.CentralMoment(4)/(v*v) - 3
}

// integrate computes E[g(X)] with tensor quadrature at npts points per
// dimension; above a budget of quadrature points (high-dimensional
// spatial bases) it falls back to deterministic quasi-random sampling
// of the expansion, which converges as 1/√N but does not explode
// combinatorially.
func (e *Expansion) integrate(g func(float64) float64, npts int) float64 {
	b := e.Basis
	dim := b.Dim()
	total := 1
	for d := 0; d < dim; d++ {
		total *= npts
		if total > 1<<20 {
			return e.integrateSampled(g)
		}
	}
	nodes := make([][]float64, dim)
	weights := make([][]float64, dim)
	for d := 0; d < dim; d++ {
		r, err := b.Families[d].Quadrature(npts)
		if err != nil {
			panic(fmt.Sprintf("pce: moment quadrature: %v", err))
		}
		nodes[d] = r.Nodes
		weights[d] = r.Weights
	}
	ev := NewEvaluator(b)
	psi := make([]float64, b.Size())
	xi := make([]float64, dim)
	idx := make([]int, dim)
	acc := 0.0
	for {
		w := 1.0
		for d := 0; d < dim; d++ {
			xi[d] = nodes[d][idx[d]]
			w *= weights[d][idx[d]]
		}
		ev.EvalAll(xi, psi)
		x := 0.0
		for i, c := range e.Coeffs {
			x += c * psi[i]
		}
		acc += w * g(x)
		d := 0
		for ; d < dim; d++ {
			idx[d]++
			if idx[d] < npts {
				break
			}
			idx[d] = 0
		}
		if d == dim {
			break
		}
	}
	return acc
}

// Sample draws n realizations of X by sampling ξ from the basis
// measures and evaluating the explicit polynomial — the cheap
// alternative to Monte Carlo on the full system that the paper's
// distribution figures rely on.
func (e *Expansion) Sample(rng *rand.Rand, n int) []float64 {
	b := e.Basis
	ev := NewEvaluator(b)
	psi := make([]float64, b.Size())
	xi := make([]float64, b.Dim())
	out := make([]float64, n)
	for s := 0; s < n; s++ {
		for d := range xi {
			xi[d] = b.Families[d].Sample(rng)
		}
		ev.EvalAll(xi, psi)
		x := 0.0
		for i, c := range e.Coeffs {
			x += c * psi[i]
		}
		out[s] = x
	}
	return out
}

// integrateSampled estimates E[g(X)] from 2·10⁵ seeded samples.
func (e *Expansion) integrateSampled(g func(float64) float64) float64 {
	const n = 200000
	rng := rand.New(rand.NewSource(0x09e2a))
	xs := e.Sample(rng, n)
	s := 0.0
	for _, x := range xs {
		s += g(x)
	}
	return s / n
}

func (e *Expansion) checkSameBasis(o *Expansion) {
	if e.Basis != o.Basis {
		panic("pce: expansions are on different bases")
	}
}
