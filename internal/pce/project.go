package pce

import (
	"fmt"
	"math"
)

// ProjectFunc computes the orthonormal chaos coefficients of an
// arbitrary function f(ξ): c_i = E[f·ψ_i], by full tensor-product Gauss
// quadrature with npts points per dimension. Choose npts so that
// f·ψ_i is integrated accurately (for polynomial f of degree q, npts ≥
// (q+Order)/2 + 1). Cost grows as npts^dim; intended for the small
// dimension counts (2–4) typical of inter-die variation models.
func (b *Basis) ProjectFunc(f func(xi []float64) float64, npts int) ([]float64, error) {
	dim := b.Dim()
	rules := make([][]float64, dim)   // nodes
	weights := make([][]float64, dim) // weights
	for d := 0; d < dim; d++ {
		r, err := b.Families[d].Quadrature(npts)
		if err != nil {
			return nil, fmt.Errorf("pce: ProjectFunc quadrature: %w", err)
		}
		rules[d] = r.Nodes
		weights[d] = r.Weights
	}
	coeffs := make([]float64, b.Size())
	xi := make([]float64, dim)
	idx := make([]int, dim)
	psi := make([]float64, b.Size())
	ev := NewEvaluator(b)
	for {
		w := 1.0
		for d := 0; d < dim; d++ {
			xi[d] = rules[d][idx[d]]
			w *= weights[d][idx[d]]
		}
		fv := f(xi)
		ev.EvalAll(xi, psi)
		for i := range coeffs {
			coeffs[i] += w * fv * psi[i]
		}
		// Advance the tensor-grid counter.
		d := 0
		for ; d < dim; d++ {
			idx[d]++
			if idx[d] < npts {
				break
			}
			idx[d] = 0
		}
		if d == dim {
			break
		}
	}
	return coeffs, nil
}

// ProjectVariable returns the orthonormal coefficients of the raw
// coordinate function ξ_d itself. For a Gaussian (Hermite) dimension
// this is the unit vector at the first-order index; for asymmetric
// measures (Gamma, Beta) the mean also appears at index 0.
func (b *Basis) ProjectVariable(d int) []float64 {
	if d < 0 || d >= b.Dim() {
		panic(fmt.Sprintf("pce: ProjectVariable dimension %d out of range %d", d, b.Dim()))
	}
	lin := b.uniLinearTable(d, b.maxDeg)
	coeffs := make([]float64, b.Size())
	for i, ai := range b.Indices {
		ok := true
		for dd, a := range ai {
			if dd != d && a != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// c_i = E[x·p_{α_d}]/‖Ψ_i‖ (other dims contribute E[p_0] = 1).
		coeffs[i] = lin[ai[d]][0] / math.Sqrt(b.normSq[i])
	}
	return coeffs
}

// LognormalCoefficients returns the orthonormal Hermite chaos
// coefficients of exp(µ + σ·ξ_d) for a Gaussian dimension d: the
// classical closed form E[e^{µ+σξ}·He_k(ξ)]/k! = e^{µ+σ²/2}·σ^k/k!,
// i.e. c_k = e^{µ+σ²/2}·σ^k/√(k!) in orthonormal coordinates. This is
// the representation the §5.1 special case uses for leakage currents
// under threshold-voltage variation. Panics if dimension d is not a
// Hermite family.
func (b *Basis) LognormalCoefficients(d int, mu, sigma float64) []float64 {
	if d < 0 || d >= b.Dim() {
		panic(fmt.Sprintf("pce: LognormalCoefficients dimension %d out of range %d", d, b.Dim()))
	}
	if b.Families[d].Name() != "hermite" {
		panic("pce: LognormalCoefficients requires a Gaussian (Hermite) dimension")
	}
	scale := math.Exp(mu + sigma*sigma/2)
	coeffs := make([]float64, b.Size())
	for i, ai := range b.Indices {
		ok := true
		for dd, a := range ai {
			if dd != d && a != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		k := ai[d]
		coeffs[i] = scale * math.Pow(sigma, float64(k)) / math.Sqrt(factorialF(k))
	}
	return coeffs
}

func factorialF(k int) float64 {
	v := 1.0
	for i := 2; i <= k; i++ {
		v *= float64(i)
	}
	return v
}
