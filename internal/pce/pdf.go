package pce

import "math"

// GramCharlierPDF returns the Gram–Charlier Type-A series density built
// from a mean, standard deviation, skewness and excess kurtosis (paper
// §5: "expansions like Gram-Charlier series or Edgeworth series could
// be used to obtain the probability density function of x(t,ξ)
// directly"). The returned function evaluates the approximate density;
// it may go slightly negative in the tails, which is inherent to the
// series.
func GramCharlierPDF(mean, std, skew, exKurt float64) func(float64) float64 {
	return func(x float64) float64 {
		if std <= 0 {
			return 0
		}
		z := (x - mean) / std
		he3 := z*z*z - 3*z
		he4 := z*z*z*z - 6*z*z + 3
		phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
		return phi / std * (1 + skew/6*he3 + exKurt/24*he4)
	}
}

// EdgeworthPDF returns the Edgeworth series density, which augments
// Gram–Charlier with the skew² correction term (He₆), giving a proper
// asymptotic expansion.
func EdgeworthPDF(mean, std, skew, exKurt float64) func(float64) float64 {
	return func(x float64) float64 {
		if std <= 0 {
			return 0
		}
		z := (x - mean) / std
		z2 := z * z
		he3 := z*z2 - 3*z
		he4 := z2*z2 - 6*z2 + 3
		he6 := z2*z2*z2 - 15*z2*z2 + 45*z2 - 15
		phi := math.Exp(-z2/2) / math.Sqrt(2*math.Pi)
		return phi / std * (1 + skew/6*he3 + exKurt/24*he4 + skew*skew/72*he6)
	}
}

// PDF returns the Gram–Charlier density of the expansion, using its
// quadrature-exact moments.
func (e *Expansion) PDF() func(float64) float64 {
	return GramCharlierPDF(e.Mean(), e.Std(), e.Skewness(), e.ExcessKurtosis())
}
