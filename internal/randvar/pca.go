package randvar

import (
	"fmt"
	"math"
)

// PCA holds a principal-component decomposition of a covariance matrix
// Σ = V·Λ·Vᵀ, giving the linear map x = µ + V·√Λ·z that turns i.i.d.
// standard normal z into correlated Gaussians with covariance Σ. This
// implements the decorrelation step of the paper's §5: correlated
// process parameters become independent chaos dimensions.
type PCA struct {
	Dim    int
	Mean   []float64
	Vecs   [][]float64 // columns are eigenvectors
	Lambda []float64   // eigenvalues, descending
}

// NewPCA decomposes the symmetric positive semidefinite covariance
// matrix cov (dense, row-major). Negative eigenvalues beyond roundoff
// cause an error; tiny negatives are clamped to zero.
func NewPCA(mean []float64, cov [][]float64) (*PCA, error) {
	n := len(cov)
	if len(mean) != n {
		return nil, fmt.Errorf("randvar: mean length %d != covariance size %d", len(mean), n)
	}
	for i := range cov {
		if len(cov[i]) != n {
			return nil, fmt.Errorf("randvar: covariance is ragged at row %d", i)
		}
		for j := range cov[i] {
			if math.Abs(cov[i][j]-cov[j][i]) > 1e-10*(1+math.Abs(cov[i][j])) {
				return nil, fmt.Errorf("randvar: covariance not symmetric at (%d,%d)", i, j)
			}
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = append([]float64(nil), cov[i]...)
	}
	vals, vecs := jacobiEigen(a)
	// Sort descending by eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if vals[idx[j]] > vals[idx[i]] {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
	}
	scale := 0.0
	for _, v := range vals {
		if math.Abs(v) > scale {
			scale = math.Abs(v)
		}
	}
	lambda := make([]float64, n)
	cols := make([][]float64, n)
	for k, id := range idx {
		v := vals[id]
		if v < 0 {
			if v < -1e-9*scale {
				return nil, fmt.Errorf("randvar: covariance has negative eigenvalue %g", v)
			}
			v = 0
		}
		lambda[k] = v
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = vecs[i][id]
		}
		cols[k] = col
	}
	m := append([]float64(nil), mean...)
	return &PCA{Dim: n, Mean: m, Vecs: cols, Lambda: lambda}, nil
}

// Transform maps i.i.d. standard normal z to correlated x with the
// decomposed mean and covariance.
func (p *PCA) Transform(z []float64) []float64 {
	if len(z) != p.Dim {
		panic(fmt.Sprintf("randvar: Transform input length %d != %d", len(z), p.Dim))
	}
	x := append([]float64(nil), p.Mean...)
	for k := 0; k < p.Dim; k++ {
		s := math.Sqrt(p.Lambda[k]) * z[k]
		if s == 0 {
			continue
		}
		for i := 0; i < p.Dim; i++ {
			x[i] += p.Vecs[k][i] * s
		}
	}
	return x
}

// jacobiEigen diagonalizes a dense symmetric matrix in place with the
// cyclic Jacobi rotation method, returning eigenvalues and the matrix of
// eigenvectors (columns). Adequate for the small parameter-covariance
// matrices of variation models.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if a[p][q] == 0 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = c*akp - s*akq
					a[k][q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = c*apk - s*aqk
					a[q][k] = s*apk + c*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, v
}

// LatinHypercubeNormal draws n quasi-stratified standard normal samples
// per dimension: each dimension's unit interval is divided into n
// strata, one uniform draw per stratum, randomly permuted across
// samples, then mapped through the normal quantile function. Reduces
// Monte Carlo variance for smooth integrands.
func LatinHypercubeNormal(rng interface {
	Float64() float64
	Perm(int) []int
}, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
	}
	for d := 0; d < dim; d++ {
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			u := (float64(perm[i]) + rng.Float64()) / float64(n)
			out[i][d] = NormalQuantile(u)
		}
	}
	return out
}

// NormalQuantile is the inverse standard normal CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
