package randvar

import (
	"math"
	"math/rand"
	"testing"
)

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r Running
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
		r.Push(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	n := float64(len(xs))
	if math.Abs(r.Mean()-mean) > 1e-10 {
		t.Errorf("mean %g vs %g", r.Mean(), mean)
	}
	if math.Abs(r.Variance()-m2/n) > 1e-9 {
		t.Errorf("var %g vs %g", r.Variance(), m2/n)
	}
	wantSkew := math.Sqrt(n) * m3 / math.Pow(m2, 1.5)
	if math.Abs(r.Skewness()-wantSkew) > 1e-8 {
		t.Errorf("skew %g vs %g", r.Skewness(), wantSkew)
	}
	wantKurt := n*m4/(m2*m2) - 3
	if math.Abs(r.ExcessKurtosis()-wantKurt) > 1e-7 {
		t.Errorf("kurt %g vs %g", r.ExcessKurtosis(), wantKurt)
	}
}

func TestRunningMinMax(t *testing.T) {
	var r Running
	for _, x := range []float64{3, -1, 7, 2} {
		r.Push(x)
	}
	if r.Min() != -1 || r.Max() != 7 {
		t.Errorf("min %g max %g", r.Min(), r.Max())
	}
	if r.N() != 4 {
		t.Errorf("n = %d", r.N())
	}
}

func TestRunningGaussianMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var r Running
	for i := 0; i < 200000; i++ {
		r.Push(rng.NormFloat64())
	}
	if math.Abs(r.Mean()) > 0.01 {
		t.Errorf("mean %g", r.Mean())
	}
	if math.Abs(r.Variance()-1) > 0.02 {
		t.Errorf("var %g", r.Variance())
	}
	if math.Abs(r.Skewness()) > 0.05 {
		t.Errorf("skew %g", r.Skewness())
	}
	if math.Abs(r.ExcessKurtosis()) > 0.1 {
		t.Errorf("kurt %g", r.ExcessKurtosis())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Push(float64(i) + 0.5)
	}
	h.Push(-5)  // clamps to bin 0
	h.Push(100) // clamps to last bin
	if h.Total() != 12 {
		t.Errorf("total %d", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("edge bins %d %d", h.Counts[0], h.Counts[9])
	}
	pct := h.Percent()
	sum := 0.0
	for _, p := range pct {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percent sums to %g", sum)
	}
	centers := h.BinCenters()
	if centers[0] != 0.5 || centers[9] != 9.5 {
		t.Errorf("centers %v", centers)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 4000)
	b := make([]float64, 4000)
	c := make([]float64, 4000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64() + 2 // shifted
	}
	same := KolmogorovSmirnov(a, b)
	diff := KolmogorovSmirnov(a, c)
	if same > 0.05 {
		t.Errorf("KS of identical distributions %g", same)
	}
	if diff < 0.5 {
		t.Errorf("KS of shifted distributions %g", diff)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %g", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %g", q)
	}
}

func TestPCARoundTrip(t *testing.T) {
	// Build a known covariance, sample through PCA, verify empirical
	// covariance matches.
	cov := [][]float64{
		{4, 1.2, 0.5},
		{1.2, 2, -0.3},
		{0.5, -0.3, 1},
	}
	mean := []float64{1, -2, 0.5}
	p, err := NewPCA(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	const n = 300000
	sum := make([]float64, 3)
	cc := make([][]float64, 3)
	for i := range cc {
		cc[i] = make([]float64, 3)
	}
	z := make([]float64, 3)
	for s := 0; s < n; s++ {
		for d := range z {
			z[d] = rng.NormFloat64()
		}
		x := p.Transform(z)
		for i := 0; i < 3; i++ {
			sum[i] += x[i]
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				cc[i][j] += (x[i] - mean[i]) * (x[j] - mean[j])
			}
		}
	}
	for i := 0; i < 3; i++ {
		if math.Abs(sum[i]/n-mean[i]) > 0.02 {
			t.Errorf("mean[%d] = %g, want %g", i, sum[i]/n, mean[i])
		}
		for j := 0; j < 3; j++ {
			if math.Abs(cc[i][j]/n-cov[i][j]) > 0.05 {
				t.Errorf("cov[%d][%d] = %g, want %g", i, j, cc[i][j]/n, cov[i][j])
			}
		}
	}
}

func TestPCAEigenvaluesOfDiagonal(t *testing.T) {
	p, err := NewPCA([]float64{0, 0}, [][]float64{{9, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Lambda[0]-9) > 1e-10 || math.Abs(p.Lambda[1]-1) > 1e-10 {
		t.Errorf("eigenvalues %v", p.Lambda)
	}
}

func TestPCARejectsAsymmetric(t *testing.T) {
	if _, err := NewPCA([]float64{0, 0}, [][]float64{{1, 0.5}, {0.2, 1}}); err == nil {
		t.Error("expected error for asymmetric covariance")
	}
}

func TestPCARejectsIndefinite(t *testing.T) {
	if _, err := NewPCA([]float64{0, 0}, [][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Error("expected error for indefinite covariance")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.8413: 0.9998, // ≈ 1
		0.9772: 1.9991, // ≈ 2
		0.0228: -1.9991,
	}
	for p, want := range cases {
		if got := NormalQuantile(p); math.Abs(got-want) > 5e-3 {
			t.Errorf("Phi^-1(%g) = %g, want ≈ %g", p, got, want)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be infinite")
	}
}

func TestLatinHypercubeNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, dim = 1000, 3
	xs := LatinHypercubeNormal(rng, n, dim)
	for d := 0; d < dim; d++ {
		var r Running
		for i := 0; i < n; i++ {
			r.Push(xs[i][d])
		}
		// LHS matches moments much faster than plain MC.
		if math.Abs(r.Mean()) > 0.01 {
			t.Errorf("dim %d mean %g", d, r.Mean())
		}
		if math.Abs(r.Variance()-1) > 0.05 {
			t.Errorf("dim %d var %g", d, r.Variance())
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(42, 0)
	b := NewStream(42, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different ids produced %d identical draws", same)
	}
	// Same seed+id is reproducible.
	c := NewStream(42, 0)
	d := NewStream(42, 0)
	for i := 0; i < 100; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("same stream not reproducible")
		}
	}
}
