package randvar

import (
	"encoding/json"
	"math"
	"testing"
)

// A Running snapshot must survive a JSON round trip bit-exactly and
// continue accumulating as if never interrupted — the foundation of the
// Monte Carlo checkpoint/resume bit-identity contract.
func TestRunningStateRoundTrip(t *testing.T) {
	rng := NewStream(7, 0)
	var full, prefix Running
	const n, cut = 1000, 437
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e-3
	}
	for _, x := range xs {
		full.Push(x)
	}
	for _, x := range xs[:cut] {
		prefix.Push(x)
	}

	b, err := json.Marshal(prefix.State())
	if err != nil {
		t.Fatal(err)
	}
	var st RunningState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	if st != prefix.State() {
		t.Fatalf("state changed across JSON round trip: %+v != %+v", st, prefix.State())
	}

	var resumed Running
	resumed.Restore(st)
	for _, x := range xs[cut:] {
		resumed.Push(x)
	}
	if math.Float64bits(resumed.Mean()) != math.Float64bits(full.Mean()) ||
		math.Float64bits(resumed.Variance()) != math.Float64bits(full.Variance()) ||
		math.Float64bits(resumed.Skewness()) != math.Float64bits(full.Skewness()) ||
		math.Float64bits(resumed.ExcessKurtosis()) != math.Float64bits(full.ExcessKurtosis()) ||
		resumed.N() != full.N() || resumed.Min() != full.Min() || resumed.Max() != full.Max() {
		t.Fatalf("resumed accumulation diverged: %+v != %+v", resumed.State(), full.State())
	}
}
