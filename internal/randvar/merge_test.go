package randvar

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// mergeTolerance is the agreement demanded between a merged set of
// shards and one serial accumulator over the same data.
const mergeTolerance = 1e-12

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d
	}
	return d / scale
}

// TestMergeMatchesSerial is the property test of the satellite task:
// split a random sample into random shards, accumulate each shard
// separately, merge in order, and compare every derived statistic
// against one serial accumulator to 1e-12.
func TestMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	for trial := 0; trial < 50; trial++ {
		n := 50 + rng.Intn(2000)
		// Mix of scales and offsets so the higher moments are exercised
		// away from zero.
		mean := rng.NormFloat64() * 10
		scale := math.Exp(rng.NormFloat64())
		xs := make([]float64, n)
		for i := range xs {
			x := rng.NormFloat64()
			xs[i] = mean + scale*(x+0.3*x*x) // skewed
		}

		var serial Running
		for _, x := range xs {
			serial.Push(x)
		}

		// Random shard boundaries (including possibly empty shards).
		shards := 1 + rng.Intn(8)
		cuts := make([]int, shards+1)
		cuts[shards] = n
		for i := 1; i < shards; i++ {
			cuts[i] = rng.Intn(n + 1)
		}
		for i := 1; i < shards; i++ { // sort the interior cuts
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		var merged Running
		for s := 0; s < shards; s++ {
			var shard Running
			for _, x := range xs[cuts[s]:cuts[s+1]] {
				shard.Push(x)
			}
			merged.Merge(&shard)
		}

		checks := []struct {
			name     string
			got, ref float64
		}{
			{"mean", merged.Mean(), serial.Mean()},
			{"variance", merged.Variance(), serial.Variance()},
			{"skewness", merged.Skewness(), serial.Skewness()},
			{"kurtosis", merged.ExcessKurtosis(), serial.ExcessKurtosis()},
			{"min", merged.Min(), serial.Min()},
			{"max", merged.Max(), serial.Max()},
		}
		if merged.N() != serial.N() {
			t.Fatalf("trial %d: N = %d, want %d", trial, merged.N(), serial.N())
		}
		for _, c := range checks {
			if relDiff(c.got, c.ref) > mergeTolerance {
				t.Fatalf("trial %d (%d samples, %d shards): %s merged %.17g vs serial %.17g (rel %g)",
					trial, n, shards, c.name, c.got, c.ref, relDiff(c.got, c.ref))
			}
		}
	}
}

func TestMergeEmptyAndSelfCases(t *testing.T) {
	var a, empty Running
	a.Push(1)
	a.Push(2)
	a.Push(4)
	want := a

	// Merging an empty shard is a no-op.
	a.Merge(&empty)
	if a != want {
		t.Errorf("merge of empty shard changed the accumulator: %+v vs %+v", a, want)
	}
	// Merging into an empty accumulator copies.
	var b Running
	b.Merge(&want)
	if b != want {
		t.Errorf("merge into empty accumulator: %+v vs %+v", b, want)
	}
	// Reset clears.
	b.Reset()
	if b.N() != 0 || b.Mean() != 0 || b.Variance() != 0 {
		t.Errorf("Reset left state: %+v", b)
	}
}

// TestMergeOrderIsDeterministic documents the contract the parallel
// Monte Carlo merge relies on: the same shards merged in the same order
// give bit-identical accumulators, run to run.
func TestMergeOrderIsDeterministic(t *testing.T) {
	build := func() Running {
		rng := rand.New(rand.NewSource(7))
		var total Running
		for s := 0; s < 16; s++ {
			var shard Running
			for i := 0; i < 100; i++ {
				shard.Push(rng.NormFloat64())
			}
			total.Merge(&shard)
		}
		return total
	}
	a, b := build(), build()
	if a != b {
		t.Errorf("identical merge sequences disagree: %+v vs %+v", a, b)
	}
}

func BenchmarkRunningMerge(b *testing.B) {
	shards := make([]Running, 64)
	rng := rand.New(rand.NewSource(1))
	for s := range shards {
		for i := 0; i < 1000; i++ {
			shards[s].Push(rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total Running
		for s := range shards {
			total.Merge(&shards[s])
		}
		if total.N() == 0 {
			b.Fatal("empty merge")
		}
	}
}

func ExampleRunning_Merge() {
	var left, right Running
	for i := 0; i < 4; i++ {
		left.Push(float64(i))
	}
	for i := 4; i < 8; i++ {
		right.Push(float64(i))
	}
	left.Merge(&right)
	fmt.Printf("n=%d mean=%.1f\n", left.N(), left.Mean())
	// Output: n=8 mean=3.5
}
