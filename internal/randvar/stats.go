// Package randvar supplies the probabilistic substrate for OPERA's
// Monte Carlo baseline and its validation: reproducible RNG streams,
// streaming (Welford) moment accumulators, histograms, two-sample
// Kolmogorov–Smirnov distance, principal-component decorrelation of
// correlated Gaussian parameter vectors (paper §5: correlated variations
// "can always be transformed into a set of uncorrelated random variables
// by an orthogonal transformation technique like principal component
// analysis"), and Latin hypercube sampling.
package randvar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewStream returns a deterministic RNG stream. Distinct ids derived
// from one seed give independent, reproducible streams for parallel
// Monte Carlo.
func NewStream(seed, id int64) *rand.Rand {
	// SplitMix-style mixing to decorrelate sequential ids.
	z := uint64(seed) + uint64(id)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Running accumulates streaming moments with Welford's algorithm; it is
// numerically stable over millions of samples.
type Running struct {
	n        int
	mean, m2 float64
	m3, m4   float64
	min, max float64
}

// Push adds one observation.
func (r *Running) Push(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	n1 := float64(r.n)
	r.n++
	n := float64(r.n)
	delta := x - r.mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	r.mean += deltaN
	r.m4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*r.m2 - 4*deltaN*r.m3
	r.m3 += term1*deltaN*(n-2) - 3*deltaN*r.m2
	r.m2 += term1
}

// Merge folds another accumulator into r, as if every observation
// pushed into o had been pushed into r. It uses the Chan/Pébay pairwise
// combination formulas through the fourth central moment, which are
// numerically stable for shards of any relative size. Deterministic
// parallel Monte Carlo relies on merging shards in ascending shard
// order: the combination is exact in real arithmetic but, like any
// floating-point sum, associates — a fixed merge order makes the result
// independent of worker count.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	na, nb := float64(r.n), float64(o.n)
	n := na + nb
	delta := o.mean - r.mean
	d2 := delta * delta

	m2 := r.m2 + o.m2 + d2*na*nb/n
	m3 := r.m3 + o.m3 +
		delta*d2*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.m2-nb*r.m2)/n
	m4 := r.m4 + o.m4 +
		d2*d2*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*d2*(na*na*o.m2+nb*nb*r.m2)/(n*n) +
		4*delta*(na*o.m3-nb*r.m3)/n

	r.mean += delta * nb / n
	r.m2, r.m3, r.m4 = m2, m3, m4
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// Reset clears the accumulator for reuse.
func (r *Running) Reset() { *r = Running{} }

// RunningState is the exported snapshot of a Running accumulator, used
// by checkpoint/resume to persist in-flight Monte Carlo moments. Fields
// mirror the internal Welford state exactly; encoding/json round-trips
// float64 values bit-exactly (shortest-representation encoding), so a
// state written to disk and restored continues the accumulation with
// no numerical drift.
type RunningState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	M3   float64 `json:"m3"`
	M4   float64 `json:"m4"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State captures the accumulator for serialization.
func (r *Running) State() RunningState {
	return RunningState{N: r.n, Mean: r.mean, M2: r.m2, M3: r.m3, M4: r.m4, Min: r.min, Max: r.max}
}

// Restore overwrites the accumulator from a snapshot, as if every
// observation the snapshot summarizes had been pushed into r.
func (r *Running) Restore(s RunningState) {
	r.n, r.mean, r.m2, r.m3, r.m4, r.min, r.max = s.N, s.Mean, s.M2, s.M3, s.M4, s.Min, s.Max
}

// N returns the sample count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population (biased, divide-by-n) variance, which
// is the estimator the paper's Monte Carlo comparison uses.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the unbiased (divide-by-n−1) variance.
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Skewness returns the sample skewness.
func (r *Running) Skewness() float64 {
	if r.m2 == 0 {
		return 0
	}
	n := float64(r.n)
	return math.Sqrt(n) * r.m3 / math.Pow(r.m2, 1.5)
}

// ExcessKurtosis returns the sample excess kurtosis.
func (r *Running) ExcessKurtosis() float64 {
	if r.m2 == 0 {
		return 0
	}
	n := float64(r.n)
	return n*r.m4/(r.m2*r.m2) - 3
}

// Min and Max return the observed extremes.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation.
func (r *Running) Max() float64 { return r.max }

// Histogram is a fixed-bin histogram over [Lo, Hi); out-of-range
// observations clamp into the edge bins so mass is never lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(hi > lo) || bins < 1 {
		panic(fmt.Sprintf("randvar: invalid histogram [%g,%g) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Push adds one observation.
func (h *Histogram) Push(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// PushAll adds a batch.
func (h *Histogram) PushAll(xs []float64) {
	for _, x := range xs {
		h.Push(x)
	}
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Percent returns each bin's share of the total in percent (the y-axis
// of the paper's Figures 1–2, "% of occurrences").
func (h *Histogram) Percent() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = 100 * float64(c) / float64(h.total)
	}
	return out
}

// BinCenters returns the center abscissa of each bin.
func (h *Histogram) BinCenters() []float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Lo + (float64(i)+0.5)*w
	}
	return out
}

// KolmogorovSmirnov returns the two-sample KS statistic
// sup |F̂_a − F̂_b|. It is used to compare OPERA-sampled voltage
// distributions with Monte Carlo ones.
func KolmogorovSmirnov(a, b []float64) float64 {
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	i, j := 0, 0
	d := 0.0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		if as[i] <= bs[j] {
			i++
		} else {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on the sorted order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("randvar: Quantile of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
