// Package report renders experiment outputs in the shapes the paper
// publishes: the Table 1 grid-by-grid comparison (sizes, accuracy
// columns, CPU times, speedups) and the Figures 1–2 voltage-drop
// distribution plots ("% of occurrences" vs "voltage drop as % VDD") as
// aligned text tables, ASCII charts and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a formatted row; values are rendered with %v unless
// they are float64 (rendered %.4g) or string.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Write renders the table with column alignment.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	total := len(t.Headers)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	all := append([][]string{t.Headers}, t.Rows...)
	for _, row := range all {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series is a named (x, y) sequence, the unit of the figure outputs.
type Series struct {
	Name string
	X, Y []float64
}

// WriteSeriesCSV renders several series sharing an x-axis as CSV
// columns: x, name1, name2, …  All series must share X.
func WriteSeriesCSV(w io.Writer, xLabel string, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	n := len(series[0].X)
	for _, s := range series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("report: series %q has mismatched lengths", s.Name)
		}
	}
	head := []string{xLabel}
	for _, s := range series {
		head = append(head, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		cells := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			cells = append(cells, fmt.Sprintf("%g", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// AsciiChart renders series as a side-by-side bar chart in the style of
// the paper's distribution figures: one row per x bin, bars scaled to
// width columns. Two series render as paired glyphs ('#' and 'o').
func AsciiChart(w io.Writer, xLabel, yLabel string, width int, series ...Series) error {
	if len(series) == 0 || len(series) > 2 {
		return fmt.Errorf("report: AsciiChart supports 1 or 2 series, got %d", len(series))
	}
	if width < 10 {
		width = 40
	}
	maxY := 0.0
	for _, s := range series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	glyphs := []byte{'#', 'o'}
	fmt.Fprintf(w, "%s vs %s", yLabel, xLabel)
	for i, s := range series {
		fmt.Fprintf(w, "   [%c] %s", glyphs[i], s.Name)
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "%8.3f |", series[0].X[i])
		for si, s := range series {
			n := int(s.Y[i] / maxY * float64(width))
			fmt.Fprintf(w, " %-*s", width, strings.Repeat(string(glyphs[si]), n))
			if si == 0 && len(series) == 2 {
				fmt.Fprint(w, "|")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
