package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("much-longer-name", 3.14159)
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[3], "3.142") {
		t.Errorf("float formatting: %q", lines[3])
	}
	// Columns align: "value" header starts at the same offset as 1.
	off := strings.Index(lines[0], "value")
	if lines[2][off:off+1] != "1" {
		t.Errorf("misaligned columns:\n%s", buf.String())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", `quote"d`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"quote\"\"d\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "x",
		Series{Name: "mc", X: []float64{1, 2}, Y: []float64{10, 20}},
		Series{Name: "opera", X: []float64{1, 2}, Y: []float64{11, 19}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "x,mc,opera\n1,10,11\n2,20,19\n"
	if buf.String() != want {
		t.Errorf("got %q", buf.String())
	}
}

func TestWriteSeriesCSVMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, "x",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{1}},
	)
	if err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAsciiChart(t *testing.T) {
	var buf bytes.Buffer
	err := AsciiChart(&buf, "drop", "pct", 10,
		Series{Name: "MC", X: []float64{1, 2, 3}, Y: []float64{5, 10, 2.5}},
		Series{Name: "OPERA", X: []float64{1, 2, 3}, Y: []float64{4, 10, 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "oooooooooo") {
		t.Errorf("second series missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 4 {
		t.Errorf("expected header + 3 rows:\n%s", out)
	}
}

func TestAsciiChartRejectsTooManySeries(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Name: "s", X: []float64{1}, Y: []float64{1}}
	if err := AsciiChart(&buf, "x", "y", 10, s, s, s); err == nil {
		t.Error("3 series accepted")
	}
}
