package core

import (
	"fmt"
	"time"

	"opera/internal/galerkin"
	"opera/internal/mna"
	"opera/internal/mor"
	"opera/internal/pce"
	"opera/internal/poly"
	"opera/internal/sparse"
)

// ReducedResult carries the port-level stochastic moments of a
// MOR-accelerated analysis.
type ReducedResult struct {
	Ports []int
	K     int // reduced state dimension
	Steps int
	VDD   float64
	// Mean[s][j], Variance[s][j] for port j at step s.
	Mean, Variance [][]float64
	ReduceTime     time.Duration
	SolveTime      time.Duration
}

// AnalyzeReduced implements the paper's §5.2 complexity reduction:
// "MOR techniques can be used as the power grid node voltages in the
// top layers and their moments w.r.t ξ are typically of no interest to
// the designer." The nominal grid (Ga, Ca) is reduced onto a block
// Krylov subspace about the ports of interest (PRIMA congruence, see
// package mor), every variation matrix and excitation component is
// projected onto the same subspace, and the stochastic Galerkin
// transient runs on the reduced model — for tens of states instead of
// tens of thousands of nodes. The congruence preserves definiteness, so
// the reduced Galerkin system factors with the same block Cholesky.
//
// morMoments block moments are matched about the reduction's automatic
// expansion point; accuracy at the ports improves rapidly with it (see
// package mor's tests).
func AnalyzeReduced(sys *mna.System, ports []int, morMoments int, opts Options) (*ReducedResult, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("core: AnalyzeReduced needs at least one port")
	}
	startReduce := time.Now()
	// The grid is driven by distributed sources (pads and block
	// currents), not by the observation ports; snapshot the excitation's
	// spatial patterns across the window and add them to the Krylov
	// inputs so the reduced model is driven correctly.
	inputs := excitationSnapshots(sys, opts, 8)
	red, err := mor.Reduce(sys.Ga, sys.Ca, mor.Options{
		Ports: ports, Inputs: inputs, Moments: morMoments,
	})
	if err != nil {
		return nil, fmt.Errorf("core: reduction: %w", err)
	}
	k := red.K
	// Project every operator matrix onto V.
	gar := projectSparse(sys.Ga, red.V)
	ggr := projectSparse(sys.Gg, red.V)
	car := projectSparse(sys.Ca, red.V)
	ccr := projectSparse(sys.Cc, red.V)

	fams := opts.Families
	if fams == nil {
		fams = []poly.Family{poly.Hermite{}, poly.Hermite{}}
	}
	basis := pce.NewBasis(fams, opts.Order)
	ident := basis.CouplingIdentity()
	gTerms := []galerkin.Term{{Coupling: ident, A: gar}}
	if sys.Gg.NNZ() > 0 {
		gTerms = append(gTerms, galerkin.Term{Coupling: basis.CouplingLinear(mna.DimG), A: ggr})
	}
	cTerms := []galerkin.Term{{Coupling: ident, A: car}}
	if sys.Cc.NNZ() > 0 {
		cTerms = append(cTerms, galerkin.Term{Coupling: basis.CouplingLinear(mna.DimL), A: ccr})
	}
	pg := basis.ProjectVariable(mna.DimG)
	pl := basis.ProjectVariable(mna.DimL)
	n := sys.N
	ua := make([]float64, n)
	ug := make([]float64, n)
	uc := make([]float64, n)
	uaR := make([]float64, k)
	ugR := make([]float64, k)
	ucR := make([]float64, k)
	rhs := func(t float64, out [][]float64) {
		sys.RHS(t, ua, ug, uc)
		projectVec(red.V, ua, uaR)
		projectVec(red.V, ug, ugR)
		projectVec(red.V, uc, ucR)
		for m := range out {
			dst := out[m]
			cgm, clm := pg[m], pl[m]
			for i := 0; i < k; i++ {
				v := cgm*ugR[i] + clm*ucR[i]
				if m == 0 {
					v += uaR[i]
				}
				dst[i] = v
			}
		}
	}
	gsys := &galerkin.System{N: k, Basis: basis, GTerms: gTerms, CTerms: cTerms, RHS: rhs}
	reduceTime := time.Since(startReduce)

	nsteps := opts.Steps + 1
	out := &ReducedResult{
		Ports: append([]int(nil), ports...),
		K:     k, Steps: opts.Steps, VDD: sys.VDD,
		Mean:       alloc2(nsteps, len(ports)),
		Variance:   alloc2(nsteps, len(ports)),
		ReduceTime: reduceTime,
	}
	// Port recovery: voltage_p = Σ_k V[k][p]·z_k per chaos coefficient.
	vp := make([][]float64, len(ports)) // vp[j][k] = V[k][ports[j]]
	for j, p := range ports {
		vp[j] = make([]float64, k)
		for kk := 0; kk < k; kk++ {
			vp[j][kk] = red.V[kk][p]
		}
	}
	startSolve := time.Now()
	_, err = galerkin.Solve(gsys, galerkin.Options{
		Step: opts.Step, Steps: opts.Steps,
		Ordering: galerkin.OrderNatural, // the reduced system is dense and tiny
		Workers:  1,                     // fan-out overhead dwarfs the k×k solves
	}, func(step int, _ float64, coeffs [][]float64) {
		B := len(coeffs)
		for j := range ports {
			mean := 0.0
			for kk := 0; kk < k; kk++ {
				mean += vp[j][kk] * coeffs[0][kk]
			}
			out.Mean[step][j] = mean
			variance := 0.0
			for m := 1; m < B; m++ {
				cm := 0.0
				for kk := 0; kk < k; kk++ {
					cm += vp[j][kk] * coeffs[m][kk]
				}
				variance += cm * cm
			}
			out.Variance[step][j] = variance
		}
	})
	if err != nil {
		return nil, fmt.Errorf("core: reduced Galerkin solve: %w", err)
	}
	out.SolveTime = time.Since(startSolve)
	return out, nil
}

// excitationSnapshots samples ua/ug/uc over the transient window at
// count evenly spaced times, returning the distinct spatial patterns.
func excitationSnapshots(sys *mna.System, opts Options, count int) [][]float64 {
	n := sys.N
	var out [][]float64
	ua := make([]float64, n)
	ug := make([]float64, n)
	uc := make([]float64, n)
	for k := 0; k < count; k++ {
		t := float64(k) * opts.Step * float64(opts.Steps) / float64(count-1)
		sys.RHS(t, ua, ug, uc)
		out = append(out, append([]float64(nil), ua...))
		out = append(out, append([]float64(nil), uc...))
		if k == 0 {
			// The pad-sensitivity pattern ug is time-invariant.
			out = append(out, append([]float64(nil), ug...))
		}
	}
	return out
}

// projectSparse computes Vᵀ·A·V as a (dense-pattern) sparse matrix.
func projectSparse(a *sparse.Matrix, v [][]float64) *sparse.Matrix {
	k := len(v)
	n := a.Rows
	av := make([][]float64, k)
	tmp := make([]float64, n)
	for j := 0; j < k; j++ {
		a.MulVec(tmp, v[j])
		av[j] = append([]float64(nil), tmp...)
	}
	d := make([][]float64, k)
	for i := 0; i < k; i++ {
		d[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			s := 0.0
			for l := 0; l < n; l++ {
				s += v[i][l] * av[j][l]
			}
			d[i][j] = s
		}
	}
	// Symmetrize to erase roundoff asymmetry before factorization.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			m := 0.5 * (d[i][j] + d[j][i])
			d[i][j], d[j][i] = m, m
		}
	}
	return sparse.FromDense(d)
}

// projectVec computes out = Vᵀ·x.
func projectVec(v [][]float64, x, out []float64) {
	for j := range v {
		s := 0.0
		col := v[j]
		for i := range col {
			s += col[i] * x[i]
		}
		out[j] = s
	}
}
