package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"opera/internal/cancel"
	"opera/internal/factor"
	"opera/internal/galerkin"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/pce"
	"opera/internal/poly"
	"opera/internal/randvar"
	"opera/internal/sparse"
)

// LeakageOptions configures the §5.1 special case: only the excitation
// is stochastic — the leakage component of the drain currents varies
// lognormally with per-region threshold-voltage variation — so the
// Galerkin system decouples into N+1 independent solves sharing one
// factorization (Eq. 27).
type LeakageOptions struct {
	// Regions is the number of intra-die regions; every leakage source
	// in the netlist must carry a Region tag in [0, Regions).
	Regions int
	// SigmaLogI is the standard deviation of ln(I_leak): leakage varies
	// as exp(σ·ξ_r − σ²/2) per region r (unit mean), the lognormal model
	// of Ferzli–Najm that §5.1 references.
	SigmaLogI float64
	// Order is the chaos order for the lognormal RHS expansion.
	Order int
	Step  float64
	Steps int
	// TrackNodes retains full expansions at these nodes.
	TrackNodes []int
	// Ordering selects the fill-reducing ordering of the decoupled
	// companion factorization (default nested dissection).
	Ordering galerkin.Ordering
	// Workers caps the decoupled solver's per-basis worker pool; 0 or
	// negative means GOMAXPROCS. Results are bit-identical for every
	// value.
	Workers int
	// Obs, when non-nil, receives the pipeline phase spans and solver
	// metrics (see Options.Obs).
	Obs *obs.Tracer
	// Progress, when non-nil, is marked per sample and per step (see
	// Options.Progress).
	Progress *obs.Progress
	// Ctx, when non-nil, cancels the analysis cooperatively (see
	// Options.Ctx).
	Ctx context.Context
}

// Validate checks the options.
func (o LeakageOptions) Validate() error {
	if o.Regions < 1 {
		return fmt.Errorf("core: leakage analysis needs >= 1 region, got %d", o.Regions)
	}
	if o.SigmaLogI <= 0 {
		return fmt.Errorf("core: sigma of log-leakage must be positive, got %g", o.SigmaLogI)
	}
	if o.Order < 1 {
		return fmt.Errorf("core: order must be >= 1, got %d", o.Order)
	}
	if o.Step <= 0 || o.Steps < 1 {
		return fmt.Errorf("core: bad time stepping %g x %d", o.Step, o.Steps)
	}
	return nil
}

// buildLeakageSystem stamps the netlist deterministically and builds the
// RHS-only Galerkin system with one Gaussian dimension per region.
func buildLeakageSystem(nl *netlist.Netlist, opts LeakageOptions) (*galerkin.System, *mna.System, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	// Deterministic operator: zero sensitivities.
	sys, err := mna.Build(nl, mna.VariationSpec{})
	if err != nil {
		return nil, nil, err
	}
	for _, src := range nl.Sources {
		if src.Leakage && (src.Region < 0 || src.Region >= opts.Regions) {
			return nil, nil, fmt.Errorf("core: leakage source %q region %d outside [0,%d)",
				src.Name, src.Region, opts.Regions)
		}
	}
	fams := make([]poly.Family, opts.Regions)
	for i := range fams {
		fams[i] = poly.Hermite{}
	}
	basis := pce.NewBasis(fams, opts.Order)
	// Lognormal multiplier coefficients per region (unit mean).
	mu := -opts.SigmaLogI * opts.SigmaLogI / 2
	mult := make([][]float64, opts.Regions)
	for r := range mult {
		mult[r] = basis.LognormalCoefficients(r, mu, opts.SigmaLogI)
	}
	n := sys.N
	ident := basis.CouplingIdentity()
	ua := make([]float64, n)
	rhs := func(t float64, out [][]float64) {
		// Deterministic part: pads plus non-leakage sources.
		sys.RHS(t, ua, nil, nil)
		// Remove the leakage sources from the deterministic vector; they
		// re-enter through their chaos coefficients.
		for _, src := range nl.Sources {
			if src.Leakage {
				ua[src.A] += src.Wave.At(t)
			}
		}
		for m := range out {
			dst := out[m]
			if m == 0 {
				copy(dst, ua)
			} else {
				for i := range dst {
					dst[i] = 0
				}
			}
			for _, src := range nl.Sources {
				if !src.Leakage {
					continue
				}
				dst[src.A] -= src.Wave.At(t) * mult[src.Region][m]
			}
		}
	}
	gsys := &galerkin.System{
		N:      n,
		Basis:  basis,
		GTerms: []galerkin.Term{{Coupling: ident, A: sys.Ga}},
		CTerms: []galerkin.Term{{Coupling: ident, A: sys.Ca}},
		RHS:    rhs,
	}
	return gsys, sys, nil
}

// AnalyzeLeakage runs the §5.1 special case with OPERA. The returned
// result's Galerkin telemetry reports Decoupled = true: the solver took
// the Eq. 27 fast path automatically.
func AnalyzeLeakage(nl *netlist.Netlist, opts LeakageOptions) (*Result, error) {
	gsys, sys, err := buildLeakageSystem(nl, opts)
	if err != nil {
		return nil, err
	}
	return analyze(gsys, sys.VDD, Options{
		Order: opts.Order, Step: opts.Step, Steps: opts.Steps,
		Ordering:   opts.Ordering,
		TrackNodes: opts.TrackNodes, Workers: opts.Workers, Obs: opts.Obs,
		Progress: opts.Progress, Ctx: opts.Ctx,
	})
}

// LeakageMCResult carries the Monte Carlo reference for the special
// case.
type LeakageMCResult struct {
	Mean, Variance [][]float64
	Elapsed        time.Duration
	Samples        int
}

// RunLeakageMC samples the per-region lognormal leakage multipliers and
// runs deterministic transients. Because the operator is fixed, one
// companion factorization serves every sample — the strongest version
// of the baseline.
func RunLeakageMC(nl *netlist.Netlist, opts LeakageOptions, samples int, seed int64) (*LeakageMCResult, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if samples < 1 {
		return nil, fmt.Errorf("core: need >= 1 sample")
	}
	sys, err := mna.Build(nl, mna.VariationSpec{})
	if err != nil {
		return nil, err
	}
	n := sys.N
	start := time.Now()
	companion := sparse.Add(1, sys.Ga, 1/opts.Step, sys.Ca)
	perm := order.NestedDissection(order.NewGraph(companion), 0)
	comp, err := factor.CholeskyKernel(companion, perm, factor.KernelSupernodal)
	if err != nil {
		return nil, fmt.Errorf("core: leakage MC companion: %w", err)
	}
	gfac, err := factor.CholeskyKernel(sys.Ga, perm, factor.KernelSupernodal)
	if err != nil {
		return nil, fmt.Errorf("core: leakage MC DC: %w", err)
	}
	rng := randvar.NewStream(seed, 0)
	nsteps := opts.Steps + 1
	acc := make([][]randvar.Running, nsteps)
	for s := range acc {
		acc[s] = make([]randvar.Running, n)
	}
	ua := make([]float64, n)
	u := make([]float64, n)
	x := make([]float64, n)
	cx := make([]float64, n)
	b := make([]float64, n)
	xi := make([]float64, opts.Regions)
	multiplier := make([]float64, opts.Regions)
	sigma := opts.SigmaLogI
	rhsAt := func(t float64) {
		sys.RHS(t, ua, nil, nil)
		copy(u, ua)
		for _, src := range nl.Sources {
			if !src.Leakage {
				continue
			}
			iv := src.Wave.At(t)
			u[src.A] += iv                          // remove nominal draw
			u[src.A] -= iv * multiplier[src.Region] // apply lognormal draw
		}
	}
	for k := 0; k < samples; k++ {
		if err := cancel.Poll(opts.Ctx, "leakage-mc", k); err != nil {
			return nil, err
		}
		opts.Progress.Mark()
		for r := range xi {
			xi[r] = rng.NormFloat64()
			multiplier[r] = math.Exp(sigma*xi[r] - sigma*sigma/2)
		}
		rhsAt(0)
		gfac.SolveTo(x, u)
		for i, v := range x {
			acc[0][i].Push(v)
		}
		for s := 1; s <= opts.Steps; s++ {
			rhsAt(float64(s) * opts.Step)
			sys.Ca.MulVec(cx, x)
			for i := range b {
				b[i] = cx[i]/opts.Step + u[i]
			}
			comp.SolveTo(x, b)
			for i, v := range x {
				acc[s][i].Push(v)
			}
		}
	}
	res := &LeakageMCResult{
		Mean:     alloc2(nsteps, n),
		Variance: alloc2(nsteps, n),
		Samples:  samples,
	}
	for s := 0; s < nsteps; s++ {
		for i := 0; i < n; i++ {
			res.Mean[s][i] = acc[s][i].Mean()
			res.Variance[s][i] = acc[s][i].Variance()
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// AnalyzeLeakageForceCoupled runs the §5.1 system through the full
// augmented Galerkin solve instead of the decoupled recursion — the
// ablation reference quantifying what Eq. 27 saves.
func AnalyzeLeakageForceCoupled(nl *netlist.Netlist, opts LeakageOptions) (*Result, error) {
	gsys, sys, err := buildLeakageSystem(nl, opts)
	if err != nil {
		return nil, err
	}
	return analyze(gsys, sys.VDD, Options{
		Order: opts.Order, Step: opts.Step, Steps: opts.Steps,
		TrackNodes: opts.TrackNodes, ForceCoupled: true, Workers: opts.Workers, Obs: opts.Obs,
		Progress: opts.Progress,
	})
}
