package core

import (
	"fmt"
	"math"

	"opera/internal/cancel"
	"opera/internal/mna"
)

// AdaptiveOptions controls order selection for AnalyzeAdaptive.
type AdaptiveOptions struct {
	// Base carries the time stepping and variation model; its Order
	// field is the starting order (default 1).
	Base Options
	// MaxOrder caps the escalation (default 4).
	MaxOrder int
	// Tol is the convergence criterion: stop when the relative change
	// of the grid-wide maximum standard deviation between consecutive
	// orders falls below Tol (default 0.01).
	Tol float64
}

// AdaptiveResult records the escalation trace alongside the final
// analysis.
type AdaptiveResult struct {
	*Result
	// OrdersTried lists each order run, with the convergence indicator
	// measured against the previous order (NaN for the first).
	OrdersTried []AdaptiveStep
	Converged   bool
}

// AdaptiveStep is one entry of the escalation trace.
type AdaptiveStep struct {
	Order     int
	MaxStd    float64
	RelChange float64
}

// AnalyzeAdaptive implements the paper's §2 observation that "the
// expansion can be optimally truncated to any order depending on the
// available computational resources and accuracy requirements": it
// increases the expansion order until the predicted variance stabilizes
// (the dominant truncation error is in the variance — the mean
// converges at order 1 for near-linear responses).
func AnalyzeAdaptive(sys *mna.System, opts AdaptiveOptions) (*AdaptiveResult, error) {
	base := opts.Base.withDefaults()
	if base.Order == 0 || opts.Base.Order == 0 {
		base.Order = 1
	}
	if opts.MaxOrder == 0 {
		opts.MaxOrder = 4
	}
	if opts.Tol == 0 {
		opts.Tol = 0.01
	}
	if base.Order > opts.MaxOrder {
		return nil, fmt.Errorf("core: starting order %d exceeds MaxOrder %d", base.Order, opts.MaxOrder)
	}
	out := &AdaptiveResult{}
	prevMax := math.NaN()
	for p := base.Order; p <= opts.MaxOrder; p++ {
		if err := cancel.Poll(base.Ctx, "core.adaptive", p); err != nil {
			return nil, err
		}
		o := base
		o.Order = p
		res, err := Analyze(sys, o)
		if err != nil {
			return nil, fmt.Errorf("core: adaptive order %d: %w", p, err)
		}
		maxStd := 0.0
		for s := range res.Variance {
			for _, v := range res.Variance[s] {
				if sd := math.Sqrt(v); sd > maxStd {
					maxStd = sd
				}
			}
		}
		rel := math.NaN()
		if !math.IsNaN(prevMax) && prevMax > 0 {
			rel = math.Abs(maxStd-prevMax) / prevMax
		}
		out.Result = res
		out.OrdersTried = append(out.OrdersTried, AdaptiveStep{Order: p, MaxStd: maxStd, RelChange: rel})
		if !math.IsNaN(rel) && rel < opts.Tol {
			out.Converged = true
			return out, nil
		}
		prevMax = maxStd
	}
	return out, nil
}
