package core

import (
	"math"
	"testing"

	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/poly"
	"opera/internal/randvar"
)

func uniformFamilies() []poly.Family {
	return []poly.Family{poly.Legendre{}, poly.Legendre{}}
}

func testSystem(t *testing.T, nodes int, seed int64) (*mna.System, *netlist.Netlist) {
	t.Helper()
	nl, err := grid.Build(grid.DefaultSpec(nodes, seed))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sys, nl
}

func defaultOpts() Options {
	return Options{Order: 2, Step: 1e-10, Steps: 20}
}

func TestAnalyzeAgainstMonteCarlo(t *testing.T) {
	sys, _ := testSystem(t, 300, 17)
	opts := defaultOpts()
	op, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc, _, err := RunMC(sys, opts, 600, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := NominalRun(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := CompareWithMC(op, mc, nominal)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("accuracy: µ err avg %.4f%% max %.4f%%, σ err avg %.2f%% max %.2f%%, ±3σ %.1f%% of µ0, µ-shift %.4f%% VDD",
		acc.AvgErrMeanPct, acc.MaxErrMeanPct, acc.AvgErrStdPct, acc.MaxErrStdPct,
		acc.ThreeSigmaPctOfNominal, acc.MeanShiftPctVDD)
	// Paper Table 1 ballpark: mean errors well below 1%, σ errors below
	// ~20% (their max is 18.4%); with 600 samples MC noise alone is a
	// few percent.
	if acc.AvgErrMeanPct > 0.5 {
		t.Errorf("average mean error %g%% too large", acc.AvgErrMeanPct)
	}
	if acc.AvgErrStdPct > 12 {
		t.Errorf("average std error %g%% too large", acc.AvgErrStdPct)
	}
	// §6: the mean shift against the nominal response is negligible.
	if acc.MeanShiftPctVDD > 0.2 {
		t.Errorf("mean shift %g%% of VDD should be negligible", acc.MeanShiftPctVDD)
	}
	// §6: ±3σ lands around ±35% of the nominal drop (loose band).
	if acc.ThreeSigmaPctOfNominal < 10 || acc.ThreeSigmaPctOfNominal > 70 {
		t.Errorf("±3σ/µ0 = %g%%, expected tens of percent", acc.ThreeSigmaPctOfNominal)
	}
}

func TestTrackedExpansionsMatchMoments(t *testing.T) {
	sys, _ := testSystem(t, 200, 5)
	opts := defaultOpts()
	node := 3
	opts.TrackNodes = []int{node}
	op, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	exps := op.Tracked[node]
	if len(exps) != opts.Steps+1 {
		t.Fatalf("tracked %d steps", len(exps))
	}
	for s, e := range exps {
		if math.Abs(e.Mean()-op.Mean[s][node]) > 1e-12 {
			t.Fatalf("step %d: expansion mean %g vs result %g", s, e.Mean(), op.Mean[s][node])
		}
		if math.Abs(e.Variance()-op.Variance[s][node]) > 1e-15 {
			t.Fatalf("step %d: expansion variance mismatch", s)
		}
	}
}

func TestDistributionMatchesMCSamples(t *testing.T) {
	// The Figures 1–2 experiment in miniature: distribution of the drop
	// at the worst node from sampling the OPERA expansion vs Monte Carlo
	// traces — the KS distance must be small.
	sys, _ := testSystem(t, 200, 23)
	opts := defaultOpts()
	op, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	node, step := op.MaxMeanDropNode()
	opts.TrackNodes = []int{node}
	op, err = Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	mc, _, err := RunMC(sys, opts, 800, 7, []int{node})
	if err != nil {
		t.Fatal(err)
	}
	mcVals := make([]float64, len(mc.Traces))
	for k := range mc.Traces {
		mcVals[k] = mc.Traces[k][step][0]
	}
	rng := randvar.NewStream(123, 0)
	opVals := op.Tracked[node][step].Sample(rng, 4000)
	ks := randvar.KolmogorovSmirnov(mcVals, opVals)
	t.Logf("KS distance at node %d step %d: %.4f", node, step, ks)
	// For matching distributions with 800 samples, KS ~ 1.36·sqrt(1/800
	// + 1/4000) ≈ 0.053 at the 5% level; allow margin for truncation.
	if ks > 0.08 {
		t.Errorf("KS distance %g too large: distributions disagree", ks)
	}
}

func TestMaxMeanDropNode(t *testing.T) {
	sys, _ := testSystem(t, 150, 31)
	op, err := Analyze(sys, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	node, step := op.MaxMeanDropNode()
	if node < 0 || node >= op.N || step < 0 || step > op.Steps {
		t.Fatalf("MaxMeanDropNode out of range: %d, %d", node, step)
	}
	drop := op.VDD - op.Mean[step][node]
	for s := range op.Mean {
		for i := range op.Mean[s] {
			if op.VDD-op.Mean[s][i] > drop+1e-12 {
				t.Fatalf("found larger drop at (%d,%d)", s, i)
			}
		}
	}
	// Calibration targets 8% of VDD at the worst node; mean drop under
	// variations stays in that neighborhood.
	if frac := drop / op.VDD; frac < 0.02 || frac > 0.12 {
		t.Errorf("worst mean drop fraction %g outside the calibrated band", frac)
	}
}

func TestLeakageSpecialCase(t *testing.T) {
	_, nl := testSystem(t, 200, 41)
	opts := LeakageOptions{
		Regions:   4, // DefaultSpec uses Regions=2 → 4 region tags
		SigmaLogI: 0.6,
		Order:     3,
		Step:      1e-10,
		Steps:     15,
	}
	op, err := AnalyzeLeakage(nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !op.Galerkin.Decoupled {
		t.Error("special case should take the decoupled Eq. 27 path")
	}
	if op.Galerkin.AugmentedN != op.N {
		t.Errorf("decoupled path should factor an n-sized system, got %d", op.Galerkin.AugmentedN)
	}
	mc, err := RunLeakageMC(nl, opts, 1500, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Compare moments at the final step over all nodes.
	s := opts.Steps
	maxStd := 0.0
	for i := 0; i < op.N; i++ {
		if sd := math.Sqrt(mc.Variance[s][i]); sd > maxStd {
			maxStd = sd
		}
	}
	for i := 0; i < op.N; i++ {
		if e := math.Abs(op.Mean[s][i] - mc.Mean[s][i]); e > 5e-4 {
			t.Fatalf("node %d mean: OPERA %g vs MC %g", i, op.Mean[s][i], mc.Mean[s][i])
		}
		sdMC := math.Sqrt(mc.Variance[s][i])
		if sdMC > 0.05*maxStd {
			sdOp := math.Sqrt(op.Variance[s][i])
			if rel := math.Abs(sdOp-sdMC) / sdMC; rel > 0.15 {
				t.Fatalf("node %d std: OPERA %g vs MC %g (rel %g)", i, sdOp, sdMC, rel)
			}
		}
	}
}

func TestLeakageVarianceMatchesAnalyticTruncation(t *testing.T) {
	// For a purely linear system with lognormal RHS multipliers, the
	// order-p OPERA variance equals Σ_{k=1..p} σ^{2k}/k! times the
	// squared sensitivity — verify via the multiplier's own expansion:
	// tracked at a node fed by a single region. Here we check the
	// aggregate: OPERA variance with order 4 ≈ order 3 + next term,
	// monotone increasing toward the exact lognormal value.
	_, nl := testSystem(t, 150, 53)
	base := LeakageOptions{Regions: 4, SigmaLogI: 0.8, Step: 1e-10, Steps: 8}
	variances := make([]float64, 0, 3)
	for _, p := range []int{1, 2, 3} {
		o := base
		o.Order = p
		res, err := AnalyzeLeakage(nl, o)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, v := range res.Variance[base.Steps] {
			total += v
		}
		variances = append(variances, total)
	}
	if !(variances[0] < variances[1] && variances[1] < variances[2]) {
		t.Errorf("truncated lognormal variance should increase with order: %v", variances)
	}
	// The order-k increment adds the series term σ^{2k}/k! (scaled by
	// the squared region sensitivities), so going 1→2 adds σ⁴/2 and
	// 2→3 adds σ⁶/6: the increment ratio is exactly σ²/3.
	inc1 := variances[1] - variances[0]
	inc2 := variances[2] - variances[1]
	sigma := base.SigmaLogI
	want := sigma * sigma / 3
	ratio := inc2 / inc1
	if math.Abs(ratio-want) > 1e-6*want {
		t.Errorf("variance increment ratio %g, want σ²/3 = %g", ratio, want)
	}
}

func TestNonGaussianFamilies(t *testing.T) {
	// Legendre (uniform) variations run through the same machinery.
	sys, _ := testSystem(t, 120, 61)
	opts := defaultOpts()
	opts.Families = uniformFamilies()
	op, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := range op.Mean {
		for i := range op.Mean[s] {
			if op.Mean[s][i] <= 0 || op.Mean[s][i] > op.VDD+1e-9 {
				t.Fatalf("unphysical mean %g", op.Mean[s][i])
			}
			if op.Variance[s][i] < 0 {
				t.Fatalf("negative variance")
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	sys, _ := testSystem(t, 100, 3)
	if _, err := Analyze(sys, Options{Order: -1, Step: 1e-10, Steps: 5}); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := Analyze(sys, Options{Order: 2, Step: 0, Steps: 5}); err == nil {
		t.Error("zero step accepted")
	}
	opts := defaultOpts()
	opts.TrackNodes = []int{-3}
	if _, err := Analyze(sys, opts); err == nil {
		t.Error("bad tracked node accepted")
	}
}

func TestCompareWithMCShapeMismatch(t *testing.T) {
	sys, _ := testSystem(t, 100, 3)
	op, err := Analyze(sys, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	short := defaultOpts()
	short.Steps = 5
	mc, _, err := RunMC(sys, short, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompareWithMC(op, mc, nil); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestAnalyzeAdaptive(t *testing.T) {
	sys, _ := testSystem(t, 200, 71)
	res, err := AnalyzeAdaptive(sys, AdaptiveOptions{
		Base: Options{Step: 1e-10, Steps: 10},
		Tol:  0.02, MaxOrder: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("adaptive analysis did not converge: %+v", res.OrdersTried)
	}
	if len(res.OrdersTried) < 2 {
		t.Fatalf("expected at least two orders, got %d", len(res.OrdersTried))
	}
	// The realistic variation magnitudes converge by order 2-3.
	final := res.OrdersTried[len(res.OrdersTried)-1]
	if final.Order > 3 {
		t.Errorf("converged only at order %d", final.Order)
	}
	if final.RelChange >= 0.02 {
		t.Errorf("final relative change %g above tolerance", final.RelChange)
	}
	// The embedded result is the final order's analysis.
	if res.Basis.Order != final.Order {
		t.Errorf("result order %d != final tried %d", res.Basis.Order, final.Order)
	}
}

func TestAnalyzeAdaptiveValidation(t *testing.T) {
	sys, _ := testSystem(t, 100, 3)
	if _, err := AnalyzeAdaptive(sys, AdaptiveOptions{
		Base: Options{Order: 5, Step: 1e-10, Steps: 5}, MaxOrder: 3,
	}); err == nil {
		t.Error("start order above MaxOrder accepted")
	}
}

func TestAnalyzeReducedMatchesFull(t *testing.T) {
	sys, _ := testSystem(t, 400, 19)
	opts := defaultOpts()
	full, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := full.MaxMeanDropNode()
	ports := []int{node, 0}
	red, err := AnalyzeReduced(sys, ports, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if red.K >= sys.N/2 {
		t.Errorf("reduction barely reduced: K = %d of %d", red.K, sys.N)
	}
	for s := 0; s <= opts.Steps; s++ {
		for j, p := range ports {
			if d := math.Abs(red.Mean[s][j] - full.Mean[s][p]); d > 2e-4 {
				t.Fatalf("port %d step %d: reduced mean %g vs full %g", p, s, red.Mean[s][j], full.Mean[s][p])
			}
			sdF := math.Sqrt(full.Variance[s][p])
			sdR := math.Sqrt(red.Variance[s][j])
			if sdF > 1e-4 {
				if rel := math.Abs(sdR-sdF) / sdF; rel > 0.05 {
					t.Fatalf("port %d step %d: reduced sigma %g vs full %g (rel %g)", p, s, sdR, sdF, rel)
				}
			}
		}
	}
	t.Logf("reduced K=%d (from %d nodes): reduce %.3fs + solve %.3fs vs full %.3fs",
		red.K, sys.N, red.ReduceTime.Seconds(), red.SolveTime.Seconds(), full.Elapsed.Seconds())
}

func TestAnalyzeReducedValidation(t *testing.T) {
	sys, _ := testSystem(t, 100, 3)
	if _, err := AnalyzeReduced(sys, nil, 4, defaultOpts()); err == nil {
		t.Error("empty port list accepted")
	}
	if _, err := AnalyzeReduced(sys, []int{0}, 4, Options{Order: 2}); err == nil {
		t.Error("invalid stepping accepted")
	}
}

func TestModelFacades(t *testing.T) {
	_, nl := testSystem(t, 200, 83)
	opts := Options{Order: 2, Step: 1e-10, Steps: 8}

	three, err := AnalyzeThreeVar(nl, mna.DefaultThreeVarSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 14: the combined model gives identical moments.
	sys, err := mna.Build(nl, mna.DefaultThreeVarSpec().Combine())
	if err != nil {
		t.Fatal(err)
	}
	comb, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := range comb.Mean {
		for i := range comb.Mean[s] {
			if d := math.Abs(comb.Mean[s][i] - three.Mean[s][i]); d > 1e-9 {
				t.Fatalf("three-var facade mean mismatch %g", d)
			}
		}
	}

	k := 0.25 / 3
	cov := [][]float64{{k * k, 0, 0}, {0, 1e-6, 0}, {0, 0, 1e-6}}
	corr, err := AnalyzeCorrelated(nl, cov, opts)
	if err != nil {
		t.Fatal(err)
	}
	if corr.N != comb.N {
		t.Fatal("correlated facade size mismatch")
	}

	spatial, err := AnalyzeSpatial(nl, mna.SpatialSpec{
		RegionsPerAxis: 2, KG: k, KCL: 0.2 / 3, KIL: 0.2 / 3,
		CorrLength: 1, MaxDims: 2,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for s := range spatial.Mean {
		for i := range spatial.Mean[s] {
			v := spatial.Mean[s][i]
			if v <= 0 || v > spatial.VDD+1e-9 {
				t.Fatalf("spatial facade unphysical mean %g", v)
			}
			if spatial.Variance[s][i] < 0 {
				t.Fatal("negative variance")
			}
		}
	}
}

func TestAnalyzeNetlistAndDropPercent(t *testing.T) {
	_, nl := testSystem(t, 150, 91)
	opts := Options{Order: 2, Step: 1e-10, Steps: 6}
	res, err := AnalyzeNetlist(nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != nl.NumNodes {
		t.Errorf("N = %d, want %d", res.N, nl.NumNodes)
	}
	// DropPercent inverts correctly: full VDD → 0%, 0 V → 100%.
	if d := res.DropPercent(res.VDD); math.Abs(d) > 1e-12 {
		t.Errorf("drop at VDD = %g", d)
	}
	if d := res.DropPercent(0); math.Abs(d-100) > 1e-12 {
		t.Errorf("drop at 0 = %g", d)
	}
	// Custom variation spec flows through.
	custom := mna.VariationSpec{KG: 0.01, KCL: 0.01, KIL: 0.01}
	opts.Variation = &custom
	small, err := AnalyzeNetlist(nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny sensitivities → much smaller variance than the default spec.
	var vDefault, vSmall float64
	for i := range res.Variance[opts.Steps] {
		vDefault += res.Variance[opts.Steps][i]
		vSmall += small.Variance[opts.Steps][i]
	}
	if vSmall >= vDefault/10 {
		t.Errorf("custom small spec variance %g not well below default %g", vSmall, vDefault)
	}
}

func TestLeakageOptionsValidate(t *testing.T) {
	good := LeakageOptions{Regions: 2, SigmaLogI: 0.5, Order: 2, Step: 1e-10, Steps: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []LeakageOptions{
		{Regions: 0, SigmaLogI: 0.5, Order: 2, Step: 1e-10, Steps: 5},
		{Regions: 2, SigmaLogI: 0, Order: 2, Step: 1e-10, Steps: 5},
		{Regions: 2, SigmaLogI: 0.5, Order: 0, Step: 1e-10, Steps: 5},
		{Regions: 2, SigmaLogI: 0.5, Order: 2, Step: 0, Steps: 5},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Leakage MC argument validation.
	_, nl := testSystem(t, 100, 3)
	if _, err := RunLeakageMC(nl, good, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := AnalyzeLeakage(nl, LeakageOptions{Regions: 1, SigmaLogI: 0.5, Order: 2, Step: 1e-10, Steps: 5}); err == nil {
		t.Error("region tag outside declared count accepted")
	}
}

func TestSobolAttributionOnGrid(t *testing.T) {
	// On the default grid the geometry and channel shares must be
	// positive and sum (with interactions) to ~1 at the worst node.
	sys, _ := testSystem(t, 200, 95)
	opts := defaultOpts()
	scout, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	node, step := scout.MaxMeanDropNode()
	opts.TrackNodes = []int{node}
	res, err := Analyze(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Tracked[node][step]
	sg := e.SobolFirstOrder(0)
	sl := e.SobolFirstOrder(1)
	si := e.SobolInteraction()
	t.Logf("attribution: ξG %.3f, ξL %.3f, interactions %.3f", sg, sl, si)
	if sg <= 0 || sl <= 0 {
		t.Error("both variation sources should contribute variance")
	}
	if s := sg + sl + si; math.Abs(s-1) > 1e-9 {
		t.Errorf("shares sum to %g (first-order + interactions must partition a 2-dim expansion)", s)
	}
}
