// Package core is OPERA — Orthogonal Polynomial Expansions for Response
// Analysis — the paper's primary contribution assembled from the
// substrates: it takes a power grid netlist, a process-variation model
// and an expansion order, runs the stochastic Galerkin transient, and
// returns the explicit chaos representation of every node voltage over
// time: means, variances, higher moments, probability densities and
// samples, plus the accuracy/runtime comparison against the Monte Carlo
// baseline that regenerates the paper's Table 1 and Figures 1–2.
package core

import (
	"context"
	"fmt"
	"time"

	"opera/internal/factor"
	"opera/internal/galerkin"
	"opera/internal/mna"
	"opera/internal/montecarlo"
	"opera/internal/netlist"
	"opera/internal/numguard"
	"opera/internal/obs"
	"opera/internal/pce"
	"opera/internal/poly"
	"opera/internal/transient"
)

// Options configures an OPERA analysis.
type Options struct {
	// Order is the chaos expansion order p (paper: 2 or 3 suffices).
	Order int
	// Step and Steps define the fixed-step transient window.
	Step  float64
	Steps int
	// Variation holds the first-order sensitivities; zero value means
	// mna.DefaultSpec (the paper's Table 1 setup).
	Variation *mna.VariationSpec
	// Ordering selects the fill-reducing ordering of the augmented
	// factorization.
	Ordering galerkin.Ordering
	// Kernel selects the scalar Cholesky kernel (supernodal blocked
	// panels by default; KernelScalar forces the up-looking reference —
	// the ablation switch).
	Kernel factor.Kernel
	// TrackNodes lists nodes whose full chaos coefficients are retained
	// at every step (needed for PDFs and the distribution figures).
	TrackNodes []int
	// Families optionally overrides the per-dimension polynomial
	// families (default: Hermite × Hermite, the paper's Gaussian case).
	Families []poly.Family
	// ForceCoupled and ForceLU are ablation switches (see galerkin).
	ForceCoupled bool
	ForceLU      bool
	// Iterative selects the §5.2 mean-preconditioned CG solver path.
	Iterative bool
	// Workers caps the worker pools of the parallel hot loops (Monte
	// Carlo sampling, decoupled per-basis solves, block applies); 0 or
	// negative means GOMAXPROCS. Results are bit-identical for every
	// value.
	Workers int
	// Guard tunes the numerical-robustness layer (residual tolerance,
	// iterative-refinement caps, verification cadence). Zero value =
	// numguard defaults.
	Guard numguard.Config
	// Obs, when non-nil, receives the pipeline phase spans (stamp,
	// order, factor, transient, moments) and all solver metrics. Nil
	// disables instrumentation at zero cost.
	Obs *obs.Tracer
	// Progress, when non-nil, is marked at every step/sample/basis
	// boundary the solve loops pass; a stall watchdog can poll it to
	// tell a slow analysis from a hung one. Nil disables the marks.
	Progress *obs.Progress
	// Ctx, when non-nil, cancels the analysis cooperatively: the solve
	// loops poll it at step/sample/basis boundaries and return a
	// structured error wrapping cancel.ErrCanceled once it is canceled
	// or past its deadline. Nil disables cancellation.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Order == 0 {
		o.Order = 2
	}
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Order < 1 {
		return fmt.Errorf("core: expansion order must be >= 1, got %d", o.Order)
	}
	if o.Step <= 0 || o.Steps < 1 {
		return fmt.Errorf("core: bad time stepping %g x %d", o.Step, o.Steps)
	}
	if o.Families != nil && len(o.Families) != mna.Dims {
		return fmt.Errorf("core: need %d families, got %d", mna.Dims, len(o.Families))
	}
	return nil
}

// Result is the output of an OPERA analysis.
type Result struct {
	N     int
	Steps int
	Basis *pce.Basis
	VDD   float64

	// Mean[s][i], Variance[s][i]: moments of node i's voltage at step s.
	Mean, Variance [][]float64

	// Tracked maps a tracked node to its per-step chaos expansions.
	Tracked map[int][]*pce.Expansion

	// Elapsed is the wall-clock analysis time; Galerkin carries solver
	// telemetry.
	Elapsed  time.Duration
	Galerkin galerkin.Result
}

// Analyze runs OPERA on a stamped MNA system.
func Analyze(sys *mna.System, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	fams := opts.Families
	if fams == nil {
		fams = []poly.Family{poly.Hermite{}, poly.Hermite{}}
	}
	sp := opts.Obs.Start("stamp", obs.Int("n", sys.N), obs.Int("order", opts.Order))
	basis := pce.NewBasis(fams, opts.Order)
	gsys, err := galerkin.FromMNA(sys, basis)
	sp.SetAttrs(obs.Int("basis", basis.Size()))
	sp.End()
	if err != nil {
		return nil, err
	}
	return analyze(gsys, sys.VDD, opts)
}

// AnalyzeNetlist stamps and analyzes a netlist in one call.
func AnalyzeNetlist(nl *netlist.Netlist, opts Options) (*Result, error) {
	spec := mna.DefaultSpec()
	if opts.Variation != nil {
		spec = *opts.Variation
	}
	sys, err := mna.Build(nl, spec)
	if err != nil {
		return nil, err
	}
	return Analyze(sys, opts)
}

// analyze drives the Galerkin solve and collects moments for any
// prepared galerkin.System (the general path and the §5.1 special case
// share it).
func analyze(gsys *galerkin.System, vdd float64, opts Options) (*Result, error) {
	basis := gsys.Basis
	n := gsys.N
	nsteps := opts.Steps + 1
	res := &Result{
		N:        n,
		Steps:    opts.Steps,
		Basis:    basis,
		VDD:      vdd,
		Mean:     alloc2(nsteps, n),
		Variance: alloc2(nsteps, n),
	}
	if len(opts.TrackNodes) > 0 {
		res.Tracked = make(map[int][]*pce.Expansion, len(opts.TrackNodes))
		for _, node := range opts.TrackNodes {
			if node < 0 || node >= n {
				return nil, fmt.Errorf("core: tracked node %d outside [0,%d)", node, n)
			}
			res.Tracked[node] = make([]*pce.Expansion, nsteps)
		}
	}
	start := time.Now()
	tr := opts.Obs
	// Moment extraction runs interleaved with the stepping loop, so its
	// time accumulates across visits and lands in the trace as one
	// completed "moments" span after the solve.
	var momentsDur time.Duration
	gres, err := galerkin.Solve(gsys, galerkin.Options{
		Step: opts.Step, Steps: opts.Steps,
		Ordering: opts.Ordering, Kernel: opts.Kernel, ForceCoupled: opts.ForceCoupled,
		ForceLU: opts.ForceLU, Iterative: opts.Iterative,
		Workers: opts.Workers, Guard: opts.Guard, Obs: opts.Obs,
		Progress: opts.Progress, Ctx: opts.Ctx,
	}, func(step int, _ float64, coeffs [][]float64) {
		visitStart := time.Now()
		B := len(coeffs)
		for i := 0; i < n; i++ {
			res.Mean[step][i] = coeffs[0][i]
			v := 0.0
			for m := 1; m < B; m++ {
				v += coeffs[m][i] * coeffs[m][i]
			}
			res.Variance[step][i] = v
		}
		for node, exps := range res.Tracked {
			c := make([]float64, B)
			for m := 0; m < B; m++ {
				c[m] = coeffs[m][node]
			}
			exps[step] = pce.FromCoeffs(basis, c)
		}
		momentsDur += time.Since(visitStart)
	})
	if err != nil {
		return nil, err
	}
	tr.Record("moments", momentsDur, obs.Int("steps", opts.Steps+1))
	res.Elapsed = time.Since(start)
	tr.Registry().Gauge("core.elapsed_ms").Set(float64(res.Elapsed) / float64(time.Millisecond))
	res.Galerkin = gres
	return res, nil
}

// MaxMeanDropNode returns the node and step with the largest mean
// voltage drop (VDD − mean), the natural "interesting node" for the
// distribution figures.
func (r *Result) MaxMeanDropNode() (node, step int) {
	worst := -1.0
	for s := range r.Mean {
		for i, v := range r.Mean[s] {
			if d := r.VDD - v; d > worst {
				worst = d
				node, step = i, s
			}
		}
	}
	return node, step
}

// NominalRun computes the deterministic (no-variation) response µ0 used
// by the paper's ±3σ-vs-µ0 metric: a plain transient on Ga, Ca, ua.
func NominalRun(sys *mna.System, opts Options) ([][]float64, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	out := alloc2(opts.Steps+1, sys.N)
	ua := make([]float64, sys.N)
	err := transient.Run(sys.Ga, sys.Ca, func(t float64, u []float64) {
		sys.RHS(t, ua, nil, nil)
		copy(u, ua)
	}, transient.Options{Step: opts.Step, Steps: opts.Steps, Method: transient.BackwardEuler, Progress: opts.Progress, Ctx: opts.Ctx},
		func(step int, _ float64, x []float64) {
			copy(out[step], x)
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunMC executes the Monte Carlo baseline with matching time stepping.
func RunMC(sys *mna.System, opts Options, samples int, seed int64, trackNodes []int) (*montecarlo.Result, time.Duration, error) {
	opts = opts.withDefaults()
	start := time.Now()
	mc, err := montecarlo.Run(sys, montecarlo.Options{
		Samples: samples, Step: opts.Step, Steps: opts.Steps,
		Seed: seed, TrackNodes: trackNodes, Workers: opts.Workers, Obs: opts.Obs,
		Progress: opts.Progress, Ctx: opts.Ctx,
	})
	return mc, time.Since(start), err
}

func alloc2(a, b int) [][]float64 {
	m := make([][]float64, a)
	for i := range m {
		m[i] = make([]float64, b)
	}
	return m
}
