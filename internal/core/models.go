package core

import (
	"fmt"

	"opera/internal/galerkin"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/pce"
)

// AnalyzeThreeVar runs OPERA with the separated (ξW, ξT, ξL) model of
// the paper's Eq. 13. For the linear conductance model its moments
// equal AnalyzeNetlist's with the combined spec (Eq. 14), at the cost
// of a three-dimensional basis; use it when the W and T sensitivities
// do not share a pattern and cannot be combined.
func AnalyzeThreeVar(nl *netlist.Netlist, spec mna.ThreeVarSpec, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Families != nil {
		return nil, fmt.Errorf("core: AnalyzeThreeVar manages its own basis families")
	}
	sys, err := mna.BuildThreeVar(nl, spec)
	if err != nil {
		return nil, err
	}
	basis := pce.NewHermiteBasis(mna.Dims3, opts.Order)
	gsys, err := galerkin.FromThreeVar(sys, basis)
	if err != nil {
		return nil, err
	}
	return analyze(gsys, sys.VDD, opts)
}

// AnalyzeCorrelated runs OPERA under a full 3×3 covariance of the
// relative W/T/Leff variations, decorrelated internally by PCA (the
// paper's §5 route for correlated parameters).
func AnalyzeCorrelated(nl *netlist.Netlist, cov [][]float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Families != nil {
		return nil, fmt.Errorf("core: AnalyzeCorrelated manages its own basis families")
	}
	sys, err := mna.BuildCorrelated(nl, cov)
	if err != nil {
		return nil, err
	}
	basis := pce.NewHermiteBasis(sys.Dims, opts.Order)
	gsys, err := galerkin.FromCorrelated(sys, basis)
	if err != nil {
		return nil, err
	}
	return analyze(gsys, sys.VDD, opts)
}

// AnalyzeSpatial runs OPERA under the intra-die spatial variation model
// (per-region fields with exponential correlation, reduced to principal
// components — the within-die case the paper's §3 defers to future
// work). With many retained principal components the direct block
// factorization grows as (basis size)³; the solver's memory budget
// switches to the §5.2 iterative path automatically, or set
// opts.Iterative explicitly.
func AnalyzeSpatial(nl *netlist.Netlist, spec mna.SpatialSpec, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Families != nil {
		return nil, fmt.Errorf("core: AnalyzeSpatial manages its own basis families")
	}
	sys, err := mna.BuildSpatial(nl, spec)
	if err != nil {
		return nil, err
	}
	basis := pce.NewHermiteBasis(sys.Dims, opts.Order)
	gsys, err := galerkin.FromSpatial(sys, basis)
	if err != nil {
		return nil, err
	}
	return analyze(gsys, sys.VDD, opts)
}
