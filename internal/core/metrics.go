package core

import (
	"fmt"
	"math"

	"opera/internal/montecarlo"
)

// Accuracy aggregates the comparison metrics of the paper's Table 1:
// average and maximum percent errors of OPERA's mean and standard
// deviation against Monte Carlo, taken across all nodes and all time
// points, the ±3σ spread as a percentage of the nominal (variation-free)
// voltage drop µ0, and the mean shift µ−µ0 as a fraction of VDD (which
// §6 reports as negligible).
type Accuracy struct {
	AvgErrMeanPct float64
	MaxErrMeanPct float64
	AvgErrStdPct  float64
	MaxErrStdPct  float64
	// ThreeSigmaPctOfNominal is the average of 3σ/(nominal drop) in
	// percent over nodes and times with a meaningful drop.
	ThreeSigmaPctOfNominal float64
	// MeanShiftPctVDD is the average |µ − µ0| as a percent of VDD.
	MeanShiftPctVDD float64
}

// CompareWithMC computes the Table 1 accuracy columns. nominal is the
// deterministic response from NominalRun (may be nil to skip the
// µ0-relative metrics). σ entries where the Monte Carlo deviation is
// below 1% of the grid-wide maximum are skipped (relative error against
// a near-zero baseline is dominated by sampling noise at unloaded pad
// nodes).
func CompareWithMC(op *Result, mc *montecarlo.Result, nominal [][]float64) (Accuracy, error) {
	if op.N != mc.N || op.Steps != mc.Steps {
		return Accuracy{}, fmt.Errorf("core: OPERA (%d nodes, %d steps) and MC (%d, %d) shapes differ",
			op.N, op.Steps, mc.N, mc.Steps)
	}
	var acc Accuracy
	var sumMean, sumStd float64
	var nMean, nStd int
	maxStdMC := 0.0
	for s := range mc.Variance {
		for i := range mc.Variance[s] {
			if sd := math.Sqrt(mc.Variance[s][i]); sd > maxStdMC {
				maxStdMC = sd
			}
		}
	}
	stdFloor := 0.01 * maxStdMC
	var sum3Sigma float64
	var n3Sigma int
	var sumShift float64
	var nShift int
	for s := 0; s <= op.Steps; s++ {
		for i := 0; i < op.N; i++ {
			mMC := mc.Mean[s][i]
			if mMC != 0 {
				e := 100 * math.Abs(op.Mean[s][i]-mMC) / math.Abs(mMC)
				sumMean += e
				nMean++
				if e > acc.MaxErrMeanPct {
					acc.MaxErrMeanPct = e
				}
			}
			sdMC := math.Sqrt(mc.Variance[s][i])
			if sdMC > stdFloor {
				sdOp := math.Sqrt(op.Variance[s][i])
				e := 100 * math.Abs(sdOp-sdMC) / sdMC
				sumStd += e
				nStd++
				if e > acc.MaxErrStdPct {
					acc.MaxErrStdPct = e
				}
			}
			if nominal != nil {
				drop0 := op.VDD - nominal[s][i]
				sdOp := math.Sqrt(op.Variance[s][i])
				if drop0 > 0.01*op.VDD*0.1 { // drops above 0.1% of VDD
					sum3Sigma += 100 * 3 * sdOp / drop0
					n3Sigma++
				}
				sumShift += 100 * math.Abs(op.Mean[s][i]-nominal[s][i]) / op.VDD
				nShift++
			}
		}
	}
	if nMean > 0 {
		acc.AvgErrMeanPct = sumMean / float64(nMean)
	}
	if nStd > 0 {
		acc.AvgErrStdPct = sumStd / float64(nStd)
	}
	if n3Sigma > 0 {
		acc.ThreeSigmaPctOfNominal = sum3Sigma / float64(n3Sigma)
	}
	if nShift > 0 {
		acc.MeanShiftPctVDD = sumShift / float64(nShift)
	}
	return acc, nil
}

// DropPercent converts a voltage to a drop in percent of VDD.
func (r *Result) DropPercent(v float64) float64 {
	return 100 * (r.VDD - v) / r.VDD
}
