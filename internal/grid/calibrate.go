package grid

import (
	"fmt"

	"opera/internal/factor"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/order"
)

// calibrate rescales every current source so the worst nominal DC drop,
// sampled across one clock period, equals PeakDropFrac·VDD — realizing
// the paper's §6 condition that "the peak drop in the voltage at any
// grid node was less than 10% of the VDD".
func calibrate(s Spec, nl *netlist.Netlist) error {
	sys, err := mna.Build(nl, mna.VariationSpec{})
	if err != nil {
		return fmt.Errorf("grid: calibration stamping: %w", err)
	}
	perm := order.NestedDissection(order.NewGraph(sys.Ga), 0)
	f, err := factor.Cholesky(sys.Ga, perm)
	if err != nil {
		return fmt.Errorf("grid: calibration factorization: %w", err)
	}
	u := make([]float64, sys.N)
	v := make([]float64, sys.N)
	maxDrop := 0.0
	const samples = 24
	for k := 0; k <= samples; k++ {
		t := s.ClockPeriod * float64(k) / samples
		sys.RHS(t, u, nil, nil)
		f.SolveTo(v, u)
		for _, vi := range v {
			if d := s.VDD - vi; d > maxDrop {
				maxDrop = d
			}
		}
	}
	if maxDrop <= 0 {
		return fmt.Errorf("grid: calibration found no voltage drop; no load currents?")
	}
	gain := s.PeakDropFrac * s.VDD / maxDrop
	for i := range nl.Sources {
		nl.Sources[i].Wave = &netlist.Scaled{Inner: nl.Sources[i].Wave, Gain: gain}
	}
	return nil
}
