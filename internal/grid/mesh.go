package grid

import (
	"fmt"
	"math/rand"

	"opera/internal/netlist"
	"opera/internal/randvar"
)

// Build generates the netlist: mesh topology, vias, pads, load caps and
// calibrated block current sources.
func Build(s Spec) (*netlist.Netlist, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := randvar.NewStream(s.Seed, 0)
	nl := &netlist.Netlist{NumNodes: s.NumNodes()}
	blocked := s.placeMacros(rng)
	s.buildMesh(nl, blocked)
	s.buildPads(nl)
	s.buildCaps(nl, blocked)
	if err := s.buildSources(nl, rng, blocked); err != nil {
		return nil, err
	}
	if err := calibrate(s, nl); err != nil {
		return nil, err
	}
	return nl, nil
}

// placeMacros marks fine-mesh nodes covered by macro blockages. The
// macro interiors keep their node ids (so indexing is unchanged) but
// receive no mesh segments, caps or sources; a weak tie to a corner
// keeps the matrix nonsingular.
func (s Spec) placeMacros(rng *rand.Rand) []bool {
	if s.Macros <= 0 {
		return nil
	}
	blocked := make([]bool, s.Rows*s.Cols)
	for m := 0; m < s.Macros; m++ {
		h := 2 + rng.Intn(maxInt(2, s.Rows/6))
		w := 2 + rng.Intn(maxInt(2, s.Cols/6))
		// Keep macros off the borders so pads and the mesh boundary
		// survive.
		if s.Rows-h-2 < 1 || s.Cols-w-2 < 1 {
			continue
		}
		r0 := 1 + rng.Intn(s.Rows-h-2)
		c0 := 1 + rng.Intn(s.Cols-w-2)
		// Block strictly interior nodes; the macro's ring stays routable.
		for r := r0 + 1; r < r0+h; r++ {
			for c := c0 + 1; c < c0+w; c++ {
				blocked[s.fineID(r, c)] = true
			}
		}
	}
	return blocked
}

// buildMesh stamps the fine mesh, the optional coarse overlay and the
// vias between them. All mesh metal is on-die (varies with ξG).
func (s Spec) buildMesh(nl *netlist.Netlist, blocked []bool) {
	name := 0
	addR := func(a, b int, ohms float64, region int) {
		nl.Resistors = append(nl.Resistors, netlist.Resistor{
			Name: fmt.Sprintf("%d", name), A: a, B: b, Ohms: ohms, OnDie: true,
			Region: region,
		})
		name++
	}
	isBlocked := func(id int) bool { return blocked != nil && blocked[id] }
	for r := 0; r < s.Rows; r++ {
		for c := 0; c < s.Cols; c++ {
			id := s.fineID(r, c)
			if c+1 < s.Cols && !isBlocked(id) && !isBlocked(s.fineID(r, c+1)) {
				addR(id, s.fineID(r, c+1), s.RSeg, s.regionOf(r, c))
			}
			if r+1 < s.Rows && !isBlocked(id) && !isBlocked(s.fineID(r+1, c)) {
				addR(id, s.fineID(r+1, c), s.RSeg, s.regionOf(r, c))
			}
		}
	}
	// Blocked (macro-interior) nodes would be singular; tie each to its
	// nearest unblocked left/up neighbor with a high-resistance strap
	// (representing the macro's internal rail tap).
	if blocked != nil {
		for r := 0; r < s.Rows; r++ {
			for c := 0; c < s.Cols; c++ {
				id := s.fineID(r, c)
				if !blocked[id] {
					continue
				}
				n := s.fineID(r, c-1) // interiors never touch column 0
				addR(id, n, 100*s.RSeg, s.regionOf(r, c))
			}
		}
	}
	if s.CoarseStride > 1 {
		cr, cc := s.coarseRows(), s.coarseCols()
		for i := 0; i < cr; i++ {
			for j := 0; j < cc; j++ {
				fr := i * s.CoarseStride
				fc := j * s.CoarseStride
				if fr >= s.Rows {
					fr = s.Rows - 1
				}
				if fc >= s.Cols {
					fc = s.Cols - 1
				}
				region := s.regionOf(fr, fc)
				if j+1 < cc {
					addR(s.coarseID(i, j), s.coarseID(i, j+1), s.RSegCoarse, region)
				}
				if i+1 < cr {
					addR(s.coarseID(i, j), s.coarseID(i+1, j), s.RSegCoarse, region)
				}
				// Via down to the matching fine node.
				addR(s.coarseID(i, j), s.fineID(fr, fc), s.RVia, region)
			}
		}
	}
}

// buildPads attaches supply pads on the top metal (coarse mesh when
// present) every PadStride nodes.
func (s Spec) buildPads(nl *netlist.Netlist) {
	name := 0
	addPad := func(node int) {
		nl.Pads = append(nl.Pads, netlist.Pad{
			Name: fmt.Sprintf("%d", name), Node: node, VDD: s.VDD, Rpin: s.RPin, OnDie: true,
		})
		name++
	}
	if s.CoarseStride > 1 {
		cr, cc := s.coarseRows(), s.coarseCols()
		for i := 0; i < cr; i += s.PadStride {
			for j := 0; j < cc; j += s.PadStride {
				addPad(s.coarseID(i, j))
			}
		}
		// Guarantee a far-corner pad so no region is starved.
		addPad(s.coarseID(cr-1, cc-1))
	} else {
		for r := 0; r < s.Rows; r += s.PadStride {
			for c := 0; c < s.Cols; c += s.PadStride {
				addPad(s.fineID(r, c))
			}
		}
		addPad(s.fineID(s.Rows-1, s.Cols-1))
	}
}

// buildCaps places the load capacitance at every fine node (the paper:
// grid capacitance is dominated by the non-switching load caps of the
// functional blocks, with a 40% gate fraction varying with Leff).
func (s Spec) buildCaps(nl *netlist.Netlist, blocked []bool) {
	if s.CNode <= 0 {
		return
	}
	for r := 0; r < s.Rows; r++ {
		for c := 0; c < s.Cols; c++ {
			if blocked != nil && blocked[s.fineID(r, c)] {
				continue
			}
			nl.Caps = append(nl.Caps, netlist.Capacitor{
				Name:     fmt.Sprintf("%d", s.fineID(r, c)),
				A:        s.fineID(r, c),
				B:        netlist.Ground,
				Farads:   s.CNode,
				GateFrac: s.GateFrac,
				Region:   s.regionOf(r, c),
			})
		}
	}
}

// block is a rectangular functional block on the fine mesh.
type block struct {
	r0, c0, r1, c1 int // inclusive bounds
	peak           float64
	delay          float64
	rise, width    float64
}

// buildSources lays out functional blocks and stamps their per-node
// switching currents plus a per-node leakage floor with region tags.
// Current magnitudes here are pre-calibration (arbitrary scale).
func (s Spec) buildSources(nl *netlist.Netlist, rng *rand.Rand, blocked []bool) error {
	blocks := make([]block, s.NumBlocks)
	for b := range blocks {
		h := 2 + rng.Intn(maxInt(2, s.Rows/3))
		w := 2 + rng.Intn(maxInt(2, s.Cols/3))
		r0 := rng.Intn(maxInt(1, s.Rows-h))
		c0 := rng.Intn(maxInt(1, s.Cols-w))
		blocks[b] = block{
			r0: r0, c0: c0,
			r1: minInt(s.Rows-1, r0+h), c1: minInt(s.Cols-1, c0+w),
			peak:  0.5 + rng.Float64(), // relative block activity
			delay: rng.Float64() * 0.4 * s.ClockPeriod,
			rise:  (0.05 + 0.1*rng.Float64()) * s.ClockPeriod,
			width: (0.1 + 0.2*rng.Float64()) * s.ClockPeriod,
		}
	}
	// Accumulate per-node switching peaks so each node gets one source.
	type nodeCur struct {
		waves []netlist.Waveform
	}
	perNode := make(map[int]*nodeCur)
	for _, b := range blocks {
		nNodes := (b.r1 - b.r0 + 1) * (b.c1 - b.c0 + 1)
		share := b.peak / float64(nNodes)
		for r := b.r0; r <= b.r1; r++ {
			for c := b.c0; c <= b.c1; c++ {
				id := s.fineID(r, c)
				if blocked != nil && blocked[id] {
					continue
				}
				nc := perNode[id]
				if nc == nil {
					nc = &nodeCur{}
					perNode[id] = nc
				}
				nc.waves = append(nc.waves, &netlist.Pulse{
					Low: 0, High: share,
					Delay: b.delay, Rise: b.rise, Width: b.width, Fall: b.rise,
					Period: s.ClockPeriod,
				})
			}
		}
	}
	// Leakage floor: distributed over all fine nodes, region-tagged.
	// Scale: LeakageFrac of the average switching current.
	totalAvg := 0.0
	for _, b := range blocks {
		duty := (b.width + b.rise) / s.ClockPeriod
		totalAvg += b.peak * duty
	}
	leakPerNode := 0.0
	if s.LeakageFrac > 0 {
		leakPerNode = s.LeakageFrac * totalAvg / float64(s.Rows*s.Cols) / maxFloat(1e-12, 1-s.LeakageFrac)
	}
	name := 0
	for r := 0; r < s.Rows; r++ {
		for c := 0; c < s.Cols; c++ {
			id := s.fineID(r, c)
			if blocked != nil && blocked[id] {
				continue
			}
			region := s.regionOf(r, c)
			if nc, ok := perNode[id]; ok {
				var wave netlist.Waveform
				if len(nc.waves) == 1 {
					wave = nc.waves[0]
				} else {
					wave = sumWave(nc.waves, s.ClockPeriod)
				}
				nl.Sources = append(nl.Sources, netlist.CurrentSource{
					Name: fmt.Sprintf("sw%d", name), A: id, Wave: wave,
					LeffSens: 1, Region: region,
				})
				name++
			}
			if leakPerNode > 0 {
				nl.Sources = append(nl.Sources, netlist.CurrentSource{
					Name: fmt.Sprintf("lk%d", name), A: id, Wave: netlist.DC(leakPerNode),
					LeffSens: 1, Region: region, Leakage: true,
				})
				name++
			}
		}
	}
	if len(nl.Sources) == 0 {
		return fmt.Errorf("grid: no current sources generated")
	}
	return nil
}

// sumWave represents the superposition of several waveforms; it
// serializes as a PWL sampled over a few clock periods.
func sumWave(ws []netlist.Waveform, period float64) netlist.Waveform {
	return &superposition{ws: ws, period: period}
}

// superposition sums component waveforms pointwise.
type superposition struct {
	ws     []netlist.Waveform
	period float64
}

// At implements netlist.Waveform.
func (s *superposition) At(t float64) float64 {
	v := 0.0
	for _, w := range s.ws {
		v += w.At(t)
	}
	return v
}

// Format implements netlist.Waveform by nesting SCALE/PWL forms; for
// serialization we sample onto a PWL over one period — see SamplePWL.
func (s *superposition) Format() string {
	// Serialize as a dense PWL over the envelope of the components.
	return s.asPWL().Format()
}

func (s *superposition) asPWL() *netlist.PWL {
	// Sample densely over five clock periods — enough for any analysis
	// window aligned to the clock; the PWL holds its end value beyond.
	const samples = 256
	span := 5 * s.period
	if span <= 0 {
		span = 10e-9
	}
	ts := make([]float64, samples)
	vs := make([]float64, samples)
	for i := range ts {
		ts[i] = span * float64(i) / float64(samples-1)
		vs[i] = s.At(ts[i])
	}
	p, err := netlist.NewPWL(ts, vs)
	if err != nil {
		panic(err) // times are constructed ascending
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
