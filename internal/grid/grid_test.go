package grid

import (
	"bytes"
	"math"
	"testing"

	"opera/internal/factor"
	"opera/internal/mna"
	"opera/internal/netlist"
	"opera/internal/order"
)

func TestSpecNodeCount(t *testing.T) {
	s := DefaultSpec(1000, 1)
	n := s.NumNodes()
	if n < 700 || n > 1400 {
		t.Errorf("DefaultSpec(1000) produced %d nodes", n)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildProducesValidNetlist(t *testing.T) {
	nl, err := Build(DefaultSpec(400, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("generated netlist invalid: %v", err)
	}
	if len(nl.Pads) < 2 {
		t.Errorf("only %d pads", len(nl.Pads))
	}
	if len(nl.Caps) == 0 || len(nl.Sources) == 0 {
		t.Error("missing caps or sources")
	}
}

func TestBuildDeterministicForSeed(t *testing.T) {
	a, err := Build(DefaultSpec(300, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(DefaultSpec(300, 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sources) != len(b.Sources) {
		t.Fatalf("source counts differ: %d vs %d", len(a.Sources), len(b.Sources))
	}
	for i := range a.Sources {
		for _, tt := range []float64{0, 3e-10, 1.1e-9} {
			if a.Sources[i].Wave.At(tt) != b.Sources[i].Wave.At(tt) {
				t.Fatalf("source %d waveform differs", i)
			}
		}
	}
	c, err := Build(DefaultSpec(300, 43))
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Sources {
		if i < len(c.Sources) && a.Sources[i].Wave.At(5e-10) != c.Sources[i].Wave.At(5e-10) {
			diff = true
			break
		}
	}
	if !diff && len(a.Sources) == len(c.Sources) {
		t.Error("different seeds produced identical grids")
	}
}

func TestCalibrationHitsPeakDrop(t *testing.T) {
	s := DefaultSpec(500, 3)
	nl, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	perm := order.NestedDissection(order.NewGraph(sys.Ga), 0)
	f, err := factor.Cholesky(sys.Ga, perm)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, sys.N)
	v := make([]float64, sys.N)
	maxDrop := 0.0
	for k := 0; k <= 24; k++ {
		tt := s.ClockPeriod * float64(k) / 24
		sys.RHS(tt, u, nil, nil)
		f.SolveTo(v, u)
		for _, vi := range v {
			if d := s.VDD - vi; d > maxDrop {
				maxDrop = d
			}
		}
	}
	want := s.PeakDropFrac * s.VDD
	if math.Abs(maxDrop-want) > 0.02*want {
		t.Errorf("calibrated peak drop %g, want %g", maxDrop, want)
	}
	// The paper's condition: below 10% of VDD.
	if maxDrop >= 0.1*s.VDD {
		t.Errorf("peak drop %g violates the <10%% VDD condition", maxDrop)
	}
}

func TestGridIsSolvableSPD(t *testing.T) {
	nl, err := Build(DefaultSpec(800, 11))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Ga.IsSymmetric(1e-12) {
		t.Error("Ga not symmetric")
	}
	if _, err := factor.Cholesky(sys.UnionPattern(), nil); err != nil {
		t.Errorf("union pattern not SPD-factorable: %v", err)
	}
}

func TestRegionsCoverAllSources(t *testing.T) {
	s := DefaultSpec(400, 5)
	s.Regions = 2
	nl, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, src := range nl.Sources {
		if src.Region < 0 || src.Region >= s.NumRegions() {
			t.Fatalf("source %q region %d outside [0,%d)", src.Name, src.Region, s.NumRegions())
		}
		seen[src.Region] = true
	}
	if len(seen) != s.NumRegions() {
		t.Errorf("only %d of %d regions have sources", len(seen), s.NumRegions())
	}
}

func TestNoCoarseMesh(t *testing.T) {
	s := DefaultSpec(300, 9)
	s.CoarseStride = 0
	nl, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumNodes != s.Rows*s.Cols {
		t.Errorf("nodes %d, want %d", nl.NumNodes, s.Rows*s.Cols)
	}
}

func TestGeneratedNetlistSerializes(t *testing.T) {
	nl, err := Build(DefaultSpec(200, 13))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := netlist.Write(&buf, nl); err != nil {
		t.Fatal(err)
	}
	got, err := netlist.Read(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if got.NumNodes != nl.NumNodes || len(got.Sources) != len(nl.Sources) {
		t.Error("round trip changed the grid")
	}
	// Waveform fidelity within the PWL sampling resolution.
	for i := range nl.Sources {
		for _, tt := range []float64{1e-10, 5e-10, 1.5e-9} {
			a := nl.Sources[i].Wave.At(tt)
			b := got.Sources[i].Wave.At(tt)
			scale := math.Abs(a) + 1e-9
			if math.Abs(a-b) > 0.15*scale {
				t.Errorf("source %d at t=%g: %g vs %g", i, tt, a, b)
			}
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := DefaultSpec(100, 1)
	bad.Rows = 1
	if err := bad.Validate(); err == nil {
		t.Error("1-row mesh accepted")
	}
	bad = DefaultSpec(100, 1)
	bad.PeakDropFrac = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("90% drop target accepted")
	}
	bad = DefaultSpec(100, 1)
	bad.ClockPeriod = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
}

func TestMacroBlockages(t *testing.T) {
	s := DefaultSpec(900, 17)
	s.Macros = 3
	nl, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// The blocked grid must have fewer mesh resistors and caps than the
	// unblocked one, and still be solvable.
	s2 := s
	s2.Macros = 0
	open, err := Build(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Caps) >= len(open.Caps) {
		t.Errorf("macros should remove caps: %d vs %d", len(nl.Caps), len(open.Caps))
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	perm := order.NestedDissection(order.NewGraph(sys.Ga), 0)
	if _, err := factor.Cholesky(sys.Ga, perm); err != nil {
		t.Fatalf("macro grid not solvable: %v", err)
	}
	// Calibration still holds the drop target.
	f, err := factor.Cholesky(sys.Ga, perm)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, sys.N)
	v := make([]float64, sys.N)
	maxDrop := 0.0
	for k := 0; k <= 24; k++ {
		tt := s.ClockPeriod * float64(k) / 24
		sys.RHS(tt, u, nil, nil)
		f.SolveTo(v, u)
		for _, vi := range v {
			if d := s.VDD - vi; d > maxDrop {
				maxDrop = d
			}
		}
	}
	if maxDrop >= 0.1*s.VDD {
		t.Errorf("macro grid drop %g violates the <10%% condition", maxDrop)
	}
}

func TestMacroGridEndToEnd(t *testing.T) {
	s := DefaultSpec(600, 23)
	s.Macros = 2
	nl, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := mna.Build(nl, mna.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The union pattern must still factor (OPERA runs on macro grids).
	if _, err := factor.Cholesky(sys.UnionPattern(), nil); err != nil {
		t.Fatalf("macro grid union pattern: %v", err)
	}
}
