// Package grid synthesizes power-distribution networks with the
// structure of the industrial grids the paper evaluates (§3, §6): a
// fine metal mesh carrying the loads, an optional coarser upper-metal
// mesh connected through vias, C4/pad supply connections modeled as VDD
// behind a package pin resistance, per-node load capacitance with a
// gate-capacitance fraction, and functional-block transient drain
// currents (clock-synchronized pulse trains plus a leakage floor)
// calibrated so the peak nominal IR drop stays below a target fraction
// of VDD — the paper's §6 operating condition (<10%).
//
// The authors' grids are proprietary; this generator is the documented
// substitution (DESIGN.md §5): it reproduces their structural
// statistics — mesh topology, pad scaling, load distribution, drop
// levels — so the accuracy/speed comparison exercises the same code
// paths at the same conditioning.
package grid

import (
	"fmt"
	"math"
)

// Spec parameterizes a synthetic power grid.
type Spec struct {
	// Rows, Cols are the fine-mesh dimensions (Rows·Cols fine nodes).
	Rows, Cols int
	// CoarseStride, if > 1, adds an upper-metal mesh with one node per
	// CoarseStride×CoarseStride tile, strapped to the fine mesh by vias.
	CoarseStride int

	VDD float64

	// RSeg is the fine-mesh segment resistance; RSegCoarse the upper
	// mesh's (wider metal, lower resistance); RVia the via resistance;
	// RPin the package pin resistance per pad.
	RSeg, RSegCoarse, RVia, RPin float64

	// CNode is the per-fine-node load capacitance; GateFrac the portion
	// that tracks Leff (the paper assumes 40%).
	CNode, GateFrac float64

	// PadStride places a pad every PadStride coarse nodes (or fine
	// nodes when there is no coarse mesh), starting at the corner.
	PadStride int

	// NumBlocks functional blocks are laid out as random rectangles on
	// the fine mesh; each draws a clock-synchronized trapezoidal pulse
	// current with randomized magnitude, phase and width.
	NumBlocks   int
	ClockPeriod float64

	// PeakDropFrac calibrates block currents so the worst nominal DC
	// drop over one clock period is this fraction of VDD (paper: <0.1).
	PeakDropFrac float64
	// LeakageFrac is the leakage share of the average total current
	// (paper §6 cites ~5%).
	LeakageFrac float64

	// Regions partitions the die into Regions×Regions rectangles for
	// the §5.1 intra-die leakage special case (0 or 1 = single region).
	Regions int

	// Macros places this many rectangular blockages (hard IP macros) on
	// the fine mesh: their interior mesh segments are removed (routing
	// detours around macros), loads sit only on the ring. Industrial
	// floorplans are full of such holes; they stress the solver with
	// irregular sparsity. 0 disables.
	Macros int

	Seed int64
}

// DefaultSpec returns electrically reasonable 90nm-flavored parameters
// for an approximately node-count-sized grid. Node counts below ~64
// are clamped.
func DefaultSpec(nodes int, seed int64) Spec {
	if nodes < 64 {
		nodes = 64
	}
	// With a coarse overlay at stride 4 the node count is
	// rows·cols·(1 + 1/16); solve rows ≈ cols.
	side := int(math.Sqrt(float64(nodes) / 1.0625))
	if side < 8 {
		side = 8
	}
	return Spec{
		Rows: side, Cols: side,
		CoarseStride: 4,
		VDD:          1.2,
		RSeg:         2.0,
		RSegCoarse:   0.4,
		RVia:         0.8,
		RPin:         0.05,
		CNode:        5e-13,
		GateFrac:     0.4,
		PadStride:    8,
		NumBlocks:    8 + side/4,
		ClockPeriod:  2e-9,
		PeakDropFrac: 0.08,
		LeakageFrac:  0.05,
		Regions:      2,
		Seed:         seed,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Rows < 2 || s.Cols < 2 {
		return fmt.Errorf("grid: mesh must be at least 2x2, got %dx%d", s.Rows, s.Cols)
	}
	if s.VDD <= 0 {
		return fmt.Errorf("grid: VDD must be positive, got %g", s.VDD)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"RSeg", s.RSeg}, {"RPin", s.RPin}} {
		if r.v <= 0 {
			return fmt.Errorf("grid: %s must be positive, got %g", r.name, r.v)
		}
	}
	if s.CoarseStride > 1 && (s.RSegCoarse <= 0 || s.RVia <= 0) {
		return fmt.Errorf("grid: coarse mesh requires positive RSegCoarse and RVia")
	}
	if s.CNode < 0 {
		return fmt.Errorf("grid: negative node capacitance %g", s.CNode)
	}
	if s.GateFrac < 0 || s.GateFrac > 1 {
		return fmt.Errorf("grid: gate fraction %g outside [0,1]", s.GateFrac)
	}
	if s.PadStride < 1 {
		return fmt.Errorf("grid: pad stride must be >= 1, got %d", s.PadStride)
	}
	if s.NumBlocks < 1 {
		return fmt.Errorf("grid: need at least one functional block")
	}
	if s.ClockPeriod <= 0 {
		return fmt.Errorf("grid: clock period must be positive, got %g", s.ClockPeriod)
	}
	if s.PeakDropFrac <= 0 || s.PeakDropFrac >= 0.5 {
		return fmt.Errorf("grid: peak drop fraction %g outside (0, 0.5)", s.PeakDropFrac)
	}
	if s.LeakageFrac < 0 || s.LeakageFrac > 0.5 {
		return fmt.Errorf("grid: leakage fraction %g outside [0, 0.5]", s.LeakageFrac)
	}
	return nil
}

// NumNodes returns the total node count the spec will generate.
func (s Spec) NumNodes() int {
	n := s.Rows * s.Cols
	if s.CoarseStride > 1 {
		n += s.coarseRows() * s.coarseCols()
	}
	return n
}

func (s Spec) coarseRows() int { return (s.Rows + s.CoarseStride - 1) / s.CoarseStride }
func (s Spec) coarseCols() int { return (s.Cols + s.CoarseStride - 1) / s.CoarseStride }

// fineID maps fine-mesh coordinates to a node id.
func (s Spec) fineID(r, c int) int { return r*s.Cols + c }

// coarseID maps coarse-mesh coordinates to a node id (after all fine
// nodes).
func (s Spec) coarseID(i, j int) int {
	return s.Rows*s.Cols + i*s.coarseCols() + j
}

// regionOf returns the §5.1 region index of a fine node.
func (s Spec) regionOf(r, c int) int {
	if s.Regions <= 1 {
		return 0
	}
	ri := r * s.Regions / s.Rows
	ci := c * s.Regions / s.Cols
	if ri >= s.Regions {
		ri = s.Regions - 1
	}
	if ci >= s.Regions {
		ci = s.Regions - 1
	}
	return ri*s.Regions + ci
}

// NumRegions returns the number of intra-die regions.
func (s Spec) NumRegions() int {
	if s.Regions <= 1 {
		return 1
	}
	return s.Regions * s.Regions
}
