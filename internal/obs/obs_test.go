package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New("root")
	a := tr.Start("a", Int("n", 100))
	b := tr.Start("b")
	time.Sleep(time.Millisecond)
	b.End()
	a.End()
	c := tr.Start("c")
	c.End()
	tr.Record("d", 5*time.Millisecond, String("kind", "accumulated"))
	tr.Finish()

	root := tr.Root()
	kids := root.Children()
	if len(kids) != 3 {
		t.Fatalf("root has %d children, want 3 (a, c, d)", len(kids))
	}
	if kids[0].Name != "a" || kids[1].Name != "c" || kids[2].Name != "d" {
		t.Fatalf("child order wrong: %s, %s, %s", kids[0].Name, kids[1].Name, kids[2].Name)
	}
	aKids := kids[0].Children()
	if len(aKids) != 1 || aKids[0].Name != "b" {
		t.Fatalf("span a children = %v, want [b]", aKids)
	}
	if kids[0].Duration() < aKids[0].Duration() {
		t.Errorf("parent a (%v) shorter than child b (%v)", kids[0].Duration(), aKids[0].Duration())
	}
	if got := kids[2].Duration(); got != 5*time.Millisecond {
		t.Errorf("recorded span duration %v, want 5ms", got)
	}
	if root.Duration() < kids[0].Duration()+kids[1].Duration() {
		t.Errorf("root %v shorter than sum of sequential children", root.Duration())
	}
}

func TestEndClosesOpenDescendants(t *testing.T) {
	tr := New("root")
	outer := tr.Start("outer")
	tr.Start("inner-left-open")
	outer.End() // must close inner too and restore the cursor
	sib := tr.Start("sibling")
	sib.End()
	tr.Finish()
	kids := tr.Root().Children()
	if len(kids) != 2 || kids[1].Name != "sibling" {
		t.Fatalf("cursor not restored after nested End: children %+v", kids)
	}
	inner := kids[0].Children()
	if len(inner) != 1 || !inner[0].done {
		t.Fatalf("open descendant not closed by parent End")
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test.ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1.0, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms["test.ms"]
	if snap.Count != 6 {
		t.Fatalf("count %d, want 6", snap.Count)
	}
	// Buckets are upper-bound inclusive: {<=1: 0.5 and 1.0}, {<=10: 5},
	// {<=100: 50}, {+Inf: 500 and 5000}.
	want := []int64{2, 1, 1, 2}
	if len(snap.Buckets) != 4 {
		t.Fatalf("bucket count %d, want 4", len(snap.Buckets))
	}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d (le %g): count %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if !math.IsInf(snap.Buckets[3].UpperBound, 1) {
		t.Errorf("last bucket bound %g, want +Inf", snap.Buckets[3].UpperBound)
	}
	if snap.Min != 0.5 || snap.Max != 5000 {
		t.Errorf("min/max %g/%g, want 0.5/5000", snap.Min, snap.Max)
	}
	if got, want := snap.Sum, 0.5+1+5+50+500+5000; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum %g, want %g", got, want)
	}
	if got, want := snap.Mean(), (0.5+1+5+50+500+5000)/6; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean %g, want %g", got, want)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("test.events_total")
			h := reg.Histogram("test.values", []float64{0.25, 0.5, 0.75})
			g := reg.Gauge("test.max")
			for i := 0; i < per; i++ {
				c.Inc()
				v := float64(i%100) / 100
				h.Observe(v)
				g.SetMax(v)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("test.events_total").Value(); got != workers*per {
		t.Errorf("counter %d, want %d", got, workers*per)
	}
	if got := reg.Histogram("test.values", nil).Count(); got != workers*per {
		t.Errorf("histogram count %d, want %d", got, workers*per)
	}
	if got := reg.Gauge("test.max").Value(); got != 0.99 {
		t.Errorf("gauge max %g, want 0.99", got)
	}
}

func TestNilFastPath(t *testing.T) {
	// Every operation on the disabled (nil) layer must be a safe no-op.
	var tr *Tracer
	sp := tr.Start("x", Int("n", 1))
	sp.End()
	sp.SetAttrs(String("k", "v"))
	tr.Record("y", time.Second)
	tr.Finish()
	tr.CollectAllocs(false)
	if tr.Root() != nil || tr.Dump() != nil {
		t.Error("nil tracer must expose no spans")
	}
	if err := tr.WriteText(new(bytes.Buffer)); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
	if err := tr.WriteJSON(new(bytes.Buffer)); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
	reg := tr.Registry()
	if reg != nil {
		t.Fatal("nil tracer must return a nil registry")
	}
	reg.Counter("c").Add(3)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	reg.Gauge("g").SetMax(2)
	reg.Histogram("h", MSBuckets).Observe(1)
	reg.Histogram("h", MSBuckets).ObserveSince(time.Now())
	if reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 || reg.Histogram("h", nil).Count() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if snap := reg.Snapshot(); len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	tr := New("opera.run")
	sp := tr.Start("factor", Int("n", 2600), String("rung", "block-cholesky"))
	tr.Start("factor.block-cholesky")
	tr.Finish()
	_ = sp
	reg := tr.Registry()
	reg.Counter("galerkin.steps_total").Add(20)
	reg.Gauge("numguard.max_residual").Set(1.5e-15)
	reg.Histogram("transient.step_ms", []float64{1, 10}).Observe(3.5)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := DecodeDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "opera.run" || len(d.Spans) != 1 || d.Spans[0].Name != "factor" {
		t.Fatalf("decoded dump shape wrong: %+v", d)
	}
	if len(d.Spans[0].Spans) != 1 || d.Spans[0].Spans[0].Name != "factor.block-cholesky" {
		t.Fatalf("nested span lost: %+v", d.Spans[0])
	}
	if d.Spans[0].Attrs["rung"] != "block-cholesky" || d.Spans[0].Attrs["n"] != "2600" {
		t.Errorf("attrs lost: %+v", d.Spans[0].Attrs)
	}
	if d.Metrics.Counters["galerkin.steps_total"] != 20 {
		t.Errorf("counter lost: %+v", d.Metrics.Counters)
	}
	if d.Metrics.Gauges["numguard.max_residual"] != 1.5e-15 {
		t.Errorf("gauge lost: %+v", d.Metrics.Gauges)
	}
	h := d.Metrics.Histograms["transient.step_ms"]
	if h.Count != 1 || h.Sum != 3.5 {
		t.Errorf("histogram lost: %+v", h)
	}
	if len(h.Buckets) != 3 || !math.IsInf(h.Buckets[2].UpperBound, 1) {
		t.Errorf("+Inf bucket did not survive the round trip: %+v", h.Buckets)
	}
}

func TestWriteText(t *testing.T) {
	tr := New("opera.run")
	sp := tr.Start("transient", Int("steps", 20))
	sp.End()
	tr.Registry().Counter("galerkin.steps_total").Add(20)
	tr.Finish()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"opera.run", "transient", "steps=20", "galerkin.steps_total", "metrics:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-16, 100, 4)
	want := []float64{1e-16, 1e-14, 1e-12, 1e-10}
	for i := range want {
		if math.Abs(b[i]-want[i]) > want[i]*1e-12 {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}
