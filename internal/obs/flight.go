package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// FlightEntry is the black-box record of one finished job: identity,
// timing split, terminal state, the complete span tree, the numguard
// view and the tail of the job's structured log. Everything an operator
// needs to explain a slow or failed job after the fact, with no
// external tracing backend.
type FlightEntry struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id"`
	// Shard is this process's cluster self-name ("s0", "s1", ...) when
	// it runs peered; ClusterJobID is the router-visible job ID
	// ("s0~job-000042"), so a flight entry joins directly against router
	// logs and the cluster's shard-prefixed API. Both are empty on a
	// standalone operad.
	Shard        string `json:"shard,omitempty"`
	ClusterJobID string `json:"cluster_job_id,omitempty"`
	// Key is the job's content-address cache key — populated on fresh
	// solves and on cache-hit serves alike, so repeated requests are
	// joinable by key across the recorder.
	Key       string    `json:"key,omitempty"`
	State     string    `json:"state"`
	Analysis  string    `json:"analysis,omitempty"`
	Priority  string    `json:"priority,omitempty"`
	Cached    bool      `json:"cached,omitempty"`
	Degraded  bool      `json:"degraded,omitempty"`
	Submitted time.Time `json:"submitted"`
	QueuedMS  float64   `json:"queued_ms"`
	RunMS     float64   `json:"run_ms"`
	Error     string    `json:"error,omitempty"`
	// Guard is the job's numguard summary (escalations, refinement
	// counts) or, for failed jobs, the structured diagnosis.
	Guard any `json:"guard,omitempty"`
	// Health is the job's numerical-health record: residual norm,
	// condition estimate, ladder rung, flops and fill of the factor
	// that served the solve.
	Health any `json:"health,omitempty"`
	// Trace is the job's span tree with the six-phase timing breakdown.
	Trace *Dump `json:"trace,omitempty"`
	// Log is the tail of the job's structured log, one rendered JSON
	// line per element, oldest first.
	Log []json.RawMessage `json:"log,omitempty"`
}

// FlightDump is the /debug/flight wire form: three bounded views over
// the same stream of finished jobs. An entry can appear in more than
// one view (a failed job is usually also among the most recent).
type FlightDump struct {
	// Recent holds the last K finished jobs, oldest first.
	Recent []FlightEntry `json:"recent"`
	// Slowest holds the K slowest jobs by run time, slowest first
	// (cache hits, which run nothing, are excluded).
	Slowest []FlightEntry `json:"slowest"`
	// Failed holds the last K failed or canceled jobs, oldest first.
	Failed []FlightEntry `json:"failed"`
}

// FlightRecorder is a fixed-size in-memory flight recorder for the
// analysis service: it retains the last K finished jobs and, in
// separate rings, the K slowest and the last K failed ones. All three
// views are hard-bounded — recording the millionth job costs the same
// memory as the hundredth. A nil *FlightRecorder is the disabled state:
// Record and Snapshot are no-ops.
type FlightRecorder struct {
	mu      sync.Mutex
	k       int
	recent  []FlightEntry
	slowest []FlightEntry // sorted descending by RunMS, len <= k
	failed  []FlightEntry
}

// NewFlightRecorder builds a recorder retaining k entries per view
// (k <= 0 returns nil, the disabled recorder).
func NewFlightRecorder(k int) *FlightRecorder {
	if k <= 0 {
		return nil
	}
	return &FlightRecorder{k: k}
}

// Record adds one finished job. Safe for concurrent use; no-op on nil.
func (f *FlightRecorder) Record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recent = appendBounded(f.recent, e, f.k)
	if e.Error != "" {
		f.failed = appendBounded(f.failed, e, f.k)
	}
	if !e.Cached {
		// Insertion sort into the slowest view (descending RunMS); K is
		// small, so the linear scan is fine.
		i := len(f.slowest)
		for i > 0 && f.slowest[i-1].RunMS < e.RunMS {
			i--
		}
		if i < f.k {
			f.slowest = append(f.slowest, FlightEntry{})
			copy(f.slowest[i+1:], f.slowest[i:])
			f.slowest[i] = e
			if len(f.slowest) > f.k {
				f.slowest = f.slowest[:f.k]
			}
		}
	}
}

func appendBounded(ring []FlightEntry, e FlightEntry, k int) []FlightEntry {
	ring = append(ring, e)
	if len(ring) > k {
		copy(ring, ring[1:])
		ring = ring[:k]
	}
	return ring
}

// Snapshot copies the recorder's current state (empty views on nil).
func (f *FlightRecorder) Snapshot() FlightDump {
	var d FlightDump
	if f == nil {
		return d
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	d.Recent = append([]FlightEntry(nil), f.recent...)
	d.Slowest = append([]FlightEntry(nil), f.slowest...)
	d.Failed = append([]FlightEntry(nil), f.failed...)
	return d
}

// Find returns the retained entry with the given trace ID, preferring
// the most recently recorded one.
func (f *FlightRecorder) Find(traceID string) (FlightEntry, bool) {
	if f == nil {
		return FlightEntry{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ring := range [][]FlightEntry{f.recent, f.failed, f.slowest} {
		for i := len(ring) - 1; i >= 0; i-- {
			if ring[i].TraceID == traceID {
				return ring[i], true
			}
		}
	}
	return FlightEntry{}, false
}

// Handler serves the recorder as JSON: the full three-view dump, or a
// single entry with ?trace=<id> (404 when that trace is not retained).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("trace"); id != "" {
			e, ok := f.Find(id)
			if !ok {
				http.Error(w, fmt.Sprintf("flight: trace %s not retained", id), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			writeJSONValue(w, e)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSONValue(w, f.Snapshot())
	})
}

// DecodeFlight parses a FlightDump written by the /debug/flight
// endpoint (what `benchtab -flight` consumes).
func DecodeFlight(r io.Reader) (*FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: decoding flight dump: %w", err)
	}
	return &d, nil
}

// ReadFlightFile parses a flight dump from the named file.
func ReadFlightFile(path string) (*FlightDump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeFlight(f)
}
