package obs

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfileRing is a bounded in-memory store of pprof captures keyed by
// trace ID. The service arms it on SLO breaches: when a job overruns
// its latency objective while still running, the ring grabs a heap
// snapshot plus a short CPU profile of the live process, so the
// evidence of *why* the job was slow survives the job itself. Retention
// is a fixed entry budget — oldest captures fall off; there is no TTL.
//
// CPU profiling is process-global and exclusive (runtime/pprof allows
// one at a time), so overlapping captures coalesce: while one capture's
// CPU window is open, further Capture calls store only their heap
// snapshot and report ErrCaptureBusy.
type ProfileRing struct {
	// CPUDuration is the CPU-profile window per capture. 0 selects 1s —
	// long enough to attribute a slow solve, short enough to not pile up
	// behind the breach.
	CPUDuration time.Duration

	mu      sync.Mutex
	max     int
	entries []*Profile // oldest first
	busy    bool       // a CPU window is open
}

// Profile is one stored capture.
type Profile struct {
	TraceID  string    `json:"trace_id"`
	Kind     string    `json:"kind"` // "cpu" or "heap"
	Reason   string    `json:"reason,omitempty"`
	Captured time.Time `json:"captured"`
	Size     int       `json:"size_bytes"`

	data []byte
}

// ErrCaptureBusy reports that a CPU window was already open, so only
// the heap snapshot was stored.
var ErrCaptureBusy = fmt.Errorf("obs: a CPU profile capture is already in progress")

// NewProfileRing builds a ring holding at most max profiles (a
// cpu+heap pair is two entries). max <= 0 returns nil; every method is
// nil-safe, so an unconfigured ring costs nothing.
func NewProfileRing(max int) *ProfileRing {
	if max <= 0 {
		return nil
	}
	return &ProfileRing{max: max}
}

// Capture stores a heap snapshot immediately and then, unless another
// capture holds the CPU window, a CPU profile of CPUDuration. It blocks
// for the CPU window and is meant to be called from a watchdog
// goroutine, not a request path.
func (r *ProfileRing) Capture(traceID, reason string) error {
	if r == nil {
		return nil
	}
	var heap bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		if err := p.WriteTo(&heap, 0); err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
	}
	r.add(&Profile{TraceID: traceID, Kind: "heap", Reason: reason, Captured: time.Now(), Size: heap.Len(), data: heap.Bytes()})

	r.mu.Lock()
	if r.busy {
		r.mu.Unlock()
		return ErrCaptureBusy
	}
	r.busy = true
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.busy = false
		r.mu.Unlock()
	}()

	dur := r.CPUDuration
	if dur <= 0 {
		dur = time.Second
	}
	var cpu bytes.Buffer
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		// Someone else (e.g. /debug/pprof/profile) owns the profiler.
		return fmt.Errorf("obs: cpu profile: %w", err)
	}
	time.Sleep(dur)
	pprof.StopCPUProfile()
	r.add(&Profile{TraceID: traceID, Kind: "cpu", Reason: reason, Captured: time.Now(), Size: cpu.Len(), data: cpu.Bytes()})
	return nil
}

func (r *ProfileRing) add(p *Profile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, p)
	if over := len(r.entries) - r.max; over > 0 {
		r.entries = append([]*Profile(nil), r.entries[over:]...)
	}
}

// Snapshot lists the stored captures, newest first, without payloads.
func (r *ProfileRing) Snapshot() []Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Profile, 0, len(r.entries))
	for i := len(r.entries) - 1; i >= 0; i-- {
		out = append(out, *r.entries[i])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Captured.After(out[j].Captured) })
	return out
}

// Get returns the newest capture for (traceID, kind).
func (r *ProfileRing) Get(traceID, kind string) (Profile, bool) {
	if r == nil {
		return Profile{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.entries) - 1; i >= 0; i-- {
		if e := r.entries[i]; e.TraceID == traceID && e.Kind == kind {
			return *e, true
		}
	}
	return Profile{}, false
}

// ServeIndex writes the capture index as JSON: GET /debug/profiles.
func (r *ProfileRing) ServeIndex(w http.ResponseWriter, _ *http.Request) {
	if r == nil {
		http.Error(w, "profile ring disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSONValue(w, struct {
		Profiles []Profile `json:"profiles"`
	}{r.Snapshot()})
}

// ServeProfile streams one capture's raw pprof bytes:
// GET /debug/profiles/{trace}/{kind}.
func (r *ProfileRing) ServeProfile(w http.ResponseWriter, req *http.Request, traceID, kind string) {
	if r == nil {
		http.Error(w, "profile ring disabled", http.StatusNotFound)
		return
	}
	kind = strings.ToLower(kind)
	if kind != "cpu" && kind != "heap" {
		http.Error(w, "kind must be cpu or heap", http.StatusBadRequest)
		return
	}
	p, ok := r.Get(traceID, kind)
	if !ok {
		http.Error(w, "no such profile", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", p.TraceID+"."+p.Kind+".pprof"))
	w.Write(p.data)
}
