package obs

import (
	"fmt"
	"io"
	"math"
)

// Metrics federation: merging per-shard registry snapshots into one
// cluster view. The merge is exact for the fixed-bucket histograms this
// package hands out: every shard buckets observations with the same
// upper bounds (MSBuckets and friends are compile-time constants), and
// HistogramSnapshot stores per-bucket (non-cumulative) counts, so
// summing bucket-wise yields byte-for-byte the histogram that a single
// registry observing the union of all shards' raw values would hold.
// Any quantile estimator that reads only (bounds, counts) therefore
// returns identical answers on the merged histogram and on the union —
// cluster-wide SLO quantiles are exact, not approximations stacked on
// approximations.

// Quantile returns the q-quantile (0 < q <= 1) estimated from the
// snapshot's buckets: the upper bound of the bucket where the
// cumulative count first reaches ceil(q·total), the same rule the
// runtime-metrics sampler uses. The overflow bucket reports the
// histogram's observed Max (the best finite upper bound available).
// Returns 0 for an empty histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return h.Max
			}
			return b.UpperBound
		}
	}
	return h.Max
}

// sameBounds reports whether two snapshots bucket over identical upper
// bounds — the precondition for an exact merge.
func sameBounds(a, b HistogramSnapshot) bool {
	if len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		au, bu := a.Buckets[i].UpperBound, b.Buckets[i].UpperBound
		if au != bu && !(math.IsInf(au, 1) && math.IsInf(bu, 1)) {
			return false
		}
	}
	return true
}

// MergeHistograms merges b into a bucket-wise. It reports false (and
// returns a unchanged) when the bucket bounds differ — merging
// incompatible layouts would silently corrupt quantiles, so callers
// must skip instead.
func MergeHistograms(a, b HistogramSnapshot) (HistogramSnapshot, bool) {
	if a.Count == 0 {
		return b, true
	}
	if b.Count == 0 {
		return a, true
	}
	if !sameBounds(a, b) {
		return a, false
	}
	out := HistogramSnapshot{
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		Min:     math.Min(a.Min, b.Min),
		Max:     math.Max(a.Max, b.Max),
		Buckets: make([]BucketSnapshot, len(a.Buckets)),
	}
	for i := range a.Buckets {
		out.Buckets[i] = BucketSnapshot{
			UpperBound: a.Buckets[i].UpperBound,
			Count:      a.Buckets[i].Count + b.Buckets[i].Count,
		}
	}
	return out, true
}

// AggregateSnapshots folds per-shard snapshots into the cluster
// aggregate: counters sum, histograms merge exactly (a name whose
// bucket layouts disagree across shards is dropped from the aggregate —
// it can still be read per shard). Gauges are point-in-time last-values
// with no meaningful cross-shard fold, so the aggregate carries none.
func AggregateSnapshots(shards map[string]MetricsSnapshot) MetricsSnapshot {
	agg := MetricsSnapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	skip := map[string]bool{}
	for _, name := range sortedKeys(shards) {
		snap := shards[name]
		for cn, v := range snap.Counters {
			agg.Counters[cn] += v
		}
		for hn, h := range snap.Histograms {
			if skip[hn] {
				continue
			}
			cur, ok := agg.Histograms[hn]
			if !ok {
				agg.Histograms[hn] = h
				continue
			}
			merged, ok := MergeHistograms(cur, h)
			if !ok {
				delete(agg.Histograms, hn)
				skip[hn] = true
				continue
			}
			agg.Histograms[hn] = merged
		}
	}
	return agg
}

// clusterShard labels the aggregate rows in the federated exposition.
const clusterShard = "cluster"

// WriteFederatedProm renders per-shard snapshots plus their aggregate
// in the text exposition format, every sample labeled {shard="..."}.
// Counters and histograms additionally get a {shard="cluster"}
// aggregate row; gauges render per shard only. Output is fully
// deterministic: metric names sorted, then shard names sorted within
// each metric, the cluster row last.
func WriteFederatedProm(w io.Writer, shards map[string]MetricsSnapshot) error {
	agg := AggregateSnapshots(shards)
	names := sortedKeys(shards)

	counterNames := map[string]bool{}
	gaugeNames := map[string]bool{}
	histNames := map[string]bool{}
	for _, snap := range shards {
		for n := range snap.Counters {
			counterNames[n] = true
		}
		for n := range snap.Gauges {
			gaugeNames[n] = true
		}
		for n := range snap.Histograms {
			histNames[n] = true
		}
	}

	for _, name := range sortedKeys(counterNames) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, shard := range names {
			v, ok := shards[shard].Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %d\n", pn, shard, v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s{shard=%q} %d\n", pn, clusterShard, agg.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gaugeNames) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, shard := range names {
			v, ok := shards[shard].Gauges[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %s\n", pn, shard, promFloat(v)); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(histNames) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, shard := range names {
			h, ok := shards[shard].Histograms[name]
			if !ok {
				continue
			}
			if err := writeLabeledHist(w, pn, shard, h); err != nil {
				return err
			}
		}
		if h, ok := agg.Histograms[name]; ok {
			if err := writeLabeledHist(w, pn, clusterShard, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeLabeledHist renders one histogram's _bucket/_sum/_count triple
// with cumulative bucket counts and a shard label on every sample.
func writeLabeledHist(w io.Writer, pn, shard string, h HistogramSnapshot) error {
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = promFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{shard=%q,le=%q} %d\n", pn, shard, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum{shard=%q} %s\n%s_count{shard=%q} %d\n",
		pn, shard, promFloat(h.Sum), pn, shard, h.Count)
	return err
}
