package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestFlightRecorderBounded soaks the recorder far past its capacity
// and asserts every view stays hard-bounded — recording the thousandth
// job must cost the same memory as the tenth.
func TestFlightRecorderBounded(t *testing.T) {
	const k = 8
	f := NewFlightRecorder(k)
	for i := 0; i < 1000; i++ {
		e := FlightEntry{
			TraceID: fmt.Sprintf("%032x", i),
			JobID:   fmt.Sprintf("job-%06d", i),
			State:   "done",
			RunMS:   float64(i % 97),
		}
		if i%5 == 0 {
			e.State = "failed"
			e.Error = "synthetic failure"
		}
		if i%7 == 0 {
			e.Cached = true
		}
		f.Record(e)
	}
	d := f.Snapshot()
	if len(d.Recent) != k || len(d.Failed) != k || len(d.Slowest) != k {
		t.Fatalf("views not bounded to k=%d: recent=%d slowest=%d failed=%d",
			k, len(d.Recent), len(d.Slowest), len(d.Failed))
	}
	// Recent keeps the newest k, oldest first.
	if got, want := d.Recent[k-1].JobID, "job-000999"; got != want {
		t.Errorf("recent tail = %s, want %s", got, want)
	}
	if got, want := d.Recent[0].JobID, fmt.Sprintf("job-%06d", 1000-k); got != want {
		t.Errorf("recent head = %s, want %s", got, want)
	}
	// Slowest is sorted descending and excludes cache hits.
	for i, e := range d.Slowest {
		if e.Cached {
			t.Errorf("slowest[%d] is a cache hit", i)
		}
		if i > 0 && d.Slowest[i-1].RunMS < e.RunMS {
			t.Errorf("slowest not descending at %d: %.1f < %.1f", i, d.Slowest[i-1].RunMS, e.RunMS)
		}
	}
	if d.Slowest[0].RunMS != 96 {
		t.Errorf("slowest head RunMS = %.1f, want 96", d.Slowest[0].RunMS)
	}
	// Failed retains only failing entries.
	for i, e := range d.Failed {
		if e.Error == "" {
			t.Errorf("failed[%d] has no error", i)
		}
	}
}

// TestFlightRecorderFind prefers the most recently recorded entry for a
// trace and reports retention honestly.
func TestFlightRecorderFind(t *testing.T) {
	f := NewFlightRecorder(4)
	const id = "00000000000000000000000000000abc"
	f.Record(FlightEntry{TraceID: id, JobID: "job-000001", State: "done"})
	f.Record(FlightEntry{TraceID: id, JobID: "job-000002", State: "done", Cached: true})
	e, ok := f.Find(id)
	if !ok || e.JobID != "job-000002" {
		t.Errorf("Find = %+v ok=%v, want the most recent (job-000002)", e, ok)
	}
	if _, ok := f.Find("ffffffffffffffffffffffffffffffff"); ok {
		t.Error("Find reported an unretained trace")
	}
}

// TestFlightRecorderNil covers the disabled state: a nil recorder
// accepts every call as a no-op.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	if f != NewFlightRecorder(0) {
		t.Error("NewFlightRecorder(0) must return the nil recorder")
	}
	f.Record(FlightEntry{TraceID: "x"})
	if d := f.Snapshot(); len(d.Recent)+len(d.Slowest)+len(d.Failed) != 0 {
		t.Error("nil recorder snapshot not empty")
	}
	if _, ok := f.Find("x"); ok {
		t.Error("nil recorder Find reported a hit")
	}
}

// TestFlightHandler drives the HTTP surface: the three-view dump, the
// single-entry ?trace= lookup, and 404 for unretained traces — then
// round-trips the dump through DecodeFlight as benchtab would.
func TestFlightHandler(t *testing.T) {
	f := NewFlightRecorder(4)
	const id = "11112222333344445555666677778888"
	f.Record(FlightEntry{
		TraceID: id, JobID: "job-000001", State: "done", RunMS: 12.5,
		Trace: &Dump{Name: "service.job", TraceID: id},
	})
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/?trace=" + id)
	if err != nil {
		t.Fatal(err)
	}
	var e FlightEntry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e.JobID != "job-000001" || e.Trace == nil || e.Trace.TraceID != id {
		t.Errorf("trace lookup returned %+v", e)
	}

	resp, err = http.Get(ts.URL + "/?trace=ffffffffffffffffffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unretained trace: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFlight(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Recent) != 1 || d.Recent[0].TraceID != id {
		t.Errorf("decoded dump = %+v", d)
	}
}

// TestTraceID covers minting and wire validation.
func TestTraceID(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 {
		t.Fatalf("NewTraceID length %d, want 32", len(id))
	}
	if strings.ToLower(string(id)) != string(id) {
		t.Errorf("minted id %q not lowercase", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Errorf("two minted ids collided: %s", id)
	}
	canon, err := ParseTraceID(strings.ToUpper(string(id)))
	if err != nil {
		t.Fatal(err)
	}
	if canon != id {
		t.Errorf("ParseTraceID did not canonicalize: %s != %s", canon, id)
	}
	for _, bad := range []string{"", "abc", strings.Repeat("g", 32), string(id) + "00"} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID accepted %q", bad)
		}
	}
}
