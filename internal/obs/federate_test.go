package obs

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.5, 5, 5, 5, 50, 50, 50, 50, 500} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms["lat"]
	// 10 observations: ranks 1-2 in (≤1], 3-5 in (1,10], 6-9 in
	// (10,100], 10 in +Inf. Quantiles resolve to bucket upper bounds —
	// except the +Inf bucket, which falls back to the observed max.
	cases := []struct{ q, want float64 }{
		{0.10, 1}, {0.20, 1}, {0.50, 10}, {0.90, 100}, {1.0, 500},
	}
	for _, c := range cases {
		if got := snap.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
}

// TestMergeMatchesUnion is the exactness argument as a test: quantiles
// read from the bucket-wise merge of per-shard histograms equal the
// quantiles of one histogram that observed the union of the raw
// values. With identical fixed bounds, bucketing commutes with union —
// the merge loses nothing the per-shard bucketing hadn't already lost.
func TestMergeMatchesUnion(t *testing.T) {
	bounds := MSBuckets
	regA, regB, regU := NewRegistry(), NewRegistry(), NewRegistry()
	hA := regA.Histogram("lat", bounds)
	hB := regB.Histogram("lat", bounds)
	hU := regU.Histogram("lat", bounds)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 5000
		if i%2 == 0 {
			hA.Observe(v)
		} else {
			hB.Observe(v)
		}
		hU.Observe(v)
	}
	merged, ok := MergeHistograms(
		regA.Snapshot().Histograms["lat"],
		regB.Snapshot().Histograms["lat"])
	if !ok {
		t.Fatal("merge rejected identical bounds")
	}
	union := regU.Snapshot().Histograms["lat"]
	if merged.Count != union.Count || merged.Min != union.Min || merged.Max != union.Max {
		t.Fatalf("merged summary diverged: %+v vs %+v", merged, union)
	}
	// Sum is a float accumulated in a different order on each side —
	// equal up to rounding, not bit-for-bit.
	if d := math.Abs(merged.Sum - union.Sum); d > 1e-9*math.Abs(union.Sum) {
		t.Fatalf("merged Sum diverged beyond rounding: %v vs %v", merged.Sum, union.Sum)
	}
	for i := range merged.Buckets {
		if merged.Buckets[i].Count != union.Buckets[i].Count {
			t.Fatalf("bucket %d: merged %d, union %d",
				i, merged.Buckets[i].Count, union.Buckets[i].Count)
		}
	}
	for q := 0.01; q < 1.0; q += 0.007 {
		if m, u := merged.Quantile(q), union.Quantile(q); m != u {
			t.Fatalf("Quantile(%g): merged %g, union %g", q, m, u)
		}
	}
}

func TestMergeHistogramsMismatchedBounds(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Histogram("lat", []float64{1, 2}).Observe(1)
	regB.Histogram("lat", []float64{1, 3}).Observe(1)
	a := regA.Snapshot().Histograms["lat"]
	b := regB.Snapshot().Histograms["lat"]
	if _, ok := MergeHistograms(a, b); ok {
		t.Fatal("merge accepted mismatched bounds; the sum would be wrong")
	}
	// Empty sides pass through: a shard that registered the metric but
	// never observed must not block the cluster aggregate.
	if m, ok := MergeHistograms(HistogramSnapshot{}, b); !ok || m.Count != b.Count {
		t.Fatalf("empty-left merge = (%+v, %v)", m, ok)
	}
}

func TestAggregateSnapshots(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("jobs").Add(3)
	regB.Counter("jobs").Add(4)
	regA.Counter("only_a").Inc()
	regA.Gauge("heap").Set(100) // gauges don't aggregate: a summed heap is meaningless
	regA.Histogram("lat", []float64{1, 2}).Observe(1)
	regB.Histogram("lat", []float64{1, 3}).Observe(1) // mismatched bounds
	agg := AggregateSnapshots(map[string]MetricsSnapshot{
		"s0": regA.Snapshot(), "s1": regB.Snapshot(),
	})
	if agg.Counters["jobs"] != 7 || agg.Counters["only_a"] != 1 {
		t.Fatalf("counters = %v", agg.Counters)
	}
	if len(agg.Gauges) != 0 {
		t.Fatalf("gauges leaked into the aggregate: %v", agg.Gauges)
	}
	if _, ok := agg.Histograms["lat"]; ok {
		t.Fatal("mismatched-bounds histogram survived in the aggregate")
	}
}

// TestWriteFederatedPromGolden pins the federated exposition: two fake
// shards, shard labels on every sample, cluster aggregate rows with
// merged histogram buckets, and the scrape-error counter present.
func TestWriteFederatedPromGolden(t *testing.T) {
	regA, regB := NewRegistry(), NewRegistry()
	regA.Counter("service.solves_total").Inc()
	regB.Counter("service.solves_total").Add(2)
	regB.Counter("cluster.scrape_errors_total").Inc()
	regA.Gauge("runtime.goroutines").Set(8)
	hA := regA.Histogram("job.run_ms", []float64{10, 100})
	hA.Observe(5)
	hA.Observe(50)
	hB := regB.Histogram("job.run_ms", []float64{10, 100})
	hB.Observe(500)

	var sb strings.Builder
	err := WriteFederatedProm(&sb, map[string]MetricsSnapshot{
		"s0": regA.Snapshot(), "s1": regB.Snapshot(),
	})
	if err != nil {
		t.Fatalf("WriteFederatedProm: %v", err)
	}
	want := `# TYPE cluster_scrape_errors_total counter
cluster_scrape_errors_total{shard="s1"} 1
cluster_scrape_errors_total{shard="cluster"} 1
# TYPE service_solves_total counter
service_solves_total{shard="s0"} 1
service_solves_total{shard="s1"} 2
service_solves_total{shard="cluster"} 3
# TYPE runtime_goroutines gauge
runtime_goroutines{shard="s0"} 8
# TYPE job_run_ms histogram
job_run_ms_bucket{shard="s0",le="10"} 1
job_run_ms_bucket{shard="s0",le="100"} 2
job_run_ms_bucket{shard="s0",le="+Inf"} 2
job_run_ms_sum{shard="s0"} 55
job_run_ms_count{shard="s0"} 2
job_run_ms_bucket{shard="s1",le="10"} 0
job_run_ms_bucket{shard="s1",le="100"} 0
job_run_ms_bucket{shard="s1",le="+Inf"} 1
job_run_ms_sum{shard="s1"} 500
job_run_ms_count{shard="s1"} 1
job_run_ms_bucket{shard="cluster",le="10"} 1
job_run_ms_bucket{shard="cluster",le="100"} 2
job_run_ms_bucket{shard="cluster",le="+Inf"} 3
job_run_ms_sum{shard="cluster"} 555
job_run_ms_count{shard="cluster"} 3
`
	if got := sb.String(); got != want {
		t.Fatalf("federated exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
