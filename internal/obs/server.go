package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var expvarOnce sync.Once

// ServeDebug starts an opt-in HTTP debug server on addr exposing
//
//	/debug/pprof/*   — net/http/pprof profiles (CPU, heap, block, ...)
//	/debug/vars      — expvar, including the live metrics snapshot
//	/metrics         — the registry snapshot as JSON
//	/trace           — the current trace dump as JSON (open spans live)
//
// The listener is bound synchronously (so address errors surface
// immediately); serving happens on a background goroutine that lives
// until the process exits. The returned server can be Closed by tests.
func ServeDebug(addr string, t *Tracer) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	expvarOnce.Do(func() {
		expvar.Publish("opera.metrics", expvar.Func(func() any {
			return t.Registry().Snapshot()
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSONValue(w, t.Registry().Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSONValue(w, t.Dump())
	})
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}

func writeJSONValue(w http.ResponseWriter, v any) {
	// Encoding errors on a live HTTP response are not recoverable;
	// report them to the client if the header is still open.
	if err := encodeJSON(w, v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
