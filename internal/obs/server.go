package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

var expvarOnce sync.Once

// HTTPServer is a managed http.Server with sane connection timeouts
// and a graceful Close. Both the debug server and the operad analysis
// daemon run on it, so timeout policy and shutdown live in one place.
type HTTPServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartHTTP binds addr synchronously (so address errors surface
// immediately) and serves handler on a background goroutine. The
// server carries protective timeouts: slow-loris reads are cut off at
// the header (5s) and body (1m) stages, idle keep-alive connections
// are dropped after 2m, and writes get 2m — long enough for a 30s
// pprof CPU profile, short enough that a dead peer cannot pin a
// connection forever.
func StartHTTP(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Addr:              ln.Addr().String(),
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	return &HTTPServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.srv.Addr
}

// Close gracefully shuts the server down: it stops accepting new
// connections and waits for in-flight requests until ctx is done, then
// force-closes whatever remains. Safe on a nil receiver.
func (s *HTTPServer) Close(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
		return err
	}
	return nil
}

// ServeDebug starts an opt-in HTTP debug server on addr exposing
//
//	/debug/pprof/*   — net/http/pprof profiles (CPU, heap, block, ...)
//	/debug/vars      — expvar, including the live metrics snapshot
//	/debug/build     — debug.ReadBuildInfo (VCS revision, dirty flag)
//	/metrics         — the registry snapshot as JSON (?format=text for
//	                   the exposition-format rendering)
//	/trace           — the current trace dump as JSON (open spans live)
//
// The listener is bound synchronously; serving happens on a background
// goroutine. The returned server has protective timeouts (see
// StartHTTP) and should be Closed with a deadline on shutdown.
func ServeDebug(addr string, t *Tracer) (*HTTPServer, error) {
	expvarOnce.Do(func() {
		expvar.Publish("opera.metrics", expvar.Func(func() any {
			return t.Registry().Snapshot()
		}))
	})
	return StartHTTP(addr, DebugMux(t))
}

// DebugMux builds the debug-server route table so other servers (the
// operad daemon) can mount the same endpoints alongside their own.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/build", BuildHandler())
	mux.Handle("/metrics", MetricsHandler(t.Registry()))
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSONValue(w, t.Dump())
	})
	return mux
}

// MetricsHandler serves the registry snapshot: indented JSON by
// default, the Prometheus-style text exposition with ?format=text.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r != nil && r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.Snapshot().WriteProm(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSONValue(w, reg.Snapshot())
	})
}

func writeJSONValue(w http.ResponseWriter, v any) {
	// Encoding errors on a live HTTP response are not recoverable;
	// report them to the client if the header is still open.
	if err := encodeJSON(w, v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
