package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestAllocAccountingConcurrentChildren covers the process-wide
// allocation-delta caveat: with worker goroutines allocating while a
// span is open, the delta stays non-negative (the runtime/metrics
// counter is monotone) and spans wrapping a fan-out carry the
// approximate marker through Dump and the text export.
func TestAllocAccountingConcurrentChildren(t *testing.T) {
	tr := New("test")
	sp := tr.Start("fanout")
	var wg sync.WaitGroup
	sink := make([][]byte, 8)
	for i := range sink {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink[i] = make([]byte, 1<<16)
		}(i)
	}
	wg.Wait()
	sp.MarkAllocsApprox()
	sp.End()
	tr.Start("serial").End()
	tr.Finish()

	d := tr.Dump()
	if len(d.Spans) != 2 {
		t.Fatalf("got %d spans", len(d.Spans))
	}
	fan, serial := d.Spans[0], d.Spans[1]
	if !fan.AllocApprox {
		t.Error("fan-out span lost its approximate marker")
	}
	if serial.AllocApprox {
		t.Error("serial span wrongly marked approximate")
	}
	// uint64 deltas: monotone counter means never a wrapped negative.
	if fan.AllocBytes > 1<<40 || serial.AllocBytes > 1<<40 {
		t.Errorf("alloc delta wrapped: fanout=%d serial=%d", fan.AllocBytes, serial.AllocBytes)
	}

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if fan.AllocBytes > 0 && !strings.Contains(buf.String(), "~") {
		t.Errorf("text export does not mark approximate allocs:\n%s", buf.String())
	}
	_ = sink
}
