package obs

import (
	"net/http"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the subset of debug.ReadBuildInfo worth surfacing on a
// running daemon: enough to answer "which commit is this process, and
// was the tree clean when it was built?" without shelling into the
// deploy host.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`    // main module path
	Version   string `json:"version,omitempty"` // module version ("(devel)" for local builds)
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"` // uncommitted changes at build time
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

// ReadBuild collects the build information of the running binary.
// Binaries built without module support (rare) still report the Go
// version and platform.
func ReadBuild() BuildInfo {
	b := BuildInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.Time = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// BuildHandler serves ReadBuild as indented JSON — mounted at
// /debug/build on the debug server and the operad daemon.
func BuildHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSONValue(w, ReadBuild())
	})
}
