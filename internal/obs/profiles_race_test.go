package obs

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestProfileRingConcurrent hammers Capture/Get/Snapshot/ServeIndex
// from many goroutines at once — the interleavings the SLO-breach path
// produces when several jobs breach together. Run under -race (the CI
// race matrix covers this package); ErrCaptureBusy is an expected
// outcome, any other error or a torn read is not.
func TestProfileRingConcurrent(t *testing.T) {
	r := NewProfileRing(8)
	r.CPUDuration = 10 * time.Millisecond
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				trace := fmt.Sprintf("t%d-%d", g, i)
				if err := r.Capture(trace, "race test"); err != nil && !errors.Is(err, ErrCaptureBusy) {
					t.Errorf("Capture(%s): %v", trace, err)
				}
				r.Get(trace, "heap")
				for _, p := range r.Snapshot() {
					if p.TraceID == "" || p.Kind == "" {
						t.Errorf("torn profile entry: %+v", p)
					}
				}
				rec := httptest.NewRecorder()
				r.ServeIndex(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("ServeIndex: code=%d", rec.Code)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := len(r.Snapshot()); n > 16 {
		t.Fatalf("ring retained %d profiles, cap is 8 traces (16 with cpu+heap)", n)
	}
}
