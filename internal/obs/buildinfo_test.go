package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestReadBuild(t *testing.T) {
	b := ReadBuild()
	if b.GoVersion == "" || b.GOOS == "" || b.GOARCH == "" {
		t.Fatalf("build info incomplete: %+v", b)
	}
}

func TestBuildHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	BuildHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/build", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	var b BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatalf("body not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if b.GoVersion == "" {
		t.Errorf("go_version missing: %+v", b)
	}
}
