package obs

import (
	"encoding/json"
	"math"
	"reflect"
	runtimemetrics "runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSamplerPopulatesSynchronously(t *testing.T) {
	reg := NewRegistry()
	// An hour-long interval proves the first sample is the synchronous
	// one, not a lucky tick.
	stop := StartRuntimeSampler(reg, time.Hour)
	defer stop()
	snap := reg.Snapshot()
	for _, name := range []string{
		"runtime.goroutines",
		"runtime.heap_bytes",
		"runtime.heap_goal_bytes",
		"runtime.total_alloc_bytes",
		"runtime.gc_cycles_total",
		"runtime.gc_pause_ms_p50",
		"runtime.gc_pause_ms_p99",
		"runtime.sched_latency_ms_p50",
		"runtime.sched_latency_ms_p99",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s missing after StartRuntimeSampler", name)
		}
	}
	if g := snap.Gauges["runtime.goroutines"]; g < 1 {
		t.Errorf("runtime.goroutines = %g, want >= 1", g)
	}
	if g := snap.Gauges["runtime.heap_bytes"]; g <= 0 {
		t.Errorf("runtime.heap_bytes = %g, want > 0", g)
	}
	if g := snap.Gauges["runtime.total_alloc_bytes"]; g <= 0 {
		t.Errorf("runtime.total_alloc_bytes = %g, want > 0", g)
	}
}

func TestRuntimeSamplerStopIdempotent(t *testing.T) {
	stop := StartRuntimeSampler(NewRegistry(), time.Hour)
	stop()
	stop() // second call must not panic (close of closed channel)
	if nilStop := StartRuntimeSampler(nil, time.Second); nilStop == nil {
		t.Fatal("nil registry must return a usable stop func")
	} else {
		nilStop()
	}
}

// TestRuntimeGaugesJSONRoundTrip pins the wire behavior the dashboards
// rely on: the runtime.* gauges survive a MetricsSnapshot JSON
// round-trip bit-exactly.
func TestRuntimeGaugesJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, time.Hour)
	defer stop()
	snap := reg.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got := map[string]float64{}
	want := map[string]float64{}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "runtime.") {
			want[name] = v
		}
	}
	for name, v := range back.Gauges {
		if strings.HasPrefix(name, "runtime.") {
			got[name] = v
		}
	}
	if len(want) == 0 {
		t.Fatal("no runtime.* gauges in the snapshot")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("runtime gauges changed across JSON round-trip:\n  want %v\n  got  %v", want, got)
	}
}

func TestHistQuantileCrossesCumulativeCount(t *testing.T) {
	// Synthetic cumulative histogram: 10 observations in [0,1), 85 in
	// [1,2), 5 in [2,+Inf). p50 lands in the second bucket (upper bound
	// 2); p99 lands in the infinite bucket and falls back to its finite
	// lower bound.
	h := &runtimemetrics.Float64Histogram{
		Counts:  []uint64{10, 85, 5},
		Buckets: []float64{0, 1, 2, math.Inf(1)},
	}
	if got := histQuantile(h, 0.50); got != 2 {
		t.Errorf("p50 = %g, want 2", got)
	}
	if got := histQuantile(h, 0.99); got != 2 {
		t.Errorf("p99 = %g, want 2 (finite lower bound of the +Inf bucket)", got)
	}
	empty := &runtimemetrics.Float64Histogram{
		Counts:  []uint64{0, 0},
		Buckets: []float64{0, 1, 2},
	}
	if got := histQuantile(empty, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}
