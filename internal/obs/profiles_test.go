package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestProfileRingCaptureAndServe(t *testing.T) {
	r := NewProfileRing(8)
	r.CPUDuration = 30 * time.Millisecond
	if err := r.Capture("trace-1", "running > 1s"); err != nil {
		t.Fatalf("Capture: %v", err)
	}
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("captures = %d, want 2 (heap + cpu)", len(snap))
	}
	for _, kind := range []string{"heap", "cpu"} {
		p, ok := r.Get("trace-1", kind)
		if !ok {
			t.Fatalf("Get(trace-1, %s): not found", kind)
		}
		if p.Size <= 0 || p.Reason != "running > 1s" {
			t.Errorf("%s profile: size=%d reason=%q", kind, p.Size, p.Reason)
		}
	}

	// Index endpoint: JSON envelope without payloads.
	rec := httptest.NewRecorder()
	r.ServeIndex(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	var idx struct {
		Profiles []Profile `json:"profiles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("index not JSON: %v", err)
	}
	if len(idx.Profiles) != 2 {
		t.Fatalf("index entries = %d, want 2", len(idx.Profiles))
	}

	// Raw download: pprof bytes as octet-stream.
	rec = httptest.NewRecorder()
	r.ServeProfile(rec, httptest.NewRequest(http.MethodGet, "/x", nil), "trace-1", "heap")
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("ServeProfile: code=%d len=%d", rec.Code, rec.Body.Len())
	}
	rec = httptest.NewRecorder()
	r.ServeProfile(rec, httptest.NewRequest(http.MethodGet, "/x", nil), "trace-1", "block")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad kind: code=%d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	r.ServeProfile(rec, httptest.NewRequest(http.MethodGet, "/x", nil), "nope", "heap")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace: code=%d, want 404", rec.Code)
	}
}

func TestProfileRingBounded(t *testing.T) {
	r := NewProfileRing(3)
	r.CPUDuration = time.Millisecond
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		if err := r.Capture(id, "x"); err != nil {
			t.Fatalf("Capture %s: %v", id, err)
		}
	}
	if got := len(r.Snapshot()); got != 3 {
		t.Fatalf("ring size = %d, want 3", got)
	}
	// Six captures went in; only the newest three survive, so "a" (the
	// oldest pair) must be fully evicted.
	if _, ok := r.Get("a", "heap"); ok {
		t.Error("oldest capture not evicted")
	}
	if _, ok := r.Get("c", "cpu"); !ok {
		t.Error("newest capture missing")
	}
}

func TestProfileRingNilSafe(t *testing.T) {
	var r *ProfileRing
	if err := r.Capture("t", "r"); err != nil {
		t.Fatalf("nil Capture: %v", err)
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil Snapshot = %v, want nil", got)
	}
	if _, ok := r.Get("t", "heap"); ok {
		t.Fatal("nil Get reported a hit")
	}
	rec := httptest.NewRecorder()
	r.ServeIndex(rec, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("nil index: code=%d, want 404", rec.Code)
	}
	if NewProfileRing(0) != nil {
		t.Fatal("NewProfileRing(0) must return nil")
	}
}
