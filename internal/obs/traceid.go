package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceID is a 16-byte request identifier in lowercase-hex wire form
// (32 characters), minted at job submission and threaded through the
// queue, the job context, the span tracer and every structured log
// line, so one ID joins the service view of a job to its phase spans.
type TraceID string

// NewTraceID mints a random trace ID from crypto/rand.
func NewTraceID() TraceID {
	var b [16]byte
	// crypto/rand.Read does not fail on any supported platform.
	rand.Read(b[:])
	return TraceID(hex.EncodeToString(b[:]))
}

// ParseTraceID validates a wire trace ID (32 hex characters, any case)
// and returns its canonical lowercase form.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) != 32 {
		return "", fmt.Errorf("obs: trace id must be 32 hex characters, got %d", len(s))
	}
	s = strings.ToLower(s)
	if _, err := hex.DecodeString(s); err != nil {
		return "", fmt.Errorf("obs: trace id is not hex: %v", err)
	}
	return TraceID(s), nil
}

// SetTraceID tags the tracer (and therefore its Dump) with the
// request's trace ID. No-op on a nil tracer.
func (t *Tracer) SetTraceID(id TraceID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the tracer's trace ID ("" for a nil or untagged
// tracer).
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}
