// Package logx is the shared structured-logging setup of the OPERA
// daemons and CLIs, on stdlib log/slog: one JSON handler configuration,
// a parsed level flag, the stable attribute schema every job-lifecycle
// event uses, a no-op logger for the disabled path, a Tee handler for
// fanning one record out to two sinks, and a bounded Tail that retains
// the rendered log lines of a single job for the flight recorder.
//
// Schema: the slog message IS the event name ("job.enqueue",
// "job.start", "job.phase", "job.done", "service.drain", ...); the Key*
// constants below are the attribute names, identical across cmd/operad,
// cmd/opera and internal/service so logs from every binary grep and
// join the same way.
package logx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// Stable attribute keys of the job-lifecycle log schema.
const (
	KeyJob      = "job"       // job id ("job-000042")
	KeyTrace    = "trace"     // 32-hex trace id
	KeyKey      = "key"       // content-address (sha256) of the request
	KeyState    = "state"     // terminal job state
	KeyPriority = "priority"  // "interactive" | "batch"
	KeyAnalysis = "analysis"  // "opera" | "mc" | "leakage"
	KeyPhase    = "phase"     // pipeline phase name for job.phase events
	KeyMS       = "ms"        // duration of the event's subject
	KeyQueuedMS = "queued_ms" // admission → claim wall time
	KeyRunMS    = "run_ms"    // claim → terminal-state wall time
	KeyDepth    = "depth"     // queue depth after the event
	KeyError    = "error"     // error text
	KeyReason   = "reason"    // human-readable cause (SLO-profile captures)
	KeyAttempt  = "attempt"   // client retry attempt number
	KeyOnto     = "onto"      // job id a coalesced submission attached to
	KeyPeer     = "peer"      // ring peer URL (peek hits, drain handoffs)
)

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("logx: unknown log level %q (want debug|info|warn|error)", s)
	}
}

// New builds the standard JSON logger writing to w at the given level.
func New(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// Nop returns a logger whose handler reports every level disabled, so
// call sites that guard with Enabled (or use LogAttrs) pay only a
// method call when logging is off.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// Tee fans each record out to both handlers; a record is emitted to
// every handler whose own level admits it. Enabled reports true when
// either side would accept the level, so a Tee of a quiet stderr
// handler and a per-job Tail still captures the tail.
func Tee(a, b slog.Handler) slog.Handler { return tee{a, b} }

type tee struct{ a, b slog.Handler }

func (t tee) Enabled(ctx context.Context, l slog.Level) bool {
	return t.a.Enabled(ctx, l) || t.b.Enabled(ctx, l)
}

func (t tee) Handle(ctx context.Context, r slog.Record) error {
	var err error
	if t.a.Enabled(ctx, r.Level) {
		err = t.a.Handle(ctx, r.Clone())
	}
	if t.b.Enabled(ctx, r.Level) {
		if e := t.b.Handle(ctx, r.Clone()); err == nil {
			err = e
		}
	}
	return err
}

func (t tee) WithAttrs(attrs []slog.Attr) slog.Handler {
	return tee{t.a.WithAttrs(attrs), t.b.WithAttrs(attrs)}
}

func (t tee) WithGroup(name string) slog.Handler {
	return tee{t.a.WithGroup(name), t.b.WithGroup(name)}
}

// Tail retains the last MaxLines rendered JSON log lines — the per-job
// log tail the flight recorder attaches to slow and failed jobs. It is
// an io.Writer fed by a JSON handler (see Handler); writes are
// line-buffered and safe for concurrent use.
type Tail struct {
	mu    sync.Mutex
	max   int
	lines [][]byte
	part  []byte // bytes of an unterminated trailing line
}

// NewTail builds a tail bounded to maxLines (minimum 1).
func NewTail(maxLines int) *Tail {
	if maxLines < 1 {
		maxLines = 1
	}
	return &Tail{max: maxLines}
}

// Handler returns a JSON slog handler that records into the tail at the
// given level.
func (t *Tail) Handler(level slog.Level) slog.Handler {
	return slog.NewJSONHandler(t, &slog.HandlerOptions{Level: level})
}

// Write appends rendered bytes, splitting them into retained lines.
func (t *Tail) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rest := p
	for {
		i := indexByte(rest, '\n')
		if i < 0 {
			t.part = append(t.part, rest...)
			break
		}
		line := append(append([]byte(nil), t.part...), rest[:i]...)
		t.part = t.part[:0]
		t.lines = append(t.lines, line)
		if len(t.lines) > t.max {
			t.lines = t.lines[len(t.lines)-t.max:]
		}
		rest = rest[i+1:]
	}
	return len(p), nil
}

// Lines returns the retained lines, oldest first, as raw JSON (safe to
// embed in a JSON document without re-encoding). Nil receiver → nil.
func (t *Tail) Lines() []json.RawMessage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]json.RawMessage, len(t.lines))
	for i, l := range t.lines {
		out[i] = json.RawMessage(append([]byte(nil), l...))
	}
	return out
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
