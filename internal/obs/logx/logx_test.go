package logx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "WARNING": slog.LevelWarn, "Error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewEmitsJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo)
	l.Info("job.enqueue", KeyJob, "job-000001", KeyTrace, "abc", KeyDepth, 3)
	l.Debug("hidden") // below level
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("output is not one JSON line: %q (%v)", buf.String(), err)
	}
	if rec["msg"] != "job.enqueue" || rec[KeyJob] != "job-000001" || rec[KeyDepth] != 3.0 {
		t.Errorf("unexpected record: %v", rec)
	}
	if strings.Contains(buf.String(), "hidden") {
		t.Error("level filter did not apply")
	}
}

func TestNopDisabled(t *testing.T) {
	l := Nop()
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Error("nop logger reports enabled")
	}
	// Must not panic and must allocate nothing on the guarded pattern.
	if got := testing.AllocsPerRun(100, func() {
		if l.Handler().Enabled(context.Background(), slog.LevelInfo) {
			l.Info("never")
		}
	}); got != 0 {
		t.Errorf("disabled log path allocates %.1f/op", got)
	}
}

func TestTeeFansOutToBothSinks(t *testing.T) {
	var a, b bytes.Buffer
	// Quiet stderr side (warn) plus a debug-level tail: an info record
	// must reach only the tail, a warn record both.
	h := Tee(
		slog.NewJSONHandler(&a, &slog.HandlerOptions{Level: slog.LevelWarn}),
		slog.NewJSONHandler(&b, &slog.HandlerOptions{Level: slog.LevelDebug}),
	)
	l := slog.New(h).With(slog.String(KeyJob, "job-000009"))
	l.Info("job.start")
	l.Warn("job.cancel")
	if strings.Contains(a.String(), "job.start") {
		t.Error("quiet side received a below-level record")
	}
	if !strings.Contains(a.String(), "job.cancel") {
		t.Error("quiet side missed an admitted record")
	}
	for _, msg := range []string{"job.start", "job.cancel"} {
		if !strings.Contains(b.String(), msg) {
			t.Errorf("verbose side missed %q", msg)
		}
	}
	if !strings.Contains(b.String(), "job-000009") {
		t.Error("WithAttrs did not propagate through the tee")
	}
}

func TestTailRetainsBoundedLines(t *testing.T) {
	tail := NewTail(3)
	l := slog.New(tail.Handler(slog.LevelDebug))
	for i := 0; i < 10; i++ {
		l.Info("job.phase", KeyPhase, "factor", KeyMS, i)
	}
	lines := tail.Lines()
	if len(lines) != 3 {
		t.Fatalf("tail retained %d lines, want 3", len(lines))
	}
	// Oldest first, each line valid standalone JSON.
	var first, last map[string]any
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatalf("tail line not JSON: %v", err)
	}
	json.Unmarshal(lines[2], &last)
	if first[KeyMS] != 7.0 || last[KeyMS] != 9.0 {
		t.Errorf("tail window wrong: first ms=%v last ms=%v", first[KeyMS], last[KeyMS])
	}
	// Partial writes (no trailing newline yet) stay out of Lines.
	tail2 := NewTail(2)
	tail2.Write([]byte(`{"partial":`))
	if n := len(tail2.Lines()); n != 0 {
		t.Errorf("unterminated line leaked into Lines: %d", n)
	}
	tail2.Write([]byte("1}\n"))
	if n := len(tail2.Lines()); n != 1 {
		t.Errorf("line not assembled across writes: %d", n)
	}
	var nilTail *Tail
	if nilTail.Lines() != nil {
		t.Error("nil tail must return nil lines")
	}
}
