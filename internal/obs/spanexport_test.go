package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSpanIDDeterministic(t *testing.T) {
	a := SpanID("trace-1", "s0", "root")
	if b := SpanID("trace-1", "s0", "root"); b != a {
		t.Fatalf("SpanID not deterministic: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("SpanID length = %d, want 16 hex chars", len(a))
	}
	// Any component changing must change the ID — the stitching contract
	// is that (trace, shard, path) is the whole identity.
	for _, other := range []string{
		SpanID("trace-2", "s0", "root"),
		SpanID("trace-1", "s1", "root"),
		SpanID("trace-1", "s0", "root/0"),
	} {
		if other == a {
			t.Fatalf("distinct (trace, shard, path) collided on %s", a)
		}
	}
}

func TestTracerExportTreeShape(t *testing.T) {
	tr := New("job")
	tr.SetTraceID("aaaa")
	c1 := tr.Start("factor", String("kind", "cholesky"))
	c1.End()
	c2 := tr.Start("solve")
	g := tr.Start("chunk")
	g.End()
	c2.End()
	tr.Finish()

	spans := tr.Export("s0", "parent-x", "job")
	if len(spans) != 4 {
		t.Fatalf("exported %d spans, want 4", len(spans))
	}
	byName := map[string]ExportSpan{}
	for _, es := range spans {
		byName[es.Name] = es
		if es.TraceID != "aaaa" || es.Shard != "s0" {
			t.Errorf("span %s: trace=%q shard=%q", es.Name, es.TraceID, es.Shard)
		}
	}
	rootES := byName["job"]
	if rootES.ParentID != "parent-x" {
		t.Errorf("root parent = %q, want parent-x", rootES.ParentID)
	}
	if rootES.SpanID != SpanID("aaaa", "s0", "job") {
		t.Errorf("root span ID not derived from the path")
	}
	if byName["factor"].ParentID != rootES.SpanID || byName["solve"].ParentID != rootES.SpanID {
		t.Errorf("children not parented under the exported root")
	}
	if byName["chunk"].ParentID != byName["solve"].SpanID {
		t.Errorf("grandchild not parented under its own parent")
	}
	if byName["factor"].Attrs["kind"] != "cholesky" {
		t.Errorf("attrs lost in export: %v", byName["factor"].Attrs)
	}
	// Re-exporting yields the identical IDs: determinism is what lets
	// two processes agree on span identity without coordination.
	again := tr.Export("s0", "parent-x", "job")
	for i := range spans {
		if spans[i].SpanID != again[i].SpanID {
			t.Fatalf("export not deterministic at span %d", i)
		}
	}
}

func TestTracerExportNilAndNoTraceID(t *testing.T) {
	var tr *Tracer
	if got := tr.Export("s0", "", ""); got != nil {
		t.Fatalf("nil tracer exported %d spans", len(got))
	}
	tr2 := New("job") // no trace ID — nothing to retain under
	if got := tr2.Export("s0", "", ""); got != nil {
		t.Fatalf("traceless tracer exported %d spans", len(got))
	}
}

func TestSpanRingBoundsAndEviction(t *testing.T) {
	ring := NewSpanRing(4096)
	mk := func(trace string, n int) []ExportSpan {
		spans := make([]ExportSpan, n)
		for i := range spans {
			spans[i] = SyntheticSpan(trace, "s0", fmt.Sprintf("p%d", i), "", "span",
				time.Unix(0, 0), time.Millisecond)
		}
		return spans
	}
	ring.Add(mk("t1", 4)...)
	if got := ring.Get("t1"); len(got) != 4 {
		t.Fatalf("Get(t1) = %d spans, want 4", len(got))
	}
	// Keep adding traces until the byte budget forces eviction; the
	// oldest trace must go first and the budget must hold throughout.
	for i := 0; i < 64; i++ {
		ring.Add(mk(fmt.Sprintf("t%d", i+2), 4)...)
		if ring.Bytes() > 4096 {
			t.Fatalf("ring over budget after trace %d: %d bytes", i+2, ring.Bytes())
		}
	}
	if got := ring.Get("t1"); got != nil {
		t.Fatalf("oldest trace survived eviction with %d spans", len(got))
	}
	if got := ring.Get("t65"); len(got) != 4 {
		t.Fatalf("newest trace evicted: %d spans", len(got))
	}
}

func TestSpanRingSoleTraceOverBudget(t *testing.T) {
	ring := NewSpanRing(1024)
	for i := 0; i < 50; i++ {
		ring.Add(SyntheticSpan("only", "s0", fmt.Sprintf("p%d", i), "", "span",
			time.Unix(0, 0), time.Millisecond))
	}
	if ring.Bytes() > 1024 {
		t.Fatalf("sole trace exceeded the byte budget: %d", ring.Bytes())
	}
	got := ring.Get("only")
	if len(got) == 0 {
		t.Fatal("sole trace fully evicted; should shed oldest spans only")
	}
	// Drop-oldest: the survivors must be the most recent additions.
	if last := got[len(got)-1]; last.SpanID != SpanID("only", "s0", "p49") {
		t.Errorf("newest span missing after shedding")
	}
}

func TestSpanRingDisabledAndServe(t *testing.T) {
	var ring *SpanRing
	ring.Add(SyntheticSpan("t", "s0", "root", "", "x", time.Unix(0, 0), 0))
	if ring.Get("t") != nil || ring.Len() != 0 || ring.Bytes() != 0 {
		t.Fatal("nil ring not inert")
	}
	rec := httptest.NewRecorder()
	ring.ServeTrace(rec, "s0", "t")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil ring serve: code=%d, want 404", rec.Code)
	}

	ring = NewSpanRing(1 << 20)
	ring.Add(SyntheticSpan("t", "s0", "root", "", "x", time.Unix(0, 0), time.Millisecond))
	rec = httptest.NewRecorder()
	ring.ServeTrace(rec, "s0", "t")
	if rec.Code != http.StatusOK {
		t.Fatalf("serve: code=%d body=%s", rec.Code, rec.Body.String())
	}
	var frag TraceFragment
	if err := json.Unmarshal(rec.Body.Bytes(), &frag); err != nil {
		t.Fatalf("fragment not JSON: %v", err)
	}
	if frag.TraceID != "t" || frag.Shard != "s0" || len(frag.Spans) != 1 {
		t.Fatalf("fragment = %+v", frag)
	}
	rec = httptest.NewRecorder()
	ring.ServeTrace(rec, "s0", "unknown")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: code=%d, want 404", rec.Code)
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	ring := NewSpanRing(16 << 10)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				trace := fmt.Sprintf("t%d-%d", g, i%7)
				ring.Add(SyntheticSpan(trace, "s0", fmt.Sprintf("p%d", i), "", "span",
					time.Unix(0, 0), time.Millisecond))
				ring.Get(trace)
				ring.Bytes()
				ring.Len()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if ring.Bytes() > 16<<10 {
		t.Fatalf("budget violated under concurrency: %d", ring.Bytes())
	}
}
