package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a fully deterministic registry: fixed counter
// and gauge values, histogram observations chosen to land in known
// buckets. Any change to the exposition rendering shows up as a diff
// against testdata/metrics.prom.
func goldenSnapshot() MetricsSnapshot {
	reg := NewRegistry()
	reg.Counter("service.jobs_submitted_total").Add(42)
	reg.Counter("factor.flops_total").Add(123456)
	reg.Gauge("runtime.heap_bytes").Set(1048576)
	reg.Gauge("numguard.cond_estimate").Set(1234.5)
	h := reg.Histogram("service.job_ms", []float64{1, 10, 100, 1000})
	h.Observe(0.5)  // first bucket
	h.Observe(5)    // second
	h.Observe(5)    // second
	h.Observe(500)  // fourth
	h.Observe(5000) // overflow (+Inf)
	return reg.Snapshot()
}

// TestWritePromGolden pins the text exposition format byte-for-byte.
// Regenerate with `go test ./internal/obs -run PromGolden -update`
// after an intentional format change.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	path := filepath.Join("testdata", "metrics.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition format drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	cases := map[string]string{
		"service.job_ms":       "service_job_ms",
		"galerkin.solve_ms.w3": "galerkin_solve_ms_w3",
		"9starts.with.digit":   "_starts_with_digit",
		"already_legal:name":   "already_legal:name",
		"weird-dash and space": "weird_dash_and_space",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMetricsHandlerFormats pins the /metrics contract: JSON by
// default (the smoke scripts grep it), text exposition on
// ?format=text.
func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test.events_total").Add(7)
	h := MetricsHandler(reg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("default Content-Type = %q, want application/json", ct)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("default body not JSON: %v", err)
	}
	if snap.Counters["test.events_total"] != 7 {
		t.Errorf("counter lost: %+v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics?format=text", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text Content-Type = %q, want text/plain...", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "test_events_total 7") {
		t.Errorf("text body missing sample:\n%s", body)
	}
	if !strings.Contains(string(body), "# TYPE test_events_total counter") {
		t.Errorf("text body missing TYPE line:\n%s", body)
	}
}
