package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"opera/internal/obs"
)

// tinySuite exercises all four solve paths at the smallest grid the
// generator emits, so the whole test stays well under a second.
func tinySuite() []Scenario {
	return []Scenario{
		{Name: "t-transient", Path: "transient", Nodes: 64, Steps: 3, Seed: 2},
		{Name: "t-mc", Path: "mc", Nodes: 64, Steps: 3, Samples: 4, Seed: 2},
		{Name: "t-decoupled", Path: "decoupled", Nodes: 64, Order: 2, Steps: 3, Seed: 2},
		{Name: "t-coupled", Path: "coupled", Nodes: 64, Order: 1, Steps: 2, Seed: 2},
	}
}

func runTiny(t *testing.T) *Report {
	t.Helper()
	tr := obs.New("bench-test")
	rep, err := Run("tiny", tinySuite(), RunOptions{Workers: 2, Tracer: tr, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestRunAllPaths(t *testing.T) {
	rep := runTiny(t)
	if rep.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", rep.Schema, SchemaVersion)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.WallMS <= 0 {
			t.Errorf("%s: wall_ms = %g, want > 0", r.Name, r.WallMS)
		}
		if r.AllocBytes == 0 {
			t.Errorf("%s: alloc_bytes = 0", r.Name)
		}
		// Every path reports the deterministic factor metrics: flops and
		// fill from the factorization that served (or, for the nominal
		// transient, would serve) the solve.
		if r.FactorFlops <= 0 {
			t.Errorf("%s: factor_flops = %d, want > 0", r.Name, r.FactorFlops)
		}
		if r.FillRatio < 1 {
			t.Errorf("%s: fill_ratio = %g, want >= 1", r.Name, r.FillRatio)
		}
		if r.FactorNNZ <= 0 {
			t.Errorf("%s: factor_nnz = %d, want > 0", r.Name, r.FactorNNZ)
		}
	}
	// The stochastic paths carry numerical health on top.
	for _, r := range rep.Rows {
		if r.Path == "decoupled" || r.Path == "coupled" {
			if r.CondEst <= 0 {
				t.Errorf("%s: cond_est = %g, want > 0", r.Name, r.CondEst)
			}
			if r.MaxResidual <= 0 {
				t.Errorf("%s: max_residual = %g, want > 0", r.Name, r.MaxResidual)
			}
			if r.Rung == "" {
				t.Errorf("%s: empty rung", r.Name)
			}
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := runTiny(t)
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeReport(&buf)
	if err != nil {
		t.Fatalf("DecodeReport: %v", err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip changed the report:\n  in:  %+v\n  out: %+v", rep, got)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := DecodeReport(strings.NewReader(`{"schema": 99}`)); err == nil {
		t.Fatal("want error for unknown schema version")
	}
}

// syntheticReport builds a fixed report so the comparison tests are
// deterministic and independent of machine speed.
func syntheticReport() *Report {
	rep := NewReport("synthetic", 2)
	rep.Rows = []Row{
		{Name: "a", Path: "decoupled", WallMS: 120, AllocBytes: 8 << 20,
			FactorNNZ: 5000, FactorFlops: 400000, FillRatio: 2.5, Escalations: 0},
		{Name: "b", Path: "mc", WallMS: 60, AllocBytes: 4 << 20,
			FactorNNZ: 3000, FactorFlops: 200000, FillRatio: 2.0, Escalations: 0},
	}
	return rep
}

func TestCompareClean(t *testing.T) {
	base := syntheticReport()
	c := Compare(base, base, nil)
	if rc := c.ExitCode(); rc != 0 {
		t.Fatalf("identical reports: exit %d, want 0 (fails=%d warns=%d)", rc, c.Fails, c.Warns)
	}
}

func TestCompareSlowdownWarns(t *testing.T) {
	base := syntheticReport()
	slow := syntheticReport()
	for i := range slow.Rows {
		slow.Rows[i].WallMS *= 2 // exactly the 2x acceptance scenario
	}
	c := Compare(base, slow, nil)
	if rc := c.ExitCode(); rc == 0 {
		t.Fatalf("2x slowdown: exit 0, want nonzero")
	}
	var md bytes.Buffer
	if err := c.WriteMarkdown(&md); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	out := md.String()
	if !strings.Contains(out, "| a | wall_ms |") || !strings.Contains(out, "2.00x") {
		t.Fatalf("markdown missing the wall_ms delta:\n%s", out)
	}
}

func TestCompareDeterministicRegressionFails(t *testing.T) {
	base := syntheticReport()
	worse := syntheticReport()
	worse.Rows[0].FactorFlops = worse.Rows[0].FactorFlops * 3 / 2
	c := Compare(base, worse, nil)
	if rc := c.ExitCode(); rc != 2 {
		t.Fatalf("flops regression: exit %d, want 2", rc)
	}
	var md bytes.Buffer
	if err := c.WriteMarkdown(&md); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if !strings.Contains(md.String(), "FAIL") {
		t.Fatalf("markdown missing FAIL flag:\n%s", md.String())
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	base := syntheticReport()
	base.Rows[0].WallMS = 8
	jitter := syntheticReport()
	jitter.Rows[0].WallMS = 15 // 1.9x but both inside the 20 ms floor
	c := Compare(base, jitter, nil)
	if rc := c.ExitCode(); rc != 0 {
		t.Fatalf("sub-floor jitter: exit %d, want 0", rc)
	}
}

func TestCompareMissingRowFails(t *testing.T) {
	base := syntheticReport()
	short := syntheticReport()
	short.Rows = short.Rows[:1]
	c := Compare(base, short, nil)
	if rc := c.ExitCode(); rc != 2 {
		t.Fatalf("missing row: exit %d, want 2", rc)
	}
	if len(c.MissingRows) != 1 || c.MissingRows[0] != "b" {
		t.Fatalf("MissingRows = %v, want [b]", c.MissingRows)
	}
}

func TestSuiteNames(t *testing.T) {
	for _, name := range []string{"quick", "default"} {
		scs, err := Suite(name)
		if err != nil || len(scs) == 0 {
			t.Fatalf("Suite(%q) = %d scenarios, err %v", name, len(scs), err)
		}
		seen := map[string]bool{}
		for _, sc := range scs {
			if seen[sc.Name] {
				t.Errorf("suite %q: duplicate scenario name %q", name, sc.Name)
			}
			seen[sc.Name] = true
		}
	}
	if _, err := Suite("bogus"); err == nil {
		t.Fatal("want error for unknown suite")
	}
}
