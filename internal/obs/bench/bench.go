// Package bench is the standardized performance-scenario suite behind
// `benchtab -json` and the CI perf gate. A Scenario names one (grid
// size × solve path × ordering) cell; Run drives each cell through the
// real core entry points and records wall time, allocation volume,
// peak RSS and the machine-independent solver metrics (symbolic flops,
// fill-in, factor nnz, condition estimate, numguard escalations) into
// a versioned Report that Compare can diff against a committed
// baseline.
package bench

import (
	"bufio"
	"fmt"
	"os"
	"runtime/metrics"
	"strconv"
	"strings"
	"time"

	"opera/internal/core"
	"opera/internal/factor"
	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/obs"
	"opera/internal/order"
	"opera/internal/parallel"
	"opera/internal/sparse"
)

// Scenario is one suite cell. Zero values select sane defaults
// (Order 2, Steps 8, Samples 50, nested-dissection ordering, seed 1).
type Scenario struct {
	// Name keys the row in reports; Compare pairs baseline and new rows
	// by it, so renaming a scenario is a baseline-breaking change.
	Name string `json:"name"`
	// Path selects the solve: "mc", "decoupled", "coupled",
	// "transient" or "factor" (repeated numeric refactorizations of
	// the transient companion — the kernel microbenchmark).
	Path string `json:"path"`
	// Nodes is the requested grid size (grid.DefaultSpec clamps below
	// 64).
	Nodes int `json:"nodes"`
	// Order is the chaos order (ignored by mc and transient).
	Order int `json:"order,omitempty"`
	// Steps is the transient step count.
	Steps int `json:"steps,omitempty"`
	// Samples is the Monte Carlo sample count (mc only).
	Samples int `json:"samples,omitempty"`
	// Ordering is the fill-reducing ordering: "nd" (default), "rcm",
	// "md", "amd" or "natural".
	Ordering string `json:"ordering,omitempty"`
	// Kernel selects the scalar Cholesky kernel: "" or "supernodal"
	// (default, blocked panels), "scalar" (up-looking reference).
	Kernel string `json:"kernel,omitempty"`
	// Seed feeds the grid generator (and the mc sampler).
	Seed int64 `json:"seed,omitempty"`
}

func (sc Scenario) withDefaults() Scenario {
	if sc.Order == 0 {
		sc.Order = 2
	}
	if sc.Steps == 0 {
		sc.Steps = 8
	}
	if sc.Samples == 0 {
		sc.Samples = 50
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	return sc
}

// QuickSuite is the CI suite: one row per solve path at grid sizes
// small enough that the whole run stays under a few seconds on a
// shared runner, yet large enough that the deterministic metrics
// (flops, fill, nnz) are meaningful.
func QuickSuite() []Scenario {
	return []Scenario{
		{Name: "transient-256", Path: "transient", Nodes: 256, Steps: 10, Seed: 3},
		{Name: "mc-256-s40", Path: "mc", Nodes: 256, Steps: 8, Samples: 40, Seed: 3},
		{Name: "decoupled-256-o2", Path: "decoupled", Nodes: 256, Order: 2, Steps: 8, Seed: 3},
		{Name: "coupled-128-o2", Path: "coupled", Nodes: 128, Order: 2, Steps: 6, Seed: 3},
		{Name: "factor-2k-nd-scalar", Path: "factor", Nodes: 2000, Kernel: "scalar", Seed: 3},
		{Name: "factor-2k-nd-super", Path: "factor", Nodes: 2000, Kernel: "supernodal", Seed: 3},
		{Name: "factor-2k-amd-scalar", Path: "factor", Nodes: 2000, Ordering: "amd", Kernel: "scalar", Seed: 3},
		{Name: "factor-2k-amd-super", Path: "factor", Nodes: 2000, Ordering: "amd", Kernel: "supernodal", Seed: 3},
	}
}

// DefaultSuite is the workstation suite: the quick rows plus larger
// grids and ordering variants, for manual perf work.
func DefaultSuite() []Scenario {
	return append(QuickSuite(),
		Scenario{Name: "transient-2k", Path: "transient", Nodes: 2000, Steps: 20, Seed: 5},
		Scenario{Name: "mc-1k-s100", Path: "mc", Nodes: 1000, Steps: 10, Samples: 100, Seed: 5},
		Scenario{Name: "decoupled-1k-o3", Path: "decoupled", Nodes: 1000, Order: 3, Steps: 10, Seed: 5},
		Scenario{Name: "decoupled-1k-o3-rcm", Path: "decoupled", Nodes: 1000, Order: 3, Steps: 10, Ordering: "rcm", Seed: 5},
		Scenario{Name: "decoupled-1k-o3-natural", Path: "decoupled", Nodes: 1000, Order: 3, Steps: 10, Ordering: "natural", Seed: 5},
		Scenario{Name: "decoupled-1k-o3-amd", Path: "decoupled", Nodes: 1000, Order: 3, Steps: 10, Ordering: "amd", Seed: 5},
		Scenario{Name: "coupled-256-o2", Path: "coupled", Nodes: 256, Order: 2, Steps: 8, Seed: 5},
		Scenario{Name: "factor-8k-nd-scalar", Path: "factor", Nodes: 8000, Kernel: "scalar", Seed: 5},
		Scenario{Name: "factor-8k-nd-super", Path: "factor", Nodes: 8000, Kernel: "supernodal", Seed: 5},
		Scenario{Name: "factor-8k-amd-scalar", Path: "factor", Nodes: 8000, Ordering: "amd", Kernel: "scalar", Seed: 5},
		Scenario{Name: "factor-8k-amd-super", Path: "factor", Nodes: 8000, Ordering: "amd", Kernel: "supernodal", Seed: 5},
	)
}

// Suite resolves a suite name ("quick" or "default").
func Suite(name string) ([]Scenario, error) {
	switch name {
	case "", "quick":
		return QuickSuite(), nil
	case "default", "full":
		return DefaultSuite(), nil
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (want quick or default)", name)
	}
}

// RunOptions configures a suite run.
type RunOptions struct {
	// Workers caps each scenario's solver worker pool (0 means
	// GOMAXPROCS). Recorded in the report header: worker count changes
	// wall time, so baselines are only comparable at equal workers.
	Workers int
	// Tracer, when non-nil, receives one span per scenario row, so a
	// single trace dump covers the whole suite.
	Tracer *obs.Tracer
	// Logf, when non-nil, receives one progress line per row.
	Logf func(format string, args ...any)
}

// Run executes the scenarios in order and assembles the report
// envelope. Scenarios run sequentially — concurrent rows would
// contaminate each other's wall and RSS numbers.
func Run(suite string, scenarios []Scenario, opts RunOptions) (*Report, error) {
	rep := NewReport(suite, opts.Workers)
	for _, sc := range scenarios {
		row, err := runScenario(sc, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: scenario %q: %w", sc.Name, err)
		}
		rep.Rows = append(rep.Rows, row)
		if opts.Logf != nil {
			opts.Logf("bench %-24s %8.1f ms  %8s alloc  flops %.3g  fill %.2f",
				row.Name, row.WallMS, fmtBytes(row.AllocBytes), float64(row.FactorFlops), row.FillRatio)
		}
	}
	return rep, nil
}

func runScenario(sc Scenario, opts RunOptions) (Row, error) {
	sc = sc.withDefaults()
	if sc.Name == "" {
		return Row{}, fmt.Errorf("scenario needs a name")
	}
	ord, err := parseOrdering(sc.Ordering)
	if err != nil {
		return Row{}, err
	}
	kern, err := parseKernel(sc.Kernel)
	if err != nil {
		return Row{}, err
	}
	spec := grid.DefaultSpec(sc.Nodes, sc.Seed)
	nl, err := grid.Build(spec)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Name: sc.Name, Path: sc.Path, Nodes: sc.Nodes,
		Order: sc.Order, Steps: sc.Steps, Ordering: ordName(ord),
		Kernel: kern.String(),
	}
	sp := opts.Tracer.Start("bench."+sc.Name,
		obs.Attr{Key: "path", Value: sc.Path}, obs.Int("nodes", sc.Nodes))
	alloc0 := totalAllocBytes()
	start := time.Now()

	const step = 1e-10
	switch sc.Path {
	case "transient":
		sys, berr := mna.Build(nl, mna.DefaultSpec())
		if berr != nil {
			return Row{}, berr
		}
		row.N = sys.N
		_, err = core.NominalRun(sys, core.Options{
			Order: 1, Step: step, Steps: sc.Steps, Workers: opts.Workers,
		})
		if err == nil {
			// The nominal path exposes no factor telemetry; the companion
			// symbolic analysis is cheap, deterministic and exactly what the
			// solve factorizes, so reproduce it for the report.
			companion := sparse.Add(1, sys.Ga, 1/step, sys.Ca)
			sym := factor.CholAnalyze(companion, order.NestedDissection(order.NewGraph(companion), 0))
			row.FactorNNZ = sym.LNNZ()
			row.FactorFlops = sym.FlopEstimate()
			row.FillRatio = sym.FillRatio()
		}
	case "mc":
		sys, berr := mna.Build(nl, mna.DefaultSpec())
		if berr != nil {
			return Row{}, berr
		}
		row.N = sys.N
		row.Samples = sc.Samples
		var mc *montecarloResult
		mc, err = runMC(sys, sc, opts.Workers)
		if err == nil {
			row.FactorNNZ = mc.FactorNNZ
			row.FactorFlops = mc.FactorFlops
			row.FillRatio = mc.FillRatio
			row.Samples = mc.SamplesRun
		}
	case "decoupled":
		var res *core.Result
		res, err = core.AnalyzeLeakage(nl, core.LeakageOptions{
			Regions: spec.NumRegions(), SigmaLogI: 0.4,
			Order: sc.Order, Step: step, Steps: sc.Steps,
			Ordering: ord, Workers: opts.Workers,
		})
		if err == nil {
			if !res.Galerkin.Decoupled {
				return Row{}, fmt.Errorf("decoupled path not taken")
			}
			row.fromGalerkin(res.Galerkin)
		}
	case "coupled":
		sys, berr := mna.Build(nl, mna.DefaultSpec())
		if berr != nil {
			return Row{}, berr
		}
		var res *core.Result
		res, err = core.Analyze(sys, core.Options{
			Order: sc.Order, Step: step, Steps: sc.Steps,
			Ordering: ord, ForceCoupled: true, Workers: opts.Workers,
		})
		if err == nil {
			row.N = res.Galerkin.AugmentedN
			row.fromGalerkin(res.Galerkin)
		}
	case "factor":
		sys, berr := mna.Build(nl, mna.DefaultSpec())
		if berr != nil {
			return Row{}, berr
		}
		row.N = sys.N
		companion := sparse.Add(1, sys.Ga, 1/step, sys.Ca)
		perm := orderingPerm(ord, companion)
		sym := factor.Analyze(companion, perm, kern)
		if ss, ok := sym.(*factor.SuperSymbolic); ok {
			ss.Workers = parallel.Workers(opts.Workers)
		}
		// Repeated numeric refactorizations of one symbolic analysis —
		// exactly the Monte Carlo per-sample hot loop, so this wall time
		// is the kernel comparison the perf gate's KernelGate reads.
		var f factor.ScalarFactor
		for rep := 0; rep < factorReps && err == nil; rep++ {
			f, err = sym.Refactorize(companion, f)
		}
		if err == nil {
			row.Rung = sym.KernelName()
			row.FactorNNZ = sym.LNNZ()
			row.FactorFlops = int64(factorReps) * sym.FlopEstimate()
			row.FillRatio = sym.FillRatio()
		}
	default:
		return Row{}, fmt.Errorf("unknown path %q (want mc, decoupled, coupled, transient or factor)", sc.Path)
	}
	if err != nil {
		return Row{}, err
	}

	row.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	row.AllocBytes = totalAllocBytes() - alloc0
	row.PeakRSSBytes = peakRSSBytes()
	sp.SetAttrs(obs.Float("wall_ms", row.WallMS), obs.Int64("flops", row.FactorFlops))
	sp.End()
	return row, nil
}

// fromGalerkin copies the solver telemetry added for the
// numerical-health records into the row.
func (r *Row) fromGalerkin(g galerkin.Result) {
	r.Rung = g.Factorer
	r.FactorNNZ = g.FactorNNZ
	r.FactorFlops = g.FactorFlops
	r.FillRatio = g.FillRatio
	r.CondEst = g.CondEst
	if gd := g.Guard(); gd != nil {
		s := gd.Snapshot()
		r.MaxResidual = s.MaxResidual
		r.Escalations = gd.Escalations()
	}
	if r.N == 0 {
		r.N = g.AugmentedN
	}
}

// montecarloResult is the subset of montecarlo.Result bench reads;
// declared locally so the switch above stays free of a direct
// montecarlo import (core re-exports the run).
type montecarloResult struct {
	SamplesRun  int
	FactorNNZ   int
	FillRatio   float64
	FactorFlops int64
}

func runMC(sys *mna.System, sc Scenario, workers int) (*montecarloResult, error) {
	mc, _, err := core.RunMC(sys, core.Options{
		Order: 1, Step: 1e-10, Steps: sc.Steps, Workers: workers,
	}, sc.Samples, sc.Seed, nil)
	if err != nil {
		return nil, err
	}
	return &montecarloResult{
		SamplesRun: mc.SamplesRun, FactorNNZ: mc.FactorNNZ,
		FillRatio: mc.FillRatio, FactorFlops: mc.FactorFlops,
	}, nil
}

func parseOrdering(s string) (galerkin.Ordering, error) {
	switch s {
	case "", "nd":
		return galerkin.OrderND, nil
	case "rcm":
		return galerkin.OrderRCM, nil
	case "md":
		return galerkin.OrderMD, nil
	case "amd":
		return galerkin.OrderAMD, nil
	case "natural":
		return galerkin.OrderNatural, nil
	default:
		return 0, fmt.Errorf("unknown ordering %q", s)
	}
}

func parseKernel(s string) (factor.Kernel, error) {
	switch s {
	case "", "super", "supernodal":
		return factor.KernelSupernodal, nil
	case "scalar":
		return factor.KernelScalar, nil
	default:
		return 0, fmt.Errorf("unknown kernel %q (want supernodal or scalar)", s)
	}
}

// factorReps is the refactorization count of the "factor" path: enough
// repetitions that the numeric kernel dominates the row's wall time
// over the one-off symbolic analysis and ordering.
const factorReps = 5

// orderingPerm computes the fill-reducing permutation for the factor
// path (mirrors the galerkin solver's ordering dispatch).
func orderingPerm(o galerkin.Ordering, m *sparse.Matrix) []int {
	if o == galerkin.OrderNatural {
		return nil
	}
	g := order.NewGraph(m)
	switch o {
	case galerkin.OrderRCM:
		return order.RCM(g)
	case galerkin.OrderMD:
		return order.MinimumDegree(g)
	case galerkin.OrderAMD:
		return order.AMD(g)
	default:
		return order.NestedDissection(g, 0)
	}
}

func ordName(o galerkin.Ordering) string { return o.String() }

// totalAllocBytes reads the cumulative heap allocation counter — the
// same runtime/metrics sample the obs tracer uses for span alloc
// deltas. Monotone, so a delta across a scenario is its allocation
// volume regardless of GC activity.
func totalAllocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// peakRSSBytes reports the process high-water RSS from
// /proc/self/status (VmHWM). Linux-only; 0 elsewhere. Process-global
// and monotone: later rows inherit earlier rows' peak, so the metric
// is informational, not compared.
func peakRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
