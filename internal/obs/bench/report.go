package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion stamps every report. Compare refuses mixed schemas:
// a metric that changed meaning between versions must not silently
// pass a threshold check.
const SchemaVersion = 1

// Report is the machine-readable envelope `benchtab -json` emits and
// the CI perf gate consumes. The header pins everything that makes two
// reports comparable; Rows carry the per-scenario measurements.
type Report struct {
	Schema    int    `json:"schema"`
	Suite     string `json:"suite"`
	Created   string `json:"created,omitempty"` // RFC 3339, informational
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Workers is the solver worker cap the suite ran with (0 means
	// GOMAXPROCS). Wall times are only comparable at equal workers.
	Workers int   `json:"workers"`
	Rows    []Row `json:"rows"`
}

// Row is one scenario's measurements. Wall, alloc and RSS are
// machine-dependent (soft thresholds with noise floors); flops, fill,
// nnz and escalations are deterministic functions of the input and the
// code, so any regression there is a real algorithmic change (hard).
type Row struct {
	Name     string `json:"name"`
	Path     string `json:"path"`
	Nodes    int    `json:"nodes"`
	N        int    `json:"n,omitempty"` // actual system dimension
	Order    int    `json:"order,omitempty"`
	Steps    int    `json:"steps,omitempty"`
	Samples  int    `json:"samples,omitempty"`
	Ordering string `json:"ordering,omitempty"`
	Kernel   string `json:"kernel,omitempty"`

	WallMS       float64 `json:"wall_ms"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	PeakRSSBytes uint64  `json:"peak_rss_bytes,omitempty"`

	Rung        string  `json:"rung,omitempty"`
	FactorNNZ   int     `json:"factor_nnz,omitempty"`
	FactorFlops int64   `json:"factor_flops,omitempty"`
	FillRatio   float64 `json:"fill_ratio,omitempty"`
	CondEst     float64 `json:"cond_est,omitempty"`
	MaxResidual float64 `json:"max_residual,omitempty"`
	Escalations int     `json:"escalations,omitempty"`
}

// NewReport builds an empty report with the current platform header.
func NewReport(suite string, workers int) *Report {
	return &Report{
		Schema:    SchemaVersion,
		Suite:     suite,
		Created:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workers:   workers,
		Rows:      []Row{},
	}
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeReport parses a report and validates its schema stamp.
func DecodeReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: decoding report: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: report schema %d, this build understands %d", r.Schema, SchemaVersion)
	}
	return &r, nil
}

// ReadReportFile parses a report from the named file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeReport(f)
}

// Threshold is the regression policy for one metric. A new/base ratio
// above Hard fails the gate; above Soft it warns. Deltas where both
// sides sit at or below Floor are noise and pass regardless — a 9 ms
// row going to 13 ms on a shared runner is not a 1.4x regression.
type Threshold struct {
	Soft  float64 `json:"soft"`
	Hard  float64 `json:"hard"`
	Floor float64 `json:"floor,omitempty"`
}

// DefaultThresholds is the per-metric policy the CI gate uses.
// Machine-dependent metrics (wall, alloc) warn at 1.3x and fail past
// 2x, with noise floors sized for shared runners. Deterministic
// metrics (flops, fill, nnz, escalations) fail on any growth beyond
// rounding — Soft == Hard, so there is no warn band. Peak RSS is
// process-monotone across rows and therefore informational only.
func DefaultThresholds() map[string]Threshold {
	return map[string]Threshold{
		"wall_ms": {Soft: 1.3, Hard: 2.0, Floor: 20},
		// Allocation volume is only semi-deterministic: the solvers reuse
		// scratch via sync.Pool, whose hit rate depends on GC timing, so
		// small rows jitter by tens of percent run to run. The floor
		// ignores rows below 16 MiB and the bands are wide; a real alloc
		// regression (a dropped pool, a per-step allocation) shows up as
		// a multiple, not a percentage.
		"alloc_bytes":  {Soft: 1.5, Hard: 3.0, Floor: 16 << 20},
		"factor_flops": {Soft: 1.01, Hard: 1.01},
		"fill_ratio":   {Soft: 1.01, Hard: 1.01},
		"factor_nnz":   {Soft: 1.01, Hard: 1.01},
		"escalations":  {Soft: 1.0, Hard: 1.0},
	}
}

// comparedMetrics fixes the metric order in the delta table.
var comparedMetrics = []string{
	"wall_ms", "alloc_bytes", "factor_flops", "fill_ratio", "factor_nnz", "escalations",
}

func (r Row) metric(name string) float64 {
	switch name {
	case "wall_ms":
		return r.WallMS
	case "alloc_bytes":
		return float64(r.AllocBytes)
	case "factor_flops":
		return float64(r.FactorFlops)
	case "fill_ratio":
		return r.FillRatio
	case "factor_nnz":
		return float64(r.FactorNNZ)
	case "escalations":
		return float64(r.Escalations)
	default:
		return 0
	}
}

// Severity of one delta.
const (
	SeverityOK   = "ok"
	SeverityWarn = "warn"
	SeverityFail = "fail"
)

// Delta is one (row, metric) comparison.
type Delta struct {
	Row      string  `json:"row"`
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	New      float64 `json:"new"`
	Ratio    float64 `json:"ratio"` // new/base; 0 when base is 0
	Severity string  `json:"severity"`
}

// Comparison is the full diff of two reports.
type Comparison struct {
	Deltas []Delta `json:"deltas"`
	// MissingRows lists baseline scenarios absent from the new report —
	// a silently dropped scenario must fail the gate, not pass it.
	MissingRows []string `json:"missing_rows,omitempty"`
	// NewRows lists scenarios only in the new report (informational).
	NewRows []string `json:"new_rows,omitempty"`
	Warns   int      `json:"warns"`
	Fails   int      `json:"fails"`
}

// ExitCode maps the comparison onto the benchtab process exit code:
// 0 clean, 1 soft regressions only (warn), 2 hard regressions or
// missing rows (fail the gate).
func (c *Comparison) ExitCode() int {
	switch {
	case c.Fails > 0 || len(c.MissingRows) > 0:
		return 2
	case c.Warns > 0:
		return 1
	default:
		return 0
	}
}

// Compare diffs new against base row-by-row under the given
// thresholds (nil selects DefaultThresholds).
func Compare(base, new *Report, th map[string]Threshold) *Comparison {
	if th == nil {
		th = DefaultThresholds()
	}
	c := &Comparison{}
	newByName := make(map[string]Row, len(new.Rows))
	for _, r := range new.Rows {
		newByName[r.Name] = r
	}
	baseNames := make(map[string]bool, len(base.Rows))
	for _, b := range base.Rows {
		baseNames[b.Name] = true
		n, ok := newByName[b.Name]
		if !ok {
			c.MissingRows = append(c.MissingRows, b.Name)
			continue
		}
		for _, m := range comparedMetrics {
			d := compareMetric(b.Name, m, b.metric(m), n.metric(m), th[m])
			switch d.Severity {
			case SeverityWarn:
				c.Warns++
			case SeverityFail:
				c.Fails++
			}
			c.Deltas = append(c.Deltas, d)
		}
	}
	for _, r := range new.Rows {
		if !baseNames[r.Name] {
			c.NewRows = append(c.NewRows, r.Name)
		}
	}
	sort.Strings(c.MissingRows)
	sort.Strings(c.NewRows)
	return c
}

// KernelGate checks that the supernodal kernel earns its keep: for
// every pair of "factor" rows identical up to the kernel, the
// supernodal row's wall time must not exceed the scalar row's by more
// than margin (default 1.1 — 10% grace for runner noise; the rows
// share a noise floor with the wall threshold). Returns one message
// per violated pair; empty means the gate passes. Unpaired rows are
// skipped — the gate never fails on a suite without kernel pairs.
func KernelGate(rep *Report, margin float64) []string {
	if margin <= 0 {
		margin = 1.1
	}
	const floor = 20 // ms, same noise floor as the wall_ms threshold
	type key struct {
		nodes    int
		ordering string
	}
	scalar := make(map[key]Row)
	super := make(map[key]Row)
	for _, r := range rep.Rows {
		if r.Path != "factor" {
			continue
		}
		k := key{r.Nodes, r.Ordering}
		switch r.Kernel {
		case "scalar":
			scalar[k] = r
		case "supernodal":
			super[k] = r
		}
	}
	var fails []string
	for k, s := range super {
		ref, ok := scalar[k]
		if !ok {
			continue
		}
		if s.WallMS <= floor && ref.WallMS <= floor {
			continue
		}
		if s.WallMS > ref.WallMS*margin {
			fails = append(fails, fmt.Sprintf(
				"kernel gate: %s %.1fms slower than %s %.1fms (ratio %.2f > %.2f)",
				s.Name, s.WallMS, ref.Name, ref.WallMS, s.WallMS/ref.WallMS, margin))
		}
	}
	sort.Strings(fails)
	return fails
}

func compareMetric(row, metric string, base, new float64, t Threshold) Delta {
	d := Delta{Row: row, Metric: metric, Base: base, New: new, Severity: SeverityOK}
	if base > 0 {
		d.Ratio = new / base
	}
	if base <= t.Floor && new <= t.Floor {
		return d // both inside the noise floor
	}
	switch {
	case base == 0 && new > 0:
		// A metric appearing from nothing is a regression; with no ratio
		// to grade it, treat it as hard unless it is inside the floor.
		d.Severity = SeverityFail
	case t.Hard > 0 && d.Ratio > t.Hard:
		d.Severity = SeverityFail
	case t.Soft > 0 && d.Ratio > t.Soft:
		d.Severity = SeverityWarn
	}
	return d
}

// WriteMarkdown renders the comparison as a markdown delta table —
// the CI gate pastes this into the job summary. Rows are grouped by
// scenario; improvements and unchanged metrics render without a flag.
func (c *Comparison) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| scenario | metric | base | new | ratio | status |\n|---|---|---:|---:|---:|---|\n"); err != nil {
		return err
	}
	for _, d := range c.Deltas {
		status := ""
		switch d.Severity {
		case SeverityWarn:
			status = "⚠ warn"
		case SeverityFail:
			status = "✗ FAIL"
		}
		ratio := "—"
		if d.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", d.Ratio)
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			d.Row, d.Metric, fmtMetric(d.Metric, d.Base), fmtMetric(d.Metric, d.New), ratio, status); err != nil {
			return err
		}
	}
	for _, name := range c.MissingRows {
		if _, err := fmt.Fprintf(w, "| %s | — | — | *missing* | — | ✗ FAIL |\n", name); err != nil {
			return err
		}
	}
	for _, name := range c.NewRows {
		if _, err := fmt.Fprintf(w, "| %s | — | — | *new row* | — | |\n", name); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\n%d fail, %d warn\n", c.Fails+len(c.MissingRows), c.Warns)
	return err
}

func fmtMetric(metric string, v float64) string {
	switch metric {
	case "wall_ms":
		return fmt.Sprintf("%.1fms", v)
	case "alloc_bytes":
		return fmtBytes(uint64(v))
	case "fill_ratio":
		return fmt.Sprintf("%.3f", v)
	case "factor_flops":
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
