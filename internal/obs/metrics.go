package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a concurrency-safe collection of named counters, gauges
// and histograms. Instruments are created lazily on first lookup and
// live for the registry's lifetime, so hot paths can look an
// instrument up once and update it lock-free afterwards. A nil
// *Registry hands out nil instruments, whose methods are no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (an implicit +Inf overflow bucket
// is appended). Later lookups ignore the bounds argument — the first
// registration wins.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// WorkerHistogram returns the per-worker variant of a histogram,
// named "<base>.w<worker>" — e.g. montecarlo.sample_ms.w3. Parallel
// loops register one per worker so -trace output shows how evenly the
// pool is loaded.
func (r *Registry) WorkerHistogram(base string, worker int, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.Histogram(fmt.Sprintf("%s.w%d", base, worker), bounds)
}

// Counter is a monotone event count, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value (or running-max) float, safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// SetMax stores v only if it exceeds the current value (running
// maximum, e.g. worst accepted residual).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		if g.set.Load() {
			old := g.bits.Load()
			if math.Float64frombits(old) >= v {
				return
			}
			if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
				return
			}
			continue
		}
		g.Set(v)
		return
	}
}

// Value returns the stored value (0 for a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil || !g.set.Load() {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks count,
// sum, min and max, all lock-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds; counts has one extra +Inf slot
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
	min    atomicFloat
	max    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.storeMin(v)
	h.max.storeMax(v)
}

// ObserveSince records the elapsed time since start, in milliseconds —
// the natural spelling for duration histograms named *_ms.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// atomicFloat is a CAS-updated float64.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) storeMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// MSBuckets is the standard bucket layout for millisecond-duration
// histograms: 10 µs to 30 s in roughly 1-3-10 steps.
var MSBuckets = []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000}

// ExpBuckets builds n exponentially spaced bucket bounds start,
// start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// HistogramSnapshot is a histogram's state at snapshot time.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets pairs each upper bound with its (non-cumulative) count;
	// the final bucket has UpperBound +Inf, encoded as "+Inf".
	Buckets []BucketSnapshot `json:"buckets"`
}

// BucketSnapshot is one histogram bucket.
type BucketSnapshot struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// MetricsSnapshot is a point-in-time copy of every instrument.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.load()}
		if hs.Count > 0 {
			hs.Min = h.min.load()
			hs.Max = h.max.load()
		}
		for i := range h.counts {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketSnapshot{UpperBound: ub, Count: h.counts[i].Load()})
		}
		snap.Histograms[name] = hs
	}
	return snap
}
