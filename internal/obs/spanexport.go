package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"time"
)

// Cross-process span export. A Tracer's span tree is process-local; a
// clustered request (router forward → peer peek → owner-shard solve)
// leaves fragments of one logical trace in several processes. ExportSpan
// is the compact wire form those fragments travel in: flat records with
// deterministic span/parent IDs and absolute microsecond start times, so
// a stitcher that has never seen the originating Tracer can reassemble
// one tree and time-align spans recorded on different machines (modulo
// clock skew, which the waterfall rendering tolerates by aligning on the
// earliest exported start).

// ExportSpan is one span in the export format. SpanID and ParentID are
// 16-hex digests deterministic in (trace ID, shard, tree path), so the
// same span exports the same ID every time and a synthetic parent (the
// shard's job-root span, the router's forward span) can be referenced
// before or after it exists.
type ExportSpan struct {
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	TraceID     string            `json:"trace_id"`
	Shard       string            `json:"shard,omitempty"`
	Name        string            `json:"name"`
	StartUS     int64             `json:"start_us"`
	DurMS       float64           `json:"dur_ms"`
	AllocBytes  uint64            `json:"alloc_bytes,omitempty"`
	AllocApprox bool              `json:"alloc_approx,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// TraceFragment is one process's contribution to a trace: the span set
// it retained for that trace ID, served at /debug/spans/{trace}.
type TraceFragment struct {
	TraceID string       `json:"trace_id"`
	Shard   string       `json:"shard,omitempty"`
	Spans   []ExportSpan `json:"spans"`
}

// SpanID derives the deterministic span ID for a (trace, shard, path)
// triple: the first 16 hex characters of sha256. The path names the
// span's position in the shard's logical tree ("root", "root/0",
// "root/0/2", or a symbolic name like "peek/<peer>"), so IDs are stable
// across re-exports and computable by parties that never exchanged
// state.
func SpanID(traceID, shard, path string) string {
	sum := sha256.Sum256([]byte(traceID + "|" + shard + "|" + path))
	return hex.EncodeToString(sum[:8])
}

// Export flattens the tracer's span tree into export form. Every span
// is tagged with the tracer's trace ID and the given shard name; the
// root span's parent is parentID (empty for a standalone trace, or the
// ID of a synthetic container span — e.g. the shard's job-root span —
// under which the tree should hang when stitched). Span IDs derive from
// the tree path rooted at pathPrefix ("root" when empty). Open spans
// export their live elapsed time. Returns nil for a nil tracer or an
// untagged one (no trace ID means nothing to join on).
func (t *Tracer) Export(shard, parentID, pathPrefix string) []ExportSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.traceID == "" {
		return nil
	}
	if pathPrefix == "" {
		pathPrefix = "root"
	}
	var out []ExportSpan
	exportSpan(&out, t.root, string(t.traceID), shard, parentID, pathPrefix)
	return out
}

// exportSpan appends s and its subtree to out, depth-first, preserving
// child order (which is start order under the tracer's mutex).
func exportSpan(out *[]ExportSpan, s *Span, traceID, shard, parentID, path string) {
	es := ExportSpan{
		SpanID:      SpanID(traceID, shard, path),
		ParentID:    parentID,
		TraceID:     traceID,
		Shard:       shard,
		Name:        s.Name,
		StartUS:     s.start.UnixMicro(),
		DurMS:       ms(s.durationLocked()),
		AllocBytes:  s.allocs,
		AllocApprox: s.allocApprox,
	}
	if len(s.attrs) > 0 {
		es.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			es.Attrs[a.Key] = a.Value
		}
	}
	*out = append(*out, es)
	for i, c := range s.children {
		exportSpan(out, c, traceID, shard, es.SpanID, path+"/"+strconv.Itoa(i))
	}
}

// SyntheticSpan builds an export span that has no backing *Span — the
// shard's job-root container, the queue-wait span, a peer-peek probe,
// the router's forward span. The ID derives from (trace, shard, path)
// exactly like exported tracer spans, so other processes can parent
// against it by recomputing the same ID.
func SyntheticSpan(traceID, shard, path, parentID, name string, start time.Time, dur time.Duration, attrs ...Attr) ExportSpan {
	es := ExportSpan{
		SpanID:   SpanID(traceID, shard, path),
		ParentID: parentID,
		TraceID:  traceID,
		Shard:    shard,
		Name:     name,
		StartUS:  start.UnixMicro(),
		DurMS:    ms(dur),
	}
	if len(attrs) > 0 {
		es.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			es.Attrs[a.Key] = a.Value
		}
	}
	return es
}

// sizeBytes estimates the span's retained memory in a SpanRing: string
// payloads plus a fixed struct overhead. The estimate only has to be
// honest enough for the ring's byte budget to bound real memory.
func (es ExportSpan) sizeBytes() int64 {
	n := 96 + len(es.SpanID) + len(es.ParentID) + len(es.TraceID) + len(es.Shard) + len(es.Name)
	for k, v := range es.Attrs {
		n += 48 + len(k) + len(v)
	}
	return int64(n)
}
