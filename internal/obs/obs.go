// Package obs is the observability layer of the OPERA pipeline: a
// hierarchical span tracer (wall time + allocation deltas + key-value
// attributes per pipeline phase), a registry of named counters, gauges
// and fixed-bucket histograms, and exporters (human-readable summary
// table, JSON dump, expvar/pprof debug server). It is stdlib-only and
// designed around a nil fast path: every method on a nil *Tracer,
// *Span, *Registry, *Counter, *Gauge or *Histogram is a no-op, so
// instrumented code pays nothing when observability is disabled — no
// branches at call sites, no allocation, no time.Now.
//
// Span names are pipeline phase names ("assemble", "order", "factor",
// "transient", ...); metric names follow the <pkg>.<noun>_<unit>
// convention ("galerkin.step_ms", "numguard.refinement_sweeps_total").
package obs

import (
	"context"
	"fmt"
	"runtime/metrics"
	"sync"
	"time"
)

// Attr is one key-value annotation on a span (matrix dimension, nnz,
// basis size, solver rung, ...). Values are stringified at creation so
// spans never retain references into solver state.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Int64 builds an int64 attribute.
func Int64(key string, value int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%.6g", value)} }

// Span is one timed region of a run. Spans nest: Start on the owning
// tracer opens a child of the innermost open span, End closes it and
// records wall time and the cumulative heap-allocation delta across the
// span's lifetime (children included — allocation attribution is
// inclusive, like the durations).
//
// The allocation delta is a process-wide reading (runtime/metrics
// /gc/heap/allocs:bytes — there is no per-goroutine allocation counter
// in the runtime), so a span whose work fans out across goroutines, or
// that runs while other goroutines allocate, also counts their bytes.
// Such spans should be marked with MarkAllocsApprox so exports render
// the delta as approximate instead of presenting an exact-looking
// number.
type Span struct {
	Name string

	tracer      *Tracer
	parent      *Span
	start       time.Time
	startOff    time.Duration // offset from the trace root's start
	dur         time.Duration
	alloc0      uint64
	allocs      uint64
	allocApprox bool
	attrs       []Attr
	children    []*Span
	done        bool
}

// Tracer records one run's span tree and owns the metrics registry.
// Span lifecycle calls (Start/End/Record/Finish) are serialized by an
// internal mutex, so the tracer may be shared across goroutines; the
// span *tree* is still shaped by call order, which matches the
// single-goroutine pipeline it instruments. A nil *Tracer is the
// disabled state: every method is a no-op and Registry returns nil.
type Tracer struct {
	mu      sync.Mutex
	root    *Span
	cur     *Span
	reg     *Registry
	mem     bool
	traceID TraceID
}

// New starts a tracer whose root span carries the given name (e.g.
// "opera.run"). The root clock starts immediately.
func New(name string) *Tracer {
	t := &Tracer{reg: NewRegistry(), mem: true}
	t.root = &Span{tracer: t, Name: name, start: time.Now(), alloc0: totalAlloc()}
	t.cur = t.root
	return t
}

// CollectAllocs toggles per-span allocation deltas. The reading is a
// single runtime/metrics sample (no stop-the-world, unlike
// runtime.ReadMemStats) but still costs a few hundred nanoseconds per
// span boundary; turn it off for microbenchmarks of the tracer itself.
func (t *Tracer) CollectAllocs(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mem = on
	t.mu.Unlock()
}

// Registry returns the tracer's metrics registry (nil for a nil
// tracer, which every registry method tolerates).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Root returns the root span (nil for a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a new span as a child of the innermost open span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		tracer: t,
		parent: t.cur,
		Name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
	s.startOff = s.start.Sub(t.root.start)
	if t.mem {
		s.alloc0 = totalAlloc()
	}
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// Record inserts an already-measured span of the given duration as a
// completed child of the innermost open span. It is the tool for
// phases whose time accumulates across many interleaved slices (e.g.
// moment extraction inside the stepping loop).
func (t *Tracer) Record(name string, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	s := &Span{
		tracer:   t,
		parent:   t.cur,
		Name:     name,
		start:    now.Add(-d),
		startOff: now.Add(-d).Sub(t.root.start),
		dur:      d,
		attrs:    attrs,
		done:     true,
	}
	t.cur.children = append(t.cur.children, s)
}

// Finish ends the root span and force-closes any spans left open (an
// aborted run's error path may skip Ends); safe to call more than
// once.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for s := t.cur; s != nil; s = s.parent {
		s.finishLocked(t.mem)
	}
	t.cur = t.root
}

// End closes the span, recording wall time and the allocation delta.
// Ending a span also closes any of its descendants still open.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.done {
		return
	}
	// Close any open descendants first (cursor is at or below s).
	for c := t.cur; c != nil && c != s; c = c.parent {
		c.finishLocked(t.mem)
	}
	s.finishLocked(t.mem)
	if s.parent != nil {
		t.cur = s.parent
	} else {
		t.cur = s
	}
}

func (s *Span) finishLocked(mem bool) {
	if s.done {
		return
	}
	s.dur = time.Since(s.start)
	if mem {
		// The counter is monotone, so the delta is never negative; it
		// can still over-attribute when other goroutines allocate during
		// the span (see MarkAllocsApprox).
		if a := totalAlloc(); a > s.alloc0 {
			s.allocs = a - s.alloc0
		}
	}
	s.done = true
}

// MarkAllocsApprox flags the span's allocation delta as approximate.
// Spans that wrap a parallel fan-out (the Monte Carlo sample loop, the
// decoupled Galerkin per-basis solve, the coupled parallel apply) must
// call this: the delta is process-wide, so concurrent workers and
// sibling phases are folded into it. Exports render the value with a
// "~" prefix and set alloc_approx in JSON.
func (s *Span) MarkAllocsApprox() {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.mu.Lock()
	s.allocApprox = true
	s.tracer.mu.Unlock()
}

// SetAttrs appends attributes to the span (e.g. results known only
// after the work: factor nnz, rung chosen).
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tracer.mu.Unlock()
}

// Duration returns the span's recorded wall time (the live elapsed
// time if the span is still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// Children returns the span's completed and open children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	defer s.tracer.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// totalAlloc reads the process's cumulative heap allocation through
// runtime/metrics, which samples without stopping the world (unlike
// runtime.ReadMemStats) — cheap enough for every span boundary.
func totalAlloc() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// ctxKey is the context key type for tracer propagation.
type ctxKey struct{}

// NewContext returns a context carrying the tracer.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the tracer from the context, or nil (the
// disabled tracer) when absent.
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}

// Start opens a span on the context's tracer: the context-plumbed
// spelling of Tracer.Start for call sites that carry a context.
func Start(ctx context.Context, name string, attrs ...Attr) *Span {
	return FromContext(ctx).Start(name, attrs...)
}
