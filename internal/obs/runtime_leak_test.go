package obs

import (
	"runtime"
	"testing"
	"time"
)

// TestRuntimeSamplerStopsGoroutine verifies the sampler's goroutine
// exits when the stop function runs — the daemons call stop during
// shutdown, and a sampler outliving its registry would keep publishing
// into gauges nobody serves anymore.
func TestRuntimeSamplerStopsGoroutine(t *testing.T) {
	base := runtime.NumGoroutine()
	stop := StartRuntimeSampler(NewRegistry(), 100*time.Millisecond)
	if n := runtime.NumGoroutine(); n <= base {
		t.Fatalf("sampler did not start a goroutine: %d -> %d", base, n)
	}
	stop()
	stop() // idempotent: the daemons keep a deferred stop as a safety net
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("sampler goroutine still alive 2s after stop: %d > %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
