package obs

import (
	"net/http"
	"sync"
)

// SpanRing retains recently exported spans, grouped per trace ID, under
// a global byte budget. It is the storage behind /debug/spans/{trace}:
// a shard adds each finished job's span fragment; the router's stitcher
// reads fragments back out by trace ID.
//
// Bounding is two-level, drop-oldest at both: each trace keeps at most
// maxSpansPerTrace spans (older spans of the same trace are dropped
// first), and the ring as a whole evicts entire traces in
// first-insertion order until the byte budget holds. A nil *SpanRing is
// the disabled state: Add and Get are no-ops, so call sites pay one nil
// check and nothing else.
type SpanRing struct {
	mu       sync.Mutex
	maxBytes int64
	used     int64
	traces   map[string]*traceSpans
	order    []string // trace IDs, first-insertion order (eviction order)
}

// traceSpans is one trace's retained fragment.
type traceSpans struct {
	spans []ExportSpan
	bytes int64
}

// maxSpansPerTrace bounds one trace's span count regardless of the byte
// budget, so a single pathological trace cannot monopolize the ring.
const maxSpansPerTrace = 512

// NewSpanRing builds a ring with the given byte budget. A budget <= 0
// returns nil, the disabled ring.
func NewSpanRing(maxBytes int64) *SpanRing {
	if maxBytes <= 0 {
		return nil
	}
	return &SpanRing{maxBytes: maxBytes, traces: make(map[string]*traceSpans)}
}

// Add retains the spans, grouped by their TraceID fields, evicting as
// needed. Spans without a trace ID are dropped.
func (r *SpanRing) Add(spans ...ExportSpan) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, es := range spans {
		if es.TraceID == "" {
			continue
		}
		ts := r.traces[es.TraceID]
		if ts == nil {
			ts = &traceSpans{}
			r.traces[es.TraceID] = ts
			r.order = append(r.order, es.TraceID)
		}
		ts.spans = append(ts.spans, es)
		sz := es.sizeBytes()
		ts.bytes += sz
		r.used += sz
		// Per-trace cap: drop the trace's oldest span.
		if len(ts.spans) > maxSpansPerTrace {
			old := ts.spans[0].sizeBytes()
			ts.spans = ts.spans[1:]
			ts.bytes -= old
			r.used -= old
		}
	}
	r.evictLocked(spans[len(spans)-1].TraceID)
}

// evictLocked drops whole traces, oldest first, until the byte budget
// holds. The trace just written (keep) is evicted last — only when it
// alone exceeds the budget, in which case its own oldest spans go.
func (r *SpanRing) evictLocked(keep string) {
	for r.used > r.maxBytes && len(r.order) > 0 {
		victim := r.order[0]
		if victim == keep && len(r.order) > 1 {
			// Rotate the kept trace behind the next-oldest victim.
			r.order = append(r.order[1:], victim)
			continue
		}
		if victim == keep {
			// Sole trace over budget: shed its oldest spans instead.
			ts := r.traces[victim]
			for r.used > r.maxBytes && len(ts.spans) > 1 {
				old := ts.spans[0].sizeBytes()
				ts.spans = ts.spans[1:]
				ts.bytes -= old
				r.used -= old
			}
			return
		}
		r.order = r.order[1:]
		ts := r.traces[victim]
		delete(r.traces, victim)
		r.used -= ts.bytes
	}
}

// Get returns the retained spans for a trace in insertion order, or nil
// when the trace is unknown (or the ring disabled). The slice is a
// copy; callers may keep it.
func (r *SpanRing) Get(traceID string) []ExportSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ts := r.traces[traceID]
	if ts == nil {
		return nil
	}
	return append([]ExportSpan(nil), ts.spans...)
}

// Len returns the number of retained traces (0 when disabled).
func (r *SpanRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}

// Bytes returns the ring's current byte estimate (0 when disabled).
func (r *SpanRing) Bytes() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// ServeTrace answers GET /debug/spans/{trace}: the trace's fragment as
// JSON, 404 when the ring holds nothing for it. shard is the serving
// process's self-name, echoed in the fragment envelope.
func (r *SpanRing) ServeTrace(w http.ResponseWriter, shard, traceID string) {
	spans := r.Get(traceID)
	if spans == nil {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSONValue(w, TraceFragment{TraceID: traceID, Shard: shard, Spans: spans})
}
