package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestStartHTTPServesAndCloses(t *testing.T) {
	tr := New("test.run")
	tr.Registry().Counter("test.events_total").Add(3)
	srv, err := ServeDebug("127.0.0.1:0", tr)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["test.events_total"] != 3 {
		t.Errorf("counter lost in snapshot: %+v", snap.Counters)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestStartHTTPTimeoutsConfigured(t *testing.T) {
	srv, err := StartHTTP("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatalf("StartHTTP: %v", err)
	}
	defer srv.Close(context.Background())
	if srv.srv.ReadHeaderTimeout <= 0 || srv.srv.IdleTimeout <= 0 || srv.srv.WriteTimeout <= 0 {
		t.Errorf("protective timeouts missing: %+v", srv.srv)
	}
	if (*HTTPServer)(nil).Close(context.Background()) != nil {
		t.Error("nil Close must be a no-op")
	}
}
