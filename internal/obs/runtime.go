package obs

import (
	"math"
	runtimemetrics "runtime/metrics"
	"sync"
	"time"
)

// Runtime-metrics sampler: a background goroutine that reads the
// runtime/metrics slice on a fixed cadence and mirrors the interesting
// series into registry gauges, so /metrics answers "is the process
// GC-bound? scheduler-starved? leaking goroutines?" alongside the
// service counters without any external agent.
//
// Exported gauge names (all under the runtime.* prefix):
//
//	runtime.goroutines              live goroutine count
//	runtime.heap_bytes              bytes in live heap objects
//	runtime.heap_goal_bytes         GC pacer target
//	runtime.total_alloc_bytes       cumulative allocated bytes
//	runtime.gc_cycles_total         completed GC cycles
//	runtime.gc_pause_ms_p50/.p99    stop-the-world pause quantiles
//	runtime.sched_latency_ms_p50/.p99  goroutine scheduling latency quantiles
//
// The quantiles come from the runtime's cumulative float64 histograms,
// so they describe the process lifetime, not the last interval — the
// right shape for "did anything ever stall" forensics.

// runtimeSamples is the fixed read batch; building it once and reusing
// it keeps each sample allocation-free per runtime/metrics guidance.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/heap/goal:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// runtimeGauges holds the registry endpoints the sampler writes.
type runtimeGauges struct {
	goroutines  *Gauge
	heap        *Gauge
	heapGoal    *Gauge
	totalAlloc  *Gauge
	gcCycles    *Gauge
	gcPauseP50  *Gauge
	gcPauseP99  *Gauge
	schedLatP50 *Gauge
	schedLatP99 *Gauge
}

// StartRuntimeSampler begins sampling runtime/metrics into reg every
// interval (minimum 100ms; 0 selects 1s) and returns a stop function.
// The first sample is taken synchronously, so the gauges are populated
// when StartRuntimeSampler returns. Stop is idempotent and safe to call
// from any goroutine. A nil registry returns a no-op stop.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	g := &runtimeGauges{
		goroutines:  reg.Gauge("runtime.goroutines"),
		heap:        reg.Gauge("runtime.heap_bytes"),
		heapGoal:    reg.Gauge("runtime.heap_goal_bytes"),
		totalAlloc:  reg.Gauge("runtime.total_alloc_bytes"),
		gcCycles:    reg.Gauge("runtime.gc_cycles_total"),
		gcPauseP50:  reg.Gauge("runtime.gc_pause_ms_p50"),
		gcPauseP99:  reg.Gauge("runtime.gc_pause_ms_p99"),
		schedLatP50: reg.Gauge("runtime.sched_latency_ms_p50"),
		schedLatP99: reg.Gauge("runtime.sched_latency_ms_p99"),
	}
	samples := make([]runtimemetrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	sampleRuntime(samples, g)
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sampleRuntime(samples, g)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// sampleRuntime reads one batch and publishes it.
func sampleRuntime(samples []runtimemetrics.Sample, g *runtimeGauges) {
	runtimemetrics.Read(samples)
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case "/sched/goroutines:goroutines":
			g.goroutines.Set(float64(s.Value.Uint64()))
		case "/memory/classes/heap/objects:bytes":
			g.heap.Set(float64(s.Value.Uint64()))
		case "/gc/heap/goal:bytes":
			g.heapGoal.Set(float64(s.Value.Uint64()))
		case "/gc/heap/allocs:bytes":
			g.totalAlloc.Set(float64(s.Value.Uint64()))
		case "/gc/cycles/total:gc-cycles":
			g.gcCycles.Set(float64(s.Value.Uint64()))
		case "/gc/pauses:seconds":
			if h := s.Value.Float64Histogram(); h != nil {
				g.gcPauseP50.Set(histQuantile(h, 0.50) * 1e3)
				g.gcPauseP99.Set(histQuantile(h, 0.99) * 1e3)
			}
		case "/sched/latencies:seconds":
			if h := s.Value.Float64Histogram(); h != nil {
				g.schedLatP50.Set(histQuantile(h, 0.50) * 1e3)
				g.schedLatP99.Set(histQuantile(h, 0.99) * 1e3)
			}
		}
	}
}

// histQuantile returns the q-quantile of a runtime cumulative
// histogram, taking the upper bound of the bucket where the cumulative
// count crosses q (0 when the histogram is empty). Infinite bounds fall
// back to the nearest finite neighbor so the result stays plottable.
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans Buckets[i]..Buckets[i+1].
			ub := h.Buckets[i+1]
			if !math.IsInf(ub, 0) {
				return ub
			}
			lb := h.Buckets[i]
			if !math.IsInf(lb, 0) {
				return lb
			}
			return 0
		}
	}
	return 0
}
