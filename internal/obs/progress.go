package obs

import "sync/atomic"

// Progress is a monotonic work counter published by the long-running
// solve loops (one Mark per Monte Carlo sample, transient step or
// Galerkin basis solve) and read by liveness watchdogs: a counter whose
// value stops advancing means the job is stalled — hung factorization,
// deadlocked pool, livelocked escalation — as opposed to merely slow,
// which still advances between reads.
//
// The zero value is ready to use. All methods are safe for concurrent
// use and, like *Tracer, safe on a nil receiver so disabled paths cost
// a single nil check.
type Progress struct {
	v atomic.Uint64
}

// Mark records one completed unit of work.
func (p *Progress) Mark() {
	if p == nil {
		return
	}
	p.v.Add(1)
}

// Add records n completed units of work.
func (p *Progress) Add(n uint64) {
	if p == nil {
		return
	}
	p.v.Add(n)
}

// Value returns the units completed so far (0 on a nil receiver).
func (p *Progress) Value() uint64 {
	if p == nil {
		return 0
	}
	return p.v.Load()
}
