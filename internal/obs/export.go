package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// SpanDump is the JSON form of one span. AllocApprox marks a span
// whose allocation delta includes concurrent goroutines' work (see
// Span.MarkAllocsApprox).
type SpanDump struct {
	Name        string            `json:"name"`
	StartMS     float64           `json:"start_ms"`
	DurMS       float64           `json:"dur_ms"`
	AllocBytes  uint64            `json:"alloc_bytes,omitempty"`
	AllocApprox bool              `json:"alloc_approx,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Spans       []SpanDump        `json:"spans,omitempty"`
}

// Dump is the JSON form of a whole trace: the root span's name and
// duration, the trace ID when the run is tagged (per-job service
// traces), the phase tree beneath it, and the metrics snapshot. It is
// what --trace-out writes and what cmd/benchtab consumes.
type Dump struct {
	Name       string          `json:"name"`
	TraceID    string          `json:"trace_id,omitempty"`
	TotalMS    float64         `json:"total_ms"`
	AllocBytes uint64          `json:"alloc_bytes,omitempty"`
	Spans      []SpanDump      `json:"spans"`
	Metrics    MetricsSnapshot `json:"metrics"`
}

// Dump snapshots the trace (open spans report their live elapsed
// time). Returns nil for a nil tracer.
func (t *Tracer) Dump() *Dump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	root := dumpSpan(t.root)
	id := t.traceID
	t.mu.Unlock()
	return &Dump{
		Name:       root.Name,
		TraceID:    string(id),
		TotalMS:    root.DurMS,
		AllocBytes: root.AllocBytes,
		Spans:      root.Spans,
		Metrics:    t.reg.Snapshot(),
	}
}

func dumpSpan(s *Span) SpanDump {
	d := SpanDump{
		Name:        s.Name,
		StartMS:     ms(s.startOff),
		DurMS:       ms(s.durationLocked()),
		AllocBytes:  s.allocs,
		AllocApprox: s.allocApprox,
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		d.Spans = append(d.Spans, dumpSpan(c))
	}
	return d
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteJSON writes the trace dump as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}

// WriteJSONFile writes the trace dump to the named file.
func (t *Tracer) WriteJSONFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeDump parses a trace dump written by WriteJSON.
func DecodeDump(r io.Reader) (*Dump, error) {
	var d Dump
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("obs: decoding trace dump: %w", err)
	}
	return &d, nil
}

// ReadDumpFile parses a trace dump from the named file.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeDump(f)
}

// MarshalJSON encodes the +Inf overflow bound as the string "+Inf"
// (JSON has no infinity literal).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			Le    string `json:"le"`
			Count int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(struct {
		Le    float64 `json:"le"`
		Count int64   `json:"count"`
	}{b.UpperBound, b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	switch v := raw.Le.(type) {
	case float64:
		b.UpperBound = v
	case string:
		b.UpperBound = math.Inf(1)
	default:
		return fmt.Errorf("obs: bucket bound %v is neither number nor string", raw.Le)
	}
	return nil
}

// WriteText renders the human-readable trace/metrics summary: the
// nested phase table (duration, share of total, allocations,
// attributes) followed by every registered metric.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	d := t.Dump()
	total := d.TotalMS
	fmt.Fprintf(w, "trace: %s  %s total", d.Name, fmtMS(total))
	if d.AllocBytes > 0 {
		fmt.Fprintf(w, ", %s allocated", fmtBytes(d.AllocBytes))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-34s %10s %6s %9s  %s\n", "phase", "ms", "%", "alloc", "attrs")
	for _, s := range d.Spans {
		writeSpanText(w, s, total, 0)
	}
	writeMetricsText(w, d.Metrics)
	return nil
}

func writeSpanText(w io.Writer, s SpanDump, total float64, depth int) {
	pct := 0.0
	if total > 0 {
		pct = 100 * s.DurMS / total
	}
	name := strings.Repeat("  ", depth) + s.Name
	fmt.Fprintf(w, "  %-34s %10.2f %5.1f%% %9s  %s\n",
		name, s.DurMS, pct, fmtAlloc(s.AllocBytes, s.AllocApprox), fmtAttrs(s.Attrs))
	for _, c := range s.Spans {
		writeSpanText(w, c, total, depth+1)
	}
}

// fmtAlloc renders an allocation delta, prefixing approximate readings
// (parallel-phase spans, where the process-wide counter folds in
// concurrent workers) with "~".
func fmtAlloc(b uint64, approx bool) string {
	s := fmtBytes(b)
	if approx && s != "" {
		s = "~" + s
	}
	return s
}

func writeMetricsText(w io.Writer, m MetricsSnapshot) {
	if len(m.Counters)+len(m.Gauges)+len(m.Histograms) == 0 {
		return
	}
	fmt.Fprintln(w, "metrics:")
	for _, name := range sortedKeys(m.Counters) {
		fmt.Fprintf(w, "  %-42s %d\n", name, m.Counters[name])
	}
	for _, name := range sortedKeys(m.Gauges) {
		fmt.Fprintf(w, "  %-42s %.6g\n", name, m.Gauges[name])
	}
	for _, name := range sortedKeys(m.Histograms) {
		h := m.Histograms[name]
		if h.Count == 0 {
			fmt.Fprintf(w, "  %-42s count=0\n", name)
			continue
		}
		fmt.Fprintf(w, "  %-42s count=%d mean=%.4g min=%.4g max=%.4g\n",
			name, h.Count, h.Mean(), h.Min, h.Max)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(attrs))
	for _, k := range sortedKeys(attrs) {
		parts = append(parts, k+"="+attrs[k])
	}
	return strings.Join(parts, " ")
}

func fmtMS(v float64) string {
	switch {
	case v >= 1000:
		return fmt.Sprintf("%.2fs", v/1000)
	default:
		return fmt.Sprintf("%.2fms", v)
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b == 0:
		return ""
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
