package obs

import (
	"testing"
	"time"
)

// BenchmarkNilTracer measures the disabled fast path: the exact calls
// an instrumented hot loop makes when no tracer is installed. It must
// stay in the single-nanosecond range (nil checks only) — this is the
// microscopic half of the ≤1% overhead guarantee; the end-to-end half
// is BenchmarkObsOverhead at the repo root.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("phase")
		tr.Registry().Counter("x").Inc()
		tr.Registry().Histogram("y", MSBuckets).Observe(1)
		sp.End()
	}
}

// BenchmarkNilInstruments measures pre-resolved nil instruments — the
// pattern hot loops use after hoisting the registry lookup.
func BenchmarkNilInstruments(b *testing.B) {
	var c *Counter
	var h *Histogram
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
		g.SetMax(1)
	}
}

// BenchmarkCounter measures the enabled counter hot path.
func BenchmarkCounter(b *testing.B) {
	c := NewRegistry().Counter("bench.events_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the enabled histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.ms", MSBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100))
	}
}

// BenchmarkSpan measures full span lifecycle with allocation tracking
// off (the MemStats read otherwise dominates).
func BenchmarkSpan(b *testing.B) {
	tr := New("bench")
	tr.CollectAllocs(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("phase")
		sp.End()
		// Reset the tree periodically so the benchmark does not grow an
		// unbounded child list.
		if i%4096 == 4095 {
			tr.root.children = tr.root.children[:0]
		}
	}
	_ = time.Now
}
