package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus-style text exposition of a metrics snapshot. The JSON
// snapshot stays the default /metrics body (the smoke scripts grep it);
// ?format=text serves this rendering for scrape pipelines and for the
// golden-file test that pins the format.
//
// Mapping: metric names are sanitized to [a-zA-Z0-9_:] (dots become
// underscores), counters and gauges render as single samples, and
// histograms render the standard _bucket{le="..."}/_sum/_count triple
// with *cumulative* bucket counts (the snapshot stores per-bucket
// counts; the exposition format requires running totals).

// WriteProm renders the snapshot in the text exposition format, sorted
// by metric name so the output is deterministic.
func (m MetricsSnapshot) WriteProm(w io.Writer) error {
	for _, name := range sortedKeys(m.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(m.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(m.Histograms) {
		h := m.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = promFloat(b.UpperBound)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a registry name ("factor.chol_ms",
// "galerkin.solve_ms.w3") into a legal exposition-format metric name.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way the exposition format expects:
// shortest round-trip representation, no exponent padding.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
