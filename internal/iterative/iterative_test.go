package iterative

import (
	"math"
	"math/rand"
	"testing"

	"opera/internal/factor"
	"opera/internal/sparse"
)

func laplacian2D(rows, cols int, shift float64) *sparse.Matrix {
	n := rows * cols
	t := sparse.NewTriplet(n, n, 5*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			t.Add(v, v, 4+shift)
			if r+1 < rows {
				t.Add(v, id(r+1, c), -1)
				t.Add(id(r+1, c), v, -1)
			}
			if c+1 < cols {
				t.Add(v, id(r, c+1), -1)
				t.Add(id(r, c+1), v, -1)
			}
		}
	}
	return t.Compile()
}

func TestCGMatchesDirect(t *testing.T) {
	a := laplacian2D(15, 15, 0.05)
	n := a.Rows
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	direct, err := factor.Cholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	xd := direct.Solve(b)
	for _, tc := range []struct {
		name string
		m    Preconditioner
	}{
		{"none", nil},
		{"jacobi", mustJacobi(t, a)},
		{"ic0", mustIC0(t, a)},
	} {
		x := make([]float64, n)
		res, err := CG(a, x, b, CGOptions{Tol: 1e-12, M: tc.m})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		t.Logf("%s: %d iterations, residual %.3g", tc.name, res.Iterations, res.Residual)
		for i := range x {
			if math.Abs(x[i]-xd[i]) > 1e-7*(1+math.Abs(xd[i])) {
				t.Fatalf("%s: x[%d] = %g, direct %g", tc.name, i, x[i], xd[i])
			}
		}
	}
}

func mustJacobi(t *testing.T, a *sparse.Matrix) *Jacobi {
	t.Helper()
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func mustIC0(t *testing.T, a *sparse.Matrix) *IC0 {
	t.Helper()
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestIC0ExactOnTridiagonal(t *testing.T) {
	// A tridiagonal SPD matrix has a Cholesky factor with no fill, so
	// IC(0) must be exact.
	a := laplacian2D(1, 20, 0.1)
	ic := mustIC0(t, a)
	full, err := factor.Cholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	diff := sparse.Add(1, ic.L, -1, full.L)
	for _, v := range diff.Val {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("IC(0) deviates from exact Cholesky by %g on a no-fill matrix", v)
		}
	}
}

func TestIC0ReducesIterations(t *testing.T) {
	a := laplacian2D(30, 30, 0.01)
	n := a.Rows
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x0 := make([]float64, n)
	plain, err := CG(a, x0, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	x1 := make([]float64, n)
	pre, err := CG(a, x1, b, CGOptions{Tol: 1e-10, M: mustIC0(t, a)})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain %d iters, ic0 %d iters", plain.Iterations, pre.Iterations)
	if pre.Iterations >= plain.Iterations {
		t.Errorf("IC(0) (%d iters) should beat plain CG (%d iters)", pre.Iterations, plain.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian2D(4, 4, 0.1)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1 // nonzero start
	}
	res, err := CG(a, x, make([]float64, a.Rows), CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual != 0 {
		t.Errorf("residual %g", res.Residual)
	}
	for i := range x {
		if x[i] != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, x[i])
		}
	}
}

func TestCGNonConvergenceReported(t *testing.T) {
	a := laplacian2D(10, 10, 0)
	b := make([]float64, a.Rows)
	b[0] = 1
	x := make([]float64, a.Rows)
	_, err := CG(a, x, b, CGOptions{Tol: 1e-14, MaxIter: 2})
	if err == nil {
		t.Error("expected ErrNoConvergence with MaxIter=2")
	}
}

func TestCGWarmStart(t *testing.T) {
	a := laplacian2D(12, 12, 0.05)
	n := a.Rows
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cold := make([]float64, n)
	resCold, err := CG(a, cold, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the solution: should converge immediately.
	warm := append([]float64(nil), cold...)
	resWarm, err := CG(a, warm, b, CGOptions{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if resWarm.Iterations > 2 {
		t.Errorf("warm start took %d iterations (cold %d)", resWarm.Iterations, resCold.Iterations)
	}
}

func TestOperatorAndPrecondFuncAdapters(t *testing.T) {
	// Matrix-free CG through the function adapters: solve 2x = b.
	op := OperatorFunc(func(y, x []float64) {
		for i := range y {
			y[i] = 2 * x[i]
		}
	})
	pre := PrecondFunc(func(z, r []float64) {
		for i := range z {
			z[i] = r[i] / 2
		}
	})
	b := []float64{4, -6, 10}
	x := make([]float64, 3)
	res, err := CG(op, x, b, CGOptions{Tol: 1e-14, M: pre})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Errorf("perfectly preconditioned CG took %d iterations", res.Iterations)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]/2) > 1e-12 {
			t.Errorf("x[%d] = %g", i, x[i])
		}
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	a := sparse.FromDense([][]float64{{1, 0}, {0, -1}})
	x := make([]float64, 2)
	if _, err := CG(a, x, []float64{0, 1}, CGOptions{MaxIter: 10}); err == nil {
		t.Error("CG on an indefinite matrix should report breakdown")
	}
}

func TestJacobiRejectsNonpositiveDiagonal(t *testing.T) {
	a := sparse.FromDense([][]float64{{1, 0}, {0, 0}})
	if _, err := NewJacobi(a); err == nil {
		t.Error("zero diagonal accepted")
	}
}
