package iterative

import (
	"fmt"
	"math"
	"sort"

	"opera/internal/factor"
	"opera/internal/sparse"
)

// IC0 is a zero-fill incomplete Cholesky preconditioner: an approximate
// factor L with exactly the lower-triangular pattern of A, applied as
// z = L⁻ᵀ L⁻¹ r.
type IC0 struct {
	L *sparse.Matrix
}

// NewIC0 computes the IC(0) factor of the SPD matrix a. If a pivot
// becomes nonpositive (possible for general SPD matrices under zero
// fill), the factorization is retried with an increasing diagonal shift
// α·diag(A), which yields a valid—if weaker—preconditioner.
func NewIC0(a *sparse.Matrix) (*IC0, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("iterative: NewIC0 requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	shift := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, err := ic0Attempt(a, shift)
		if err == nil {
			return &IC0{L: l}, nil
		}
		if shift == 0 {
			shift = 1e-3
		} else {
			shift *= 10
		}
	}
	return nil, fmt.Errorf("iterative: IC(0) failed even with diagonal shift")
}

// ic0Attempt performs right-looking IC(0) on lower(A) + shift·diag(A).
func ic0Attempt(a *sparse.Matrix, shift float64) (*sparse.Matrix, error) {
	l := a.LowerTriangle() // sorted rows, diagonal first per column
	n := l.Cols
	if shift != 0 {
		for j := 0; j < n; j++ {
			l.Val[l.Colp[j]] *= 1 + shift
		}
	}
	for j := 0; j < n; j++ {
		dpos := l.Colp[j]
		if l.Rowi[dpos] != j {
			return nil, fmt.Errorf("iterative: missing diagonal at %d", j)
		}
		d := l.Val[dpos]
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("iterative: nonpositive IC(0) pivot %g at %d", d, j)
		}
		d = math.Sqrt(d)
		l.Val[dpos] = d
		for p := dpos + 1; p < l.Colp[j+1]; p++ {
			l.Val[p] /= d
		}
		// Right-looking update restricted to existing pattern:
		// for each i > j with L(i,j) ≠ 0, update column i entries (k,i)
		// present in the pattern with k ≥ i.
		for p := dpos + 1; p < l.Colp[j+1]; p++ {
			i := l.Rowi[p]
			lij := l.Val[p]
			lo, hi := l.Colp[i], l.Colp[i+1]
			for q := p; q < l.Colp[j+1]; q++ {
				k := l.Rowi[q]
				// Find (k, i) in column i by binary search.
				idx := lo + sort.SearchInts(l.Rowi[lo:hi], k)
				if idx < hi && l.Rowi[idx] == k {
					l.Val[idx] -= l.Val[q] * lij
				}
			}
		}
	}
	return l, nil
}

// Precondition applies z = L⁻ᵀ·L⁻¹·r.
func (ic *IC0) Precondition(z, r []float64) {
	copy(z, r)
	factor.LowerSolve(ic.L, z)
	factor.LowerTransposeSolve(ic.L, z)
}
