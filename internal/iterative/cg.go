// Package iterative provides preconditioned iterative solvers for the
// symmetric positive definite systems arising in power grid analysis:
// conjugate gradients with Jacobi or zero-fill incomplete Cholesky
// preconditioning. The paper (§5.2) identifies preconditioned iterative
// block solvers as one route to scaling OPERA; this package supplies
// that route and the solver ablation benchmarks use it.
package iterative

import (
	"errors"
	"fmt"
	"math"

	"opera/internal/sparse"
)

// ErrNoConvergence is returned when an iterative solve fails to reach
// the requested tolerance within the iteration budget.
var ErrNoConvergence = errors.New("iterative: no convergence")

// Operator is anything that can apply a square linear map — a
// sparse.Matrix, a factor.BlockMatrix, or a matrix-free closure.
type Operator interface {
	MulVec(y, x []float64)
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc func(y, x []float64)

// MulVec implements Operator.
func (f OperatorFunc) MulVec(y, x []float64) { f(y, x) }

// Preconditioner applies an approximation of A⁻¹: z ≈ A⁻¹·r.
type Preconditioner interface {
	Precondition(z, r []float64)
}

// PrecondFunc adapts a function to the Preconditioner interface.
type PrecondFunc func(z, r []float64)

// Precondition implements Preconditioner.
func (f PrecondFunc) Precondition(z, r []float64) { f(z, r) }

// Identity is the trivial (no-op) preconditioner.
type Identity struct{}

// Precondition copies r into z.
func (Identity) Precondition(z, r []float64) { copy(z, r) }

// Jacobi preconditions with the inverse diagonal of A.
type Jacobi struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from A's diagonal, which must
// be strictly positive.
func NewJacobi(a *sparse.Matrix) (*Jacobi, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, fmt.Errorf("iterative: nonpositive diagonal %g at %d", v, i)
		}
		inv[i] = 1 / v
	}
	return &Jacobi{invDiag: inv}, nil
}

// Precondition computes z = D⁻¹·r.
func (j *Jacobi) Precondition(z, r []float64) {
	for i := range r {
		z[i] = j.invDiag[i] * r[i]
	}
}

// CGOptions controls the conjugate gradient iteration.
type CGOptions struct {
	Tol     float64 // relative residual target; default 1e-10
	MaxIter int     // default 10·n
	M       Preconditioner
}

// CGResult reports convergence information.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ‖b−Ax‖₂/‖b‖₂
}

// CG solves A·x = b for an SPD operator with preconditioned conjugate
// gradients. x is used as the starting guess and overwritten with the
// solution.
func CG(a Operator, x, b []float64, opt CGOptions) (CGResult, error) {
	n := len(b)
	if len(x) != n {
		return CGResult{}, fmt.Errorf("iterative: CG shapes x %d, b %d", len(x), len(b))
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}
	if opt.M == nil {
		opt.M = Identity{}
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return CGResult{Iterations: 0, Residual: 0}, nil
	}
	opt.M.Precondition(z, r)
	copy(p, z)
	rz := dot(r, z)
	for it := 0; it < opt.MaxIter; it++ {
		rn := norm2(r)
		if rn/bnorm <= opt.Tol {
			return CGResult{Iterations: it, Residual: rn / bnorm}, nil
		}
		a.MulVec(ap, p)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return CGResult{Iterations: it, Residual: rn / bnorm},
				fmt.Errorf("iterative: CG breakdown (pᵀAp = %g); matrix not SPD?", pap)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		opt.M.Precondition(z, r)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	rn := norm2(r) / bnorm
	if rn <= opt.Tol {
		return CGResult{Iterations: opt.MaxIter, Residual: rn}, nil
	}
	return CGResult{Iterations: opt.MaxIter, Residual: rn},
		fmt.Errorf("%w after %d iterations (residual %.3g)", ErrNoConvergence, opt.MaxIter, rn)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 {
	return math.Sqrt(dot(a, a))
}
