package factor

import "sync"

// solveScratch pools the permutation/work vectors of the SolveTo
// convenience wrappers so the steady state of a transient loop — the
// same factor solved thousands of times — performs no per-solve
// allocations. Callers that want explicit control use the
// SolveToWithScratch variants instead. The pool stores *[]float64
// (pointer, not slice) so Put itself does not allocate an interface
// box.
var solveScratch sync.Pool

// getScratch returns a pooled vector of length n, allocating only when
// the pool is empty or holds a shorter vector.
func getScratch(n int) *[]float64 {
	if v, _ := solveScratch.Get().(*[]float64); v != nil {
		if cap(*v) >= n {
			*v = (*v)[:n]
			return v
		}
	}
	v := make([]float64, n)
	return &v
}

func putScratch(v *[]float64) { solveScratch.Put(v) }
