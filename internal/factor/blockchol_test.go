package factor

import (
	"math"
	"math/rand"
	"testing"

	"opera/internal/order"
	"opera/internal/sparse"
)

// randomBlockSPD builds a block matrix I⊗A + T⊗P where A is SPD
// dominant and T, P symmetric perturbations — the Galerkin shape.
func randomBlockSPD(rng *rand.Rand, n, b int) *BlockMatrix {
	a := laplacian2D(1, n, 1.5) // path-graph SPD (n nodes)
	// Random symmetric small perturbation with A's pattern.
	p := a.Clone()
	for i := range p.Val {
		p.Val[i] *= 0.2 * rng.Float64()
	}
	p = sparse.Add(0.5, p, 0.5, p.Transpose())
	// Coupling: identity and a random symmetric contraction.
	tId := sparse.Identity(b)
	td := make([][]float64, b)
	for i := range td {
		td[i] = make([]float64, b)
	}
	for i := 0; i < b; i++ {
		for j := 0; j <= i; j++ {
			v := 0.3 * rng.NormFloat64() / float64(b)
			td[i][j] = v
			td[j][i] = v
		}
	}
	tc := sparse.FromDense(td)
	bm := NewBlockMatrix(unionPattern(a, p), b)
	bm.AddTerm(tId, a)
	bm.AddTerm(tc, p)
	return bm
}

func unionPattern(a, b *sparse.Matrix) *sparse.Matrix {
	return sparse.Add(1, a, 1, b)
}

// mesh SPD helper shared with other factor tests (grid graph).
func blockTestMesh(rows, cols int, shift float64) *sparse.Matrix {
	return laplacian2D(rows, cols, shift)
}

func TestBlockMatrixMulVecMatchesCSC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bm := randomBlockSPD(rng, 12, 3)
	csc := bm.ToCSC()
	n := bm.N * bm.B
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	bm.MulVec(y1, x)
	csc.MulVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulVec mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestBlockCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		b := 1 + rng.Intn(5)
		bm := randomBlockSPD(rng, n, b)
		csc := bm.ToCSC()
		if !csc.IsSymmetric(1e-10) {
			t.Fatal("test matrix not symmetric")
		}
		f, err := BlockCholesky(bm, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rhs := make([]float64, n*b)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := make([]float64, n*b)
		f.Solve(x, rhs)
		r := make([]float64, n*b)
		csc.MulVec(r, x)
		for i := range r {
			if math.Abs(r[i]-rhs[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %g at %d", trial, r[i]-rhs[i], i)
			}
		}
	}
}

func TestBlockCholeskyWithPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 2D mesh pattern with blocks.
	a := blockTestMesh(6, 7, 0.8)
	bm := NewBlockMatrix(a, 4)
	bm.AddTerm(sparse.Identity(4), a)
	pert := a.Clone()
	for i := range pert.Val {
		pert.Val[i] *= 0.1
	}
	coup := sparse.FromDense([][]float64{
		{0, 1, 0, 0}, {1, 0, 1, 0}, {0, 1, 0, 1}, {0, 0, 1, 0},
	})
	bm.AddTerm(coup, pert)
	perm := order.NestedDissection(order.NewGraph(a), 4)
	f, err := BlockCholesky(bm, perm)
	if err != nil {
		t.Fatal(err)
	}
	fNat, err := BlockCholesky(bm, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := bm.N * bm.B
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	f.Solve(x1, rhs)
	fNat.Solve(x2, rhs)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-8*(1+math.Abs(x2[i])) {
			t.Fatalf("permuted solve differs at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
	if f.NNZ() >= fNat.NNZ() {
		t.Logf("note: ND fill %d vs natural %d", f.NNZ(), fNat.NNZ())
	}
}

func TestBlockCholeskyBlockSizeOne(t *testing.T) {
	// B = 1 must agree with the scalar Cholesky exactly.
	a := blockTestMesh(5, 5, 0.3)
	bm := NewBlockMatrix(a, 1)
	bm.AddTerm(sparse.Identity(1), a)
	f, err := BlockCholesky(bm, nil)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Cholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	x1 := make([]float64, a.Rows)
	f.Solve(x1, rhs)
	x2 := sf.Solve(rhs)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-10 {
			t.Fatalf("B=1 mismatch at %d", i)
		}
	}
}

func TestBlockCholeskyNotPD(t *testing.T) {
	a := sparse.FromDense([][]float64{{1, 0}, {0, 1}})
	bm := NewBlockMatrix(a, 2)
	// Indefinite coupling makes an indefinite block diagonal.
	coup := sparse.FromDense([][]float64{{1, 2}, {2, 1}})
	bm.AddTerm(coup, a)
	if _, err := BlockCholesky(bm, nil); err == nil {
		t.Error("indefinite block matrix accepted")
	}
}

func TestBlockSolveAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bm := randomBlockSPD(rng, 10, 3)
	f, err := BlockCholesky(bm, nil)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, bm.N*bm.B)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), rhs...)
	f.Solve(rhs, rhs)
	r := make([]float64, len(rhs))
	bm.MulVec(r, rhs)
	for i := range r {
		if math.Abs(r[i]-orig[i]) > 1e-8 {
			t.Fatalf("aliased solve residual %g", r[i]-orig[i])
		}
	}
}

func TestAddTermRejectsOutsidePattern(t *testing.T) {
	small := sparse.FromDense([][]float64{{1, 0}, {0, 1}})
	big := sparse.FromDense([][]float64{{1, 1}, {1, 1}})
	bm := NewBlockMatrix(small, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-pattern term")
		}
	}()
	bm.AddTerm(sparse.Identity(2), big)
}
