package factor

import (
	"errors"
	"fmt"
	"math"

	"opera/internal/obs"
	"opera/internal/sparse"
)

// ErrSingular is returned when LU encounters a structurally or
// numerically singular column.
var ErrSingular = errors.New("factor: matrix is singular")

// LUFactor is a sparse LU factorization with partial pivoting:
// P·A·Q = L·U, where Q is a caller-supplied fill-reducing column
// permutation and P is the row permutation chosen by threshold-free
// partial pivoting. L has unit diagonal (stored), U stores each column's
// diagonal as its last entry.
type LUFactor struct {
	N    int
	L, U *sparse.Matrix
	pinv []int // original row -> pivot position
	q    []int // column permutation (new = old[q[new]]); nil = natural
}

// reachDFS computes the set of L-columns reachable from the pattern of
// b's column col, i.e. the nonzero pattern of the solution of the sparse
// triangular solve. It returns the pattern in xi[top:n] in topological
// order. pstack is a parallel stack of edge positions; marks uses
// flipping of colp entries (CSparse convention) replaced here by an
// explicit visited slice tagged with the column id for reuse.
func reachDFS(l *sparse.Matrix, b *sparse.Matrix, col int, xi, pstack []int, pinv []int, visited []int, tag int) (top int) {
	n := l.Cols
	top = n
	for p := b.Colp[col]; p < b.Colp[col+1]; p++ {
		j := b.Rowi[p]
		if visited[j] == tag {
			continue
		}
		// Iterative DFS from j over the graph of L (via pinv).
		head := 0
		xi[0] = j
		for head >= 0 {
			jj := xi[head]
			jnew := -1
			if pinv != nil {
				jnew = pinv[jj]
			} else {
				jnew = jj
			}
			if visited[jj] != tag {
				visited[jj] = tag
				if jnew < 0 {
					pstack[head] = 0 // no column: leaf
				} else {
					pstack[head] = l.Colp[jnew]
				}
			}
			done := true
			if jnew >= 0 {
				for pp := pstack[head]; pp < l.Colp[jnew+1]; pp++ {
					i := l.Rowi[pp]
					if visited[i] == tag {
						continue
					}
					pstack[head] = pp + 1
					head++
					xi[head] = i
					done = false
					break
				}
			}
			if done {
				head--
				top--
				xi[top] = jj
			}
		}
	}
	return top
}

// spSolve solves L·x = B(:,col) where L is the partially-built factor
// with rows identified through pinv. On return, x holds the numeric
// values (scattered) and the pattern is xi[top:n].
func spSolve(l *sparse.Matrix, b *sparse.Matrix, col int, x []float64, xi, pstack []int, pinv []int, visited []int, tag int) (top int) {
	top = reachDFS(l, b, col, xi, pstack, pinv, visited, tag)
	for p := top; p < len(xi); p++ {
		x[xi[p]] = 0
	}
	for p := b.Colp[col]; p < b.Colp[col+1]; p++ {
		x[b.Rowi[p]] = b.Val[p]
	}
	for px := top; px < len(xi); px++ {
		j := xi[px]
		jnew := pinv[j]
		if jnew < 0 {
			continue // row j is not pivotal yet: no elimination
		}
		// L column jnew: unit diagonal stored first.
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := l.Colp[jnew] + 1; p < l.Colp[jnew+1]; p++ {
			x[l.Rowi[p]] -= l.Val[p] * xj
		}
	}
	return top
}

// LU factors a with an optional column permutation q (e.g. from nested
// dissection or minimum degree on A+Aᵀ). Partial pivoting selects the
// largest-magnitude eligible row in each column.
func LU(a *sparse.Matrix, q []int) (*LUFactor, error) {
	defer observe(func(m *factorMetrics) *obs.Histogram { return m.lu })()
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("factor: LU requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if q != nil && len(q) != n {
		return nil, fmt.Errorf("factor: column permutation length %d != %d", len(q), n)
	}
	guess := 4*a.NNZ() + n
	l := &sparse.Matrix{Rows: n, Cols: n, Colp: make([]int, n+1), Rowi: make([]int, 0, guess), Val: make([]float64, 0, guess)}
	u := &sparse.Matrix{Rows: n, Cols: n, Colp: make([]int, n+1), Rowi: make([]int, 0, guess), Val: make([]float64, 0, guess)}
	pinv := make([]int, n)
	for i := range pinv {
		pinv[i] = -1
	}
	x := make([]float64, n)
	xi := make([]int, n)
	pstack := make([]int, n)
	visited := make([]int, n)
	for i := range visited {
		visited[i] = -1
	}
	for k := 0; k < n; k++ {
		col := k
		if q != nil {
			col = q[k]
		}
		// The partially built L has columns 0..k-1; pattern positions of
		// columns must be final before the solve, so set Colp[k] now.
		l.Colp[k] = len(l.Val)
		u.Colp[k] = len(u.Val)
		top := spSolve(l, a, col, x, xi, pstack, pinv, visited, k)
		// Partial pivoting over not-yet-pivotal rows.
		ipiv := -1
		amax := -1.0
		for p := top; p < n; p++ {
			i := xi[p]
			if pinv[i] < 0 {
				if t := math.Abs(x[i]); t > amax {
					amax = t
					ipiv = i
				}
			} else {
				u.Rowi = append(u.Rowi, pinv[i])
				u.Val = append(u.Val, x[i])
			}
		}
		if ipiv == -1 || amax <= 0 {
			return nil, fmt.Errorf("%w (column %d)", ErrSingular, k)
		}
		pivot := x[ipiv]
		pinv[ipiv] = k
		u.Rowi = append(u.Rowi, k)
		u.Val = append(u.Val, pivot)
		l.Rowi = append(l.Rowi, ipiv)
		l.Val = append(l.Val, 1)
		for p := top; p < n; p++ {
			i := xi[p]
			if pinv[i] < 0 {
				l.Rowi = append(l.Rowi, i)
				l.Val = append(l.Val, x[i]/pivot)
			}
			x[i] = 0
		}
	}
	l.Colp[n] = len(l.Val)
	u.Colp[n] = len(u.Val)
	// Remap L's row indices from original to pivot order.
	for p := range l.Rowi {
		l.Rowi[p] = pinv[l.Rowi[p]]
	}
	var qc []int
	if q != nil {
		qc = append([]int(nil), q...)
	}
	f := &LUFactor{N: n, L: l, U: u, pinv: pinv, q: qc}
	fill := 0.0
	if annz := a.NNZ(); annz > 0 {
		fill = float64(f.NNZ()) / float64(annz)
	}
	recordWork(f.FlopEstimate(), fill)
	return f, nil
}

// NNZ reports the nonzero count of the factorization, nnz(L)+nnz(U)
// minus the unit diagonal of L stored explicitly.
func (f *LUFactor) NNZ() int { return f.L.Colp[f.N] + f.U.Colp[f.N] - f.N }

// FlopEstimate returns a post-hoc estimate of the factorization work,
// 2·Σ_k |L(:,k)|·|U(:,k)| — the multiply-add count of the column-wise
// sparse triangular solves. Deterministic given the pivot sequence.
func (f *LUFactor) FlopEstimate() int64 {
	var fl int64
	for k := 0; k < f.N; k++ {
		lk := int64(f.L.Colp[k+1] - f.L.Colp[k])
		uk := int64(f.U.Colp[k+1] - f.U.Colp[k])
		fl += 2 * lk * uk
	}
	return fl
}

// PivotGrowth returns the element-growth factor max|U| / max|A| of the
// factorization of a. Partial pivoting bounds it by 2ⁿ⁻¹ in theory but
// keeps it small in practice; a huge value (≳1e8) signals that the
// factorization has lost backward stability and its solutions cannot be
// trusted even though no pivot was exactly zero.
func (f *LUFactor) PivotGrowth(a *sparse.Matrix) float64 {
	amax := 0.0
	for _, v := range a.Val {
		if x := math.Abs(v); x > amax {
			amax = x
		}
	}
	if amax == 0 {
		return 0
	}
	umax := 0.0
	for _, v := range f.U.Val {
		if x := math.Abs(v); x > umax {
			umax = x
		}
	}
	return umax / amax
}

// Solve solves A·x = b and returns a new slice.
func (f *LUFactor) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into x (x may alias b). Scratch comes from a
// package pool, so the steady state allocates nothing; it is safe to
// call concurrently on a shared factor.
func (f *LUFactor) SolveTo(x, b []float64) {
	y := getScratch(f.N)
	f.SolveToWithScratch(x, b, *y)
	putScratch(y)
}

// SolveToWithScratch solves A·x = b into x using the caller-provided
// work vector y of length n; no allocations. x may alias b (b is fully
// consumed into y before x is written); y must not alias x or b.
func (f *LUFactor) SolveToWithScratch(x, b, y []float64) {
	n := f.N
	if len(b) != n || len(x) != n || len(y) != n {
		panic(fmt.Sprintf("factor: LU Solve length %d/%d/%d != %d", len(x), len(b), len(y), n))
	}
	// y[pinv[i]] = b[i]
	for i := 0; i < n; i++ {
		y[f.pinv[i]] = b[i]
	}
	unitLowerSolve(f.L, y)
	upperSolveDiagLast(f.U, y)
	if f.q != nil {
		for k := 0; k < n; k++ {
			x[f.q[k]] = y[k]
		}
	} else {
		copy(x, y)
	}
}

// unitLowerSolve solves L·x = b in place where L is unit lower
// triangular with the (unit) diagonal stored first in each column.
func unitLowerSolve(l *sparse.Matrix, x []float64) {
	for j := 0; j < l.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := l.Colp[j] + 1; p < l.Colp[j+1]; p++ {
			x[l.Rowi[p]] -= l.Val[p] * xj
		}
	}
}

// upperSolveDiagLast solves U·x = b in place where each column of U
// stores its diagonal entry last.
func upperSolveDiagLast(u *sparse.Matrix, x []float64) {
	for j := u.Cols - 1; j >= 0; j-- {
		d := u.Val[u.Colp[j+1]-1]
		x[j] /= d
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := u.Colp[j]; p < u.Colp[j+1]-1; p++ {
			x[u.Rowi[p]] -= u.Val[p] * xj
		}
	}
}
