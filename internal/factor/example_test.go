package factor_test

import (
	"fmt"

	"opera/internal/factor"
	"opera/internal/sparse"
)

// ExampleCholesky solves a small SPD system.
func ExampleCholesky() {
	a := sparse.FromDense([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	})
	f, err := factor.Cholesky(a, nil)
	if err != nil {
		panic(err)
	}
	x := f.Solve([]float64{3, 2, 3})
	fmt.Printf("x = [%.3f %.3f %.3f]\n", x[0], x[1], x[2])
	// Output:
	// x = [1.000 1.000 1.000]
}

// ExampleCholSymbolic_Factorize shows the Monte Carlo pattern: one
// symbolic analysis, many numeric refactorizations sharing storage.
func ExampleCholSymbolic_Factorize() {
	a := sparse.FromDense([][]float64{{4, -1}, {-1, 4}})
	sym := factor.CholAnalyze(a, nil)
	f1, _ := sym.Factorize(a, nil)
	// A scaled sample (same pattern) recycles f1's storage.
	a2 := a.Clone().Scale(2)
	f2, _ := sym.Factorize(a2, f1)
	x := f2.Solve([]float64{6, 6})
	fmt.Printf("x = [%.0f %.0f]\n", x[0], x[1])
	// Output:
	// x = [1 1]
}

// ExampleBlockCholesky factors a block-augmented system: a 2-node grid
// pattern whose entries are 2×2 chaos blocks.
func ExampleBlockCholesky() {
	pattern := sparse.FromDense([][]float64{{1, 1}, {1, 1}})
	bm := factor.NewBlockMatrix(pattern, 2)
	ga := sparse.FromDense([][]float64{{4, -1}, {-1, 4}})
	gg := sparse.FromDense([][]float64{{0.4, -0.1}, {-0.1, 0.4}})
	bm.AddTerm(sparse.Identity(2), ga)                            // mean term
	bm.AddTerm(sparse.FromDense([][]float64{{0, 1}, {1, 0}}), gg) // ξ coupling
	f, err := factor.BlockCholesky(bm, nil)
	if err != nil {
		panic(err)
	}
	rhs := []float64{1, 0, 1, 0} // node-major: (node0: c0,c1), (node1: c0,c1)
	x := make([]float64, 4)
	f.Solve(x, rhs)
	r := make([]float64, 4)
	bm.MulVec(r, x)
	fmt.Printf("residual[0] = %.1e\n", r[0]-rhs[0])
	// Output:
	// residual[0] = 0.0e+00
}
