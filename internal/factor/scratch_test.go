package factor

import (
	"fmt"
	"math/rand"
	"testing"

	"opera/internal/order"
	"opera/internal/sparse"
)

// TestSolveToWithScratchMatchesSolveTo pins the scratch variants to the
// allocating wrappers bit for bit, with and without a fill-reducing
// permutation.
func TestSolveToWithScratchMatchesSolveTo(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := laplacian2D(9, 11, 0.3)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, perm := range [][]int{nil, order.MinimumDegree(order.NewGraph(a))} {
		name := "natural"
		if perm != nil {
			name = "md"
		}
		t.Run("chol/"+name, func(t *testing.T) {
			f, err := Cholesky(a, perm)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, n)
			f.SolveTo(want, b)
			got := make([]float64, n)
			y := make([]float64, n)
			f.SolveToWithScratch(got, b, y)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("x[%d] = %.17g != %.17g", i, got[i], want[i])
				}
			}
			// Aliasing x = b must still work.
			alias := append([]float64(nil), b...)
			f.SolveToWithScratch(alias, alias, y)
			for i := range want {
				if alias[i] != want[i] {
					t.Fatalf("aliased x[%d] = %.17g != %.17g", i, alias[i], want[i])
				}
			}
		})
	}
	t.Run("lu", func(t *testing.T) {
		f, err := LU(a, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		f.SolveTo(want, b)
		got := make([]float64, n)
		y := make([]float64, n)
		f.SolveToWithScratch(got, b, y)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("x[%d] = %.17g != %.17g", i, got[i], want[i])
			}
		}
		alias := append([]float64(nil), b...)
		f.SolveToWithScratch(alias, alias, y)
		for i := range want {
			if alias[i] != want[i] {
				t.Fatalf("aliased x[%d] = %.17g != %.17g", i, alias[i], want[i])
			}
		}
	})
}

// TestSolveToSteadyStateAllocs pins the zero-alloc steady state of the
// pooled SolveTo wrappers (the satellite fix for the per-solve
// allocations at the old cholesky.go:182).
func TestSolveToSteadyStateAllocs(t *testing.T) {
	a := laplacian2D(12, 12, 0.5)
	n := a.Rows
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	chol, err := Cholesky(a, order.MinimumDegree(order.NewGraph(a)))
	if err != nil {
		t.Fatal(err)
	}
	lu, err := LU(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	chol.SolveTo(x, b) // warm the pool
	if allocs := testing.AllocsPerRun(50, func() { chol.SolveTo(x, b) }); allocs > 0 {
		t.Errorf("CholFactor.SolveTo allocates %.1f objects per op, want 0", allocs)
	}
	lu.SolveTo(x, b)
	if allocs := testing.AllocsPerRun(50, func() { lu.SolveTo(x, b) }); allocs > 0 {
		t.Errorf("LUFactor.SolveTo allocates %.1f objects per op, want 0", allocs)
	}
}

func BenchmarkCholSolveTo(b *testing.B) {
	a := laplacian2D(40, 40, 0.5)
	n := a.Rows
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%11) - 5
	}
	f, err := Cholesky(a, order.MinimumDegree(order.NewGraph(a)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.SolveTo(x, rhs)
		}
	})
	b.Run("scratch", func(b *testing.B) {
		y := make([]float64, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.SolveToWithScratch(x, rhs, y)
		}
	})
}

// TestBlockMulVecSymMatchesMulVec checks the parallel symmetric block
// apply against the scatter reference and its worker-count invariance.
func TestBlockMulVecSymMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pattern := laplacian2D(10, 13, 0.4)
	n := pattern.Rows
	for _, B := range []int{1, 3, 6} {
		// Assemble a symmetric block matrix: symmetric coupling ⊗
		// symmetric node matrix, like the Galerkin operators.
		coupling := sparse.NewTriplet(B, B, B*B)
		for r := 0; r < B; r++ {
			coupling.Add(r, r, 1+rng.Float64())
			for c := r + 1; c < B; c++ {
				v := rng.NormFloat64()
				coupling.Add(r, c, v)
				coupling.Add(c, r, v)
			}
		}
		bm := NewBlockMatrix(pattern, B)
		bm.AddTerm(coupling.Compile(), pattern)

		x := make([]float64, n*B)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := make([]float64, n*B)
		bm.MulVec(ref, x)
		serial := make([]float64, n*B)
		bm.MulVecSym(serial, x, 1)
		for i := range ref {
			if d := ref[i] - serial[i]; d > 1e-10 || d < -1e-10 {
				t.Fatalf("B=%d: gather differs from scatter at %d by %g", B, i, d)
			}
		}
		for _, w := range []int{2, 4} {
			t.Run(fmt.Sprintf("B=%d/workers=%d", B, w), func(t *testing.T) {
				y := make([]float64, n*B)
				bm.MulVecSym(y, x, w)
				for i := range y {
					if y[i] != serial[i] {
						t.Fatalf("workers=%d: y[%d] = %.17g != serial %.17g", w, i, y[i], serial[i])
					}
				}
			})
		}
	}
}
