package factor

import (
	"errors"
	"fmt"
	"math"

	"opera/internal/obs"
	"opera/internal/sparse"
)

// ErrNotPositiveDefinite is returned when a pivot of the Cholesky
// factorization is not strictly positive.
var ErrNotPositiveDefinite = errors.New("factor: matrix is not positive definite")

// CholSymbolic carries the reusable symbolic analysis of a Cholesky
// factorization: the fill-reducing permutation, the elimination tree of
// the permuted matrix, and the column pointers of L. One symbolic
// analysis serves any number of numeric factorizations that share the
// sparsity pattern — the key to a fast Monte Carlo loop.
type CholSymbolic struct {
	N      int
	Perm   []int // fill-reducing permutation (new = old[Perm[new]]); nil = natural
	parent []int
	colp   []int // column pointers of L (length N+1)
	upper  *sparse.Matrix
}

// CholAnalyze performs symbolic analysis of the symmetric matrix a
// under permutation perm (pass nil for natural order). Only the pattern
// of a is consulted.
func CholAnalyze(a *sparse.Matrix, perm []int) *CholSymbolic {
	if a.Rows != a.Cols {
		panic("factor: CholAnalyze requires a square matrix")
	}
	n := a.Rows
	c := a
	if perm != nil {
		if len(perm) != n {
			panic(fmt.Sprintf("factor: permutation length %d != %d", len(perm), n))
		}
		c = a.SymPerm(perm)
	}
	u := c.UpperTriangle()
	parent := etree(u)
	// Column counts via one ereach sweep: entry L(k,i) contributes to
	// column i; the diagonal contributes to column k.
	count := make([]int, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		count[k]++ // diagonal
		for top := ereach(u, k, parent, s, w); top < n; top++ {
			count[s[top]]++
		}
	}
	colp := make([]int, n+1)
	for j := 0; j < n; j++ {
		colp[j+1] = colp[j] + count[j]
	}
	var p []int
	if perm != nil {
		p = append([]int(nil), perm...)
	}
	return &CholSymbolic{N: n, Perm: p, parent: parent, colp: colp, upper: u}
}

// LNNZ reports the number of nonzeros in the factor L.
func (s *CholSymbolic) LNNZ() int { return s.colp[s.N] }

// FlopEstimate returns the classic symbolic flop count of one numeric
// factorization, Σ_j |L(:,j)|² — the column-count squares dominate the
// up-looking solve's multiply-adds. It is a deterministic function of
// the pattern and permutation, which makes it a machine-independent
// cost metric for bench trajectories.
func (s *CholSymbolic) FlopEstimate() int64 {
	var fl int64
	for j := 0; j < s.N; j++ {
		c := int64(s.colp[j+1] - s.colp[j])
		fl += c * c
	}
	return fl
}

// FillRatio reports nnz(L)/nnz(upper(A)) — 1.0 means no fill-in. The
// denominator is the upper triangle (diagonal included) of the analyzed
// pattern.
func (s *CholSymbolic) FillRatio() float64 {
	annz := s.upper.Colp[s.upper.Cols]
	if annz == 0 {
		return 0
	}
	return float64(s.LNNZ()) / float64(annz)
}

// CholFactor is a numeric Cholesky factorization P·A·Pᵀ = L·Lᵀ.
type CholFactor struct {
	Sym *CholSymbolic
	L   *sparse.Matrix // lower triangular, diagonal first in each column
}

// Factorize numerically factors a, which must have the same sparsity
// pattern (up to entries missing numerically) as the matrix analyzed.
// When reusing a symbolic object across matrices with identical
// structure, pass reuse = the previous factor to recycle its storage;
// otherwise pass nil.
func (sym *CholSymbolic) Factorize(a *sparse.Matrix, reuse *CholFactor) (*CholFactor, error) {
	pick := func(m *factorMetrics) *obs.Histogram { return m.chol }
	if reuse != nil {
		pick = func(m *factorMetrics) *obs.Histogram { return m.refactor }
	}
	defer observe(pick)()
	n := sym.N
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("factor: Factorize matrix is %dx%d, analyzed %d", a.Rows, a.Cols, n)
	}
	c := a
	if sym.Perm != nil {
		c = a.SymPerm(sym.Perm)
	}
	u := c.UpperTriangle()
	var l *sparse.Matrix
	if reuse != nil && reuse.Sym == sym {
		l = reuse.L
		for i := range l.Val {
			l.Val[i] = 0
		}
	} else {
		l = &sparse.Matrix{
			Rows: n, Cols: n,
			Colp: append([]int(nil), sym.colp...),
			Rowi: make([]int, sym.LNNZ()),
			Val:  make([]float64, sym.LNNZ()),
		}
	}
	next := make([]int, n) // next free slot per column of L
	copy(next, sym.colp[:n])
	x := make([]float64, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		// Scatter the upper part of column k of the permuted matrix.
		top := ereach(u, k, sym.parent, s, w)
		x[k] = 0
		for p := u.Colp[k]; p < u.Colp[k+1]; p++ {
			if i := u.Rowi[p]; i <= k {
				x[i] = u.Val[p]
			}
		}
		d := x[k]
		x[k] = 0
		// Up-looking triangular solve along the row pattern.
		for ; top < n; top++ {
			i := s[top]
			lki := x[i] / l.Val[l.Colp[i]] // divide by L(i,i)
			x[i] = 0
			for p := l.Colp[i] + 1; p < next[i]; p++ {
				x[l.Rowi[p]] -= l.Val[p] * lki
			}
			d -= lki * lki
			p := next[i]
			next[i]++
			l.Rowi[p] = k
			l.Val[p] = lki
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d: %g)", ErrNotPositiveDefinite, k, d)
		}
		p := next[k]
		next[k]++
		l.Rowi[p] = k
		l.Val[p] = math.Sqrt(d)
	}
	recordWork(sym.FlopEstimate(), sym.FillRatio())
	return &CholFactor{Sym: sym, L: l}, nil
}

// Cholesky is a convenience wrapper: analyze and factor in one call.
// Malformed shapes return errors here (they can originate in user
// input); CholAnalyze itself keeps its invariant panics for callers
// that have already validated.
func Cholesky(a *sparse.Matrix, perm []int) (*CholFactor, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("factor: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if perm != nil && len(perm) != a.Rows {
		return nil, fmt.Errorf("factor: permutation length %d != %d", len(perm), a.Rows)
	}
	sym := CholAnalyze(a, perm)
	return sym.Factorize(a, nil)
}

// Solve solves A·x = b, overwriting nothing; the solution is returned in
// a new slice.
func (f *CholFactor) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into x (which may alias b). Scratch comes
// from a package pool, so the steady state allocates nothing; it is
// safe to call concurrently on a shared factor.
func (f *CholFactor) SolveTo(x, b []float64) {
	y := getScratch(f.Sym.N)
	f.SolveToWithScratch(x, b, *y)
	putScratch(y)
}

// SolveToWithScratch solves A·x = b into x using the caller-provided
// work vector y of length n. It performs no allocations, which makes it
// the right call in per-worker hot loops that own their scratch. x may
// alias b (b is fully consumed into y before x is written); y must not
// alias x or b.
func (f *CholFactor) SolveToWithScratch(x, b, y []float64) {
	n := f.Sym.N
	if len(b) != n || len(x) != n || len(y) != n {
		panic(fmt.Sprintf("factor: Solve length %d/%d/%d != %d", len(x), len(b), len(y), n))
	}
	if f.Sym.Perm != nil {
		sparse.PermVecTo(y, f.Sym.Perm, b)
	} else {
		copy(y, b)
	}
	LowerSolve(f.L, y)
	LowerTransposeSolve(f.L, y)
	if f.Sym.Perm != nil {
		sparse.InvPermVecTo(x, f.Sym.Perm, y)
	} else {
		copy(x, y)
	}
}

// LowerSolve solves L·x = b in place, where L is lower triangular in CSC
// form with the diagonal entry stored first in each column.
func LowerSolve(l *sparse.Matrix, x []float64) {
	for j := 0; j < l.Cols; j++ {
		x[j] /= l.Val[l.Colp[j]]
		xj := x[j]
		for p := l.Colp[j] + 1; p < l.Colp[j+1]; p++ {
			x[l.Rowi[p]] -= l.Val[p] * xj
		}
	}
}

// LowerTransposeSolve solves Lᵀ·x = b in place for the same L layout.
func LowerTransposeSolve(l *sparse.Matrix, x []float64) {
	for j := l.Cols - 1; j >= 0; j-- {
		s := x[j]
		for p := l.Colp[j] + 1; p < l.Colp[j+1]; p++ {
			s -= l.Val[p] * x[l.Rowi[p]]
		}
		x[j] = s / l.Val[l.Colp[j]]
	}
}
