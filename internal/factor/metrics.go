package factor

import (
	"sync/atomic"
	"time"

	"opera/internal/obs"
)

// factorMetrics times the factorization entry points. Factorizations
// run once (or once per transient-matrix refresh), so one atomic
// pointer load per call is negligible against the numeric work.
type factorMetrics struct {
	chol      *obs.Histogram
	superChol *obs.Histogram
	refactor  *obs.Histogram
	blockChol *obs.Histogram
	lu        *obs.Histogram
	count     *obs.Counter
	flops     *obs.Counter
	fill      *obs.Gauge
}

var metrics atomic.Pointer[factorMetrics]

// SetMetrics installs factorization-duration histograms
// (factor.chol_ms, factor.supernodal_ms, factor.refactor_ms,
// factor.block_chol_ms, factor.lu_ms), a total counter (factor.factorizations_total), a
// cumulative work counter (factor.flops_total, symbolic estimates) and
// a fill-ratio gauge (factor.fill_ratio, nnz(L)/nnz(upper(A)) of the
// most recent factorization) on the registry; nil uninstalls them.
func SetMetrics(reg *obs.Registry) {
	if reg == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&factorMetrics{
		chol:      reg.Histogram("factor.chol_ms", obs.MSBuckets),
		superChol: reg.Histogram("factor.supernodal_ms", obs.MSBuckets),
		refactor:  reg.Histogram("factor.refactor_ms", obs.MSBuckets),
		blockChol: reg.Histogram("factor.block_chol_ms", obs.MSBuckets),
		lu:        reg.Histogram("factor.lu_ms", obs.MSBuckets),
		count:     reg.Counter("factor.factorizations_total"),
		flops:     reg.Counter("factor.flops_total"),
		fill:      reg.Gauge("factor.fill_ratio"),
	})
}

// recordWork accumulates a factorization's estimated flop count and
// publishes its fill ratio. Called on the success path of each numeric
// factorization; nil-safe when no registry is installed.
func recordWork(flops int64, fill float64) {
	m := metrics.Load()
	if m == nil {
		return
	}
	m.flops.Add(flops)
	if fill > 0 {
		m.fill.Set(fill)
	}
}

// observe times one factorization via the selector (nil-safe end to
// end) and bumps the total count.
func observe(pick func(*factorMetrics) *obs.Histogram) func() {
	m := metrics.Load()
	if m == nil {
		return func() {}
	}
	h := pick(m)
	start := time.Now()
	return func() {
		h.ObserveSince(start)
		m.count.Inc()
	}
}
