package factor

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"opera/internal/obs"
	"opera/internal/sparse"
)

// SuperFactor is a numeric supernodal Cholesky factorization
// P·A·Pᵀ = L·Lᵀ with L stored column-major in dense per-supernode
// panels. It solves through the same zero-allocation entry points as
// CholFactor.
type SuperFactor struct {
	Sym *SuperSymbolic
	val []float64 // concatenated panels; supernode s at Sym.poff[s], ld = its row count
}

// superScratch is one worker's private update workspace.
type superScratch struct {
	w      []float64 // dense update block W, column-major
	relind []int     // row positions of the update inside the target panel
}

// Factorize numerically factors a, which must share the analyzed
// pattern (entries may be missing numerically). reuse, when non-nil
// and produced from the same analysis, recycles the panel storage.
// workers caps the supernode task pool (≤1 = serial); the resulting
// factor is bit-identical for every worker count because each
// supernode applies its pending updates in a fixed ascending order no
// matter which worker runs it.
func (sym *SuperSymbolic) Factorize(a *sparse.Matrix, reuse *SuperFactor, workers int) (*SuperFactor, error) {
	pick := func(m *factorMetrics) *obs.Histogram { return m.superChol }
	if reuse != nil {
		pick = func(m *factorMetrics) *obs.Histogram { return m.refactor }
	}
	defer observe(pick)()
	n := sym.N
	if a.Rows != n || a.Cols != n {
		return nil, fmt.Errorf("factor: Factorize matrix is %dx%d, analyzed %d", a.Rows, a.Cols, n)
	}
	c := a
	if sym.Perm != nil {
		c = a.SymPerm(sym.Perm)
	}
	// The panel scatter wants lower-triangle columns; transposing the
	// upper triangle yields them with ascending, diagonal-first rows.
	lower := c.UpperTriangle().Transpose()
	f := reuse
	if f == nil || f.Sym != sym {
		f = &SuperFactor{Sym: sym, val: make([]float64, sym.PanelNNZ())}
	}
	ns := sym.Supernodes()
	if workers > ns {
		workers = ns
	}
	var err error
	if workers <= 1 {
		sc := &superScratch{
			w:      make([]float64, sym.maxRows*sym.maxWidth),
			relind: make([]int, sym.maxRows),
		}
		// Ascending supernode order is a topological order of the update
		// DAG: every updater of s is a descendant with smaller columns.
		for s := 0; s < ns; s++ {
			if e := f.factorSupernode(s, lower, sc); e != nil && (err == nil) {
				err = e
			}
		}
	} else {
		err = f.factorParallel(lower, workers)
	}
	if err != nil {
		return nil, err
	}
	recordWork(sym.FlopEstimate(), sym.FillRatio())
	return f, nil
}

// factorParallel schedules supernodes over the update DAG: a supernode
// becomes ready when all its updaters have completed. On failure every
// task still runs (cheaply computing garbage downstream of the failed
// panel) so that the supernode holding the smallest failing pivot
// always executes with fully valid inputs — the reported error is then
// the minimum failing column, identical at every worker count.
func (f *SuperFactor) factorParallel(lower *sparse.Matrix, workers int) error {
	sym := f.Sym
	ns := sym.Supernodes()
	deps := make([]int32, ns)
	ready := make(chan int, ns)
	for s := 0; s < ns; s++ {
		deps[s] = int32(sym.updp[s+1] - sym.updp[s])
		if deps[s] == 0 {
			ready <- s
		}
	}
	var pending atomic.Int64
	pending.Store(int64(ns))
	var mu sync.Mutex
	var firstErr error
	firstCol := sym.N
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := &superScratch{
				w:      make([]float64, sym.maxRows*sym.maxWidth),
				relind: make([]int, sym.maxRows),
			}
			for s := range ready {
				if e := f.factorSupernode(s, lower, sc); e != nil {
					mu.Lock()
					if pe, ok := e.(*pivotError); ok && pe.col < firstCol {
						firstCol = pe.col
						firstErr = e
					}
					mu.Unlock()
				}
				for _, t := range sym.tgt[sym.tgtp[s]:sym.tgtp[s+1]] {
					if atomic.AddInt32(&deps[t], -1) == 0 {
						ready <- t
					}
				}
				if pending.Add(-1) == 0 {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// pivotError carries the failing column so the parallel scheduler can
// select the deterministic (minimum-column) failure.
type pivotError struct {
	col int
	d   float64
}

func (e *pivotError) Error() string {
	return fmt.Sprintf("%v (pivot %d: %g)", ErrNotPositiveDefinite, e.col, e.d)
}

func (e *pivotError) Unwrap() error { return ErrNotPositiveDefinite }

// factorSupernode runs the complete left-looking computation of one
// supernode: scatter A's lower columns into the panel, apply every
// descendant update in ascending order, then factor the dense
// trapezoid in place.
func (f *SuperFactor) factorSupernode(s int, lower *sparse.Matrix, sc *superScratch) error {
	sym := f.Sym
	start, end := sym.sstart[s], sym.sstart[s+1]
	w := end - start
	rlist := sym.rows[sym.rowp[s]:sym.rowp[s+1]]
	nr := len(rlist)
	panel := f.val[sym.poff[s]:sym.poff[s+1]]
	for i := range panel {
		panel[i] = 0
	}
	// Scatter the lower triangle of the permuted A. Every stored row of
	// column j lies in the panel row list (the factor pattern contains
	// A's), so a single merge walk places each column.
	for j := start; j < end; j++ {
		col := panel[(j-start)*nr:]
		pos := j - start // rlist[j-start] == j
		for p := lower.Colp[j]; p < lower.Colp[j+1]; p++ {
			r := lower.Rowi[p]
			for rlist[pos] != r {
				pos++
			}
			col[pos] = lower.Val[p]
		}
	}
	for _, d := range sym.upd[sym.updp[s]:sym.updp[s+1]] {
		f.applyUpdate(d, s, rlist, panel, nr, sc)
	}
	// Dense left-looking Cholesky of the trapezoid: column j first
	// absorbs the rank-1 contributions of columns k<j over its full
	// height (contiguous axpys), then scales by the pivot square root.
	for j := 0; j < w; j++ {
		cj := panel[j*nr : (j+1)*nr]
		// Absorb prior columns two at a time: one pass over cj serves
		// two rank-1 updates, halving the store traffic of the
		// memory-bound inner loop.
		k := 0
		for ; k+1 < j; k += 2 {
			ck := panel[k*nr : (k+1)*nr]
			cl := panel[(k+1)*nr : (k+2)*nr]
			a0, a1 := ck[j], cl[j]
			if a0 == 0 && a1 == 0 {
				continue
			}
			for i := j; i < nr; i++ {
				cj[i] -= a0*ck[i] + a1*cl[i]
			}
		}
		if k < j {
			ck := panel[k*nr : (k+1)*nr]
			if coef := ck[j]; coef != 0 {
				for i := j; i < nr; i++ {
					cj[i] -= coef * ck[i]
				}
			}
		}
		d := cj[j]
		if d <= 0 || math.IsNaN(d) {
			return &pivotError{col: start + j, d: d}
		}
		root := math.Sqrt(d)
		cj[j] = root
		inv := 1 / root
		for i := j + 1; i < nr; i++ {
			cj[i] *= inv
		}
	}
	return nil
}

// applyUpdate subtracts the rank-w_d contribution of descendant
// supernode d from target s: W = L_d[rows ≥ start_s] · L_d[rows in
// s]ᵀ, accumulated densely and scattered through relative indices. The
// inner loops run over contiguous panel columns.
func (f *SuperFactor) applyUpdate(d, s int, rlist []int, panel []float64, nr int, sc *superScratch) {
	sym := f.Sym
	start, end := sym.sstart[s], sym.sstart[s+1]
	ds, de := sym.sstart[d], sym.sstart[d+1]
	wd := de - ds
	drows := sym.rows[sym.rowp[d]:sym.rowp[d+1]]
	ndr := len(drows)
	dpanel := f.val[sym.poff[d]:sym.poff[d+1]]
	// ci0: first row of d at or beyond s's columns; ci1: first beyond.
	ci0 := wd
	for drows[ci0] < start {
		ci0++
	}
	ci1 := ci0
	for ci1 < ndr && drows[ci1] < end {
		ci1++
	}
	ncl := ci1 - ci0 // update columns (map to columns of s)
	nru := ndr - ci0 // update rows
	// Every updated row of d appears in s's panel rows; one merge walk
	// computes all relative indices.
	relind := sc.relind[:nru]
	pos := 0
	for i := ci0; i < ndr; i++ {
		r := drows[i]
		for rlist[pos] != r {
			pos++
		}
		relind[i-ci0] = pos
	}
	if ncl == 1 {
		// Single-column update — the dominant shape when the ordering
		// yields narrow supernodes. Skip the staging buffer and
		// accumulate straight into the target column through the
		// relative indices, two updater columns per scattered pass.
		col := panel[relind[0]*nr:]
		p := 0
		for ; p+1 < wd; p += 2 {
			d0 := dpanel[p*ndr+ci0 : p*ndr+ndr]
			d1 := dpanel[(p+1)*ndr+ci0 : (p+1)*ndr+ndr]
			a0, a1 := d0[0], d1[0]
			if a0 == 0 && a1 == 0 {
				continue
			}
			for i := 0; i < nru; i++ {
				col[relind[i]] -= a0*d0[i] + a1*d1[i]
			}
		}
		if p < wd {
			dcol := dpanel[p*ndr+ci0 : p*ndr+ndr]
			if coef := dcol[0]; coef != 0 {
				for i := 0; i < nru; i++ {
					col[relind[i]] -= coef * dcol[i]
				}
			}
		}
		return
	}
	wbuf := sc.w[:nru*ncl]
	for c := 0; c < ncl; c++ {
		wc := wbuf[c*nru:]
		for i := c; i < nru; i++ {
			wc[i] = 0
		}
		p := 0
		for ; p+1 < wd; p += 2 {
			d0 := dpanel[p*ndr+ci0 : p*ndr+ndr]
			d1 := dpanel[(p+1)*ndr+ci0 : (p+1)*ndr+ndr]
			a0, a1 := d0[c], d1[c]
			if a0 == 0 && a1 == 0 {
				continue
			}
			for i := c; i < nru; i++ {
				wc[i] += a0*d0[i] + a1*d1[i]
			}
		}
		if p < wd {
			dcol := dpanel[p*ndr+ci0 : p*ndr+ndr]
			if coef := dcol[c]; coef != 0 {
				for i := c; i < nru; i++ {
					wc[i] += coef * dcol[i]
				}
			}
		}
	}
	for c := 0; c < ncl; c++ {
		col := panel[relind[c]*nr:]
		wc := wbuf[c*nru:]
		for i := c; i < nru; i++ {
			col[relind[i]] -= wc[i]
		}
	}
}

// Solve solves A·x = b, returning the solution in a new slice.
func (f *SuperFactor) Solve(b []float64) []float64 {
	x := make([]float64, len(b))
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into x (which may alias b). Scratch comes
// from the package pool; safe to call concurrently on a shared factor.
func (f *SuperFactor) SolveTo(x, b []float64) {
	y := getScratch(f.Sym.N)
	f.SolveToWithScratch(x, b, *y)
	putScratch(y)
}

// SolveToWithScratch solves A·x = b into x using the caller-provided
// work vector y of length n. It allocates nothing — the panels solve
// in place against y — matching CholFactor's hot-loop contract. x may
// alias b; y must not alias x or b.
func (f *SuperFactor) SolveToWithScratch(x, b, y []float64) {
	sym := f.Sym
	n := sym.N
	if len(b) != n || len(x) != n || len(y) != n {
		panic(fmt.Sprintf("factor: Solve length %d/%d/%d != %d", len(x), len(b), len(y), n))
	}
	if sym.Perm != nil {
		sparse.PermVecTo(y, sym.Perm, b)
	} else {
		copy(y, b)
	}
	ns := sym.Supernodes()
	// Forward: L·y = y. Supernodes ascend; within one, column j scales
	// by its pivot then pushes contiguous panel columns onto the block
	// and below rows.
	for s := 0; s < ns; s++ {
		start := sym.sstart[s]
		w := sym.sstart[s+1] - start
		rlist := sym.rows[sym.rowp[s]:sym.rowp[s+1]]
		nr := len(rlist)
		panel := f.val[sym.poff[s]:]
		for j := 0; j < w; j++ {
			cj := panel[j*nr:]
			yj := y[start+j] / cj[j]
			y[start+j] = yj
			for i := j + 1; i < w; i++ {
				y[start+i] -= cj[i] * yj
			}
			for i := w; i < nr; i++ {
				y[rlist[i]] -= cj[i] * yj
			}
		}
	}
	// Backward: Lᵀ·y = y. Supernodes descend; column j gathers its
	// below-row and block contributions in one contiguous panel read.
	for s := ns - 1; s >= 0; s-- {
		start := sym.sstart[s]
		w := sym.sstart[s+1] - start
		rlist := sym.rows[sym.rowp[s]:sym.rowp[s+1]]
		nr := len(rlist)
		panel := f.val[sym.poff[s]:]
		for j := w - 1; j >= 0; j-- {
			cj := panel[j*nr:]
			sum := y[start+j]
			for i := j + 1; i < nr; i++ {
				sum -= cj[i] * y[rlist[i]]
			}
			y[start+j] = sum / cj[j]
		}
	}
	if sym.Perm != nil {
		sparse.InvPermVecTo(x, sym.Perm, y)
	} else {
		copy(x, y)
	}
}

// L expands the panels into the scalar CSC lower factor under the
// exact symbolic pattern (padding zeros dropped). Intended for tests
// and diagnostics, not hot paths.
func (f *SuperFactor) L() *sparse.Matrix {
	sym := f.Sym
	n := sym.N
	colp := make([]int, n+1)
	for j := 0; j < n; j++ {
		colp[j+1] = colp[j] + sym.colcount[j]
	}
	l := &sparse.Matrix{
		Rows: n, Cols: n,
		Colp: colp,
		Rowi: make([]int, colp[n]),
		Val:  make([]float64, colp[n]),
	}
	next := append([]int(nil), colp[:n]...)
	// Reconstruct each column's exact pattern with the scalar symbolic
	// machinery, then read the values out of the panels.
	parent := etree(sym.upper)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	at := func(i, j int) float64 { // L(i,j), i ≥ j
		sn := sym.snode[j]
		start := sym.sstart[sn]
		rlist := sym.rows[sym.rowp[sn]:sym.rowp[sn+1]]
		nr := len(rlist)
		lo := j - start
		for rlist[lo] != i {
			lo++
		}
		return f.val[sym.poff[sn]+(j-start)*nr+lo]
	}
	for k := 0; k < n; k++ {
		for top := ereach(sym.upper, k, parent, s, w); top < n; top++ {
			j := s[top]
			l.Rowi[next[j]] = k
			l.Val[next[j]] = at(k, j)
			next[j]++
		}
		l.Rowi[next[k]] = k
		l.Val[next[k]] = at(k, k)
		next[k]++
	}
	return l
}
