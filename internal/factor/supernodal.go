package factor

import (
	"fmt"

	"opera/internal/sparse"
)

// DefaultRelax is the default amalgamation threshold: merging a column
// into its parent supernode may introduce at most this many explicit
// zeros per member column on average. 0 yields exactly the fundamental
// supernodes; a huge value merges whole elimination-tree chains.
const DefaultRelax = 8

// SuperSymbolic carries the supernodal symbolic analysis: the column
// partition into supernodes (maximal chains of columns with identical
// below-diagonal pattern, relaxed by an amalgamation threshold), the
// per-supernode panel row lists, and the update dependency lists that
// drive both the left-looking numeric kernel and its etree-subtree
// parallel schedule. Like CholSymbolic, one analysis serves any number
// of numeric factorizations sharing the pattern.
type SuperSymbolic struct {
	N    int
	Perm []int // fill-reducing permutation; nil = natural
	// Workers caps the factorization's supernode-task pool (0 or 1 =
	// serial). The factor values are bit-identical for every setting —
	// each supernode's arithmetic runs in a fixed order regardless of
	// which worker executes it — so this is purely a throughput knob.
	Workers int

	relax int
	upper *sparse.Matrix // permuted upper triangle (pattern)

	snode  []int // column -> supernode id
	sstart []int // supernode s spans columns [sstart[s], sstart[s+1])
	rows   []int // concatenated panel row lists (ascending per supernode)
	rowp   []int // rows of supernode s: rows[rowp[s]:rowp[s+1]]
	poff   []int // panel value offset of supernode s (column-major, ld = row count)
	upd    []int // concatenated updater ids, ascending per target
	updp   []int // updaters of s: upd[updp[s]:updp[s+1]]
	tgt    []int // concatenated ancestor targets, ascending per source
	tgtp   []int // targets of s: tgt[tgtp[s]:tgtp[s+1]]

	colcount []int // exact nnz per column of L (scalar pattern)
	lnnz     int   // Σ colcount — scalar-equivalent nnz
	maxRows  int   // widest panel row count (worker scratch sizing)
	maxWidth int   // widest supernode
}

// CholAnalyzeSupernodal performs the supernodal symbolic analysis of
// the symmetric matrix a under permutation perm (nil = natural). relax
// is the amalgamation threshold in average padded entries per column;
// negative selects DefaultRelax, 0 disables amalgamation (fundamental
// supernodes). Only the pattern of a is consulted.
func CholAnalyzeSupernodal(a *sparse.Matrix, perm []int, relax int) *SuperSymbolic {
	if a.Rows != a.Cols {
		panic("factor: CholAnalyzeSupernodal requires a square matrix")
	}
	if relax < 0 {
		relax = DefaultRelax
	}
	n := a.Rows
	if relax > n {
		relax = n // n per column already admits any chain; avoids overflow
	}
	c := a
	if perm != nil {
		if len(perm) != n {
			panic(fmt.Sprintf("factor: permutation length %d != %d", len(perm), n))
		}
		c = a.SymPerm(perm)
	}
	u := c.UpperTriangle()
	parent := etree(u)

	// Postorder the elimination tree. Fill-reducing orderings that
	// don't number etree children consecutively (minimum degree, AMD)
	// scatter the identical-pattern column chains, collapsing supernode
	// detection to near-scalar widths. Relabeling columns by a
	// postorder leaves the factor's fill and flops invariant but makes
	// every subtree — and hence every chain — contiguous. The composed
	// permutation becomes the analysis's effective Permutation().
	if post := postorder(parent); post != nil {
		np := make([]int, n)
		if perm == nil {
			copy(np, post)
		} else {
			for k, p := range post {
				np[k] = perm[p]
			}
		}
		perm = np
		c = a.SymPerm(perm)
		u = c.UpperTriangle()
		parent = etree(u)
	}

	// Pass 1: exact column counts of L via an ereach sweep (identical to
	// the scalar analysis, so both kernels report the same cost model).
	count := make([]int, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		count[k]++
		for top := ereach(u, k, parent, s, w); top < n; top++ {
			count[s[top]]++
		}
	}

	sym := &SuperSymbolic{N: n, relax: relax, upper: u, colcount: count}
	if perm != nil {
		sym.Perm = append([]int(nil), perm...)
	}
	for _, cc := range count {
		sym.lnnz += cc
	}

	// Supernode detection: greedy left-to-right chain growth. Column c
	// joins the current supernode [start..c-1] iff the etree chain
	// continues (parent[c-1] == c) and the total panel padding stays
	// within relax explicit zeros per member column. For a supernode
	// ending at column c with width W and count prefix sum sumCount, the
	// padded trapezoid holds W(W−1)/2 + W·count[c] entries, so the
	// padding is that minus sumCount. relax == 0 therefore admits
	// exactly the identical-pattern chains (fundamental supernodes).
	snode := make([]int, n)
	sstart := make([]int, 0, n+1)
	start, sumCount := 0, 0
	for col := 0; col < n; col++ {
		if col > start {
			width := col - start + 1
			padded := width*(width-1)/2 + width*count[col]
			if parent[col-1] != col || padded-(sumCount+count[col]) > relax*width {
				sstart = append(sstart, start)
				start, sumCount = col, 0
			}
		}
		sumCount += count[col]
		snode[col] = len(sstart)
	}
	if n > 0 {
		sstart = append(sstart, start)
	}
	sstart = append(sstart, n)
	ns := len(sstart) - 1
	sym.snode = snode
	sym.sstart = sstart

	// Pass 2: panel row lists. The rows of supernode s are its member
	// columns followed by the below-diagonal pattern of its last column;
	// the etree chain property guarantees every member column's pattern
	// fits inside that trapezoid. Row k of L has entry in column i
	// exactly when i appears in ereach(k), so one more sweep collects
	// the below rows of each last column in ascending k order.
	rowCount := make([]int, ns)
	for sn := 0; sn < ns; sn++ {
		rowCount[sn] = sstart[sn+1] - sstart[sn]
	}
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		for top := ereach(u, k, parent, s, w); top < n; top++ {
			i := s[top]
			if sn := snode[i]; i == sstart[sn+1]-1 {
				rowCount[sn]++
			}
		}
	}
	rowp := make([]int, ns+1)
	poff := make([]int, ns+1)
	for sn := 0; sn < ns; sn++ {
		rowp[sn+1] = rowp[sn] + rowCount[sn]
		width := sstart[sn+1] - sstart[sn]
		poff[sn+1] = poff[sn] + rowCount[sn]*width
		if rowCount[sn] > sym.maxRows {
			sym.maxRows = rowCount[sn]
		}
		if width > sym.maxWidth {
			sym.maxWidth = width
		}
	}
	rows := make([]int, rowp[ns])
	next := make([]int, ns)
	for sn := 0; sn < ns; sn++ {
		next[sn] = rowp[sn]
		for j := sstart[sn]; j < sstart[sn+1]; j++ {
			rows[next[sn]] = j
			next[sn]++
		}
	}
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		for top := ereach(u, k, parent, s, w); top < n; top++ {
			i := s[top]
			if sn := snode[i]; i == sstart[sn+1]-1 {
				rows[next[sn]] = k
				next[sn]++
			}
		}
	}
	sym.rows = rows
	sym.rowp = rowp
	sym.poff = poff

	// Dependency lists. The ancestor targets of supernode d are the
	// distinct supernodes owning d's below rows; because the row list is
	// ascending and supernodes partition columns in order, consecutive
	// deduplication suffices. Inverting the target lists in d-ascending
	// order yields each target's updater list already ascending — the
	// fixed update order that makes the parallel schedule bit-exact.
	tgtp := make([]int, ns+1)
	updCount := make([]int, ns)
	for sn := 0; sn < ns; sn++ {
		width := sstart[sn+1] - sstart[sn]
		prev := -1
		for _, r := range rows[rowp[sn]+width : rowp[sn+1]] {
			if t := snode[r]; t != prev {
				tgtp[sn+1]++
				updCount[t]++
				prev = t
			}
		}
	}
	for sn := 0; sn < ns; sn++ {
		tgtp[sn+1] += tgtp[sn]
	}
	tgt := make([]int, tgtp[ns])
	updp := make([]int, ns+1)
	for sn := 0; sn < ns; sn++ {
		updp[sn+1] = updp[sn] + updCount[sn]
	}
	upd := make([]int, updp[ns])
	fillT := append([]int(nil), tgtp[:ns]...)
	fillU := append([]int(nil), updp[:ns]...)
	for sn := 0; sn < ns; sn++ {
		width := sstart[sn+1] - sstart[sn]
		prev := -1
		for _, r := range rows[rowp[sn]+width : rowp[sn+1]] {
			if t := snode[r]; t != prev {
				tgt[fillT[sn]] = t
				fillT[sn]++
				upd[fillU[t]] = sn
				fillU[t]++
				prev = t
			}
		}
	}
	sym.tgt, sym.tgtp = tgt, tgtp
	sym.upd, sym.updp = upd, updp
	return sym
}

// Supernodes reports the number of supernodes in the partition.
func (s *SuperSymbolic) Supernodes() int { return len(s.sstart) - 1 }

// Size reports the analyzed dimension.
func (s *SuperSymbolic) Size() int { return s.N }

// Permutation returns the fill-reducing permutation (nil = natural).
func (s *SuperSymbolic) Permutation() []int { return s.Perm }

// KernelName names the supernodal kernel's telemetry rung.
func (s *SuperSymbolic) KernelName() string { return "supernodal" }

// LNNZ reports the number of nonzeros in the factor L under the exact
// scalar pattern — the same cost model as CholSymbolic.LNNZ, so the
// metric is comparable across kernels at equal permutation.
func (s *SuperSymbolic) LNNZ() int { return s.lnnz }

// PanelNNZ reports the stored panel entries including amalgamation
// padding and the never-read upper triangles of the diagonal blocks —
// the actual float64 storage of a numeric factor.
func (s *SuperSymbolic) PanelNNZ() int { return s.poff[len(s.poff)-1] }

// FlopEstimate returns the symbolic flop count Σ_j |L(:,j)|² on the
// exact scalar pattern, matching CholSymbolic.FlopEstimate.
func (s *SuperSymbolic) FlopEstimate() int64 {
	var fl int64
	for _, c := range s.colcount {
		fl += int64(c) * int64(c)
	}
	return fl
}

// FillRatio reports nnz(L)/nnz(upper(A)) on the exact scalar pattern.
func (s *SuperSymbolic) FillRatio() float64 {
	annz := s.upper.Colp[s.upper.Cols]
	if annz == 0 {
		return 0
	}
	return float64(s.lnnz) / float64(annz)
}

// Refactorize adapts Factorize to the kernel-generic Analysis
// interface, running with the analysis' Workers setting.
func (s *SuperSymbolic) Refactorize(a *sparse.Matrix, reuse ScalarFactor) (ScalarFactor, error) {
	var r *SuperFactor
	if sf, ok := reuse.(*SuperFactor); ok {
		r = sf
	}
	f, err := s.Factorize(a, r, s.Workers)
	if err != nil {
		return nil, err
	}
	return f, nil
}
