package factor

import (
	"fmt"
	"math"

	"opera/internal/obs"
	"opera/internal/parallel"
	"opera/internal/sparse"
)

// BlockMatrix is a square block-sparse matrix: a scalar n×n CSC sparsity
// pattern whose every stored entry is a dense B×B block (row-major
// within the block). This is exactly the structure of the stochastic
// Galerkin matrices (Eq. 19–21): one block per grid-node pair, the block
// holding the chaos-coupling pattern. Factoring in this form keeps the
// elimination tree and fill of the *scalar* grid pattern, with dense
// B×B arithmetic inside — the property the paper's §5.2 sparsity
// observation points at.
type BlockMatrix struct {
	N, B int
	Colp []int
	Rowi []int
	Val  []float64 // len NNZ·B², blocks in CSC slot order
}

// NewBlockMatrix builds a zero block matrix with the given scalar
// pattern (must have sorted columns).
func NewBlockMatrix(pattern *sparse.Matrix, b int) *BlockMatrix {
	if pattern.Rows != pattern.Cols {
		panic("factor: block matrix pattern must be square")
	}
	return &BlockMatrix{
		N:    pattern.Rows,
		B:    b,
		Colp: append([]int(nil), pattern.Colp...),
		Rowi: append([]int(nil), pattern.Rowi...),
		Val:  make([]float64, pattern.NNZ()*b*b),
	}
}

// AddTerm accumulates coupling ⊗ a into the block matrix: for every
// scalar entry a(i,j) and every coupling entry T(m1,m2), block (i,j)
// gains T(m1,m2)·a(i,j). The scalar pattern of a must be contained in
// the block matrix's pattern. coupling is B×B.
func (bm *BlockMatrix) AddTerm(coupling, a *sparse.Matrix) {
	B := bm.B
	if coupling.Rows != B || coupling.Cols != B {
		panic(fmt.Sprintf("factor: coupling is %dx%d, want %dx%d", coupling.Rows, coupling.Cols, B, B))
	}
	if a.Rows != bm.N || a.Cols != bm.N {
		panic(fmt.Sprintf("factor: term is %dx%d, want %d", a.Rows, a.Cols, bm.N))
	}
	// Flatten the coupling for the inner loop.
	type centry struct {
		off int
		v   float64
	}
	var cents []centry
	for m2 := 0; m2 < B; m2++ {
		for p := coupling.Colp[m2]; p < coupling.Colp[m2+1]; p++ {
			cents = append(cents, centry{off: coupling.Rowi[p]*B + m2, v: coupling.Val[p]})
		}
	}
	for j := 0; j < bm.N; j++ {
		pa := a.Colp[j]
		ea := a.Colp[j+1]
		pb := bm.Colp[j]
		eb := bm.Colp[j+1]
		for pa < ea {
			i := a.Rowi[pa]
			// Locate slot (i, j) in the block pattern (both sorted).
			for pb < eb && bm.Rowi[pb] < i {
				pb++
			}
			if pb == eb || bm.Rowi[pb] != i {
				panic(fmt.Sprintf("factor: term entry (%d,%d) outside block pattern", i, j))
			}
			base := pb * B * B
			av := a.Val[pa]
			for _, ce := range cents {
				bm.Val[base+ce.off] += ce.v * av
			}
			pa++
		}
	}
}

// MulVec computes y = M·x for node-major vectors (x[i·B+m]).
func (bm *BlockMatrix) MulVec(y, x []float64) {
	B := bm.B
	if len(x) != bm.N*B || len(y) != bm.N*B {
		panic(fmt.Sprintf("factor: block MulVec lengths %d/%d want %d", len(y), len(x), bm.N*B))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < bm.N; j++ {
		xj := x[j*B : (j+1)*B]
		for p := bm.Colp[j]; p < bm.Colp[j+1]; p++ {
			i := bm.Rowi[p]
			blk := bm.Val[p*B*B : (p+1)*B*B]
			yi := y[i*B : (i+1)*B]
			for r := 0; r < B; r++ {
				s := 0.0
				row := blk[r*B : r*B+B]
				for c := 0; c < B; c++ {
					s += row[c] * xj[c]
				}
				yi[r] += s
			}
		}
	}
}

// mulVecSymBlockChunk is the block-row granularity of
// BlockMatrix.MulVecSym; each entry costs B² multiplies, so chunks are
// smaller than the scalar equivalent.
const mulVecSymBlockChunk = 64

// MulVecSym computes y = M·x for a *symmetric* block matrix (the
// Galerkin operators: symmetric coupling tensors over symmetric node
// matrices), row-partitioned across up to `workers` goroutines. By
// symmetry block (i,j) equals the stored block (j,i) transposed, so
// block-row i is a gather over stored column i:
//
//	y_i = Σ_p Block(p)ᵀ · x_{Rowi[p]}  over column i
//
// Each y_i is produced whole by one worker in a fixed order, so the
// result is bit-identical for any worker count (though it associates
// differently from the scatter-form MulVec — callers that need
// worker-count invariance must use one form consistently).
func (bm *BlockMatrix) MulVecSym(y, x []float64, workers int) {
	B := bm.B
	if len(x) != bm.N*B || len(y) != bm.N*B {
		panic(fmt.Sprintf("factor: block MulVecSym lengths %d/%d want %d", len(y), len(x), bm.N*B))
	}
	bb := B * B
	gather := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y[i*B : (i+1)*B]
			for r := range yi {
				yi[r] = 0
			}
			for p := bm.Colp[i]; p < bm.Colp[i+1]; p++ {
				j := bm.Rowi[p]
				blk := bm.Val[p*bb : (p+1)*bb]
				xj := x[j*B : (j+1)*B]
				// y_i += Block(p)ᵀ · x_j
				for c := 0; c < B; c++ {
					xc := xj[c]
					row := blk[c*B : c*B+B]
					for r := 0; r < B; r++ {
						yi[r] += row[r] * xc
					}
				}
			}
		}
	}
	if workers <= 1 || bm.N <= mulVecSymBlockChunk {
		gather(0, bm.N)
		return
	}
	chunks := (bm.N + mulVecSymBlockChunk - 1) / mulVecSymBlockChunk
	// Chunks write disjoint block rows of y; errors are impossible here.
	_ = parallel.ForEach(workers, chunks, func(_, c int) error {
		lo := c * mulVecSymBlockChunk
		hi := lo + mulVecSymBlockChunk
		if hi > bm.N {
			hi = bm.N
		}
		gather(lo, hi)
		return nil
	})
}

// NormInf returns the ∞-norm (maximum absolute row sum) of the block
// matrix, used to scale residual verification.
func (bm *BlockMatrix) NormInf() float64 {
	B := bm.B
	rowSum := make([]float64, bm.N*B)
	for j := 0; j < bm.N; j++ {
		for p := bm.Colp[j]; p < bm.Colp[j+1]; p++ {
			i := bm.Rowi[p]
			blk := bm.Val[p*B*B : (p+1)*B*B]
			for r := 0; r < B; r++ {
				s := 0.0
				for c := 0; c < B; c++ {
					s += math.Abs(blk[r*B+c])
				}
				rowSum[i*B+r] += s
			}
		}
	}
	m := 0.0
	for _, s := range rowSum {
		if s > m {
			m = s
		}
	}
	return m
}

// ToCSC expands the block matrix into a scalar CSC matrix with
// node-major indexing (global index i·B+m) — for tests and the LU
// fallback path.
func (bm *BlockMatrix) ToCSC() *sparse.Matrix {
	B := bm.B
	t := sparse.NewTriplet(bm.N*B, bm.N*B, bm.Colp[bm.N]*B*B)
	for j := 0; j < bm.N; j++ {
		for p := bm.Colp[j]; p < bm.Colp[j+1]; p++ {
			i := bm.Rowi[p]
			blk := bm.Val[p*B*B : (p+1)*B*B]
			for r := 0; r < B; r++ {
				for c := 0; c < B; c++ {
					if v := blk[r*B+c]; v != 0 {
						t.Add(i*B+r, j*B+c, v)
					}
				}
			}
		}
	}
	return t.Compile()
}

// BlockCholFactor is a block LLᵀ factorization P·M·Pᵀ = L·Lᵀ where P is
// a scalar (node-level) permutation, L is block lower triangular, each
// diagonal block itself lower triangular.
type BlockCholFactor struct {
	N, B int
	Perm []int // node permutation; nil = natural
	colp []int
	rowi []int
	val  []float64 // nnzL·B² blocks; diagonal block stored first per column
	annz int       // scalar upper-triangle nnz of the analyzed pattern
}

// BlockCholesky factors the block matrix under the given node
// permutation. It returns ErrNotPositiveDefinite (wrapped) when a
// diagonal block fails its dense Cholesky.
func BlockCholesky(m *BlockMatrix, perm []int) (*BlockCholFactor, error) {
	defer observe(func(fm *factorMetrics) *obs.Histogram { return fm.blockChol })()
	n, B := m.N, m.B
	if perm != nil && len(perm) != n {
		return nil, fmt.Errorf("factor: node permutation length %d != %d", len(perm), n)
	}
	// Permute the scalar pattern and block values.
	colp, rowi, val := m.Colp, m.Rowi, m.Val
	if perm != nil {
		colp, rowi, val = permuteBlocks(m, perm)
	}
	// Upper-triangular scalar pattern for etree/ereach, with slot
	// references into the block storage.
	upColp := make([]int, n+1)
	upRowi := make([]int, 0, len(rowi)/2+n)
	upSlot := make([]int, 0, len(rowi)/2+n)
	for j := 0; j < n; j++ {
		for p := colp[j]; p < colp[j+1]; p++ {
			if rowi[p] <= j {
				upRowi = append(upRowi, rowi[p])
				upSlot = append(upSlot, p)
			}
		}
		upColp[j+1] = len(upRowi)
	}
	upper := &sparse.Matrix{Rows: n, Cols: n, Colp: upColp, Rowi: upRowi, Val: make([]float64, len(upRowi))}
	parent := etree(upper)
	// Column counts of L.
	count := make([]int, n)
	s := make([]int, n)
	w := make([]int, n)
	for i := range w {
		w[i] = -1
	}
	for k := 0; k < n; k++ {
		count[k]++
		for top := ereach(upper, k, parent, s, w); top < n; top++ {
			count[s[top]]++
		}
	}
	lcolp := make([]int, n+1)
	for j := 0; j < n; j++ {
		lcolp[j+1] = lcolp[j] + count[j]
	}
	nnzL := lcolp[n]
	lrowi := make([]int, nnzL)
	lval := make([]float64, nnzL*B*B)
	next := make([]int, n)
	copy(next, lcolp[:n])
	for i := range w {
		w[i] = -1
	}
	// Workspaces.
	bb := B * B
	x := make([]float64, n*bb) // block accumulators
	tmp := make([]float64, bb)
	d := make([]float64, bb)
	for k := 0; k < n; k++ {
		top := ereach(upper, k, parent, s, w)
		// Scatter block row k of the (permuted) matrix: blocks (i, k)
		// for i ≤ k come from the upper part of column k.
		for p := upColp[k]; p < upColp[k+1]; p++ {
			i := upRowi[p]
			src := val[upSlot[p]*bb : upSlot[p]*bb+bb]
			if i == k {
				copy(d, src)
			} else {
				// Need block (k, i) = block (i, k)ᵀ of the symmetric
				// matrix; the upper entry stores block (i, k).
				dst := x[i*bb : i*bb+bb]
				for r := 0; r < B; r++ {
					for c := 0; c < B; c++ {
						dst[c*B+r] = src[r*B+c]
					}
				}
			}
		}
		for ; top < n; top++ {
			i := s[top]
			xi := x[i*bb : i*bb+bb]
			// Lki = Xi · L(i,i)⁻ᵀ  (right triangular solve; L(i,i) is
			// the first block of column i, lower triangular).
			diag := lval[lcolp[i]*bb : lcolp[i]*bb+bb]
			rightSolveLT(B, xi, diag, tmp)
			copy(xi, tmp)
			// Update remaining pattern: for each stored L(r,i), r > k is
			// impossible yet (rows added in ascending k), so updates hit
			// blocks x[r] with r < k? No: stored rows r in column i are
			// previous k' < k... they are rows of L, all < k, but the
			// pattern of row k only touches ereach columns; the scalar
			// algorithm subtracts into x[Li[p]] for entries beyond the
			// diagonal — those rows are in (i, k) ereach range.
			for p := lcolp[i] + 1; p < next[i]; p++ {
				r := lrowi[p]
				lri := lval[p*bb : p*bb+bb]
				xr := x[r*bb : r*bb+bb]
				// xr -= Lki · L(r,i)ᵀ — every inner product runs over
				// two contiguous rows; the B=6 case (order-2, two
				// variables — the paper's Eq. 20) is fully unrolled.
				if B == 6 {
					for a := 0; a < 6; a++ {
						xia := xi[a*6 : a*6+6 : a*6+6]
						xra := xr[a*6 : a*6+6 : a*6+6]
						for c := 0; c < 6; c++ {
							lrc := lri[c*6 : c*6+6 : c*6+6]
							xra[c] -= xia[0]*lrc[0] + xia[1]*lrc[1] + xia[2]*lrc[2] +
								xia[3]*lrc[3] + xia[4]*lrc[4] + xia[5]*lrc[5]
						}
					}
					continue
				}
				for a := 0; a < B; a++ {
					xia := xi[a*B : a*B+B]
					xra := xr[a*B : a*B+B]
					for c := 0; c < B; c++ {
						lrc := lri[c*B : c*B+B]
						sum := 0.0
						for q := range xia {
							sum += xia[q] * lrc[q]
						}
						xra[c] -= sum
					}
				}
			}
			// d -= Lki·Lkiᵀ
			for a := 0; a < B; a++ {
				xia := xi[a*B : a*B+B]
				da := d[a*B : a*B+B]
				for c := 0; c < B; c++ {
					xic := xi[c*B : c*B+B]
					sum := 0.0
					for q := range xia {
						sum += xia[q] * xic[q]
					}
					da[c] -= sum
				}
			}
			// Store L(k,i).
			p := next[i]
			next[i]++
			lrowi[p] = k
			copy(lval[p*bb:p*bb+bb], xi)
			zero(xi)
		}
		// Dense Cholesky of the diagonal block.
		if err := denseCholesky(B, d); err != nil {
			return nil, fmt.Errorf("%w (block pivot %d: %v)", ErrNotPositiveDefinite, k, err)
		}
		p := next[k]
		next[k]++
		lrowi[p] = k
		copy(lval[p*bb:p*bb+bb], d)
		zero(d)
	}
	var pc []int
	if perm != nil {
		pc = append([]int(nil), perm...)
	}
	f := &BlockCholFactor{N: n, B: B, Perm: pc, colp: lcolp, rowi: lrowi, val: lval, annz: upColp[n]}
	recordWork(f.FlopEstimate(), f.FillRatio())
	return f, nil
}

// NNZ reports the scalar-equivalent nonzero count of the factor.
func (f *BlockCholFactor) NNZ() int { return f.colp[f.N] * f.B * f.B }

// FlopEstimate returns the symbolic work estimate of the block
// factorization: the scalar-pattern column-count squares Σ_j c_j²
// scaled by B³ (every scalar multiply-add becomes a B×B block
// multiply). Deterministic given pattern and permutation.
func (f *BlockCholFactor) FlopEstimate() int64 {
	var fl int64
	for j := 0; j < f.N; j++ {
		c := int64(f.colp[j+1] - f.colp[j])
		fl += c * c
	}
	b := int64(f.B)
	return fl * b * b * b
}

// FillRatio reports the scalar-pattern fill nnz(L)/nnz(upper(A)); the
// B×B block factors cancel out.
func (f *BlockCholFactor) FillRatio() float64 {
	if f.annz == 0 {
		return 0
	}
	return float64(f.colp[f.N]) / float64(f.annz)
}

// permuteBlocks applies a node permutation to pattern and blocks.
func permuteBlocks(m *BlockMatrix, perm []int) (colp, rowi []int, val []float64) {
	n, B := m.N, m.B
	bb := B * B
	inv := sparse.InversePerm(perm)
	colp = make([]int, n+1)
	nnz := m.Colp[n]
	rowi = make([]int, nnz)
	val = make([]float64, nnz*bb)
	// Count per new column.
	for jn := 0; jn < n; jn++ {
		jo := perm[jn]
		colp[jn+1] = colp[jn] + (m.Colp[jo+1] - m.Colp[jo])
	}
	type slotRef struct {
		row, slot int
	}
	scratch := make([]slotRef, 0, 64)
	for jn := 0; jn < n; jn++ {
		jo := perm[jn]
		scratch = scratch[:0]
		for p := m.Colp[jo]; p < m.Colp[jo+1]; p++ {
			scratch = append(scratch, slotRef{row: inv[m.Rowi[p]], slot: p})
		}
		// Insertion sort by new row (columns are short).
		for i := 1; i < len(scratch); i++ {
			for k := i; k > 0 && scratch[k-1].row > scratch[k].row; k-- {
				scratch[k-1], scratch[k] = scratch[k], scratch[k-1]
			}
		}
		base := colp[jn]
		for i, sr := range scratch {
			rowi[base+i] = sr.row
			copy(val[(base+i)*bb:(base+i+1)*bb], m.Val[sr.slot*bb:(sr.slot+1)*bb])
		}
	}
	return colp, rowi, val
}

// denseCholesky factors the B×B matrix a (row-major) in place into its
// lower-triangular Cholesky factor (upper part zeroed).
func denseCholesky(b int, a []float64) error {
	for j := 0; j < b; j++ {
		d := a[j*b+j]
		for k := 0; k < j; k++ {
			d -= a[j*b+k] * a[j*b+k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("pivot %d = %g", j, d)
		}
		d = math.Sqrt(d)
		a[j*b+j] = d
		for i := j + 1; i < b; i++ {
			s := a[i*b+j]
			for k := 0; k < j; k++ {
				s -= a[i*b+k] * a[j*b+k]
			}
			a[i*b+j] = s / d
		}
		for i := 0; i < j; i++ {
			a[i*b+j] = 0
		}
	}
	return nil
}

// rightSolveLT computes out = X · L⁻ᵀ for a dense lower-triangular L
// (row-major), i.e. solves out·Lᵀ = X row by row.
func rightSolveLT(b int, x, l, out []float64) {
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := x[r*b+c]
			for k := 0; k < c; k++ {
				s -= out[r*b+k] * l[c*b+k]
			}
			out[r*b+c] = s / l[c*b+c]
		}
	}
}

// Solve solves M·x = rhs for node-major vectors, overwriting x (which
// may alias rhs). The work vector is pooled, so the steady state
// allocates nothing.
func (f *BlockCholFactor) Solve(x, rhs []float64) {
	n, B := f.N, f.B
	bb := B * B
	if len(x) != n*B || len(rhs) != n*B {
		panic(fmt.Sprintf("factor: block solve lengths %d/%d want %d", len(x), len(rhs), n*B))
	}
	yp := getScratch(n * B)
	defer putScratch(yp)
	y := *yp
	if f.Perm != nil {
		for k := 0; k < n; k++ {
			copy(y[k*B:(k+1)*B], rhs[f.Perm[k]*B:f.Perm[k]*B+B])
		}
	} else {
		copy(y, rhs)
	}
	// Forward: L·z = y.
	for j := 0; j < n; j++ {
		yj := y[j*B : (j+1)*B]
		diag := f.val[f.colp[j]*bb : f.colp[j]*bb+bb]
		// yj = L(j,j)⁻¹ yj (forward substitution within the block).
		for r := 0; r < B; r++ {
			s := yj[r]
			for k := 0; k < r; k++ {
				s -= diag[r*B+k] * yj[k]
			}
			yj[r] = s / diag[r*B+r]
		}
		for p := f.colp[j] + 1; p < f.colp[j+1]; p++ {
			i := f.rowi[p]
			blk := f.val[p*bb : p*bb+bb]
			yi := y[i*B : (i+1)*B]
			for r := 0; r < B; r++ {
				s := 0.0
				for c := 0; c < B; c++ {
					s += blk[r*B+c] * yj[c]
				}
				yi[r] -= s
			}
		}
	}
	// Backward: Lᵀ·w = z.
	for j := n - 1; j >= 0; j-- {
		yj := y[j*B : (j+1)*B]
		for p := f.colp[j] + 1; p < f.colp[j+1]; p++ {
			i := f.rowi[p]
			blk := f.val[p*bb : p*bb+bb]
			yi := y[i*B : (i+1)*B]
			// yj -= L(i,j)ᵀ · yi
			for c := 0; c < B; c++ {
				s := 0.0
				for r := 0; r < B; r++ {
					s += blk[r*B+c] * yi[r]
				}
				yj[c] -= s
			}
		}
		diag := f.val[f.colp[j]*bb : f.colp[j]*bb+bb]
		// yj = L(j,j)⁻ᵀ yj (backward substitution within the block).
		for r := B - 1; r >= 0; r-- {
			s := yj[r]
			for k := r + 1; k < B; k++ {
				s -= diag[k*B+r] * yj[k]
			}
			yj[r] = s / diag[r*B+r]
		}
	}
	if f.Perm != nil {
		for k := 0; k < n; k++ {
			copy(x[f.Perm[k]*B:f.Perm[k]*B+B], y[k*B:(k+1)*B])
		}
	} else {
		copy(x, y)
	}
}

func zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
