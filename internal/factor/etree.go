// Package factor implements sparse direct factorizations: an up-looking
// Cholesky (LLᵀ) with elimination-tree symbolic analysis and pattern
// reuse across numeric refactorizations, and a left-looking
// Gilbert–Peierls LU with partial pivoting. Both accept a fill-reducing
// permutation computed by package order. These are the solvers behind
// both the Monte Carlo baseline (thousands of refactorizations of one
// pattern) and the single large stochastic Galerkin factorization that
// gives OPERA its speed advantage.
package factor

import "opera/internal/sparse"

// etree computes the elimination tree of a symmetric matrix whose upper
// triangle is stored in a (CSC, sorted). parent[k] = -1 marks a root.
func etree(a *sparse.Matrix) []int {
	n := a.Cols
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		for p := a.Colp[k]; p < a.Colp[k+1]; p++ {
			i := a.Rowi[p]
			for i != -1 && i < k {
				inext := ancestor[i]
				ancestor[i] = k
				if inext == -1 {
					parent[i] = k
				}
				i = inext
			}
		}
	}
	return parent
}

// postorder computes a depth-first postordering of the elimination
// tree (forest), visiting each node's children in ascending order so
// the result is deterministic. Returns nil when the tree is already
// postordered — the common case for natural and dissection orderings —
// so callers can skip the relabeling.
func postorder(parent []int) []int {
	n := len(parent)
	// Child lists: filling in descending node order leaves each head
	// pointing at the smallest child, so the DFS pops children
	// ascending. Cell n collects the forest roots.
	head := make([]int, n+1)
	for i := range head {
		head[i] = -1
	}
	next := make([]int, n)
	for v := n - 1; v >= 0; v-- {
		p := parent[v]
		if p < 0 {
			p = n
		}
		next[v] = head[p]
		head[p] = v
	}
	post := make([]int, 0, n)
	stack := make([]int, 0, n)
	for r := head[n]; r != -1; r = next[r] {
		stack = append(stack, r)
		for len(stack) > 0 {
			j := stack[len(stack)-1]
			if c := head[j]; c != -1 {
				head[j] = next[c] // consume the child; revisit j after
				stack = append(stack, c)
				continue
			}
			post = append(post, j)
			stack = stack[:len(stack)-1]
		}
	}
	identity := true
	for k, v := range post {
		if v != k {
			identity = false
			break
		}
	}
	if identity {
		return nil
	}
	return post
}

// ereach computes the nonzero pattern of row k of the Cholesky factor L
// as the union of the tree paths from each entry of column k of A (upper
// triangle) to the root, stopping at already-marked vertices. The
// pattern is returned in s[top:n] in topological order (descendants
// first). w is a marker workspace tagged with the current k.
func ereach(a *sparse.Matrix, k int, parent []int, s, w []int) (top int) {
	n := a.Cols
	top = n
	w[k] = k // mark the diagonal
	for p := a.Colp[k]; p < a.Colp[k+1]; p++ {
		i := a.Rowi[p]
		if i > k {
			continue
		}
		// Walk up the elimination tree from i until hitting a marked
		// vertex, collecting the path.
		length := 0
		for w[i] != k {
			s[length] = i
			length++
			w[i] = k
			i = parent[i]
		}
		// Push the path (reversed) onto the output stack.
		for length > 0 {
			length--
			top--
			s[top] = s[length]
		}
	}
	return top
}
