package factor

import (
	"fmt"

	"opera/internal/sparse"
)

// Kernel selects the numeric Cholesky kernel. The supernodal blocked
// kernel is the default: it factors the same pattern as the scalar
// up-looking kernel but runs on dense column-major panels with rank-k
// updates, and parallelizes independent elimination-tree subtrees.
// The scalar kernel remains available as the reference implementation
// and as an ablation switch.
type Kernel int

// Kernel choices.
const (
	KernelSupernodal Kernel = iota // blocked panels (default)
	KernelScalar                   // scalar up-looking reference
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelSupernodal:
		return "supernodal"
	case KernelScalar:
		return "scalar"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// ScalarFactor is a numeric factorization of a scalar (n×n) SPD system
// that can serve solves. Both *CholFactor and *SuperFactor implement
// it; SolveToWithScratch is allocation-free on both, which is what the
// Monte Carlo and transient hot loops rely on.
type ScalarFactor interface {
	SolveTo(x, b []float64)
	SolveToWithScratch(x, b, y []float64)
}

// Analysis is a reusable symbolic Cholesky analysis, independent of
// the numeric kernel. One analysis serves any number of numeric
// factorizations of matrices sharing the pattern. The cost metrics
// (LNNZ, FlopEstimate, FillRatio) use the scalar L pattern for both
// kernels, so they are comparable across kernels at equal permutation.
type Analysis interface {
	Size() int
	Permutation() []int
	LNNZ() int
	FlopEstimate() int64
	FillRatio() float64
	// KernelName names the numeric kernel ("cholesky" or "supernodal")
	// for telemetry rungs.
	KernelName() string
	// Refactorize numerically factors a; reuse, when non-nil and
	// produced by this analysis, recycles the previous factor's storage.
	Refactorize(a *sparse.Matrix, reuse ScalarFactor) (ScalarFactor, error)
}

// Size reports the analyzed dimension.
func (s *CholSymbolic) Size() int { return s.N }

// Permutation returns the fill-reducing permutation (nil = natural).
func (s *CholSymbolic) Permutation() []int { return s.Perm }

// KernelName names the scalar kernel's telemetry rung.
func (s *CholSymbolic) KernelName() string { return "cholesky" }

// Refactorize adapts Factorize to the kernel-generic Analysis
// interface.
func (s *CholSymbolic) Refactorize(a *sparse.Matrix, reuse ScalarFactor) (ScalarFactor, error) {
	var r *CholFactor
	if cf, ok := reuse.(*CholFactor); ok {
		r = cf
	}
	f, err := s.Factorize(a, r)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Analyze performs symbolic analysis for the selected kernel. The
// supernodal analysis uses the default amalgamation threshold.
func Analyze(a *sparse.Matrix, perm []int, k Kernel) Analysis {
	if k == KernelScalar {
		return CholAnalyze(a, perm)
	}
	return CholAnalyzeSupernodal(a, perm, -1)
}

// CholeskyKernel analyzes and factors in one call on the selected
// kernel — the kernel-generic sibling of Cholesky.
func CholeskyKernel(a *sparse.Matrix, perm []int, k Kernel) (ScalarFactor, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("factor: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if perm != nil && len(perm) != a.Rows {
		return nil, fmt.Errorf("factor: permutation length %d != %d", len(perm), a.Rows)
	}
	return Analyze(a, perm, k).Refactorize(a, nil)
}
