package factor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opera/internal/order"
	"opera/internal/sparse"
)

// laplacian2D returns the SPD 5-point Laplacian plus a diagonal shift on
// an rows×cols grid.
func laplacian2D(rows, cols int, shift float64) *sparse.Matrix {
	n := rows * cols
	t := sparse.NewTriplet(n, n, 5*n)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			t.Add(v, v, 4+shift)
			if r+1 < rows {
				t.Add(v, id(r+1, c), -1)
				t.Add(id(r+1, c), v, -1)
			}
			if c+1 < cols {
				t.Add(v, id(r, c+1), -1)
				t.Add(id(r, c+1), v, -1)
			}
		}
	}
	return t.Compile()
}

func randomSPD(rng *rand.Rand, n int, density float64) *sparse.Matrix {
	t := sparse.NewTriplet(n, n, n*4)
	for i := 0; i < n; i++ {
		offsum := 0.0
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := -rng.Float64()
				t.Add(i, j, v)
				t.Add(j, i, v)
				offsum += -v
			}
		}
		t.Add(i, i, 1+2*offsum) // strictly diagonally dominant
	}
	// Second pass can't know lower off-diagonals added later; add a
	// global diagonal boost to guarantee SPD.
	m := t.Compile()
	d := m.Diag()
	boost := sparse.NewTriplet(n, n, n)
	for i := 0; i < n; i++ {
		rowAbs := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				rowAbs += math.Abs(m.At(i, j))
			}
		}
		if d[i] <= rowAbs {
			boost.Add(i, i, rowAbs-d[i]+1)
		} else {
			boost.Add(i, i, 0)
		}
	}
	return sparse.Add(1, m, 1, boost.Compile())
}

func residualInf(a *sparse.Matrix, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	max := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func TestEtreeChain(t *testing.T) {
	// Tridiagonal matrix: etree is a path 0->1->...->n-1.
	a := laplacian2D(1, 6, 0).UpperTriangle()
	parent := etree(a)
	for k := 0; k < 5; k++ {
		if parent[k] != k+1 {
			t.Errorf("parent[%d] = %d, want %d", k, parent[k], k+1)
		}
	}
	if parent[5] != -1 {
		t.Errorf("root parent = %d, want -1", parent[5])
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		a := randomSPD(rng, n, 0.3)
		f, err := Cholesky(a, nil)
		if err != nil {
			t.Fatalf("Cholesky: %v", err)
		}
		// L·Lᵀ must equal A.
		llt := sparse.Mul(f.L, f.L.Transpose())
		diff := sparse.Add(1, llt, -1, a)
		for _, v := range diff.Val {
			if math.Abs(v) > 1e-10 {
				t.Fatalf("reconstruction error %g", v)
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, perm := range [][]int{nil} {
		for trial := 0; trial < 10; trial++ {
			n := 2 + rng.Intn(30)
			a := randomSPD(rng, n, 0.2)
			f, err := Cholesky(a, perm)
			if err != nil {
				t.Fatalf("Cholesky: %v", err)
			}
			b := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x := f.Solve(b)
			if r := residualInf(a, x, b); r > 1e-9 {
				t.Fatalf("residual %g", r)
			}
		}
	}
}

func TestCholeskyWithOrderings(t *testing.T) {
	a := laplacian2D(12, 15, 0.1)
	g := order.NewGraph(a)
	b := make([]float64, a.Rows)
	rng := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var refX []float64
	for _, tc := range []struct {
		name string
		perm []int
	}{
		{"natural", nil},
		{"rcm", order.RCM(g)},
		{"nd", order.NestedDissection(g, 8)},
		{"md", order.MinimumDegree(g)},
	} {
		f, err := Cholesky(a, tc.perm)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		x := f.Solve(b)
		if r := residualInf(a, x, b); r > 1e-9 {
			t.Fatalf("%s: residual %g", tc.name, r)
		}
		if refX == nil {
			refX = x
		} else {
			for i := range x {
				if math.Abs(x[i]-refX[i]) > 1e-8 {
					t.Fatalf("%s: solution differs from natural at %d", tc.name, i)
				}
			}
		}
		t.Logf("%s: nnz(L) = %d", tc.name, f.Sym.LNNZ())
	}
}

func TestCholeskyOrderingReducesFactorNNZ(t *testing.T) {
	a := laplacian2D(20, 20, 0.1)
	g := order.NewGraph(a)
	nat := CholAnalyze(a, nil).LNNZ()
	nd := CholAnalyze(a, order.NestedDissection(g, 16)).LNNZ()
	t.Logf("nnz(L): natural %d, nd %d", nat, nd)
	if nd >= nat {
		t.Errorf("ND factor nnz %d should beat natural %d", nd, nat)
	}
}

func TestCholeskyRefactorizeReuse(t *testing.T) {
	a := laplacian2D(8, 8, 0.1)
	sym := CholAnalyze(a, nil)
	f1, err := sym.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Scale values (same pattern), refactor reusing storage.
	a2 := a.Clone().Scale(2.5)
	f2, err := sym.Factorize(a2, f1)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := f2.Solve(b)
	if r := residualInf(a2, x, b); r > 1e-9 {
		t.Fatalf("refactorized residual %g", r)
	}
	if &f2.L.Val[0] != &f1.L.Val[0] {
		t.Error("refactorization did not reuse storage")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := sparse.FromDense([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a, nil); err == nil {
		t.Error("expected ErrNotPositiveDefinite")
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(25)
		// Unsymmetric, diagonally dominant-ish matrix.
		tr := sparse.NewTriplet(n, n, n*4)
		for i := 0; i < n; i++ {
			tr.Add(i, i, 5+rng.Float64())
			for k := 0; k < 3; k++ {
				j := rng.Intn(n)
				if j != i {
					tr.Add(i, j, rng.NormFloat64())
				}
			}
		}
		a := tr.Compile()
		f, err := LU(a, nil)
		if err != nil {
			t.Fatalf("LU: %v", err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := f.Solve(b)
		if r := residualInf(a, x, b); r > 1e-8 {
			t.Fatalf("LU residual %g", r)
		}
	}
}

func TestLUWithColumnOrdering(t *testing.T) {
	a := laplacian2D(10, 12, 0.2)
	g := order.NewGraph(a)
	q := order.NestedDissection(g, 8)
	f, err := LU(a, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := f.Solve(b)
	if r := residualInf(a, x, b); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestLUPivotsPermutedRows(t *testing.T) {
	// A matrix that requires pivoting: zero diagonal.
	a := sparse.FromDense([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 2},
	})
	f, err := LU(a, nil)
	if err != nil {
		t.Fatalf("LU with zero diagonal should pivot: %v", err)
	}
	x := f.Solve([]float64{1, 2, 3})
	want := []float64{2, 1, 1.5}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := sparse.FromDense([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := LU(a, nil); err == nil {
		t.Error("expected ErrSingular for a rank-1 matrix")
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randomSPD(rng, n, 0.3)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		cf, err := Cholesky(a, nil)
		if err != nil {
			return false
		}
		lf, err := LU(a, nil)
		if err != nil {
			return false
		}
		xc := cf.Solve(b)
		xl := lf.Solve(b)
		for i := range xc {
			if math.Abs(xc[i]-xl[i]) > 1e-7*(1+math.Abs(xc[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveToAliasing(t *testing.T) {
	a := randomSPD(rand.New(rand.NewSource(6)), 12, 0.3)
	f, err := Cholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 12)
	for i := range b {
		b[i] = float64(i)
	}
	borig := append([]float64(nil), b...)
	f.SolveTo(b, b) // aliased
	if r := residualInf(a, b, borig); r > 1e-9 {
		t.Fatalf("aliased SolveTo residual %g", r)
	}
}

func TestLowerSolveUnit(t *testing.T) {
	// Explicit tiny case for the triangular kernels.
	l := sparse.FromDense([][]float64{
		{2, 0},
		{1, 3},
	})
	x := []float64{4, 11}
	LowerSolve(l, x)
	if x[0] != 2 || x[1] != 3 {
		t.Errorf("LowerSolve got %v", x)
	}
	y := []float64{7, 9}
	LowerTransposeSolve(l, y)
	// Lᵀ y' = y: [2 1; 0 3] y' = [7,9] -> y'1 = 3, y'0 = (7-3)/2 = 2
	if y[1] != 3 || y[0] != 2 {
		t.Errorf("LowerTransposeSolve got %v", y)
	}
}
