package factor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"opera/internal/order"
	"opera/internal/sparse"
)

// superFactorize analyzes and factors a with the supernodal kernel.
func superFactorize(t *testing.T, a *sparse.Matrix, perm []int, relax, workers int) (*SuperSymbolic, *SuperFactor) {
	t.Helper()
	sym := CholAnalyzeSupernodal(a, perm, relax)
	f, err := sym.Factorize(a, nil, workers)
	if err != nil {
		t.Fatalf("supernodal factorize (relax %d, workers %d): %v", relax, workers, err)
	}
	return sym, f
}

// TestSupernodalMatchesScalar is the core equivalence sweep: on a mesh
// and on random SPD patterns, across orderings and amalgamation
// settings, the supernodal kernel must reproduce the scalar kernel's
// L pattern and cost model exactly and its values to rounding.
func TestSupernodalMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mats := []*sparse.Matrix{
		laplacian2D(13, 11, 0.3),
		laplacian2D(1, 40, 0.1),
		randomSPD(rng, 60, 0.08),
		randomSPD(rng, 35, 0.25),
		sparse.Identity(6),
	}
	for mi, a := range mats {
		perms := [][]int{nil, order.MinimumDegree(order.NewGraph(a)), order.AMD(order.NewGraph(a))}
		for pi, perm := range perms {
			for _, relax := range []int{0, -1, 4, 1 << 30} {
				sym, f := superFactorize(t, a, perm, relax, 1)
				// The analysis postorders the etree, so the scalar
				// reference must factor at the composed permutation.
				ref, err := Cholesky(a, sym.Permutation())
				if err != nil {
					t.Fatalf("mat %d perm %d: scalar: %v", mi, pi, err)
				}
				// Cost model parity: both kernels report the exact scalar
				// pattern metrics, so benchmark gates compare like with like.
				if sym.LNNZ() != ref.Sym.LNNZ() || sym.FlopEstimate() != ref.Sym.FlopEstimate() {
					t.Fatalf("mat %d perm %d relax %d: cost model diverges: nnz %d vs %d, flops %d vs %d",
						mi, pi, relax, sym.LNNZ(), ref.Sym.LNNZ(), sym.FlopEstimate(), ref.Sym.FlopEstimate())
				}
				if sym.PanelNNZ() < sym.LNNZ() {
					t.Fatalf("panel storage %d below exact nnz %d", sym.PanelNNZ(), sym.LNNZ())
				}
				l := f.L()
				for j := 0; j <= l.Cols; j++ {
					if l.Colp[j] != ref.L.Colp[j] {
						t.Fatalf("mat %d perm %d relax %d: L colp mismatch at %d", mi, pi, relax, j)
					}
				}
				for p := range l.Rowi {
					if l.Rowi[p] != ref.L.Rowi[p] {
						t.Fatalf("mat %d perm %d relax %d: L pattern mismatch at entry %d", mi, pi, relax, p)
					}
					if d := math.Abs(l.Val[p] - ref.L.Val[p]); d > 1e-10*(1+math.Abs(ref.L.Val[p])) {
						t.Fatalf("mat %d perm %d relax %d: L value mismatch at entry %d: %g vs %g",
							mi, pi, relax, p, l.Val[p], ref.L.Val[p])
					}
				}
				// And the solves agree with the matrix.
				n := a.Rows
				b := make([]float64, n)
				for i := range b {
					b[i] = math.Sin(float64(3*i + mi))
				}
				x := make([]float64, n)
				f.SolveTo(x, b)
				if r := residualInf(a, x, b); r > 1e-8 {
					t.Errorf("mat %d perm %d relax %d: residual %g", mi, pi, relax, r)
				}
			}
		}
	}
}

// TestSupernodalAmalgamationExtremes pins the two degenerate
// amalgamation settings: relax 0 yields fundamental supernodes (more
// than one on any non-chain mesh), a huge relax merges the whole
// matrix into a single dense panel — and both still factor correctly
// (value checks ride along in TestSupernodalMatchesScalar).
func TestSupernodalAmalgamationExtremes(t *testing.T) {
	a := laplacian2D(9, 8, 0.2)
	sym0, _ := superFactorize(t, a, nil, 0, 1)
	symHuge, _ := superFactorize(t, a, nil, 1<<30, 1)
	if sym0.Supernodes() <= 1 {
		t.Errorf("relax 0 on a mesh produced %d supernodes", sym0.Supernodes())
	}
	if symHuge.Supernodes() != 1 {
		t.Errorf("huge relax produced %d supernodes, want 1", symHuge.Supernodes())
	}
	if sym0.Supernodes() < symHuge.Supernodes() {
		t.Errorf("amalgamation increased supernode count")
	}
	// Identity: every column is its own fundamental supernode.
	id := sparse.Identity(5)
	symID, _ := superFactorize(t, id, nil, 0, 1)
	if symID.Supernodes() != 5 {
		t.Errorf("identity: %d supernodes, want 5", symID.Supernodes())
	}
}

// TestSupernodalWorkerDeterminism asserts the bit-exactness promise:
// the numeric factor is identical — every panel float, compared as
// bits — no matter how many workers race over the elimination tree.
func TestSupernodalWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mats := []*sparse.Matrix{
		laplacian2D(17, 13, 0.25),
		randomSPD(rng, 80, 0.06),
	}
	for mi, a := range mats {
		perm := order.AMD(order.NewGraph(a))
		_, ref := superFactorize(t, a, perm, -1, 1)
		for _, workers := range []int{2, 4, 7} {
			_, f := superFactorize(t, a, perm, -1, workers)
			if len(f.val) != len(ref.val) {
				t.Fatalf("mat %d: panel sizes differ", mi)
			}
			for i := range f.val {
				if math.Float64bits(f.val[i]) != math.Float64bits(ref.val[i]) {
					t.Fatalf("mat %d workers %d: panel[%d] differs bitwise: %x vs %x",
						mi, workers, i, math.Float64bits(f.val[i]), math.Float64bits(ref.val[i]))
				}
			}
		}
	}
}

// TestSupernodalNotPositiveDefiniteParity: both kernels must reject an
// indefinite matrix with an error wrapping ErrNotPositiveDefinite and
// naming the same pivot column — serial and parallel alike (the
// parallel scheduler selects the minimal failing column).
func TestSupernodalNotPositiveDefiniteParity(t *testing.T) {
	a := laplacian2D(8, 8, 0.3)
	// Poison one diagonal entry mid-matrix: the pivot at its permuted
	// column goes negative.
	bad := a.Clone()
	for j := 0; j < bad.Cols; j++ {
		for p := bad.Colp[j]; p < bad.Colp[j+1]; p++ {
			if bad.Rowi[p] == j && j == 29 {
				bad.Val[p] = -40
			}
		}
	}
	_, scalarErr := Cholesky(bad, CholAnalyzeSupernodal(bad, nil, -1).Permutation())
	if !errors.Is(scalarErr, ErrNotPositiveDefinite) {
		t.Fatalf("scalar kernel accepted an indefinite matrix: %v", scalarErr)
	}
	for _, workers := range []int{1, 4} {
		sym := CholAnalyzeSupernodal(bad, nil, -1)
		_, err := sym.Factorize(bad, nil, workers)
		if !errors.Is(err, ErrNotPositiveDefinite) {
			t.Fatalf("workers %d: supernodal kernel accepted an indefinite matrix: %v", workers, err)
		}
		if err.Error() != scalarErr.Error() {
			t.Errorf("workers %d: error mismatch:\n supernodal: %v\n scalar:     %v", workers, err, scalarErr)
		}
	}
}

// TestSupernodalRefactorizeReuse: a second numeric factorization
// through the Analysis interface must recycle the panel storage and
// track the new values.
func TestSupernodalRefactorizeReuse(t *testing.T) {
	a := laplacian2D(10, 10, 0.2)
	var sym Analysis = CholAnalyzeSupernodal(a, order.AMD(order.NewGraph(a)), -1)
	f1, err := sym.Refactorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2 := a.Clone().Scale(2.5)
	f2, err := sym.Refactorize(a2, f1)
	if err != nil {
		t.Fatal(err)
	}
	if f1.(*SuperFactor) != f2.(*SuperFactor) {
		t.Error("Refactorize did not recycle the factor storage")
	}
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := make([]float64, n)
	f2.SolveTo(x, b)
	if r := residualInf(a2, x, b); r > 1e-8 {
		t.Errorf("reused factor residual %g", r)
	}
}

// TestSupernodalSolveScratchAllocFree: the MC/transient hot loops rely
// on SolveToWithScratch staying allocation-free.
func TestSupernodalSolveScratchAllocFree(t *testing.T) {
	a := laplacian2D(12, 9, 0.2)
	_, f := superFactorize(t, a, nil, -1, 1)
	n := a.Rows
	x := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	if allocs := testing.AllocsPerRun(20, func() {
		f.SolveToWithScratch(x, b, y)
	}); allocs != 0 {
		t.Errorf("SolveToWithScratch allocates %.0f objects per call", allocs)
	}
}

// TestAnalyzeKernelDispatch checks the Kernel-enum front door used by
// the option plumbing.
func TestAnalyzeKernelDispatch(t *testing.T) {
	a := laplacian2D(6, 6, 0.2)
	if name := Analyze(a, nil, KernelSupernodal).KernelName(); name != "supernodal" {
		t.Errorf("KernelSupernodal analysis is %q", name)
	}
	if name := Analyze(a, nil, KernelScalar).KernelName(); name != "cholesky" {
		t.Errorf("KernelScalar analysis is %q", name)
	}
	for _, k := range []Kernel{KernelSupernodal, KernelScalar} {
		f, err := CholeskyKernel(a, nil, k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		b := make([]float64, a.Rows)
		b[0] = 1
		x := make([]float64, a.Rows)
		f.SolveTo(x, b)
		if r := residualInf(a, x, b); r > 1e-10 {
			t.Errorf("%v: residual %g", k, r)
		}
	}
}

// TestSupernodalFuzzEquivalence cross-checks random patterns, random
// amalgamation and random worker counts against the scalar kernel.
func TestSupernodalFuzzEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := randomSPD(rng, n, 0.05+0.3*rng.Float64())
		relax := rng.Intn(12)
		workers := 1 + rng.Intn(4)
		sym := CholAnalyzeSupernodal(a, nil, relax)
		ref, err := Cholesky(a, sym.Permutation())
		if err != nil {
			return false
		}
		sf, err := sym.Factorize(a, nil, workers)
		if err != nil {
			return false
		}
		l := sf.L()
		for p := range l.Rowi {
			if l.Rowi[p] != ref.L.Rowi[p] {
				return false
			}
			if math.Abs(l.Val[p]-ref.L.Val[p]) > 1e-9*(1+math.Abs(ref.L.Val[p])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
