package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"opera/internal/grid"
	"opera/internal/service/inject"
)

// mcRequest builds a Monte Carlo request big enough to be interrupted
// mid-sampling.
func mcRequest(seed int64, samples int) Request {
	spec := grid.DefaultSpec(64, seed)
	return Request{Grid: &spec, Analysis: KindMC, Samples: samples, Steps: 4, Step: 1e-10}
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// normalizeResult strips the per-run volatile fields (trace and
// timing) so two runs of the same work can be compared byte-for-byte.
func normalizeResult(t *testing.T, data []byte) string {
	t.Helper()
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	jr.TraceID = ""
	jr.ElapsedMS = 0
	jr.Trace = nil
	jr.Metrics = nil
	b, err := json.Marshal(&jr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// A deadline mid-MC yields a degraded result: done state, the moments
// over the samples that ran, error bars, no cache entry — and the
// checkpoint survives so a resubmission resumes.
func TestDeadlineDegradedResult(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Options{
		ConcurrentJobs: 1, CheckpointDir: dir, CheckpointEvery: 8,
	})
	req := mcRequest(7, 500000)
	req.TimeoutMS = 400
	sub, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub.ID)
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	if !st.Degraded {
		t.Fatal("status not marked degraded")
	}
	data, _, err := s.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if !jr.Degraded || jr.SamplesRequested != req.Samples {
		t.Fatalf("degraded=%v requested=%d, want true/%d", jr.Degraded, jr.SamplesRequested, req.Samples)
	}
	if jr.SamplesRun <= 0 || jr.SamplesRun >= req.Samples {
		t.Fatalf("samples_run %d out of range (0, %d)", jr.SamplesRun, req.Samples)
	}
	if len(jr.StdErr) == 0 {
		t.Fatal("degraded result missing stderr")
	}
	if len(jr.StdErr) != jr.Steps+1 || len(jr.StdErr[0]) != jr.N {
		t.Fatalf("stderr shape %dx%d, want %dx%d", len(jr.StdErr), len(jr.StdErr[0]), jr.Steps+1, jr.N)
	}
	for s := range jr.StdErr {
		for i, v := range jr.StdErr[s] {
			if v < 0 {
				t.Fatalf("negative stderr at %d/%d", s, i)
			}
		}
	}
	// Degraded results must not poison the cache.
	if _, ok := s.cache.Get(sub.Key); ok {
		t.Fatal("degraded result was cached")
	}
	// The checkpoint survives for a resuming resubmission.
	if s.ckpts.Len() == 0 {
		t.Fatal("checkpoint deleted after degraded finish")
	}
}

// A full-budget resubmission of a degraded job resumes from its
// checkpoint and produces a result byte-identical (modulo volatile
// fields) to an uninterrupted run.
func TestDegradedThenResumeMatchesFreshRun(t *testing.T) {
	req := mcRequest(11, 4000)

	// Reference: one uninterrupted run on a checkpoint-free server.
	ref := newTestServer(t, Options{ConcurrentJobs: 1})
	sub, err := ref.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ref, sub.ID)
	refData, _, err := ref.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: deadline cuts the first attempt short, the second
	// attempt resumes and finishes.
	dir := t.TempDir()
	s := newTestServer(t, Options{ConcurrentJobs: 1, CheckpointDir: dir, CheckpointEvery: 8})
	short := req
	short.TimeoutMS = 150
	sub1, err := s.Submit(short)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub1.ID)
	if st.State != StateDone || !st.Degraded {
		t.Skipf("first attempt finished undegraded (state %s, degraded %v) — machine too fast for the budget", st.State, st.Degraded)
	}
	resumes := s.mResumes.Value()
	sub2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Cached {
		t.Fatal("second attempt served from cache — degraded result leaked into it")
	}
	st2 := waitDone(t, s, sub2.ID)
	if st2.State != StateDone || st2.Degraded {
		t.Fatalf("second attempt state %s degraded %v, want clean done", st2.State, st2.Degraded)
	}
	if s.mResumes.Value() <= resumes {
		t.Fatal("second attempt did not resume from the checkpoint")
	}
	data, _, err := s.Result(sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeResult(t, data), normalizeResult(t, refData); got != want {
		t.Fatal("resumed result differs from uninterrupted run")
	}
	// Full success reclaims the snapshot.
	if s.ckpts.Len() != 0 {
		t.Fatalf("%d checkpoints survive a clean finish", s.ckpts.Len())
	}
}

// The stall watchdog kills a hung job with a structured StallError;
// the job fails rather than hanging the worker forever.
func TestStallWatchdogKillsHungJob(t *testing.T) {
	restore := inject.Enable(&inject.Faults{Seed: 1, ArtificialStall: 1})
	t.Cleanup(restore)
	s := newTestServer(t, Options{ConcurrentJobs: 1, StallTimeout: 80 * time.Millisecond})
	req := quickRequest(3)
	req.NoCache = true
	sub, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub.ID)
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "stalled") {
		t.Fatalf("error %q does not mention the stall", st.Error)
	}
	if s.mStalls.Value() == 0 {
		t.Fatal("stall counter did not move")
	}
}

// A slow-but-progressing job must NOT trip the watchdog: progress
// marks at step boundaries distinguish slow from hung.
func TestWatchdogSparesProgressingJob(t *testing.T) {
	s := newTestServer(t, Options{ConcurrentJobs: 1, StallTimeout: 2 * time.Second})
	req := quickRequest(5)
	req.NoCache = true
	sub, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, s, sub.ID)
	if st.State != StateDone {
		t.Fatalf("state %s (err %q), want done", st.State, st.Error)
	}
	if s.mStalls.Value() != 0 {
		t.Fatal("watchdog fired on a progressing job")
	}
}

// Readiness reflects queue saturation, not just draining.
func TestReadinessSaturation(t *testing.T) {
	s := newTestServer(t, Options{ConcurrentJobs: 1, QueueDepth: 1})
	// Occupy the single worker, then fill the single queue slot.
	running, err := s.Submit(slowRequest(21))
	if err != nil {
		t.Fatal(err)
	}
	var queued SubmitResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		queued, err = s.Submit(slowRequest(22))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The queued job may be claimed the instant the first finishes;
	// sample readiness while both are outstanding.
	ok, reason, depth := s.Readiness()
	if ok || reason != "saturated" {
		t.Fatalf("readiness ok=%v reason=%q depth=%d, want saturated", ok, reason, depth)
	}
	s.Cancel(running.ID)
	s.Cancel(queued.ID)
	waitDone(t, s, running.ID)
	waitDone(t, s, queued.ID)
	if ok, _, _ := s.Readiness(); !ok {
		t.Fatal("readiness stuck after queue drained")
	}
}
