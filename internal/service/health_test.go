package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"opera/internal/obs"
)

// TestJobResultCarriesHealth pins the numerical-health block on the
// wire result: rung, residual, condition estimate, flops and fill of
// the factorization that served the solve — and the same record on the
// job's flight entry.
func TestJobResultCarriesHealth(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1, FlightJobs: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	sub, err := c.Submit(ctx, quickRequest(71))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, sub.ID); err != nil || st.State != StateDone {
		t.Fatalf("job: %+v, %v", st, err)
	}
	jr, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	h := jr.Health
	if h == nil {
		t.Fatal("result missing the health block")
	}
	if h.Rung == "" {
		t.Error("health: empty rung")
	}
	if h.FactorFlops <= 0 {
		t.Errorf("health: factor_flops = %d, want > 0", h.FactorFlops)
	}
	if h.FillRatio < 1 {
		t.Errorf("health: fill_ratio = %g, want >= 1", h.FillRatio)
	}
	if h.FactorNNZ <= 0 {
		t.Errorf("health: factor_nnz = %d, want > 0", h.FactorNNZ)
	}
	if h.MaxResidual <= 0 {
		t.Errorf("health: max_residual = %g, want > 0 (verification on)", h.MaxResidual)
	}
	if h.CondEstimate <= 0 {
		t.Errorf("health: cond_estimate = %g, want > 0", h.CondEstimate)
	}

	// The flight entry carries the same record.
	resp, err := http.Get(ts.URL + "/debug/flight?trace=" + jr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entry obs.FlightEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	fh, ok := entry.Health.(map[string]any)
	if !ok || fh == nil {
		t.Fatalf("flight entry health = %#v, want the NumHealth record", entry.Health)
	}
	if fh["rung"] != h.Rung {
		t.Errorf("flight health rung = %v, want %q", fh["rung"], h.Rung)
	}
}

// TestMCResultCarriesHealth covers the Monte Carlo path: factor stats
// come from the shared symbolic analysis, flops scale with samples.
func TestMCResultCarriesHealth(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	req := quickRequest(72)
	req.Analysis = KindMC
	req.Samples = 8
	sub, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, sub.ID); err != nil || st.State != StateDone {
		t.Fatalf("job: %+v, %v", st, err)
	}
	jr, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Health == nil {
		t.Fatal("MC result missing the health block")
	}
	if jr.Health.Rung != "supernodal" {
		t.Errorf("MC rung = %q, want supernodal", jr.Health.Rung)
	}
	if jr.Health.FactorFlops <= 0 || jr.Health.FactorNNZ <= 0 {
		t.Errorf("MC factor stats missing: %+v", jr.Health)
	}
}

// TestSLOBreachProfileCapture is the e2e acceptance flow: a job that
// overruns its latency objective gets pprof evidence captured while it
// is still running, retrievable at /debug/profiles by trace ID.
func TestSLOBreachProfileCapture(t *testing.T) {
	s := newTestServer(t, Options{
		QueueDepth: 4, ConcurrentJobs: 1, FlightJobs: 4,
		SLOProfileAfter: 20 * time.Millisecond,
	})
	s.Profiles().CPUDuration = 30 * time.Millisecond
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	// Enough transient steps that the solve comfortably outlives the
	// 20 ms objective on any machine.
	spec := quickRequest(73)
	spec.Steps = 20000
	spec.NoCache = true
	sub, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, sub.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("job: %+v, %v", st, err)
	}

	// The CPU window may still be open when the job finishes; poll
	// briefly for both capture kinds.
	deadline := time.Now().Add(3 * time.Second)
	var heapOK, cpuOK bool
	for time.Now().Before(deadline) && !(heapOK && cpuOK) {
		_, heapOK = s.Profiles().Get(st.TraceID, "heap")
		_, cpuOK = s.Profiles().Get(st.TraceID, "cpu")
		time.Sleep(10 * time.Millisecond)
	}
	if !heapOK || !cpuOK {
		t.Fatalf("captures after breach: heap=%v cpu=%v", heapOK, cpuOK)
	}
	if n := s.reg.Snapshot().Counters["service.slo_profiles_total"]; n < 1 {
		t.Errorf("service.slo_profiles_total = %d, want >= 1", n)
	}

	// Retrievable over HTTP: the index lists the trace, the raw pprof
	// bytes download.
	resp, err := http.Get(ts.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Profiles []obs.Profile `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, p := range idx.Profiles {
		if p.TraceID == st.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/profiles index missing trace %s: %+v", st.TraceID, idx.Profiles)
	}
	resp, err = http.Get(ts.URL + "/debug/profiles/" + st.TraceID + "/heap")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("heap download: status %d, %d bytes", resp.StatusCode, len(body))
	}

	// A job that finishes inside the objective leaves no capture.
	fast := quickRequest(74)
	sub2, err := c.Submit(ctx, fast)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Wait(ctx, sub2.ID)
	if err != nil || st2.State != StateDone {
		t.Fatalf("fast job: %+v, %v", st2, err)
	}
	time.Sleep(50 * time.Millisecond) // past the objective timer
	if _, ok := s.Profiles().Get(st2.TraceID, "heap"); ok {
		t.Error("fast job was profiled despite finishing inside the objective")
	}
}
