package service

import (
	"net/http"
	"time"

	"opera/internal/obs"
)

// Shard-side span retention: when Options.SpanRingBytes is set, every
// finished job leaves a span fragment in the ring under its trace ID —
// a synthetic "shard.job" container (submission to terminal), a
// "queue" child covering the queue wait, any "peer.peek" probes the
// submission ran, and the solver's own phase tree exported beneath the
// container. The router's /debug/trace/{id} stitcher fans these
// fragments out of every shard and reassembles one tree; the span IDs
// are deterministic in (trace, shard, path), so the fragments agree on
// identity without any cross-process coordination.

// Span tree paths within one shard's fragment. The IDs derived from
// them are the stitching contract: the job-root path is what peek spans
// (recorded before the root exists) and the solver's exported tree
// parent against.
const (
	spanPathRoot  = "root"
	spanPathQueue = "queue"
	spanPathPeek  = "peek"
	spanPathJob   = "job"
)

// jobRootSpanID is the deterministic ID of a shard's job-root span for
// a trace — computable before the span is recorded.
func jobRootSpanID(traceID, shard string) string {
	return obs.SpanID(traceID, shard, spanPathRoot)
}

// clusterJobID is the router-visible form of a local job ID
// ("s0~job-000042"), or "" when the server runs standalone. The "~"
// separator matches the cluster router's ID scheme.
func (s *Server) clusterJobID(id string) string {
	shard := s.ShardName()
	if shard == "" || id == "" {
		return ""
	}
	return shard + "~" + id
}

// Spans exposes the span-export ring (nil when disabled) — what the
// HTTP layer serves at /debug/spans/{trace}.
func (s *Server) Spans() *obs.SpanRing { return s.spans }

// recordJobSpans retains a terminal job's span fragment. Runs outside
// the server mutex with the job terminal (recordTerminal's contract).
func (s *Server) recordJobSpans(j *job, state string) {
	if s.spans == nil || j.traceID == "" {
		return
	}
	shard := s.ShardName()
	rootID := jobRootSpanID(j.traceID, shard)
	spans := []obs.ExportSpan{obs.SyntheticSpan(
		j.traceID, shard, spanPathRoot, "", "shard.job",
		j.submitted, j.finished.Sub(j.submitted),
		obs.String("job_id", j.id),
		obs.String("state", state),
		obs.String("analysis", j.req.Analysis),
		obs.String("key", j.key),
	)}
	queuedEnd := j.started
	if queuedEnd.IsZero() {
		queuedEnd = j.finished
	}
	if d := queuedEnd.Sub(j.submitted); d > 0 {
		spans = append(spans, obs.SyntheticSpan(
			j.traceID, shard, spanPathQueue, rootID, "queue",
			j.submitted, d,
			obs.String("priority", j.req.Priority)))
	}
	spans = append(spans, j.tracer.Export(shard, rootID, spanPathJob)...)
	s.spans.Add(spans...)
}

// recordCachedSpans retains the fragment of a submission served
// entirely from the result cache: one container span, marked cached,
// with no solve tree beneath it. Requires s.mu (called from the locked
// fast path); the ring has its own lock but never blocks.
func (s *Server) recordCachedSpans(j *job) {
	if s.spans == nil || j.traceID == "" {
		return
	}
	shard := s.ShardName()
	s.spans.Add(obs.SyntheticSpan(
		j.traceID, shard, spanPathRoot, "", "shard.job",
		j.submitted, 0,
		obs.String("job_id", j.id),
		obs.String("state", StateDone),
		obs.String("analysis", j.req.Analysis),
		obs.String("key", j.key),
		obs.String("cached", "true"),
	))
}

// recordPeekSpan retains one submission's peer-peek probe as a span
// parented under the trace's (possibly not-yet-recorded) job root.
func (s *Server) recordPeekSpan(traceID string, start time.Time, peer string, hit bool) {
	if s.spans == nil || traceID == "" {
		return
	}
	shard := s.ShardName()
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	attrs := []obs.Attr{obs.String("outcome", outcome)}
	if peer != "" {
		attrs = append(attrs, obs.String("peer", peer))
	}
	s.spans.Add(obs.SyntheticSpan(
		traceID, shard, spanPathPeek, jobRootSpanID(traceID, shard),
		"peer.peek", start, time.Since(start), attrs...))
}

// handleSpans serves GET /debug/spans/{trace}: this process's retained
// fragment for the trace, 404 when nothing is retained (or the ring is
// disabled).
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	s.spans.ServeTrace(w, s.ShardName(), r.PathValue("trace"))
}
