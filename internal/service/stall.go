package service

import (
	"fmt"
	"log/slog"
	"time"

	"opera/internal/obs"
	"opera/internal/obs/logx"
)

// StallError reports a job killed by the stall watchdog: its progress
// counter — marked by every solve loop at step/sample/basis
// boundaries — did not move for a full window, which distinguishes a
// hung solve from a merely slow one (a slow solve still marks). It is
// the job's cancellation cause (context.Cause of the job context) and
// its terminal error.
type StallError struct {
	JobID string `json:"job_id"`
	// Window is the configured stall timeout the job exceeded.
	Window time.Duration `json:"window_ns"`
	// Progress is the counter value at which the job stopped advancing.
	Progress uint64 `json:"progress"`
	// Trace is the job's span tree at the moment of death, attached
	// post-mortem so the flight entry and the error agree on where the
	// solve was stuck. Nil when tracing is disabled.
	Trace *obs.Dump `json:"trace,omitempty"`
}

func (e *StallError) Error() string {
	return fmt.Sprintf("service: job %s stalled: no progress for %v (counter at %d)", e.JobID, e.Window, e.Progress)
}

// watchJob cancels the job with a StallError if its progress counter
// stops moving for the configured window. It samples at a quarter of
// the window, so detection lags the true stall by at most ~1.25
// windows. Returns when the job finishes or the stall fires.
func (s *Server) watchJob(j *job) {
	window := s.opts.StallTimeout
	tick := window / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	last := j.progress.Value()
	lastMove := time.Now()
	for {
		select {
		case <-j.done:
			return
		case <-j.ctx.Done():
			return
		case now := <-t.C:
			v := j.progress.Value()
			if v != last {
				last, lastMove = v, now
				continue
			}
			if now.Sub(lastMove) < window {
				continue
			}
			se := &StallError{JobID: j.id, Window: window, Progress: v}
			j.cancelCause(se)
			s.mStalls.Inc()
			if j.log != nil {
				j.event("job.stall",
					slog.Float64(logx.KeyMS, float64(window)/float64(time.Millisecond)),
					slog.String(logx.KeyError, se.Error()))
			}
			return
		}
	}
}
