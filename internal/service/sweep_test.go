package service

import (
	"strings"
	"testing"

	"opera/internal/grid"
	"opera/internal/mna"
)

func sweepBase(seed int64) Request {
	spec := grid.DefaultSpec(64, seed)
	return Request{Grid: &spec, Steps: 3, Step: 1e-10}
}

// TestSweepExpandDeterministic: the same matrix always expands to the
// same cells in the same order with the same content keys — the
// property that makes sweeps resumable and cluster-cacheable.
func TestSweepExpandDeterministic(t *testing.T) {
	sw := SweepRequest{
		Base: sweepBase(1),
		Corners: []SweepCorner{
			{Name: "tt"},
			{Name: "ss", Variation: &mna.VariationSpec{KG: 0.1, KCL: 0.05, KIL: 0.05}},
		},
		Loads: []SweepLoad{{Name: "nom"}, {Name: "hot", PeakDropFrac: 0.12}},
		Seeds: []int64{1, 2, 3},
	}
	a, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand (second): %v", err)
	}
	if len(a) != 2*2*3 {
		t.Fatalf("expanded %d jobs, want 12", len(a))
	}
	keys := make(map[string]int)
	for i := range a {
		if a[i].Index != i {
			t.Errorf("job %d has Index %d", i, a[i].Index)
		}
		ka, kb := a[i].Req.Key(), b[i].Req.Key()
		if ka != kb {
			t.Errorf("cell %d: keys differ across expansions: %s vs %s", i, ka, kb)
		}
		if prev, dup := keys[ka]; dup {
			t.Errorf("cells %d and %d share content key %s", prev, i, ka)
		}
		keys[ka] = i
	}
	if sw.ID(a) != sw.ID(b) {
		t.Errorf("sweep ID not deterministic: %s vs %s", sw.ID(a), sw.ID(b))
	}
	if !strings.HasPrefix(sw.ID(a), "sweep-") {
		t.Errorf("derived sweep ID %q lacks sweep- prefix", sw.ID(a))
	}
}

// TestSweepExpandAxes checks each axis lands in the normalized request:
// corners override the variation model, loads rescale the drop
// calibration, seeds land on the grid seed (or the MC sampling seed).
func TestSweepExpandAxes(t *testing.T) {
	sw := SweepRequest{
		Base:    sweepBase(7),
		Corners: []SweepCorner{{Name: "ff", Variation: &mna.VariationSpec{KG: 0.2, KCL: 0.1, KIL: 0.1}}},
		Loads:   []SweepLoad{{Name: "hot", PeakDropFrac: 0.2}},
		Seeds:   []int64{42},
	}
	jobs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	j := jobs[0]
	if j.Req.Variation == nil || j.Req.Variation.KG != 0.2 {
		t.Errorf("corner variation not applied: %+v", j.Req.Variation)
	}
	if j.Req.Grid.PeakDropFrac != 0.2 {
		t.Errorf("load PeakDropFrac not applied: %v", j.Req.Grid.PeakDropFrac)
	}
	if j.Req.Grid.Seed != 42 {
		t.Errorf("seed axis not applied to grid seed: %v", j.Req.Grid.Seed)
	}
	if sw.Base.Grid.Seed == 42 {
		t.Error("expansion mutated the base request's grid spec")
	}

	// MC sweeps vary the sampling seed instead of the circuit.
	mc := SweepRequest{Base: sweepBase(7), Seeds: []int64{9, 10}}
	mc.Base.Analysis = KindMC
	mc.Base.Samples = 8
	mcJobs, err := mc.Expand()
	if err != nil {
		t.Fatalf("Expand MC: %v", err)
	}
	if mcJobs[0].Req.Seed != 9 || mcJobs[1].Req.Seed != 10 {
		t.Errorf("MC seeds not applied: %d, %d", mcJobs[0].Req.Seed, mcJobs[1].Req.Seed)
	}
	if mcJobs[0].Req.Grid.Seed != mcJobs[1].Req.Grid.Seed {
		t.Error("MC sweep varied the circuit seed")
	}
}

// TestSweepExpandTraceIDs: a base trace ID fans out into distinct,
// derived per-cell IDs; no base ID leaves cells blank for the
// submitter to mint.
func TestSweepExpandTraceIDs(t *testing.T) {
	sw := SweepRequest{Base: sweepBase(3), Seeds: []int64{1, 2, 3, 4}}
	sw.Base.TraceID = strings.Repeat("ab", 16)
	jobs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		if len(j.Req.TraceID) != 32 {
			t.Errorf("cell %d trace ID %q is not 32 hex", j.Index, j.Req.TraceID)
		}
		if seen[j.Req.TraceID] {
			t.Errorf("duplicate derived trace ID %s", j.Req.TraceID)
		}
		seen[j.Req.TraceID] = true
	}

	sw.Base.TraceID = ""
	jobs, err = sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for _, j := range jobs {
		if j.Req.TraceID != "" {
			t.Errorf("cell %d has trace ID %q without a base ID", j.Index, j.Req.TraceID)
		}
	}
}

// TestSweepExpandErrors covers the failure modes: an over-size matrix,
// a PeakDropFrac load without a grid to rescale, and an invalid cell.
func TestSweepExpandErrors(t *testing.T) {
	big := SweepRequest{Base: sweepBase(1), Seeds: make([]int64, MaxSweepJobs+1)}
	if _, err := big.Expand(); err == nil {
		t.Error("over-size sweep expanded without error")
	}

	noGrid := SweepRequest{
		Base:  Request{Netlist: "* empty\n.end\n"},
		Loads: []SweepLoad{{Name: "hot", PeakDropFrac: 0.2}},
	}
	if _, err := noGrid.Expand(); err == nil {
		t.Error("PeakDropFrac load without a grid spec expanded without error")
	}

	bad := SweepRequest{Base: sweepBase(1)}
	bad.Base.Analysis = "bogus"
	if _, err := bad.Expand(); err == nil {
		t.Error("invalid cell expanded without error")
	}
}

// TestSweepEmptyAxes: a sweep with no axes is one cell — the base
// request itself.
func TestSweepEmptyAxes(t *testing.T) {
	sw := SweepRequest{Base: sweepBase(5)}
	jobs, err := sw.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("expanded %d jobs, want 1", len(jobs))
	}
	base := sweepBase(5)
	base.Normalize()
	if jobs[0].Req.Key() != base.Key() {
		t.Error("single-cell sweep changed the base request's content key")
	}
}
