package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"opera/internal/grid"
	"opera/internal/obs"
)

// TestCoalesceAcrossPriorities: the same content key arriving at both
// priorities while the first submission is still in flight coalesces
// everything onto the one running job — one solve serves interactive
// and batch callers alike, and every waiter gets the same bytes.
func TestCoalesceAcrossPriorities(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{
		ConcurrentJobs: 1,
		QueueDepth:     8,
		CacheBytes:     16 << 20,
		Registry:       reg,
	})

	// Slow enough to still be in flight when the twins arrive, but
	// cacheable (NoCache would opt out of coalescing).
	spec := grid.DefaultSpec(64, 77)
	req := Request{Grid: &spec, Steps: 2000, Step: 1e-12}

	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	batch := req
	batch.Priority = PriorityBatch
	bsub, err := s.Submit(batch)
	if err != nil {
		t.Fatal(err)
	}
	inter := req
	inter.Priority = PriorityInteractive
	isub, err := s.Submit(inter)
	if err != nil {
		t.Fatal(err)
	}

	for _, sub := range []SubmitResponse{bsub, isub} {
		if !sub.Coalesced {
			t.Errorf("submission %+v did not coalesce", sub)
		}
		if sub.ID != first.ID {
			t.Errorf("coalesced onto %s, want the in-flight job %s", sub.ID, first.ID)
		}
		if sub.TraceID != first.TraceID {
			t.Errorf("coalesced trace %s, want the in-flight job's %s", sub.TraceID, first.TraceID)
		}
	}
	if got := reg.Counter("service.jobs_coalesced_total").Value(); got != 2 {
		t.Errorf("jobs_coalesced_total = %d, want 2", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, first.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("job ended %s err %v, want done", st.State, err)
	}
	if got := reg.Counter("service.jobs_completed_total").Value(); got != 1 {
		t.Errorf("jobs_completed_total = %d, want exactly 1 solve", got)
	}

	// Everyone reads the same stored bytes.
	a, _, err := s.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Result(bsub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("coalesced waiters read different result bytes")
	}
}
