package service

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJournalLines(t *testing.T, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func submitLine(t *testing.T, id string, req Request) string {
	t.Helper()
	req.Normalize()
	b, err := json.Marshal(journalRecord{Event: journalSubmit, ID: id, Key: req.Key(), Req: &req})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func endLine(t *testing.T, id string) string {
	t.Helper()
	b, err := json.Marshal(journalRecord{Event: journalEnd, ID: id, State: StateDone})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func readLines(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			out = append(out, sc.Text())
		}
	}
	return out
}

// An oversized line must not prevent startup: openJournal falls back
// to the longest valid prefix and reports the recovery on warn.
func TestJournalOversizedLineFallsBackToPrefix(t *testing.T) {
	old := journalScanBuf
	journalScanBuf = 4 * 1024
	t.Cleanup(func() { journalScanBuf = old })

	path := filepath.Join(t.TempDir(), "journal")
	writeJournalLines(t, path,
		submitLine(t, "job-000001", quickRequest(1)),
		strings.Repeat("x", 8*1024), // unscannable under the shrunken buffer
		submitLine(t, "job-000002", quickRequest(2)),
	)
	j, pending, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal refused to start: %v", err)
	}
	defer j.close()
	if j.warn == nil {
		t.Fatal("no recovery warning for the truncated scan")
	}
	// The prefix before the bad line survives; everything after is lost.
	if len(pending) != 1 || pending[0].ID != "job-000001" {
		t.Fatalf("pending %+v, want exactly job-000001", pending)
	}
}

// Startup compaction drops matched submit/end pairs and torn tails,
// keeping exactly the live submissions.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	writeJournalLines(t, path,
		submitLine(t, "job-000001", quickRequest(1)),
		endLine(t, "job-000001"),
		submitLine(t, "job-000002", quickRequest(2)),
		submitLine(t, "job-000003", quickRequest(3)),
		endLine(t, "job-000003"),
		`{"event":"submit","id":"job-000004",`, // torn tail from a crash
	)
	j, pending, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	if len(pending) != 1 || pending[0].ID != "job-000002" {
		t.Fatalf("pending %+v, want exactly job-000002", pending)
	}
	lines := readLines(t, path)
	if len(lines) != 1 {
		t.Fatalf("compacted journal has %d lines, want 1:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var rec journalRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Event != journalSubmit || rec.ID != "job-000002" || rec.Req == nil {
		t.Fatalf("compacted line %+v, want live submit of job-000002", rec)
	}
	// Reopening the compacted journal finds the same live set — the
	// rewrite is idempotent.
	j2, pending2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.close()
	if len(pending2) != 1 || pending2[0].ID != "job-000002" {
		t.Fatalf("second open pending %+v", pending2)
	}
}

// A journal that is pure garbage still opens (empty pending) rather
// than wedging the daemon.
func TestJournalGarbageOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	writeJournalLines(t, path, "not json at all", "{also broken")
	j, pending, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.close()
	if len(pending) != 0 {
		t.Fatalf("pending %+v from garbage", pending)
	}
	if lines := readLines(t, path); len(lines) != 0 {
		t.Fatalf("garbage survived compaction: %v", lines)
	}
}
