// Package inject provides deterministic fault injection for the
// service layer — the operational mirror of numguard/inject's
// numerical faults. It exists so the chaos soak test can force the
// failure modes a long-lived daemon actually meets — journal writes
// that vanish, cache stores that fail, workers that panic or hang,
// crashes between a checkpoint's tmp write and its rename — rather
// than hoping for an unlucky deployment. Production code never enables
// it; every hook is an atomically-loaded nil check. Enable faults only
// from tests, and always restore.
//
// Determinism contract: whether the n-th call at a given site fires is
// a pure function of (Seed, site, n). Concurrency can reorder which
// jobs hit the firing call indices, but the schedule itself — how many
// faults, at which call ordinals — is reproducible from the seed, so a
// failing soak run can be replayed.
package inject

import (
	"sync"
	"sync/atomic"
)

// Fault sites. Each names one hook in the service layer.
const (
	SiteJournalWrite = "journal.write"     // journal.record drops the line
	SiteCacheStore   = "cache.put"         // Cache.Put silently refuses
	SiteWorkerPanic  = "worker.panic"      // execute panics mid-solve
	SiteStall        = "worker.stall"      // execute hangs until canceled
	SiteCrashCkpt    = "checkpoint.crash"  // crash between ckpt tmp write and rename
	SitePeekTimeout  = "peer.peek_timeout" // a peer cache peek times out (treated as miss)
	SiteHandoffCrash = "handoff.crash"     // process dies before a drain handoff send
)

// Faults describes the active fault set: a per-site firing rate in
// [0, 1] and the seed that makes the schedule reproducible. A rate of
// 1 fires every call (targeted tests); fractional rates drive the
// chaos soak.
type Faults struct {
	Seed int64

	JournalWriteFail      float64
	CacheStoreFail        float64
	WorkerPanic           float64
	ArtificialStall       float64
	CrashBeforeCheckpoint float64
	PeerPeekTimeout       float64
	HandoffCrash          float64

	mu       sync.Mutex
	counters map[string]*uint64
}

var active atomic.Pointer[Faults]

// Enable installs the fault set and returns a restore function. Tests
// must call the restore (typically via t.Cleanup).
func Enable(f *Faults) (restore func()) {
	active.Store(f)
	return func() { active.Store(nil) }
}

// Enabled reports whether any faults are active.
func Enabled() bool { return active.Load() != nil }

// next returns this call's 0-based ordinal at the site.
func (f *Faults) next(site string) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.counters == nil {
		f.counters = make(map[string]*uint64)
	}
	c := f.counters[site]
	if c == nil {
		c = new(uint64)
		f.counters[site] = c
	}
	n := *c
	*c++
	return n
}

// splitmix64 is the standard 64-bit finalizer — enough mixing that
// consecutive ordinals decorrelate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashSite(site string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// fire decides the n-th call at site deterministically from the seed.
func (f *Faults) fire(site string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		f.next(site) // keep the ordinal stream advancing
		return true
	}
	n := f.next(site)
	h := splitmix64(uint64(f.Seed) ^ splitmix64(hashSite(site)^n))
	return float64(h>>11)/(1<<53) < rate
}

// JournalWrite reports whether this journal append should be dropped.
func JournalWrite() bool {
	f := active.Load()
	return f != nil && f.fire(SiteJournalWrite, f.JournalWriteFail)
}

// CacheStore reports whether this cache store should silently fail.
func CacheStore() bool {
	f := active.Load()
	return f != nil && f.fire(SiteCacheStore, f.CacheStoreFail)
}

// PanicPoint reports whether the executing worker should panic.
func PanicPoint() bool {
	f := active.Load()
	return f != nil && f.fire(SiteWorkerPanic, f.WorkerPanic)
}

// StallPoint reports whether the executing worker should hang (until
// its context is canceled — what the stall watchdog exists to do).
func StallPoint() bool {
	f := active.Load()
	return f != nil && f.fire(SiteStall, f.ArtificialStall)
}

// CrashBeforeCheckpoint reports whether a checkpoint write should die
// between its tmp write and the rename, leaving a torn tmp file.
func CrashBeforeCheckpoint() bool {
	f := active.Load()
	return f != nil && f.fire(SiteCrashCkpt, f.CrashBeforeCheckpoint)
}

// PeekTimeout reports whether this peer cache peek should be abandoned
// as if the peer never answered inside the peek budget. The peek
// contract is miss-tolerant, so the only acceptable consequence is a
// local solve that the peer's cache could have saved.
func PeekTimeout() bool {
	f := active.Load()
	return f != nil && f.fire(SitePeekTimeout, f.PeerPeekTimeout)
}

// HandoffCrash reports whether the draining process should "die"
// before sending this queued job to its ring peer — the handoff
// equivalent of the checkpoint crash site. The journal still holds the
// job's submit record, so a restart replays it; nothing is lost,
// only the warm handoff.
func HandoffCrash() bool {
	f := active.Load()
	return f != nil && f.fire(SiteHandoffCrash, f.HandoffCrash)
}
