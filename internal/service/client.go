package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"opera/internal/obs"
	"opera/internal/obs/logx"
)

// Client talks to a running operad — or a ring of them — over the
// HTTP API. It is the same request encoding the server decodes, so
// cmd/opera -remote and any other caller share one wire contract.
//
// With more than one address the client is ring-aware: it talks to one
// member at a time (sticky, so a submitted job is polled where it
// lives) and rotates to the next member when the current one is
// draining (503) or unreachable — the same jittered backoff that
// paces 429 retries paces the failover, so a rolling restart looks
// like brief queueing, not an error.
type Client struct {
	// BaseURL is the server address, e.g. "http://127.0.0.1:9130".
	BaseURL string
	// Addrs optionally lists every ring member in preference order;
	// when set it takes precedence over BaseURL. The client sticks to
	// one member until it proves draining or unreachable.
	Addrs []string
	// HTTPClient overrides the transport; nil uses a client with a
	// sane overall timeout disabled (job waits are long-poll loops).
	HTTPClient *http.Client
	// MaxRetries bounds how many times Submit retries a queue-full
	// (429) rejection — and how many times it rotates past a draining
	// or unreachable ring member — before surfacing the error; each
	// retry honors the server's Retry-After with jittered exponential
	// backoff and respects the submission context. 0 disables retries
	// (NewClient sets 3).
	MaxRetries int
	// Logger, when non-nil, records each retry as a "client.retry"
	// event (attempt number, wait, trace ID).
	Logger *slog.Logger

	// cur indexes the sticky member in Addrs.
	cur atomic.Int32
}

// NewClient builds a client for addr ("host:port" or full URL).
func NewClient(addr string) *Client {
	return &Client{BaseURL: normalizeAddr(addr), MaxRetries: 3}
}

// NewRingClient builds a client over every ring member, in preference
// order (the caller typically passes ring.Sequence(key) so the key's
// owner is tried first). A single address degrades to NewClient.
func NewRingClient(addrs []string) *Client {
	c := &Client{MaxRetries: 3}
	for _, a := range addrs {
		c.Addrs = append(c.Addrs, normalizeAddr(a))
	}
	if len(c.Addrs) > 0 {
		c.BaseURL = c.Addrs[0]
	}
	return c
}

func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// addr returns the sticky member the client currently talks to.
func (c *Client) addr() string {
	if len(c.Addrs) == 0 {
		return c.BaseURL
	}
	return c.Addrs[int(c.cur.Load())%len(c.Addrs)]
}

// advance rotates to the next ring member. With a single address it is
// a no-op (the retry loop then just re-tries the same member).
func (c *Client) advance() {
	if len(c.Addrs) > 1 {
		c.cur.Add(1)
	}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// APIError is a non-2xx reply, carrying the server's structured body.
type APIError struct {
	Status int
	Kind   string
	Msg    string
	// TraceID is the submission's trace ID when the server attached
	// one (every submission outcome carries it, rejections included).
	TraceID string
	// RetryAfter is the parsed Retry-After delay on a 429, zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("service: %s (%s, HTTP %d)", e.Msg, e.Kind, e.Status)
	}
	return fmt.Sprintf("service: %s (HTTP %d)", e.Msg, e.Status)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.addr()+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode, TraceID: resp.Header.Get(TraceIDHeader)}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			ae.RetryAfter = time.Duration(ra) * time.Second
		}
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			ae.Kind, ae.Msg = he.Kind, he.Error
			if ae.TraceID == "" {
				ae.TraceID = he.Trace
			}
			return ae
		}
		ae.Msg = strings.TrimSpace(string(data))
		return ae
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// retryableSubmit classifies a Submit failure: a queue-full rejection
// (429) retries the same member after backoff; a draining member (503
// with kind "draining") or an unreachable one (transport error) means
// this member is leaving the ring — rotate to the next member, with
// the same jittered backoff. Anything else is terminal.
func retryableSubmit(err error) (retry, rotate bool, ae *APIError) {
	if errors.As(err, &ae) {
		switch {
		case ae.Status == http.StatusTooManyRequests:
			return true, false, ae
		case ae.Status == http.StatusServiceUnavailable && ae.Kind == "draining":
			return true, true, ae
		}
		return false, false, ae
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true, true, nil
	}
	return false, false, nil
}

// Submit posts one job. A queue-full rejection (429) is retried up to
// MaxRetries times, honoring the server's Retry-After with jittered
// exponential backoff; a draining (503) or unreachable ring member is
// retried on the next member under the same backoff. The submission
// context bounds the whole loop. Retrying with the same trace ID is
// safe — the server's telemetry joins the attempts into one logical
// request, and the content key makes a duplicate submission coalesce.
func (c *Client) Submit(ctx context.Context, req Request) (SubmitResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var resp SubmitResponse
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &resp)
		if err == nil || attempt >= c.MaxRetries {
			return resp, err
		}
		retry, rotate, ae := retryableSubmit(err)
		if !retry {
			return resp, err
		}
		var wait time.Duration
		msg := err.Error()
		if ae != nil {
			// Keep the server-assigned trace ID across attempts so the
			// retries share one trace.
			if req.TraceID == "" {
				req.TraceID = ae.TraceID
			}
			wait = ae.RetryAfter
			msg = ae.Msg
		}
		if rotate {
			c.advance()
		}
		if wait <= 0 {
			wait = 100 * time.Millisecond << attempt
		}
		// Full jitter on top of the base wait desynchronizes clients
		// that were rejected by the same full queue (or are failing
		// over from the same draining shard).
		wait += time.Duration(rand.Int63n(int64(wait) + 1))
		if c.Logger != nil {
			c.Logger.LogAttrs(ctx, slog.LevelWarn, "client.retry",
				slog.Int(logx.KeyAttempt, attempt+1),
				slog.String(logx.KeyTrace, req.TraceID),
				slog.Float64(logx.KeyMS, float64(wait)/float64(time.Millisecond)),
				slog.String(logx.KeyError, msg))
		}
		select {
		case <-ctx.Done():
			return resp, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Status fetches a job's state.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	delay := 50 * time.Millisecond
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// Result fetches a finished job's decoded result.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// ResultBytes fetches the raw stored result payload (byte-identical
// across identical requests — the cache serves stored bytes verbatim).
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.addr()+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			return nil, &APIError{Status: resp.StatusCode, Kind: he.Kind, Msg: he.Error}
		}
		return nil, &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// RunInfo describes how a RunBytes call obtained its result: where the
// job ran, whether it was a cache hit, and how many times it survived a
// member leaving the ring.
type RunInfo struct {
	// Status is the final job status (zero-valued when Submit failed).
	Status JobStatus
	// JobID is the job on Member that produced (or held) the result.
	JobID string
	// Member is the base URL of the ring member that served the result.
	Member string
	// Cached marks a submission served from a result cache (local or a
	// peer's, via the cluster peek protocol).
	Cached bool
	// Resubmits counts how many times the job was resubmitted because a
	// member drained (handing the job off) or became unreachable.
	Resubmits int
	// HandedOff is set when at least one resubmission was caused by a
	// drain handoff (as opposed to a dead member).
	HandedOff bool
}

// Run submits a job and waits for its decoded result in one call.
func (c *Client) Run(ctx context.Context, req Request) (*JobResult, JobStatus, error) {
	data, info, err := c.RunBytes(ctx, req)
	if err != nil {
		return nil, info.Status, err
	}
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, info.Status, err
	}
	return &jr, info.Status, nil
}

// RunBytes submits a job, waits, and returns the stored result bytes
// verbatim (the byte-identity surface of the cache). On a ring it also
// rides out a member leaving mid-job: when the member dies (transport
// error while polling) or drains and hands the queued job to a peer
// (terminal status with HandedOff set), the request is resubmitted to
// the next member — content addressing makes the resubmit cheap (a
// cache hit if any shard already solved it, a coalesce if one is
// mid-solve) and byte-identical.
func (c *Client) RunBytes(ctx context.Context, req Request) ([]byte, RunInfo, error) {
	if req.TraceID == "" {
		// Pin one trace ID up front so every resubmission of this
		// logical request joins the same trace.
		req.TraceID = string(obs.NewTraceID())
	}
	var info RunInfo
	for {
		sub, err := c.Submit(ctx, req)
		if err != nil {
			return nil, info, err
		}
		info.JobID, info.Member, info.Cached = sub.ID, c.addr(), sub.Cached
		st, err := c.Wait(ctx, sub.ID)
		info.Status = st
		resubmit := false
		switch {
		case err != nil:
			var ue *url.Error
			if !errors.As(err, &ue) {
				return nil, info, err
			}
			resubmit = true // member died mid-poll; the result lives in the ring
		case st.State == StateCanceled && st.HandedOff:
			resubmit = true
			info.HandedOff = true // drain handed the job to a peer
		}
		if resubmit {
			if info.Resubmits >= c.MaxRetries {
				return nil, info, fmt.Errorf("service: job %s lost after %d resubmits", sub.ID, info.Resubmits)
			}
			info.Resubmits++
			c.advance()
			if c.Logger != nil {
				c.Logger.LogAttrs(ctx, slog.LevelWarn, "client.resubmit",
					slog.Int(logx.KeyAttempt, info.Resubmits),
					slog.String(logx.KeyTrace, req.TraceID),
					slog.String(logx.KeyJob, sub.ID))
			}
			continue
		}
		if st.State != StateDone {
			return nil, info, fmt.Errorf("service: job %s %s: %s", st.ID, st.State, st.Error)
		}
		if st.Cached {
			info.Cached = true
		}
		data, err := c.ResultBytes(ctx, sub.ID)
		return data, info, err
	}
}

// Sweep posts a bulk corner × load × seed matrix to POST /v1/sweep and
// streams the response: fn is called once per JSON line as it arrives
// (cells in completion order, then the EOF summary line). A non-nil
// error from fn aborts the stream and is returned verbatim, so a
// caller can stop early without draining the sweep.
func (c *Client) Sweep(ctx context.Context, sw SweepRequest, fn func(SweepLine) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	body, err := json.Marshal(sw)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.addr()+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if sw.Base.TraceID != "" {
		req.Header.Set(TraceIDHeader, sw.Base.TraceID)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		ae := &APIError{Status: resp.StatusCode, TraceID: resp.Header.Get(TraceIDHeader)}
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			ae.Kind, ae.Msg = he.Kind, he.Error
		} else {
			ae.Msg = strings.TrimSpace(string(data))
		}
		return ae
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var line SweepLine
		if err := dec.Decode(&line); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if err := fn(line); err != nil {
			return err
		}
		if line.EOF {
			return nil
		}
	}
}
