package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"opera/internal/obs/logx"
)

// Client talks to a running operad over its HTTP API. It is the same
// request encoding the server decodes, so cmd/opera -remote and any
// other caller share one wire contract.
type Client struct {
	// BaseURL is the server address, e.g. "http://127.0.0.1:9130".
	BaseURL string
	// HTTPClient overrides the transport; nil uses a client with a
	// sane overall timeout disabled (job waits are long-poll loops).
	HTTPClient *http.Client
	// MaxRetries bounds how many times Submit retries a queue-full
	// (429) rejection before surfacing the error; each retry honors
	// the server's Retry-After with jittered exponential backoff and
	// respects the submission context. 0 disables retries (NewClient
	// sets 3).
	MaxRetries int
	// Logger, when non-nil, records each retry as a "client.retry"
	// event (attempt number, wait, trace ID).
	Logger *slog.Logger
}

// NewClient builds a client for addr ("host:port" or full URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimRight(addr, "/"), MaxRetries: 3}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// APIError is a non-2xx reply, carrying the server's structured body.
type APIError struct {
	Status int
	Kind   string
	Msg    string
	// TraceID is the submission's trace ID when the server attached
	// one (every submission outcome carries it, rejections included).
	TraceID string
	// RetryAfter is the parsed Retry-After delay on a 429, zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("service: %s (%s, HTTP %d)", e.Msg, e.Kind, e.Status)
	}
	return fmt.Sprintf("service: %s (HTTP %d)", e.Msg, e.Status)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &APIError{Status: resp.StatusCode, TraceID: resp.Header.Get(TraceIDHeader)}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			ae.RetryAfter = time.Duration(ra) * time.Second
		}
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			ae.Kind, ae.Msg = he.Kind, he.Error
			if ae.TraceID == "" {
				ae.TraceID = he.Trace
			}
			return ae
		}
		ae.Msg = strings.TrimSpace(string(data))
		return ae
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts one job. A queue-full rejection (429) is retried up to
// MaxRetries times, honoring the server's Retry-After with jittered
// exponential backoff; the submission context bounds the whole loop.
// Retrying with the same trace ID is safe — the server's telemetry
// joins the attempts into one logical request.
func (c *Client) Submit(ctx context.Context, req Request) (SubmitResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var resp SubmitResponse
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &resp)
		var ae *APIError
		if err == nil || attempt >= c.MaxRetries ||
			!errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
			return resp, err
		}
		// Keep the server-assigned trace ID across attempts so the
		// retries share one trace.
		if req.TraceID == "" {
			req.TraceID = ae.TraceID
		}
		wait := ae.RetryAfter
		if wait <= 0 {
			wait = 100 * time.Millisecond << attempt
		}
		// Full jitter on top of the base wait desynchronizes clients
		// that were rejected by the same full queue.
		wait += time.Duration(rand.Int63n(int64(wait) + 1))
		if c.Logger != nil {
			c.Logger.LogAttrs(ctx, slog.LevelWarn, "client.retry",
				slog.Int(logx.KeyAttempt, attempt+1),
				slog.String(logx.KeyTrace, req.TraceID),
				slog.Float64(logx.KeyMS, float64(wait)/float64(time.Millisecond)),
				slog.String(logx.KeyError, ae.Msg))
		}
		select {
		case <-ctx.Done():
			return resp, ctx.Err()
		case <-time.After(wait):
		}
	}
}

// Status fetches a job's state.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	delay := 50 * time.Millisecond
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// Result fetches a finished job's decoded result.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// ResultBytes fetches the raw stored result payload (byte-identical
// across identical requests — the cache serves stored bytes verbatim).
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			return nil, &APIError{Status: resp.StatusCode, Kind: he.Kind, Msg: he.Error}
		}
		return nil, &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// Run submits a job and waits for its result in one call.
func (c *Client) Run(ctx context.Context, req Request) (*JobResult, JobStatus, error) {
	sub, err := c.Submit(ctx, req)
	if err != nil {
		return nil, JobStatus{}, err
	}
	st, err := c.Wait(ctx, sub.ID)
	if err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("service: job %s %s: %s", st.ID, st.State, st.Error)
	}
	jr, err := c.Result(ctx, sub.ID)
	return jr, st, err
}
