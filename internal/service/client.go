package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a running operad over its HTTP API. It is the same
// request encoding the server decodes, so cmd/opera -remote and any
// other caller share one wire contract.
type Client struct {
	// BaseURL is the server address, e.g. "http://127.0.0.1:9130".
	BaseURL string
	// HTTPClient overrides the transport; nil uses a client with a
	// sane overall timeout disabled (job waits are long-poll loops).
	HTTPClient *http.Client
}

// NewClient builds a client for addr ("host:port" or full URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimRight(addr, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// APIError is a non-2xx reply, carrying the server's structured body.
type APIError struct {
	Status int
	Kind   string
	Msg    string
}

func (e *APIError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("service: %s (%s, HTTP %d)", e.Msg, e.Kind, e.Status)
	}
	return fmt.Sprintf("service: %s (HTTP %d)", e.Msg, e.Status)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			return &APIError{Status: resp.StatusCode, Kind: he.Kind, Msg: he.Error}
		}
		return &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts one job.
func (c *Client) Submit(ctx context.Context, req Request) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &resp)
	return resp, err
}

// Status fetches a job's state.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls a job until it reaches a terminal state or ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	delay := 50 * time.Millisecond
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// Result fetches a finished job's decoded result.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	data, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// ResultBytes fetches the raw stored result payload (byte-identical
// across identical requests — the cache serves stored bytes verbatim).
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var he httpError
		if json.Unmarshal(data, &he) == nil && he.Error != "" {
			return nil, &APIError{Status: resp.StatusCode, Kind: he.Kind, Msg: he.Error}
		}
		return nil, &APIError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return data, nil
}

// Run submits a job and waits for its result in one call.
func (c *Client) Run(ctx context.Context, req Request) (*JobResult, JobStatus, error) {
	sub, err := c.Submit(ctx, req)
	if err != nil {
		return nil, JobStatus{}, err
	}
	st, err := c.Wait(ctx, sub.ID)
	if err != nil {
		return nil, st, err
	}
	if st.State != StateDone {
		return nil, st, fmt.Errorf("service: job %s %s: %s", st.ID, st.State, st.Error)
	}
	jr, err := c.Result(ctx, sub.ID)
	return jr, st, err
}
