package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"opera/internal/grid"
	"opera/internal/service/inject"
)

// TestChaosSoak runs a seeded fault schedule against a live server —
// journal writes dropped, cache stores failing, workers panicking or
// hanging, checkpoint renames crashed — and checks the service-level
// invariants the fault tolerance exists to uphold:
//
//  1. No lost jobs: every admitted submission reaches a terminal
//     state; no waiter hangs.
//  2. No duplicate cache entries: at most one entry per content key.
//  3. The server survives: once faults stop, a clean job succeeds.
//  4. A restart on the same journal replays the survivors and they
//     all terminate too.
//
// The schedule is deterministic per seed (see inject's contract), so
// a failure reproduces with the logged seed.
func TestChaosSoak(t *testing.T) {
	const seed = 20260808
	t.Logf("chaos seed %d", seed)
	restore := inject.Enable(&inject.Faults{
		Seed:                  seed,
		JournalWriteFail:      0.15,
		CacheStoreFail:        0.25,
		WorkerPanic:           0.10,
		ArtificialStall:       0.08,
		CrashBeforeCheckpoint: 0.30,
	})
	t.Cleanup(restore)

	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal")
	opts := Options{
		ConcurrentJobs:  2,
		QueueDepth:      64,
		JournalPath:     journalPath,
		CheckpointDir:   filepath.Join(dir, "ckpt"),
		CheckpointEvery: 8,
		StallTimeout:    100 * time.Millisecond,
		DefaultTimeout:  30 * time.Second,
	}
	s := newTestServer(t, opts)

	// A mix of workloads: repeated keys exercise the cache and
	// coalescing under store failures; MC jobs exercise checkpoints
	// under crashed renames; distinct NoCache jobs keep the queue busy.
	var ids []string
	admitted := 0
	for i := 0; i < 24; i++ {
		var req Request
		switch i % 4 {
		case 0:
			req = quickRequest(int64(i % 3)) // repeats: cache + coalesce paths
		case 1:
			req = mcRequest(int64(i), 64)
		case 2:
			req = quickRequest(int64(100 + i))
			req.NoCache = true
		default:
			req = quickRequest(int64(i % 5))
		}
		sub, err := s.Submit(req)
		if err != nil {
			// Queue-full and draining rejections are legitimate
			// outcomes, not lost jobs.
			continue
		}
		admitted++
		ids = append(ids, sub.ID)
	}
	if admitted == 0 {
		t.Fatal("no job was admitted")
	}

	// Invariant 1: every admitted job terminates.
	terminal := map[string]bool{StateDone: true, StateFailed: true, StateCanceled: true}
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := s.Wait(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("job %s never terminated: %v", id, err)
		}
		if !terminal[st.State] {
			t.Fatalf("job %s in non-terminal state %s after wait", id, st.State)
		}
	}

	// Invariant 2: the cache holds at most one entry per distinct key
	// (Cache.Len counts entries; keys are content hashes, so duplicates
	// would double-count).
	keys := map[string]bool{}
	for _, st := range s.List() {
		keys[st.Key] = true
	}
	if got := s.cache.Len(); got > len(keys) {
		t.Fatalf("cache holds %d entries for %d distinct keys", got, len(keys))
	}

	// Invariant 3: the server still works once the weather clears.
	restore()
	clean, err := s.Submit(quickRequest(999))
	if err != nil {
		t.Fatalf("post-chaos submission rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	st, err := s.Wait(ctx, clean.ID)
	cancel()
	if err != nil || st.State != StateDone {
		t.Fatalf("post-chaos job state %s err %v, want done", st.State, err)
	}

	// Invariant 4: restart on the same journal; replayed survivors
	// (jobs whose end record was dropped by the journal faults) must
	// all run to termination under a clean sky.
	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	s.Shutdown(sctx)
	scancel()
	s2 := newTestServer(t, opts)
	deadline := time.Now().Add(60 * time.Second)
	for {
		allDone := true
		for _, st := range s2.List() {
			if !terminal[st.State] {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			var stuck []string
			for _, st := range s2.List() {
				if !terminal[st.State] {
					stuck = append(stuck, fmt.Sprintf("%s=%s", st.ID, st.State))
				}
			}
			t.Fatalf("replayed jobs stuck after restart: %v", stuck)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosSoakCluster runs the peer protocols under fire: two
// peer-linked shards with peeks timing out and handoffs crashing, one
// shard drained mid-flight. The cluster invariants:
//
//  1. Every admitted job terminates — a crashed handoff degrades to a
//     local solve during drain, never a lost job.
//  2. A job the drained shard handed off is completable on the peer:
//     resubmitting its request there reaches done with the same key.
//  3. Peek failures are strictly misses: submissions still succeed.
func TestChaosSoakCluster(t *testing.T) {
	const seed = 20260809
	t.Logf("cluster chaos seed %d", seed)
	restore := inject.Enable(&inject.Faults{
		Seed:            seed,
		PeerPeekTimeout: 0.40,
		HandoffCrash:    0.35,
		CacheStoreFail:  0.10,
	})
	t.Cleanup(restore)

	opts := Options{
		ConcurrentJobs: 1,
		QueueDepth:     64,
		CacheBytes:     32 << 20,
		DefaultTimeout: 60 * time.Second,
	}
	a := newTestServer(t, opts)
	b := newTestServer(t, opts)
	ha := httptest.NewServer(a.Handler())
	hb := httptest.NewServer(b.Handler())
	t.Cleanup(ha.Close)
	t.Cleanup(hb.Close)
	a.SetPeers(ha.URL, []string{ha.URL, hb.URL})
	b.SetPeers(hb.URL, []string{ha.URL, hb.URL})

	// Queue work on A: a slow job holds the single worker so the rest
	// sit in the queue for the drain to hand off; repeated keys keep
	// the peek path busy under the injected timeouts.
	slowSpec := grid.DefaultSpec(64, 500)
	slow, err := a.Submit(Request{Grid: &slowSpec, Steps: 4000, Step: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	var queued []SubmitResponse
	for i := 0; i < 10; i++ {
		sub, err := a.Submit(quickRequest(int64(200 + i%6)))
		if err != nil {
			continue
		}
		if sub.ID != slow.ID {
			queued = append(queued, sub)
		}
	}
	if len(queued) == 0 {
		t.Fatal("nothing queued behind the slow job")
	}

	// Drain A mid-flight: queued jobs hand off to B (or, when the
	// injected crash fires, solve locally before exit).
	dctx, dcancel := context.WithTimeout(context.Background(), 90*time.Second)
	if err := a.Shutdown(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	dcancel()

	terminal := map[string]bool{StateDone: true, StateFailed: true, StateCanceled: true}
	handedOff := 0
	seen := map[string]bool{} // coalesced submissions repeat a job ID
	for _, sub := range queued {
		if seen[sub.ID] {
			continue
		}
		seen[sub.ID] = true
		st, err := a.Status(sub.ID)
		if err != nil {
			t.Fatalf("status %s: %v", sub.ID, err)
		}
		if !terminal[st.State] {
			t.Fatalf("job %s not terminal after drain: %s", sub.ID, st.State)
		}
		if st.HandedOff {
			handedOff++
			if st.Peer != hb.URL {
				t.Errorf("job %s handed to %q, want %q", sub.ID, st.Peer, hb.URL)
			}
		} else if st.State == StateCanceled {
			t.Errorf("job %s canceled without handoff during peer-mode drain", sub.ID)
		}
	}
	if got := a.reg.Counter("service.handoff_jobs_total").Value(); int(got) != handedOff {
		t.Errorf("handoff counter %d != %d handed-off jobs", got, handedOff)
	}
	t.Logf("drain handed off %d of %d queued jobs (crash fault degraded the rest to local solves)",
		handedOff, len(queued))

	// Invariant 2: every handed-off key reaches done on B — resubmit
	// the same requests there and wait.
	for i := 0; i < 10; i++ {
		req := quickRequest(int64(200 + i%6))
		sub, err := b.Submit(req)
		if err != nil {
			t.Fatalf("peer submission rejected: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := b.Wait(ctx, sub.ID)
		cancel()
		if err != nil || st.State != StateDone {
			t.Fatalf("handed-off key %s on peer: state %s err %v", sub.Key, st.State, err)
		}
	}

	// Invariant 3: B keeps serving under peek faults (A is gone, so
	// every peek against it fails — strictly misses).
	clean, err := b.Submit(quickRequest(999))
	if err != nil {
		t.Fatalf("post-drain submission rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	st, err := b.Wait(ctx, clean.ID)
	cancel()
	if err != nil || st.State != StateDone {
		t.Fatalf("post-drain job state %s err %v, want done", st.State, err)
	}
}

// TestChaosScheduleDeterministic pins the inject contract the soak
// relies on: the n-th call at a site fires identically for the same
// seed, and differently (with overwhelming likelihood) for another.
func TestChaosScheduleDeterministic(t *testing.T) {
	trace := func(seed int64) string {
		f := &inject.Faults{Seed: seed, JournalWriteFail: 0.3, CacheStoreFail: 0.3}
		restore := inject.Enable(f)
		defer restore()
		b := make([]byte, 0, 128)
		for i := 0; i < 64; i++ {
			if inject.JournalWrite() {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
			if inject.CacheStore() {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
		}
		return string(b)
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatal("same seed produced different schedules")
	}
	if c := trace(43); c == a {
		t.Fatal("different seeds produced the same schedule")
	}
}
