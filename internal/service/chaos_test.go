package service

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"opera/internal/service/inject"
)

// TestChaosSoak runs a seeded fault schedule against a live server —
// journal writes dropped, cache stores failing, workers panicking or
// hanging, checkpoint renames crashed — and checks the service-level
// invariants the fault tolerance exists to uphold:
//
//  1. No lost jobs: every admitted submission reaches a terminal
//     state; no waiter hangs.
//  2. No duplicate cache entries: at most one entry per content key.
//  3. The server survives: once faults stop, a clean job succeeds.
//  4. A restart on the same journal replays the survivors and they
//     all terminate too.
//
// The schedule is deterministic per seed (see inject's contract), so
// a failure reproduces with the logged seed.
func TestChaosSoak(t *testing.T) {
	const seed = 20260808
	t.Logf("chaos seed %d", seed)
	restore := inject.Enable(&inject.Faults{
		Seed:                  seed,
		JournalWriteFail:      0.15,
		CacheStoreFail:        0.25,
		WorkerPanic:           0.10,
		ArtificialStall:       0.08,
		CrashBeforeCheckpoint: 0.30,
	})
	t.Cleanup(restore)

	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal")
	opts := Options{
		ConcurrentJobs:  2,
		QueueDepth:      64,
		JournalPath:     journalPath,
		CheckpointDir:   filepath.Join(dir, "ckpt"),
		CheckpointEvery: 8,
		StallTimeout:    100 * time.Millisecond,
		DefaultTimeout:  30 * time.Second,
	}
	s := newTestServer(t, opts)

	// A mix of workloads: repeated keys exercise the cache and
	// coalescing under store failures; MC jobs exercise checkpoints
	// under crashed renames; distinct NoCache jobs keep the queue busy.
	var ids []string
	admitted := 0
	for i := 0; i < 24; i++ {
		var req Request
		switch i % 4 {
		case 0:
			req = quickRequest(int64(i % 3)) // repeats: cache + coalesce paths
		case 1:
			req = mcRequest(int64(i), 64)
		case 2:
			req = quickRequest(int64(100 + i))
			req.NoCache = true
		default:
			req = quickRequest(int64(i % 5))
		}
		sub, err := s.Submit(req)
		if err != nil {
			// Queue-full and draining rejections are legitimate
			// outcomes, not lost jobs.
			continue
		}
		admitted++
		ids = append(ids, sub.ID)
	}
	if admitted == 0 {
		t.Fatal("no job was admitted")
	}

	// Invariant 1: every admitted job terminates.
	terminal := map[string]bool{StateDone: true, StateFailed: true, StateCanceled: true}
	for _, id := range ids {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		st, err := s.Wait(ctx, id)
		cancel()
		if err != nil {
			t.Fatalf("job %s never terminated: %v", id, err)
		}
		if !terminal[st.State] {
			t.Fatalf("job %s in non-terminal state %s after wait", id, st.State)
		}
	}

	// Invariant 2: the cache holds at most one entry per distinct key
	// (Cache.Len counts entries; keys are content hashes, so duplicates
	// would double-count).
	keys := map[string]bool{}
	for _, st := range s.List() {
		keys[st.Key] = true
	}
	if got := s.cache.Len(); got > len(keys) {
		t.Fatalf("cache holds %d entries for %d distinct keys", got, len(keys))
	}

	// Invariant 3: the server still works once the weather clears.
	restore()
	clean, err := s.Submit(quickRequest(999))
	if err != nil {
		t.Fatalf("post-chaos submission rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	st, err := s.Wait(ctx, clean.ID)
	cancel()
	if err != nil || st.State != StateDone {
		t.Fatalf("post-chaos job state %s err %v, want done", st.State, err)
	}

	// Invariant 4: restart on the same journal; replayed survivors
	// (jobs whose end record was dropped by the journal faults) must
	// all run to termination under a clean sky.
	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	s.Shutdown(sctx)
	scancel()
	s2 := newTestServer(t, opts)
	deadline := time.Now().Add(60 * time.Second)
	for {
		allDone := true
		for _, st := range s2.List() {
			if !terminal[st.State] {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if time.Now().After(deadline) {
			var stuck []string
			for _, st := range s2.List() {
				if !terminal[st.State] {
					stuck = append(stuck, fmt.Sprintf("%s=%s", st.ID, st.State))
				}
			}
			t.Fatalf("replayed jobs stuck after restart: %v", stuck)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosScheduleDeterministic pins the inject contract the soak
// relies on: the n-th call at a site fires identically for the same
// seed, and differently (with overwhelming likelihood) for another.
func TestChaosScheduleDeterministic(t *testing.T) {
	trace := func(seed int64) string {
		f := &inject.Faults{Seed: seed, JournalWriteFail: 0.3, CacheStoreFail: 0.3}
		restore := inject.Enable(f)
		defer restore()
		b := make([]byte, 0, 128)
		for i := 0; i < 64; i++ {
			if inject.JournalWrite() {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
			if inject.CacheStore() {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
		}
		return string(b)
	}
	a, b := trace(42), trace(42)
	if a != b {
		t.Fatal("same seed produced different schedules")
	}
	if c := trace(43); c == a {
		t.Fatal("different seeds produced the same schedule")
	}
}
