package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"opera/internal/obs"
)

// TestCacheConcurrentPutGetEvict hammers one small-budget cache from
// many goroutines so Put, Get, Peek and LRU eviction interleave. The
// invariants: no torn reads (a Get returns exactly the bytes some Put
// stored for that key), the byte budget holds after the dust settles,
// and the hit/miss counters account for every Get. Run under -race
// this is the cache's concurrency proof.
func TestCacheConcurrentPutGetEvict(t *testing.T) {
	reg := obs.NewRegistry()
	// Budget fits ~8 of the 64-byte entries, so eviction churns
	// constantly while 32 goroutines fight over 16 keys.
	cache := NewCache(8*80, reg)
	payload := func(k int) []byte {
		b := make([]byte, 64)
		copy(b, fmt.Sprintf("key-%02d", k))
		return b
	}
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := (g*7 + i) % 16
				key := fmt.Sprintf("key-%02d", k)
				switch i % 3 {
				case 0:
					cache.Put(key, payload(k))
				case 1:
					if data, ok := cache.Get(key); ok {
						if string(data[:6]) != key {
							wrong.Add(1)
						}
					}
				default:
					if data, ok := cache.Peek(key); ok {
						if string(data[:6]) != key {
							wrong.Add(1)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d reads returned bytes from the wrong key", n)
	}
	if cache.Bytes() > 8*80 {
		t.Errorf("cache over budget after churn: %d bytes", cache.Bytes())
	}
	if cache.Len() > 8*80/64 {
		t.Errorf("cache holds %d entries, budget admits at most %d", cache.Len(), 8*80/64)
	}
	hits := reg.Counter("service.cache_hits_total").Value()
	misses := reg.Counter("service.cache_misses_total").Value()
	evictions := reg.Counter("service.cache_evictions_total").Value()
	if hits+misses == 0 {
		t.Error("no Get was accounted in hit/miss counters")
	}
	if evictions == 0 {
		t.Error("no eviction under a budget 2x smaller than the working set")
	}
}

// TestCacheConcurrentSameKey: concurrent Puts of different payloads
// under one key must leave the cache serving one of them intact, and
// the budget accounting must not drift when entries are replaced.
func TestCacheConcurrentSameKey(t *testing.T) {
	reg := obs.NewRegistry()
	cache := NewCache(1<<20, reg)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			data := make([]byte, 128+g)
			for i := range data {
				data[i] = byte(g)
			}
			for i := 0; i < 200; i++ {
				cache.Put("k", data)
				cache.Get("k")
			}
		}(g)
	}
	wg.Wait()
	data, ok := cache.Get("k")
	if !ok {
		t.Fatal("key lost after concurrent puts")
	}
	for _, b := range data {
		if b != data[0] {
			t.Fatal("stored bytes are a torn mix of two writers")
		}
	}
	if cache.Len() != 1 {
		t.Errorf("cache holds %d entries for one key", cache.Len())
	}
	if got := cache.Bytes(); got != int64(len(data)) {
		t.Errorf("budget accounting drifted: %d bytes tracked, entry is %d", got, len(data))
	}
}
