package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"opera/internal/cancel"
	"opera/internal/checkpoint"
	"opera/internal/core"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/montecarlo"
	"opera/internal/netlist"
	"opera/internal/numguard"
	"opera/internal/obs"
	"opera/internal/obs/logx"
	"opera/internal/parallel"
	"opera/internal/service/inject"
)

// Admission and lifecycle errors (the HTTP layer maps these to status
// codes: 429, 503, 404, 409).
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining rejects submissions during graceful shutdown (503).
	ErrDraining = errors.New("service: server draining")
	// ErrUnknownJob reports a job id the server has never seen (404).
	ErrUnknownJob = errors.New("service: unknown job")
	// ErrNotFinished reports a result fetch on an unfinished job (409).
	ErrNotFinished = errors.New("service: job not finished")
)

// Cancellation causes. Every path that cancels a job context does so
// with a discriminated cause, read back via context.Cause: an expired
// deadline yields context.DeadlineExceeded, a drain yields
// errCauseDrain, an explicit cancel errCauseUser, and a stall kill a
// *StallError. The cause decides a canceled MC job's fate — deadline
// and drain may return a degraded partial result; user cancels and
// stalls never do.
var (
	errCauseUser  = errors.New("service: canceled by request")
	errCauseDrain = errors.New("service: canceled by shutdown")
	// errInjectedCrash is the chaos harness's simulated process death
	// between a checkpoint's tmp write and its rename.
	errInjectedCrash = errors.New("service: injected crash before checkpoint rename")
)

// ckptKindMC tags Monte Carlo snapshots in the checkpoint store.
const ckptKindMC = "mc"

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Options configures a Server.
type Options struct {
	// QueueDepth bounds how many jobs may wait (both priorities
	// together); submissions beyond it are rejected with ErrQueueFull.
	// Default 64.
	QueueDepth int
	// ConcurrentJobs is the number of jobs executing at once. Default
	// 2 (each job parallelizes internally via SolverWorkers).
	ConcurrentJobs int
	// SolverWorkers caps each job's internal worker pools (results are
	// identical for any value); 0 = GOMAXPROCS split across the
	// concurrent jobs.
	SolverWorkers int
	// CacheBytes is the result cache budget; <= 0 disables caching.
	// Default 256 MiB.
	CacheBytes int64
	// Limits bounds uploaded netlists and generated grids. The zero
	// value means netlist.DefaultLimits.
	Limits netlist.Limits
	// DefaultTimeout bounds jobs that do not carry their own
	// TimeoutMS; 0 means no deadline.
	DefaultTimeout time.Duration
	// JournalPath, when non-empty, appends a JSON journal of
	// submissions and completions; on construction, submitted-but-
	// unfinished jobs from a previous process are re-enqueued.
	JournalPath string
	// Registry receives the service metrics (queue depth, job counts,
	// cache counters). A nil Registry allocates a private one.
	Registry *obs.Registry
	// CollectTrace attaches each job's obs span tree and metrics
	// snapshot to its result payload.
	CollectTrace bool
	// Logger receives structured job-lifecycle events (the logx
	// schema: the message is the event name, attributes use the
	// logx.Key* names, every line carries the job and trace IDs). Nil
	// disables lifecycle logging entirely — the disabled path adds no
	// allocations per job.
	Logger *slog.Logger
	// FlightJobs sizes the flight recorder: the last K finished jobs,
	// the K slowest and the last K failed are retained with their span
	// trees, log tails and numguard summaries, served at /debug/flight.
	// 0 disables the recorder (and the per-job tracing it implies).
	FlightJobs int
	// CheckpointDir, when non-empty, persists periodic Monte Carlo
	// snapshots (atomic write-tmp-then-rename, keyed by the job's
	// content key). A job whose key has a snapshot resumes from it —
	// bit-identical to an uninterrupted run at any worker count — and
	// the snapshot is deleted only on full, non-degraded success.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in samples (rounded up to
	// the solver's chunk grid). Default 64 when CheckpointDir is set.
	CheckpointEvery int
	// StallTimeout, when positive, arms a per-job watchdog: a running
	// job whose progress counter (marked at every step/sample/basis
	// boundary) does not move for this long is canceled with a
	// *StallError and fails. 0 disables the watchdog.
	StallTimeout time.Duration
	// SLOProfileAfter, when positive, arms an evidence collector: a job
	// still running after this long gets a heap snapshot and a short
	// CPU profile of the live process captured into a bounded ring,
	// keyed by the job's trace ID and served at /debug/profiles. The
	// capture fires while the slow job is still executing, so the CPU
	// window actually samples the offending solve. 0 disables capture.
	SLOProfileAfter time.Duration
	// ProfileRingSize bounds the capture ring (a cpu+heap pair is two
	// entries). Default 16 when SLOProfileAfter is set.
	ProfileRingSize int
	// Peers lists the other shards' base URLs for cluster peer mode:
	// on a local cache miss the shard peeks each peer's /cache/{key}
	// (bounded by PeekTimeout, miss-tolerant) before solving, and on
	// drain it hands queued jobs to their ring owners instead of merely
	// finishing them. Empty disables peer mode. SetPeers can change the
	// list later.
	Peers []string
	// SelfURL is this shard's own base URL; it is filtered out of
	// Peers so a shared symmetric peer list never makes a shard peek
	// itself.
	SelfURL string
	// PeekTimeout bounds one peer cache lookup on the submission path.
	// 0 means 150ms.
	PeekTimeout time.Duration
	// SpanRingBytes budgets the span-export ring served at
	// /debug/spans/{trace}: recent jobs' span fragments (job root, queue
	// wait, peer peeks, the solver's phase tree) retained per trace ID
	// with drop-oldest eviction, the shard-side half of the cluster's
	// trace stitching. <= 0 disables retention entirely (the span paths
	// then cost one nil check).
	SpanRingBytes int64
}

func (o Options) withDefaults() Options {
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.ConcurrentJobs == 0 {
		o.ConcurrentJobs = 2
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.Limits == (netlist.Limits{}) {
		o.Limits = netlist.DefaultLimits()
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.SolverWorkers == 0 {
		// Split the machine across concurrent jobs so two jobs do not
		// oversubscribe cores; at least one worker each.
		o.SolverWorkers = runtime.GOMAXPROCS(0) / o.ConcurrentJobs
		if o.SolverWorkers < 1 {
			o.SolverWorkers = 1
		}
	}
	if o.CheckpointDir != "" && o.CheckpointEvery == 0 {
		o.CheckpointEvery = 64
	}
	if o.SLOProfileAfter > 0 && o.ProfileRingSize == 0 {
		o.ProfileRingSize = 16
	}
	return o
}

// job is the server-side state of one submission.
type job struct {
	id       string
	key      string
	traceID  string
	req      Request
	state    string
	cached   bool
	degraded bool
	// handedOff marks a queued job a draining shard sent to peer (a
	// ring member's URL) instead of solving; the local record is
	// terminal StateCanceled with ErrHandedOff.
	handedOff bool
	peer      string
	result    []byte
	err       error
	diag      *numguard.Diagnosis
	ctx       context.Context
	// cancelCause cancels ctx with a discriminated cause (user cancel,
	// stall, drain); stopTimer releases the deadline timer when the
	// request carried one.
	cancelCause context.CancelCauseFunc
	stopTimer   context.CancelFunc
	// progress is marked by every solve loop the job runs; the stall
	// watchdog polls it to tell slow from hung.
	progress *obs.Progress

	// Telemetry (all nil/zero when disabled — the hot path guards on
	// log/tracer nil checks only).
	log         *slog.Logger  // lifecycle logger with job+trace attrs
	tail        *logx.Tail    // per-job log tail for the flight entry
	tracer      *obs.Tracer   // per-job span tree (flight or CollectTrace)
	guard       *GuardSummary // numguard view of a successful solve
	health      *NumHealth    // numerical-health record of the solve
	escalations int           // ladder transitions during the solve

	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{}
}

// event logs one lifecycle event. Call sites must guard with
// `j.log != nil` before building attributes so the disabled path
// allocates nothing.
func (j *job) event(msg string, attrs ...slog.Attr) {
	j.log.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
}

// SubmitResponse is the wire reply to a submission.
type SubmitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// TraceID identifies this submission in the server's telemetry:
	// the caller's ID when one was supplied, a freshly minted one
	// otherwise. Set on every outcome, including rejections, so a
	// retried request can be joined to its eventual run. A coalesced
	// submission gets the in-flight job's ID — the trace that will
	// actually run.
	TraceID string `json:"trace_id,omitempty"`
	// Cached marks a submission served entirely from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a submission attached to an in-flight job with
	// the same content key (one solve will serve both).
	Coalesced bool `json:"coalesced,omitempty"`
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	TraceID  string `json:"trace_id,omitempty"`
	State    string `json:"state"`
	Cached   bool   `json:"cached,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
	Canceled bool   `json:"canceled,omitempty"`
	// HandedOff marks a job a draining shard sent to Peer (a ring
	// member's base URL); resubmitting the same request there — or
	// anywhere on the ring — joins the peer's run via cache/coalesce.
	HandedOff bool                `json:"handed_off,omitempty"`
	Peer      string              `json:"peer,omitempty"`
	Diagnosis *numguard.Diagnosis `json:"diagnosis,omitempty"`
	QueuedMS  float64             `json:"queued_ms,omitempty"`
	RunMS     float64             `json:"run_ms,omitempty"`
}

// Server is the analysis service: a bounded two-priority job queue, a
// fixed worker pool, the content-addressed result cache, and the
// drain-aware lifecycle. Construct with New, serve over HTTP with
// Handler, stop with Shutdown.
type Server struct {
	opts   Options
	reg    *obs.Registry
	cache  *Cache
	log    *slog.Logger
	flight *obs.FlightRecorder
	ckpts  *checkpoint.Store // nil without CheckpointDir
	// profiles holds the SLO-breach pprof captures (nil when
	// SLOProfileAfter is unset); served at /debug/profiles.
	profiles *obs.ProfileRing
	// peers is the cluster peer view (nil when peer mode is off);
	// peerHTTP is the shared transport for peeks and handoffs.
	peers    peersPtr
	peerHTTP *http.Client
	// spans retains recent jobs' span-export fragments per trace ID
	// (nil when SpanRingBytes is unset); shardName holds this shard's
	// cluster self-name ("s0", ...) derived by SetPeers, empty when
	// standalone.
	spans     *obs.SpanRing
	shardName atomic.Pointer[string]

	mu          sync.Mutex
	cond        *sync.Cond
	interactive []*job
	batch       []*job
	jobs        map[string]*job
	inflight    map[string]*job // content key → queued/running job
	seq         int64
	draining    bool
	// handingOff parks idle workers during the drain's handoff pass,
	// so a job requeued by a failed handoff still has a worker to
	// solve it (see Shutdown).
	handingOff bool

	workers  sync.WaitGroup
	baseCtx  context.Context
	baseStop context.CancelFunc
	journal  *journal

	mSubmitted, mCompleted, mFailed *obs.Counter
	mCanceled, mRejected, mPanics   *obs.Counter
	mCoalesced, mSolves             *obs.Counter
	mQueueDepth, mRunning           *obs.Gauge
	mJobMS                          *obs.Histogram

	// SLO instrumentation: the queue-wait vs. solve-time split per
	// priority, deadline-miss/cancel/escalation counters, and the
	// queue-age gauge sampled on a ticker (queueSampler).
	mQueueWaitI, mQueueWaitB *obs.Histogram
	mSolveI, mSolveB         *obs.Histogram
	mDeadlineMiss            *obs.Counter
	mSLOCancels              *obs.Counter
	mSLOEscalations          *obs.Counter
	mSLOProfiles             *obs.Counter
	mQueueAge                *obs.Gauge

	// Fault-tolerance instrumentation: checkpoint writes and their
	// failures, jobs resumed from a snapshot, watchdog kills, and jobs
	// finished degraded under deadline/drain pressure.
	mCheckpoints  *obs.Counter
	mCkptFailures *obs.Counter
	mResumes      *obs.Counter
	mStalls       *obs.Counter
	mDegraded     *obs.Counter

	// Cluster peer-mode instrumentation: cross-shard cache peeks
	// (hit/miss/error), results this shard served to peers' peeks, and
	// drain handoffs with their failures.
	mPeekHits     *obs.Counter
	mPeekMisses   *obs.Counter
	mPeekErrors   *obs.Counter
	mPeerServes   *obs.Counter
	mHandoffs     *obs.Counter
	mHandoffFails *obs.Counter
}

// New builds and starts a server: the worker pool is live and, when a
// journal is configured, unfinished jobs from a previous process are
// re-enqueued before the first submission is accepted.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	ctx, stopCause := context.WithCancelCause(context.Background())
	stop := func() { stopCause(errCauseDrain) }
	s := &Server{
		opts:        opts,
		reg:         opts.Registry,
		cache:       NewCache(opts.CacheBytes, opts.Registry),
		log:         opts.Logger,
		flight:      obs.NewFlightRecorder(opts.FlightJobs),
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		baseCtx:     ctx,
		baseStop:    stop,
		mSubmitted:  opts.Registry.Counter("service.jobs_submitted_total"),
		mCompleted:  opts.Registry.Counter("service.jobs_completed_total"),
		mFailed:     opts.Registry.Counter("service.jobs_failed_total"),
		mCanceled:   opts.Registry.Counter("service.jobs_canceled_total"),
		mRejected:   opts.Registry.Counter("service.jobs_rejected_total"),
		mPanics:     opts.Registry.Counter("service.job_panics_total"),
		mCoalesced:  opts.Registry.Counter("service.jobs_coalesced_total"),
		mSolves:     opts.Registry.Counter("service.solves_total"),
		spans:       obs.NewSpanRing(opts.SpanRingBytes),
		mQueueDepth: opts.Registry.Gauge("service.queue_depth"),
		mRunning:    opts.Registry.Gauge("service.jobs_running"),
		mJobMS:      opts.Registry.Histogram("service.job_ms", obs.MSBuckets),

		mQueueWaitI:     opts.Registry.Histogram("service.queue_wait_ms.interactive", obs.MSBuckets),
		mQueueWaitB:     opts.Registry.Histogram("service.queue_wait_ms.batch", obs.MSBuckets),
		mSolveI:         opts.Registry.Histogram("service.solve_ms.interactive", obs.MSBuckets),
		mSolveB:         opts.Registry.Histogram("service.solve_ms.batch", obs.MSBuckets),
		mDeadlineMiss:   opts.Registry.Counter("service.slo_deadline_misses_total"),
		mSLOCancels:     opts.Registry.Counter("service.slo_cancels_total"),
		mSLOEscalations: opts.Registry.Counter("service.slo_escalations_total"),
		mSLOProfiles:    opts.Registry.Counter("service.slo_profiles_total"),
		mQueueAge:       opts.Registry.Gauge("service.queue_age_ms"),

		mCheckpoints:  opts.Registry.Counter("service.checkpoints_total"),
		mCkptFailures: opts.Registry.Counter("service.checkpoint_failures_total"),
		mResumes:      opts.Registry.Counter("service.resumes_total"),
		mStalls:       opts.Registry.Counter("service.stalls_total"),
		mDegraded:     opts.Registry.Counter("service.jobs_degraded_total"),

		mPeekHits:     opts.Registry.Counter("service.peer_peek_hits_total"),
		mPeekMisses:   opts.Registry.Counter("service.peer_peek_misses_total"),
		mPeekErrors:   opts.Registry.Counter("service.peer_peek_errors_total"),
		mPeerServes:   opts.Registry.Counter("service.cache_peer_serves_total"),
		mHandoffs:     opts.Registry.Counter("service.handoff_jobs_total"),
		mHandoffFails: opts.Registry.Counter("service.handoff_failures_total"),
		peerHTTP:      &http.Client{},
	}
	s.SetPeers(opts.SelfURL, opts.Peers)
	s.cond = sync.NewCond(&s.mu)
	if opts.SLOProfileAfter > 0 {
		s.profiles = obs.NewProfileRing(opts.ProfileRingSize)
	}
	if opts.CheckpointDir != "" {
		var err error
		s.ckpts, err = checkpoint.Open(opts.CheckpointDir)
		if err != nil {
			stop()
			return nil, err
		}
		// The chaos harness's crash point: an injected error here
		// aborts the snapshot after its tmp write, leaving a torn tmp
		// file — exactly what a process death at that instant leaves.
		s.ckpts.BeforeRename = func(string) error {
			if inject.CrashBeforeCheckpoint() {
				return errInjectedCrash
			}
			return nil
		}
	}
	var pending []journalRecord
	if opts.JournalPath != "" {
		var err error
		s.journal, pending, err = openJournal(opts.JournalPath)
		if err != nil {
			stop()
			return nil, err
		}
		if s.journal.warn != nil && s.log != nil {
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "journal.recovered",
				slog.String(logx.KeyError, s.journal.warn.Error()))
		}
	}
	// Recover the queue before workers start so replayed jobs keep
	// their submission order.
	for _, rec := range pending {
		if rec.Req == nil {
			continue
		}
		if _, err := s.enqueueLocked(*rec.Req, rec.ID); err != nil {
			// A journal full of more jobs than the queue holds drops
			// the tail; the journal still records their submission.
			break
		}
	}
	for w := 0; w < opts.ConcurrentJobs; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			s.workerLoop()
		}()
	}
	go s.queueSampler()
	return s, nil
}

// queueSampler refreshes the queue depth and oldest-queued-age gauges
// on a fixed tick, so /metrics shows wait pressure even between
// submissions. It exits when the base context is canceled (Shutdown).
func (s *Server) queueSampler() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			s.mu.Lock()
			depth := len(s.interactive) + len(s.batch)
			age := 0.0
			for _, q := range [][]*job{s.interactive, s.batch} {
				for _, j := range q {
					if a := float64(now.Sub(j.submitted)) / float64(time.Millisecond); a > age {
						age = a
					}
				}
			}
			s.mu.Unlock()
			s.mQueueDepth.Set(float64(depth))
			s.mQueueAge.Set(age)
		}
	}
}

// Flight exposes the flight recorder (nil when disabled) — what the
// HTTP layer serves at /debug/flight.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// Registry exposes the service metrics registry (for /metrics).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Ready reports whether the server accepts submissions (false while
// draining or after shutdown) — the /readyz signal.
func (s *Server) Ready() bool {
	ok, _, _ := s.Readiness()
	return ok
}

// Readiness is the full /readyz signal: whether a submission would be
// admitted right now, a machine-readable reason when it would not
// ("draining", "saturated"), and the current queue depth. Saturation
// is advisory — a saturated server still accepts cache hits and
// coalesced submissions — but it tells a load balancer to prefer
// another replica before the 429s start.
func (s *Server) Readiness() (ok bool, reason string, depth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	depth = len(s.interactive) + len(s.batch)
	if s.draining {
		return false, "draining", depth
	}
	if depth >= s.opts.QueueDepth {
		return false, "saturated", depth
	}
	return true, "", depth
}

// Submit validates, normalizes and admits one request. The fast paths
// never touch the queue: a content-key hit on the result cache returns
// a completed job immediately, and a key matching an in-flight job
// coalesces onto it. In peer mode a local miss additionally peeks the
// ring peers' caches (bounded, miss-tolerant) before committing to a
// solve. Otherwise the job is enqueued under its priority, or rejected
// with ErrQueueFull / ErrDraining.
func (s *Server) Submit(req Request) (SubmitResponse, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		return SubmitResponse{}, err
	}
	if err := s.checkLimits(req); err != nil {
		return SubmitResponse{}, err
	}
	// Every outcome — admitted, coalesced, cached, rejected — carries a
	// trace ID: the caller's (validated above) or a freshly minted one.
	if req.TraceID == "" {
		req.TraceID = string(obs.NewTraceID())
	}
	key := req.Key()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return SubmitResponse{TraceID: req.TraceID}, ErrDraining
	}
	s.mSubmitted.Inc()
	if resp, ok := s.fastPathLocked(req, key); ok {
		s.mu.Unlock()
		return resp, nil
	}
	if !req.NoCache && s.peers.Load() != nil {
		// Local miss, no in-flight twin: peek the ring before paying
		// for a solve. The peek runs outside the server mutex (it
		// blocks for up to PeekTimeout per peer); on a hit the peer's
		// bytes are installed locally and the fast path re-run, so the
		// response is a normal cache hit serving the peer's bytes
		// verbatim. The world may have changed while unlocked — drain,
		// a racing identical submission — so everything is re-checked.
		s.mu.Unlock()
		peekStart := time.Now()
		data, peer := s.peekPeers(key)
		s.recordPeekSpan(req.TraceID, peekStart, peer, data != nil)
		if data != nil {
			s.cache.Put(key, data)
			if s.log != nil {
				s.log.LogAttrs(context.Background(), slog.LevelInfo, "job.peer_hit",
					slog.String(logx.KeyTrace, req.TraceID),
					slog.String(logx.KeyKey, key),
					slog.String(logx.KeyPeer, peer))
			}
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return SubmitResponse{TraceID: req.TraceID}, ErrDraining
		}
		if resp, ok := s.fastPathLocked(req, key); ok {
			s.mu.Unlock()
			return resp, nil
		}
	}
	j, err := s.enqueueLocked(req, "")
	if err != nil {
		if s.log != nil {
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "job.reject",
				slog.String(logx.KeyTrace, req.TraceID),
				slog.String(logx.KeyError, err.Error()),
				slog.Int(logx.KeyDepth, len(s.interactive)+len(s.batch)))
		}
		s.mu.Unlock()
		return SubmitResponse{TraceID: req.TraceID}, err
	}
	if s.journal != nil {
		s.journal.record(journalRecord{Event: journalSubmit, ID: j.id, Key: key, Req: &j.req})
	}
	s.mu.Unlock()
	return SubmitResponse{ID: j.id, Key: key, State: StateQueued, TraceID: j.traceID}, nil
}

// fastPathLocked serves a submission without a solve when possible: a
// result-cache hit returns a completed job, an in-flight twin
// coalesces. Requires s.mu; reports whether it produced a response.
func (s *Server) fastPathLocked(req Request, key string) (SubmitResponse, bool) {
	if req.NoCache {
		return SubmitResponse{}, false
	}
	if data, ok := s.cache.Get(key); ok {
		j := s.newJobLocked(req, key, "")
		j.state = StateDone
		j.cached = true
		j.result = data
		j.finished = j.submitted
		close(j.done)
		if j.log != nil {
			j.event("job.cache_hit", slog.String(logx.KeyKey, key))
		}
		s.flight.Record(obs.FlightEntry{
			TraceID: j.traceID, JobID: j.id, State: StateDone,
			Shard: s.ShardName(), ClusterJobID: s.clusterJobID(j.id), Key: key,
			Analysis: req.Analysis, Priority: req.Priority,
			Cached: true, Submitted: j.submitted, Log: j.tail.Lines(),
		})
		s.recordCachedSpans(j)
		return SubmitResponse{ID: j.id, Key: key, State: StateDone, Cached: true, TraceID: j.traceID}, true
	}
	if prior, ok := s.inflight[key]; ok {
		s.mCoalesced.Inc()
		if s.log != nil {
			s.log.LogAttrs(context.Background(), slog.LevelInfo, "job.coalesce",
				slog.String(logx.KeyTrace, req.TraceID),
				slog.String(logx.KeyOnto, prior.id))
		}
		return SubmitResponse{ID: prior.id, Key: key, State: prior.state, Coalesced: true, TraceID: prior.traceID}, true
	}
	return SubmitResponse{}, false
}

// checkLimits rejects oversized inputs at admission, before they cost
// a queue slot: inline netlist bytes and generator-spec node counts
// are both known up front (the full netlist limits — element counts,
// name lengths — are enforced again by ReadLimited at execution).
func (s *Server) checkLimits(req Request) error {
	if req.Netlist != "" && s.opts.Limits.MaxBytes > 0 {
		if n := int64(len(req.Netlist)); n > s.opts.Limits.MaxBytes {
			return &netlist.LimitError{What: "bytes", Limit: s.opts.Limits.MaxBytes, Got: n}
		}
	}
	if req.Grid != nil && s.opts.Limits.MaxNodes > 0 {
		if n := req.Grid.NumNodes(); n > s.opts.Limits.MaxNodes {
			return &netlist.LimitError{What: "nodes", Limit: int64(s.opts.Limits.MaxNodes), Got: int64(n)}
		}
	}
	return nil
}

// newJobLocked allocates a job record (id auto-assigned when empty)
// and registers it in the job table.
func (s *Server) newJobLocked(req Request, key, id string) *job {
	if id == "" {
		s.seq++
		id = fmt.Sprintf("job-%06d", s.seq)
	} else if n := parseJobSeq(id); n > s.seq {
		s.seq = n
	}
	if req.TraceID == "" {
		// Submit mints for live submissions; this covers journal
		// replays recorded before trace propagation existed.
		req.TraceID = string(obs.NewTraceID())
	}
	j := &job{
		id: id, key: key, traceID: req.TraceID, req: req,
		state:     StateQueued,
		submitted: time.Now(),
		progress:  &obs.Progress{},
		done:      make(chan struct{}),
	}
	// Per-job logger: every line carries the job and trace IDs; with
	// the flight recorder on, lines are teed into the job's bounded
	// tail so the flight entry ships its own log.
	if s.log != nil || s.flight != nil {
		h := logx.Nop().Handler()
		if s.log != nil {
			h = s.log.Handler()
		}
		if s.flight != nil {
			j.tail = logx.NewTail(tailLines)
			h = logx.Tee(h, j.tail.Handler(slog.LevelDebug))
		}
		j.log = slog.New(h).With(
			slog.String(logx.KeyJob, j.id),
			slog.String(logx.KeyTrace, j.traceID))
	}
	s.jobs[id] = j
	return j
}

// tailLines bounds each job's retained log tail in the flight recorder.
const tailLines = 64

// enqueueLocked admits a job to its priority queue.
func (s *Server) enqueueLocked(req Request, id string) (*job, error) {
	if len(s.interactive)+len(s.batch) >= s.opts.QueueDepth {
		s.mRejected.Inc()
		return nil, ErrQueueFull
	}
	key := req.Key()
	j := s.newJobLocked(req, key, id)
	cctx, cause := context.WithCancelCause(s.baseCtx)
	j.cancelCause = cause
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		j.ctx, j.stopTimer = context.WithTimeout(cctx, timeout)
	} else {
		j.ctx = cctx
	}
	if req.Priority == PriorityBatch {
		s.batch = append(s.batch, j)
	} else {
		s.interactive = append(s.interactive, j)
	}
	s.inflight[key] = j
	s.mQueueDepth.Set(float64(len(s.interactive) + len(s.batch)))
	if j.log != nil {
		j.event("job.enqueue",
			slog.String(logx.KeyKey, key),
			slog.String(logx.KeyPriority, j.req.Priority),
			slog.String(logx.KeyAnalysis, j.req.Analysis),
			slog.Int(logx.KeyDepth, len(s.interactive)+len(s.batch)))
	}
	s.cond.Signal()
	return j, nil
}

func parseJobSeq(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// workerLoop claims jobs (interactive before batch) until shutdown.
func (s *Server) workerLoop() {
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextJob blocks until a job is available or the server drains empty.
func (s *Server) nextJob() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.interactive) > 0 {
			j := s.interactive[0]
			s.interactive = s.interactive[1:]
			return s.claimLocked(j)
		}
		if len(s.batch) > 0 {
			j := s.batch[0]
			s.batch = s.batch[1:]
			return s.claimLocked(j)
		}
		if s.draining && !s.handingOff {
			return nil
		}
		s.cond.Wait()
	}
}

func (s *Server) claimLocked(j *job) *job {
	s.mQueueDepth.Set(float64(len(s.interactive) + len(s.batch)))
	j.state = StateRunning
	j.started = time.Now()
	wait := float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	if j.req.Priority == PriorityBatch {
		s.mQueueWaitB.Observe(wait)
	} else {
		s.mQueueWaitI.Observe(wait)
	}
	s.mRunning.Set(float64(s.runningLocked() + 1))
	return j
}

func (s *Server) runningLocked() int {
	n := 0
	for _, j := range s.jobs {
		if j.state == StateRunning {
			n++
		}
	}
	return n
}

// runJob executes one claimed job with panic isolation: a panicking
// solve surfaces as a failed job (via parallel's panic→error capture),
// never as a daemon crash.
func (s *Server) runJob(j *job) {
	// Per-job tracing is on when results embed traces, the flight
	// recorder retains them, or the span ring exports them for cluster
	// stitching; otherwise the solve runs with a nil tracer (every obs
	// call is then a no-op).
	if s.opts.CollectTrace || s.flight != nil || s.spans != nil {
		j.tracer = obs.New("service.job")
		j.tracer.SetTraceID(obs.TraceID(j.traceID))
	}
	if j.log != nil {
		j.event("job.start",
			slog.String(logx.KeyAnalysis, j.req.Analysis),
			slog.String(logx.KeyPriority, j.req.Priority),
			slog.Float64(logx.KeyQueuedMS, float64(j.started.Sub(j.submitted))/float64(time.Millisecond)))
	}
	if s.opts.StallTimeout > 0 {
		go s.watchJob(j)
	}
	if s.opts.SLOProfileAfter > 0 && s.profiles != nil {
		go s.profileOnBreach(j)
	}
	// One actually-executed solve, successful or not (contrast
	// jobs_completed_total, which counts successful terminations only):
	// the counter the cluster federation sums to assert "N submissions,
	// one solve" — cache hits and coalesced twins never reach here.
	s.mSolves.Inc()
	var result []byte
	err := parallel.ForEach(1, 1, func(_, _ int) error {
		var e error
		result, e = s.execute(j)
		return e
	})
	s.finishJob(j, result, err)
}

// profileOnBreach waits out the job's latency objective and, if the
// job is still running when it expires, captures pprof evidence into
// the profile ring under the job's trace ID. The job keeps running —
// capture is observation, not intervention (contrast watchJob, which
// kills). Runs on its own goroutine; Capture blocks for the CPU
// window, which is why this must not run on the worker.
func (s *Server) profileOnBreach(j *job) {
	t := time.NewTimer(s.opts.SLOProfileAfter)
	defer t.Stop()
	select {
	case <-j.done:
		return // finished inside the objective; nothing to capture
	case <-t.C:
	}
	s.mSLOProfiles.Inc()
	reason := fmt.Sprintf("running > %s", s.opts.SLOProfileAfter)
	if j.log != nil {
		j.event("job.slo_profile", slog.String(logx.KeyReason, reason))
	}
	if err := s.profiles.Capture(j.traceID, reason); err != nil && j.log != nil {
		// ErrCaptureBusy (another breach holds the CPU window) still
		// stored the heap snapshot; anything else lost the capture.
		j.event("job.slo_profile_err", slog.String(logx.KeyError, err.Error()))
	}
}

// Profiles returns the SLO-breach capture ring (nil when disabled).
func (s *Server) Profiles() *obs.ProfileRing { return s.profiles }

// finishJob moves a job to its terminal state and releases waiters.
// Terminal telemetry (log events, flight entry) is emitted after the
// server mutex is released.
func (s *Server) finishJob(j *job, result []byte, err error) {
	// Read the cancellation cause before releasing the job's own
	// context resources — our cleanup cancel would overwrite it.
	cause := context.Cause(j.ctx)
	if j.cancelCause != nil {
		j.cancelCause(nil)
	}
	if j.stopTimer != nil {
		j.stopTimer()
	}
	s.mu.Lock()
	j.finished = time.Now()
	runMS := float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	s.mJobMS.Observe(runMS)
	if j.req.Priority == PriorityBatch {
		s.mSolveB.Observe(runMS)
	} else {
		s.mSolveI.Observe(runMS)
	}
	deadline := false
	var stallErr *StallError
	switch {
	case err == nil:
		j.state = StateDone
		j.result = result
		s.mCompleted.Inc()
		s.mSLOEscalations.Add(int64(j.escalations))
		if j.degraded {
			// Degraded results are honest but partial: never cached
			// (a full-budget resubmission must actually run), and the
			// checkpoint stays on disk so that run resumes rather than
			// restarts.
			s.mDegraded.Inc()
		} else {
			if !j.req.NoCache {
				s.cache.Put(j.key, result)
			}
			if s.ckpts != nil {
				s.ckpts.Delete(j.key)
			}
		}
	case errors.Is(err, cancel.ErrCanceled) && errors.As(cause, &stallErr):
		// Watchdog kill: the solve hung. Failed, not canceled — the
		// caller asked for a result and the server could not produce
		// one.
		j.state = StateFailed
		j.err = stallErr
		err = stallErr
		s.mFailed.Inc()
	case errors.Is(err, cancel.ErrCanceled):
		j.state = StateCanceled
		j.err = err
		s.mCanceled.Inc()
		s.mSLOCancels.Inc()
		if errors.Is(err, context.DeadlineExceeded) {
			deadline = true
			s.mDeadlineMiss.Inc()
		}
	default:
		j.state = StateFailed
		j.err = err
		s.mFailed.Inc()
		var pe *parallel.PanicError
		if errors.As(err, &pe) {
			s.mPanics.Inc()
		}
		errors.As(err, &j.diag)
	}
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mRunning.Set(float64(s.runningLocked()))
	if s.journal != nil {
		s.journal.record(journalRecord{Event: journalEnd, ID: j.id, State: j.state})
	}
	state := j.state
	close(j.done)
	s.mu.Unlock()
	s.recordTerminal(j, state, err, deadline)
}

// recordTerminal emits a job's terminal telemetry — the deadline/
// cancel/panic event, the per-phase breakdown derived from the span
// tree, the job.done line, and the flight-recorder entry. It runs
// outside the server mutex, after the job is terminal (no more
// writers touch the job's fields).
func (s *Server) recordTerminal(j *job, state string, err error, deadline bool) {
	if j.log == nil && s.flight == nil && s.spans == nil {
		return
	}
	s.recordJobSpans(j, state)
	if j.log == nil && s.flight == nil {
		return
	}
	queuedEnd := j.started
	if queuedEnd.IsZero() { // canceled while still queued
		queuedEnd = j.finished
	}
	queuedMS := float64(queuedEnd.Sub(j.submitted)) / float64(time.Millisecond)
	runMS := 0.0
	if !j.started.IsZero() {
		runMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	var dump *obs.Dump
	if j.tracer != nil {
		dump = j.tracer.Dump()
	}
	// A stall kill carries the span tree on the error itself, so the
	// structured StallError and the flight entry agree on where the
	// solve was stuck. The job is terminal here — no writer races.
	var se *StallError
	if errors.As(err, &se) {
		se.Trace = dump
	}
	if j.log != nil {
		switch {
		case deadline:
			j.event("job.deadline", slog.Float64(logx.KeyRunMS, runMS))
		case state == StateCanceled:
			j.event("job.cancel", slog.Float64(logx.KeyRunMS, runMS))
		case state == StateFailed:
			var pe *parallel.PanicError
			if errors.As(err, &pe) {
				j.event("job.panic", slog.String(logx.KeyError, pe.Error()))
			}
		}
		if dump != nil {
			// One line per top-level phase of the solve, derived from
			// the span tree at completion.
			for _, sp := range dump.Spans {
				j.event("job.phase",
					slog.String(logx.KeyPhase, sp.Name),
					slog.Float64(logx.KeyMS, sp.DurMS))
			}
		}
		attrs := []slog.Attr{
			slog.String(logx.KeyState, state),
			slog.Float64(logx.KeyQueuedMS, queuedMS),
			slog.Float64(logx.KeyRunMS, runMS),
		}
		if err != nil {
			attrs = append(attrs, slog.String(logx.KeyError, err.Error()))
		}
		j.event("job.done", attrs...)
	}
	if s.flight != nil {
		e := obs.FlightEntry{
			TraceID:      j.traceID,
			JobID:        j.id,
			Shard:        s.ShardName(),
			ClusterJobID: s.clusterJobID(j.id),
			Key:          j.key,
			State:        state,
			Analysis:     j.req.Analysis,
			Priority:     j.req.Priority,
			Degraded:     j.degraded,
			Submitted:    j.submitted,
			QueuedMS:     queuedMS,
			RunMS:        runMS,
			Trace:        dump,
			Log:          j.tail.Lines(),
		}
		if err != nil {
			e.Error = err.Error()
		}
		switch {
		case j.guard != nil:
			e.Guard = j.guard
		case j.diag != nil:
			e.Guard = j.diag
		}
		if j.health != nil {
			e.Health = j.health
		}
		s.flight.Record(e)
	}
}

// execute runs the analysis for one job and encodes the wire result.
func (s *Server) execute(j *job) ([]byte, error) {
	req := j.req
	if inject.PanicPoint() {
		panic("inject: worker panic")
	}
	if inject.StallPoint() {
		// Simulated hang: the worker parks without ever marking
		// progress. Only cancellation — the stall watchdog, a deadline,
		// a drain — releases it, which is exactly what the watchdog
		// exists to guarantee.
		<-j.ctx.Done()
		return nil, cancel.Poll(j.ctx, "inject.stall", -1)
	}
	// The "assemble" phase mirrors the CLI's: netlist parse or grid
	// generation, so the service's span tree carries the same six
	// phases as a local -trace run.
	spA := j.tracer.Start("assemble")
	nl, err := s.buildNetlist(req)
	if err != nil {
		spA.End()
		return nil, err
	}
	spA.SetAttrs(obs.Int("nodes", nl.NumNodes))
	spA.End()
	tr := j.tracer
	ordering, _ := ParseOrdering(req.Ordering)
	workers := req.Workers
	if workers == 0 {
		workers = s.opts.SolverWorkers
	}
	var jr *JobResult
	switch req.Analysis {
	case KindLeakage:
		res, err := core.AnalyzeLeakage(nl, core.LeakageOptions{
			Regions: req.Regions, SigmaLogI: req.SigmaLogI,
			Order: req.Order, Step: req.Step, Steps: req.Steps,
			TrackNodes: req.TrackNodes, Workers: workers,
			Obs: tr, Progress: j.progress, Ctx: j.ctx,
		})
		if err != nil {
			return nil, err
		}
		jr = fromCore(KindLeakage, res)
	case KindMC:
		spec := mna.DefaultSpec()
		if req.Variation != nil {
			spec = *req.Variation
		}
		sys, err := mna.Build(nl, spec)
		if err != nil {
			return nil, err
		}
		jr, err = s.executeMC(j, sys, workers, tr)
		if err != nil {
			return nil, err
		}
	default: // KindOpera
		res, err := core.AnalyzeNetlist(nl, core.Options{
			Order: req.Order, Step: req.Step, Steps: req.Steps,
			Variation: req.Variation, Ordering: ordering,
			TrackNodes: req.TrackNodes, ForceCoupled: req.ForceCoupled,
			ForceLU: req.ForceLU, Iterative: req.Iterative,
			Workers: workers, Obs: tr, Progress: j.progress, Ctx: j.ctx,
		})
		if err != nil {
			return nil, err
		}
		jr = fromCore(KindOpera, res)
	}
	tr.Finish()
	jr.TraceID = j.traceID
	jr.Key = j.key
	j.guard = jr.Guard
	j.health = jr.Health
	if jr.Guard != nil {
		j.escalations = jr.Guard.Escalations
	}
	if s.opts.CollectTrace {
		jr.Trace = tr.Dump()
		snap := tr.Registry().Snapshot()
		jr.Metrics = &snap
	}
	return json.Marshal(jr)
}

// executeMC runs the Monte Carlo analysis with the fault-tolerance
// machinery attached: resume from a stored snapshot when one exists
// for this content key, periodic checkpointing at merged-chunk
// boundaries, and a degraded partial result when a deadline or drain
// interrupts the sampling.
func (s *Server) executeMC(j *job, sys *mna.System, workers int, tr *obs.Tracer) (*JobResult, error) {
	req := j.req
	start := time.Now()
	mcOpts := montecarlo.Options{
		Samples: req.Samples, Step: req.Step, Steps: req.Steps,
		Seed: req.Seed, Workers: workers, Obs: tr,
		Progress: j.progress, Ctx: j.ctx,
	}
	resumed := 0
	if s.ckpts != nil {
		var cp montecarlo.Checkpoint
		if info, ok, _ := s.ckpts.Load(j.key, &cp); ok && info.Kind == ckptKindMC {
			mcOpts.Resume = &cp
			resumed = cp.NextSample
		}
		mcOpts.CheckpointEvery = s.opts.CheckpointEvery
		mcOpts.OnCheckpoint = func(cp *montecarlo.Checkpoint) {
			if err := s.ckpts.Save(j.key, ckptKindMC, cp.NextSample, cp); err != nil {
				// A failed snapshot never fails the job — the solve
				// carries on; only resumability regresses to the last
				// good snapshot.
				s.mCkptFailures.Inc()
				if j.log != nil {
					j.event("job.checkpoint_fail", slog.String(logx.KeyError, err.Error()))
				}
				return
			}
			s.mCheckpoints.Inc()
		}
	}
	res, err := montecarlo.Run(sys, mcOpts)
	if mcOpts.Resume != nil && errors.Is(err, montecarlo.ErrBadResume) {
		// The snapshot does not fit this request (a stale or corrupted
		// survivor under a colliding key): drop it and solve fresh.
		s.ckpts.Delete(j.key)
		mcOpts.Resume = nil
		resumed = 0
		res, err = montecarlo.Run(sys, mcOpts)
	}
	if resumed > 0 {
		s.mResumes.Inc()
		if j.log != nil {
			j.event("job.resume", slog.Int("samples_done", resumed))
		}
	}
	if err != nil {
		if res == nil || res.SamplesRun == 0 || !degradedCause(j.ctx) {
			return nil, err
		}
		// Deadline or drain mid-sampling: return the honest partial
		// result — the moments over the merged prefix, with error bars
		// so the caller can judge whether the accuracy suffices.
		jr := fromMC(res, sys.VDD, time.Since(start))
		jr.Degraded = true
		jr.SamplesRequested = req.Samples
		jr.StdErr = mcStdErr(res)
		j.degraded = true
		if j.log != nil {
			j.event("job.degraded",
				slog.Int("samples_run", res.SamplesRun),
				slog.Int("samples_requested", req.Samples))
		}
		return jr, nil
	}
	return fromMC(res, sys.VDD, time.Since(start)), nil
}

// degradedCause reports whether the job's cancellation cause permits
// a degraded partial result: an expired deadline or a draining
// server. A user cancel is an explicit "stop" and a stall kill means
// the numbers cannot be trusted — neither degrades.
func degradedCause(ctx context.Context) bool {
	cause := context.Cause(ctx)
	return errors.Is(cause, context.DeadlineExceeded) || errors.Is(cause, errCauseDrain)
}

// buildNetlist materializes the request's circuit under the input
// limits.
func (s *Server) buildNetlist(req Request) (*netlist.Netlist, error) {
	if req.Grid != nil {
		return grid.Build(*req.Grid)
	}
	return netlist.ReadLimited(strings.NewReader(req.Netlist), s.opts.Limits)
}

// Status reports a job's current state.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(j), nil
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Key:      j.key,
		TraceID:  j.traceID,
		State:    j.state,
		Cached:   j.cached,
		Degraded: j.degraded,
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.Canceled = errors.Is(j.err, cancel.ErrCanceled) || errors.Is(j.err, ErrHandedOff)
	}
	st.HandedOff = j.handedOff
	st.Peer = j.peer
	st.Diagnosis = j.diag
	if !j.started.IsZero() {
		st.QueuedMS = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		st.RunMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	return st
}

// List returns the status of every known job, newest first.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, s.statusLocked(j))
	}
	// Job ids are zero-padded sequence numbers: lexicographic order is
	// submission order.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID > out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Result returns a finished job's stored result bytes (served verbatim
// so identical requests get byte-identical payloads).
func (s *Server) Result(id string) ([]byte, JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, ErrUnknownJob
	}
	st := s.statusLocked(j)
	if j.state != StateDone {
		return nil, st, ErrNotFinished
	}
	return j.result, st, nil
}

// Cancel stops a job: a queued job is removed from its queue, a
// running one has its context canceled (the solve loops notice within
// one step/sample and return a structured cancel.Error).
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		s.interactive = removeJob(s.interactive, j)
		s.batch = removeJob(s.batch, j)
		s.mQueueDepth.Set(float64(len(s.interactive) + len(s.batch)))
		j.state = StateCanceled
		j.err = cancel.ErrCanceled
		j.finished = time.Now()
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		if j.cancelCause != nil {
			j.cancelCause(errCauseUser)
		}
		if j.stopTimer != nil {
			j.stopTimer()
		}
		s.mCanceled.Inc()
		s.mSLOCancels.Inc()
		if s.journal != nil {
			s.journal.record(journalRecord{Event: journalEnd, ID: j.id, State: StateCanceled})
		}
		close(j.done)
		st := s.statusLocked(j)
		s.mu.Unlock()
		// A queued job never ran: its terminal telemetry is emitted
		// here (finishJob never sees it).
		s.recordTerminal(j, StateCanceled, cancel.ErrCanceled, false)
		return st, nil
	case StateRunning:
		if j.cancelCause != nil {
			j.cancelCause(errCauseUser)
		}
	}
	st := s.statusLocked(j)
	s.mu.Unlock()
	return st, nil
}

func removeJob(q []*job, j *job) []*job {
	for i, x := range q {
		if x == j {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	return s.Status(id)
}

// Shutdown drains the server: new submissions are rejected and
// readiness flips immediately; in peer mode the still-queued jobs are
// handed to their ring owners first (a job no peer accepts is requeued
// and solved locally); queued and running jobs are then given until
// ctx is done to finish, after which everything outstanding is
// canceled (the solve paths return within one step) and the workers
// are awaited. The journal is closed last. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var handoff []*job
	if s.peers.Load() != nil {
		// Claim the whole queue for handoff before any worker can.
		// handingOff keeps idle workers parked (not exited) until the
		// handoff pass finishes: a job whose handoff fails — peer down,
		// injected crash — is requeued, and a worker must still be
		// alive to solve it. Handing off is an optimization of drain,
		// never a way to lose work.
		handoff = append(append([]*job{}, s.interactive...), s.batch...)
		s.interactive, s.batch = nil, nil
		s.mQueueDepth.Set(0)
		s.handingOff = len(handoff) > 0
	}
	queued := len(handoff) + len(s.interactive) + len(s.batch)
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.log != nil {
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "service.drain",
			slog.Int(logx.KeyDepth, queued))
	}
	s.handoffQueued(handoff)
	if len(handoff) > 0 {
		s.mu.Lock()
		s.handingOff = false
		s.cond.Broadcast()
		s.mu.Unlock()
	}

	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	var err error
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-drained:
	case <-ctx.Done():
		// Deadline passed: cancel every outstanding job. Queued jobs
		// are claimed and fail their first poll; running jobs stop at
		// the next step/sample boundary.
		s.baseStop()
		<-drained
		err = ctx.Err()
	}
	s.baseStop()
	if s.journal != nil {
		s.journal.close()
	}
	return err
}
