package service

import (
	"container/list"
	"sync"

	"opera/internal/obs"
	"opera/internal/service/inject"
)

// Cache is the content-addressed result cache: request key (sha256 of
// the canonical request) → encoded JobResult bytes. Eviction is LRU
// under a byte budget, so a Table-1-style sweep can hold its whole
// working set while a pathological stream of huge results cannot
// exhaust memory. Hit/miss/eviction counts and the resident byte count
// live on the obs registry (service.cache_*).
type Cache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element

	hits, misses, evictions *obs.Counter
	bytes                   *obs.Gauge
	entries                 *obs.Gauge
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds a cache with the given byte budget. A nonpositive
// budget disables storage entirely (every Get misses, Put is a no-op).
// reg may be nil (counters become no-ops).
func NewCache(budget int64, reg *obs.Registry) *Cache {
	return &Cache{
		budget:    budget,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		hits:      reg.Counter("service.cache_hits_total"),
		misses:    reg.Counter("service.cache_misses_total"),
		evictions: reg.Counter("service.cache_evictions_total"),
		bytes:     reg.Gauge("service.cache_bytes"),
		entries:   reg.Gauge("service.cache_entries"),
	}
}

// Get returns the stored bytes for key and refreshes its recency. The
// returned slice is shared — callers must treat it as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).data, true
}

// Peek returns the stored bytes for key without touching the hit/miss
// counters — the read path for peers' /cache/{key} lookups, so a
// neighbour's peek never masquerades as local cache traffic in the
// service.cache_* counters. Recency is still refreshed (a peer hit is
// a real use of the entry). The returned slice is shared — read-only.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put stores data under key, evicting least-recently-used entries
// until the budget holds. An entry larger than the whole budget is not
// stored. Storing an existing key refreshes its bytes and recency.
func (c *Cache) Put(key string, data []byte) {
	size := int64(len(data))
	if size > c.budget {
		return
	}
	if inject.CacheStore() {
		// Injected store failure: the cache silently misses. The job's
		// own result bytes still serve the waiters; only future
		// submissions lose the fast path.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += size - int64(len(ent.data))
		ent.data = data
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.used += size
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.data))
		c.evictions.Inc()
	}
	c.bytes.Set(float64(c.used))
	c.entries.Set(float64(len(c.items)))
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the resident byte count.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
