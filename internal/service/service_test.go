package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"opera/internal/grid"
	"opera/internal/netlist"
	"opera/internal/obs"
)

// quickRequest is a small grid that solves in tens of milliseconds.
func quickRequest(seed int64) Request {
	spec := grid.DefaultSpec(64, seed)
	return Request{Grid: &spec, Steps: 3, Step: 1e-10}
}

// slowRequest runs long enough to be observed mid-flight and canceled:
// an OPERA transient with many steps (each step is a cancellation
// point).
func slowRequest(seed int64) Request {
	spec := grid.DefaultSpec(64, seed)
	return Request{Grid: &spec, Steps: 50000, Step: 1e-12, NoCache: true}
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func TestRequestKeyCanonical(t *testing.T) {
	// Spelled-out defaults hash like omitted ones.
	a := Request{Netlist: "x", Analysis: "opera", Order: 2, Step: 1e-10, Steps: 20, Ordering: "nd"}
	b := Request{Netlist: "x"}
	a.Normalize()
	b.Normalize()
	if a.Key() != b.Key() {
		t.Error("normalized defaults must share a key")
	}
	// Execution knobs do not contribute.
	c := Request{Netlist: "x", Priority: PriorityBatch, TimeoutMS: 5000, Workers: 7, NoCache: true}
	c.Normalize()
	if c.Key() != a.Key() {
		t.Error("execution knobs leaked into the cache key")
	}
	// Semantic fields do.
	d := Request{Netlist: "x", Order: 3}
	d.Normalize()
	if d.Key() == a.Key() {
		t.Error("different order must change the key")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCache(100, reg)
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// c displaces b (LRU), not the just-touched a.
	c.Put("c", make([]byte, 40))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	if c.Bytes() > 100 {
		t.Errorf("over budget: %d", c.Bytes())
	}
	// Oversized entries are not stored.
	c.Put("huge", make([]byte, 101))
	if _, ok := c.Get("huge"); ok {
		t.Error("entry larger than the budget must not be stored")
	}
	snap := reg.Snapshot()
	if snap.Counters["service.cache_evictions_total"] != 1 {
		t.Errorf("evictions = %d, want 1", snap.Counters["service.cache_evictions_total"])
	}
}

// TestEndToEndCacheHit is the ISSUE's acceptance flow: two identical
// submissions over HTTP cost one solve, the second is flagged as a
// cache hit, cache_hits_total reads 1, and the result payloads are
// byte-identical.
func TestEndToEndCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	sub1, err := c.Submit(ctx, quickRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if sub1.Cached || sub1.Coalesced {
		t.Fatalf("first submission should be fresh: %+v", sub1)
	}
	st, err := c.Wait(ctx, sub1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job 1: %s (%s)", st.State, st.Error)
	}
	bytes1, err := c.ResultBytes(ctx, sub1.ID)
	if err != nil {
		t.Fatal(err)
	}

	sub2, err := c.Submit(ctx, quickRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.Cached || sub2.State != StateDone {
		t.Fatalf("second submission should be a cache hit: %+v", sub2)
	}
	if sub2.ID == sub1.ID {
		t.Error("cache hit must still mint its own job id")
	}
	bytes2, err := c.ResultBytes(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Error("cached result is not byte-identical to the original")
	}
	snap := reg.Snapshot()
	if got := snap.Counters["service.cache_hits_total"]; got != 1 {
		t.Errorf("service.cache_hits_total = %d, want 1", got)
	}
	// A decoded result must carry the solver telemetry.
	res, err := c.Result(ctx, sub2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindOpera || res.N == 0 || len(res.Mean) != res.Steps+1 {
		t.Errorf("implausible result: kind=%s n=%d steps=%d", res.Kind, res.N, res.Steps)
	}
	if res.Guard == nil || !res.Guard.Healthy {
		t.Errorf("guard summary missing or unhealthy: %+v", res.Guard)
	}
}

// TestQueueOverflow429 fills the bounded queue and checks the HTTP
// contract: 429 with a Retry-After header.
func TestQueueOverflow429(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 1, ConcurrentJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	// One job running, one in the queue; distinct seeds so nothing
	// coalesces.
	if _, err := c.Submit(ctx, slowRequest(1)); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, s)
	if _, err := c.Submit(ctx, slowRequest(2)); err != nil {
		t.Fatal(err)
	}
	// Queue full: raw request so the header is visible.
	body, err := json.Marshal(slowRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	var apiErr *APIError
	if _, err := c.Submit(ctx, slowRequest(3)); !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Errorf("client submit on a full queue: %v", err)
	}
}

func waitForRunning(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, st := range s.List() {
			if st.State == StateRunning {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no job reached running state")
}

// TestCancelMidTransient cancels a running job over HTTP and checks it
// reaches the canceled state promptly, with the cancellation visible
// as a structured flag.
func TestCancelMidTransient(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	sub, err := c.Submit(ctx, slowRequest(10))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, s)
	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	wctx, cancelWait := context.WithTimeout(ctx, 15*time.Second)
	defer cancelWait()
	st, err := c.Wait(wctx, sub.ID)
	if err != nil {
		t.Fatalf("job did not settle promptly after cancel: %v", err)
	}
	if st.State != StateCanceled || !st.Canceled {
		t.Fatalf("state %s canceled=%v, want canceled", st.State, st.Canceled)
	}
	// The result endpoint refuses with the structured 409.
	if _, err := c.ResultBytes(ctx, sub.ID); err == nil {
		t.Error("result of a canceled job must error")
	}
	// Canceling a queued job works too and frees its slot.
	sub2, err := c.Submit(ctx, slowRequest(11))
	if err != nil {
		t.Fatal(err)
	}
	sub3, err := c.Submit(ctx, slowRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Cancel(ctx, sub3.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("canceling queued job: %v %+v", err, st)
	}
	_ = sub2
}

// TestJobTimeout expires a per-job deadline and checks the job lands
// in canceled with the deadline cause.
func TestJobTimeout(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1})
	req := slowRequest(20)
	req.TimeoutMS = 50
	sub, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("timed-out job state %s (%s), want canceled", st.State, st.Error)
	}
}

// TestShutdownDrains: a quick job in flight finishes inside the drain
// window and Shutdown returns nil; readiness flips immediately.
func TestShutdownDrains(t *testing.T) {
	s, err := New(Options{QueueDepth: 4, ConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Submit(quickRequest(30))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if s.Ready() {
		t.Error("server still ready after shutdown")
	}
	st, err := s.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Errorf("in-flight job not drained: %s (%s)", st.State, st.Error)
	}
	if _, err := s.Submit(quickRequest(31)); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after shutdown: %v, want ErrDraining", err)
	}
}

// TestShutdownDeadlineCancels: a job longer than the drain window is
// canceled at the deadline and Shutdown still returns (with the
// deadline error) instead of hanging.
func TestShutdownDeadlineCancels(t *testing.T) {
	s, err := New(Options{QueueDepth: 4, ConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Submit(slowRequest(40))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from a forced drain, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("forced drain took %v", elapsed)
	}
	st, _ := s.Status(sub.ID)
	if st.State != StateCanceled {
		t.Errorf("straggler state %s, want canceled", st.State)
	}
}

// TestPriorityOrdering checks the queue serves interactive before
// batch regardless of arrival order (workers disabled via a negative
// ConcurrentJobs so the claim order is observable).
func TestPriorityOrdering(t *testing.T) {
	s, err := New(Options{QueueDepth: 8, ConcurrentJobs: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.baseStop()
	batch := quickRequest(50)
	batch.Priority = PriorityBatch
	batch.NoCache = true
	subB, err := s.Submit(batch)
	if err != nil {
		t.Fatal(err)
	}
	inter := quickRequest(51)
	inter.NoCache = true
	subI, err := s.Submit(inter)
	if err != nil {
		t.Fatal(err)
	}
	if j := s.nextJob(); j == nil || j.id != subI.ID {
		t.Fatalf("first claim %+v, want interactive %s", j, subI.ID)
	}
	if j := s.nextJob(); j == nil || j.id != subB.ID {
		t.Fatalf("second claim %+v, want batch %s", j, subB.ID)
	}
}

// TestJournalReplay simulates a crash: a journal holding a submit with
// no matching end is replayed on construction and the job runs to done
// under its original id; new ids continue after the replayed sequence.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	req := quickRequest(60)
	req.Normalize()
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.record(journalRecord{Event: journalSubmit, ID: "job-000007", Key: req.Key(), Req: &req})
	// A second job that did finish must not replay.
	j.record(journalRecord{Event: journalSubmit, ID: "job-000008", Key: "k", Req: &req})
	j.record(journalRecord{Event: journalEnd, ID: "job-000008", State: StateDone})
	j.close()

	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1, JournalPath: path})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, "job-000007")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("replayed job: %s (%s)", st.State, st.Error)
	}
	if _, err := s.Status("job-000008"); !errors.Is(err, ErrUnknownJob) {
		t.Error("finished journal entry must not be replayed")
	}
	sub, err := s.Submit(quickRequest(61))
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID <= "job-000007" {
		t.Errorf("sequence did not continue past the replayed id: %s", sub.ID)
	}
}

// TestSubmitLimits rejects oversized inputs at admission with the
// structured limit error (413 over HTTP).
func TestSubmitLimits(t *testing.T) {
	s := newTestServer(t, Options{
		QueueDepth: 4, ConcurrentJobs: 1,
		Limits: netlist.Limits{MaxBytes: 64, MaxNodes: 100},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	var apiErr *APIError
	_, err := c.Submit(ctx, Request{Netlist: strings.Repeat("*", 65)})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized netlist: %v, want 413", err)
	}
	spec := grid.DefaultSpec(4096, 1)
	_, err = c.Submit(ctx, Request{Grid: &spec})
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized grid: %v, want 413", err)
	}
	var le *netlist.LimitError
	if _, err := s.Submit(Request{Netlist: strings.Repeat("*", 65)}); !errors.As(err, &le) {
		t.Errorf("direct submit: %v, want LimitError", err)
	}
}

// TestCoalescing attaches a second identical submission to the
// in-flight first instead of queueing a duplicate solve.
func TestCoalescing(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1})
	req := slowRequest(70)
	req.NoCache = false // coalescing rides the cache-key path
	sub1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !sub2.Coalesced || sub2.ID != sub1.ID {
		t.Fatalf("identical in-flight submission not coalesced: %+v vs %+v", sub2, sub1)
	}
	if _, err := s.Cancel(sub1.ID); err != nil {
		t.Fatal(err)
	}
}

// TestHealthEndpoints exercises /healthz, /readyz and /metrics.
func TestHealthEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
	if _, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else if resp, _ := http.Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}
