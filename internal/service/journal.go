package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"opera/internal/service/inject"
)

// Journal event kinds.
const (
	journalSubmit = "submit"
	journalEnd    = "end"
)

// journalScanBuf bounds one journal line on replay. A line past the
// bound is unparseable; openJournal then falls back to the longest
// valid prefix rather than refusing to start. Variable so tests can
// shrink it to exercise the fallback cheaply.
var journalScanBuf = 64 * 1024 * 1024

// journalRecord is one JSON line of the job journal: a submission
// (with the full request, so the job is re-runnable) or a terminal
// transition. A submit without a matching end marks a job that was in
// flight when the process died — replayed on restart.
type journalRecord struct {
	Event string   `json:"event"`
	ID    string   `json:"id"`
	Key   string   `json:"key,omitempty"`
	State string   `json:"state,omitempty"`
	Req   *Request `json:"req,omitempty"`
}

// journal is an append-only JSON-lines file of job lifecycle events.
// It is deliberately crash-simple: one line per event, fsync-free (a
// lost tail means at worst a re-run of an idempotent, cache-addressed
// job), replayed and compacted once at startup.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
	// warn carries a non-fatal recovery diagnosis from openJournal — a
	// scan error that forced the longest-valid-prefix fallback. The
	// server logs it once at startup.
	warn error
	// dropped counts append lines lost to write failures (injected or
	// real). The journal stays best-effort: a dropped line degrades
	// replay, never the running server.
	dropped int64
}

// openJournal reads the existing journal (if any), returning the
// submitted-but-unfinished records in submission order, then compacts
// the file — only the live submit lines are kept, matched submit/end
// pairs and any torn tail are dropped — and reopens it for appending.
//
// A scan error (oversized line, I/O fault) is not fatal: the longest
// valid prefix wins, the error is reported on journal.warn, and the
// compaction rewrite discards the unreadable tail.
func openJournal(path string) (*journal, []journalRecord, error) {
	var pending []journalRecord
	var warn error
	existed := false
	if f, err := os.Open(path); err == nil {
		existed = true
		byID := make(map[string]int) // id → index in pending, -1 = finished
		sc := bufio.NewScanner(f)
		// The scanner's cap is max(limit, cap(buf)) — keep the initial
		// capacity at or under the limit so journalScanBuf really bounds
		// the line size.
		bufCap := 64 * 1024
		if bufCap > journalScanBuf {
			bufCap = journalScanBuf
		}
		sc.Buffer(make([]byte, 0, bufCap), journalScanBuf)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				continue // torn tail line from a crash — ignore
			}
			switch rec.Event {
			case journalSubmit:
				byID[rec.ID] = len(pending)
				pending = append(pending, rec)
			case journalEnd:
				if i, ok := byID[rec.ID]; ok && i >= 0 {
					pending[i].Req = nil // mark finished
					byID[rec.ID] = -1
				}
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			// The records scanned so far are intact; everything after
			// the bad line is unrecoverable either way. Starting with
			// the prefix beats refusing to start.
			warn = fmt.Errorf("service: journal %s: recovered longest valid prefix: %w", path, err)
		}
		live := pending[:0]
		for _, rec := range pending {
			if rec.Req != nil {
				live = append(live, rec)
			}
		}
		pending = live
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	if existed {
		if err := compactJournal(path, pending); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	return &journal{f: f, w: bufio.NewWriter(f), warn: warn}, pending, nil
}

// compactJournal rewrites the journal to exactly the live submit
// records, via tmp-then-rename so a crash mid-compaction leaves either
// the old journal or the new one, never a torn mix.
func compactJournal(path string, live []journalRecord) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("service: journal compact %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range live {
		b, err := json.Marshal(rec)
		if err != nil {
			continue
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: journal compact %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: journal compact %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: journal compact %s: %w", path, err)
	}
	return nil
}

// record appends one event line and flushes it to the OS.
func (j *journal) record(rec journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	if inject.JournalWrite() {
		j.dropped++
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.dropped++
		return
	}
	j.w.WriteByte('\n')
	j.w.Flush()
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.w.Flush()
	j.f.Close()
	j.f = nil
}
