package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Journal event kinds.
const (
	journalSubmit = "submit"
	journalEnd    = "end"
)

// journalRecord is one JSON line of the job journal: a submission
// (with the full request, so the job is re-runnable) or a terminal
// transition. A submit without a matching end marks a job that was in
// flight when the process died — replayed on restart.
type journalRecord struct {
	Event string   `json:"event"`
	ID    string   `json:"id"`
	Key   string   `json:"key,omitempty"`
	State string   `json:"state,omitempty"`
	Req   *Request `json:"req,omitempty"`
}

// journal is an append-only JSON-lines file of job lifecycle events.
// It is deliberately crash-simple: one line per event, fsync-free (a
// lost tail means at worst a re-run of an idempotent, cache-addressed
// job), replayed once at startup.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJournal reads the existing journal (if any), returning the
// submitted-but-unfinished records in submission order, then reopens
// the file for appending.
func openJournal(path string) (*journal, []journalRecord, error) {
	var pending []journalRecord
	if f, err := os.Open(path); err == nil {
		byID := make(map[string]int) // id → index in pending, -1 = finished
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				continue // torn tail line from a crash — ignore
			}
			switch rec.Event {
			case journalSubmit:
				byID[rec.ID] = len(pending)
				pending = append(pending, rec)
			case journalEnd:
				if i, ok := byID[rec.ID]; ok && i >= 0 {
					pending[i].Req = nil // mark finished
					byID[rec.ID] = -1
				}
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
		}
		live := pending[:0]
		for _, rec := range pending {
			if rec.Req != nil {
				live = append(live, rec)
			}
		}
		pending = live
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: journal %s: %w", path, err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, pending, nil
}

// record appends one event line and flushes it to the OS.
func (j *journal) record(rec journalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	j.w.Write(b)
	j.w.WriteByte('\n')
	j.w.Flush()
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.w.Flush()
	j.f.Close()
	j.f = nil
}
