package service

import (
	"math"
	"time"

	"opera/internal/core"
	"opera/internal/montecarlo"
	"opera/internal/numguard"
	"opera/internal/obs"
)

// GuardSummary is the wire form of the numguard telemetry attached to
// a job result, so solve-path health is debuggable from the API alone.
type GuardSummary struct {
	Summary     string   `json:"summary"`
	Healthy     bool     `json:"healthy"`
	Transitions []string `json:"transitions,omitempty"`
	// Escalations counts ladder transitions — the
	// service.slo_escalations_total contribution of this job.
	Escalations int `json:"escalations,omitempty"`
	StepRetries int `json:"step_retries,omitempty"`
	NaNEvents   int `json:"nan_events,omitempty"`
}

func guardSummary(rep *numguard.Report) *GuardSummary {
	if rep == nil {
		return nil
	}
	snap := rep.Snapshot()
	gs := &GuardSummary{
		Summary:     snap.Summary(),
		Healthy:     snap.Healthy(),
		StepRetries: snap.StepRetries,
		NaNEvents:   snap.NaNEvents,
	}
	for _, tr := range snap.Transitions {
		gs.Transitions = append(gs.Transitions, tr.String())
	}
	gs.Escalations = len(gs.Transitions)
	return gs
}

// JobResult is the wire form of a finished analysis. The service
// stores the encoded bytes — what the cache holds and what the result
// endpoint serves verbatim, so repeated identical requests return
// byte-identical payloads.
type JobResult struct {
	// TraceID joins this result to the server's telemetry for the job
	// that computed it: the span tree, the structured log lines and the
	// flight-recorder entry all carry the same ID. Cached replays keep
	// the ID of the job that originally solved (the cache serves bytes
	// verbatim); the response headers carry the current request's ID.
	TraceID string `json:"trace_id,omitempty"`

	Kind  string  `json:"kind"`
	N     int     `json:"n"`
	Steps int     `json:"steps"`
	Basis int     `json:"basis,omitempty"`
	VDD   float64 `json:"vdd,omitempty"`

	// Mean[s][i] / Variance[s][i]: per-step, per-node moments.
	Mean     [][]float64 `json:"mean"`
	Variance [][]float64 `json:"variance"`

	// Worst-drop summary (OPERA/leakage kinds).
	WorstNode    int     `json:"worst_node"`
	WorstStep    int     `json:"worst_step"`
	WorstDropPct float64 `json:"worst_drop_pct,omitempty"`
	WorstStd     float64 `json:"worst_std,omitempty"`

	// Solver telemetry.
	Decoupled  bool          `json:"decoupled,omitempty"`
	Factorer   string        `json:"factorer,omitempty"`
	AugmentedN int           `json:"augmented_n,omitempty"`
	FactorNNZ  int           `json:"factor_nnz,omitempty"`
	SamplesRun int           `json:"samples_run,omitempty"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Guard      *GuardSummary `json:"guard,omitempty"`

	// Degraded marks a partial Monte Carlo result returned because a
	// deadline or drain interrupted the sampling: the moments cover
	// SamplesRun of SamplesRequested samples — a contiguous,
	// bit-reproducible prefix — with StdErr giving the standard error
	// of each mean so the caller can judge the accuracy. Degraded
	// results are never cached; resubmitting the same request resumes
	// from the retained checkpoint and runs to the full budget.
	Degraded         bool        `json:"degraded,omitempty"`
	SamplesRequested int         `json:"samples_requested,omitempty"`
	StdErr           [][]float64 `json:"stderr,omitempty"`

	// Trace is the job's span tree (assemble/stamp/order/factor/
	// transient/moments with wall time and allocation deltas).
	Trace *obs.Dump `json:"trace,omitempty"`
	// Metrics is the job-scoped metrics snapshot.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// fromCore converts an OPERA (or leakage) core.Result.
func fromCore(kind string, res *core.Result) *JobResult {
	node, step := res.MaxMeanDropNode()
	drop := res.VDD - res.Mean[step][node]
	jr := &JobResult{
		Kind:       kind,
		N:          res.N,
		Steps:      res.Steps,
		Basis:      res.Basis.Size(),
		VDD:        res.VDD,
		Mean:       res.Mean,
		Variance:   res.Variance,
		WorstNode:  node,
		WorstStep:  step,
		WorstStd:   math.Sqrt(res.Variance[step][node]),
		Decoupled:  res.Galerkin.Decoupled,
		Factorer:   res.Galerkin.Factorer,
		AugmentedN: res.Galerkin.AugmentedN,
		FactorNNZ:  res.Galerkin.FactorNNZ,
		ElapsedMS:  float64(res.Elapsed) / float64(time.Millisecond),
		Guard:      guardSummary(res.Galerkin.Guard()),
	}
	if res.VDD > 0 {
		jr.WorstDropPct = 100 * drop / res.VDD
	}
	return jr
}

// fromMC converts a Monte Carlo result.
func fromMC(res *montecarlo.Result, vdd float64, elapsed time.Duration) *JobResult {
	jr := &JobResult{
		Kind:       KindMC,
		N:          res.N,
		Steps:      res.Steps,
		VDD:        vdd,
		Mean:       res.Mean,
		Variance:   res.Variance,
		SamplesRun: res.SamplesRun,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	worst := -1.0
	for s := range res.Mean {
		for i, v := range res.Mean[s] {
			if d := vdd - v; d > worst {
				worst = d
				jr.WorstNode, jr.WorstStep = i, s
			}
		}
	}
	jr.WorstStd = math.Sqrt(res.Variance[jr.WorstStep][jr.WorstNode])
	if vdd > 0 {
		jr.WorstDropPct = 100 * worst / vdd
	}
	return jr
}

// mcStdErr computes the standard error of each per-step, per-node
// mean. Result.Variance is the population variance m2/n, so the
// unbiased standard error is sqrt(m2/(n−1)/n) = sqrt(Variance/(n−1)).
// Needs at least two samples.
func mcStdErr(res *montecarlo.Result) [][]float64 {
	n := res.SamplesRun
	if n < 2 {
		return nil
	}
	out := make([][]float64, len(res.Variance))
	for s := range res.Variance {
		row := make([]float64, len(res.Variance[s]))
		for i, v := range res.Variance[s] {
			row[i] = math.Sqrt(v / float64(n-1))
		}
		out[s] = row
	}
	return out
}
