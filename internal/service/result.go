package service

import (
	"math"
	"time"

	"opera/internal/core"
	"opera/internal/montecarlo"
	"opera/internal/numguard"
	"opera/internal/obs"
)

// GuardSummary is the wire form of the numguard telemetry attached to
// a job result, so solve-path health is debuggable from the API alone.
type GuardSummary struct {
	Summary     string   `json:"summary"`
	Healthy     bool     `json:"healthy"`
	Transitions []string `json:"transitions,omitempty"`
	// Escalations counts ladder transitions — the
	// service.slo_escalations_total contribution of this job.
	Escalations int `json:"escalations,omitempty"`
	StepRetries int `json:"step_retries,omitempty"`
	NaNEvents   int `json:"nan_events,omitempty"`
}

func guardSummary(rep *numguard.Report) *GuardSummary {
	if rep == nil {
		return nil
	}
	snap := rep.Snapshot()
	gs := &GuardSummary{
		Summary:     snap.Summary(),
		Healthy:     snap.Healthy(),
		StepRetries: snap.StepRetries,
		NaNEvents:   snap.NaNEvents,
	}
	for _, tr := range snap.Transitions {
		gs.Transitions = append(gs.Transitions, tr.String())
	}
	gs.Escalations = len(gs.Transitions)
	return gs
}

// NumHealth is the per-job numerical-health record: what the solve
// cost and how trustworthy its numbers are, in machine-independent
// terms. It rides on the job result and the flight-recorder entry, so
// "why was this job slow / is this answer sound" is answerable from
// either end without rerunning anything.
type NumHealth struct {
	// Rung is the numguard ladder rung that served the solve
	// ("block-cholesky", "cholesky", "lu", "cg+mean-precond", ...).
	Rung string `json:"rung,omitempty"`
	// MaxResidual is the worst accepted scaled residual ‖Ax−b‖/(‖A‖‖x‖)
	// among verified solves.
	MaxResidual float64 `json:"max_residual,omitempty"`
	// CondEstimate is the Hager–Higham 1-norm condition estimate of the
	// solved operator (0 when no direct factor was available).
	CondEstimate float64 `json:"cond_estimate,omitempty"`
	// Escalations counts ladder rung transitions during the solve.
	Escalations int `json:"escalations,omitempty"`
	// FactorNNZ, FillRatio and FactorFlops describe the factorization
	// that served the solve: nnz of the factor, nnz(L)/nnz(upper(A)),
	// and the symbolic flop estimate (for Monte Carlo, summed over all
	// samples). Deterministic given the input — comparable across
	// machines and runs.
	FactorNNZ   int     `json:"factor_nnz,omitempty"`
	FillRatio   float64 `json:"fill_ratio,omitempty"`
	FactorFlops int64   `json:"factor_flops,omitempty"`
}

// healthFromCore assembles the record from the Galerkin telemetry.
func healthFromCore(res *core.Result) *NumHealth {
	g := res.Galerkin
	h := &NumHealth{
		Rung:         g.Factorer,
		CondEstimate: g.CondEst,
		FactorNNZ:    g.FactorNNZ,
		FillRatio:    g.FillRatio,
		FactorFlops:  g.FactorFlops,
	}
	if gd := g.Guard(); gd != nil {
		h.MaxResidual = gd.Snapshot().MaxResidual
		h.Escalations = gd.Escalations()
	}
	return h
}

// JobResult is the wire form of a finished analysis. The service
// stores the encoded bytes — what the cache holds and what the result
// endpoint serves verbatim, so repeated identical requests return
// byte-identical payloads.
type JobResult struct {
	// TraceID joins this result to the server's telemetry for the job
	// that computed it: the span tree, the structured log lines and the
	// flight-recorder entry all carry the same ID. Cached replays keep
	// the ID of the job that originally solved (the cache serves bytes
	// verbatim); the response headers carry the current request's ID.
	TraceID string `json:"trace_id,omitempty"`
	// Key is the canonical content key of the request that produced
	// this result (sha256 of the normalized request — the cache and
	// ring-placement address, also in the X-Opera-Cache-Key header), so
	// a client holding only result bytes can re-address them anywhere
	// on the cluster without recomputing the hash.
	Key string `json:"key,omitempty"`

	Kind  string  `json:"kind"`
	N     int     `json:"n"`
	Steps int     `json:"steps"`
	Basis int     `json:"basis,omitempty"`
	VDD   float64 `json:"vdd,omitempty"`

	// Mean[s][i] / Variance[s][i]: per-step, per-node moments.
	Mean     [][]float64 `json:"mean"`
	Variance [][]float64 `json:"variance"`

	// Worst-drop summary (OPERA/leakage kinds).
	WorstNode    int     `json:"worst_node"`
	WorstStep    int     `json:"worst_step"`
	WorstDropPct float64 `json:"worst_drop_pct,omitempty"`
	WorstStd     float64 `json:"worst_std,omitempty"`

	// Solver telemetry.
	Decoupled  bool          `json:"decoupled,omitempty"`
	Factorer   string        `json:"factorer,omitempty"`
	AugmentedN int           `json:"augmented_n,omitempty"`
	FactorNNZ  int           `json:"factor_nnz,omitempty"`
	SamplesRun int           `json:"samples_run,omitempty"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Guard      *GuardSummary `json:"guard,omitempty"`
	// Health is the numerical-health record of the solve (nil only for
	// analyses that expose no solver telemetry).
	Health *NumHealth `json:"health,omitempty"`

	// Degraded marks a partial Monte Carlo result returned because a
	// deadline or drain interrupted the sampling: the moments cover
	// SamplesRun of SamplesRequested samples — a contiguous,
	// bit-reproducible prefix — with StdErr giving the standard error
	// of each mean so the caller can judge the accuracy. Degraded
	// results are never cached; resubmitting the same request resumes
	// from the retained checkpoint and runs to the full budget.
	Degraded         bool        `json:"degraded,omitempty"`
	SamplesRequested int         `json:"samples_requested,omitempty"`
	StdErr           [][]float64 `json:"stderr,omitempty"`

	// Trace is the job's span tree (assemble/stamp/order/factor/
	// transient/moments with wall time and allocation deltas).
	Trace *obs.Dump `json:"trace,omitempty"`
	// Metrics is the job-scoped metrics snapshot.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// fromCore converts an OPERA (or leakage) core.Result.
func fromCore(kind string, res *core.Result) *JobResult {
	node, step := res.MaxMeanDropNode()
	drop := res.VDD - res.Mean[step][node]
	jr := &JobResult{
		Kind:       kind,
		N:          res.N,
		Steps:      res.Steps,
		Basis:      res.Basis.Size(),
		VDD:        res.VDD,
		Mean:       res.Mean,
		Variance:   res.Variance,
		WorstNode:  node,
		WorstStep:  step,
		WorstStd:   math.Sqrt(res.Variance[step][node]),
		Decoupled:  res.Galerkin.Decoupled,
		Factorer:   res.Galerkin.Factorer,
		AugmentedN: res.Galerkin.AugmentedN,
		FactorNNZ:  res.Galerkin.FactorNNZ,
		ElapsedMS:  float64(res.Elapsed) / float64(time.Millisecond),
		Guard:      guardSummary(res.Galerkin.Guard()),
		Health:     healthFromCore(res),
	}
	if res.VDD > 0 {
		jr.WorstDropPct = 100 * drop / res.VDD
	}
	return jr
}

// mcRung names the factorization kernel a Monte Carlo run used;
// degraded results predating the finalize pass fall back to the
// sampler's default kernel.
func mcRung(res *montecarlo.Result) string {
	if res.Kernel == "" {
		return "supernodal"
	}
	return res.Kernel
}

// fromMC converts a Monte Carlo result.
func fromMC(res *montecarlo.Result, vdd float64, elapsed time.Duration) *JobResult {
	jr := &JobResult{
		Kind:       KindMC,
		N:          res.N,
		Steps:      res.Steps,
		VDD:        vdd,
		Mean:       res.Mean,
		Variance:   res.Variance,
		SamplesRun: res.SamplesRun,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
		Health: &NumHealth{
			Rung:        mcRung(res),
			FactorNNZ:   res.FactorNNZ,
			FillRatio:   res.FillRatio,
			FactorFlops: res.FactorFlops,
		},
	}
	worst := -1.0
	for s := range res.Mean {
		for i, v := range res.Mean[s] {
			if d := vdd - v; d > worst {
				worst = d
				jr.WorstNode, jr.WorstStep = i, s
			}
		}
	}
	jr.WorstStd = math.Sqrt(res.Variance[jr.WorstStep][jr.WorstNode])
	if vdd > 0 {
		jr.WorstDropPct = 100 * worst / vdd
	}
	return jr
}

// mcStdErr computes the standard error of each per-step, per-node
// mean. Result.Variance is the population variance m2/n, so the
// unbiased standard error is sqrt(m2/(n−1)/n) = sqrt(Variance/(n−1)).
// Needs at least two samples.
func mcStdErr(res *montecarlo.Result) [][]float64 {
	n := res.SamplesRun
	if n < 2 {
		return nil
	}
	out := make([][]float64, len(res.Variance))
	for s := range res.Variance {
		row := make([]float64, len(res.Variance[s]))
		for i, v := range res.Variance[s] {
			row[i] = math.Sqrt(v / float64(n-1))
		}
		out[s] = row
	}
	return out
}
