package service

import (
	"math"
	"time"

	"opera/internal/core"
	"opera/internal/montecarlo"
	"opera/internal/numguard"
	"opera/internal/obs"
)

// GuardSummary is the wire form of the numguard telemetry attached to
// a job result, so solve-path health is debuggable from the API alone.
type GuardSummary struct {
	Summary     string   `json:"summary"`
	Healthy     bool     `json:"healthy"`
	Transitions []string `json:"transitions,omitempty"`
	// Escalations counts ladder transitions — the
	// service.slo_escalations_total contribution of this job.
	Escalations int `json:"escalations,omitempty"`
	StepRetries int `json:"step_retries,omitempty"`
	NaNEvents   int `json:"nan_events,omitempty"`
}

func guardSummary(rep *numguard.Report) *GuardSummary {
	if rep == nil {
		return nil
	}
	snap := rep.Snapshot()
	gs := &GuardSummary{
		Summary:     snap.Summary(),
		Healthy:     snap.Healthy(),
		StepRetries: snap.StepRetries,
		NaNEvents:   snap.NaNEvents,
	}
	for _, tr := range snap.Transitions {
		gs.Transitions = append(gs.Transitions, tr.String())
	}
	gs.Escalations = len(gs.Transitions)
	return gs
}

// JobResult is the wire form of a finished analysis. The service
// stores the encoded bytes — what the cache holds and what the result
// endpoint serves verbatim, so repeated identical requests return
// byte-identical payloads.
type JobResult struct {
	// TraceID joins this result to the server's telemetry for the job
	// that computed it: the span tree, the structured log lines and the
	// flight-recorder entry all carry the same ID. Cached replays keep
	// the ID of the job that originally solved (the cache serves bytes
	// verbatim); the response headers carry the current request's ID.
	TraceID string `json:"trace_id,omitempty"`

	Kind  string  `json:"kind"`
	N     int     `json:"n"`
	Steps int     `json:"steps"`
	Basis int     `json:"basis,omitempty"`
	VDD   float64 `json:"vdd,omitempty"`

	// Mean[s][i] / Variance[s][i]: per-step, per-node moments.
	Mean     [][]float64 `json:"mean"`
	Variance [][]float64 `json:"variance"`

	// Worst-drop summary (OPERA/leakage kinds).
	WorstNode    int     `json:"worst_node"`
	WorstStep    int     `json:"worst_step"`
	WorstDropPct float64 `json:"worst_drop_pct,omitempty"`
	WorstStd     float64 `json:"worst_std,omitempty"`

	// Solver telemetry.
	Decoupled  bool          `json:"decoupled,omitempty"`
	Factorer   string        `json:"factorer,omitempty"`
	AugmentedN int           `json:"augmented_n,omitempty"`
	FactorNNZ  int           `json:"factor_nnz,omitempty"`
	SamplesRun int           `json:"samples_run,omitempty"`
	ElapsedMS  float64       `json:"elapsed_ms"`
	Guard      *GuardSummary `json:"guard,omitempty"`

	// Trace is the job's span tree (assemble/stamp/order/factor/
	// transient/moments with wall time and allocation deltas).
	Trace *obs.Dump `json:"trace,omitempty"`
	// Metrics is the job-scoped metrics snapshot.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// fromCore converts an OPERA (or leakage) core.Result.
func fromCore(kind string, res *core.Result) *JobResult {
	node, step := res.MaxMeanDropNode()
	drop := res.VDD - res.Mean[step][node]
	jr := &JobResult{
		Kind:       kind,
		N:          res.N,
		Steps:      res.Steps,
		Basis:      res.Basis.Size(),
		VDD:        res.VDD,
		Mean:       res.Mean,
		Variance:   res.Variance,
		WorstNode:  node,
		WorstStep:  step,
		WorstStd:   math.Sqrt(res.Variance[step][node]),
		Decoupled:  res.Galerkin.Decoupled,
		Factorer:   res.Galerkin.Factorer,
		AugmentedN: res.Galerkin.AugmentedN,
		FactorNNZ:  res.Galerkin.FactorNNZ,
		ElapsedMS:  float64(res.Elapsed) / float64(time.Millisecond),
		Guard:      guardSummary(res.Galerkin.Guard()),
	}
	if res.VDD > 0 {
		jr.WorstDropPct = 100 * drop / res.VDD
	}
	return jr
}

// fromMC converts a Monte Carlo result.
func fromMC(res *montecarlo.Result, vdd float64, elapsed time.Duration) *JobResult {
	jr := &JobResult{
		Kind:       KindMC,
		N:          res.N,
		Steps:      res.Steps,
		VDD:        vdd,
		Mean:       res.Mean,
		Variance:   res.Variance,
		SamplesRun: res.SamplesRun,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	}
	worst := -1.0
	for s := range res.Mean {
		for i, v := range res.Mean[s] {
			if d := vdd - v; d > worst {
				worst = d
				jr.WorstNode, jr.WorstStep = i, s
			}
		}
	}
	jr.WorstStd = math.Sqrt(res.Variance[jr.WorstStep][jr.WorstNode])
	if vdd > 0 {
		jr.WorstDropPct = 100 * worst / vdd
	}
	return jr
}
