// Package service is the long-running OPERA analysis server: a bounded
// priority job queue with admission control on top of
// internal/parallel, a content-addressed result cache so identical
// requests cost one solve (the paper's own economics — one
// factorization amortized over a whole transient, Eq. 19 — applied
// across requests), per-job deadlines and cooperative cancellation
// threaded through every solve path via internal/cancel, and a
// lifecycle with graceful drain and panic-isolated job execution.
// cmd/operad exposes it over HTTP/JSON; the Client type in this
// package is the matching client used by cmd/opera -remote.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"opera/internal/galerkin"
	"opera/internal/grid"
	"opera/internal/mna"
	"opera/internal/obs"
)

// Analysis kinds accepted by Request.Analysis.
const (
	KindOpera   = "opera"   // stochastic Galerkin chaos expansion (default)
	KindMC      = "mc"      // Monte Carlo baseline
	KindLeakage = "leakage" // §5.1 lognormal leakage special case
)

// Request is one analysis job, submitted as JSON. Exactly one of
// Netlist (inline text in the OPERA netlist format) or Grid (generator
// spec) describes the circuit. The zero values of the numeric solver
// fields mean "server default" and are normalized before hashing, so
// two requests that differ only in spelled-out defaults share a cache
// entry.
type Request struct {
	// Netlist is the inline netlist text; Grid the generator spec.
	Netlist string     `json:"netlist,omitempty"`
	Grid    *grid.Spec `json:"grid,omitempty"`

	// Analysis selects the workload: "opera" (default), "mc",
	// "leakage".
	Analysis string `json:"analysis,omitempty"`

	// Variation overrides the paper's Table-1 sensitivities.
	Variation *mna.VariationSpec `json:"variation,omitempty"`

	// Solver options (see core.Options). Zero Order/Step/Steps use the
	// server defaults (2, 1e-10, 20).
	Order        int     `json:"order,omitempty"`
	Step         float64 `json:"step,omitempty"`
	Steps        int     `json:"steps,omitempty"`
	Ordering     string  `json:"ordering,omitempty"` // nd|rcm|md|amd|natural
	TrackNodes   []int   `json:"track_nodes,omitempty"`
	ForceCoupled bool    `json:"force_coupled,omitempty"`
	ForceLU      bool    `json:"force_lu,omitempty"`
	Iterative    bool    `json:"iterative,omitempty"`

	// Monte Carlo parameters (Analysis == "mc").
	Samples int   `json:"samples,omitempty"`
	Seed    int64 `json:"seed,omitempty"`

	// Leakage parameters (Analysis == "leakage").
	Regions   int     `json:"regions,omitempty"`
	SigmaLogI float64 `json:"sigma_log_i,omitempty"`

	// Execution-only knobs. None of these affect the computed numbers
	// (Workers is worker-count-invariant by the parallel layer's
	// determinism contract), so none participate in the cache key.
	//
	// TraceID is the caller-supplied request trace (32 hex chars; the
	// X-Opera-Trace-Id header fills it over HTTP). Empty means the
	// server mints one at admission. It tags the job's span tree, every
	// log line and the flight-recorder entry, and is echoed in all
	// responses — including 429 rejections — so a caller can always
	// join its request to the server's telemetry.
	TraceID string `json:"trace_id,omitempty"`
	// Priority is "interactive" (default; served first) or "batch".
	Priority string `json:"priority,omitempty"`
	// TimeoutMS bounds the job's wall time; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers caps the solver worker pools; 0 = GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// NoCache skips both cache lookup and store for this job.
	NoCache bool `json:"no_cache,omitempty"`
}

// Priorities.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// Normalize fills defaulted fields in place so that equivalent
// requests are literally equal (and therefore hash equal).
func (r *Request) Normalize() {
	if r.Analysis == "" {
		r.Analysis = KindOpera
	}
	if r.Order == 0 {
		r.Order = 2
	}
	if r.Step == 0 {
		r.Step = 1e-10
	}
	if r.Steps == 0 {
		r.Steps = 20
	}
	if r.Ordering == "" {
		r.Ordering = "nd"
	}
	if r.Analysis == KindMC && r.Samples == 0 {
		r.Samples = 200
	}
	if r.Analysis == KindLeakage {
		if r.Regions == 0 {
			r.Regions = 4
		}
		if r.SigmaLogI == 0 {
			r.SigmaLogI = 0.6
		}
	}
	if r.Priority == "" {
		r.Priority = PriorityInteractive
	}
	if r.TraceID != "" {
		// Canonical lowercase; validity is checked in Validate.
		if id, err := obs.ParseTraceID(r.TraceID); err == nil {
			r.TraceID = string(id)
		}
	}
}

// Validate checks a normalized request.
func (r *Request) Validate() error {
	if (r.Netlist == "") == (r.Grid == nil) {
		return fmt.Errorf("service: request needs exactly one of netlist or grid")
	}
	if r.Grid != nil {
		if err := r.Grid.Validate(); err != nil {
			return fmt.Errorf("service: grid spec: %w", err)
		}
	}
	switch r.Analysis {
	case KindOpera, KindMC, KindLeakage:
	default:
		return fmt.Errorf("service: unknown analysis kind %q", r.Analysis)
	}
	if _, err := ParseOrdering(r.Ordering); err != nil {
		return err
	}
	if r.Order < 1 {
		return fmt.Errorf("service: order must be >= 1, got %d", r.Order)
	}
	if r.Step <= 0 || r.Steps < 1 {
		return fmt.Errorf("service: bad time stepping %g x %d", r.Step, r.Steps)
	}
	if r.Analysis == KindMC && r.Samples < 1 {
		return fmt.Errorf("service: mc needs >= 1 sample, got %d", r.Samples)
	}
	if r.Analysis == KindLeakage && (r.Regions < 1 || r.SigmaLogI <= 0) {
		return fmt.Errorf("service: leakage needs regions >= 1 and positive sigma")
	}
	switch r.Priority {
	case PriorityInteractive, PriorityBatch:
	default:
		return fmt.Errorf("service: unknown priority %q", r.Priority)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("service: negative timeout")
	}
	if r.TraceID != "" {
		if _, err := obs.ParseTraceID(r.TraceID); err != nil {
			return fmt.Errorf("service: %w", err)
		}
	}
	return nil
}

// ParseOrdering maps the wire spelling to the galerkin enum.
func ParseOrdering(s string) (galerkin.Ordering, error) {
	switch s {
	case "", "nd":
		return galerkin.OrderND, nil
	case "rcm":
		return galerkin.OrderRCM, nil
	case "md":
		return galerkin.OrderMD, nil
	case "amd":
		return galerkin.OrderAMD, nil
	case "natural":
		return galerkin.OrderNatural, nil
	default:
		return 0, fmt.Errorf("service: unknown ordering %q", s)
	}
}

// cacheKeyPayload is the canonical content of a request: every field
// that changes the computed result, and nothing else. Field order is
// fixed by the struct declaration, and encoding/json encodes structs
// deterministically, so the encoded bytes are a canonical form.
type cacheKeyPayload struct {
	Netlist      string             `json:"netlist,omitempty"`
	Grid         *grid.Spec         `json:"grid,omitempty"`
	Analysis     string             `json:"analysis"`
	Variation    *mna.VariationSpec `json:"variation,omitempty"`
	Order        int                `json:"order"`
	Step         float64            `json:"step"`
	Steps        int                `json:"steps"`
	Ordering     string             `json:"ordering"`
	TrackNodes   []int              `json:"track_nodes,omitempty"`
	ForceCoupled bool               `json:"force_coupled"`
	ForceLU      bool               `json:"force_lu"`
	Iterative    bool               `json:"iterative"`
	Samples      int                `json:"samples"`
	Seed         int64              `json:"seed"`
	Regions      int                `json:"regions"`
	SigmaLogI    float64            `json:"sigma_log_i"`
}

// Key computes the content address of a normalized request: the sha256
// of its canonical JSON. Requests that can only produce identical
// results (same circuit, same variation model, same solver options)
// share a key; execution knobs (priority, timeout, workers, caching)
// do not contribute.
func (r *Request) Key() string {
	payload := cacheKeyPayload{
		Netlist:      r.Netlist,
		Grid:         r.Grid,
		Analysis:     r.Analysis,
		Variation:    r.Variation,
		Order:        r.Order,
		Step:         r.Step,
		Steps:        r.Steps,
		Ordering:     r.Ordering,
		TrackNodes:   r.TrackNodes,
		ForceCoupled: r.ForceCoupled,
		ForceLU:      r.ForceLU,
		Iterative:    r.Iterative,
		Samples:      r.Samples,
		Seed:         r.Seed,
		Regions:      r.Regions,
		SigmaLogI:    r.SigmaLogI,
	}
	b, err := json.Marshal(payload)
	if err != nil {
		// Marshaling a value-only struct cannot fail; keep the
		// invariant visible rather than silently degrading the cache.
		panic(fmt.Sprintf("service: canonical encoding: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
