package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"opera/internal/cluster/ring"
	"opera/internal/obs/logx"
	"opera/internal/service/inject"
)

// ErrHandedOff is the terminal error of a queued job that a draining
// shard sent to its ring peer instead of solving. The JobStatus
// carries HandedOff plus the peer's URL, so a waiter can follow the
// job — or simply resubmit the same request anywhere on the ring and
// coalesce onto (or cache-hit) the peer's run.
var ErrHandedOff = errors.New("service: job handed off to a ring peer during drain")

// stateHandedOff is the journal end-state of a handed-off job: the
// peer owns it now, so a restart of this shard must not replay it.
const stateHandedOff = "handed-off"

// defaultPeekTimeout bounds one peer cache lookup. Peeks sit on the
// submission path, so the budget is deliberately tight: a slow peer
// must degrade to a local solve, never to a slow submit.
const defaultPeekTimeout = 150 * time.Millisecond

// handoffTimeout bounds one drain-handoff POST to a peer.
const handoffTimeout = 5 * time.Second

// peerState is the immutable peer view installed by SetPeers: the
// consistent-hash ring over the peer URLs (self excluded) that orders
// cache peeks and picks drain-handoff owners.
type peerState struct {
	ring *ring.Ring
	self string
}

// SetPeers installs the shard's peer list: the other shards' base URLs
// (e.g. "http://10.0.0.2:9130"). self, when non-empty, names this
// shard's own URL and is filtered out so a misconfigured symmetric
// peer list cannot make a shard peek or hand off to itself. Peer mode
// is live for every submission after the call; an empty list disables
// it. Safe to call concurrently with submissions.
func (s *Server) SetPeers(self string, peers []string) {
	if self != "" {
		self = normalizePeerURL(self)
	}
	var rest []string
	all := map[string]bool{}
	if self != "" {
		all[self] = true
	}
	for _, p := range peers {
		if p == "" {
			continue
		}
		p = normalizePeerURL(p)
		all[p] = true
		if p != self {
			rest = append(rest, p)
		}
	}
	if len(rest) == 0 {
		s.peers.Store(nil)
		s.shardName.Store(nil)
		return
	}
	s.peers.Store(&peerState{ring: ring.New(rest, 0), self: self})
	// Derive this shard's cluster self-name the same way the router
	// names its members: the full shard set (peers ∪ self), normalized
	// and sorted, indexed as s0, s1, ... — so shard-stamped telemetry
	// (span exports, flight entries) joins router logs with no lookup
	// table. Requires self so we know which member we are.
	if self != "" {
		members := make([]string, 0, len(all))
		for m := range all {
			members = append(members, m)
		}
		sort.Strings(members)
		for i, m := range members {
			if m == self {
				name := fmt.Sprintf("s%d", i)
				s.shardName.Store(&name)
				break
			}
		}
	}
}

// ShardName returns this shard's cluster self-name ("s0", "s1", ...)
// derived from the sorted peer set, or "" when the server runs
// standalone (or SetPeers was given no self URL).
func (s *Server) ShardName() string {
	if p := s.shardName.Load(); p != nil {
		return *p
	}
	return ""
}

// Peers returns the active peer URLs (nil when peer mode is off).
func (s *Server) Peers() []string {
	ps := s.peers.Load()
	if ps == nil {
		return nil
	}
	return ps.ring.Members()
}

func normalizePeerURL(u string) string {
	if !bytes.Contains([]byte(u), []byte("://")) {
		u = "http://" + u
	}
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// peerHTTPClient returns the transport for peer peeks and handoffs
// (set once in New — this path runs concurrently with submissions).
func (s *Server) peerHTTPClient() *http.Client {
	return s.peerHTTP
}

// peekPeers asks the ring peers for key's cached result bytes, most
// likely holder first, each under the peek timeout. The contract is
// miss-tolerant by construction: any failure — timeout, refused
// connection, 404, injected fault — is a miss, and the caller solves
// locally. A hit returns the peer's stored bytes verbatim, so a replay
// served through this shard is byte-identical to one served by the
// peer that solved.
func (s *Server) peekPeers(key string) ([]byte, string) {
	ps := s.peers.Load()
	if ps == nil {
		return nil, ""
	}
	timeout := s.opts.PeekTimeout
	if timeout <= 0 {
		timeout = defaultPeekTimeout
	}
	for _, peer := range ps.ring.Sequence(key) {
		if inject.PeekTimeout() {
			// Injected peer timeout: the peek budget elapses with no
			// answer. Strictly a miss.
			s.mPeekErrors.Inc()
			continue
		}
		data, err := s.peekOne(peer, key, timeout)
		switch {
		case err == nil && data != nil:
			s.mPeekHits.Inc()
			return data, peer
		case err == nil:
			s.mPeekMisses.Inc()
		default:
			s.mPeekErrors.Inc()
		}
	}
	return nil, ""
}

// peekOne fetches /cache/{key} from one peer. (nil, nil) is a clean
// miss (404); an error is any other failure.
func (s *Server) peekOne(peer, key string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerHTTPClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, errors.New("peer peek: unexpected status " + resp.Status)
	}
	// Bound the read by the local cache budget: bytes the local cache
	// could never hold are not worth pulling across the wire.
	limit := s.opts.CacheBytes
	if limit <= 0 {
		limit = 1 << 30
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, errors.New("peer peek: result exceeds local cache budget")
	}
	return data, nil
}

// handoffQueued sends the drained queue to the ring: each job is
// POSTed (same request, same trace ID — the trace survives the hop) to
// its key's owner among the surviving peers, falling through the ring
// sequence on refusal. A job no peer accepts is pushed back onto the
// local queue so the drain solves it before exit — handing off is an
// optimization of drain, never a way to lose work.
func (s *Server) handoffQueued(queued []*job) {
	for _, j := range queued {
		s.handoffJob(j)
	}
}

func (s *Server) handoffJob(j *job) {
	ps := s.peers.Load()
	sentTo := ""
	if ps != nil && !inject.HandoffCrash() {
		for _, peer := range ps.ring.Sequence(j.key) {
			if err := s.postToPeer(peer, j.req); err != nil {
				if j.log != nil {
					j.event("job.handoff_try",
						slog.String(logx.KeyPeer, peer),
						slog.String(logx.KeyError, err.Error()))
				}
				continue
			}
			sentTo = peer
			break
		}
	}
	if sentTo == "" {
		// No peer accepted (or the injected crash fired before the
		// send): requeue locally, exactly as if peer mode were off.
		s.mHandoffFails.Inc()
		s.mu.Lock()
		if j.req.Priority == PriorityBatch {
			s.batch = append(s.batch, j)
		} else {
			s.interactive = append(s.interactive, j)
		}
		s.mQueueDepth.Set(float64(len(s.interactive) + len(s.batch)))
		s.cond.Signal()
		s.mu.Unlock()
		return
	}
	s.mHandoffs.Inc()
	s.mu.Lock()
	j.handedOff = true
	j.peer = sentTo
	j.state = StateCanceled
	j.err = ErrHandedOff
	j.finished = time.Now()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	if j.cancelCause != nil {
		j.cancelCause(errCauseDrain)
	}
	if j.stopTimer != nil {
		j.stopTimer()
	}
	if s.journal != nil {
		s.journal.record(journalRecord{Event: journalEnd, ID: j.id, State: stateHandedOff})
	}
	close(j.done)
	s.mu.Unlock()
	if j.log != nil {
		j.event("job.handoff",
			slog.String(logx.KeyPeer, sentTo),
			slog.String(logx.KeyKey, j.key))
	}
	// The job never ran here; emit its terminal telemetry directly
	// (finishJob never sees it), like a queued-job cancel.
	s.recordTerminal(j, StateCanceled, ErrHandedOff, false)
}

// postToPeer submits req to one peer's /v1/jobs. Accepted (202), a
// cache hit or coalesce (200) all count as a successful handoff — the
// ring now owns the work either way.
func (s *Server) postToPeer(peer string, req Request) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), handoffTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if req.TraceID != "" {
		hreq.Header.Set(TraceIDHeader, req.TraceID)
	}
	resp, err := s.peerHTTPClient().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return errors.New("peer handoff: status " + resp.Status)
	}
	return nil
}

// peersPtr is the atomic slot type for the Server struct (kept here so
// server.go stays focused on the queue lifecycle).
type peersPtr = atomic.Pointer[peerState]
