package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"opera/internal/grid"
	"opera/internal/mna"
)

// MaxSweepJobs bounds one sweep's corner × load × seed expansion. The
// limit protects the router and the shards from a fat-fingered matrix,
// not the cluster's throughput — a larger campaign is just several
// sweeps.
const MaxSweepJobs = 4096

// SweepCorner is one process-variation corner of a sweep: a name for
// the stream output and an optional VariationSpec override (nil keeps
// the base request's variation model).
type SweepCorner struct {
	Name      string             `json:"name,omitempty"`
	Variation *mna.VariationSpec `json:"variation,omitempty"`
}

// SweepLoad is one load condition of a sweep. Exactly one of Grid,
// Netlist or PeakDropFrac may be set: a full circuit override, or —
// the common case — a rescaled switching load on the base request's
// generated grid. The zero value keeps the base circuit.
type SweepLoad struct {
	Name    string     `json:"name,omitempty"`
	Grid    *grid.Spec `json:"grid,omitempty"`
	Netlist string     `json:"netlist,omitempty"`
	// PeakDropFrac overrides the base grid spec's worst nominal DC
	// drop calibration (the "how hard are the blocks switching" knob).
	PeakDropFrac float64 `json:"peak_drop_frac,omitempty"`
}

// SweepRequest is the bulk API's wire form: a base request plus the
// corner × load × seed axes it is swept over. Empty axes contribute a
// single identity element, so any subset of the three may be used.
//
// Expansion is deterministic: job i always denotes the same
// (corner, load, seed) cell with the same content key, which is what
// makes a sweep resumable — a client that re-POSTs the same
// SweepRequest (optionally listing the indices it already holds in
// Done) gets the missing cells, and completed cells are cache hits on
// whichever shard solved them.
type SweepRequest struct {
	Base    Request       `json:"base"`
	Corners []SweepCorner `json:"corners,omitempty"`
	Loads   []SweepLoad   `json:"loads,omitempty"`
	Seeds   []int64       `json:"seeds,omitempty"`

	// SweepID names the sweep in every stream line; empty derives a
	// deterministic ID from the expanded content keys.
	SweepID string `json:"sweep_id,omitempty"`
	// Done lists job indices the client already holds (from an earlier,
	// interrupted stream); they are skipped, not re-streamed.
	Done []int `json:"done,omitempty"`
}

// SweepJob is one expanded cell of the matrix.
type SweepJob struct {
	Index  int
	Corner string
	Load   string
	Seed   int64
	Req    Request
}

// Expand materializes the corner × load × seed matrix into individual
// requests, index-ordered (seed fastest, then load, then corner).
// Every expanded request is normalized and validated, so a bad matrix
// fails before any job is submitted. When the base request carries a
// trace ID, each job gets a distinct ID derived from it (base ID and
// cell index → 32 hex), so a whole sweep is joinable in the shards'
// telemetry; otherwise trace IDs are left empty for the submitter to
// mint.
func (sw *SweepRequest) Expand() ([]SweepJob, error) {
	corners := sw.Corners
	if len(corners) == 0 {
		corners = []SweepCorner{{}}
	}
	loads := sw.Loads
	if len(loads) == 0 {
		loads = []SweepLoad{{}}
	}
	seeds := sw.Seeds
	hasSeeds := len(seeds) > 0
	if !hasSeeds {
		// Identity element: the cell keeps the base request's seeds
		// untouched; the display seed reports the effective one.
		seeds = []int64{sw.Base.Seed}
		if sw.Base.Analysis != KindMC && sw.Base.Grid != nil {
			seeds[0] = sw.Base.Grid.Seed
		}
	}
	total := len(corners) * len(loads) * len(seeds)
	if total > MaxSweepJobs {
		return nil, fmt.Errorf("service: sweep expands to %d jobs, max %d", total, MaxSweepJobs)
	}
	jobs := make([]SweepJob, 0, total)
	for ci, c := range corners {
		for li, l := range loads {
			for si, seed := range seeds {
				idx := (ci*len(loads)+li)*len(seeds) + si
				req := sw.Base
				if c.Variation != nil {
					v := *c.Variation
					req.Variation = &v
				}
				switch {
				case l.Grid != nil:
					g := *l.Grid
					req.Grid, req.Netlist = &g, ""
				case l.Netlist != "":
					req.Netlist, req.Grid = l.Netlist, nil
				case l.PeakDropFrac != 0:
					if req.Grid == nil {
						return nil, fmt.Errorf("service: sweep load %q sets peak_drop_frac but the base request has no grid spec", l.Name)
					}
					g := *req.Grid
					g.PeakDropFrac = l.PeakDropFrac
					req.Grid = &g
				case req.Grid != nil:
					// Copy so the seed write below never aliases the
					// base spec across cells.
					g := *req.Grid
					req.Grid = &g
				}
				// The seed axis: Monte Carlo sweeps vary the sampling
				// seed; everything else varies the generated circuit's
				// seed (block placement, current signatures).
				if hasSeeds {
					if req.Analysis == KindMC || sw.Base.Analysis == KindMC {
						req.Seed = seed
					} else if req.Grid != nil {
						req.Grid.Seed = seed
					} else {
						req.Seed = seed
					}
				}
				req.Normalize()
				if err := req.Validate(); err != nil {
					return nil, fmt.Errorf("service: sweep cell %d (corner %q, load %q, seed %d): %w",
						idx, c.Name, l.Name, seed, err)
				}
				if sw.Base.TraceID != "" {
					req.TraceID = deriveTraceID(sw.Base.TraceID, idx)
				} else {
					req.TraceID = ""
				}
				jobs = append(jobs, SweepJob{
					Index: idx, Corner: c.Name, Load: l.Name, Seed: seed, Req: req,
				})
			}
		}
	}
	return jobs, nil
}

// ID returns the sweep's identity: the caller's SweepID when set,
// otherwise a deterministic digest of the expanded content keys — the
// same matrix always gets the same ID, so resumption needs no server
// state.
func (sw *SweepRequest) ID(jobs []SweepJob) string {
	if sw.SweepID != "" {
		return sw.SweepID
	}
	h := sha256.New()
	for _, j := range jobs {
		h.Write([]byte(j.Req.Key()))
	}
	return "sweep-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// deriveTraceID maps (base trace, cell index) to a distinct 32-hex
// trace ID. Derivation instead of minting keeps a sweep's jobs
// joinable: the first 16 hex of sha256(base:index) cannot collide with
// the base ID in practice and is stable across resubmissions.
func deriveTraceID(base string, index int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s:%d", base, index)))
	return hex.EncodeToString(sum[:16])
}

// SweepLine is one JSON line of the bulk API's response stream: a
// finished (or failed) cell of the matrix, emitted as it lands. The
// final line of a stream has EOF set and carries the sweep totals
// instead of a cell.
type SweepLine struct {
	SweepID string `json:"sweep_id"`
	Index   int    `json:"index"`
	Total   int    `json:"total"`

	Corner string `json:"corner,omitempty"`
	Load   string `json:"load,omitempty"`
	Seed   int64  `json:"seed"`

	// TraceID is the cell's own trace (distinct per cell); Key its
	// content address; Shard the member that produced the result; JobID
	// the shard-local job.
	TraceID string `json:"trace_id,omitempty"`
	Key     string `json:"key,omitempty"`
	Shard   string `json:"shard,omitempty"`
	JobID   string `json:"job_id,omitempty"`

	State     string  `json:"state,omitempty"`
	Cached    bool    `json:"cached,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	HandedOff bool    `json:"handed_off,omitempty"`
	Resubmits int     `json:"resubmits,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`

	// Result is the cell's stored result bytes, verbatim (present on
	// done cells unless the sweep asked for summaries only).
	Result json.RawMessage `json:"result,omitempty"`

	// EOF marks the stream's trailing summary line, which carries the
	// completed/failed cell counts instead of a cell.
	EOF       bool `json:"eof,omitempty"`
	DoneCells int  `json:"done,omitempty"`
	Failed    int  `json:"failed,omitempty"`
}
