package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"opera/internal/netlist"
	"opera/internal/obs"
)

// maxRequestBytes bounds the JSON request body independently of the
// netlist limits (the netlist rides inside the JSON, so this must be a
// little larger than Limits.MaxBytes).
const requestOverhead = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit (202 queued / 200 cache hit or coalesced / 429 full / 503 draining)
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result stored result bytes, verbatim (409 until done)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness
//	GET    /readyz              readiness (503 while draining)
//	GET    /metrics             service metrics snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.Ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	return mux
}

// httpError is the structured error body.
type httpError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps service errors to HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	body := httpError{Error: err.Error()}
	code := http.StatusBadRequest
	var lim *netlist.LimitError
	switch {
	case errors.Is(err, ErrQueueFull):
		body.Kind = "queue_full"
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		body.Kind = "draining"
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		body.Kind = "unknown_job"
		code = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		body.Kind = "not_finished"
		code = http.StatusConflict
	case errors.As(err, &lim):
		body.Kind = "limit"
		code = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, code, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := int64(requestOverhead)
	if s.opts.Limits.MaxBytes > 0 {
		maxBody += s.opts.Limits.MaxBytes
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Submit(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	code := http.StatusAccepted
	if resp.Cached || resp.Coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, _, err := s.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
