package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"opera/internal/netlist"
	"opera/internal/obs"
)

// TraceIDHeader carries a request's trace ID over HTTP, in both
// directions: a client may set it on POST /v1/jobs to supply its own ID
// (32 hex chars; malformed values are rejected), and the server echoes
// the effective ID on every submission response — including 429/503
// rejections — and on status/result responses.
const TraceIDHeader = "X-Opera-Trace-Id"

// CacheKeyHeader carries the canonical content key (the sha256 of the
// normalized request — the result-cache and ring-placement address) on
// submission, status and result responses, so clients and the cluster
// router can address a result without recomputing the hash.
const CacheKeyHeader = "X-Opera-Cache-Key"

// maxRequestBytes bounds the JSON request body independently of the
// netlist limits (the netlist rides inside the JSON, so this must be a
// little larger than Limits.MaxBytes).
const requestOverhead = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit (202 queued / 200 cache hit or coalesced / 429 full / 503 draining)
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result stored result bytes, verbatim (409 until done)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness
//	GET    /readyz              readiness (JSON; 503 while draining or queue-saturated)
//	GET    /metrics             service metrics snapshot
//	GET    /debug/flight        flight recorder (when enabled); ?trace=<id> for one entry
//	GET    /debug/spans/{trace} this shard's span fragment for a trace (when the span ring is enabled)
//
// Every API endpoint is wrapped in per-endpoint SLO instrumentation:
// an http.latency_ms.<endpoint> histogram plus request/error counters.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/jobs", s.instrument("submit", s.handleSubmit))
	mux.Handle("GET /v1/jobs", s.instrument("list", s.handleList))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("status", s.handleStatus))
	mux.Handle("GET /v1/jobs/{id}/result", s.instrument("result", s.handleResult))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("cancel", s.handleCancel))
	mux.Handle("GET /cache/{key}", s.instrument("cache_peek", s.handleCachePeek))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		ok, reason, depth := s.Readiness()
		body := struct {
			Ready      bool   `json:"ready"`
			Reason     string `json:"reason,omitempty"`
			QueueDepth int    `json:"queue_depth"`
		}{Ready: ok, Reason: reason, QueueDepth: depth}
		code := http.StatusOK
		if !ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, body)
	})
	mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	mux.Handle("GET /debug/build", obs.BuildHandler())
	if s.flight != nil {
		mux.Handle("GET /debug/flight", s.flight.Handler())
	}
	if s.spans != nil {
		mux.HandleFunc("GET /debug/spans/{trace}", s.handleSpans)
	}
	if s.profiles != nil {
		mux.HandleFunc("GET /debug/profiles", s.profiles.ServeIndex)
		mux.HandleFunc("GET /debug/profiles/{trace}/{kind}", func(w http.ResponseWriter, r *http.Request) {
			s.profiles.ServeProfile(w, r, r.PathValue("trace"), r.PathValue("kind"))
		})
	}
	return mux
}

// statusWriter captures the response code for the endpoint counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one endpoint in its latency histogram and
// request/error counters (all registered once, at Handler time).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	lat := s.reg.Histogram("http.latency_ms."+endpoint, obs.MSBuckets)
	reqs := s.reg.Counter("http.requests_total." + endpoint)
	errs := s.reg.Counter("http.errors_total." + endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		lat.ObserveSince(start)
		reqs.Inc()
		if sw.code >= 400 {
			errs.Inc()
		}
	})
}

// httpError is the structured error body.
type httpError struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
	// Trace is the submission's trace ID when the error concerns a
	// specific submission (echoed in the X-Opera-Trace-Id header too).
	Trace string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError maps service errors to HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.writeErrorTrace(w, err, "")
}

func (s *Server) writeErrorTrace(w http.ResponseWriter, err error, traceID string) {
	body := httpError{Error: err.Error(), Trace: traceID}
	code := http.StatusBadRequest
	var lim *netlist.LimitError
	switch {
	case errors.Is(err, ErrQueueFull):
		body.Kind = "queue_full"
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		body.Kind = "draining"
		code = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		body.Kind = "unknown_job"
		code = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		body.Kind = "not_finished"
		code = http.StatusConflict
	case errors.As(err, &lim):
		body.Kind = "limit"
		code = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, code, body)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	maxBody := int64(requestOverhead)
	if s.opts.Limits.MaxBytes > 0 {
		maxBody += s.opts.Limits.MaxBytes
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.TraceID == "" {
		req.TraceID = r.Header.Get(TraceIDHeader)
	}
	resp, err := s.Submit(req)
	if resp.TraceID != "" {
		w.Header().Set(TraceIDHeader, resp.TraceID)
	}
	if resp.Key != "" {
		w.Header().Set(CacheKeyHeader, resp.Key)
	}
	if err != nil {
		s.writeErrorTrace(w, err, resp.TraceID)
		return
	}
	code := http.StatusAccepted
	if resp.Cached || resp.Coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if st.TraceID != "" {
		w.Header().Set(TraceIDHeader, st.TraceID)
	}
	if st.Key != "" {
		w.Header().Set(CacheKeyHeader, st.Key)
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	data, st, err := s.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	if st.TraceID != "" {
		w.Header().Set(TraceIDHeader, st.TraceID)
	}
	if st.Key != "" {
		w.Header().Set(CacheKeyHeader, st.Key)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleCachePeek serves the local result cache by content key — the
// cluster's peer-peek protocol. The stored bytes are returned verbatim
// (the same bytes /v1/jobs/{id}/result would serve), so a replay
// through any shard stays byte-identical. A miss is 404 with kind
// "cache_miss"; peers treat every failure as a miss and solve locally.
func (s *Server) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok := s.cache.Peek(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, httpError{Error: "not cached", Kind: "cache_miss"})
		return
	}
	s.mPeerServes.Inc()
	w.Header().Set(CacheKeyHeader, key)
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
