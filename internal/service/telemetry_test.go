package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"opera/internal/obs"
	"opera/internal/obs/logx"
)

// syncBuffer is a concurrency-safe log sink (job lifecycle events are
// written from worker goroutines).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// logEvents decodes the buffer's JSON lines and returns the events
// (msg values) recorded for the given trace ID.
func logEvents(t *testing.T, buf *syncBuffer, traceID string) []string {
	t.Helper()
	var events []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("malformed log line %q: %v", line, err)
		}
		if rec[logx.KeyTrace] == traceID {
			events = append(events, rec["msg"].(string))
		}
	}
	return events
}

// TestTraceEndToEnd is the PR's acceptance flow: a trace ID supplied at
// submission is echoed on the response, tagged onto the span tree,
// stamped on every lifecycle log line, embedded in the result payload,
// and retrievable from /debug/flight with the six-phase breakdown, the
// log tail and the numguard summary attached.
func TestTraceEndToEnd(t *testing.T) {
	buf := &syncBuffer{}
	s := newTestServer(t, Options{
		QueueDepth: 4, ConcurrentJobs: 1,
		Logger:     logx.New(buf, slog.LevelDebug),
		FlightJobs: 8,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	const traceID = "0123456789abcdef0123456789abcdef"
	req := quickRequest(90)
	req.TraceID = traceID
	sub, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.TraceID != traceID {
		t.Fatalf("submit echoed trace %q, want %q", sub.TraceID, traceID)
	}
	st, err := c.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	if st.TraceID != traceID {
		t.Errorf("status trace %q, want %q", st.TraceID, traceID)
	}
	jr, err := c.Result(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jr.TraceID != traceID {
		t.Errorf("result trace %q, want %q", jr.TraceID, traceID)
	}

	// The flight recorder serves the full entry for this trace.
	resp, err := http.Get(ts.URL + "/debug/flight?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight?trace=: status %d", resp.StatusCode)
	}
	var entry obs.FlightEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	if entry.JobID != sub.ID || entry.State != StateDone {
		t.Fatalf("flight entry: %+v", entry)
	}
	if entry.Trace == nil {
		t.Fatal("flight entry lost the span tree")
	}
	if entry.Trace.TraceID != traceID {
		t.Errorf("span tree tagged %q, want %q", entry.Trace.TraceID, traceID)
	}
	phases := map[string]bool{}
	for _, sp := range entry.Trace.Spans {
		phases[sp.Name] = true
	}
	for _, p := range []string{"assemble", "stamp", "order", "factor", "transient", "moments"} {
		if !phases[p] {
			t.Errorf("flight span tree missing phase %q (have %v)", p, entry.Trace.Spans)
		}
	}
	if entry.Guard == nil {
		t.Error("flight entry missing the numguard summary")
	}
	if len(entry.Log) == 0 {
		t.Error("flight entry missing the log tail")
	}

	// Every lifecycle event carries the trace; phase lines cover the
	// pipeline.
	events := logEvents(t, buf, traceID)
	for _, want := range []string{"job.enqueue", "job.start", "job.phase", "job.done"} {
		found := false
		for _, e := range events {
			if e == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s event for trace %s (events: %v)", want, traceID, events)
		}
	}
}

// TestTraceHeaderContract drives the header side of the wire contract:
// X-Opera-Trace-Id on the request fills the trace, and the server
// echoes it on the response — including 429 rejections, where the body
// carries it too.
func TestTraceHeaderContract(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 1, ConcurrentJobs: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "ffeeddccbbaa99887766554433221100"
	body, _ := json.Marshal(quickRequest(91))
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set(TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if got := resp.Header.Get(TraceIDHeader); got != traceID {
		t.Errorf("response header trace %q, want %q", got, traceID)
	}
	if sub.TraceID != traceID {
		t.Errorf("response body trace %q, want %q", sub.TraceID, traceID)
	}

	// Malformed IDs are rejected at validation.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req2.Header.Set(TraceIDHeader, "not-hex!")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace id: status %d, want 400", resp2.StatusCode)
	}

	// Fill the queue, then assert a 429 still carries the trace. The
	// first slow job must be claimed by the single worker before the
	// second can occupy the queue's only slot.
	running, err := s.Submit(slowRequest(92))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)
	if _, err := s.Submit(slowRequest(93)); err != nil {
		t.Fatal(err)
	}
	const rejectTrace = "00112233445566778899aabbccddeeff"
	rejBody, _ := json.Marshal(slowRequest(94))
	req3, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(rejBody))
	req3.Header.Set(TraceIDHeader, rejectTrace)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp3.StatusCode)
	}
	if got := resp3.Header.Get(TraceIDHeader); got != rejectTrace {
		t.Errorf("429 header trace %q, want %q", got, rejectTrace)
	}
	var he struct {
		Trace string `json:"trace_id"`
	}
	json.NewDecoder(resp3.Body).Decode(&he)
	if he.Trace != rejectTrace {
		t.Errorf("429 body trace %q, want %q", he.Trace, rejectTrace)
	}
}

// waitState polls until the job reaches the given state (terminal
// states are reached via Wait in other tests; this is for observing
// intermediate states like running).
func waitState(t *testing.T, s *Server, id, state string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == state {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, state)
}

// TestClientRetry429 exercises the client's queue-full retry loop
// against a fake server: two 429s, then success, with each retry
// logged and the Retry-After header honored.
func TestClientRetry429(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			w.Header().Set(TraceIDHeader, "aaaabbbbccccddddeeeeffff00001111")
			w.Header().Set("Retry-After", "0") // fall back to the client's own backoff
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(httpError{Error: "queue full", Kind: "queue_full"})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(SubmitResponse{ID: "job-000001", State: StateQueued,
			TraceID: "aaaabbbbccccddddeeeeffff00001111"})
	}))
	defer ts.Close()

	buf := &syncBuffer{}
	c := NewClient(ts.URL)
	c.Logger = logx.New(buf, slog.LevelDebug)
	sub, err := c.Submit(context.Background(), quickRequest(95))
	if err != nil {
		t.Fatalf("submit after retries: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if sub.ID != "job-000001" {
		t.Errorf("unexpected response: %+v", sub)
	}
	if !strings.Contains(buf.String(), "client.retry") {
		t.Error("retries were not logged")
	}

	// Retries are bounded: a server that never admits surfaces the 429.
	mu.Lock()
	attempts = -1000
	mu.Unlock()
	c2 := NewClient(ts.URL)
	c2.MaxRetries = 1
	var ae *APIError
	if _, err := c2.Submit(context.Background(), quickRequest(95)); !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Errorf("bounded retries: %v, want APIError 429", err)
	}
	if ae.TraceID == "" {
		t.Error("APIError lost the rejection's trace ID")
	}

	// The submission context bounds the whole loop, including waits.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c3 := NewClient(ts.URL)
	c3.MaxRetries = 100
	if _, err := c3.Submit(ctx, quickRequest(95)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("context-bounded retry: %v, want deadline exceeded", err)
	}
}

// TestJournalReplayPriorityAndTrace simulates a crash with in-flight
// jobs of both priorities and asserts the replay re-enqueues them with
// their original priorities (interactive drains before batch) and
// trace IDs intact.
func TestJournalReplayPriorityAndTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Journal three unfinished jobs as a crashed process would leave
	// them: batch first in submission order, interactive after.
	mk := func(seed int64, priority, trace string) Request {
		r := quickRequest(seed)
		r.Priority = priority
		r.TraceID = trace
		r.NoCache = true
		r.Normalize()
		return r
	}
	reqs := map[string]Request{
		"job-000001": mk(101, PriorityBatch, "10000000000000000000000000000001"),
		"job-000002": mk(102, PriorityInteractive, "20000000000000000000000000000002"),
		"job-000003": mk(103, PriorityBatch, "30000000000000000000000000000003"),
	}
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		r := reqs[id]
		j.record(journalRecord{Event: journalSubmit, ID: id, Key: r.Key(), Req: &r})
	}
	j.close()

	s := newTestServer(t, Options{QueueDepth: 8, ConcurrentJobs: 1, JournalPath: path})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var finished []time.Time
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("%s: %s (%s)", id, st.State, st.Error)
		}
		if want := reqs[id].TraceID; st.TraceID != want {
			t.Errorf("%s trace %q did not survive replay (want %q)", id, st.TraceID, want)
		}
		s.mu.Lock()
		finished = append(finished, s.jobs[id].finished)
		s.mu.Unlock()
	}
	// The interactive replay (job 2) must have been claimed before the
	// batch jobs despite its later submission.
	if !finished[1].Before(finished[0]) || !finished[1].Before(finished[2]) {
		t.Errorf("interactive replay did not run first: finished times %v", finished)
	}
}

// TestFlightRingBoundedService soaks the service-level flight recorder
// past its capacity and asserts every view stays hard-bounded.
func TestFlightRingBoundedService(t *testing.T) {
	const k = 4
	s := newTestServer(t, Options{QueueDepth: 8, ConcurrentJobs: 1, FlightJobs: k})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Mix cached replays (same request) and fresh solves.
	for i := 0; i < 3*k; i++ {
		sub, err := s.Submit(quickRequest(int64(110 + i%2)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(ctx, sub.ID); err != nil {
			t.Fatal(err)
		}
	}
	d := s.Flight().Snapshot()
	if len(d.Recent) > k || len(d.Slowest) > k || len(d.Failed) > k {
		t.Errorf("flight views exceed k=%d: recent=%d slowest=%d failed=%d",
			k, len(d.Recent), len(d.Slowest), len(d.Failed))
	}
	if len(d.Recent) != k {
		t.Errorf("recent view not full: %d, want %d", len(d.Recent), k)
	}
	for _, e := range d.Slowest {
		if e.Cached {
			t.Error("cache hits must not enter the slowest view")
		}
	}
}

// TestDisabledTelemetryAllocs guards the disabled fast path: with no
// logger and no flight recorder, the per-job telemetry hooks allocate
// nothing.
func TestDisabledTelemetryAllocs(t *testing.T) {
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1})
	j := &job{
		id: "job-000001", traceID: "00000000000000000000000000000000",
		req:       quickRequest(1),
		submitted: time.Now(), started: time.Now(), finished: time.Now(),
	}
	if got := testing.AllocsPerRun(100, func() {
		s.recordTerminal(j, StateDone, nil, false)
	}); got != 0 {
		t.Errorf("disabled recordTerminal allocates %.1f/op, want 0", got)
	}
}

// BenchmarkServiceTelemetry measures the per-job cost of the telemetry
// layer by running the same workload with it off and fully on.
func BenchmarkServiceTelemetry(b *testing.B) {
	run := func(b *testing.B, opts Options) {
		opts.Registry = obs.NewRegistry()
		s, err := New(opts)
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := quickRequest(int64(i % 4))
			req.NoCache = true
			sub, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Wait(ctx, sub.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, Options{QueueDepth: 4, ConcurrentJobs: 1})
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, Options{
			QueueDepth: 4, ConcurrentJobs: 1,
			Logger:     logx.New(discard{}, slog.LevelInfo),
			FlightJobs: 32,
		})
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestGuardEscalationsCounter asserts the SLO escalation counter and
// the GuardSummary escalation count stay wired through a healthy solve
// (zero escalations, counter present).
func TestGuardEscalationsCounter(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Options{QueueDepth: 4, ConcurrentJobs: 1, Registry: reg})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sub, err := s.Submit(quickRequest(120))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"service.slo_escalations_total",
		"service.slo_deadline_misses_total",
		"service.slo_cancels_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("missing SLO counter %s", name)
		}
	}
	for _, name := range []string{
		"service.queue_wait_ms.interactive",
		"service.solve_ms.interactive",
	} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("SLO histogram %s missing or empty", name)
		}
	}
}

// TestDeadlineMissMetric asserts a per-job timeout lands in the
// deadline-miss counter and produces a job.deadline event.
func TestDeadlineMissMetric(t *testing.T) {
	reg := obs.NewRegistry()
	buf := &syncBuffer{}
	s := newTestServer(t, Options{
		QueueDepth: 4, ConcurrentJobs: 1, Registry: reg,
		Logger: logx.New(buf, slog.LevelDebug), FlightJobs: 4,
	})
	req := slowRequest(130)
	req.TimeoutMS = 50
	sub, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("timed-out job: %s (%s)", st.State, st.Error)
	}
	if got := reg.Snapshot().Counters["service.slo_deadline_misses_total"]; got != 1 {
		t.Errorf("deadline misses = %d, want 1", got)
	}
	events := logEvents(t, buf, sub.TraceID)
	found := false
	for _, e := range events {
		if e == "job.deadline" {
			found = true
		}
	}
	if !found {
		t.Errorf("no job.deadline event (events: %v)", events)
	}
	// The failed/canceled job is retained in the flight recorder.
	if _, ok := s.Flight().Find(sub.TraceID); !ok {
		t.Error("canceled job missing from the flight recorder")
	}
}

var _ = fmt.Sprintf // keep fmt imported for debug edits
