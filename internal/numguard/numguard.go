// Package numguard is the numerical-robustness layer of the solver: no
// factorization-backed answer leaves the system unverified. It provides
// residual verification with capped iterative refinement, an escalation
// ladder over increasingly robust solver rungs (block Cholesky → scalar
// Cholesky → LU with a pivot-growth check → preconditioned CG),
// NaN/Inf sentinels on solution vectors, a Hager/Higham 1-norm
// condition estimate, and a structured Diagnosis error carrying the
// full failure history when every rung is exhausted. The companion
// package numguard/inject supplies deterministic fault-injection hooks
// (test-only) so every ladder transition is exercised by tests instead
// of waiting for a pathological matrix in production.
package numguard

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"opera/internal/obs"
)

// Solver solves A·x = b using a prepared factorization (or an inner
// iteration). x is fully overwritten; b is not modified.
type Solver interface {
	SolveTo(x, b []float64)
}

// SolverFunc adapts a function to the Solver interface.
type SolverFunc func(x, b []float64)

// SolveTo implements Solver.
func (f SolverFunc) SolveTo(x, b []float64) { f(x, b) }

// Operator applies y = A·x — the matrix behind the factorization, used
// for residual computation and refinement.
type Operator interface {
	MulVec(y, x []float64)
}

// Config tunes verification and refinement. The zero value selects the
// defaults below.
type Config struct {
	// ResidualTol is the acceptance threshold on the scaled residual
	// ‖Ax−b‖∞ / (‖A‖∞·‖x‖∞ + ‖b‖∞). Default 1e-8 — far looser than a
	// healthy double-precision direct solve (~1e-14 on these systems)
	// and far tighter than any tolerable corruption of the chaos
	// coefficients.
	ResidualTol float64
	// MaxRefine caps the iterative-refinement sweeps per solve before
	// the ladder escalates. Default 3.
	MaxRefine int
	// VerifyEvery verifies the residual on step 0, step 1, and then
	// every VerifyEvery-th transient step (1 = every step). Non-finite
	// sentinels run on every step regardless. Default 8: verifying every
	// step costs one operator matvec per solve, which measured at 7–10%
	// of the happy-path wall clock on the benchmark grids; every 8th
	// step keeps the overhead ~1% while a drifting factor is still
	// caught within 8 steps (and its poison, immediately).
	VerifyEvery int
	// PivotGrowthMax rejects an LU factorization whose pivot growth
	// max|U| / max|A| exceeds this bound (element growth of that size
	// destroys backward stability). Default 1e8.
	PivotGrowthMax float64
}

// WithDefaults fills unset fields with the documented defaults.
func (c Config) WithDefaults() Config {
	if c.ResidualTol <= 0 {
		c.ResidualTol = 1e-8
	}
	if c.MaxRefine <= 0 {
		c.MaxRefine = 3
	}
	if c.VerifyEvery <= 0 {
		c.VerifyEvery = 8
	}
	if c.PivotGrowthMax <= 0 {
		c.PivotGrowthMax = 1e8
	}
	return c
}

// ShouldVerify reports whether the residual of a solve at the given
// transient step should be verified under the configured cadence (the
// DC solve and the first step always are).
func (c Config) ShouldVerify(step int) bool {
	return step <= 1 || c.VerifyEvery <= 1 || step%c.VerifyEvery == 0
}

// Transition records one escalation of the ladder.
type Transition struct {
	Stage  string // which solve path escalated ("step", "dc", "transient")
	Step   int    // transient step at which it happened (0 = DC/setup)
	From   string // rung given up on
	To     string // rung escalated to ("" when the ladder is exhausted)
	Reason string
}

// String renders the transition for logs.
func (t Transition) String() string {
	to := t.To
	if to == "" {
		to = "exhausted"
	}
	return fmt.Sprintf("%s step %d: %s → %s (%s)", t.Stage, t.Step, t.From, to, t.Reason)
}

// Report is the telemetry of every guarded solve of one analysis. It is
// shared by the ladders of a solve path and surfaced on the solver
// result. When bound to an obs.Registry (Bind), every update is
// mirrored onto named metrics — the registry is the canonical
// instrumentation sink; the struct fields remain as the structured
// per-analysis view that errors and the CLI summary read.
//
// All mutating methods are safe for concurrent use (parallel solve
// workers share one report); read the exported fields only after the
// analysis has finished, or through Snapshot while it runs.
type Report struct {
	mu sync.Mutex

	// Transitions lists every rung escalation, in order.
	Transitions []Transition
	// Verified counts residual-verified solves; MaxResidual is the
	// worst accepted scaled residual among them.
	Verified    int
	MaxResidual float64
	// Refinements counts iterative-refinement sweeps that ran;
	// RefinedSolves counts solves that needed at least one.
	Refinements   int
	RefinedSolves int
	// NaNEvents counts solves whose output contained NaN/Inf before
	// recovery; StepRetries counts transient steps re-solved on a
	// higher rung.
	NaNEvents   int
	StepRetries int
	// Cond1 is the Hager/Higham 1-norm condition estimate of the
	// operator behind the final rung (0 when never estimated).
	Cond1 float64

	// Registry-backed mirrors (nil when unbound; every obs instrument
	// is a no-op on nil).
	mVerified    *obs.Counter
	mResidual    *obs.Histogram
	mMaxResidual *obs.Gauge
	mEscalations *obs.Counter
	mRefinements *obs.Counter
	mNaN         *obs.Counter
	mRetries     *obs.Counter
	mCond        *obs.Gauge
}

// ResidualBuckets is the histogram layout for scaled residuals:
// 1e-16, 1e-14, ..., 1e-2, 1.
var ResidualBuckets = obs.ExpBuckets(1e-16, 100, 9)

// Bind mirrors all subsequent report updates onto the registry under
// the numguard.* metric names. Nil report or registry is a no-op.
func (r *Report) Bind(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mVerified = reg.Counter("numguard.solves_verified_total")
	r.mResidual = reg.Histogram("numguard.residual_norm", ResidualBuckets)
	r.mMaxResidual = reg.Gauge("numguard.max_residual")
	r.mEscalations = reg.Counter("numguard.ladder_escalations_total")
	r.mRefinements = reg.Counter("numguard.refinement_sweeps_total")
	r.mNaN = reg.Counter("numguard.nan_events_total")
	r.mRetries = reg.Counter("numguard.step_retries_total")
	r.mCond = reg.Gauge("numguard.cond_estimate")
}

// SetCond records a 1-norm condition estimate of the solved operator;
// the worst estimate across ladders wins.
func (r *Report) SetCond(c float64) {
	if r == nil || c <= 0 {
		return
	}
	r.mu.Lock()
	if c > r.Cond1 {
		r.Cond1 = c
	}
	r.mu.Unlock()
	r.mCond.SetMax(c)
}

// Accept records one residual-verified solve with the given scaled
// residual.
func (r *Report) Accept(res float64) {
	r.mu.Lock()
	r.Verified++
	if res > r.MaxResidual {
		r.MaxResidual = res
	}
	r.mu.Unlock()
	r.mVerified.Inc()
	r.mResidual.Observe(res)
	r.mMaxResidual.SetMax(res)
}

// AddTransition records one ladder escalation.
func (r *Report) AddTransition(t Transition) {
	r.mu.Lock()
	r.Transitions = append(r.Transitions, t)
	r.mu.Unlock()
	r.mEscalations.Inc()
}

// AddRefinement records one iterative-refinement sweep.
func (r *Report) AddRefinement() {
	r.mu.Lock()
	r.Refinements++
	r.mu.Unlock()
	r.mRefinements.Inc()
}

// MarkRefinedSolve records that a solve needed at least one sweep.
func (r *Report) MarkRefinedSolve() {
	r.mu.Lock()
	r.RefinedSolves++
	r.mu.Unlock()
}

// NonFinite records a solve whose output contained NaN/Inf.
func (r *Report) NonFinite() {
	r.mu.Lock()
	r.NaNEvents++
	r.mu.Unlock()
	r.mNaN.Inc()
}

// AddStepRetry records a transient step re-solved on a higher rung.
func (r *Report) AddStepRetry() {
	r.mu.Lock()
	r.StepRetries++
	r.mu.Unlock()
	r.mRetries.Inc()
}

// Snapshot returns a copy of the current counters, safe to read while
// solves are still running.
func (r *Report) Snapshot() Report {
	if r == nil {
		return Report{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Report{
		Transitions:   append([]Transition(nil), r.Transitions...),
		Verified:      r.Verified,
		MaxResidual:   r.MaxResidual,
		Refinements:   r.Refinements,
		RefinedSolves: r.RefinedSolves,
		NaNEvents:     r.NaNEvents,
		StepRetries:   r.StepRetries,
		Cond1:         r.Cond1,
	}
}

// Healthy reports whether the analysis completed without escalations,
// refinements or non-finite events.
func (r *Report) Healthy() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Transitions) == 0 && r.Refinements == 0 && r.NaNEvents == 0
}

// Escalations counts the rung transitions recorded so far — the
// per-job signal the service mirrors into its service.slo_* counters
// (an escalating job is a slow job in the making: every transition
// refactors on a costlier rung).
func (r *Report) Escalations() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.Transitions)
}

// Summary renders a one-line digest for CLI output.
func (r *Report) Summary() string {
	if r == nil {
		return "numguard: off"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := fmt.Sprintf("%d solves verified, max residual %.2e, %d refinement sweeps",
		r.Verified, r.MaxResidual, r.Refinements)
	if len(r.Transitions) > 0 {
		s += fmt.Sprintf(", %d rung transitions", len(r.Transitions))
	}
	if r.NaNEvents > 0 {
		s += fmt.Sprintf(", %d non-finite events", r.NaNEvents)
	}
	return s
}

// Diagnosis is the structured error returned when the escalation ladder
// is exhausted: instead of silently wrong coefficients the caller gets
// the step, the last rung, the residual history of every attempt, and a
// condition estimate of the last usable factor.
type Diagnosis struct {
	Stage string // solve path that failed ("step", "dc", "transient", ...)
	Step  int    // transient step of the failing solve
	Rung  string // last rung attempted
	// Residuals is the scaled-residual history across attempts and
	// refinement sweeps (+Inf marks a non-finite solution).
	Residuals []float64
	// Cond1 is the Hager/Higham 1-norm condition estimate of the last
	// factor that produced a solution (0 when unavailable).
	Cond1  float64
	Reason string
}

// Error implements the error interface.
func (d *Diagnosis) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "numguard: %s solve failed at step %d on rung %q: %s", d.Stage, d.Step, d.Rung, d.Reason)
	if len(d.Residuals) > 0 {
		fmt.Fprintf(&b, "; residual history %s", formatResiduals(d.Residuals))
	}
	if d.Cond1 > 0 {
		fmt.Fprintf(&b, "; cond₁ estimate %.2e", d.Cond1)
	}
	return b.String()
}

func formatResiduals(rs []float64) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%.2e", r)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Finite reports whether every entry of x is finite (no NaN, no ±Inf).
func Finite(x []float64) bool {
	for _, v := range x {
		// A single comparison catches NaN (v-v is NaN) and Inf.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// FiniteBlocks reports whether every coefficient block is finite.
func FiniteBlocks(blocks [][]float64) bool {
	for _, b := range blocks {
		if !Finite(b) {
			return false
		}
	}
	return true
}

// NormInf returns ‖x‖∞.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// ScaledResidual computes r = b − A·x into r and returns the
// normwise-relative backward error ‖r‖∞ / (anorm·‖x‖∞ + ‖b‖∞), where
// anorm approximates ‖A‖∞. A non-finite x yields +Inf.
func ScaledResidual(op Operator, anorm float64, r, x, b []float64) float64 {
	if !Finite(x) {
		return math.Inf(1)
	}
	op.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	den := anorm*NormInf(x) + NormInf(b)
	rn := NormInf(r)
	if den == 0 {
		return rn
	}
	return rn / den
}
