package numguard

import "testing"

// TestReportEscalations pins the count the service mirrors into its
// SLO counters: rung transitions only, nil-safe.
func TestReportEscalations(t *testing.T) {
	var nilReport *Report
	if nilReport.Escalations() != 0 {
		t.Error("nil report must count zero escalations")
	}
	r := &Report{}
	if r.Escalations() != 0 {
		t.Errorf("fresh report: %d escalations", r.Escalations())
	}
	r.Transitions = append(r.Transitions,
		Transition{From: "cholesky", To: "lu-partial", Reason: "residual"},
		Transition{From: "lu-partial", To: "lu-complete", Reason: "condition"},
	)
	if got := r.Escalations(); got != 2 {
		t.Errorf("Escalations = %d, want 2", got)
	}
	if r.Healthy() {
		t.Error("report with transitions must not be healthy")
	}
}
