package numguard

import (
	"fmt"
	"math"
	"sync"

	"opera/internal/numguard/inject"
)

// Rung is one solver configuration in the escalation ladder, from
// cheapest/most fragile to most expensive/most robust. Prepare is
// called at most once per escalation (lazily — a rung that is never
// reached is never factored).
type Rung struct {
	Name    string
	Prepare func() (Solver, error)
}

// Ladder runs verified solves against an ordered list of rungs,
// escalating when a rung's factorization fails, its solution is
// non-finite, or its residual cannot be refined below tolerance.
//
// A Ladder is safe for concurrent Solve calls on disjoint x/b pairs
// (the decoupled-Galerkin workers share one ladder): rung state is
// mutex-guarded, residual/refinement scratch is pooled per call, and an
// escalation requested by a worker that lost the race to another
// worker's escalation is coalesced rather than double-counted. The
// rungs' Solvers must themselves tolerate concurrent SolveTo calls —
// true of every factorization in internal/factor.
type Ladder struct {
	Stage string // labels transitions/diagnoses ("step", "dc", ...)

	cfg    Config
	op     Operator
	anorm  float64
	rungs  []Rung
	report *Report

	mu     sync.Mutex
	cur    int
	solver Solver
	last   Solver // most recent usable solver, kept across escalations for diagnosis

	scratch sync.Pool // *ladderScratch
}

// ladderScratch carries the per-call residual and correction vectors.
type ladderScratch struct {
	r, dx []float64
}

// NewLadder builds a ladder over op (the matrix being solved, for
// residuals) with ‖A‖∞ ≈ anorm. report may be shared across ladders of
// one analysis; nil allocates a private one.
func NewLadder(stage string, cfg Config, op Operator, anorm float64, rungs []Rung, report *Report) *Ladder {
	if report == nil {
		report = &Report{}
	}
	return &Ladder{Stage: stage, cfg: cfg.WithDefaults(), op: op, anorm: anorm, rungs: rungs, report: report}
}

// Report returns the shared telemetry.
func (l *Ladder) Report() *Report { return l.report }

// Rung returns the name of the rung currently in use (after at least
// one successful Prepare), or the name of the next rung to try.
func (l *Ladder) Rung() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rungName(l.cur)
}

// rungName maps a rung index to its display name. The rung list is
// immutable, so this needs no lock.
func (l *Ladder) rungName(idx int) string {
	if idx < len(l.rungs) {
		return l.rungs[idx].Name
	}
	return "exhausted"
}

func (l *Ladder) nextNameLocked(idx int) string {
	if idx+1 < len(l.rungs) {
		return l.rungs[idx+1].Name
	}
	return ""
}

// Solver prepares (if necessary) and returns the current rung's solver,
// escalating past rungs whose factorization fails. It is used by
// callers that need the raw factor (e.g. as a preconditioner).
func (l *Ladder) Solver(step int) (Solver, error) {
	s, _, err := l.acquire(step)
	return s, err
}

// acquire returns the current rung's solver together with the rung
// index it belongs to, preparing lazily and skipping rungs whose
// factorization fails.
func (l *Ladder) acquire(step int) (Solver, int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.solver == nil {
		if l.cur >= len(l.rungs) {
			return nil, l.cur, &Diagnosis{
				Stage: l.Stage, Step: step, Rung: "exhausted",
				Reason: "no rung produced a usable factorization",
			}
		}
		r := l.rungs[l.cur]
		var s Solver
		var err error
		if inject.FailPrepare(r.Name) {
			err = fmt.Errorf("injected factorization failure")
		} else {
			s, err = r.Prepare()
		}
		if err != nil {
			l.recordTransition(step, r.Name, l.nextNameLocked(l.cur), fmt.Sprintf("factorization failed: %v", err))
			l.cur++
			continue
		}
		l.solver = s
		l.last = s
	}
	return l.solver, l.cur, nil
}

func (l *Ladder) recordTransition(step int, from, to, reason string) {
	l.report.AddTransition(Transition{
		Stage: l.Stage, Step: step, From: from, To: to, Reason: reason,
	})
}

// escalateFrom abandons rung idx. When another worker already escalated
// past idx the call coalesces into a plain retry (no transition is
// recorded twice for one bad factor). It returns false when no rung is
// left.
func (l *Ladder) escalateFrom(step, idx int, reason string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur != idx {
		return l.cur < len(l.rungs)
	}
	l.recordTransition(step, l.rungName(idx), l.nextNameLocked(idx), reason)
	l.cur++
	l.solver = nil
	if step > 0 {
		l.report.AddStepRetry()
	}
	return l.cur < len(l.rungs)
}

func (l *Ladder) getScratch(n int) *ladderScratch {
	if sc, _ := l.scratch.Get().(*ladderScratch); sc != nil && cap(sc.r) >= n {
		sc.r = sc.r[:n]
		sc.dx = sc.dx[:n]
		return sc
	}
	return &ladderScratch{r: make([]float64, n), dx: make([]float64, n)}
}

// Solve computes x ← A⁻¹·b with verification: non-finite sentinel on
// every call, residual check on the configured cadence, capped
// iterative refinement before any escalation, and rung escalation (the
// whole solve retried on the next rung) when refinement cannot reach
// tolerance. It returns a *Diagnosis when the ladder is exhausted —
// never a silently wrong x.
func (l *Ladder) Solve(step int, x, b []float64) error {
	sc := l.getScratch(len(b))
	defer l.scratch.Put(sc)
	var history []float64
	for {
		s, idx, err := l.acquire(step)
		if err != nil {
			if d, ok := err.(*Diagnosis); ok {
				d.Residuals = history
			}
			return err
		}
		rung := l.rungName(idx)
		s.SolveTo(x, b)
		inject.CorruptSolve(rung, step, x)
		if !Finite(x) {
			l.report.NonFinite()
			history = append(history, math.Inf(1))
			if l.escalateFrom(step, idx, "non-finite solution") {
				continue
			}
			return l.diagnose(step, rung, history, "non-finite solution on the last rung", len(b))
		}
		if !l.cfg.ShouldVerify(step) {
			return nil
		}
		res := ScaledResidual(l.op, l.anorm, sc.r, x, b)
		history = append(history, res)
		if res <= l.cfg.ResidualTol {
			l.accept(res)
			return nil
		}
		// Iterative refinement: solve on the residual, add the
		// correction. The residual vector is already in sc.r.
		refined := false
		for sweep := 0; sweep < l.cfg.MaxRefine && res > l.cfg.ResidualTol && !math.IsInf(res, 1); sweep++ {
			s.SolveTo(sc.dx, sc.r)
			inject.CorruptSolve(rung, step, sc.dx)
			if !Finite(sc.dx) {
				l.report.NonFinite()
				res = math.Inf(1)
				history = append(history, res)
				break
			}
			for i := range x {
				x[i] += sc.dx[i]
			}
			l.report.AddRefinement()
			refined = true
			res = ScaledResidual(l.op, l.anorm, sc.r, x, b)
			history = append(history, res)
		}
		if refined {
			l.report.MarkRefinedSolve()
		}
		if res <= l.cfg.ResidualTol {
			l.accept(res)
			return nil
		}
		if l.escalateFrom(step, idx, fmt.Sprintf("residual %.3g above tolerance %.3g after %d refinement sweeps",
			res, l.cfg.ResidualTol, l.cfg.MaxRefine)) {
			continue
		}
		return l.diagnose(step, rung, history, "residual above tolerance on every rung", len(b))
	}
}

func (l *Ladder) accept(res float64) {
	l.report.Accept(res)
}

// CondEstimate runs the Hager/Higham 1-norm condition estimate against
// the most recent usable solver (n is the system size) and records it
// on the report. It costs at most five solves — negligible next to a
// transient sweep — and returns 0 when no rung has produced a solver
// yet. Callers invoke it once per analysis, after the solve finishes,
// to attach κ₁ to the job's numerical-health record.
func (l *Ladder) CondEstimate(n int) float64 {
	l.mu.Lock()
	s := l.last
	l.mu.Unlock()
	if s == nil || n <= 0 || l.anorm <= 0 {
		return 0
	}
	c := CondEst1(n, l.anorm, func(x, b []float64) { s.SolveTo(x, b) })
	l.report.SetCond(c)
	return c
}

func (l *Ladder) diagnose(step int, rung string, history []float64, reason string, n int) error {
	d := &Diagnosis{Stage: l.Stage, Step: step, Rung: rung, Residuals: history, Reason: reason}
	l.mu.Lock()
	s := l.last
	l.mu.Unlock()
	if s != nil {
		d.Cond1 = CondEst1(n, l.anorm, func(x, b []float64) { s.SolveTo(x, b) })
	}
	return d
}
