package numguard

import (
	"fmt"
	"math"

	"opera/internal/numguard/inject"
)

// Rung is one solver configuration in the escalation ladder, from
// cheapest/most fragile to most expensive/most robust. Prepare is
// called at most once per escalation (lazily — a rung that is never
// reached is never factored).
type Rung struct {
	Name    string
	Prepare func() (Solver, error)
}

// Ladder runs verified solves against an ordered list of rungs,
// escalating when a rung's factorization fails, its solution is
// non-finite, or its residual cannot be refined below tolerance.
// A Ladder is not safe for concurrent use.
type Ladder struct {
	Stage string // labels transitions/diagnoses ("step", "dc", ...)

	cfg    Config
	op     Operator
	anorm  float64
	rungs  []Rung
	cur    int
	solver Solver
	last   Solver // most recent usable solver, kept across escalations for diagnosis
	report *Report

	r, dx []float64
}

// NewLadder builds a ladder over op (the matrix being solved, for
// residuals) with ‖A‖∞ ≈ anorm. report may be shared across ladders of
// one analysis; nil allocates a private one.
func NewLadder(stage string, cfg Config, op Operator, anorm float64, rungs []Rung, report *Report) *Ladder {
	if report == nil {
		report = &Report{}
	}
	return &Ladder{Stage: stage, cfg: cfg.WithDefaults(), op: op, anorm: anorm, rungs: rungs, report: report}
}

// Report returns the shared telemetry.
func (l *Ladder) Report() *Report { return l.report }

// Rung returns the name of the rung currently in use (after at least
// one successful Prepare), or the name of the next rung to try.
func (l *Ladder) Rung() string {
	if l.cur < len(l.rungs) {
		return l.rungs[l.cur].Name
	}
	return "exhausted"
}

// Solver prepares (if necessary) and returns the current rung's solver,
// escalating past rungs whose factorization fails. It is used by
// callers that need the raw factor (e.g. as a preconditioner).
func (l *Ladder) Solver(step int) (Solver, error) {
	for l.solver == nil {
		if l.cur >= len(l.rungs) {
			return nil, &Diagnosis{
				Stage: l.Stage, Step: step, Rung: "exhausted",
				Reason: "no rung produced a usable factorization",
			}
		}
		r := l.rungs[l.cur]
		var s Solver
		var err error
		if inject.FailPrepare(r.Name) {
			err = fmt.Errorf("injected factorization failure")
		} else {
			s, err = r.Prepare()
		}
		if err != nil {
			l.recordTransition(step, r.Name, l.nextName(), fmt.Sprintf("factorization failed: %v", err))
			l.cur++
			continue
		}
		l.solver = s
		l.last = s
	}
	return l.solver, nil
}

func (l *Ladder) nextName() string {
	if l.cur+1 < len(l.rungs) {
		return l.rungs[l.cur+1].Name
	}
	return ""
}

func (l *Ladder) recordTransition(step int, from, to, reason string) {
	l.report.AddTransition(Transition{
		Stage: l.Stage, Step: step, From: from, To: to, Reason: reason,
	})
}

// escalate abandons the current rung. It returns false when no rung is
// left.
func (l *Ladder) escalate(step int, reason string) bool {
	l.recordTransition(step, l.Rung(), l.nextName(), reason)
	l.cur++
	l.solver = nil
	if step > 0 {
		l.report.AddStepRetry()
	}
	return l.cur < len(l.rungs)
}

// Solve computes x ← A⁻¹·b with verification: non-finite sentinel on
// every call, residual check on the configured cadence, capped
// iterative refinement before any escalation, and rung escalation (the
// whole solve retried on the next rung) when refinement cannot reach
// tolerance. It returns a *Diagnosis when the ladder is exhausted —
// never a silently wrong x.
func (l *Ladder) Solve(step int, x, b []float64) error {
	if len(l.r) != len(b) {
		l.r = make([]float64, len(b))
		l.dx = make([]float64, len(b))
	}
	var history []float64
	for {
		s, err := l.Solver(step)
		if err != nil {
			if d, ok := err.(*Diagnosis); ok {
				d.Residuals = history
			}
			return err
		}
		rung := l.Rung()
		s.SolveTo(x, b)
		inject.CorruptSolve(rung, step, x)
		if !Finite(x) {
			l.report.NonFinite()
			history = append(history, math.Inf(1))
			if l.escalate(step, "non-finite solution") {
				continue
			}
			return l.diagnose(step, rung, history, "non-finite solution on the last rung")
		}
		if !l.cfg.ShouldVerify(step) {
			return nil
		}
		res := ScaledResidual(l.op, l.anorm, l.r, x, b)
		history = append(history, res)
		if res <= l.cfg.ResidualTol {
			l.accept(res)
			return nil
		}
		// Iterative refinement: solve on the residual, add the
		// correction. The residual vector is already in l.r.
		refined := false
		for sweep := 0; sweep < l.cfg.MaxRefine && res > l.cfg.ResidualTol && !math.IsInf(res, 1); sweep++ {
			s.SolveTo(l.dx, l.r)
			inject.CorruptSolve(rung, step, l.dx)
			if !Finite(l.dx) {
				l.report.NonFinite()
				res = math.Inf(1)
				history = append(history, res)
				break
			}
			for i := range x {
				x[i] += l.dx[i]
			}
			l.report.AddRefinement()
			refined = true
			res = ScaledResidual(l.op, l.anorm, l.r, x, b)
			history = append(history, res)
		}
		if refined {
			l.report.MarkRefinedSolve()
		}
		if res <= l.cfg.ResidualTol {
			l.accept(res)
			return nil
		}
		if l.escalate(step, fmt.Sprintf("residual %.3g above tolerance %.3g after %d refinement sweeps",
			res, l.cfg.ResidualTol, l.cfg.MaxRefine)) {
			continue
		}
		return l.diagnose(step, rung, history, "residual above tolerance on every rung")
	}
}

func (l *Ladder) accept(res float64) {
	l.report.Accept(res)
}

func (l *Ladder) diagnose(step int, rung string, history []float64, reason string) error {
	d := &Diagnosis{Stage: l.Stage, Step: step, Rung: rung, Residuals: history, Reason: reason}
	if s := l.last; s != nil {
		d.Cond1 = CondEst1(len(l.r), l.anorm, func(x, b []float64) { s.SolveTo(x, b) })
	}
	return d
}
