// Package inject provides deterministic fault injection for the
// numerical-robustness layer. It exists so tests can force every
// escalation-ladder transition — factorization breakdowns, solves that
// return NaN mid-transient, factors whose accuracy has drifted — rather
// than hoping for a pathological matrix. Production code never enables
// it; the hooks are atomically-loaded nil checks costing one load per
// solve. Enable faults only from tests, and always restore.
package inject

import (
	"sync"
	"sync/atomic"
)

// Faults describes the active fault set. Maps are keyed by rung name
// ("block-cholesky", "cholesky", "lu", "cg+ic0", ...); the empty string
// matches every rung.
type Faults struct {
	// FailPrepare[rung] = k fails the next k factorization attempts of
	// that rung (k < 0: fail forever).
	FailPrepare map[string]int
	// SolveNaN[step] = rung poisons the first solve of that transient
	// step on that rung with NaN, then clears itself — the step retries
	// cleanly on the next rung.
	SolveNaN map[int]string
	// SolveDrift[rung] applies a consistent relative error of the given
	// magnitude to every solve on that rung, emulating a factor whose
	// diagonal has drifted toward singularity: the solver keeps
	// returning the same slightly-wrong answer until refinement or
	// escalation compensates.
	SolveDrift map[string]float64

	mu sync.Mutex
}

var active atomic.Pointer[Faults]

// Enable installs the fault set and returns a restore function. Tests
// must call the restore (typically via t.Cleanup).
func Enable(f *Faults) (restore func()) {
	active.Store(f)
	return func() { active.Store(nil) }
}

// Enabled reports whether any faults are active.
func Enabled() bool { return active.Load() != nil }

// FailPrepare reports whether the factorization of the given rung
// should be made to fail, consuming one failure budget.
func FailPrepare(rung string) bool {
	f := active.Load()
	if f == nil || f.FailPrepare == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, key := range []string{rung, ""} {
		k, ok := f.FailPrepare[key]
		if !ok || k == 0 {
			continue
		}
		if k > 0 {
			f.FailPrepare[key] = k - 1
		}
		return true
	}
	return false
}

// CorruptSolve mutates a freshly computed solution according to the
// active faults. rung is the rung that produced x; step the transient
// step being solved.
func CorruptSolve(rung string, step int, x []float64) {
	f := active.Load()
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if want, ok := f.SolveNaN[step]; ok && (want == rung || want == "") {
		nan := 0.0
		nan /= nan
		for i := range x {
			x[i] = nan
		}
		delete(f.SolveNaN, step)
		return
	}
	for _, key := range []string{rung, ""} {
		if eps, ok := f.SolveDrift[key]; ok && eps != 0 {
			for i := range x {
				if i&1 == 0 {
					x[i] *= 1 + eps
				} else {
					x[i] *= 1 - eps
				}
			}
			return
		}
	}
}
