package numguard

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// denseOp is a small dense matrix implementing Operator for tests.
type denseOp [][]float64

func (m denseOp) MulVec(y, x []float64) {
	for i, row := range m {
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

func (m denseOp) normInf() float64 {
	worst := 0.0
	for _, row := range m {
		s := 0.0
		for _, a := range row {
			s += math.Abs(a)
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// spd2 is a well-conditioned 2x2 SPD test matrix with its exact inverse.
var spd2 = denseOp{{4, 1}, {1, 3}}

func spd2Solve(x, b []float64) {
	// inv([[4,1],[1,3]]) = 1/11 * [[3,-1],[-1,4]]
	b0, b1 := b[0], b[1]
	x[0] = (3*b0 - b1) / 11
	x[1] = (-b0 + 4*b1) / 11
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.ResidualTol != 1e-8 || c.MaxRefine != 3 || c.VerifyEvery != 8 || c.PivotGrowthMax != 1e8 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// Explicit settings survive.
	c = Config{ResidualTol: 1e-6, MaxRefine: 5, VerifyEvery: 4, PivotGrowthMax: 10}.WithDefaults()
	if c.ResidualTol != 1e-6 || c.MaxRefine != 5 || c.VerifyEvery != 4 || c.PivotGrowthMax != 10 {
		t.Fatalf("explicit config overwritten: %+v", c)
	}
}

func TestShouldVerifyCadence(t *testing.T) {
	c := Config{VerifyEvery: 4}.WithDefaults()
	for _, tc := range []struct {
		step int
		want bool
	}{{0, true}, {1, true}, {2, false}, {3, false}, {4, true}, {7, false}, {8, true}} {
		if got := c.ShouldVerify(tc.step); got != tc.want {
			t.Errorf("ShouldVerify(%d) with VerifyEvery=4: got %v want %v", tc.step, got, tc.want)
		}
	}
	every := Config{VerifyEvery: 1}.WithDefaults()
	for step := 0; step < 10; step++ {
		if !every.ShouldVerify(step) {
			t.Errorf("VerifyEvery=1 must verify step %d", step)
		}
	}
}

func TestFinite(t *testing.T) {
	if !Finite([]float64{0, -1, 1e300}) {
		t.Error("finite vector reported non-finite")
	}
	if Finite([]float64{0, math.NaN()}) {
		t.Error("NaN not caught")
	}
	if Finite([]float64{math.Inf(-1)}) {
		t.Error("-Inf not caught")
	}
	if !FiniteBlocks([][]float64{{1, 2}, {3}}) {
		t.Error("finite blocks reported non-finite")
	}
	if FiniteBlocks([][]float64{{1}, {math.Inf(1)}}) {
		t.Error("Inf block not caught")
	}
}

func TestScaledResidual(t *testing.T) {
	b := []float64{5, 4}
	x := make([]float64, 2)
	spd2Solve(x, b) // exact solve
	r := make([]float64, 2)
	res := ScaledResidual(spd2, spd2.normInf(), r, x, b)
	if res > 1e-15 {
		t.Errorf("exact solve residual %g, want ~0", res)
	}
	// Perturb the solution; the scaled residual must see it.
	x[0] += 1e-3
	res = ScaledResidual(spd2, spd2.normInf(), r, x, b)
	if res < 1e-5 {
		t.Errorf("perturbed solve residual %g, want noticeable", res)
	}
	// Non-finite x yields +Inf.
	x[0] = math.NaN()
	if res = ScaledResidual(spd2, spd2.normInf(), r, x, b); !math.IsInf(res, 1) {
		t.Errorf("NaN x residual %g, want +Inf", res)
	}
}

func TestCondEst1Diagonal(t *testing.T) {
	// diag(1, 10, 100): kappa_1 = 100 exactly.
	n := 3
	d := []float64{1, 10, 100}
	solve := func(x, b []float64) {
		for i := range x {
			x[i] = b[i] / d[i]
		}
	}
	est := CondEst1(n, 100, solve)
	if est < 50 || est > 101 {
		t.Errorf("cond estimate %g for kappa=100", est)
	}
	// Singular solve (Inf output) reports +Inf.
	bad := func(x, b []float64) {
		for i := range x {
			x[i] = math.Inf(1)
		}
	}
	if est = CondEst1(n, 100, bad); !math.IsInf(est, 1) {
		t.Errorf("singular solve estimate %g, want +Inf", est)
	}
}

// driftSolver wraps the exact solve with a consistent relative error,
// the classic situation iterative refinement fixes.
func driftSolver(eps float64) Solver {
	return SolverFunc(func(x, b []float64) {
		spd2Solve(x, b)
		x[0] *= 1 + eps
		x[1] *= 1 - eps
	})
}

func TestLadderRefinementRecoversDrift(t *testing.T) {
	rep := &Report{}
	lad := NewLadder("test", Config{}, spd2, spd2.normInf(),
		[]Rung{{Name: "drifted", Prepare: func() (Solver, error) { return driftSolver(1e-3), nil }}}, rep)
	b := []float64{5, 4}
	x := make([]float64, 2)
	if err := lad.Solve(0, x, b); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 2)
	spd2Solve(want, b)
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
	if rep.Refinements == 0 || rep.RefinedSolves != 1 {
		t.Errorf("refinement not recorded: %+v", rep)
	}
	if len(rep.Transitions) != 0 {
		t.Errorf("drift within refinement reach must not escalate: %+v", rep.Transitions)
	}
	if rep.Healthy() {
		t.Error("a refined solve is not Healthy")
	}
}

func TestLadderEscalatesPastBadRungs(t *testing.T) {
	rep := &Report{}
	rungs := []Rung{
		{Name: "broken", Prepare: func() (Solver, error) { return nil, errors.New("boom") }},
		{Name: "drifted-hopeless", Prepare: func() (Solver, error) { return driftSolver(0.5), nil }},
		{Name: "exact", Prepare: func() (Solver, error) { return SolverFunc(spd2Solve), nil }},
	}
	lad := NewLadder("test", Config{}, spd2, spd2.normInf(), rungs, rep)
	b := []float64{5, 4}
	x := make([]float64, 2)
	if err := lad.Solve(0, x, b); err != nil {
		t.Fatal(err)
	}
	if lad.Rung() != "exact" {
		t.Errorf("final rung %q, want exact", lad.Rung())
	}
	if len(rep.Transitions) != 2 {
		t.Fatalf("want 2 transitions (broken→drifted, drifted→exact), got %+v", rep.Transitions)
	}
	if rep.Transitions[0].From != "broken" || rep.Transitions[1].From != "drifted-hopeless" {
		t.Errorf("transition order wrong: %+v", rep.Transitions)
	}
	if rep.Verified != 1 {
		t.Errorf("verified count %d, want 1", rep.Verified)
	}
}

func TestLadderNaNEscalates(t *testing.T) {
	rep := &Report{}
	nan := math.NaN()
	rungs := []Rung{
		{Name: "poisoned", Prepare: func() (Solver, error) {
			return SolverFunc(func(x, b []float64) {
				for i := range x {
					x[i] = nan
				}
			}), nil
		}},
		{Name: "exact", Prepare: func() (Solver, error) { return SolverFunc(spd2Solve), nil }},
	}
	lad := NewLadder("test", Config{}, spd2, spd2.normInf(), rungs, rep)
	b := []float64{5, 4}
	x := make([]float64, 2)
	if err := lad.Solve(3, x, b); err != nil {
		t.Fatal(err)
	}
	if !Finite(x) {
		t.Fatal("accepted solution is non-finite")
	}
	if rep.NaNEvents != 1 {
		t.Errorf("NaNEvents %d, want 1", rep.NaNEvents)
	}
	if rep.StepRetries != 1 {
		t.Errorf("StepRetries %d, want 1 (step 3 re-solved)", rep.StepRetries)
	}
}

func TestLadderExhaustionReturnsDiagnosis(t *testing.T) {
	rep := &Report{}
	rungs := []Rung{
		{Name: "a", Prepare: func() (Solver, error) { return driftSolver(0.9), nil }},
		{Name: "b", Prepare: func() (Solver, error) { return driftSolver(0.9), nil }},
	}
	lad := NewLadder("stage-x", Config{VerifyEvery: 1}, spd2, spd2.normInf(), rungs, rep)
	b := []float64{5, 4}
	x := make([]float64, 2)
	err := lad.Solve(7, x, b)
	if err == nil {
		t.Fatal("exhausted ladder returned nil error")
	}
	var d *Diagnosis
	if !errors.As(err, &d) {
		t.Fatalf("error %T is not a *Diagnosis", err)
	}
	if d.Stage != "stage-x" || d.Step != 7 {
		t.Errorf("diagnosis context wrong: %+v", d)
	}
	if len(d.Residuals) == 0 {
		t.Error("diagnosis carries no residual history")
	}
	if d.Cond1 <= 0 {
		t.Errorf("diagnosis cond estimate %g, want > 0", d.Cond1)
	}
	if !strings.Contains(d.Error(), "stage-x") {
		t.Errorf("Error() lacks stage: %s", d.Error())
	}
}

func TestLadderVerifyCadenceSkipsResidual(t *testing.T) {
	// With VerifyEvery=10, steps 2..9 skip the residual check, so a
	// drifted-but-finite answer passes through unverified there — but the
	// NaN sentinel still runs every step.
	rep := &Report{}
	lad := NewLadder("test", Config{VerifyEvery: 10}, spd2, spd2.normInf(),
		[]Rung{{Name: "drifted", Prepare: func() (Solver, error) { return driftSolver(1e-3), nil }}}, rep)
	b := []float64{5, 4}
	x := make([]float64, 2)
	if err := lad.Solve(2, x, b); err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 0 || rep.Refinements != 0 {
		t.Errorf("step 2 must skip verification under VerifyEvery=10: %+v", rep)
	}
	if err := lad.Solve(10, x, b); err != nil {
		t.Fatal(err)
	}
	if rep.Verified != 1 {
		t.Errorf("step 10 must verify under VerifyEvery=10: %+v", rep)
	}
}

func TestReportSummary(t *testing.T) {
	var nilRep *Report
	if !nilRep.Healthy() {
		t.Error("nil report must be Healthy")
	}
	rep := &Report{Verified: 3, MaxResidual: 1e-12, NaNEvents: 1,
		Transitions: []Transition{{Stage: "step", From: "lu", To: "", Reason: "x"}}}
	s := rep.Summary()
	if !strings.Contains(s, "3 solves verified") || !strings.Contains(s, "1 rung transitions") ||
		!strings.Contains(s, "1 non-finite events") {
		t.Errorf("summary incomplete: %s", s)
	}
	if got := rep.Transitions[0].String(); !strings.Contains(got, "exhausted") {
		t.Errorf("empty To must render as exhausted: %s", got)
	}
}
