package numguard

import "math"

// CondEst1 estimates the 1-norm condition number κ₁(A) = ‖A‖₁·‖A⁻¹‖₁
// of a symmetric matrix from its norm and a solver for it, using the
// Hager/Higham power iteration on ‖A⁻¹‖₁ (Higham, "FORTRAN codes for
// estimating the one-norm of a real or complex matrix", Algorithm 4.1).
// Each iteration costs one solve (symmetry supplies the Aᵀ solve for
// free); at most five iterations run. The estimate is a lower bound
// that is almost always within a small factor of the true value —
// enough to tell "healthy" from "numerically hopeless" in a Diagnosis.
func CondEst1(n int, anorm float64, solve func(x, b []float64)) float64 {
	if n == 0 || anorm <= 0 || solve == nil {
		return 0
	}
	b := make([]float64, n)
	y := make([]float64, n)
	xi := make([]float64, n)
	for i := range b {
		b[i] = 1 / float64(n)
	}
	est := 0.0
	prev := -1
	for iter := 0; iter < 5; iter++ {
		solve(y, b) // y = A⁻¹·b
		if !Finite(y) {
			return math.Inf(1)
		}
		e := norm1(y)
		if iter > 0 && e <= est {
			break
		}
		est = e
		for i, v := range y {
			if v >= 0 {
				xi[i] = 1
			} else {
				xi[i] = -1
			}
		}
		solve(y, xi) // y = A⁻ᵀ·ξ = A⁻¹·ξ (symmetric)
		if !Finite(y) {
			return math.Inf(1)
		}
		j, zmax := 0, 0.0
		for i, v := range y {
			if a := math.Abs(v); a > zmax {
				zmax = a
				j = i
			}
		}
		// Convergence test: no component exceeds zᵀb, or the same unit
		// vector repeats.
		if j == prev || zmax <= dot(y, b) {
			break
		}
		prev = j
		for i := range b {
			b[i] = 0
		}
		b[j] = 1
	}
	return est * anorm
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
